package hetsim_test

import (
	"testing"

	"repro/hetsim"
)

func fastCfg() hetsim.Config {
	cfg := hetsim.DefaultConfig(192)
	cfg.WarmupInstr = 40_000
	cfg.WarmupFrames = 2
	cfg.MeasureInstr = 120_000
	cfg.MinFrames = 2
	cfg.MaxCycles = 30_000_000
	return cfg
}

func TestCatalogAccessors(t *testing.T) {
	if len(hetsim.Games()) != 14 {
		t.Fatalf("games: %d", len(hetsim.Games()))
	}
	if len(hetsim.EvalMixes()) != 14 || len(hetsim.MotivationMixes()) != 14 {
		t.Fatalf("mix catalogs wrong")
	}
	if len(hetsim.HighFPSMixes()) != 6 || len(hetsim.LowFPSMixes()) != 8 {
		t.Fatalf("high/low split wrong")
	}
	if len(hetsim.SpecIDs()) != 13 {
		t.Fatalf("spec ids: %d", len(hetsim.SpecIDs()))
	}
	if _, err := hetsim.GameByName("DOOM3"); err != nil {
		t.Fatal(err)
	}
	if _, err := hetsim.Spec(429); err != nil {
		t.Fatal(err)
	}
	if _, err := hetsim.MixByID("W1"); err != nil {
		t.Fatal(err)
	}
	if len(hetsim.ExperimentIDs()) != 13 {
		t.Fatalf("experiments: %d", len(hetsim.ExperimentIDs()))
	}
}

func TestPublicRunMix(t *testing.T) {
	mix, err := hetsim.MixByID("M13")
	if err != nil {
		t.Fatal(err)
	}
	r := hetsim.RunMix(fastCfg(), mix)
	if r.GPUFPS <= 0 || len(r.IPC) != 4 {
		t.Fatalf("bad result: %+v", r)
	}
}

func TestPublicCustomSystem(t *testing.T) {
	cfg := fastCfg()
	cfg.NumCPUs = 1
	game, err := hetsim.GameByName("COR")
	if err != nil {
		t.Fatal(err)
	}
	model := game.Model(cfg.Scale, cfg.GPUFreqHz)
	app := hetsim.TraceParams{
		Name: "custom", MemPerKilo: 200, WriteFrac: 0.3,
		StreamFrac: 0.05, HotFrac: 0.9, HotBytes: 64 << 10, WSBytes: 4 << 20, Seed: 5,
	}
	s := hetsim.NewSystem(cfg, model, []hetsim.TraceParams{app})
	r := hetsim.Run(s)
	if r.GPUFrames == 0 || len(r.IPC) != 1 || r.IPC[0] <= 0 {
		t.Fatalf("custom system made no progress: %+v", r)
	}
}

func TestRunnerAblationSurface(t *testing.T) {
	// Compile-time + error-path check that the public Runner exposes
	// every ablation; the heavy runs are covered by the benches.
	x := hetsim.NewRunner(fastCfg())
	if _, err := x.AblationWindowStep("M99", []uint64{2}); err == nil {
		t.Fatalf("bad mix accepted")
	}
	if _, err := x.AblationTargetFPS("M99", []float64{40}); err == nil {
		t.Fatalf("bad mix accepted")
	}
	if _, err := x.AblationUpdateLaw("M99"); err == nil {
		t.Fatalf("bad mix accepted")
	}
	if _, err := x.AblationCMBAL("M99"); err == nil {
		t.Fatalf("bad mix accepted")
	}
	if _, err := x.AblationPrefetch("M99"); err == nil {
		t.Fatalf("bad mix accepted")
	}
	if _, err := x.AblationLLCPolicy("M99"); err == nil {
		t.Fatalf("bad mix accepted")
	}
}

func TestStandaloneAPIs(t *testing.T) {
	cfg := fastCfg()
	cfg.MinFrames = 2
	r := hetsim.RunGPUAlone(cfg, "UT2004")
	if r.GPUFPS <= 0 {
		t.Fatalf("standalone GPU run empty")
	}
	ipc := hetsim.RunCPUAlone(cfg, 403)
	if ipc <= 0 {
		t.Fatalf("standalone CPU run empty")
	}
}
