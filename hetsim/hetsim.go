// Package hetsim is the public API of the heterogeneous CPU–GPU
// memory-system simulator reproducing Rai & Chaudhuri, "Improving CPU
// Performance through Dynamic GPU Access Throttling in CPU-GPU
// Heterogeneous Processors" (IPDPSW 2017).
//
// It re-exports the building blocks a downstream user needs:
//
//   - Config / DefaultConfig — the simulated CMP (Table I), with a
//     scale factor that divides capacities and per-frame work while
//     preserving the paper's ratios;
//   - the Policy constants — baseline FR-FCFS, the proposal's two
//     throttling modes, SMS-0.9/SMS-0, DynPrio, HeLM, forced bypass;
//   - the workload catalogs — Table II games, SPEC-like CPU apps,
//     Table III mixes — plus AppModel/TraceParams for custom ones;
//   - RunMix / RunCPUAlone / RunGPUAlone — single experiments;
//   - NewRunner — the figure/table reproduction harness
//     (Fig1..Fig14, Table1..Table3, ablations).
//
// Quickstart:
//
//	cfg := hetsim.DefaultConfig(64)
//	cfg.Policy = hetsim.PolicyThrottleCPUPrio
//	mix, _ := hetsim.MixByID("M7")
//	res := hetsim.RunMix(cfg, mix)
//	fmt.Printf("FPS %.1f, mean IPC %.2f\n", res.GPUFPS, res.MeanIPC())
package hetsim

import (
	"repro/internal/exp"
	"repro/internal/faultinject"
	"repro/internal/fleet"
	"repro/internal/gpu"
	"repro/internal/obs"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/twin"
	"repro/internal/workloads"
)

// Config parameterizes a simulated system; see sim.Config.
type Config = sim.Config

// Policy selects the memory-system management scheme.
type Policy = sim.Policy

// The policies evaluated in the paper.
const (
	PolicyBaseline        = sim.PolicyBaseline
	PolicyThrottle        = sim.PolicyThrottle
	PolicyThrottleCPUPrio = sim.PolicyThrottleCPUPrio
	PolicySMS09           = sim.PolicySMS09
	PolicySMS0            = sim.PolicySMS0
	PolicyDynPrio         = sim.PolicyDynPrio
	PolicyHeLM            = sim.PolicyHeLM
	PolicyForcedBypass    = sim.PolicyForcedBypass
	PolicyCMBAL           = sim.PolicyCMBAL
)

// Result is one run's measured metrics.
type Result = sim.Result

// Mix is a heterogeneous workload (GPU title + CPU applications).
type Mix = workloads.Mix

// Game is a Table II rendering workload description.
type Game = workloads.Game

// SpecApp is a SPEC CPU 2006 application model.
type SpecApp = workloads.SpecApp

// AppModel parameterizes a custom GPU rendering workload.
type AppModel = gpu.AppModel

// TraceParams parameterizes a custom synthetic CPU workload.
type TraceParams = trace.Params

// System is a fully wired simulated CMP (for custom workloads).
type System = sim.System

// Runner regenerates the paper's tables and figures on a bounded
// worker pool with memoized, singleflight-deduplicated simulation
// runs. Set Runner.Workers to bound concurrency (0 = DefaultWorkers,
// 1 = serial); RunAll/Prefetch dispatch an experiment set's full run
// plan to the pool. Parallel output is byte-identical to serial.
type Runner = exp.Runner

// Report is a rendered experiment result.
type Report = exp.Report

// DefaultConfig returns the paper's evaluation configuration at the
// given scale factor (1 = full Table I capacities; 32–64 are good
// laptop-scale settings).
func DefaultConfig(scale int) Config { return sim.DefaultConfig(scale) }

// RunMix runs one heterogeneous mix under cfg.
func RunMix(cfg Config, m Mix) Result { return sim.RunMix(cfg, m) }

// RunCPUAlone measures a SPEC application's standalone IPC.
func RunCPUAlone(cfg Config, specID int) float64 { return sim.RunCPUAlone(cfg, specID) }

// RunGPUAlone measures a game's standalone frame rate.
func RunGPUAlone(cfg Config, game string) Result { return sim.RunGPUAlone(cfg, game) }

// Recorder is a per-run observability recorder: a pull-based metrics
// registry sampled every stride cycles plus a Chrome trace_event
// span collector. A nil *Recorder is valid and disables observability
// at zero cost.
type Recorder = obs.Recorder

// Collection is a keyed set of recorders for multi-run tools; output
// is emitted in sorted key order, so it is deterministic under any
// worker count.
type Collection = obs.Collection

// NewRecorder builds a recorder sampling every stride cycles
// (0 = obs.DefaultStride).
func NewRecorder(stride uint64) *Recorder { return obs.NewRecorder(stride) }

// NewCollection builds a recorder collection with the given stride.
func NewCollection(stride uint64) *Collection { return obs.NewCollection(stride) }

// RunMixObs is RunMix with a recorder attached (nil = off).
func RunMixObs(cfg Config, m Mix, rec *Recorder) Result { return sim.RunMixObs(cfg, m, rec) }

// RunCPUAloneObs is RunCPUAlone with a recorder attached (nil = off).
func RunCPUAloneObs(cfg Config, specID int, rec *Recorder) float64 {
	return sim.RunCPUAloneObs(cfg, specID, rec)
}

// RunGPUAloneObs is RunGPUAlone with a recorder attached (nil = off).
func RunGPUAloneObs(cfg Config, game string, rec *Recorder) Result {
	return sim.RunGPUAloneObs(cfg, game, rec)
}

// NewSystem builds a custom system: any GPU workload model (nil for
// CPU-only) plus any set of CPU trace parameters. Drive it with Run.
func NewSystem(cfg Config, game *AppModel, cpuApps []TraceParams) *System {
	return sim.NewSystem(cfg, game, cpuApps)
}

// Run executes a custom system through warm-up and measurement.
func Run(s *System) Result { return sim.Run(s) }

// NewRunner builds the experiment harness over cfg.
func NewRunner(cfg Config) *Runner { return exp.NewRunner(cfg) }

// DefaultWorkers is the worker-pool width used when Runner.Workers
// is 0: the HETSIM_PARALLEL environment variable when set, else
// runtime.GOMAXPROCS(0).
func DefaultWorkers() int { return exp.DefaultWorkers() }

// ExperimentIDs lists every reproducible table/figure id.
func ExperimentIDs() []string { return exp.AllIDs() }

// Games returns the Table II catalog (W1..W14 order).
func Games() []Game { return workloads.Games() }

// GameByName resolves a Table II title.
func GameByName(name string) (Game, error) { return workloads.GameByName(name) }

// Spec resolves a SPEC application id.
func Spec(id int) (SpecApp, error) { return workloads.Spec(id) }

// SpecIDs lists the catalog's SPEC ids.
func SpecIDs() []int { return workloads.SpecIDs() }

// EvalMixes returns Table III's M1–M14.
func EvalMixes() []Mix { return workloads.EvalMixes() }

// MotivationMixes returns Table III's W1–W14.
func MotivationMixes() []Mix { return workloads.MotivationMixes() }

// MixByID resolves "M1".."M14" / "W1".."W14".
func MixByID(id string) (Mix, error) { return workloads.MixByID(id) }

// HighFPSMixes returns the six mixes the proposal throttles.
func HighFPSMixes() []Mix { return workloads.HighFPSMixes() }

// LowFPSMixes returns the eight mixes where it stays disabled.
func LowFPSMixes() []Mix { return workloads.LowFPSMixes() }

// RunError is one quarantined simulation failure (validation error,
// recovered panic, timeout); see Runner.Errors.
type RunError = exp.RunError

// Journal is the crash-safe, append-only JSONL run journal behind the
// sweep tools' -journal/-resume flags (DESIGN.md §8).
type Journal = exp.Journal

// JournalRecord is one journaled run result.
type JournalRecord = exp.Record

// JournalStats accounts for the lines OpenJournal could not return as
// records: corrupt lines and torn-tail repairs.
type JournalStats = exp.JournalStats

// OpenJournal opens (creating if absent) a run journal, returning the
// valid records already present and the stats of what was skipped
// (corrupt lines, torn-tail repairs). Attach the journal to a Runner
// to make a sweep resumable, and seed a fresh Runner with
// Runner.ReplayJournal to resume one.
func OpenJournal(path string) (*Journal, []JournalRecord, JournalStats, error) {
	return exp.OpenJournal(path)
}

// TaskSpec describes one simulation as a self-validating, JSON-ready
// unit of work: the submission format of the hetsimd service, whose
// Key doubles as the idempotency token.
type TaskSpec = exp.TaskSpec

// TaskResult is a completed TaskSpec's payload.
type TaskResult = exp.TaskResult

// ParsePolicy resolves a policy's CLI spelling ("baseline",
// "throttle", "throttle+prio", ...) or String form, case-insensitively.
func ParsePolicy(name string) (Policy, error) { return sim.ParsePolicy(name) }

// ParseTaskKey reconstructs a TaskSpec from its Key form ("mix/M7/2",
// "gpu/DOOM3", "cpu/462") — the inverse of TaskSpec.Key, used by
// hetsimctl and the service's resume path.
func ParseTaskKey(key string) (TaskSpec, error) { return exp.ParseKey(key) }

// FaultInjector lets tests and chaos harnesses perturb a simulated
// system deterministically via Config.Faults; see the
// internal/faultinject package for the standard implementation.
type FaultInjector = sim.FaultInjector

// FaultSpec parameterizes the deterministic fault injector.
type FaultSpec = faultinject.Spec

// NewFaultInjector builds a deterministic injector from spec; wire it
// into Config.Faults.
func NewFaultInjector(spec FaultSpec) FaultInjector { return faultinject.New(spec) }

// ScenarioSpec declares a time-varying workload: phase schedules that
// retarget GPU frame work and swap per-core CPU streams at cycle
// boundaries, optionally driven by a tracev2 capture (DESIGN.md §12).
type ScenarioSpec = scenario.Spec

// LoadScenario reads and strictly parses a scenario spec file.
func LoadScenario(path string) (*ScenarioSpec, error) { return scenario.LoadSpec(path) }

// ParseScenario strictly parses a scenario spec from JSON bytes.
func ParseScenario(data []byte) (*ScenarioSpec, error) { return scenario.ParseSpec(data) }

// RandScenario derives a complete random scenario from one seed; the
// property-based campaign suites are built on it.
func RandScenario(seed uint64) *ScenarioSpec { return scenario.Rand(seed) }

// RunScenario executes a scenario to completion under cfg.
func RunScenario(cfg Config, sp *ScenarioSpec) (Result, error) { return scenario.Run(cfg, sp) }

// RunScenarioObs is RunScenario with an observability recorder.
func RunScenarioObs(cfg Config, sp *ScenarioSpec, rec *Recorder) (Result, error) {
	return scenario.RunObs(cfg, sp, rec)
}

// BuildScenario wires a validated scenario into a runnable System.
func BuildScenario(cfg Config, sp *ScenarioSpec) (*System, error) { return scenario.Build(cfg, sp) }

// ScenarioTaskSpec builds the service task form of a scenario run.
func ScenarioTaskSpec(sp *ScenarioSpec, p Policy) TaskSpec { return exp.ScenarioTaskSpec(sp, p) }

// Serving tiers a TaskSpec may request (DESIGN.md §14): full
// cycle-accurate simulation, the calibrated analytic twin, or auto
// (twin when confident, escalated to simulation otherwise).
const (
	TierFull = exp.TierFull
	TierTwin = exp.TierTwin
	TierAuto = exp.TierAuto
)

// TwinModel is the calibrated analytic performance model behind the
// twin serving tier: closed-form frame-time, per-core IPC, weighted-
// speedup, and throttling-outcome predictions in microseconds, with a
// per-prediction confidence score (DESIGN.md §14). Attach one to
// Runner.Twin to enable the twin and auto tiers.
type TwinModel = twin.Model

// TwinCoefficients is the versioned, content-digested calibration
// artifact `calibrate -fit-twin` writes and `hetsimd -twin-coeffs`
// loads; it binds to one simulator configuration by digest.
type TwinCoefficients = twin.Coefficients

// TwinPrediction is one analytic answer with its confidence.
type TwinPrediction = twin.Prediction

// TwinFrontier is the cycle-accurate measurement grid a calibration
// fit consumes: standalone anchors plus mix×policy samples.
type TwinFrontier = twin.Frontier

// AllPolicies is the paper's nine-policy evaluation set — the default
// calibration frontier sweeps every one of them.
func AllPolicies() []Policy { return twin.AllPolicies() }

// RunTwinFrontier executes the calibration campaign over at most
// workers concurrent simulations (nil Exec runs in-process).
func RunTwinFrontier(cfg Config, mixes []Mix, policies []Policy, workers int, ex twin.Exec) (*TwinFrontier, error) {
	return twin.RunFrontier(cfg, mixes, policies, workers, ex)
}

// FitTwin performs the differential calibration over a frontier
// (ridge <= 0 uses twin.DefaultRidge).
func FitTwin(cfg Config, f *TwinFrontier, ridge float64) (*TwinCoefficients, error) {
	return twin.Fit(cfg, f, ridge)
}

// NewTwinModel validates coefficients and wraps them for serving.
func NewTwinModel(c *TwinCoefficients) (*TwinModel, error) { return twin.New(c) }

// SaveTwinCoeffs writes a coefficient file atomically, stamping its
// content digest.
func SaveTwinCoeffs(path string, c *TwinCoefficients) error { return twin.Save(path, c) }

// LoadTwinCoeffs reads a coefficient file, verifying digest and
// schema version.
func LoadTwinCoeffs(path string) (*TwinModel, error) { return twin.Load(path) }

// TwinConfigDigest fingerprints the structural simulator configuration
// a twin calibration binds to.
func TwinConfigDigest(cfg Config) string { return twin.ConfigDigest(cfg) }

// FleetCoordinator shards campaigns across hetsimd workers with
// lease-based dispatch, a content-addressed result store, and
// journal-backed zero-recompute recovery (DESIGN.md §13). It serves
// the same public HTTP API as one hetsimd node.
type FleetCoordinator = fleet.Coordinator

// FleetConfig parameterizes a FleetCoordinator.
type FleetConfig = fleet.Config

// FleetAgent is the worker half of the lease protocol: hetsimd -join
// runs one next to its local API.
type FleetAgent = fleet.Agent

// NewFleetCoordinator builds a coordinator; pair with
// Coordinator.Replay when resuming from a journal.
func NewFleetCoordinator(cfg FleetConfig) *FleetCoordinator { return fleet.New(cfg) }

// FleetStandby is a hot-standby coordinator: it tails a primary's
// journal over HTTP, mirrors it locally, and promotes itself into a
// serving FleetCoordinator at the next epoch term when the primary
// goes silent — or when Promote is called (DESIGN.md §15).
type FleetStandby = fleet.Standby

// FleetStandbyConfig parameterizes a FleetStandby: the primary to
// follow, the coordinator configuration to promote with, and the
// poll/failover cadence.
type FleetStandbyConfig = fleet.StandbyConfig

// NewFleetStandby builds a standby; call Run to follow and
// (optionally) auto-promote, or Promote for a planned failover.
func NewFleetStandby(cfg FleetStandbyConfig) *FleetStandby { return fleet.NewStandby(cfg) }
