// Package repro's root benchmarks regenerate every table and figure
// of the paper (see DESIGN.md §4 for the experiment index):
//
//	go test -bench=. -benchmem
//
// Each benchmark produces the corresponding paper artifact once per
// iteration through the shared memoizing Runner, logs the full report
// (visible with -v), and reports the headline aggregates as custom
// metrics so regressions in reproduction quality are visible in plain
// benchmark output.
//
// HETSIM_SCALE overrides the scale factor (default 96; smaller values
// run closer to the paper's full-size system and take proportionally
// longer). HETSIM_PARALLEL overrides the shared Runner's worker-pool
// width (default GOMAXPROCS); each benchmark prefetches its
// experiment's run plan so the first iteration's simulations execute
// concurrently, while memoization keeps later iterations cheap.
package repro

import (
	"os"
	"strconv"
	"sync"
	"testing"

	"repro/hetsim"
)

var (
	runnerOnce sync.Once
	runner     *hetsim.Runner
)

func benchRunner() *hetsim.Runner {
	runnerOnce.Do(func() {
		scale := 96
		if s := os.Getenv("HETSIM_SCALE"); s != "" {
			if v, err := strconv.Atoi(s); err == nil && v >= 1 {
				scale = v
			}
		}
		cfg := hetsim.DefaultConfig(scale)
		runner = hetsim.NewRunner(cfg)
	})
	return runner
}

// runExperiment is the shared bench body: regenerate the artifact and
// surface its headline numbers.
func runExperiment(b *testing.B, id string, metrics func(rep hetsim.Report, b *testing.B)) {
	b.Helper()
	b.ReportAllocs()
	x := benchRunner()
	if err := x.Prefetch(id); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		rep, err := x.ByID(id)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + rep.String())
			if metrics != nil {
				metrics(rep, b)
			}
		}
	}
}

// meanCell averages one named cell across rows.
func meanCell(rep hetsim.Report, name string) float64 {
	s, n := 0.0, 0
	for _, r := range rep.Rows {
		if v := r.Get(name); v != 0 {
			s += v
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return s / float64(n)
}

func BenchmarkTable1Config(b *testing.B) {
	runExperiment(b, "table1", nil)
}

func BenchmarkTable2StandaloneFPS(b *testing.B) {
	runExperiment(b, "table2", func(rep hetsim.Report, b *testing.B) {
		b.ReportMetric(meanCell(rep, "standaloneFPS"), "meanFPS")
	})
}

func BenchmarkTable3Mixes(b *testing.B) {
	runExperiment(b, "table3", nil)
}

func BenchmarkFig1HeteroVsStandalone(b *testing.B) {
	runExperiment(b, "fig1", func(rep hetsim.Report, b *testing.B) {
		b.ReportMetric(meanCell(rep, "cpu"), "cpuRatio")
		b.ReportMetric(meanCell(rep, "gpu"), "gpuRatio")
	})
}

func BenchmarkFig2FrameRates(b *testing.B) {
	runExperiment(b, "fig2", func(rep hetsim.Report, b *testing.B) {
		b.ReportMetric(meanCell(rep, "hetero"), "meanHeteroFPS")
	})
}

func BenchmarkFig3ForcedBypass(b *testing.B) {
	runExperiment(b, "fig3", func(rep hetsim.Report, b *testing.B) {
		b.ReportMetric(meanCell(rep, "speedup"), "cpuSpeedup")
	})
}

func BenchmarkFig8EstimationError(b *testing.B) {
	runExperiment(b, "fig8", func(rep hetsim.Report, b *testing.B) {
		b.ReportMetric(meanCell(rep, "absErrPct"), "absErrPct")
	})
}

func BenchmarkFig9Throttling(b *testing.B) {
	runExperiment(b, "fig9", func(rep hetsim.Report, b *testing.B) {
		b.ReportMetric(meanCell(rep, "cpuThr"), "cpuThrottled")
		b.ReportMetric(meanCell(rep, "cpuPri"), "cpuThrottledPrio")
		b.ReportMetric(meanCell(rep, "fpsPri"), "fpsPrio")
	})
}

func BenchmarkFig10LLCMisses(b *testing.B) {
	runExperiment(b, "fig10", func(rep hetsim.Report, b *testing.B) {
		b.ReportMetric(meanCell(rep, "gpuThr"), "gpuMissX")
		b.ReportMetric(meanCell(rep, "cpuThr"), "cpuMissX")
	})
}

func BenchmarkFig11GPUBandwidth(b *testing.B) {
	runExperiment(b, "fig11", func(rep hetsim.Report, b *testing.B) {
		b.ReportMetric(meanCell(rep, "totalThr"), "bwThrottledX")
	})
}

func BenchmarkFig12Comparison(b *testing.B) {
	runExperiment(b, "fig12", func(rep hetsim.Report, b *testing.B) {
		b.ReportMetric(meanCell(rep, "cpuThrotCPUprio"), "cpuProposal")
		b.ReportMetric(meanCell(rep, "cpuDynPrio"), "cpuDynPrio")
		b.ReportMetric(meanCell(rep, "cpuHeLM"), "cpuHeLM")
	})
}

func BenchmarkFig13LowFPS(b *testing.B) {
	runExperiment(b, "fig13", func(rep hetsim.Report, b *testing.B) {
		b.ReportMetric(meanCell(rep, "fpsThrotCPUprio"), "fpsProposalX")
		b.ReportMetric(meanCell(rep, "cpuSMS-0.9"), "cpuSMS09")
	})
}

func BenchmarkFig14Combined(b *testing.B) {
	runExperiment(b, "fig14", func(rep hetsim.Report, b *testing.B) {
		b.ReportMetric(meanCell(rep, "ThrotCPUprio"), "combinedProposal")
		b.ReportMetric(meanCell(rep, "HeLM"), "combinedHeLM")
	})
}

// Ablations beyond the paper (DESIGN.md §4).

func BenchmarkAblationWindowStep(b *testing.B) {
	b.ReportAllocs()
	x := benchRunner()
	for i := 0; i < b.N; i++ {
		rep, err := x.AblationWindowStep("M7", []uint64{1, 2, 4, 8})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + rep.String())
		}
	}
}

func BenchmarkAblationTargetFPS(b *testing.B) {
	b.ReportAllocs()
	x := benchRunner()
	for i := 0; i < b.N; i++ {
		rep, err := x.AblationTargetFPS("M7", []float64{30, 40, 50})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + rep.String())
		}
	}
}

func BenchmarkAblationUpdateLaw(b *testing.B) {
	b.ReportAllocs()
	x := benchRunner()
	for i := 0; i < b.N; i++ {
		rep, err := x.AblationUpdateLaw("M7")
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + rep.String())
		}
	}
}

func BenchmarkAblationCMBAL(b *testing.B) {
	b.ReportAllocs()
	x := benchRunner()
	for i := 0; i < b.N; i++ {
		rep, err := x.AblationCMBAL("M13")
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + rep.String())
		}
	}
}

func BenchmarkAblationPrefetch(b *testing.B) {
	b.ReportAllocs()
	x := benchRunner()
	for i := 0; i < b.N; i++ {
		rep, err := x.AblationPrefetch("M7")
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + rep.String())
		}
	}
}

func BenchmarkAblationLLCPolicy(b *testing.B) {
	b.ReportAllocs()
	x := benchRunner()
	for i := 0; i < b.N; i++ {
		rep, err := x.AblationLLCPolicy("M7")
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + rep.String())
		}
	}
}

func BenchmarkAblationRTPTableSize(b *testing.B) {
	// The RTP table size is a compile-time architectural constant
	// (core.TableEntries = 64). This bench exercises the overflow
	// accumulation path indirectly by running the throttled policy on
	// the highest-RTP-count title and reporting FRPU accuracy, which
	// would degrade if the table were too small for the frame shape.
	b.ReportAllocs()
	x := benchRunner()
	for i := 0; i < b.N; i++ {
		m, err := hetsim.MixByID("M1") // 3DMark06GT1: most RTPs per frame
		if err != nil {
			b.Fatal(err)
		}
		cfg := x.Cfg
		cfg.Policy = hetsim.PolicyThrottle
		r := hetsim.RunMix(cfg, m)
		if i == 0 {
			b.ReportMetric(r.FRPUMeanAbsErrPct, "absErrPct")
		}
	}
}
