// Command tracedump inspects the synthetic workload generators: it
// prints a prefix of a SPEC-like CPU reference stream or a GPU
// rendering access stream, plus summary statistics (rates, class
// mix, working-set touch counts). Useful when defining custom
// workloads against the public API.
//
//	tracedump -spec 429 -n 20          # first 20 ops of the mcf model
//	tracedump -spec 429 -stats         # rate/locality statistics
//	tracedump -game DOOM3 -stats       # class mix of one frame
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/hetsim"
	"repro/internal/gpu"
	"repro/internal/mem"
	"repro/internal/trace"
	"repro/internal/workloads"
)

func main() {
	var (
		specID = flag.Int("spec", 0, "SPEC application id")
		game   = flag.String("game", "", "game title")
		n      = flag.Int("n", 32, "operations to print")
		stats  = flag.Bool("stats", false, "print summary statistics instead of a dump")
		scale  = flag.Int("scale", 64, "scale factor")
		record = flag.String("record", "", "record -n references of the SPEC stream to a trace file")
		replay = flag.String("replay", "", "replay and summarize a recorded trace file")
	)
	flag.Parse()

	if *replay != "" {
		replayFile(*replay)
		return
	}

	switch {
	case *specID != 0:
		app, err := workloads.Spec(*specID)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		if *record != "" {
			recordSpec(app, *n, *scale, *record)
			return
		}
		dumpSpec(app, *n, *stats, *scale)
	case *game != "":
		g, err := hetsim.GameByName(*game)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		dumpGame(g, *n, *stats, *scale)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func recordSpec(app workloads.SpecApp, n int, scale int, path string) {
	gen := trace.NewGenerator(app.Params.Scale(scale), mem.CPURegion(0))
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer f.Close()
	rec, err := trace.NewRecorder(f)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	for i := 0; i < n; i++ {
		if err := rec.Record(gen.Next()); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if err := rec.Flush(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("recorded %d references of %s to %s\n", rec.Count(), app.Params.Name, path)
}

func replayFile(path string) {
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer f.Close()
	g, err := trace.NewReplay(f)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	writes, instr := 0, 0
	lines := map[uint64]bool{}
	for i := 0; i < g.Len(); i++ {
		op := g.Next()
		instr += op.NonMem + 1
		if op.Write {
			writes++
		}
		lines[op.Addr&^63] = true
	}
	fmt.Printf("%s: %d references, %d instructions, %.2f write frac, %d distinct lines\n",
		path, g.Len(), instr, float64(writes)/float64(g.Len()), len(lines))
}

func dumpSpec(app workloads.SpecApp, n int, stats bool, scale int) {
	gen := trace.NewGenerator(app.Params.Scale(scale), mem.CPURegion(0))
	if !stats {
		fmt.Printf("%s (scaled /%d): first %d memory references\n", app.Params.Name, scale, n)
		for i := 0; i < n; i++ {
			op := gen.Next()
			kind := "LD"
			if op.Write {
				kind = "ST"
			}
			fmt.Printf("  +%4d instr  %s %#012x\n", op.NonMem, kind, op.Addr)
		}
		return
	}
	const ops = 200000
	instr, writes := 0, 0
	lines := map[uint64]int{}
	for i := 0; i < ops; i++ {
		op := gen.Next()
		instr += op.NonMem + 1
		if op.Write {
			writes++
		}
		lines[op.Addr]++
	}
	reuse := 0
	for _, c := range lines {
		if c > 1 {
			reuse += c - 1
		}
	}
	fmt.Printf("%s (scaled /%d) over %d refs:\n", app.Params.Name, scale, ops)
	fmt.Printf("  mem refs / kilo-instr: %.1f\n", float64(ops)/float64(instr)*1000)
	fmt.Printf("  write fraction:        %.2f\n", float64(writes)/ops)
	fmt.Printf("  distinct lines:        %d (%.1f KiB)\n", len(lines), float64(len(lines))*64/1024)
	fmt.Printf("  reuse fraction:        %.2f\n", float64(reuse)/ops)
}

func dumpGame(g workloads.Game, n int, stats bool, scale int) {
	model := g.Model(scale, 1e9)
	gp := gpu.New(gpu.DefaultConfig(scale), model)
	served := 0
	classes := map[mem.Class]int{}
	var first []*mem.Request
	gp.Issue = func(r *mem.Request) bool {
		served++
		classes[r.Class]++
		if len(first) < n {
			first = append(first, r)
		}
		r.Complete(0)
		// Reads need fills; writes are fire-and-forget.
		if !r.Write {
			gp.OnFill(r)
		}
		return true
	}
	frames := gp.FramesDone
	for cycle := uint64(0); gp.FramesDone < frames+1 && cycle < 50_000_000; cycle++ {
		gp.Tick(cycle)
	}
	if !stats {
		fmt.Printf("%s (scaled /%d): first %d LLC accesses of a frame\n", g.Name, scale, n)
		for _, r := range first {
			kind := "RD"
			if r.Write {
				kind = "WR"
			}
			fmt.Printf("  %s %-6s %#012x\n", kind, r.Class, r.Addr)
		}
		return
	}
	fmt.Printf("%s (scaled /%d), one frame:\n", g.Name, scale)
	fmt.Printf("  tiles=%d rtps=%d tex/tile=%d\n", model.Tiles, model.RTPs, model.TexPerTile)
	fmt.Printf("  LLC accesses: %d\n", served)
	for _, c := range []mem.Class{mem.ClassTexture, mem.ClassDepth, mem.ClassColor, mem.ClassVertex} {
		if served > 0 {
			fmt.Printf("  %-7s %6d (%.0f%%)\n", c, classes[c], 100*float64(classes[c])/float64(served))
		}
	}
}
