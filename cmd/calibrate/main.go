// Command calibrate prints, for every Table II title, the measured
// standalone and heterogeneous-baseline frame rates next to the
// paper's Table II FPS (which the paper measured on the 4-CPU
// heterogeneous baseline). It is the development tool used to tune
// the per-game model parameters in internal/workloads.
package main

import (
	"flag"
	"fmt"

	"repro/hetsim"
)

func main() {
	scale := flag.Int("scale", 64, "scale factor")
	flag.Parse()

	cfg := hetsim.DefaultConfig(*scale)
	fmt.Printf("%-14s %10s %10s %10s %8s\n", "title", "alone", "hetero", "tableII", "ratio")
	for _, m := range hetsim.EvalMixes() {
		g, _ := hetsim.GameByName(m.Game)
		alone := hetsim.RunGPUAlone(cfg, m.Game)
		het := hetsim.RunMix(cfg, m)
		ratio := 0.0
		if g.TableFPS > 0 {
			ratio = het.GPUFPS / g.TableFPS
		}
		fmt.Printf("%-14s %10.1f %10.1f %10.1f %8.2f\n",
			m.Game, alone.GPUFPS, het.GPUFPS, g.TableFPS, ratio)
	}
}
