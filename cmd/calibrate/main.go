// Command calibrate prints, for every Table II title, the measured
// standalone and heterogeneous-baseline frame rates next to the
// paper's Table II FPS (which the paper measured on the 4-CPU
// heterogeneous baseline). It is the development tool used to tune
// the per-game model parameters in internal/workloads.
//
// Each title needs two independent simulations (standalone and
// heterogeneous); all of them run concurrently on a bounded pool
// (-workers, default HETSIM_PARALLEL or GOMAXPROCS) and the table
// prints in catalog order. A title whose simulation fails is reported
// on stderr while the rest of the table still prints.
//
// With -fit-twin, calibrate instead runs the analytic-twin calibration
// campaign (DESIGN.md §14): every evaluation mix's games and SPEC
// applications standalone, every mix under every one of the paper's
// nine policies, then a differential least-squares fit of the per-
// policy corrections, written as a versioned, content-digested
// coefficient file for `hetsimd -twin-coeffs`:
//
//	calibrate -scale 1024 -fit-twin twin-coeffs.json
//
// The frontier can be fanned out across a fleet instead of running
// in-process: -server points at a hetsimd or hetsimfleet URL, whose
// nodes must run the same -scale and configuration this invocation
// uses — the coefficient file binds to the local configuration by
// digest, so a mismatched fleet yields a model hetsimd will refuse.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime/debug"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/hetsim"
	"repro/internal/client"
	"repro/internal/cliutil"
	"repro/internal/exp"
	"repro/internal/sim"
	"repro/internal/twin"
	"repro/internal/workloads"
)

func main() { os.Exit(realMain()) }

func realMain() int {
	scale := flag.Int("scale", 64, "scale factor")
	workers := flag.Int("workers", 0, "concurrent simulations (0 = HETSIM_PARALLEL or GOMAXPROCS, 1 = serial)")
	fitTwin := flag.String("fit-twin", "", "run the twin calibration campaign and write the coefficient file here")
	ridge := flag.Float64("ridge", 0, "ridge penalty for -fit-twin (0 = twin.DefaultRidge)")
	server := flag.String("server", "", "hetsimd/hetsimfleet URL: fan the -fit-twin frontier out instead of simulating in-process (nodes must run the same -scale)")
	timeout := flag.Duration("timeout", 0, "per-run deadline for -server submissions (0 = none)")
	flag.Parse()

	cfg := hetsim.DefaultConfig(*scale)
	if err := cfg.Validate(); err != nil {
		cliutil.Errorf("%v", err)
		return cliutil.ExitUsage
	}
	mixes := hetsim.EvalMixes()

	if *fitTwin != "" {
		return fitTwinMain(cfg, mixes, *fitTwin, *ridge, *server, *timeout, *workers)
	}

	n := *workers
	if n <= 0 {
		n = hetsim.DefaultWorkers()
	}
	sem := make(chan struct{}, n)
	type row struct {
		alone, het hetsim.Result
		err        error
	}
	rows := make([]row, len(mixes))
	var mu sync.Mutex
	var wg sync.WaitGroup
	// launch isolates one simulation: a panic fails only this title's
	// row, not the whole calibration table.
	launch := func(i int, what string, run func() hetsim.Result, dst *hetsim.Result) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					mu.Lock()
					rows[i].err = fmt.Errorf("%s panicked: %v\n%s", what, p, debug.Stack())
					mu.Unlock()
				}
			}()
			sem <- struct{}{}
			defer func() { <-sem }()
			*dst = run()
		}()
	}
	for i, m := range mixes {
		i, m := i, m
		launch(i, m.Game+" standalone", func() hetsim.Result { return hetsim.RunGPUAlone(cfg, m.Game) }, &rows[i].alone)
		launch(i, m.Game+" heterogeneous", func() hetsim.Result { return hetsim.RunMix(cfg, m) }, &rows[i].het)
	}
	wg.Wait()

	fmt.Printf("%-14s %10s %10s %10s %8s\n", "title", "alone", "hetero", "tableII", "ratio")
	failed := 0
	for i, m := range mixes {
		if rows[i].err != nil {
			cliutil.Errorf("%v", rows[i].err)
			failed++
			continue
		}
		g, _ := hetsim.GameByName(m.Game)
		ratio := 0.0
		if g.TableFPS > 0 {
			ratio = rows[i].het.GPUFPS / g.TableFPS
		}
		fmt.Printf("%-14s %10.1f %10.1f %10.1f %8.2f\n",
			m.Game, rows[i].alone.GPUFPS, rows[i].het.GPUFPS, g.TableFPS, ratio)
	}
	if failed > 0 {
		cliutil.Errorf("%d title(s) failed", failed)
		return cliutil.ExitRuntime
	}
	return cliutil.ExitOK
}

// fitTwinMain runs the calibration frontier (locally or against a
// fleet), fits the per-policy corrections, and writes the coefficient
// file.
func fitTwinMain(cfg hetsim.Config, mixes []hetsim.Mix, out string, ridge float64, server string, timeout time.Duration, workers int) int {
	ctx, stop := cliutil.SignalContext()
	defer stop()

	n := workers
	if n <= 0 {
		n = hetsim.DefaultWorkers()
	}
	var ex twin.Exec // nil = in-process
	if server != "" {
		ex = &remoteExec{ctx: ctx, cl: client.New(server), timeout: timeout}
	}

	policies := hetsim.AllPolicies()
	cells := len(mixes) * len(policies)
	fmt.Fprintf(os.Stderr, "calibrate: twin frontier at scale %d: %d mixes x %d policies (%d cells) plus standalones\n",
		cfg.Scale, len(mixes), len(policies), cells)
	start := time.Now()
	frontier, err := hetsim.RunTwinFrontier(cfg, mixes, policies, n, ex)
	if err != nil {
		cliutil.Errorf("%v", err)
		return cliutil.ExitRuntime
	}
	fmt.Fprintf(os.Stderr, "calibrate: frontier complete in %v\n", time.Since(start).Round(time.Millisecond))

	coeffs, err := hetsim.FitTwin(cfg, frontier, ridge)
	if err != nil {
		cliutil.Errorf("%v", err)
		return cliutil.ExitRuntime
	}
	model, err := hetsim.NewTwinModel(coeffs)
	if err != nil {
		cliutil.Errorf("%v", err)
		return cliutil.ExitRuntime
	}
	if err := hetsim.SaveTwinCoeffs(out, coeffs); err != nil {
		cliutil.Errorf("%v", err)
		return cliutil.ExitRuntime
	}

	// Per-policy fit quality, in catalog order: the residual RMSes (log
	// space, so they read as relative errors) and the confidence the
	// serving tier will attach — everything an operator needs to pick a
	// -twin-threshold.
	names := make([]string, 0, len(coeffs.Policies))
	for name := range coeffs.Policies {
		names = append(names, name)
	}
	sort.Slice(names, func(i, j int) bool {
		a, _ := strconv.Atoi(names[i])
		b, _ := strconv.Atoi(names[j])
		return a < b
	})
	fmt.Printf("%-16s %9s %9s %8s %11s\n", "policy", "frameRMS", "ipcRMS", "samples", "confidence")
	for _, name := range names {
		pf := coeffs.Policies[name]
		num, _ := strconv.Atoi(name)
		pred, perr := model.PredictMix(cfg, mixes[0].ID, sim.Policy(num))
		conf := 0.0
		if perr == nil {
			conf = pred.Confidence
		}
		fmt.Printf("%-16s %9.4f %9.4f %8d %11.2f\n", sim.Policy(num), pf.FrameRMS, pf.IPCRMS, pf.Samples, conf)
	}
	fmt.Printf("calibration error %.2f%%, %d mix anchor(s), digest %s\n",
		model.CalibrationErrPct(), len(coeffs.MixBase), coeffs.Digest[:12])
	fmt.Printf("wrote %s\n", out)
	return cliutil.ExitOK
}

// remoteExec is the fleet-backed twin.Exec: each frontier cell is
// submitted as a full-tier task through the public run API and ridden
// to completion by the retrying client, so a frontier survives worker
// restarts the same way any campaign does.
type remoteExec struct {
	ctx     context.Context
	cl      *client.Client
	timeout time.Duration
}

func (e *remoteExec) Mix(cfg sim.Config, m workloads.Mix, p sim.Policy) (twin.Sample, error) {
	res, err := e.cl.Run(e.ctx, exp.MixTaskSpec(m.ID, p), e.timeout)
	if err != nil {
		return twin.Sample{}, err
	}
	if res.Result == nil {
		return twin.Sample{}, fmt.Errorf("mix %s/%s: result payload missing", m.ID, p)
	}
	return twin.SampleFromResult(res.Result), nil
}

func (e *remoteExec) GPU(cfg sim.Config, game string) (float64, error) {
	res, err := e.cl.Run(e.ctx, exp.GPUTaskSpec(game), e.timeout)
	if err != nil {
		return 0, err
	}
	if res.Result == nil {
		return 0, fmt.Errorf("gpu %s: result payload missing", game)
	}
	return res.Result.GPUFPS, nil
}

func (e *remoteExec) CPU(cfg sim.Config, specID int) (float64, error) {
	res, err := e.cl.Run(e.ctx, exp.CPUTaskSpec(specID), e.timeout)
	if err != nil {
		return 0, err
	}
	return res.IPC, nil
}
