// Command calibrate prints, for every Table II title, the measured
// standalone and heterogeneous-baseline frame rates next to the
// paper's Table II FPS (which the paper measured on the 4-CPU
// heterogeneous baseline). It is the development tool used to tune
// the per-game model parameters in internal/workloads.
//
// Each title needs two independent simulations (standalone and
// heterogeneous); all of them run concurrently on a bounded pool
// (-workers, default HETSIM_PARALLEL or GOMAXPROCS) and the table
// prints in catalog order.
package main

import (
	"flag"
	"fmt"
	"sync"

	"repro/hetsim"
)

func main() {
	scale := flag.Int("scale", 64, "scale factor")
	workers := flag.Int("workers", 0, "concurrent simulations (0 = HETSIM_PARALLEL or GOMAXPROCS, 1 = serial)")
	flag.Parse()

	cfg := hetsim.DefaultConfig(*scale)
	mixes := hetsim.EvalMixes()

	n := *workers
	if n <= 0 {
		n = hetsim.DefaultWorkers()
	}
	sem := make(chan struct{}, n)
	type row struct {
		alone, het hetsim.Result
	}
	rows := make([]row, len(mixes))
	var wg sync.WaitGroup
	for i, m := range mixes {
		wg.Add(1)
		go func(i int, m hetsim.Mix) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			rows[i].alone = hetsim.RunGPUAlone(cfg, m.Game)
		}(i, m)
		wg.Add(1)
		go func(i int, m hetsim.Mix) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			rows[i].het = hetsim.RunMix(cfg, m)
		}(i, m)
	}
	wg.Wait()

	fmt.Printf("%-14s %10s %10s %10s %8s\n", "title", "alone", "hetero", "tableII", "ratio")
	for i, m := range mixes {
		g, _ := hetsim.GameByName(m.Game)
		ratio := 0.0
		if g.TableFPS > 0 {
			ratio = rows[i].het.GPUFPS / g.TableFPS
		}
		fmt.Printf("%-14s %10.1f %10.1f %10.1f %8.2f\n",
			m.Game, rows[i].alone.GPUFPS, rows[i].het.GPUFPS, g.TableFPS, ratio)
	}
}
