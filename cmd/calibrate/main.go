// Command calibrate prints, for every Table II title, the measured
// standalone and heterogeneous-baseline frame rates next to the
// paper's Table II FPS (which the paper measured on the 4-CPU
// heterogeneous baseline). It is the development tool used to tune
// the per-game model parameters in internal/workloads.
//
// Each title needs two independent simulations (standalone and
// heterogeneous); all of them run concurrently on a bounded pool
// (-workers, default HETSIM_PARALLEL or GOMAXPROCS) and the table
// prints in catalog order. A title whose simulation fails is reported
// on stderr while the rest of the table still prints.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime/debug"
	"sync"

	"repro/hetsim"
	"repro/internal/cliutil"
)

func main() { os.Exit(realMain()) }

func realMain() int {
	scale := flag.Int("scale", 64, "scale factor")
	workers := flag.Int("workers", 0, "concurrent simulations (0 = HETSIM_PARALLEL or GOMAXPROCS, 1 = serial)")
	flag.Parse()

	cfg := hetsim.DefaultConfig(*scale)
	if err := cfg.Validate(); err != nil {
		cliutil.Errorf("%v", err)
		return cliutil.ExitUsage
	}
	mixes := hetsim.EvalMixes()

	n := *workers
	if n <= 0 {
		n = hetsim.DefaultWorkers()
	}
	sem := make(chan struct{}, n)
	type row struct {
		alone, het hetsim.Result
		err        error
	}
	rows := make([]row, len(mixes))
	var mu sync.Mutex
	var wg sync.WaitGroup
	// launch isolates one simulation: a panic fails only this title's
	// row, not the whole calibration table.
	launch := func(i int, what string, run func() hetsim.Result, dst *hetsim.Result) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					mu.Lock()
					rows[i].err = fmt.Errorf("%s panicked: %v\n%s", what, p, debug.Stack())
					mu.Unlock()
				}
			}()
			sem <- struct{}{}
			defer func() { <-sem }()
			*dst = run()
		}()
	}
	for i, m := range mixes {
		i, m := i, m
		launch(i, m.Game+" standalone", func() hetsim.Result { return hetsim.RunGPUAlone(cfg, m.Game) }, &rows[i].alone)
		launch(i, m.Game+" heterogeneous", func() hetsim.Result { return hetsim.RunMix(cfg, m) }, &rows[i].het)
	}
	wg.Wait()

	fmt.Printf("%-14s %10s %10s %10s %8s\n", "title", "alone", "hetero", "tableII", "ratio")
	failed := 0
	for i, m := range mixes {
		if rows[i].err != nil {
			cliutil.Errorf("%v", rows[i].err)
			failed++
			continue
		}
		g, _ := hetsim.GameByName(m.Game)
		ratio := 0.0
		if g.TableFPS > 0 {
			ratio = rows[i].het.GPUFPS / g.TableFPS
		}
		fmt.Printf("%-14s %10.1f %10.1f %10.1f %8.2f\n",
			m.Game, rows[i].alone.GPUFPS, rows[i].het.GPUFPS, g.TableFPS, ratio)
	}
	if failed > 0 {
		cliutil.Errorf("%d title(s) failed", failed)
		return cliutil.ExitRuntime
	}
	return cliutil.ExitOK
}
