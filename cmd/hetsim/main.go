// Command hetsim runs one heterogeneous mix (or a standalone
// workload) under a chosen memory-system management policy and prints
// the measured metrics.
//
// Examples:
//
//	hetsim -mix M7 -policy throttle+prio
//	hetsim -mix W3 -policy baseline -scale 64
//	hetsim -gpu DOOM3            # standalone GPU
//	hetsim -cpu 429              # standalone CPU application
//	hetsim -scenario launch.json # time-varying scenario (DESIGN.md §12)
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/hetsim"
	"repro/internal/cliutil"
)

var policies = map[string]hetsim.Policy{
	"baseline":      hetsim.PolicyBaseline,
	"throttle":      hetsim.PolicyThrottle,
	"throttle+prio": hetsim.PolicyThrottleCPUPrio,
	"sms09":         hetsim.PolicySMS09,
	"sms0":          hetsim.PolicySMS0,
	"dynprio":       hetsim.PolicyDynPrio,
	"helm":          hetsim.PolicyHeLM,
	"bypass":        hetsim.PolicyForcedBypass,
	"cmbal":         hetsim.PolicyCMBAL,
}

func main() { os.Exit(realMain()) }

func realMain() int {
	var (
		mixID   = flag.String("mix", "", "mix id (M1..M14, W1..W14)")
		gpuName = flag.String("gpu", "", "run a game standalone")
		cpuID   = flag.Int("cpu", 0, "run a SPEC application standalone")
		scnFile = flag.String("scenario", "", "run a time-varying scenario spec (JSON file)")
		policy  = flag.String("policy", "baseline", "policy: "+keys())
		scale   = flag.Int("scale", 64, "scale factor (1 = paper-size)")
		target  = flag.Float64("target", 40, "QoS target FPS")
		frames  = flag.Int("frames", 4, "minimum GPU frames in the window")
		metrics = flag.String("metrics-out", "", "write sampled time-series CSV here")
		traceF  = flag.String("trace-out", "", "write Chrome trace_event JSON here (chrome://tracing, Perfetto)")
		stride  = flag.Uint64("metrics-stride", 0, "CPU cycles between metric samples (0 = default)")
		seq     = flag.Bool("seq", false, "force the sequential tick engine (disable intra-run parallelism)")
	)
	flag.Parse()

	modes := 0
	for _, set := range []bool{*mixID != "", *gpuName != "", *cpuID != 0, *scnFile != ""} {
		if set {
			modes++
		}
	}
	if modes > 1 {
		cliutil.Errorf("-mix, -gpu, -cpu, and -scenario are mutually exclusive")
		return cliutil.ExitUsage
	}

	p, ok := policies[*policy]
	if !ok {
		cliutil.Errorf("unknown policy %q (want one of %s)", *policy, keys())
		return cliutil.ExitUsage
	}
	cfg := hetsim.DefaultConfig(*scale)
	cfg.Policy = p
	cfg.TargetFPS = *target
	cfg.MinFrames = *frames
	cfg.NoParallel = *seq
	if err := cfg.Validate(); err != nil {
		cliutil.Errorf("%v", err)
		return cliutil.ExitUsage
	}
	// Fail on unwritable outputs before the simulation, not after it.
	for _, out := range []string{*metrics, *traceF} {
		if out == "" {
			continue
		}
		if err := cliutil.EnsureWritable(out); err != nil {
			cliutil.Errorf("%v", err)
			return cliutil.ExitUsage
		}
	}

	// rec stays nil (observability fully off) unless an output flag
	// asks for it.
	var rec *hetsim.Recorder
	if *metrics != "" || *traceF != "" {
		rec = hetsim.NewRecorder(*stride)
	}

	var label string
	switch {
	case *mixID != "":
		m, err := hetsim.MixByID(*mixID)
		if err != nil {
			cliutil.Errorf("%v", err)
			return cliutil.ExitUsage
		}
		cfg.NumCPUs = len(m.SpecIDs)
		r := hetsim.RunMixObs(cfg, m, rec)
		label = m.ID
		printResult(m.ID+" ("+m.Game+")", r)
	case *gpuName != "":
		if _, err := hetsim.GameByName(*gpuName); err != nil {
			cliutil.Errorf("%v", err)
			return cliutil.ExitUsage
		}
		r := hetsim.RunGPUAloneObs(cfg, *gpuName, rec)
		label = *gpuName
		printResult(*gpuName+" standalone", r)
	case *cpuID != 0:
		if _, err := hetsim.Spec(*cpuID); err != nil {
			cliutil.Errorf("%v", err)
			return cliutil.ExitUsage
		}
		ipc := hetsim.RunCPUAloneObs(cfg, *cpuID, rec)
		label = fmt.Sprintf("spec%d", *cpuID)
		fmt.Printf("SPEC %d standalone IPC: %.3f\n", *cpuID, ipc)
	case *scnFile != "":
		sp, err := hetsim.LoadScenario(*scnFile)
		if err != nil {
			cliutil.Errorf("%v", err)
			return cliutil.ExitUsage
		}
		if err := sp.Validate(); err != nil {
			cliutil.Errorf("%v", err)
			return cliutil.ExitUsage
		}
		r, err := hetsim.RunScenarioObs(cfg, sp, rec)
		if err != nil {
			cliutil.Errorf("%v", err)
			return cliutil.ExitRuntime
		}
		label = r.MixID
		name := sp.Name
		if name == "" {
			name = *scnFile
		}
		printResult("scenario "+name, r)
	default:
		flag.Usage()
		return cliutil.ExitUsage
	}

	if *metrics != "" {
		if err := saveTo(*metrics, rec.WriteCSV); err != nil {
			cliutil.Errorf("%v", err)
			return cliutil.ExitRuntime
		}
		fmt.Fprintf(os.Stderr, "metrics written to %s\n", *metrics)
	}
	if *traceF != "" {
		err := saveTo(*traceF, func(w io.Writer) error { return rec.WriteTrace(w, label) })
		if err != nil {
			cliutil.Errorf("%v", err)
			return cliutil.ExitRuntime
		}
		fmt.Fprintf(os.Stderr, "trace written to %s (load in chrome://tracing or Perfetto)\n", *traceF)
	}
	return cliutil.ExitOK
}

func saveTo(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func printResult(label string, r hetsim.Result) {
	fmt.Printf("%s under %s\n", label, r.Policy)
	fmt.Printf("  window: %d cycles (hit cap: %v)\n", r.MeasuredCycles, r.HitCap)
	if r.Stalled {
		fmt.Printf("  WARNING: watchdog stalled the run at cycle %d (no forward progress)\n", r.StallCycle)
	}
	if r.WarmupCapped {
		fmt.Println("  WARNING: warm-up hit its cycle cap before completing")
	}
	for i, ipc := range r.IPC {
		fmt.Printf("  core%d IPC: %.3f\n", i, ipc)
	}
	if r.GPUFrames > 0 {
		fmt.Printf("  GPU: %.1f FPS over %d frames\n", r.GPUFPS, r.GPUFrames)
		fs := r.FrameStats
		fmt.Printf("  frame times: p50=%.0f p95=%.0f p99=%.0f GPU cycles; jank=%d belowTarget=%d\n",
			fs.P50Cycles, fs.P95Cycles, fs.P99Cycles, fs.Jank, fs.BelowTarget)
	}
	fmt.Printf("  LLC: CPU misses %d, GPU misses %d\n", r.CPULLCMisses, r.GPULLCMisses)
	fmt.Printf("  DRAM: CPU %d KB read / %d KB written; GPU %d KB read / %d KB written\n",
		r.CPUReadBytes/1024, r.CPUWriteBytes/1024, r.GPUReadBytes/1024, r.GPUWriteBytes/1024)
	if r.FRPUMeanAbsErrPct != 0 {
		fmt.Printf("  FRPU: mean error %.2f%%, |error| %.2f%%, relearns %d\n",
			r.FRPUMeanErrPct, r.FRPUMeanAbsErrPct, r.FRPURelearns)
	}
}

func keys() string {
	out := make([]string, 0, len(policies))
	for k := range policies {
		out = append(out, k)
	}
	// Stable order for usage text.
	for i := 0; i < len(out); i++ {
		for j := i + 1; j < len(out); j++ {
			if out[j] < out[i] {
				out[i], out[j] = out[j], out[i]
			}
		}
	}
	return strings.Join(out, ", ")
}
