package main

import (
	"bytes"
	"encoding/json"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseBenchLines(t *testing.T) {
	in := `goos: linux
BenchmarkTick-8   	   10000	      5221 ns/op	       0 B/op	       0 allocs/op
BenchmarkRunMix 	       3	 512345678 ns/op
some sub-benchmark log line
PASS
`
	marks, err := parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(marks) != 2 {
		t.Fatalf("parsed %d marks, want 2", len(marks))
	}
	if marks[0].Name != "BenchmarkTick" || marks[0].NsPerOp != 5221 || marks[0].AllocsPerOp != 0 {
		t.Fatalf("mark 0 = %+v", marks[0])
	}
	if marks[1].Name != "BenchmarkRunMix" || marks[1].Iterations != 3 {
		t.Fatalf("mark 1 = %+v", marks[1])
	}
}

// TestMissingBaselineWarnsNotFails: a -baseline path that doesn't
// exist (fresh machine, CI cache miss) degrades to a comparison-free
// report on exit 0 instead of failing the gate; any other open error
// still fails.
func TestMissingBaselineWarnsNotFails(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test")
	}
	bin := filepath.Join(t.TempDir(), "benchjson")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	cmd := exec.Command(bin, "-baseline", filepath.Join(t.TempDir(), "nope.txt"))
	cmd.Stdin = strings.NewReader("BenchmarkFoo-8  100  5 ns/op\n")
	var stdout, stderr bytes.Buffer
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	if err := cmd.Run(); err != nil {
		t.Fatalf("missing baseline exited non-zero: %v\n%s", err, stderr.String())
	}
	if !strings.Contains(stderr.String(), "not found") {
		t.Fatalf("no warning on stderr: %q", stderr.String())
	}
	var rep report
	if err := json.Unmarshal(stdout.Bytes(), &rep); err != nil {
		t.Fatalf("output is not the JSON report: %v", err)
	}
	if len(rep.Benchmarks) != 1 || rep.Matched != 0 || rep.GeoSpeedup != 0 {
		t.Fatalf("report = %+v, want 1 benchmark and no comparison", rep)
	}
}

// TestParseCustomMetrics: b.ReportMetric units land in the mark's
// metrics map; B/op and allocs/op keep their dedicated fields.
func TestParseCustomMetrics(t *testing.T) {
	in := "BenchmarkServingTier/twin-8  1000000  1250 ns/op  0.82 frame_errpct  0.91 confidence  16 B/op  1 allocs/op\n"
	marks, err := parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(marks) != 1 {
		t.Fatalf("parsed %d marks, want 1", len(marks))
	}
	m := marks[0]
	if m.BytesPerOp != 16 || m.AllocsPerOp != 1 {
		t.Fatalf("mem fields = %+v", m)
	}
	if m.Metrics["frame_errpct"] != 0.82 || m.Metrics["confidence"] != 0.91 {
		t.Fatalf("metrics = %v", m.Metrics)
	}
	if _, leaked := m.Metrics["B/op"]; leaked {
		t.Fatalf("B/op leaked into metrics: %v", m.Metrics)
	}
}

// TestRatioFlag: -ratio records the within-run ns/op ratio under its
// name, and an entry naming an absent benchmark fails the run.
func TestRatioFlag(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test")
	}
	bin := filepath.Join(t.TempDir(), "benchjson")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	bench := "BenchmarkServingTier/full-8  1  2000000000 ns/op\nBenchmarkServingTier/twin-8  1000000  1000 ns/op\n"

	cmd := exec.Command(bin, "-ratio", "twin_speedup=BenchmarkServingTier/full:BenchmarkServingTier/twin")
	cmd.Stdin = strings.NewReader(bench)
	var stdout bytes.Buffer
	cmd.Stdout = &stdout
	if err := cmd.Run(); err != nil {
		t.Fatalf("ratio run failed: %v", err)
	}
	var rep report
	if err := json.Unmarshal(stdout.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if got := rep.Ratios["twin_speedup"]; got != 2e6 {
		t.Fatalf("twin_speedup = %v, want 2e6", got)
	}

	cmd = exec.Command(bin, "-ratio", "x=BenchmarkNope:BenchmarkServingTier/twin")
	cmd.Stdin = strings.NewReader(bench)
	if err := cmd.Run(); err == nil {
		t.Fatal("-ratio with an absent benchmark must fail")
	}
}
