// Command benchjson converts `go test -bench` output into a small
// machine-readable JSON report, optionally comparing against a saved
// baseline run of the same benchmarks.
//
//	go test -bench . -benchmem ./... | benchjson -out BENCH.json
//	go test -bench RunMix -benchmem ./internal/sim | \
//	    benchjson -baseline bench/BASELINE_PR4.txt -out BENCH_PR4.json
//
// The parser understands the standard benchmark result line
//
//	BenchmarkName[-P]  N  X ns/op  [Y B/op  Z allocs/op]
//
// and ignores everything else (goos/pkg headers, PASS/ok trailers,
// sub-benchmark log output), so raw `go test` output can be piped or
// tee'd in unmodified — the baseline file is simply a tee of a
// previous run. Speedups are baseline_ns/current_ns (>1 = faster),
// matched by benchmark name with the GOMAXPROCS suffix stripped, and
// the aggregate is their geometric mean, the standard way to average
// ratios. Exit codes follow the repo convention: 1 when the input
// contains no benchmark lines, 2 for flag errors. A -baseline file
// that does not exist is a warning, not an error: the report is
// emitted without comparison and the exit stays 0, so a fresh machine
// (or CI cache miss) doesn't fail the gate on its first run.
//
// Custom b.ReportMetric units on a result line (e.g. "0.82 errpct")
// are captured into the mark's metrics map. -ratio records named
// within-run ns/op ratios — `-ratio twin_speedup=Bench/full:Bench/twin`
// emits ns(full)/ns(twin), the twin tier's headline speedup — and a
// -ratio naming a benchmark absent from the input is an error, since
// the caller asked this run to record that number.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"strings"

	"repro/internal/cliutil"
)

// mark is one parsed benchmark result line.
type mark struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`

	// Metrics carries custom b.ReportMetric units (e.g. a prediction's
	// frame_errpct), keyed by unit name.
	Metrics map[string]float64 `json:"metrics,omitempty"`

	BaselineNsPerOp float64 `json:"baseline_ns_per_op,omitempty"`
	Speedup         float64 `json:"speedup,omitempty"`
}

// report is the JSON document benchjson emits.
type report struct {
	Scale      string  `json:"hetsim_scale,omitempty"`
	Benchmarks []mark  `json:"benchmarks"`
	Matched    int     `json:"baseline_matched,omitempty"`
	GeoSpeedup float64 `json:"geomean_speedup,omitempty"`

	// Ratios are the -ratio comparisons between two benchmarks of the
	// same run (slow ns/op over fast ns/op; >1 = fast is faster).
	Ratios map[string]float64 `json:"ratios,omitempty"`
}

// trimProcs strips the -P GOMAXPROCS suffix go test appends, so runs
// from machines with different core counts still match by name.
func trimProcs(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

// parse scans go test output for benchmark result lines.
func parse(r io.Reader) ([]mark, error) {
	var out []mark
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		f := strings.Fields(sc.Text())
		if len(f) < 4 || !strings.HasPrefix(f[0], "Benchmark") || f[3] != "ns/op" {
			continue
		}
		iters, err1 := strconv.ParseInt(f[1], 10, 64)
		ns, err2 := strconv.ParseFloat(f[2], 64)
		if err1 != nil || err2 != nil {
			continue
		}
		m := mark{Name: trimProcs(f[0]), Iterations: iters, NsPerOp: ns}
		for i := 4; i+1 < len(f); i += 2 {
			switch f[i+1] {
			case "B/op":
				if v, err := strconv.ParseInt(f[i], 10, 64); err == nil {
					m.BytesPerOp = v
				}
			case "allocs/op":
				if v, err := strconv.ParseInt(f[i], 10, 64); err == nil {
					m.AllocsPerOp = v
				}
			default:
				// A custom b.ReportMetric unit (floats allowed).
				if v, err := strconv.ParseFloat(f[i], 64); err == nil {
					if m.Metrics == nil {
						m.Metrics = make(map[string]float64)
					}
					m.Metrics[f[i+1]] = v
				}
			}
		}
		out = append(out, m)
	}
	return out, sc.Err()
}

func main() { os.Exit(realMain()) }

func realMain() int {
	var (
		baseline = flag.String("baseline", "", "tee'd go test -bench output of a previous run to compare against")
		out      = flag.String("out", "", "write the JSON report here (default stdout)")
		ratios   = flag.String("ratio", "", "record named ns/op ratios between benchmarks of this run: name=slowBench:fastBench[,...]")
	)
	flag.Parse()

	marks, err := parse(os.Stdin)
	if err != nil {
		cliutil.Errorf("reading stdin: %v", err)
		return cliutil.ExitRuntime
	}
	if len(marks) == 0 {
		cliutil.Errorf("no benchmark result lines on stdin")
		return cliutil.ExitRuntime
	}

	rep := report{Scale: os.Getenv("HETSIM_SCALE"), Benchmarks: marks}
	if *ratios != "" {
		// Unlike a missing -baseline, a -ratio naming an absent benchmark
		// is an error: the caller asked this run to record that number.
		byName := make(map[string]float64, len(marks))
		for _, m := range marks {
			byName[m.Name] = m.NsPerOp
		}
		rep.Ratios = make(map[string]float64)
		for _, spec := range strings.Split(*ratios, ",") {
			name, pair, okEq := strings.Cut(spec, "=")
			slow, fast, okColon := strings.Cut(pair, ":")
			if !okEq || !okColon || name == "" {
				cliutil.Errorf("bad -ratio entry %q (want name=slowBench:fastBench)", spec)
				return cliutil.ExitUsage
			}
			sn, sok := byName[trimProcs(strings.TrimSpace(slow))]
			fn, fok := byName[trimProcs(strings.TrimSpace(fast))]
			if !sok || !fok {
				cliutil.Errorf("-ratio %s: benchmark %q or %q not in this run's output", name, slow, fast)
				return cliutil.ExitRuntime
			}
			if fn <= 0 {
				cliutil.Errorf("-ratio %s: %q reported non-positive ns/op", name, fast)
				return cliutil.ExitRuntime
			}
			rep.Ratios[strings.TrimSpace(name)] = sn / fn
		}
	}
	if *baseline != "" {
		f, err := os.Open(*baseline)
		if os.IsNotExist(err) {
			// A first run has no baseline yet; in CI the baseline file
			// may simply not be checked in for this machine. Degrade to
			// a comparison-free report instead of failing the gate.
			fmt.Fprintf(os.Stderr, "benchjson: baseline %s not found; emitting report without comparison\n", *baseline)
			return emit(rep, *out, *baseline)
		}
		if err != nil {
			cliutil.Errorf("%v", err)
			return cliutil.ExitUsage
		}
		base, err := parse(f)
		f.Close()
		if err != nil {
			cliutil.Errorf("reading %s: %v", *baseline, err)
			return cliutil.ExitRuntime
		}
		byName := make(map[string]mark, len(base))
		for _, b := range base {
			byName[b.Name] = b
		}
		logSum := 0.0
		for i := range rep.Benchmarks {
			m := &rep.Benchmarks[i]
			b, ok := byName[m.Name]
			if !ok || m.NsPerOp <= 0 {
				continue
			}
			m.BaselineNsPerOp = b.NsPerOp
			m.Speedup = b.NsPerOp / m.NsPerOp
			logSum += math.Log(m.Speedup)
			rep.Matched++
		}
		if rep.Matched > 0 {
			rep.GeoSpeedup = math.Exp(logSum / float64(rep.Matched))
		}
	}

	return emit(rep, *out, *baseline)
}

// emit writes the report to out (or stdout) and prints the summary
// line.
func emit(rep report, out, baseline string) int {
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		cliutil.Errorf("%v", err)
		return cliutil.ExitRuntime
	}
	buf = append(buf, '\n')
	if out == "" {
		os.Stdout.Write(buf)
		return cliutil.ExitOK
	}
	if err := os.WriteFile(out, buf, 0o644); err != nil {
		cliutil.Errorf("%v", err)
		return cliutil.ExitRuntime
	}
	fmt.Printf("benchjson: %d benchmarks", len(rep.Benchmarks))
	if rep.Matched > 0 {
		fmt.Printf(", geomean speedup %.3fx over %s", rep.GeoSpeedup, baseline)
	}
	for name, r := range rep.Ratios {
		fmt.Printf(", %s %.0fx", name, r)
	}
	fmt.Printf(" -> %s\n", out)
	return cliutil.ExitOK
}
