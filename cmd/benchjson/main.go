// Command benchjson converts `go test -bench` output into a small
// machine-readable JSON report, optionally comparing against a saved
// baseline run of the same benchmarks.
//
//	go test -bench . -benchmem ./... | benchjson -out BENCH.json
//	go test -bench RunMix -benchmem ./internal/sim | \
//	    benchjson -baseline bench/BASELINE_PR4.txt -out BENCH_PR4.json
//
// The parser understands the standard benchmark result line
//
//	BenchmarkName[-P]  N  X ns/op  [Y B/op  Z allocs/op]
//
// and ignores everything else (goos/pkg headers, PASS/ok trailers,
// sub-benchmark log output), so raw `go test` output can be piped or
// tee'd in unmodified — the baseline file is simply a tee of a
// previous run. Speedups are baseline_ns/current_ns (>1 = faster),
// matched by benchmark name with the GOMAXPROCS suffix stripped, and
// the aggregate is their geometric mean, the standard way to average
// ratios. Exit codes follow the repo convention: 1 when the input
// contains no benchmark lines, 2 for flag errors. A -baseline file
// that does not exist is a warning, not an error: the report is
// emitted without comparison and the exit stays 0, so a fresh machine
// (or CI cache miss) doesn't fail the gate on its first run.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"strings"

	"repro/internal/cliutil"
)

// mark is one parsed benchmark result line.
type mark struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`

	BaselineNsPerOp float64 `json:"baseline_ns_per_op,omitempty"`
	Speedup         float64 `json:"speedup,omitempty"`
}

// report is the JSON document benchjson emits.
type report struct {
	Scale      string  `json:"hetsim_scale,omitempty"`
	Benchmarks []mark  `json:"benchmarks"`
	Matched    int     `json:"baseline_matched,omitempty"`
	GeoSpeedup float64 `json:"geomean_speedup,omitempty"`
}

// trimProcs strips the -P GOMAXPROCS suffix go test appends, so runs
// from machines with different core counts still match by name.
func trimProcs(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

// parse scans go test output for benchmark result lines.
func parse(r io.Reader) ([]mark, error) {
	var out []mark
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		f := strings.Fields(sc.Text())
		if len(f) < 4 || !strings.HasPrefix(f[0], "Benchmark") || f[3] != "ns/op" {
			continue
		}
		iters, err1 := strconv.ParseInt(f[1], 10, 64)
		ns, err2 := strconv.ParseFloat(f[2], 64)
		if err1 != nil || err2 != nil {
			continue
		}
		m := mark{Name: trimProcs(f[0]), Iterations: iters, NsPerOp: ns}
		for i := 4; i+1 < len(f); i += 2 {
			v, err := strconv.ParseInt(f[i], 10, 64)
			if err != nil {
				continue
			}
			switch f[i+1] {
			case "B/op":
				m.BytesPerOp = v
			case "allocs/op":
				m.AllocsPerOp = v
			}
		}
		out = append(out, m)
	}
	return out, sc.Err()
}

func main() { os.Exit(realMain()) }

func realMain() int {
	var (
		baseline = flag.String("baseline", "", "tee'd go test -bench output of a previous run to compare against")
		out      = flag.String("out", "", "write the JSON report here (default stdout)")
	)
	flag.Parse()

	marks, err := parse(os.Stdin)
	if err != nil {
		cliutil.Errorf("reading stdin: %v", err)
		return cliutil.ExitRuntime
	}
	if len(marks) == 0 {
		cliutil.Errorf("no benchmark result lines on stdin")
		return cliutil.ExitRuntime
	}

	rep := report{Scale: os.Getenv("HETSIM_SCALE"), Benchmarks: marks}
	if *baseline != "" {
		f, err := os.Open(*baseline)
		if os.IsNotExist(err) {
			// A first run has no baseline yet; in CI the baseline file
			// may simply not be checked in for this machine. Degrade to
			// a comparison-free report instead of failing the gate.
			fmt.Fprintf(os.Stderr, "benchjson: baseline %s not found; emitting report without comparison\n", *baseline)
			return emit(rep, *out, *baseline)
		}
		if err != nil {
			cliutil.Errorf("%v", err)
			return cliutil.ExitUsage
		}
		base, err := parse(f)
		f.Close()
		if err != nil {
			cliutil.Errorf("reading %s: %v", *baseline, err)
			return cliutil.ExitRuntime
		}
		byName := make(map[string]mark, len(base))
		for _, b := range base {
			byName[b.Name] = b
		}
		logSum := 0.0
		for i := range rep.Benchmarks {
			m := &rep.Benchmarks[i]
			b, ok := byName[m.Name]
			if !ok || m.NsPerOp <= 0 {
				continue
			}
			m.BaselineNsPerOp = b.NsPerOp
			m.Speedup = b.NsPerOp / m.NsPerOp
			logSum += math.Log(m.Speedup)
			rep.Matched++
		}
		if rep.Matched > 0 {
			rep.GeoSpeedup = math.Exp(logSum / float64(rep.Matched))
		}
	}

	return emit(rep, *out, *baseline)
}

// emit writes the report to out (or stdout) and prints the summary
// line.
func emit(rep report, out, baseline string) int {
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		cliutil.Errorf("%v", err)
		return cliutil.ExitRuntime
	}
	buf = append(buf, '\n')
	if out == "" {
		os.Stdout.Write(buf)
		return cliutil.ExitOK
	}
	if err := os.WriteFile(out, buf, 0o644); err != nil {
		cliutil.Errorf("%v", err)
		return cliutil.ExitRuntime
	}
	fmt.Printf("benchjson: %d benchmarks", len(rep.Benchmarks))
	if rep.Matched > 0 {
		fmt.Printf(", geomean speedup %.3fx over %s", rep.GeoSpeedup, baseline)
	}
	fmt.Printf(" -> %s\n", out)
	return cliutil.ExitOK
}
