package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"os/exec"
	"path/filepath"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/exp"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/workloads"
)

// chaosCampaign derives a ≥200-task campaign from one seed: every
// standalone, a random slice of the mix×policy grid, and a tail of
// random scenarios (unique by content digest). Deterministic, so the
// reference run and the chaos run drive the identical task set.
func chaosCampaign(t *testing.T, seed int64) []exp.TaskSpec {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	var specs []exp.TaskSpec
	for _, id := range workloads.SpecIDs() {
		specs = append(specs, exp.CPUTaskSpec(id))
	}
	for _, g := range workloads.Games() {
		specs = append(specs, exp.GPUTaskSpec(g.Name))
	}
	type combo struct {
		mix string
		pol sim.Policy
	}
	var combos []combo
	for _, m := range append(workloads.EvalMixes(), workloads.MotivationMixes()...) {
		for p := 0; p < 9; p++ {
			combos = append(combos, combo{m.ID, sim.Policy(p)})
		}
	}
	rng.Shuffle(len(combos), func(i, j int) { combos[i], combos[j] = combos[j], combos[i] })
	for _, c := range combos[:43] {
		specs = append(specs, exp.MixTaskSpec(c.mix, c.pol))
	}
	for len(specs) < 210 {
		sp := scenario.Rand(rng.Uint64())
		specs = append(specs, exp.ScenarioTaskSpec(sp, sim.Policy(rng.Intn(9))))
	}
	keys := make(map[string]bool, len(specs))
	for _, spec := range specs {
		if err := spec.Validate(); err != nil {
			t.Fatalf("campaign spec %s: %v", spec.Key(), err)
		}
		keys[spec.Key()] = true
	}
	if len(keys) < 200 {
		t.Fatalf("campaign has %d distinct keys, want >= 200", len(keys))
	}
	return specs
}

// buildBin compiles one cmd package into a throwaway binary so the
// chaos choreography crosses real process boundaries: SIGKILL, fsync,
// exit codes, TCP reconnects.
func buildBin(t *testing.T, dir, name, pkg string) string {
	t.Helper()
	bin := filepath.Join(dir, name)
	cmd := exec.Command("go", "build", "-o", bin, pkg)
	cmd.Dir = "."
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build %s: %v\n%s", pkg, err, out)
	}
	return bin
}

// proc is one fleet process under test: the running command plus its
// captured stderr for post-mortems.
type proc struct {
	cmd    *exec.Cmd
	addr   string
	stderr *bytes.Buffer
}

// startProc launches bin with args plus an -addr/-addr-file pair and
// waits for the address file.
func startProc(t *testing.T, bin, addr string, args ...string) *proc {
	t.Helper()
	addrFile := filepath.Join(t.TempDir(), "addr")
	full := append([]string{"-addr", addr, "-addr-file", addrFile}, args...)
	p := &proc{cmd: exec.Command(bin, full...), stderr: &bytes.Buffer{}}
	p.cmd.Stderr = p.stderr
	if err := p.cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if p.cmd.ProcessState == nil {
			p.cmd.Process.Kill()
			p.cmd.Wait()
		}
	})
	deadline := time.Now().Add(30 * time.Second)
	for {
		if raw, err := os.ReadFile(addrFile); err == nil && len(raw) > 0 {
			p.addr = string(raw)
			return p
		}
		if time.Now().After(deadline) {
			p.cmd.Process.Kill()
			t.Fatalf("%s never wrote its address file; stderr:\n%s", bin, p.stderr.String())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// chaosClient is tuned to ride out a coordinator restart: fast,
// persistent retries well past the kill→resume window.
func chaosClient(addr string) *client.Client {
	c := client.New("http://" + addr)
	c.MaxAttempts = 60
	c.BaseBackoff = 25 * time.Millisecond
	c.MaxBackoff = 250 * time.Millisecond
	c.PollWait = 500 * time.Millisecond
	return c
}

// runCampaign drives every spec through a bounded submitter pool and
// returns key→canonical JSON of the result.
func runCampaign(t *testing.T, addr string, specs []exp.TaskSpec) map[string][]byte {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	defer cancel()
	results := make(map[string][]byte, len(specs))
	var mu sync.Mutex
	sem := make(chan struct{}, 32)
	var wg sync.WaitGroup
	for _, spec := range specs {
		wg.Add(1)
		go func(spec exp.TaskSpec) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			res, err := chaosClient(addr).Run(ctx, spec, 0)
			if err != nil {
				t.Errorf("run %s: %v", spec.Key(), err)
				return
			}
			raw, err := json.Marshal(res)
			if err != nil {
				t.Errorf("marshal %s: %v", spec.Key(), err)
				return
			}
			mu.Lock()
			results[spec.Key()] = raw
			mu.Unlock()
		}(spec)
	}
	wg.Wait()
	return results
}

// completionCounts parses a journal file into full-task-key →
// completion-record count. Only execution records count (kinds mix/
// gpu/cpu/scn); lease lifecycle and queued records are skipped, as is
// a torn tail from a SIGKILL mid-append.
func completionCounts(path string) map[string]int {
	taskKinds := map[string]bool{
		exp.KindMix: true, exp.KindGPU: true, exp.KindCPU: true, exp.KindScenario: true,
	}
	counts := map[string]int{}
	data, err := os.ReadFile(path)
	if err != nil {
		return counts
	}
	for _, line := range bytes.Split(data, []byte{'\n'}) {
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var rec exp.Record
		if err := json.Unmarshal(line, &rec); err != nil {
			continue
		}
		if taskKinds[rec.Kind] {
			counts[rec.Kind+"/"+rec.Key]++
		}
	}
	return counts
}

func totalCompletions(path string) int {
	n := 0
	for _, c := range completionCounts(path) {
		n += c
	}
	return n
}

// TestChaosFleetKillWorkerAndCoordinatorConverges is the tentpole's
// acceptance test: a seed-deterministic ≥200-task campaign on a
// 3-worker fleet, SIGKILL one worker mid-campaign, then SIGKILL the
// coordinator, restart it with -resume on the same address and
// journal, and require
//
//   - every client converges to results byte-identical to the same
//     campaign against a single plain hetsimd (the fleet is pure
//     orchestration);
//   - zero recompute: no key completed at the coordinator before its
//     SIGKILL is executed again afterwards, measured against the
//     workers' own run journals;
//   - nothing quarantined, and the resumed coordinator's grant
//     counters conserve.
func TestChaosFleetKillWorkerAndCoordinatorConverges(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test")
	}
	specs := chaosCampaign(t, 20170529)
	binDir := t.TempDir()
	fleetBin := buildBin(t, binDir, "hetsimfleet", ".")
	hetsimdBin := buildBin(t, binDir, "hetsimd", "repro/cmd/hetsimd")

	// Reference: the same campaign against one plain hetsimd node. The
	// fleet must reproduce these bytes exactly — same engine config,
	// different orchestration.
	ref := startProc(t, hetsimdBin, "127.0.0.1:0", "-scale", "256", "-fast", "-queue", "256")
	want := runCampaign(t, ref.addr, specs)
	ref.cmd.Process.Signal(syscall.SIGTERM)
	ref.cmd.Wait()
	if t.Failed() {
		t.Fatalf("reference campaign failed; chaos run not attempted; stderr:\n%s", ref.stderr.String())
	}
	if len(want) != len(specs) {
		t.Fatalf("reference campaign returned %d results, want %d", len(want), len(specs))
	}

	// Fleet under chaos: coordinator + 3 joined workers, each with its
	// own run journal (the execution evidence for the zero-recompute
	// check). Lease TTL 5s: generous next to the TTL/3 heartbeat, short
	// enough that stealing from a SIGKILLed worker doesn't stall the
	// test.
	dir := t.TempDir()
	fleetJournal := filepath.Join(dir, "fleet.jsonl")
	coord := startProc(t, fleetBin, "127.0.0.1:0",
		"-journal", fleetJournal, "-lease", "5s", "-grace", "10s")

	workerJournals := make([]string, 3)
	workers := make([]*proc, 3)
	for i := range workers {
		workerJournals[i] = filepath.Join(dir, fmt.Sprintf("w%d.jsonl", i+1))
		workers[i] = startProc(t, hetsimdBin, "127.0.0.1:0",
			"-scale", "256", "-fast", "-workers", "1",
			"-join", "http://"+coord.addr, "-worker-id", fmt.Sprintf("w%d", i+1),
			"-journal", workerJournals[i])
	}

	done := make(chan map[string][]byte, 1)
	go func() { done <- runCampaign(t, coord.addr, specs) }()

	awaitCompletions := func(n int, what string) {
		deadline := time.Now().Add(4 * time.Minute)
		for totalCompletions(fleetJournal) < n {
			if time.Now().After(deadline) {
				t.Fatalf("coordinator journal never reached %d completions before %s; stderr:\n%s",
					n, what, coord.stderr.String())
			}
			time.Sleep(50 * time.Millisecond)
		}
	}

	// Chaos step 1: SIGKILL a worker mid-campaign. Its leases stop
	// heartbeating, expire, and are stolen by the survivors.
	awaitCompletions(25, "worker SIGKILL")
	if err := workers[2].cmd.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	workers[2].cmd.Wait()

	// Chaos step 2: SIGKILL the coordinator itself, snapshotting what
	// it had completed (journal is fsynced per record, so the snapshot
	// is exactly the pre-crash store).
	awaitCompletions(60, "coordinator SIGKILL")
	if err := coord.cmd.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	coord.cmd.Wait()
	completedPreKill := completionCounts(fleetJournal)
	preKill := make([]map[string]int, len(workerJournals))
	for i, j := range workerJournals {
		preKill[i] = completionCounts(j)
	}
	t.Logf("SIGKILLed coordinator after %d of %d completions (worker w3 killed earlier)",
		len(completedPreKill), len(specs))

	// Restart on the SAME address with -resume: the journal replays the
	// store and the pending queue, live workers reattach by themselves,
	// and the already-running clients converge without rediscovery.
	coord2 := startProc(t, fleetBin, coord.addr,
		"-journal", fleetJournal, "-resume", "-lease", "5s", "-grace", "10s")

	// The killed worker comes back too, resuming its own run journal:
	// its memo replays, so a re-leased key it already executed serves
	// from memory without a new execution record.
	w3b := startProc(t, hetsimdBin, "127.0.0.1:0",
		"-scale", "256", "-fast", "-workers", "1",
		"-join", "http://"+coord.addr, "-worker-id", "w3",
		"-journal", workerJournals[2], "-resume")

	got := <-done
	if t.Failed() {
		t.Fatalf("chaos campaign failed; coordinator stderr:\n%s", coord2.stderr.String())
	}
	for _, spec := range specs {
		key := spec.Key()
		if !bytes.Equal(got[key], want[key]) {
			t.Errorf("%s: fleet result differs from single-node run\nwant %s\ngot  %s",
				key, want[key], got[key])
		}
	}

	// Fleet health after convergence: nothing quarantined, every
	// campaign key in the store, and the resumed coordinator's grant
	// ledger conserves (granted = completed + expired + failed +
	// in-flight).
	mctx, mcancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer mcancel()
	m, err := chaosClient(coord2.addr).Metrics(mctx)
	if err != nil {
		t.Fatal(err)
	}
	if m["fleet_quarantined"] != 0 {
		t.Errorf("fleet_quarantined = %g, want 0", m["fleet_quarantined"])
	}
	if int(m["fleet_store_size"]) != len(specs) {
		t.Errorf("fleet_store_size = %g, want %d", m["fleet_store_size"], len(specs))
	}
	if granted, acct := m["fleet_leases_granted"],
		m["fleet_grants_completed"]+m["fleet_leases_expired"]+m["fleet_grants_failed"]+m["fleet_leases_inflight"]; granted != acct {
		t.Errorf("grant ledger does not conserve: granted %g != completed+expired+failed+inflight %g", granted, acct)
	}

	// Graceful teardown: workers first (they deregister), the resumed
	// coordinator last; all must exit 0.
	for i, w := range []*proc{workers[0], workers[1], w3b} {
		w.cmd.Process.Signal(syscall.SIGTERM)
		if err := w.cmd.Wait(); err != nil {
			t.Errorf("worker %d exit: %v; stderr:\n%s", i+1, err, w.stderr.String())
		}
	}
	coord2.cmd.Process.Signal(syscall.SIGTERM)
	if err := coord2.cmd.Wait(); err != nil {
		t.Errorf("coordinator exit: %v; stderr:\n%s", err, coord2.stderr.String())
	}

	// Zero recompute, measured where execution actually happens: a key
	// the coordinator had completed before its SIGKILL must gain no new
	// execution record in any worker's journal afterwards. (Duplicates
	// from before the crash — a worker that finished but died before
	// reporting — are inherent to at-least-once dispatch and excluded.)
	for key := range completedPreKill {
		for i, j := range workerJournals {
			if after := completionCounts(j)[key] - preKill[i][key]; after != 0 {
				t.Errorf("completed key %s was re-executed %d time(s) on w%d after the coordinator crash",
					key, after, i+1)
			}
		}
	}
}

// TestFleetResumeRequiresJournal: flag validation crosses the process
// boundary with the usage exit code.
func TestFleetResumeRequiresJournal(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test")
	}
	bin := buildBin(t, t.TempDir(), "hetsimfleet", ".")
	err := exec.Command(bin, "-resume").Run()
	var ee *exec.ExitError
	if !errors.As(err, &ee) || ee.ExitCode() != 2 {
		t.Fatalf("hetsimfleet -resume (no -journal) exited %v, want exit code 2", err)
	}
}
