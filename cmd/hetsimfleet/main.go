// Command hetsimfleet coordinates a fleet of hetsimd workers
// (DESIGN.md §13): it serves the same public API as one hetsimd —
// hetsimctl and internal/client drive it unchanged — but instead of
// simulating locally it shards the campaign across workers that joined
// with `hetsimd -join`, using lease-based dispatch with heartbeat
// renewal and work-stealing on expiry.
//
//	hetsimfleet -addr 127.0.0.1:9090 -journal fleet.jsonl
//	hetsimd -addr 127.0.0.1:8081 -join http://127.0.0.1:9090 -journal w1.jsonl
//	hetsimd -addr 127.0.0.1:8082 -join http://127.0.0.1:9090 -journal w2.jsonl
//	hetsimctl -addr 127.0.0.1:9090 run mix/M7/2
//
// Results are content-addressed by task key: a completed key is never
// executed again — not on resubmission, not after a worker SIGKILL
// (its leases expire and are stolen), not after a coordinator restart
// with -resume (the journal replays the store, the pending queue, and
// re-arms in-flight leases). Tasks that panic on enough distinct
// workers are quarantined with the stack preserved instead of rolling
// through the whole fleet.
//
// With -lease-batch N, a lease whose first grant is a twin-tier task
// (microseconds of work) carries up to N-1 further consecutive
// twin-tier tasks from the queue head, so per-task HTTP round-trips
// stop dominating analytic campaigns. Cycle-accurate tasks are never
// batched and never overtaken by the batch.
//
// The first SIGINT/SIGTERM drains: admission and new grants stop,
// in-flight leases get up to -grace to report, and pending work stays
// journaled for the next -resume. SIGKILL at any instant is equivalent
// to a crash the journal already covers.
//
// High availability (DESIGN.md §15): a second hetsimfleet started with
// `-standby -follow http://primary:9090` tails the primary's journal
// over the replication stream, mirrors it into its own -journal, and
// promotes itself — automatically after -failover-after without
// primary contact, or when an operator runs `hetsimctl promote` —
// re-arming in-flight leases exactly as -resume does. Promotion takes
// office at a higher term; the deposed primary (if still alive) fences
// itself, and agents/clients reject anything it says afterwards.
//
//	hetsimfleet -addr 127.0.0.1:9090 -journal p.jsonl
//	hetsimfleet -addr 127.0.0.1:9091 -journal s.jsonl \
//	    -standby -follow http://127.0.0.1:9090 -failover-after 5s
//	hetsimd -join http://127.0.0.1:9090,http://127.0.0.1:9091 ...
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"strings"
	"time"

	"repro/internal/cliutil"
	"repro/internal/exp"
	"repro/internal/fleet"
)

func main() { os.Exit(realMain()) }

func realMain() int {
	var (
		addr     = flag.String("addr", "127.0.0.1:9090", "listen address (host:port, port 0 picks a free port)")
		addrFile = flag.String("addr-file", "", "write the actual listen address here once serving (for scripts and tests)")
		queue    = flag.Int("queue", 4096, "pending-queue bound; submissions beyond it are shed with 429")
		leaseTTL = flag.Duration("lease", 15*time.Second, "lease TTL: a grant not renewed within it is re-enqueued for stealing")
		quarN    = flag.Int("quarantine-threshold", 2, "distinct workers whose panics quarantine a task")
		maxAtt   = flag.Int("max-attempts", 16, "grants per task before it is quarantined as a lease black hole")
		batch    = flag.Int("lease-batch", 1, "max tasks per lease response when twin-tier tasks head the queue (1 = off)")
		grace    = flag.Duration("grace", 30*time.Second, "drain grace: how long shutdown waits for in-flight leases")
		journalF = flag.String("journal", "", "append fleet lifecycle + results to this crash-safe JSONL journal")
		resumeF  = flag.Bool("resume", false, "replay the -journal at startup: completed keys serve from the store, pending re-enqueue, leases re-arm")
		standbyF = flag.Bool("standby", false, "run as a hot standby: follow -follow's journal and take over on promotion")
		followF  = flag.String("follow", "", "primary coordinator base URL to replicate from (requires -standby)")
		pollF    = flag.Duration("poll", 500*time.Millisecond, "standby replication poll interval")
		failover = flag.Duration("failover-after", 0, "standby: promote automatically after this long without primary contact (0 = only hetsimctl promote)")
		idF      = flag.String("id", "", "coordinator identity stamped on journaled term records (default: listen address)")
	)
	flag.Parse()

	if *resumeF && *journalF == "" {
		cliutil.Errorf("-resume requires -journal")
		return cliutil.ExitUsage
	}
	if *standbyF && *followF == "" {
		cliutil.Errorf("-standby requires -follow <primary URL>")
		return cliutil.ExitUsage
	}
	if *standbyF && *resumeF {
		cliutil.Errorf("-standby replicates from the primary; it cannot also -resume a local journal")
		return cliutil.ExitUsage
	}

	var journal *exp.Journal
	var recs []exp.Record
	if *journalF != "" {
		j, r, jstats, err := exp.OpenJournal(*journalF)
		if err != nil {
			cliutil.Errorf("%v", err)
			return cliutil.ExitRuntime
		}
		defer j.Close()
		journal = j
		recs = r
		if jstats.Skipped() > 0 {
			fmt.Fprintf(os.Stderr, "journal %s: skipped %d corrupt line(s), repaired %d torn tail(s)\n",
				*journalF, jstats.CorruptLines, jstats.TornTail)
		}
	}

	ctx, stop := cliutil.SignalContext()
	defer stop()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		cliutil.Errorf("%v", err)
		return cliutil.ExitRuntime
	}
	id := *idF
	if id == "" {
		id = ln.Addr().String()
	}
	cfg := fleet.Config{
		LeaseTTL:            *leaseTTL,
		QueueDepth:          *queue,
		QuarantineThreshold: *quarN,
		MaxAttempts:         *maxAtt,
		LeaseBatch:          *batch,
		ID:                  id,
		Journal:             journal,
	}

	// The lease sweeper outlives the first signal: expiry must keep
	// working through the drain so stuck leases still release.
	sweepCtx, sweepCancel := context.WithCancel(context.Background())
	defer sweepCancel()

	var handler http.Handler
	var sb *fleet.Standby
	var c *fleet.Coordinator
	if *standbyF {
		sb = fleet.NewStandby(fleet.StandbyConfig{
			Primary:       strings.TrimRight(*followF, "/"),
			Fleet:         cfg,
			PollInterval:  *pollF,
			FailoverAfter: *failover,
			Logf: func(format string, args ...any) {
				fmt.Fprintf(os.Stderr, "hetsimfleet: "+format+"\n", args...)
			},
		})
		handler = sb.Handler()
		go sb.Run(sweepCtx)
	} else {
		c = fleet.New(cfg)
		if *resumeF {
			st := c.Replay(recs)
			fmt.Fprintf(os.Stderr,
				"resumed from %s: %d completed, %d pending, %d lease(s) re-armed, %d quarantined, %d unrecoverable, %d foreign record(s)\n",
				*journalF, st.Completed, st.Pending, st.Leased, st.Quarantined, st.Unrecoverable, st.Ignored)
		}
		// Take office: the term record lands in the journal before any
		// request is served at it, so a later incarnation (or a standby
		// replicating this journal) always opens strictly higher.
		term := c.OpenTerm()
		fmt.Fprintf(os.Stderr, "hetsimfleet: serving at term %d\n", term)
		c.Start(sweepCtx)
		handler = c.Handler()
	}

	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(ln.Addr().String()), 0o644); err != nil {
			cliutil.Errorf("%v", err)
			return cliutil.ExitRuntime
		}
	}
	if *standbyF {
		fmt.Fprintf(os.Stderr, "hetsimfleet: standby on http://%s following %s\n", ln.Addr(), *followF)
	} else {
		fmt.Fprintf(os.Stderr, "hetsimfleet: coordinating on http://%s\n", ln.Addr())
	}

	hs := &http.Server{Handler: handler}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	select {
	case err := <-serveErr:
		cliutil.Errorf("%v", err)
		return cliutil.ExitRuntime
	case <-ctx.Done():
	}

	// Drain: stop admission and grants, give in-flight leases -grace to
	// report (the HTTP server stays up so completions still land), then
	// stop. Pending tasks are already journaled from admission. A
	// standby that promoted drains its coordinator; one still following
	// has nothing in flight and exits directly.
	if sb != nil {
		c = sb.Coordinator()
	}
	if c != nil {
		fmt.Fprintln(os.Stderr, "hetsimfleet: draining...")
		dctx, dcancel := context.WithTimeout(context.Background(), *grace)
		defer dcancel()
		queued, inflight := c.Drain(dctx)
		fmt.Fprintf(os.Stderr, "hetsimfleet: drained (%d pending journaled, %d lease(s) abandoned to the journal)\n", queued, inflight)
	}

	sctx, scancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer scancel()
	_ = hs.Shutdown(sctx)

	if journal != nil {
		if err := journal.Err(); err != nil {
			cliutil.Errorf("%v", err)
			return cliutil.ExitRuntime
		}
	}
	return cliutil.ExitOK
}
