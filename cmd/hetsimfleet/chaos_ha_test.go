package main

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestChaosHAPrimaryKillStandbyPromotes is PR 10's acceptance gate: a
// seed-deterministic 210-task campaign on a 3-worker fleet fronted by a
// primary + hot-standby coordinator pair, SIGKILL the primary
// mid-campaign, and require
//
//   - the standby auto-promotes (epoch-fenced, term 2) and the campaign
//     converges to results byte-identical to a single plain hetsimd;
//   - zero recompute across the failover: no key whose completion had
//     replicated to the standby before the kill gains a new execution
//     record in any worker journal afterwards;
//   - zero stale-term grants accepted by any worker, nothing
//     quarantined, and the promoted coordinator's grant ledger
//     conserves;
//   - graceful SIGTERM teardown exits 0 everywhere.
func TestChaosHAPrimaryKillStandbyPromotes(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test")
	}
	// Minutes of wall clock on top of the §13 chaos tests in this
	// package — together they overflow go test's default timeout — so
	// the kill drill runs behind `make chaos-ha` (in ci, under -race)
	// rather than in every plain `go test ./...`.
	if os.Getenv("HETSIM_CHAOS_HA") == "" {
		t.Skip("set HETSIM_CHAOS_HA=1 (make chaos-ha) to run the HA kill drill")
	}
	specs := chaosCampaign(t, 20260808)
	binDir := t.TempDir()
	fleetBin := buildBin(t, binDir, "hetsimfleet", ".")
	hetsimdBin := buildBin(t, binDir, "hetsimd", "repro/cmd/hetsimd")

	// Reference: the same campaign against one plain hetsimd. The HA
	// fleet must reproduce these bytes exactly — failover is pure
	// orchestration, invisible in the results.
	ref := startProc(t, hetsimdBin, "127.0.0.1:0", "-scale", "256", "-fast", "-queue", "256")
	want := runCampaign(t, ref.addr, specs)
	ref.cmd.Process.Signal(syscall.SIGTERM)
	ref.cmd.Wait()
	if t.Failed() {
		t.Fatalf("reference campaign failed; chaos run not attempted; stderr:\n%s", ref.stderr.String())
	}

	// Primary + standby, each journaling. The standby tails the
	// primary's journal every 100ms and promotes itself after 2s without
	// contact — well inside the clients' retry budget.
	dir := t.TempDir()
	primaryJournal := filepath.Join(dir, "primary.jsonl")
	standbyJournal := filepath.Join(dir, "standby.jsonl")
	primary := startProc(t, fleetBin, "127.0.0.1:0",
		"-journal", primaryJournal, "-lease", "5s", "-grace", "10s", "-id", "primary")
	standby := startProc(t, fleetBin, "127.0.0.1:0",
		"-journal", standbyJournal, "-standby", "-follow", "http://"+primary.addr,
		"-poll", "100ms", "-failover-after", "2s",
		"-lease", "5s", "-grace", "10s", "-id", "standby")

	// Workers and clients both address the replicated pair. chaosClient
	// prefixes "http://" onto the first element only, so the second
	// carries its own scheme.
	fleetAddr := primary.addr + ",http://" + standby.addr
	workerJournals := make([]string, 3)
	workers := make([]*proc, 3)
	for i := range workers {
		workerJournals[i] = filepath.Join(dir, fmt.Sprintf("w%d.jsonl", i+1))
		workers[i] = startProc(t, hetsimdBin, "127.0.0.1:0",
			"-scale", "256", "-fast", "-workers", "1",
			"-join", "http://"+fleetAddr, "-worker-id", fmt.Sprintf("w%d", i+1),
			"-journal", workerJournals[i])
	}

	done := make(chan map[string][]byte, 1)
	go func() { done <- runCampaign(t, fleetAddr, specs) }()

	// Let the campaign get well underway on the primary.
	deadline := time.Now().Add(4 * time.Minute)
	for totalCompletions(primaryJournal) < 40 {
		if time.Now().After(deadline) {
			t.Fatalf("primary journal never reached 40 completions; stderr:\n%s", primary.stderr.String())
		}
		time.Sleep(50 * time.Millisecond)
	}

	// Snapshot what the primary has completed, then wait for the
	// standby's mirror to cover every one of those keys: the keys in
	// this set are exactly the ones the promoted standby must never
	// grant again. (Completions landing between this snapshot and the
	// SIGKILL may fall in the replication gap; at-least-once dispatch
	// re-runs them deterministically, so correctness is unaffected —
	// they are simply outside the zero-recompute assertion.)
	replicated := completionCounts(primaryJournal)
	caughtUp := func() bool {
		mirror := completionCounts(standbyJournal)
		for key := range replicated {
			if mirror[key] == 0 {
				return false
			}
		}
		return true
	}
	for !caughtUp() {
		if time.Now().After(deadline) {
			t.Fatalf("standby mirror never caught up to %d primary completions; stderr:\n%s",
				len(replicated), standby.stderr.String())
		}
		time.Sleep(50 * time.Millisecond)
	}

	// SIGKILL the primary. No drain, no warning: the standby must notice
	// the silence, promote itself at term 2, re-arm the in-flight
	// leases, and absorb the rest of the campaign.
	if err := primary.cmd.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	primary.cmd.Wait()
	preKill := make([]map[string]int, len(workerJournals))
	for i, j := range workerJournals {
		preKill[i] = completionCounts(j)
	}
	t.Logf("SIGKILLed primary with %d completions replicated to the standby", len(replicated))

	got := <-done
	if t.Failed() {
		t.Fatalf("campaign failed across failover; standby stderr:\n%s", standby.stderr.String())
	}
	for _, spec := range specs {
		key := spec.Key()
		if !bytes.Equal(got[key], want[key]) {
			t.Errorf("%s: HA fleet result differs from single-node run\nwant %s\ngot  %s",
				key, want[key], got[key])
		}
	}

	// The promoted standby's health: everything in the store, nothing
	// quarantined, ledger conserved, term advanced past the primary's.
	mctx, mcancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer mcancel()
	m, err := chaosClient(standby.addr).Metrics(mctx)
	if err != nil {
		t.Fatal(err)
	}
	if m["fleet_quarantined"] != 0 {
		t.Errorf("fleet_quarantined = %g, want 0", m["fleet_quarantined"])
	}
	if int(m["fleet_store_size"]) != len(specs) {
		t.Errorf("fleet_store_size = %g, want %d", m["fleet_store_size"], len(specs))
	}
	if granted, acct := m["fleet_leases_granted"],
		m["fleet_grants_completed"]+m["fleet_leases_expired"]+m["fleet_grants_failed"]+m["fleet_leases_inflight"]; granted != acct {
		t.Errorf("grant ledger does not conserve: granted %g != completed+expired+failed+inflight %g", granted, acct)
	}
	if m["fleet_term"] < 2 {
		t.Errorf("fleet_term = %g, want >= 2 after promotion", m["fleet_term"])
	}
	if _, ok := m["fleet_affinity_hits"]; !ok {
		t.Error("fleet_affinity_hits missing from the promoted coordinator's metrics")
	}

	// No worker accepted (or even saw and had to reject) work it then
	// executed under a stale term: with the primary dead at the moment
	// of promotion there is no stale coordinator left to grant, so the
	// rejection counter must read zero at every worker.
	for i, w := range workers {
		wm, err := chaosClient(w.addr).Metrics(mctx)
		if err != nil {
			t.Fatalf("worker %d metrics: %v", i+1, err)
		}
		if wm["fleet_agent_stale_grants"] != 0 {
			t.Errorf("worker %d fleet_agent_stale_grants = %g, want 0", i+1, wm["fleet_agent_stale_grants"])
		}
	}

	// Graceful teardown: workers first, promoted coordinator last.
	for i, w := range workers {
		w.cmd.Process.Signal(syscall.SIGTERM)
		if err := w.cmd.Wait(); err != nil {
			t.Errorf("worker %d exit: %v; stderr:\n%s", i+1, err, w.stderr.String())
		}
	}
	standby.cmd.Process.Signal(syscall.SIGTERM)
	if err := standby.cmd.Wait(); err != nil {
		t.Errorf("standby exit: %v; stderr:\n%s", err, standby.stderr.String())
	}
	if !strings.Contains(standby.stderr.String(), "promoting") {
		t.Errorf("standby stderr never logged a promotion:\n%s", standby.stderr.String())
	}

	// Zero recompute: every key whose completion had replicated to the
	// standby before the SIGKILL must gain no new execution record in
	// any worker journal afterwards.
	for key := range replicated {
		for i, j := range workerJournals {
			if after := completionCounts(j)[key] - preKill[i][key]; after != 0 {
				t.Errorf("replicated key %s was re-executed %d time(s) on w%d after the failover",
					key, after, i+1)
			}
		}
	}
}

// TestOperatorPromoteViaCtl: hetsimctl promote against a standby
// promotes it (planned failover) and fences the still-running primary;
// against the primary it reports "already primary".
func TestOperatorPromoteViaCtl(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test")
	}
	binDir := t.TempDir()
	fleetBin := buildBin(t, binDir, "hetsimfleet", ".")
	ctlBin := buildBin(t, binDir, "hetsimctl", "repro/cmd/hetsimctl")

	dir := t.TempDir()
	primary := startProc(t, fleetBin, "127.0.0.1:0",
		"-journal", filepath.Join(dir, "p.jsonl"), "-id", "primary")
	standby := startProc(t, fleetBin, "127.0.0.1:0",
		"-journal", filepath.Join(dir, "s.jsonl"),
		"-standby", "-follow", "http://"+primary.addr, "-poll", "50ms", "-id", "standby")

	// Against the serving primary, promote is informational: it names
	// the node's role and term and does not disturb it.
	out, err := exec.Command(ctlBin, "-addr", primary.addr, "promote").CombinedOutput()
	if err != nil || !strings.Contains(string(out), "already primary") {
		t.Fatalf("promote against primary: err=%v out=%s", err, out)
	}

	out, err = exec.Command(ctlBin, "-addr", standby.addr, "promote").CombinedOutput()
	if err != nil || !strings.Contains(string(out), "promoted\tterm=2") {
		t.Fatalf("promote against standby: err=%v out=%s", err, out)
	}

	// The promoted ex-standby serves the public API (ready); the fenced
	// primary bounces campaign traffic until an operator retires it.
	if out, err := exec.Command(ctlBin, "-addr", standby.addr, "-timeout", "10s", "wait-ready").CombinedOutput(); err != nil {
		t.Fatalf("promoted standby not ready: %v\n%s", err, out)
	}

	for name, p := range map[string]*proc{"primary": primary, "standby": standby} {
		p.cmd.Process.Signal(syscall.SIGTERM)
		if err := p.cmd.Wait(); err != nil {
			t.Errorf("%s exit: %v; stderr:\n%s", name, err, p.stderr.String())
		}
	}
}
