// Command hetsimd serves simulations as a service: an HTTP JSON API
// over the experiment runner, for driving campaigns from scripts and
// notebooks without linking the simulator.
//
//	hetsimd -addr 127.0.0.1:8080 -journal runs.jsonl
//	hetsimctl -addr 127.0.0.1:8080 run mix/M7/2
//
// A time-varying scenario (DESIGN.md §12) can be enqueued at startup
// with -scenario file [-scenario-policy p]; clients submit them with
// hetsimctl -scenario.
//
// With -twin-coeffs (a calibration artifact from `calibrate
// -fit-twin`), the daemon also serves the analytic twin tier
// (DESIGN.md §14): twin- and auto-tier submissions (`hetsimctl -tier
// auto run ...`) are answered from the calibrated closed-form model in
// microseconds, auto escalating to cycle-accurate simulation when the
// prediction's confidence falls below -twin-threshold or the query
// leaves the calibrated hull. Twin answers live under their own
// "twin/"-prefixed key space, so they never displace full-simulation
// memos or journal records.
//
// The daemon is hardened for long-lived operation (DESIGN.md §10):
// admission control sheds load past a bounded queue (429 + Retry-
// After), per-request deadlines interrupt overlong simulations, a
// per-family circuit breaker quarantines panicking configurations, and
// /healthz, /readyz, /metricsz expose liveness, drain state, and every
// admission/breaker/journal counter.
//
// Shutdown is crash-consistent: the first SIGINT/SIGTERM drains —
// in-flight simulations finish (bounded by -grace) and journal their
// results, queued-but-unstarted tasks are journaled as pending — and a
// restart with -resume replays the journal, so completed runs serve
// from the memo and pending ones re-enqueue. A second signal forces
// exit. Killing the daemon outright (SIGKILL) loses nothing either:
// the journal is fsynced per record, and retrying clients converge to
// the same results after -resume.
//
// With -join, the daemon doubles as a fleet worker (DESIGN.md §13): it
// registers with the hetsimfleet coordinator at the given URL, polls
// for task leases, executes them through the same local runner (so
// leased runs share the daemon's memo, journal, and engine config),
// heartbeats while running, and reports typed outcomes. A worker that
// loses its coordinator keeps polling with backoff and reattaches when
// it returns; a worker killed outright simply stops heartbeating and
// its leases are stolen by the rest of the fleet. -join accepts a
// comma-separated list (primary,standby): the worker fails over to the
// promoted standby and refuses grants and completions from a deposed
// primary's stale term (DESIGN.md §15).
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"time"

	"repro/internal/client"
	"repro/internal/cliutil"
	"repro/internal/exp"
	"repro/internal/fleet"
	"repro/internal/scenario"
	"repro/internal/server"
	"repro/internal/sim"
	"repro/internal/twin"
)

func main() { os.Exit(realMain()) }

func realMain() int {
	var (
		addr     = flag.String("addr", "127.0.0.1:8080", "listen address (host:port, port 0 picks a free port)")
		addrFile = flag.String("addr-file", "", "write the actual listen address here once serving (for scripts and tests)")
		scale    = flag.Int("scale", 96, "scale factor for all simulations")
		prefetch = flag.Bool("prefetch", false, "enable the CPU L2 stride prefetchers")
		fast     = flag.Bool("fast", false, "shorter windows (smoke-test quality)")
		workers  = flag.Int("workers", 0, "concurrent simulations (0 = HETSIM_PARALLEL or GOMAXPROCS)")
		queue    = flag.Int("queue", 64, "admission queue depth; submissions beyond it are shed with 429")
		timeout  = flag.Duration("run-timeout", 0, "per-simulation wall-clock cap (0 = unbounded)")
		grace    = flag.Duration("grace", 30*time.Second, "drain grace: how long shutdown waits for in-flight runs")
		brkN     = flag.Int("breaker-threshold", 3, "consecutive panics that trip a config family's breaker")
		brkCool  = flag.Duration("breaker-cooldown", 30*time.Second, "how long a tripped family stays open before a probe")
		journalF = flag.String("journal", "", "append completed runs to this crash-safe JSONL journal")
		resumeF  = flag.Bool("resume", false, "replay the -journal at startup: completed runs memoize, pending ones re-enqueue")
		seq      = flag.Bool("seq", false, "daemon-wide default: sequential tick engine (a task's engine field still overrides)")
		scnFile  = flag.String("scenario", "", "enqueue this scenario spec file at startup (a campaign is data, not code)")
		scnPol   = flag.String("scenario-policy", "baseline", "policy for the -scenario run")
		joinURL  = flag.String("join", "", "hetsimfleet coordinator URL(s), comma-separated primary,standby: also run as a fleet worker, executing leased tasks on this node")
		workerID = flag.String("worker-id", "", "stable worker identity for -join (default: the listen address)")
		twinF    = flag.String("twin-coeffs", "", "twin coefficient file (calibrate -fit-twin): serve twin- and auto-tier tasks analytically")
		twinThr  = flag.Float64("twin-threshold", 0, "auto-tier confidence floor; predictions below it escalate to full simulation (0 = default 0.7, negative = never escalate)")
	)
	flag.Parse()

	if *resumeF && *journalF == "" {
		cliutil.Errorf("-resume requires -journal")
		return cliutil.ExitUsage
	}

	// A bad scenario file is a usage error: reject it before binding
	// the listener, exactly like a bad -scale. The spec is inlined so
	// the enqueued task is self-contained (journal drain records of it
	// replay without this filesystem).
	var scnSpecs []exp.TaskSpec
	if *scnFile != "" {
		sp, err := scenario.LoadSpec(*scnFile)
		if err != nil {
			cliutil.Errorf("%v", err)
			return cliutil.ExitUsage
		}
		if err := sp.Inline(); err != nil {
			cliutil.Errorf("%v", err)
			return cliutil.ExitUsage
		}
		pol, err := sim.ParsePolicy(*scnPol)
		if err != nil {
			cliutil.Errorf("%v", err)
			return cliutil.ExitUsage
		}
		spec := exp.ScenarioTaskSpec(sp, pol)
		if err := spec.Validate(); err != nil {
			cliutil.Errorf("%v", err)
			return cliutil.ExitUsage
		}
		scnSpecs = append(scnSpecs, spec)
	}

	cfg := sim.DefaultConfig(*scale)
	cfg.CPUPrefetch = *prefetch
	cfg.NoParallel = *seq
	if *fast {
		cfg.WarmupInstr /= 8
		cfg.MeasureInstr /= 8
		cfg.WarmupFrames = 2
		cfg.MinFrames = 2
	}
	if err := cfg.Validate(); err != nil {
		cliutil.Errorf("%v", err)
		return cliutil.ExitUsage
	}

	runner := exp.NewRunner(cfg)
	runner.RunTimeout = *timeout

	// Twin model: loaded before the listener binds, so a stale or
	// mismatched coefficient file is a startup error, not a per-request
	// surprise. The digest check against this daemon's exact config is
	// what keeps an analytic answer from ever describing a system the
	// model was not calibrated on.
	if *twinF != "" {
		model, err := twin.Load(*twinF)
		if err != nil {
			cliutil.Errorf("%v", err)
			return cliutil.ExitUsage
		}
		if got, want := model.Coefficients().ConfigDigest, twin.ConfigDigest(cfg); got != want {
			cliutil.Errorf("-twin-coeffs %s: calibrated for a different configuration (coefficient scale %d, daemon scale %d); re-run calibrate -fit-twin with this daemon's flags",
				*twinF, model.Coefficients().Scale, cfg.Scale)
			return cliutil.ExitUsage
		}
		runner.Twin = model
		runner.TwinThreshold = *twinThr
		fmt.Fprintf(os.Stderr, "hetsimd: twin model %s: %d mix anchor(s), %d policy fit(s), calibration error %.2f%%\n",
			*twinF, len(model.Coefficients().MixBase), len(model.Coefficients().Policies), model.CalibrationErrPct())
	} else if *twinThr != 0 {
		cliutil.Errorf("-twin-threshold requires -twin-coeffs")
		return cliutil.ExitUsage
	}

	// Journal: every completed run is fsynced before it reports done,
	// and the drain writes pending records, so no outcome is lost to a
	// crash at any instant.
	var journal *exp.Journal
	var pending []exp.TaskSpec
	if *journalF != "" {
		j, recs, jstats, err := exp.OpenJournal(*journalF)
		if err != nil {
			cliutil.Errorf("%v", err)
			return cliutil.ExitRuntime
		}
		defer j.Close()
		journal = j
		runner.Journal = j
		if jstats.Skipped() > 0 {
			fmt.Fprintf(os.Stderr, "journal %s: skipped %d corrupt line(s), repaired %d torn tail(s)\n",
				*journalF, jstats.CorruptLines, jstats.TornTail)
		}
		if *resumeF {
			adopted, ignored := runner.ReplayJournal(recs)
			for _, rec := range recs {
				if rec.Kind == exp.KindQueued && rec.Spec != nil {
					pending = append(pending, *rec.Spec)
				}
			}
			fmt.Fprintf(os.Stderr, "resumed from %s: %d run(s) memoized, %d ignored, %d pending re-enqueued\n",
				*journalF, adopted, ignored, len(pending))
		}
	}

	ctx, stop := cliutil.SignalContext()
	defer stop()

	s := server.New(runner, server.Config{
		QueueDepth:       *queue,
		Workers:          *workers,
		BreakerThreshold: *brkN,
		BreakerCooldown:  *brkCool,
	})
	if journal != nil {
		journal.RegisterObs(s.Registry())
	}
	// Engine counters (parallel vs sequential runs, epoch ticks, domain
	// skips) land on /metricsz beside the journal and queue gauges.
	sim.RegisterEngineObs(s.Registry())
	// The worker pool's base context is NOT the signal context: the
	// first signal must stop admission and start the drain, not yank
	// every in-flight simulation.
	s.Start(context.Background())
	for _, spec := range append(pending, scnSpecs...) {
		if err := s.Resubmit(spec); err != nil {
			cliutil.Errorf("re-enqueue %s: %v", spec.Key(), err)
		}
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		cliutil.Errorf("%v", err)
		return cliutil.ExitRuntime
	}
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(ln.Addr().String()), 0o644); err != nil {
			cliutil.Errorf("%v", err)
			return cliutil.ExitRuntime
		}
	}
	fmt.Fprintf(os.Stderr, "hetsimd: serving on http://%s\n", ln.Addr())

	hs := &http.Server{Handler: s.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	// Fleet worker mode: lease tasks from the coordinator and execute
	// them on this node's runner. The agent lives on the signal context
	// — a shutdown stops leasing immediately; the in-flight lease is
	// cancelled at its next interrupt poll and the coordinator re-grants
	// it elsewhere, which is exactly what happens on SIGKILL too.
	var agentDone chan struct{}
	if *joinURL != "" {
		id := *workerID
		if id == "" {
			id = ln.Addr().String()
		}
		ag := &fleet.Agent{
			Coordinator: client.New(*joinURL),
			WorkerID:    id,
			URL:         "http://" + ln.Addr().String(),
			RunFunc:     runner.Do,
			Logf: func(format string, args ...any) {
				fmt.Fprintf(os.Stderr, "hetsimd: "+format+"\n", args...)
			},
		}
		ag.RegisterObs(s.Registry())
		fmt.Fprintf(os.Stderr, "hetsimd: joining fleet at %s as %q\n", *joinURL, id)
		agentDone = make(chan struct{})
		go func() {
			defer close(agentDone)
			_ = ag.Run(ctx)
		}()
	}

	select {
	case err := <-serveErr:
		cliutil.Errorf("%v", err)
		return cliutil.ExitRuntime
	case <-ctx.Done():
	}

	// Drain: finish in-flight (bounded by -grace), journal the queue,
	// then stop the listener. The HTTP server stays up through the
	// drain so clients can still poll statuses of finishing runs.
	fmt.Fprintln(os.Stderr, "hetsimd: draining...")
	dctx, dcancel := context.WithTimeout(context.Background(), *grace)
	defer dcancel()
	if agentDone != nil {
		// The agent saw the same signal; wait for it to deregister so
		// the coordinator re-grants our leases without a TTL wait.
		select {
		case <-agentDone:
		case <-dctx.Done():
		}
	}
	queued, derr := s.Drain(dctx)
	if derr != nil {
		cliutil.Errorf("drain: %v", derr)
	}
	fmt.Fprintf(os.Stderr, "hetsimd: drained (%d queued task(s) journaled)\n", queued)

	sctx, scancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer scancel()
	_ = hs.Shutdown(sctx)

	if journal != nil {
		if err := journal.Err(); err != nil {
			cliutil.Errorf("%v", err)
			return cliutil.ExitRuntime
		}
	}
	if derr != nil {
		return cliutil.ExitRuntime
	}
	return cliutil.ExitOK
}
