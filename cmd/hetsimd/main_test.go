package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"os"
	"os/exec"
	"path/filepath"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/exp"
)

// campaign is the task set the chaos test drives: small W-mixes and
// standalones, run serially (-workers 1) so a SIGKILL reliably lands
// while work is still pending.
var campaign = []string{
	"mix/W1/0", "mix/W2/0", "mix/W3/2", "mix/W6/2",
	"cpu/462", "cpu/429", "gpu/DOOM3",
}

// buildHetsimd compiles this package into a throwaway binary so the
// chaos test crosses a real process boundary: SIGKILL, fsync, exit
// codes.
func buildHetsimd(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "hetsimd")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// startDaemon launches hetsimd and waits for its address file.
func startDaemon(t *testing.T, bin, addr, journal string, resume bool) (*exec.Cmd, string) {
	t.Helper()
	dir := t.TempDir()
	addrFile := filepath.Join(dir, "addr")
	args := []string{
		"-addr", addr, "-addr-file", addrFile,
		"-scale", "256", "-fast", "-workers", "1",
		"-journal", journal,
	}
	if resume {
		args = append(args, "-resume")
	}
	cmd := exec.Command(bin, args...)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		if raw, err := os.ReadFile(addrFile); err == nil && len(raw) > 0 {
			return cmd, string(raw)
		}
		if time.Now().After(deadline) {
			cmd.Process.Kill()
			t.Fatalf("hetsimd never wrote its address file; stderr:\n%s", stderr.String())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// chaosClient is tuned for a campaign that must ride out a daemon
// restart: fast, persistent retries.
func chaosClient(addr string) *client.Client {
	c := client.New("http://" + addr)
	c.MaxAttempts = 60
	c.BaseBackoff = 25 * time.Millisecond
	c.MaxBackoff = 250 * time.Millisecond
	c.PollWait = 500 * time.Millisecond
	return c
}

// runCampaign drives every campaign task from its own goroutine and
// returns key→canonical JSON of the result.
func runCampaign(t *testing.T, addr string) map[string][]byte {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()
	results := make(map[string][]byte)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, key := range campaign {
		wg.Add(1)
		go func(key string) {
			defer wg.Done()
			spec, err := exp.ParseKey(key)
			if err != nil {
				t.Errorf("parse %s: %v", key, err)
				return
			}
			res, err := chaosClient(addr).Run(ctx, spec, 0)
			if err != nil {
				t.Errorf("run %s: %v", key, err)
				return
			}
			raw, err := json.Marshal(res)
			if err != nil {
				t.Errorf("marshal %s: %v", key, err)
				return
			}
			mu.Lock()
			results[key] = raw
			mu.Unlock()
		}(key)
	}
	wg.Wait()
	return results
}

func journalLines(path string) int {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0
	}
	return bytes.Count(data, []byte{'\n'})
}

// TestChaosKillResumeConverges is the tentpole's acceptance test:
// SIGKILL the daemon mid-campaign under concurrent retrying clients,
// restart it with -resume on the same journal and address, and require
// every client to converge to results byte-identical to an
// uninterrupted campaign's.
func TestChaosKillResumeConverges(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test")
	}
	bin := buildHetsimd(t)

	// Reference: uninterrupted campaign against a fresh daemon.
	refJournal := filepath.Join(t.TempDir(), "ref.jsonl")
	refCmd, refAddr := startDaemon(t, bin, "127.0.0.1:0", refJournal, false)
	want := runCampaign(t, refAddr)
	refCmd.Process.Signal(syscall.SIGTERM)
	refCmd.Wait()
	if t.Failed() {
		t.Fatal("reference campaign failed; chaos run not attempted")
	}
	if len(want) != len(campaign) {
		t.Fatalf("reference campaign returned %d results, want %d", len(want), len(campaign))
	}

	// Victim: same campaign, SIGKILLed after at least one journaled
	// run, restarted on the same address with -resume while the clients
	// keep retrying.
	journal := filepath.Join(t.TempDir(), "runs.jsonl")
	victim, addr := startDaemon(t, bin, "127.0.0.1:0", journal, false)

	done := make(chan map[string][]byte, 1)
	go func() { done <- runCampaign(t, addr) }()

	deadline := time.Now().Add(60 * time.Second)
	for journalLines(journal) < 1 {
		if time.Now().After(deadline) {
			victim.Process.Kill()
			t.Fatal("victim journal never received a record")
		}
		time.Sleep(5 * time.Millisecond)
	}
	killedAfter := journalLines(journal)
	if err := victim.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	victim.Wait()
	if killedAfter >= len(campaign) {
		t.Logf("campaign finished before SIGKILL landed; resume still must converge")
	} else {
		t.Logf("SIGKILLed after %d of %d journaled runs", killedAfter, len(campaign))
	}

	// Restart on the SAME address so the already-running clients reach
	// the survivor without rediscovery.
	survivor, _ := startDaemon(t, bin, addr, journal, true)
	defer func() {
		survivor.Process.Signal(syscall.SIGTERM)
		survivor.Wait()
	}()

	got := <-done
	if t.Failed() {
		t.FailNow()
	}
	for _, key := range campaign {
		if !bytes.Equal(got[key], want[key]) {
			t.Errorf("%s: post-crash result differs from uninterrupted run\nwant %s\ngot  %s",
				key, want[key], got[key])
		}
	}
}

// TestResumeRequiresJournal: flag validation crosses the process
// boundary with the usage exit code.
func TestResumeRequiresJournal(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test")
	}
	bin := buildHetsimd(t)
	err := exec.Command(bin, "-resume").Run()
	var ee *exec.ExitError
	if !errors.As(err, &ee) || ee.ExitCode() != 2 {
		t.Fatalf("hetsimd -resume (no -journal) exited %v, want exit code 2", err)
	}
}
