// Command hetsimctl is the command-line client for hetsimd:
//
//	hetsimctl -addr 127.0.0.1:8080 run mix/M7/2 gpu/Doom3 cpu/462
//	hetsimctl status mix/M7/2
//	hetsimctl result mix/M7/2
//	hetsimctl metrics
//	hetsimctl wait-ready
//
// Task keys are the runner's memo keys: "mix/<mixID>/<policy#>",
// "gpu/<game>", "cpu/<specID>". run submits and waits (retrying
// through overload and server restarts — resubmission is idempotent);
// submit returns immediately after admission.
//
// Time-varying scenarios are submitted from spec files, not keys:
//
//	hetsimctl -scenario launch.json -policy throttle+prio run
//
// The spec travels self-contained — a referenced tracev2 capture is
// inlined before submission — and is idempotent by content digest, so
// rerunning the same file against the same server replays the
// memoized result.
//
// -tier selects the serving tier for submitted keys (DESIGN.md §14):
// full (the default) simulates cycle-accurately, twin answers from the
// daemon's calibrated analytic model in microseconds, auto serves the
// twin prediction when its confidence clears the daemon's threshold
// and escalates to full simulation otherwise. Twin answers print their
// confidence; escalated runs print the prediction error the simulation
// measured.
//
//	hetsimctl -tier auto run mix/M7/2
//
// wait-ready honors -timeout as its wait bound (then -deadline, then a
// 30s default) and exits nonzero naming the node that never came up.
//
// -addr accepts a comma-separated list of nodes. With several, each
// task is routed to the node its key hashes to (stable FNV-1a
// sharding, so resubmissions and status queries land on the same node
// without any coordination), metrics aggregates every node's
// /metricsz, and wait-ready waits for all of them, printing each
// node's identity line (version, engine, uptime, queue depth). One
// hetsimfleet coordinator address works the same way — the fleet does
// its own sharding behind one public API.
//
// With -failover the -addr list is instead ONE replicated endpoint — a
// hetsimfleet primary and its hot standby (DESIGN.md §15). Every
// command drives a single failing-over client that rotates between the
// addresses on connection errors, standby bounces, and stale-term
// responses, so a campaign rides through a coordinator failover:
//
//	hetsimctl -failover -addr 127.0.0.1:9090,127.0.0.1:9091 run mix/M7/2
//
// promote asks a standby to take over immediately (planned failover);
// against a serving primary it reports "already primary":
//
//	hetsimctl promote -addr 127.0.0.1:9091
package main

import (
	"context"
	"flag"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/client"
	"repro/internal/cliutil"
	"repro/internal/exp"
	"repro/internal/fleet"
	"repro/internal/scenario"
	"repro/internal/sim"
)

func main() { os.Exit(realMain()) }

func usage() {
	fmt.Fprintln(os.Stderr, "usage: hetsimctl [-addr host:port[,host:port...]] [-failover] [-tier full|twin|auto] [-timeout d] [-deadline d] [-scenario file [-policy p]] run|submit|status|result|metrics|wait-ready|promote [key ...]")
	flag.PrintDefaults()
}

// shard picks the node a key routes to: stable content hashing, so the
// same key always lands on the same node of an unchanged -addr list.
func shard(key string, n int) int {
	h := fnv.New32a()
	h.Write([]byte(key))
	return int(h.Sum32() % uint32(n))
}

func realMain() int {
	var (
		addr     = flag.String("addr", "127.0.0.1:8080", "server address(es), comma-separated; tasks shard across them by key hash")
		timeout  = flag.Duration("timeout", 0, "per-run deadline sent to the server (0 = none)")
		deadline = flag.Duration("deadline", 0, "overall client deadline for this invocation (0 = none)")
		verbose  = flag.Bool("v", false, "log client retries to stderr")
		scnFile  = flag.String("scenario", "", "submit this scenario spec file (run/submit; combinable with task keys)")
		policyF  = flag.String("policy", "baseline", "policy for -scenario submissions")
		tierF    = flag.String("tier", "", "serving tier for run/submit keys: full (default), twin (analytic model), auto (twin when confident, else simulate)")
		failover = flag.Bool("failover", false, "treat -addr as one replicated coordinator (primary,standby) and fail over between them, instead of sharding tasks across nodes")
	)
	flag.Usage = usage
	flag.Parse()
	if flag.NArg() < 1 {
		usage()
		return cliutil.ExitUsage
	}

	ctx, stop := cliutil.SignalContext()
	defer stop()
	if *deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *deadline)
		defer cancel()
	}

	var addrs []string
	for _, a := range strings.Split(*addr, ",") {
		if a = strings.TrimSpace(a); a != "" {
			addrs = append(addrs, a)
		}
	}
	if len(addrs) == 0 {
		cliutil.Errorf("-addr: no addresses")
		return cliutil.ExitUsage
	}
	var clients []*client.Client
	if *failover {
		// One replicated endpoint: a single client holds the whole list
		// and rotates between the addresses on connection errors,
		// standby bounces, and stale coordinator terms.
		urls := make([]string, len(addrs))
		for i, a := range addrs {
			urls[i] = "http://" + a
		}
		joined := strings.Join(addrs, ",")
		cl := client.New(strings.Join(urls, ","))
		if *verbose {
			cl.Logf = func(format string, args ...any) {
				fmt.Fprintf(os.Stderr, "hetsimctl["+joined+"]: "+format+"\n", args...)
			}
		}
		clients = []*client.Client{cl}
		addrs = []string{joined}
	} else {
		clients = make([]*client.Client, len(addrs))
		for i, a := range addrs {
			clients[i] = client.New("http://" + a)
			if *verbose {
				a := a
				clients[i].Logf = func(format string, args ...any) {
					fmt.Fprintf(os.Stderr, "hetsimctl["+a+"]: "+format+"\n", args...)
				}
			}
		}
	}
	// clientFor routes a task key to its shard's node.
	clientFor := func(key string) *client.Client {
		return clients[shard(key, len(clients))]
	}

	cmd, keys := flag.Arg(0), flag.Args()[1:]
	switch cmd {
	case "run", "submit":
		if len(keys) == 0 && *scnFile == "" {
			cliutil.Errorf("%s: need at least one task key or -scenario file", cmd)
			return cliutil.ExitUsage
		}
		specs := make([]exp.TaskSpec, len(keys))
		for i, key := range keys {
			spec, err := exp.ParseKey(key)
			if err != nil {
				cliutil.Errorf("%v", err)
				return cliutil.ExitUsage
			}
			// -tier overrides whatever the key form implies (a bare key
			// is full-tier; a "twin/..." key parses as auto).
			if *tierF != "" {
				spec.Tier = *tierF
			}
			if err := spec.Validate(); err != nil {
				cliutil.Errorf("%v", err)
				return cliutil.ExitUsage
			}
			specs[i] = spec
		}
		if *scnFile != "" {
			sp, err := scenario.LoadSpec(*scnFile)
			if err != nil {
				cliutil.Errorf("%v", err)
				return cliutil.ExitUsage
			}
			// The server has no access to this filesystem: a trace
			// reference must travel inline with the spec.
			if err := sp.Inline(); err != nil {
				cliutil.Errorf("%v", err)
				return cliutil.ExitUsage
			}
			pol, err := sim.ParsePolicy(*policyF)
			if err != nil {
				cliutil.Errorf("%v", err)
				return cliutil.ExitUsage
			}
			spec := exp.ScenarioTaskSpec(sp, pol)
			// Applied rather than ignored: a scenario has no analytic
			// model, and Validate says so better than silence would.
			if *tierF != "" {
				spec.Tier = *tierF
			}
			if err := spec.Validate(); err != nil {
				cliutil.Errorf("%v", err)
				return cliutil.ExitUsage
			}
			specs = append(specs, spec)
		}
		failed := 0
		for _, spec := range specs {
			cl := clientFor(spec.Key())
			if cmd == "submit" {
				sr, err := cl.Submit(ctx, spec, *timeout)
				if err != nil {
					cliutil.Errorf("%v", err)
					failed++
					continue
				}
				fmt.Printf("%s\t%s\n", sr.Key, sr.Status)
				continue
			}
			res, err := cl.Run(ctx, spec, *timeout)
			if err != nil {
				cliutil.Errorf("run %s: %v", spec.Key(), err)
				failed++
				continue
			}
			fmt.Println(summary(spec.Key(), res))
		}
		if failed > 0 {
			return cliutil.ExitRuntime
		}
		return cliutil.ExitOK

	case "status":
		if len(keys) != 1 {
			cliutil.Errorf("status: need exactly one task key")
			return cliutil.ExitUsage
		}
		sr, known, err := clientFor(keys[0]).Status(ctx, keys[0], 0)
		if err != nil {
			cliutil.Errorf("%v", err)
			return cliutil.ExitRuntime
		}
		if !known {
			cliutil.Errorf("unknown run %s", keys[0])
			return cliutil.ExitRuntime
		}
		fmt.Printf("%s\t%s", sr.Key, sr.Status)
		if sr.Error != "" {
			fmt.Printf("\t%s", sr.Error)
		}
		fmt.Println()
		return cliutil.ExitOK

	case "result":
		if len(keys) != 1 {
			cliutil.Errorf("result: need exactly one task key")
			return cliutil.ExitUsage
		}
		rr, err := clientFor(keys[0]).Result(ctx, keys[0])
		if err != nil {
			cliutil.Errorf("%v", err)
			return cliutil.ExitRuntime
		}
		fmt.Println(summary(rr.Key, rr.TaskResult))
		return cliutil.ExitOK

	case "metrics":
		// Aggregate across every node: same-named series sum, so a
		// sharded campaign's totals read like one server's.
		agg := make(map[string]float64)
		for i, cl := range clients {
			m, err := cl.Metrics(ctx)
			if err != nil {
				cliutil.Errorf("%s: %v", addrs[i], err)
				return cliutil.ExitRuntime
			}
			for name, v := range m {
				agg[name] += v
			}
		}
		names := make([]string, 0, len(agg))
		for name := range agg {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			fmt.Printf("%s %g\n", name, agg[name])
		}
		return cliutil.ExitOK

	case "wait-ready":
		// The wait bound is -timeout (the flag scripts reach for),
		// falling back to -deadline, else 30s: wait-ready must always
		// terminate — a boot script blocked forever on a daemon that
		// never came up is worse than a clear failure.
		wait := *timeout
		if wait <= 0 {
			wait = *deadline
		}
		if err := waitReady(ctx, os.Stdout, addrs, clients, wait); err != nil {
			cliutil.Errorf("%v", err)
			return cliutil.ExitRuntime
		}
		return cliutil.ExitOK

	case "promote":
		// Planned failover (DESIGN.md §15): ask each addressed node to
		// take over. A standby promotes and answers its new term; a
		// serving primary answers 409 — already at the head of its term.
		// Each node is addressed individually even under -failover:
		// promotion must not silently rotate to a different node.
		var nodes []string
		for _, a := range addrs {
			nodes = append(nodes, strings.Split(a, ",")...)
		}
		promoted := false
		for _, a := range nodes {
			cl := client.New("http://" + a)
			var pr fleet.PromoteResponse
			code, err := cl.DoJSON(ctx, "POST", "/fleet/v1/promote", struct{}{}, &pr)
			switch {
			case err != nil && code == 0:
				cliutil.Errorf("promote %s: %v", a, err)
				return cliutil.ExitRuntime
			case code == 409 || (code == 200 && !pr.Promoted):
				fmt.Printf("%s\talready primary\tterm=%d\n", a, pr.Term)
			case code == 200:
				fmt.Printf("%s\tpromoted\tterm=%d\n", a, pr.Term)
				promoted = true
			default:
				cliutil.Errorf("promote %s: unexpected status %d", a, code)
				return cliutil.ExitRuntime
			}
		}
		if !promoted && len(nodes) > 1 {
			cliutil.Errorf("promote: no standby among %s", strings.Join(nodes, ","))
			return cliutil.ExitRuntime
		}
		return cliutil.ExitOK
	}
	cliutil.Errorf("unknown command %q", cmd)
	usage()
	return cliutil.ExitUsage
}

// waitReady blocks until every node reports ready, printing each
// node's identity line, or fails with a message naming the node that
// never came up and the bound that expired (wait <= 0 defaults to
// 30s). Factored out of realMain so the expiry contract is unit-
// testable without a subprocess.
func waitReady(ctx context.Context, out io.Writer, addrs []string, clients []*client.Client, wait time.Duration) error {
	if wait <= 0 {
		wait = 30 * time.Second
	}
	wctx, cancel := context.WithTimeout(ctx, wait)
	defer cancel()
	for i, cl := range clients {
		if err := cl.Ready(wctx); err != nil {
			if wctx.Err() != nil && ctx.Err() == nil {
				return fmt.Errorf("wait-ready: %s: not ready after %v", addrs[i], wait)
			}
			return fmt.Errorf("wait-ready: %s: %w", addrs[i], err)
		}
		// Ready nodes identify themselves: version, engine, uptime,
		// and queue depth, so scripts can spot a stale or cold node.
		h, err := cl.Health(wctx)
		if err != nil {
			return fmt.Errorf("wait-ready: %s: %w", addrs[i], err)
		}
		fmt.Fprintf(out, "ready\t%s\tversion=%s\tengine=%s\tuptime_s=%.1f\tqueue_depth=%d\n",
			addrs[i], h.Version, h.Engine, h.UptimeS, h.QueueDepth)
	}
	return nil
}

// summary renders one finished task as a stable one-line record, with
// the serving tier's provenance when the result did not come from a
// plain full-tier simulation: an analytic answer reports its
// confidence, an escalated auto-tier run reports the measured
// prediction error alongside the simulated truth.
func summary(key string, res exp.TaskResult) string {
	switch {
	case res.Tier == exp.TierTwin && res.Prediction != nil:
		p := res.Prediction
		if len(p.IPC) > 0 && p.FPS == 0 {
			return fmt.Sprintf("%s\tdone\ttier=twin\tipc=%.4f\tconfidence=%.2f", key, p.MeanIPC, p.Confidence)
		}
		return fmt.Sprintf("%s\tdone\ttier=twin\tfps=%.2f\tmeanIPC=%.4f\tconfidence=%.2f",
			key, p.FPS, p.MeanIPC, p.Confidence)
	case res.Tier == exp.TierFull && res.Prediction != nil && res.Result != nil:
		return fmt.Sprintf("%s\tdone\ttier=full(escalated)\tfps=%.2f\tmeanIPC=%.4f\tpredicted_fps=%.2f\tframe_err=%.2f%%\tipc_err=%.2f%%",
			key, res.Result.GPUFPS, res.Result.MeanIPC(), res.Prediction.FPS,
			res.TwinFrameErrPct, res.TwinIPCErrPct)
	case res.Tier == exp.TierFull && res.Prediction != nil:
		return fmt.Sprintf("%s\tdone\ttier=full(escalated)\tipc=%.4f\tpredicted_ipc=%.4f",
			key, res.IPC, res.Prediction.MeanIPC)
	case res.Result != nil:
		return fmt.Sprintf("%s\tdone\tfps=%.2f\tmeanIPC=%.4f", key, res.Result.GPUFPS, res.Result.MeanIPC())
	}
	return fmt.Sprintf("%s\tdone\tipc=%.4f", key, res.IPC)
}
