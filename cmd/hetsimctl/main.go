// Command hetsimctl is the command-line client for hetsimd:
//
//	hetsimctl -addr 127.0.0.1:8080 run mix/M7/2 gpu/Doom3 cpu/462
//	hetsimctl status mix/M7/2
//	hetsimctl result mix/M7/2
//	hetsimctl metrics
//	hetsimctl wait-ready
//
// Task keys are the runner's memo keys: "mix/<mixID>/<policy#>",
// "gpu/<game>", "cpu/<specID>". run submits and waits (retrying
// through overload and server restarts — resubmission is idempotent);
// submit returns immediately after admission.
//
// Time-varying scenarios are submitted from spec files, not keys:
//
//	hetsimctl -scenario launch.json -policy throttle+prio run
//
// The spec travels self-contained — a referenced tracev2 capture is
// inlined before submission — and is idempotent by content digest, so
// rerunning the same file against the same server replays the
// memoized result.
//
// -addr accepts a comma-separated list of nodes. With several, each
// task is routed to the node its key hashes to (stable FNV-1a
// sharding, so resubmissions and status queries land on the same node
// without any coordination), metrics aggregates every node's
// /metricsz, and wait-ready waits for all of them, printing each
// node's identity line (version, engine, uptime, queue depth). One
// hetsimfleet coordinator address works the same way — the fleet does
// its own sharding behind one public API.
package main

import (
	"context"
	"flag"
	"fmt"
	"hash/fnv"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/client"
	"repro/internal/cliutil"
	"repro/internal/exp"
	"repro/internal/scenario"
	"repro/internal/sim"
)

func main() { os.Exit(realMain()) }

func usage() {
	fmt.Fprintln(os.Stderr, "usage: hetsimctl [-addr host:port[,host:port...]] [-timeout d] [-deadline d] [-scenario file [-policy p]] run|submit|status|result|metrics|wait-ready [key ...]")
	flag.PrintDefaults()
}

// shard picks the node a key routes to: stable content hashing, so the
// same key always lands on the same node of an unchanged -addr list.
func shard(key string, n int) int {
	h := fnv.New32a()
	h.Write([]byte(key))
	return int(h.Sum32() % uint32(n))
}

func realMain() int {
	var (
		addr     = flag.String("addr", "127.0.0.1:8080", "server address(es), comma-separated; tasks shard across them by key hash")
		timeout  = flag.Duration("timeout", 0, "per-run deadline sent to the server (0 = none)")
		deadline = flag.Duration("deadline", 0, "overall client deadline for this invocation (0 = none)")
		verbose  = flag.Bool("v", false, "log client retries to stderr")
		scnFile  = flag.String("scenario", "", "submit this scenario spec file (run/submit; combinable with task keys)")
		policyF  = flag.String("policy", "baseline", "policy for -scenario submissions")
	)
	flag.Usage = usage
	flag.Parse()
	if flag.NArg() < 1 {
		usage()
		return cliutil.ExitUsage
	}

	ctx, stop := cliutil.SignalContext()
	defer stop()
	if *deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *deadline)
		defer cancel()
	}

	var addrs []string
	for _, a := range strings.Split(*addr, ",") {
		if a = strings.TrimSpace(a); a != "" {
			addrs = append(addrs, a)
		}
	}
	if len(addrs) == 0 {
		cliutil.Errorf("-addr: no addresses")
		return cliutil.ExitUsage
	}
	clients := make([]*client.Client, len(addrs))
	for i, a := range addrs {
		clients[i] = client.New("http://" + a)
		if *verbose {
			a := a
			clients[i].Logf = func(format string, args ...any) {
				fmt.Fprintf(os.Stderr, "hetsimctl["+a+"]: "+format+"\n", args...)
			}
		}
	}
	// clientFor routes a task key to its shard's node.
	clientFor := func(key string) *client.Client {
		return clients[shard(key, len(clients))]
	}

	cmd, keys := flag.Arg(0), flag.Args()[1:]
	switch cmd {
	case "run", "submit":
		if len(keys) == 0 && *scnFile == "" {
			cliutil.Errorf("%s: need at least one task key or -scenario file", cmd)
			return cliutil.ExitUsage
		}
		specs := make([]exp.TaskSpec, len(keys))
		for i, key := range keys {
			spec, err := exp.ParseKey(key)
			if err != nil {
				cliutil.Errorf("%v", err)
				return cliutil.ExitUsage
			}
			if err := spec.Validate(); err != nil {
				cliutil.Errorf("%v", err)
				return cliutil.ExitUsage
			}
			specs[i] = spec
		}
		if *scnFile != "" {
			sp, err := scenario.LoadSpec(*scnFile)
			if err != nil {
				cliutil.Errorf("%v", err)
				return cliutil.ExitUsage
			}
			// The server has no access to this filesystem: a trace
			// reference must travel inline with the spec.
			if err := sp.Inline(); err != nil {
				cliutil.Errorf("%v", err)
				return cliutil.ExitUsage
			}
			pol, err := sim.ParsePolicy(*policyF)
			if err != nil {
				cliutil.Errorf("%v", err)
				return cliutil.ExitUsage
			}
			spec := exp.ScenarioTaskSpec(sp, pol)
			if err := spec.Validate(); err != nil {
				cliutil.Errorf("%v", err)
				return cliutil.ExitUsage
			}
			specs = append(specs, spec)
		}
		failed := 0
		for _, spec := range specs {
			cl := clientFor(spec.Key())
			if cmd == "submit" {
				sr, err := cl.Submit(ctx, spec, *timeout)
				if err != nil {
					cliutil.Errorf("%v", err)
					failed++
					continue
				}
				fmt.Printf("%s\t%s\n", sr.Key, sr.Status)
				continue
			}
			res, err := cl.Run(ctx, spec, *timeout)
			if err != nil {
				cliutil.Errorf("run %s: %v", spec.Key(), err)
				failed++
				continue
			}
			fmt.Println(summary(spec.Key(), res))
		}
		if failed > 0 {
			return cliutil.ExitRuntime
		}
		return cliutil.ExitOK

	case "status":
		if len(keys) != 1 {
			cliutil.Errorf("status: need exactly one task key")
			return cliutil.ExitUsage
		}
		sr, known, err := clientFor(keys[0]).Status(ctx, keys[0], 0)
		if err != nil {
			cliutil.Errorf("%v", err)
			return cliutil.ExitRuntime
		}
		if !known {
			cliutil.Errorf("unknown run %s", keys[0])
			return cliutil.ExitRuntime
		}
		fmt.Printf("%s\t%s", sr.Key, sr.Status)
		if sr.Error != "" {
			fmt.Printf("\t%s", sr.Error)
		}
		fmt.Println()
		return cliutil.ExitOK

	case "result":
		if len(keys) != 1 {
			cliutil.Errorf("result: need exactly one task key")
			return cliutil.ExitUsage
		}
		rr, err := clientFor(keys[0]).Result(ctx, keys[0])
		if err != nil {
			cliutil.Errorf("%v", err)
			return cliutil.ExitRuntime
		}
		fmt.Println(summary(rr.Key, rr.TaskResult))
		return cliutil.ExitOK

	case "metrics":
		// Aggregate across every node: same-named series sum, so a
		// sharded campaign's totals read like one server's.
		agg := make(map[string]float64)
		for i, cl := range clients {
			m, err := cl.Metrics(ctx)
			if err != nil {
				cliutil.Errorf("%s: %v", addrs[i], err)
				return cliutil.ExitRuntime
			}
			for name, v := range m {
				agg[name] += v
			}
		}
		names := make([]string, 0, len(agg))
		for name := range agg {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			fmt.Printf("%s %g\n", name, agg[name])
		}
		return cliutil.ExitOK

	case "wait-ready":
		wctx := ctx
		if *deadline == 0 {
			var cancel context.CancelFunc
			wctx, cancel = context.WithTimeout(ctx, 30*time.Second)
			defer cancel()
		}
		for i, cl := range clients {
			if err := cl.Ready(wctx); err != nil {
				cliutil.Errorf("%s: %v", addrs[i], err)
				return cliutil.ExitRuntime
			}
			// Ready nodes identify themselves: version, engine, uptime,
			// and queue depth, so scripts can spot a stale or cold node.
			h, err := cl.Health(wctx)
			if err != nil {
				cliutil.Errorf("%s: %v", addrs[i], err)
				return cliutil.ExitRuntime
			}
			fmt.Printf("ready\t%s\tversion=%s\tengine=%s\tuptime_s=%.1f\tqueue_depth=%d\n",
				addrs[i], h.Version, h.Engine, h.UptimeS, h.QueueDepth)
		}
		return cliutil.ExitOK
	}
	cliutil.Errorf("unknown command %q", cmd)
	usage()
	return cliutil.ExitUsage
}

// summary renders one finished task as a stable one-line record.
func summary(key string, res exp.TaskResult) string {
	if res.Result != nil {
		return fmt.Sprintf("%s\tdone\tfps=%.2f\tmeanIPC=%.4f", key, res.Result.GPUFPS, res.Result.MeanIPC())
	}
	return fmt.Sprintf("%s\tdone\tipc=%.4f", key, res.IPC)
}
