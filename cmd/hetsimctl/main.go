// Command hetsimctl is the command-line client for hetsimd:
//
//	hetsimctl -addr 127.0.0.1:8080 run mix/M7/2 gpu/Doom3 cpu/462
//	hetsimctl status mix/M7/2
//	hetsimctl result mix/M7/2
//	hetsimctl metrics
//	hetsimctl wait-ready
//
// Task keys are the runner's memo keys: "mix/<mixID>/<policy#>",
// "gpu/<game>", "cpu/<specID>". run submits and waits (retrying
// through overload and server restarts — resubmission is idempotent);
// submit returns immediately after admission.
//
// Time-varying scenarios are submitted from spec files, not keys:
//
//	hetsimctl -scenario launch.json -policy throttle+prio run
//
// The spec travels self-contained — a referenced tracev2 capture is
// inlined before submission — and is idempotent by content digest, so
// rerunning the same file against the same server replays the
// memoized result.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"repro/internal/client"
	"repro/internal/cliutil"
	"repro/internal/exp"
	"repro/internal/scenario"
	"repro/internal/sim"
)

func main() { os.Exit(realMain()) }

func usage() {
	fmt.Fprintln(os.Stderr, "usage: hetsimctl [-addr host:port] [-timeout d] [-deadline d] [-scenario file [-policy p]] run|submit|status|result|metrics|wait-ready [key ...]")
	flag.PrintDefaults()
}

func realMain() int {
	var (
		addr     = flag.String("addr", "127.0.0.1:8080", "hetsimd address (host:port)")
		timeout  = flag.Duration("timeout", 0, "per-run deadline sent to the server (0 = none)")
		deadline = flag.Duration("deadline", 0, "overall client deadline for this invocation (0 = none)")
		verbose  = flag.Bool("v", false, "log client retries to stderr")
		scnFile  = flag.String("scenario", "", "submit this scenario spec file (run/submit; combinable with task keys)")
		policyF  = flag.String("policy", "baseline", "policy for -scenario submissions")
	)
	flag.Usage = usage
	flag.Parse()
	if flag.NArg() < 1 {
		usage()
		return cliutil.ExitUsage
	}

	ctx, stop := cliutil.SignalContext()
	defer stop()
	if *deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *deadline)
		defer cancel()
	}

	c := client.New("http://" + *addr)
	if *verbose {
		c.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "hetsimctl: "+format+"\n", args...)
		}
	}

	cmd, keys := flag.Arg(0), flag.Args()[1:]
	switch cmd {
	case "run", "submit":
		if len(keys) == 0 && *scnFile == "" {
			cliutil.Errorf("%s: need at least one task key or -scenario file", cmd)
			return cliutil.ExitUsage
		}
		specs := make([]exp.TaskSpec, len(keys))
		for i, key := range keys {
			spec, err := exp.ParseKey(key)
			if err != nil {
				cliutil.Errorf("%v", err)
				return cliutil.ExitUsage
			}
			if err := spec.Validate(); err != nil {
				cliutil.Errorf("%v", err)
				return cliutil.ExitUsage
			}
			specs[i] = spec
		}
		if *scnFile != "" {
			sp, err := scenario.LoadSpec(*scnFile)
			if err != nil {
				cliutil.Errorf("%v", err)
				return cliutil.ExitUsage
			}
			// The server has no access to this filesystem: a trace
			// reference must travel inline with the spec.
			if err := sp.Inline(); err != nil {
				cliutil.Errorf("%v", err)
				return cliutil.ExitUsage
			}
			pol, err := sim.ParsePolicy(*policyF)
			if err != nil {
				cliutil.Errorf("%v", err)
				return cliutil.ExitUsage
			}
			spec := exp.ScenarioTaskSpec(sp, pol)
			if err := spec.Validate(); err != nil {
				cliutil.Errorf("%v", err)
				return cliutil.ExitUsage
			}
			specs = append(specs, spec)
		}
		failed := 0
		for _, spec := range specs {
			if cmd == "submit" {
				sr, err := c.Submit(ctx, spec, *timeout)
				if err != nil {
					cliutil.Errorf("%v", err)
					failed++
					continue
				}
				fmt.Printf("%s\t%s\n", sr.Key, sr.Status)
				continue
			}
			res, err := c.Run(ctx, spec, *timeout)
			if err != nil {
				cliutil.Errorf("run %s: %v", spec.Key(), err)
				failed++
				continue
			}
			fmt.Println(summary(spec.Key(), res))
		}
		if failed > 0 {
			return cliutil.ExitRuntime
		}
		return cliutil.ExitOK

	case "status":
		if len(keys) != 1 {
			cliutil.Errorf("status: need exactly one task key")
			return cliutil.ExitUsage
		}
		sr, known, err := c.Status(ctx, keys[0], 0)
		if err != nil {
			cliutil.Errorf("%v", err)
			return cliutil.ExitRuntime
		}
		if !known {
			cliutil.Errorf("unknown run %s", keys[0])
			return cliutil.ExitRuntime
		}
		fmt.Printf("%s\t%s", sr.Key, sr.Status)
		if sr.Error != "" {
			fmt.Printf("\t%s", sr.Error)
		}
		fmt.Println()
		return cliutil.ExitOK

	case "result":
		if len(keys) != 1 {
			cliutil.Errorf("result: need exactly one task key")
			return cliutil.ExitUsage
		}
		rr, err := c.Result(ctx, keys[0])
		if err != nil {
			cliutil.Errorf("%v", err)
			return cliutil.ExitRuntime
		}
		fmt.Println(summary(rr.Key, rr.TaskResult))
		return cliutil.ExitOK

	case "metrics":
		m, err := c.Metrics(ctx)
		if err != nil {
			cliutil.Errorf("%v", err)
			return cliutil.ExitRuntime
		}
		names := make([]string, 0, len(m))
		for name := range m {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			fmt.Printf("%s %g\n", name, m[name])
		}
		return cliutil.ExitOK

	case "wait-ready":
		wctx := ctx
		if *deadline == 0 {
			var cancel context.CancelFunc
			wctx, cancel = context.WithTimeout(ctx, 30*time.Second)
			defer cancel()
		}
		if err := c.Ready(wctx); err != nil {
			cliutil.Errorf("%v", err)
			return cliutil.ExitRuntime
		}
		fmt.Println("ready")
		return cliutil.ExitOK
	}
	cliutil.Errorf("unknown command %q", cmd)
	usage()
	return cliutil.ExitUsage
}

// summary renders one finished task as a stable one-line record.
func summary(key string, res exp.TaskResult) string {
	if res.Result != nil {
		return fmt.Sprintf("%s\tdone\tfps=%.2f\tmeanIPC=%.4f", key, res.Result.GPUFPS, res.Result.MeanIPC())
	}
	return fmt.Sprintf("%s\tdone\tipc=%.4f", key, res.IPC)
}
