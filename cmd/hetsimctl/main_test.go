package main

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/exp"
	"repro/internal/server"
	"repro/internal/sim"
	"repro/internal/twin"
)

// TestWaitReadyTimeout pins the wait-ready expiry contract: a node
// that never becomes ready fails within the -timeout bound with a
// message naming the node and the bound, instead of blocking forever.
func TestWaitReadyTimeout(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusServiceUnavailable) // draining forever
	}))
	defer srv.Close()

	start := time.Now()
	err := waitReady(context.Background(), &strings.Builder{},
		[]string{srv.Listener.Addr().String()}, []*client.Client{client.New(srv.URL)},
		300*time.Millisecond)
	if err == nil {
		t.Fatal("waitReady succeeded against a never-ready node")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("waitReady took %v; the bound did not apply", elapsed)
	}
	msg := err.Error()
	if !strings.Contains(msg, srv.Listener.Addr().String()) || !strings.Contains(msg, "not ready after 300ms") {
		t.Fatalf("expiry message %q must name the node and the bound", msg)
	}
}

// TestWaitReadyPrintsIdentity: a ready node passes and prints its
// identity line.
func TestWaitReadyPrintsIdentity(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"version":"` + server.Version + `","uptime_s":1.5,"engine":"parallel","queue_depth":0}`))
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	var out strings.Builder
	addr := srv.Listener.Addr().String()
	if err := waitReady(context.Background(), &out, []string{addr}, []*client.Client{client.New(srv.URL)}, time.Second); err != nil {
		t.Fatalf("waitReady: %v", err)
	}
	line := out.String()
	for _, want := range []string{"ready\t" + addr, "version=" + server.Version, "engine=parallel"} {
		if !strings.Contains(line, want) {
			t.Fatalf("identity line %q missing %q", line, want)
		}
	}
}

// TestSummaryTiers pins the one-line rendering of each serving-tier
// provenance (scripts parse these).
func TestSummaryTiers(t *testing.T) {
	r := &sim.Result{GPUFPS: 42.5, IPC: []float64{1, 1}}
	cases := []struct {
		name string
		res  exp.TaskResult
		want []string
	}{
		{"full", exp.TaskResult{Result: r}, []string{"done\tfps=42.50"}},
		{"cpu", exp.TaskResult{IPC: 1.25}, []string{"done\tipc=1.2500"}},
		{"twin", exp.TaskResult{Tier: exp.TierTwin, Prediction: &twin.Prediction{FPS: 40, MeanIPC: 1.1, Confidence: 0.92}},
			[]string{"tier=twin", "fps=40.00", "confidence=0.92"}},
		{"twin-cpu", exp.TaskResult{Tier: exp.TierTwin, Prediction: &twin.Prediction{IPC: []float64{1.3}, MeanIPC: 1.3, Confidence: 1}},
			[]string{"tier=twin", "ipc=1.3000", "confidence=1.00"}},
		{"escalated", exp.TaskResult{Tier: exp.TierFull, Result: r,
			Prediction: &twin.Prediction{FPS: 40}, TwinFrameErrPct: 5.9, TwinIPCErrPct: 0.4},
			[]string{"tier=full(escalated)", "fps=42.50", "predicted_fps=40.00", "frame_err=5.90%"}},
		{"escalated-cpu", exp.TaskResult{Tier: exp.TierFull, IPC: 1.2,
			Prediction: &twin.Prediction{MeanIPC: 1.1}},
			[]string{"tier=full(escalated)", "ipc=1.2000", "predicted_ipc=1.1000"}},
	}
	for _, tc := range cases {
		got := summary("k", tc.res)
		for _, want := range tc.want {
			if !strings.Contains(got, want) {
				t.Errorf("%s: summary %q missing %q", tc.name, got, want)
			}
		}
	}
}
