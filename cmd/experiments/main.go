// Command experiments regenerates the paper's tables and figures.
//
//	experiments -exp fig9            # one experiment
//	experiments -all                 # everything, paper order
//	experiments -all -workers 8      # 8 simulations in flight at once
//	experiments -exp fig12 -scale 32 # heavier, closer-to-paper run
//	experiments -ablate step -mix M7 # beyond-paper ablations
//
// Every experiment's full (mix, policy) run set is dispatched to the
// runner's worker pool up front (default width: HETSIM_PARALLEL or
// GOMAXPROCS), so independent simulations execute concurrently while
// reports print in order. Output is byte-identical to a serial run.
//
// Long runs are resumable: -journal appends every finished simulation
// to a crash-safe JSONL journal and -resume replays one so only the
// missing runs execute; a resumed run's reports are byte-identical to
// an uninterrupted run. Ctrl-C drains the pool and flushes the
// journal; -run-timeout bounds each simulation's wall-clock time.
//
// Output is one printable block per experiment with the headline
// aggregate the paper quotes; EXPERIMENTS.md records a reference run.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/hetsim"
	"repro/internal/cliutil"
	"repro/internal/exp"
	"repro/internal/report"
)

func main() { os.Exit(realMain()) }

// realMain carries the whole run so deferred cleanup (journal flush,
// signal release, observability saves) executes before the process
// exits; main wraps it in the one os.Exit.
func realMain() int {
	var (
		expID      = flag.String("exp", "", "experiment id: "+strings.Join(hetsim.ExperimentIDs(), ", "))
		all        = flag.Bool("all", false, "run every experiment in paper order")
		scale      = flag.Int("scale", 64, "scale factor (smaller = slower, closer to paper size)")
		fast       = flag.Bool("fast", false, "shorter windows (smoke-test quality)")
		ablate     = flag.String("ablate", "", "ablation: step, target, law, cmbal, prefetch, llc")
		mixID      = flag.String("mix", "M7", "mix for ablations")
		format     = flag.String("format", "text", "output format: text, csv, json, chart")
		save       = flag.String("save", "", "write the run's reports to a JSON archive")
		compare    = flag.String("compare", "", "diff this run against a saved archive (>=5% drift)")
		workers    = flag.Int("workers", 0, "concurrent simulations (0 = HETSIM_PARALLEL or GOMAXPROCS, 1 = serial)")
		journalF   = flag.String("journal", "", "append each finished simulation to this crash-safe JSONL journal")
		resumeF    = flag.String("resume", "", "resume from this journal (implies -journal on the same file)")
		runTimeout = flag.Duration("run-timeout", 0, "wall-clock budget per simulation (0 = unlimited)")
		metrics    = flag.String("metrics-out", "", "write every run's sampled time series (CSV sections) here")
		traceF     = flag.String("trace-out", "", "write a merged Chrome trace_event JSON here (one process per run)")
		stride     = flag.Uint64("metrics-stride", 0, "CPU cycles between metric samples (0 = default)")
		cpuProf    = flag.String("cpuprofile", "", "write a pprof CPU profile of the whole run here")
		memProf    = flag.String("memprofile", "", "write a pprof heap profile (live objects at exit) here")
		seq        = flag.Bool("seq", false, "force the sequential tick engine (disable intra-run parallelism)")
	)
	flag.Parse()

	stopProf, err := cliutil.StartProfiles(*cpuProf, *memProf)
	if err != nil {
		cliutil.Errorf("%v", err)
		return cliutil.ExitUsage
	}
	defer func() {
		if err := stopProf(); err != nil {
			cliutil.Errorf("%v", err)
		}
	}()

	outFormat, err := report.ParseFormat(*format)
	if err != nil {
		cliutil.Errorf("%v", err)
		return cliutil.ExitUsage
	}

	cfg := hetsim.DefaultConfig(*scale)
	cfg.NoParallel = *seq
	if *fast {
		cfg.WarmupInstr /= 8
		cfg.MeasureInstr /= 8
		cfg.WarmupFrames = 4
		cfg.MinFrames = 3
	}
	if err := cfg.Validate(); err != nil {
		cliutil.Errorf("%v", err)
		return cliutil.ExitUsage
	}
	// Fail on unwritable outputs before hours of simulation, not after.
	for _, out := range []string{*metrics, *traceF, *save} {
		if out == "" {
			continue
		}
		if err := cliutil.EnsureWritable(out); err != nil {
			cliutil.Errorf("%v", err)
			return cliutil.ExitUsage
		}
	}

	ctx, stop := cliutil.SignalContext()
	defer stop()

	runner := hetsim.NewRunner(cfg)
	runner.Workers = *workers
	runner.Ctx = ctx
	runner.RunTimeout = *runTimeout

	// Journal: -resume implies journaling to the same file, so a twice-
	// interrupted run keeps accumulating into one journal.
	journalPath := *journalF
	if *resumeF != "" {
		journalPath = *resumeF
	}
	if journalPath != "" {
		j, recs, jstats, err := hetsim.OpenJournal(journalPath)
		if err != nil {
			cliutil.Errorf("%v", err)
			return cliutil.ExitRuntime
		}
		defer j.Close()
		runner.Journal = j
		if jstats.Skipped() > 0 {
			fmt.Fprintf(os.Stderr, "journal %s: skipped %d corrupt line(s), repaired %d torn tail(s)\n",
				journalPath, jstats.CorruptLines, jstats.TornTail)
		}
		if n, _ := runner.ReplayJournal(recs); *resumeF != "" {
			fmt.Fprintf(os.Stderr, "resuming from %s: %d run(s) journaled\n", journalPath, n)
		}
	}

	// Observability: one isolated recorder per simulation, emitted in
	// sorted key order — output is identical for any -workers setting.
	var coll *hetsim.Collection
	if *metrics != "" || *traceF != "" {
		coll = hetsim.NewCollection(*stride)
		runner.Observe = coll.Recorder
	}
	saveObs := func() int {
		if coll == nil {
			return cliutil.ExitOK
		}
		if *metrics != "" {
			if err := coll.SaveMetrics(*metrics); err != nil {
				cliutil.Errorf("%v", err)
				return cliutil.ExitRuntime
			}
			fmt.Fprintf(os.Stderr, "metrics for %d runs written to %s\n", coll.Len(), *metrics)
		}
		if *traceF != "" {
			if err := coll.SaveTrace(*traceF); err != nil {
				cliutil.Errorf("%v", err)
				return cliutil.ExitRuntime
			}
			fmt.Fprintf(os.Stderr, "trace written to %s (load in chrome://tracing or Perfetto)\n", *traceF)
		}
		return cliutil.ExitOK
	}

	if *ablate != "" {
		return runAblation(runner, *ablate, *mixID, outFormat)
	}

	ids := hetsim.ExperimentIDs()
	if !*all {
		if *expID == "" {
			flag.Usage()
			return cliutil.ExitUsage
		}
		ids = []string{*expID}
	}
	// Dispatch every experiment's run set to the pool, then assemble
	// and print in order; assembly joins the in-flight runs.
	if err := runner.Prefetch(ids...); err != nil {
		cliutil.Errorf("%v", err)
		return cliutil.ExitUsage
	}
	arch := exp.NewArchive(*scale)
	for _, id := range ids {
		rep, err := runner.ByID(id)
		if err != nil {
			cliutil.Errorf("%v", err)
			reportRunErrors(runner)
			saveObs()
			return cliutil.ExitRuntime
		}
		arch.Add(rep)
		if err := report.Write(os.Stdout, rep, outFormat); err != nil {
			cliutil.Errorf("%v", err)
			return cliutil.ExitRuntime
		}
		fmt.Println()
	}
	if code := saveObs(); code != cliutil.ExitOK {
		return code
	}
	if *save != "" {
		if err := arch.Save(*save); err != nil {
			cliutil.Errorf("%v", err)
			return cliutil.ExitRuntime
		}
		fmt.Fprintf(os.Stderr, "archive saved to %s\n", *save)
	}
	if *compare != "" {
		old, err := exp.LoadArchive(*compare)
		if err != nil {
			cliutil.Errorf("%v", err)
			return cliutil.ExitRuntime
		}
		deltas := exp.Diff(old, arch, 0.05)
		if len(deltas) == 0 {
			fmt.Println("no drift >= 5% against", *compare)
		}
		for _, d := range deltas {
			fmt.Printf("drift %-8s %-16s %-14s %.3f -> %.3f (%+.1f%%)\n",
				d.Experiment, d.Row, d.Cell, d.Old, d.New, 100*d.Rel)
		}
	}
	return cliutil.ExitOK
}

// reportRunErrors prints every quarantined simulation failure, so a
// partially failed run tells the user exactly which keys to re-run
// (or -resume past).
func reportRunErrors(runner *hetsim.Runner) {
	for _, e := range runner.Errors() {
		fmt.Fprintln(os.Stderr, "  ", e)
	}
}

func runAblation(runner *hetsim.Runner, kind, mixID string, f report.Format) int {
	if _, err := hetsim.MixByID(mixID); err != nil {
		cliutil.Errorf("%v", err)
		return cliutil.ExitUsage
	}
	var (
		rep hetsim.Report
		err error
	)
	switch kind {
	case "step":
		rep, err = runner.AblationWindowStep(mixID, []uint64{1, 2, 4, 8})
	case "target":
		rep, err = runner.AblationTargetFPS(mixID, []float64{30, 40, 50})
	case "law":
		rep, err = runner.AblationUpdateLaw(mixID)
	case "cmbal":
		rep, err = runner.AblationCMBAL(mixID)
	case "prefetch":
		rep, err = runner.AblationPrefetch(mixID)
	case "llc":
		rep, err = runner.AblationLLCPolicy(mixID)
	default:
		cliutil.Errorf("unknown ablation %q (step, target, law, cmbal, prefetch, llc)", kind)
		return cliutil.ExitUsage
	}
	if err != nil {
		cliutil.Errorf("%v", err)
		return cliutil.ExitRuntime
	}
	if err := report.Write(os.Stdout, rep, f); err != nil {
		cliutil.Errorf("%v", err)
		return cliutil.ExitRuntime
	}
	return cliutil.ExitOK
}
