// Command experiments regenerates the paper's tables and figures.
//
//	experiments -exp fig9            # one experiment
//	experiments -all                 # everything, paper order
//	experiments -all -workers 8      # 8 simulations in flight at once
//	experiments -exp fig12 -scale 32 # heavier, closer-to-paper run
//	experiments -ablate step -mix M7 # beyond-paper ablations
//
// Every experiment's full (mix, policy) run set is dispatched to the
// runner's worker pool up front (default width: HETSIM_PARALLEL or
// GOMAXPROCS), so independent simulations execute concurrently while
// reports print in order. Output is byte-identical to a serial run.
//
// Output is one printable block per experiment with the headline
// aggregate the paper quotes; EXPERIMENTS.md records a reference run.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/hetsim"
	"repro/internal/exp"
	"repro/internal/report"
)

func main() {
	var (
		expID   = flag.String("exp", "", "experiment id: "+strings.Join(hetsim.ExperimentIDs(), ", "))
		all     = flag.Bool("all", false, "run every experiment in paper order")
		scale   = flag.Int("scale", 64, "scale factor (smaller = slower, closer to paper size)")
		fast    = flag.Bool("fast", false, "shorter windows (smoke-test quality)")
		ablate  = flag.String("ablate", "", "ablation: step, target, law, cmbal, prefetch, llc")
		mixID   = flag.String("mix", "M7", "mix for ablations")
		format  = flag.String("format", "text", "output format: text, csv, json, chart")
		save    = flag.String("save", "", "write the run's reports to a JSON archive")
		compare = flag.String("compare", "", "diff this run against a saved archive (>=5% drift)")
		workers = flag.Int("workers", 0, "concurrent simulations (0 = HETSIM_PARALLEL or GOMAXPROCS, 1 = serial)")
		metrics = flag.String("metrics-out", "", "write every run's sampled time series (CSV sections) here")
		traceF  = flag.String("trace-out", "", "write a merged Chrome trace_event JSON here (one process per run)")
		stride  = flag.Uint64("metrics-stride", 0, "CPU cycles between metric samples (0 = default)")
	)
	flag.Parse()

	outFormat, err := report.ParseFormat(*format)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	cfg := hetsim.DefaultConfig(*scale)
	if *fast {
		cfg.WarmupInstr /= 8
		cfg.MeasureInstr /= 8
		cfg.WarmupFrames = 4
		cfg.MinFrames = 3
	}
	runner := hetsim.NewRunner(cfg)
	runner.Workers = *workers

	// Observability: one isolated recorder per simulation, emitted in
	// sorted key order — output is identical for any -workers setting.
	var coll *hetsim.Collection
	if *metrics != "" || *traceF != "" {
		coll = hetsim.NewCollection(*stride)
		runner.Observe = coll.Recorder
	}
	defer func() {
		if coll == nil {
			return
		}
		if *metrics != "" {
			if err := coll.SaveMetrics(*metrics); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "metrics for %d runs written to %s\n", coll.Len(), *metrics)
		}
		if *traceF != "" {
			if err := coll.SaveTrace(*traceF); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "trace written to %s (load in chrome://tracing or Perfetto)\n", *traceF)
		}
	}()

	if *ablate != "" {
		runAblation(runner, *ablate, *mixID, outFormat)
		return
	}

	ids := hetsim.ExperimentIDs()
	if !*all {
		if *expID == "" {
			flag.Usage()
			os.Exit(2)
		}
		ids = []string{*expID}
	}
	// Dispatch every experiment's run set to the pool, then assemble
	// and print in order; assembly joins the in-flight runs.
	if err := runner.Prefetch(ids...); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	arch := exp.NewArchive(*scale)
	for _, id := range ids {
		rep, err := runner.ByID(id)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		arch.Add(rep)
		if err := report.Write(os.Stdout, rep, outFormat); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Println()
	}
	if *save != "" {
		if err := arch.Save(*save); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "archive saved to %s\n", *save)
	}
	if *compare != "" {
		old, err := exp.LoadArchive(*compare)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		deltas := exp.Diff(old, arch, 0.05)
		if len(deltas) == 0 {
			fmt.Println("no drift >= 5% against", *compare)
		}
		for _, d := range deltas {
			fmt.Printf("drift %-8s %-16s %-14s %.3f -> %.3f (%+.1f%%)\n",
				d.Experiment, d.Row, d.Cell, d.Old, d.New, 100*d.Rel)
		}
	}
}

func runAblation(runner *hetsim.Runner, kind, mixID string, f report.Format) {
	var (
		rep hetsim.Report
		err error
	)
	switch kind {
	case "step":
		rep, err = runner.AblationWindowStep(mixID, []uint64{1, 2, 4, 8})
	case "target":
		rep, err = runner.AblationTargetFPS(mixID, []float64{30, 40, 50})
	case "law":
		rep, err = runner.AblationUpdateLaw(mixID)
	case "cmbal":
		rep, err = runner.AblationCMBAL(mixID)
	case "prefetch":
		rep, err = runner.AblationPrefetch(mixID)
	case "llc":
		rep, err = runner.AblationLLCPolicy(mixID)
	default:
		err = fmt.Errorf("unknown ablation %q (step, target, law, cmbal, prefetch, llc)", kind)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if err := report.Write(os.Stdout, rep, f); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
