package main

import (
	"bytes"
	"crypto/sha256"
	"os"
	"os/exec"
	"path/filepath"
	"syscall"
	"testing"
	"time"

	"repro/hetsim"
)

// sweepArgs is the grid both subprocess tests run: 6 cells, serial,
// fast windows — big enough that a kill lands mid-sweep, small enough
// to keep the test under a few seconds per run.
var sweepArgs = []string{
	"-mix", "W3", "-scale", "256", "-fast", "-workers", "1",
	"-targets", "30,40,50", "-policies", "baseline,throttle",
}

// buildSweep compiles this package into a throwaway binary so the
// tests can exercise the real process boundary: SIGKILL, exit codes,
// fsynced journal state.
func buildSweep(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "sweep")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

func runSweep(t *testing.T, bin string, extra ...string) []byte {
	t.Helper()
	cmd := exec.Command(bin, append(append([]string{}, sweepArgs...), extra...)...)
	var stdout, stderr bytes.Buffer
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	if err := cmd.Run(); err != nil {
		t.Fatalf("sweep %v: %v\n%s", extra, err, stderr.Bytes())
	}
	return stdout.Bytes()
}

// journalLines counts complete (newline-terminated) lines in the
// journal file, tolerating the file not existing yet.
func journalLines(path string) int {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0
	}
	return bytes.Count(data, []byte{'\n'})
}

// TestKillAndResumeByteIdentical is the ISSUE's headline acceptance
// test: SIGKILL a journaling sweep after at least one cell has been
// fsynced, resume it, and require the resumed CSV to be byte-for-byte
// identical to an uninterrupted run's.
func TestKillAndResumeByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test")
	}
	bin := buildSweep(t)

	// Reference: one uninterrupted run.
	want := runSweep(t, bin)
	if len(want) == 0 {
		t.Fatal("uninterrupted sweep produced no output")
	}

	// Victim: same grid, journaling, killed after >=1 journaled cell.
	journal := filepath.Join(t.TempDir(), "runs.jsonl")
	victim := exec.Command(bin, append(append([]string{}, sweepArgs...), "-journal", journal)...)
	victim.Stdout, victim.Stderr = nil, nil
	if err := victim.Start(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for journalLines(journal) < 1 {
		if time.Now().After(deadline) {
			victim.Process.Kill()
			t.Fatal("journal never received a record")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := victim.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	err := victim.Wait()
	if err == nil {
		// The sweep won the race and finished cleanly; resume still
		// must reproduce the reference, so the test stays valid, just
		// weaker. Log it so a systematically-too-fast grid is noticed.
		t.Log("sweep finished before SIGKILL landed; resume will find a complete journal")
	}

	done := journalLines(journal)
	if done < 1 {
		t.Fatalf("killed sweep left %d journaled cells", done)
	}
	t.Logf("killed after %d of 6 cells", done)

	// Survivor: resume from the dead sweep's journal.
	got := runSweep(t, bin, "-resume", journal)
	if sha256.Sum256(got) != sha256.Sum256(want) {
		t.Fatalf("resumed CSV differs from uninterrupted run\n--- want ---\n%s\n--- got ---\n%s", want, got)
	}
	// And the journal now covers the whole grid: a second resume runs
	// nothing and still reproduces the report.
	if n := journalLines(journal); n < 6 {
		t.Fatalf("journal holds %d cells after resume, want 6", n)
	}
	again := runSweep(t, bin, "-resume", journal)
	if !bytes.Equal(again, want) {
		t.Fatal("second resume (fully cached) differs from uninterrupted run")
	}
}

// TestResumeRepairsTornJournal chops the journal mid-line — what a
// crash inside the unsynced tail looks like — and requires resume to
// discard the torn record, re-run that cell, and still emit the
// byte-identical CSV.
func TestResumeRepairsTornJournal(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test")
	}
	bin := buildSweep(t)
	journal := filepath.Join(t.TempDir(), "runs.jsonl")
	want := runSweep(t, bin, "-journal", journal)

	data, err := os.ReadFile(journal)
	if err != nil {
		t.Fatal(err)
	}
	if journalLines(journal) != 6 {
		t.Fatalf("complete run journaled %d cells, want 6", journalLines(journal))
	}
	// Tear the last record: drop its newline and half its payload.
	torn := data[:len(data)-40]
	if err := os.WriteFile(journal, torn, 0o644); err != nil {
		t.Fatal(err)
	}

	got := runSweep(t, bin, "-resume", journal)
	if !bytes.Equal(got, want) {
		t.Fatalf("resume after torn journal differs\n--- want ---\n%s\n--- got ---\n%s", want, got)
	}
	// The torn line must have been truncated away and replaced by a
	// valid re-run record.
	j, recs, stats, err := hetsim.OpenJournal(journal)
	if err != nil {
		t.Fatal(err)
	}
	j.Close()
	if stats.Skipped() != 0 || len(recs) != 6 {
		t.Fatalf("repaired journal: %d records, %d skipped; want 6, 0", len(recs), stats.Skipped())
	}
}
