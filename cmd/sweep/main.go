// Command sweep runs a policy x target-FPS grid over one mix and
// emits CSV, for sensitivity studies beyond the paper's fixed 40 FPS
// target:
//
//	sweep -mix M7 -targets 30,40,50,60 -policies baseline,throttle+prio
//	sweep -mix M13 -scale 48 > m13.csv
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/hetsim"
)

var policyNames = map[string]hetsim.Policy{
	"baseline":      hetsim.PolicyBaseline,
	"throttle":      hetsim.PolicyThrottle,
	"throttle+prio": hetsim.PolicyThrottleCPUPrio,
	"sms09":         hetsim.PolicySMS09,
	"sms0":          hetsim.PolicySMS0,
	"dynprio":       hetsim.PolicyDynPrio,
	"helm":          hetsim.PolicyHeLM,
	"bypass":        hetsim.PolicyForcedBypass,
	"cmbal":         hetsim.PolicyCMBAL,
}

func main() {
	var (
		mixID    = flag.String("mix", "M7", "mix id")
		scale    = flag.Int("scale", 96, "scale factor")
		targets  = flag.String("targets", "30,40,50", "comma-separated QoS targets (FPS)")
		policies = flag.String("policies", "baseline,throttle,throttle+prio", "comma-separated policies")
		prefetch = flag.Bool("prefetch", false, "enable the CPU L2 stride prefetchers")
	)
	flag.Parse()

	mix, err := hetsim.MixByID(*mixID)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	var tgts []float64
	for _, t := range strings.Split(*targets, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(t), 64)
		if err != nil || v <= 0 {
			fmt.Fprintf(os.Stderr, "bad target %q\n", t)
			os.Exit(2)
		}
		tgts = append(tgts, v)
	}
	var pols []hetsim.Policy
	for _, p := range strings.Split(*policies, ",") {
		pol, ok := policyNames[strings.TrimSpace(p)]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown policy %q\n", p)
			os.Exit(2)
		}
		pols = append(pols, pol)
	}

	fmt.Println("mix,policy,targetFPS,gpuFPS,meanIPC,p95FrameCycles,jank,belowTarget,gpuDRAMBytes,cpuLLCMisses")
	for _, pol := range pols {
		for _, tgt := range tgts {
			cfg := hetsim.DefaultConfig(*scale)
			cfg.Policy = pol
			cfg.TargetFPS = tgt
			cfg.CPUPrefetch = *prefetch
			r := hetsim.RunMix(cfg, mix)
			fmt.Printf("%s,%s,%.0f,%.2f,%.4f,%.0f,%d,%d,%d,%d\n",
				mix.ID, pol, tgt, r.GPUFPS, r.MeanIPC(),
				r.FrameStats.P95Cycles, r.FrameStats.Jank, r.FrameStats.BelowTarget,
				r.GPUBandwidthBytes(), r.CPULLCMisses)
		}
	}
}
