// Command sweep runs a policy x target-FPS grid over one mix and
// emits CSV, for sensitivity studies beyond the paper's fixed 40 FPS
// target:
//
//	sweep -mix M7 -targets 30,40,50,60 -policies baseline,throttle+prio
//	sweep -mix M13 -scale 48 > m13.csv
//
// Grid cells are independent simulations and run concurrently on a
// bounded pool (-workers, default HETSIM_PARALLEL or GOMAXPROCS);
// rows are emitted in grid order regardless of completion order.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"

	"repro/hetsim"
)

var policyNames = map[string]hetsim.Policy{
	"baseline":      hetsim.PolicyBaseline,
	"throttle":      hetsim.PolicyThrottle,
	"throttle+prio": hetsim.PolicyThrottleCPUPrio,
	"sms09":         hetsim.PolicySMS09,
	"sms0":          hetsim.PolicySMS0,
	"dynprio":       hetsim.PolicyDynPrio,
	"helm":          hetsim.PolicyHeLM,
	"bypass":        hetsim.PolicyForcedBypass,
	"cmbal":         hetsim.PolicyCMBAL,
}

func main() {
	var (
		mixID    = flag.String("mix", "M7", "mix id")
		scale    = flag.Int("scale", 96, "scale factor")
		targets  = flag.String("targets", "30,40,50", "comma-separated QoS targets (FPS)")
		policies = flag.String("policies", "baseline,throttle,throttle+prio", "comma-separated policies")
		prefetch = flag.Bool("prefetch", false, "enable the CPU L2 stride prefetchers")
		workers  = flag.Int("workers", 0, "concurrent simulations (0 = HETSIM_PARALLEL or GOMAXPROCS, 1 = serial)")
		metrics  = flag.String("metrics-out", "", "write every cell's sampled time series (CSV sections) here")
		traceF   = flag.String("trace-out", "", "write a merged Chrome trace_event JSON here (one process per cell)")
		stride   = flag.Uint64("metrics-stride", 0, "CPU cycles between metric samples (0 = default)")
	)
	flag.Parse()

	mix, err := hetsim.MixByID(*mixID)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	var tgts []float64
	for _, t := range strings.Split(*targets, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(t), 64)
		if err != nil || v <= 0 {
			fmt.Fprintf(os.Stderr, "bad target %q\n", t)
			os.Exit(2)
		}
		tgts = append(tgts, v)
	}
	var pols []hetsim.Policy
	for _, p := range strings.Split(*policies, ",") {
		pol, ok := policyNames[strings.TrimSpace(p)]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown policy %q\n", p)
			os.Exit(2)
		}
		pols = append(pols, pol)
	}

	type cell struct {
		pol hetsim.Policy
		tgt float64
	}
	var grid []cell
	for _, pol := range pols {
		for _, tgt := range tgts {
			grid = append(grid, cell{pol, tgt})
		}
	}

	// Per-cell isolated recorders keyed by grid coordinates; a nil
	// collection hands out nil recorders (observability off).
	var coll *hetsim.Collection
	if *metrics != "" || *traceF != "" {
		coll = hetsim.NewCollection(*stride)
	}

	n := *workers
	if n <= 0 {
		n = hetsim.DefaultWorkers()
	}
	sem := make(chan struct{}, n)
	rows := make([]string, len(grid))
	var wg sync.WaitGroup
	for i, c := range grid {
		wg.Add(1)
		go func(i int, c cell) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			cfg := hetsim.DefaultConfig(*scale)
			cfg.Policy = c.pol
			cfg.TargetFPS = c.tgt
			cfg.CPUPrefetch = *prefetch
			rec := coll.Recorder(fmt.Sprintf("%s/%s/%.0f", mix.ID, c.pol, c.tgt))
			r := hetsim.RunMixObs(cfg, mix, rec)
			rows[i] = fmt.Sprintf("%s,%s,%.0f,%.2f,%.4f,%.0f,%d,%d,%d,%d",
				mix.ID, c.pol, c.tgt, r.GPUFPS, r.MeanIPC(),
				r.FrameStats.P95Cycles, r.FrameStats.Jank, r.FrameStats.BelowTarget,
				r.GPUBandwidthBytes(), r.CPULLCMisses)
		}(i, c)
	}
	wg.Wait()

	fmt.Println("mix,policy,targetFPS,gpuFPS,meanIPC,p95FrameCycles,jank,belowTarget,gpuDRAMBytes,cpuLLCMisses")
	for _, row := range rows {
		fmt.Println(row)
	}

	if *metrics != "" {
		if err := coll.SaveMetrics(*metrics); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "metrics for %d cells written to %s\n", coll.Len(), *metrics)
	}
	if *traceF != "" {
		if err := coll.SaveTrace(*traceF); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "trace written to %s (load in chrome://tracing or Perfetto)\n", *traceF)
	}
}
