// Command sweep runs a policy x target-FPS grid over one mix and
// emits CSV, for sensitivity studies beyond the paper's fixed 40 FPS
// target:
//
//	sweep -mix M7 -targets 30,40,50,60 -policies baseline,throttle+prio
//	sweep -mix M13 -scale 48 > m13.csv
//	sweep -scenario launch.json -policies baseline,throttle+prio
//
// With -scenario the grid runs a time-varying scenario spec
// (DESIGN.md §12) instead of a static mix; rows are keyed by the
// spec's content digest.
//
// Grid cells are independent simulations and run concurrently on a
// bounded pool (-workers, default HETSIM_PARALLEL or GOMAXPROCS);
// rows are emitted in grid order regardless of completion order.
//
// Long sweeps are resumable: -journal appends every finished cell to
// a crash-safe JSONL journal, and -resume replays one so only the
// missing cells simulate. A resumed sweep's CSV is byte-identical to
// an uninterrupted run. Ctrl-C stops dispatching, drains in-flight
// cells, and flushes the journal before exiting.
//
// With -tier twin|auto and -twin-coeffs, mix cells are answered by
// the calibrated analytic model (DESIGN.md §14) where it can: the CSV
// gains a trailing provenance column, and only the cells the model
// cannot answer — a target FPS outside the calibration digest, an
// unfitted policy, or a confidence below -twin-threshold — either
// fail (-tier twin) or fall back to cycle-accurate simulation
// (-tier auto). Twin rows are never journaled: predictions cost
// microseconds to recompute and must not masquerade as simulated
// cells on a later -resume.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime/debug"
	"strconv"
	"strings"
	"sync"

	"repro/hetsim"
	"repro/internal/cliutil"
)

// cellKey is the journal key for one grid cell. %g keeps the float
// form canonical so the same target always produces the same key.
func cellKey(mixID string, pol hetsim.Policy, tgt float64) string {
	return fmt.Sprintf("%s/%d/%g", mixID, pol, tgt)
}

// formatRow renders one CSV row from a cell's result. It is a pure
// function of the Result, which is what makes a resumed sweep's CSV
// byte-identical to an uninterrupted one.
func formatRow(mixID string, pol hetsim.Policy, tgt float64, r hetsim.Result) string {
	return fmt.Sprintf("%s,%s,%.0f,%.2f,%.4f,%.0f,%d,%d,%d,%d",
		mixID, pol, tgt, r.GPUFPS, r.MeanIPC(),
		r.FrameStats.P95Cycles, r.FrameStats.Jank, r.FrameStats.BelowTarget,
		r.GPUBandwidthBytes(), r.CPULLCMisses)
}

// twinRow renders an analytically-predicted cell. The model has no
// frame-time distribution or memory-traffic terms, so the tail and
// traffic columns are zero; the trailing provenance column is what
// tells a reader not to trust them.
func twinRow(mixID string, pol hetsim.Policy, tgt float64, p hetsim.TwinPrediction) string {
	return fmt.Sprintf("%s,%s,%.0f,%.2f,%.4f,0,0,0,0,0,twin",
		mixID, pol, tgt, p.FPS, p.MeanIPC)
}

func main() { os.Exit(realMain()) }

// realMain carries the whole run so deferred cleanup (journal flush,
// signal release) executes before the process exits; main wraps it in
// the one os.Exit.
func realMain() int {
	var (
		mixID    = flag.String("mix", "M7", "mix id")
		scnFile  = flag.String("scenario", "", "sweep this scenario spec file instead of a mix")
		scale    = flag.Int("scale", 96, "scale factor")
		targets  = flag.String("targets", "30,40,50", "comma-separated QoS targets (FPS)")
		policies = flag.String("policies", "baseline,throttle,throttle+prio", "comma-separated policies")
		prefetch = flag.Bool("prefetch", false, "enable the CPU L2 stride prefetchers")
		fast     = flag.Bool("fast", false, "shorter windows (smoke-test quality)")
		workers  = flag.Int("workers", 0, "concurrent simulations (0 = HETSIM_PARALLEL or GOMAXPROCS, 1 = serial)")
		journalF = flag.String("journal", "", "append each finished cell to this crash-safe JSONL journal")
		resumeF  = flag.String("resume", "", "resume from this journal (implies -journal on the same file)")
		compact  = flag.Bool("compact", false, "rewrite the journal to one record per cell before sweeping (requires -journal or -resume)")
		metrics  = flag.String("metrics-out", "", "write every cell's sampled time series (CSV sections) here")
		traceF   = flag.String("trace-out", "", "write a merged Chrome trace_event JSON here (one process per cell)")
		stride   = flag.Uint64("metrics-stride", 0, "CPU cycles between metric samples (0 = default)")
		cpuProf  = flag.String("cpuprofile", "", "write a pprof CPU profile of the whole sweep here")
		memProf  = flag.String("memprofile", "", "write a pprof heap profile (live objects at exit) here")
		seq      = flag.Bool("seq", false, "force the sequential tick engine (disable intra-run parallelism)")
		tierF    = flag.String("tier", "full", "serving tier: full, twin (analytic model only), or auto (twin with simulation fallback)")
		twinF    = flag.String("twin-coeffs", "", "coefficient file from `calibrate -fit-twin` (required for -tier twin|auto)")
		twinThr  = flag.Float64("twin-threshold", 0, "minimum twin confidence before -tier auto falls back to simulation (0 = 0.7, negative = accept all)")
	)
	flag.Parse()

	tier := *tierF
	switch tier {
	case hetsim.TierFull, hetsim.TierTwin, hetsim.TierAuto:
	default:
		cliutil.Errorf("bad -tier %q (want full, twin, or auto)", tier)
		return cliutil.ExitUsage
	}
	var model *hetsim.TwinModel
	if tier != hetsim.TierFull {
		if *twinF == "" {
			cliutil.Errorf("-tier %s requires -twin-coeffs", tier)
			return cliutil.ExitUsage
		}
		m, err := hetsim.LoadTwinCoeffs(*twinF)
		if err != nil {
			cliutil.Errorf("%v", err)
			return cliutil.ExitUsage
		}
		model = m
	}
	thr := *twinThr
	if thr == 0 {
		thr = 0.7
	}

	stopProf, err := cliutil.StartProfiles(*cpuProf, *memProf)
	if err != nil {
		cliutil.Errorf("%v", err)
		return cliutil.ExitUsage
	}
	defer func() {
		if err := stopProf(); err != nil {
			cliutil.Errorf("%v", err)
		}
	}()

	var (
		mix   hetsim.Mix
		scn   *hetsim.ScenarioSpec
		label string
	)
	if *scnFile != "" {
		sp, err := hetsim.LoadScenario(*scnFile)
		if err != nil {
			cliutil.Errorf("%v", err)
			return cliutil.ExitUsage
		}
		if err := sp.Validate(); err != nil {
			cliutil.Errorf("%v", err)
			return cliutil.ExitUsage
		}
		scn = sp
		label = "scn:" + sp.Digest()
		if tier != hetsim.TierFull {
			// Rejected rather than silently simulated: a time-varying
			// scenario has no analytic model, and the caller asked for one.
			cliutil.Errorf("-tier %s: scenario sweeps have no analytic model", tier)
			return cliutil.ExitUsage
		}
	} else {
		m, err := hetsim.MixByID(*mixID)
		if err != nil {
			cliutil.Errorf("%v", err)
			return cliutil.ExitUsage
		}
		mix = m
		label = m.ID
	}
	var tgts []float64
	for _, t := range strings.Split(*targets, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(t), 64)
		if err != nil || v <= 0 {
			cliutil.Errorf("bad target %q", t)
			return cliutil.ExitUsage
		}
		tgts = append(tgts, v)
	}
	var pols []hetsim.Policy
	for _, p := range strings.Split(*policies, ",") {
		pol, err := hetsim.ParsePolicy(p)
		if err != nil {
			cliutil.Errorf("%v", err)
			return cliutil.ExitUsage
		}
		pols = append(pols, pol)
	}

	baseCfg := hetsim.DefaultConfig(*scale)
	if scn == nil {
		baseCfg.NumCPUs = len(mix.SpecIDs)
	}
	baseCfg.CPUPrefetch = *prefetch
	baseCfg.NoParallel = *seq
	if *fast {
		baseCfg.WarmupInstr /= 8
		baseCfg.MeasureInstr /= 8
		baseCfg.WarmupFrames = 2
		baseCfg.MinFrames = 2
	}
	if err := baseCfg.Validate(); err != nil {
		cliutil.Errorf("%v", err)
		return cliutil.ExitUsage
	}
	// Fail on unwritable outputs before hours of simulation, not after.
	for _, out := range []string{*metrics, *traceF} {
		if out == "" {
			continue
		}
		if err := cliutil.EnsureWritable(out); err != nil {
			cliutil.Errorf("%v", err)
			return cliutil.ExitUsage
		}
	}

	// Journal: -resume implies journaling to the same file, so a twice-
	// interrupted sweep keeps accumulating into one journal.
	journalPath := *journalF
	if *resumeF != "" {
		journalPath = *resumeF
	}
	cached := map[string]hetsim.Result{}
	var journal *hetsim.Journal
	if journalPath != "" {
		j, recs, jstats, err := hetsim.OpenJournal(journalPath)
		if err != nil {
			cliutil.Errorf("%v", err)
			return cliutil.ExitRuntime
		}
		defer j.Close()
		journal = j
		if jstats.Skipped() > 0 {
			fmt.Fprintf(os.Stderr, "journal %s: skipped %d corrupt line(s), repaired %d torn tail(s)\n",
				journalPath, jstats.CorruptLines, jstats.TornTail)
		}
		for _, rec := range recs {
			if rec.Kind == "cell" && rec.Result != nil {
				cached[rec.Key] = *rec.Result
			}
		}
		if *resumeF != "" {
			fmt.Fprintf(os.Stderr, "resuming from %s: %d cell(s) journaled\n", journalPath, len(cached))
		}
		if *compact {
			// Shed superseded records (atomic rename, replay-identical by
			// construction: the journal keeps each cell's latest record).
			kept, dropped, err := j.Compact()
			if err != nil {
				cliutil.Errorf("%v", err)
				return cliutil.ExitRuntime
			}
			fmt.Fprintf(os.Stderr, "compacted %s: kept %d record(s), dropped %d\n", journalPath, kept, dropped)
		}
	} else if *compact {
		cliutil.Errorf("-compact requires -journal or -resume")
		return cliutil.ExitUsage
	}

	type cell struct {
		pol hetsim.Policy
		tgt float64
	}
	var grid []cell
	for _, pol := range pols {
		for _, tgt := range tgts {
			grid = append(grid, cell{pol, tgt})
		}
	}

	// Per-cell isolated recorders keyed by grid coordinates; a nil
	// collection hands out nil recorders (observability off).
	var coll *hetsim.Collection
	if *metrics != "" || *traceF != "" {
		coll = hetsim.NewCollection(*stride)
	}

	ctx, stop := cliutil.SignalContext()
	defer stop()

	n := *workers
	if n <= 0 {
		n = hetsim.DefaultWorkers()
	}
	sem := make(chan struct{}, n)
	rows := make([]string, len(grid))
	cellErrs := make([]error, len(grid))
	// In non-full tiers every row carries its provenance; default
	// output stays byte-identical to earlier releases.
	simSuffix := ""
	if tier != hetsim.TierFull {
		simSuffix = ",full"
	}
	var wg sync.WaitGroup
	for i, c := range grid {
		key := cellKey(label, c.pol, c.tgt)
		// full and auto take journaled cells (exact answers already paid
		// for); twin tier is predictions-only, so it skips the cache.
		if r, ok := cached[key]; ok && tier != hetsim.TierTwin {
			rows[i] = formatRow(label, c.pol, c.tgt, r) + simSuffix
			continue
		}
		if model != nil {
			// Predictions cost microseconds: answer inline, no pool slot.
			cfg := baseCfg
			cfg.Policy = c.pol
			cfg.TargetFPS = c.tgt
			pred, perr := model.PredictMix(cfg, mix.ID, c.pol)
			if perr == nil && (thr < 0 || pred.Confidence >= thr) {
				rows[i] = twinRow(label, c.pol, c.tgt, pred)
				continue
			}
			if tier == hetsim.TierTwin {
				if perr == nil {
					perr = fmt.Errorf("confidence %.2f below threshold %.2f (rerun with -tier auto to simulate)", pred.Confidence, thr)
				}
				cellErrs[i] = fmt.Errorf("cell %s: %w", key, perr)
				continue
			}
			// auto: the model cannot answer this cell; simulate it.
		}
		wg.Add(1)
		go func(i int, c cell, key string) {
			defer wg.Done()
			// A panicking cell fails only itself: siblings keep
			// running and the journal keeps every completed result.
			defer func() {
				if p := recover(); p != nil {
					cellErrs[i] = fmt.Errorf("cell %s panicked: %v\n%s", key, p, debug.Stack())
				}
			}()
			sem <- struct{}{}
			defer func() { <-sem }()
			if ctx.Err() != nil {
				cellErrs[i] = fmt.Errorf("cell %s: %w", key, context.Cause(ctx))
				return
			}
			cfg := baseCfg
			cfg.Policy = c.pol
			cfg.TargetFPS = c.tgt
			cfg.Interrupt = func() bool { return ctx.Err() != nil }
			rec := coll.Recorder(key)
			var r hetsim.Result
			if scn != nil {
				var err error
				r, err = hetsim.RunScenarioObs(cfg, scn, rec)
				if err != nil {
					cellErrs[i] = fmt.Errorf("cell %s: %w", key, err)
					return
				}
			} else {
				r = hetsim.RunMixObs(cfg, mix, rec)
			}
			if r.Interrupted {
				// Wall-clock-dependent partial result: never journaled.
				cellErrs[i] = fmt.Errorf("cell %s: interrupted", key)
				return
			}
			if journal != nil {
				if err := journal.Append(hetsim.JournalRecord{Kind: "cell", Key: key, Result: &r}); err != nil {
					fmt.Fprintln(os.Stderr, err)
				}
			}
			rows[i] = formatRow(label, c.pol, c.tgt, r) + simSuffix
		}(i, c, key)
	}
	wg.Wait()

	header := "mix,policy,targetFPS,gpuFPS,meanIPC,p95FrameCycles,jank,belowTarget,gpuDRAMBytes,cpuLLCMisses"
	if tier != hetsim.TierFull {
		header += ",tier"
	}
	fmt.Println(header)
	failed := 0
	for i, row := range rows {
		if cellErrs[i] != nil {
			cliutil.Errorf("%v", cellErrs[i])
			failed++
			continue
		}
		fmt.Println(row)
	}

	if *metrics != "" {
		if err := coll.SaveMetrics(*metrics); err != nil {
			cliutil.Errorf("%v", err)
			return cliutil.ExitRuntime
		}
		fmt.Fprintf(os.Stderr, "metrics for %d cells written to %s\n", coll.Len(), *metrics)
	}
	if *traceF != "" {
		if err := coll.SaveTrace(*traceF); err != nil {
			cliutil.Errorf("%v", err)
			return cliutil.ExitRuntime
		}
		fmt.Fprintf(os.Stderr, "trace written to %s (load in chrome://tracing or Perfetto)\n", *traceF)
	}
	if journal != nil {
		if err := journal.Err(); err != nil {
			cliutil.Errorf("%v", err)
			return cliutil.ExitRuntime
		}
	}
	if failed > 0 {
		cliutil.Errorf("%d of %d cell(s) failed; rerun with -resume to fill them in", failed, len(grid))
		return cliutil.ExitRuntime
	}
	return cliutil.ExitOK
}
