# Developer entry points. `make ci` is the gate every change must
# pass: vet, build, the full test suite under the race detector, and
# the short-scale benchmarks (alloc regressions show up in -benchmem).

GO ?= go

.PHONY: all build vet test race bench ci

all: ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Race gate: -short keeps the simulation-heavy tests out, while the
# concurrency tests (Runner singleflight, parallel determinism entry
# points) always run, so the memoization layer is exercised under
# -race on every ci invocation.
race:
	$(GO) test -race -short ./...

# Short-scale benchmarks: one pass over the hot-path benches with
# -benchmem so allocation regressions in ring/Tick are visible.
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkTickReceive' -benchtime 10000x -benchmem ./internal/ring
	$(GO) test -run '^$$' -bench 'BenchmarkTick' -benchtime 10000x -benchmem ./internal/sim

ci: vet build test race bench
