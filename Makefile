# Developer entry points. `make ci` is the gate every change must
# pass: vet, build, the full test suite under the race detector, and
# the short-scale benchmarks (alloc regressions show up in -benchmem).

GO ?= go

.PHONY: all build vet test race bench bench-json bench-twin cover chaos chaos-fleet chaos-ha fuzz soak soak-fleet serve-smoke ci

all: ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# -timeout 10m turns a hung run (a livelock the watchdog missed, a
# deadlocked pool) into a stack-dumping failure instead of a CI job
# that sits until the runner's global timeout kills it opaquely.
test:
	$(GO) test -timeout 10m ./...

# Race gate: -short keeps the simulation-heavy tests out, while the
# concurrency tests (Runner singleflight, parallel determinism entry
# points) always run, so the memoization layer is exercised under
# -race on every ci invocation. The race detector slows the sim suite
# ~4x, so this gate gets double the hang budget.
race:
	$(GO) test -race -short -timeout 20m ./...

# Chaos gate: the fault-injection suite plus the watchdog/journal/
# panic-isolation robustness tests, under -race. Proves the PR 2
# invariants (read conservation, monotone counters) survive injected
# back-pressure bursts, DRAM stalls, and dropped fills, and that the
# fault-tolerance layer itself is data-race-free. ParallelEquivalence
# is the intra-run parallel engine's differential gate: all nine
# policies, plus the fault-injected variant, digest-identical to the
# sequential loop with the race detector watching the epoch barrier.
chaos:
	$(GO) test -race -timeout 10m -count=1 ./internal/faultinject
	$(GO) test -race -timeout 15m -count=1 -run 'Watchdog|Interrupt|WarmupCapped|ConfigValidate|ParallelEquivalence' ./internal/sim
	$(GO) test -race -timeout 10m -count=1 -run 'Journal|Replay|Quarantin|Cancelled|Timeout' ./internal/exp
	$(GO) test -race -timeout 10m -count=1 ./internal/server
	$(GO) test -race -timeout 15m -count=1 -run 'Chaos|ResumeRequires' ./cmd/hetsimd
	$(GO) test -race -timeout 10m -count=1 ./internal/scenario/...
	HETSIM_SCENARIOS=$(CHAOS_SCENARIOS) $(GO) test -race -timeout 25m -count=1 -run 'TestScenario' ./internal/sim

# Fleet chaos gate (DESIGN.md §13.5): the distributed tentpole's
# acceptance test as choreography. A seed-deterministic 210-task
# campaign runs against one plain hetsimd for reference bytes, then
# against a 3-worker fleet that loses a worker to SIGKILL and then the
# coordinator itself, restarted with -resume under live retrying
# clients. Byte-identical convergence, zero recompute of keys the
# coordinator had completed (checked against the workers' own run
# journals), zero quarantines, and grant-ledger conservation over the
# wire — plus the fleet package's own lease/steal/replay suite.
chaos-fleet:
	$(GO) test -race -timeout 10m -count=1 ./internal/fleet
	$(GO) test -race -timeout 20m -count=1 -run 'ChaosFleet|FleetResumeRequires' ./cmd/hetsimfleet

# HA chaos gate (DESIGN.md §15): the same 210-task choreography against
# a primary + hot-standby coordinator pair. The primary is SIGKILLed
# mid-campaign under live clients; the standby must auto-promote at a
# higher term, re-arm the replicated in-flight leases, and converge to
# results byte-identical to a single plain hetsimd — with zero recompute
# of replicated completions, zero stale-term grants accepted by any
# worker, nothing quarantined, and the grant ledger conserved. Also
# covers the planned-failover path (hetsimctl promote fences a live
# primary).
chaos-ha:
	HETSIM_CHAOS_HA=1 $(GO) test -race -timeout 20m -count=1 -run 'ChaosHA|OperatorPromote' ./cmd/hetsimfleet

# The campaign gate (DESIGN.md §12): CHAOS_SCENARIOS random scenarios
# on a fixed seed base, each proving read conservation + monotone
# counters across phase boundaries, fast-forward-vs-naive and
# parallel-vs-sequential digest equality, and journal round-trip
# fidelity — under -race. A failing subtest is named seed=N; that seed
# plus scenario.Rand reproduces the exact workload timeline.
CHAOS_SCENARIOS = 200

# Nightly-style randomized soak: a fresh base seed each invocation and
# a larger scenario budget. The base seed is echoed up front (and every
# failing subtest names its own seed), so a red soak is reproducible
# with HETSIM_SCENARIO_SEED=<seed> make chaos.
SOAK_SCENARIOS = 500
soak:
	@seed=$$(od -An -N4 -tu4 /dev/urandom | tr -d ' '); \
	echo "soak: $(SOAK_SCENARIOS) scenarios, base seed $$seed (rerun: HETSIM_SCENARIO_SEED=$$seed)"; \
	HETSIM_SCENARIOS=$(SOAK_SCENARIOS) HETSIM_SCENARIO_SEED=$$seed \
		$(GO) test -race -timeout 60m -count=1 -run 'TestScenarioCampaign' ./internal/sim

# Fleet saturation soak (DESIGN.md §15.6): a 10k-task campaign with
# stubbed execution through a primary + standby pair, primary killed at
# half-way. Measures control-plane throughput (grants/sec with 16-wide
# twin batching), the failover gap (kill → first grant from the
# promoted standby), and replication-gap recompute, recorded to
# BENCH_PR10.json. Informational, not a ci gate — throughput is
# host-dependent.
soak-fleet:
	HETSIM_SOAK_FLEET=1 HETSIM_BENCH_OUT=$(CURDIR)/BENCH_PR10.json \
		$(GO) test -timeout 30m -count=1 -run 'TestSoakFleetSaturation' -v ./internal/fleet

# Fuzz gate: each target runs FUZZ_TIME of coverage-guided mutation on
# top of the seeded corpora under testdata/fuzz/. These parsers face
# hand-written scenario files, crash-recovered journals, and network
# submissions — the fuzzers hold their no-panic/invariant contracts.
FUZZ_TIME = 30s
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzConfigValidate -fuzztime $(FUZZ_TIME) ./internal/sim
	$(GO) test -run '^$$' -fuzz FuzzMixValidate -fuzztime $(FUZZ_TIME) ./internal/workloads
	$(GO) test -run '^$$' -fuzz FuzzJournalLine -fuzztime $(FUZZ_TIME) ./internal/exp
	$(GO) test -run '^$$' -fuzz FuzzScenarioSpec -fuzztime $(FUZZ_TIME) ./internal/scenario
	$(GO) test -run '^$$' -fuzz FuzzTraceV2 -fuzztime $(FUZZ_TIME) ./internal/scenario

# Short-scale benchmarks: one pass over the hot-path benches with
# -benchmem so allocation regressions in ring/Tick are visible. The
# BenchmarkTick pattern also covers BenchmarkTickObsDisabled/Enabled
# (the observability layer's zero-overhead-when-disabled claim) and
# BenchmarkTickParallel (the parallel engine's steady-state
# zero-allocs-per-cycle contract).
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkTickReceive' -benchtime 10000x -benchmem ./internal/ring
	$(GO) test -run '^$$' -bench 'BenchmarkTick' -benchtime 10000x -benchmem ./internal/sim

# Perf tracking: run the headline full-system benchmarks at a pinned
# scale and record them as machine-readable JSON, with per-benchmark
# speedups against the committed pre-PR-6 baseline (the commit before
# the request pools, FR-FCFS early exit, and the parallel tick
# engine). BenchmarkRunMixParallel has no baseline entry, so it is
# reported without a speedup — on a single-core host it bounds the
# barrier overhead rather than showing a win. Informational, not a
# gate — ns/op depends on the host, so `ci` runs it without failing
# the build (the JSON is there for humans and tooling to diff).
BENCH_SCALE = 96
bench-json:
	{ HETSIM_SCALE=$(BENCH_SCALE) $(GO) test -run '^$$' \
		-bench 'BenchmarkRun(Mix|MixParallel|GPUAlone|CPUAlone)$$' \
		-benchtime 3x -benchmem -timeout 30m ./internal/sim && \
	  HETSIM_SCALE=$(BENCH_SCALE) $(GO) test -run '^$$' \
		-bench 'BenchmarkFig9Throttling$$' \
		-benchtime 1x -benchmem -timeout 30m . ; } | \
		HETSIM_SCALE=$(BENCH_SCALE) $(GO) run ./cmd/benchjson \
		-baseline bench/BASELINE_PR6.txt -out BENCH_PR6.json
	$(MAKE) bench-twin

# Twin-vs-full serving latency at the twin's own scale (the benchmark
# calibrates a real frontier in setup, so TWIN_BENCH_SCALE=1024 keeps
# one simulation near a second). The recorded twin_speedup ratio is
# the tentpole's headline number; the acceptance floor is 1000x.
TWIN_BENCH_SCALE = 1024
bench-twin:
	HETSIM_SCALE=$(TWIN_BENCH_SCALE) $(GO) test -run '^$$' \
		-bench 'BenchmarkServingTier' \
		-benchtime 1x -benchmem -timeout 30m ./internal/twin | \
		HETSIM_SCALE=$(TWIN_BENCH_SCALE) $(GO) run ./cmd/benchjson \
		-ratio 'twin_speedup=BenchmarkServingTier/full:BenchmarkServingTier/twin' \
		-out BENCH_PR9.json

# Service smoke gate: boot the real hetsimd binary, drive one run
# through hetsimctl over HTTP, check the run is visible on /metricsz,
# and shut the daemon down gracefully (SIGTERM must drain and exit 0).
# The whole loop — daemon, admission, simulation, journal, client
# retries — in one subprocess round trip. The checked-in example
# scenario (tracev2 capture and all) is submitted twice: the client
# inlines the capture, the daemon replays it, and the second
# submission must come back byte-identical — idempotency by content
# digest, observed end to end over the wire.
serve-smoke:
	@set -e; tmp=$$(mktemp -d); pid=; \
	cleanup() { [ -n "$$pid" ] && kill $$pid 2>/dev/null || true; rm -rf $$tmp; }; \
	trap cleanup EXIT; \
	$(GO) build -o $$tmp ./cmd/hetsimd ./cmd/hetsimctl; \
	$$tmp/hetsimd -addr 127.0.0.1:0 -addr-file $$tmp/addr -scale 256 -fast \
		-journal $$tmp/runs.jsonl & pid=$$!; \
	i=0; while [ ! -s $$tmp/addr ] && [ $$i -lt 100 ]; do sleep 0.1; i=$$((i+1)); done; \
	addr=$$(cat $$tmp/addr); \
	$$tmp/hetsimctl -addr $$addr wait-ready; \
	$$tmp/hetsimctl -addr $$addr run cpu/462; \
	$$tmp/hetsimctl -addr $$addr metrics | grep -q '^runs_completed 1$$'; \
	$$tmp/hetsimctl -addr $$addr -scenario examples/scenario/launch.json \
		-policy throttle+prio run > $$tmp/scn1; \
	$$tmp/hetsimctl -addr $$addr -scenario examples/scenario/launch.json \
		-policy throttle+prio run > $$tmp/scn2; \
	cmp $$tmp/scn1 $$tmp/scn2; \
	cat $$tmp/scn1; \
	kill -TERM $$pid; wait $$pid; pid=; \
	echo "serve-smoke: OK"

# Coverage gate for the pure-bookkeeping layers every experiment's
# output flows through: the observability recorder, the workload
# catalogs, the synthetic trace generator, and the analytic twin model
# must each stay >= 80% covered by their own unit tests (-short keeps
# the gate fast; the twin's simulation-heavy differential gate hides
# behind the flag).
MIN_COVER = 80
cover:
	@set -e; for pkg in obs workloads trace twin; do \
		$(GO) test -short -cover -coverprofile=/tmp/$$pkg.cover ./internal/$$pkg >/dev/null; \
		total=$$($(GO) tool cover -func=/tmp/$$pkg.cover | awk '/^total:/ {sub(/%/, "", $$3); print $$3}'); \
		echo "internal/$$pkg coverage: $$total% (floor $(MIN_COVER)%)"; \
		awk "BEGIN {exit !($$total >= $(MIN_COVER))}" || \
			{ echo "FAIL: internal/$$pkg coverage $$total% below $(MIN_COVER)%"; exit 1; }; \
	done

ci: vet build test race bench cover chaos chaos-fleet chaos-ha serve-smoke
	-$(MAKE) bench-json
