package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestCounterEmitsDeltas(t *testing.T) {
	var v uint64
	r := NewRecorder(1)
	r.Counter("c", func() uint64 { return v })

	v = 5
	r.Sample(1)
	v = 12
	r.Sample(2)
	r.Sample(3) // no movement

	want := []float64{5, 7, 0}
	for i, w := range want {
		if got := r.rows[i][0]; got != w {
			t.Errorf("sample %d: delta = %v, want %v", i, got, w)
		}
	}
}

func TestCounterSurvivesStatsReset(t *testing.T) {
	var v uint64 = 100
	r := NewRecorder(1)
	r.Counter("c", func() uint64 { return v })

	r.Sample(1)
	// Upstream ResetStats(): the cumulative count restarts from zero.
	v = 30
	r.Sample(2)
	if got := r.rows[1][0]; got != 30 {
		t.Errorf("post-reset delta = %v, want 30 (baseline must restart at 0)", got)
	}
}

func TestGaugeIsInstantaneous(t *testing.T) {
	v := 1.5
	r := NewRecorder(1)
	r.Gauge("g", func() float64 { return v })
	r.Sample(1)
	v = -2.25
	r.Sample(2)
	if r.rows[0][0] != 1.5 || r.rows[1][0] != -2.25 {
		t.Errorf("gauge samples = %v, %v; want 1.5, -2.25", r.rows[0][0], r.rows[1][0])
	}
}

func TestRatioPerWindow(t *testing.T) {
	var num, den uint64
	r := NewRecorder(1)
	r.Ratio("ipc", func() uint64 { return num }, func() uint64 { return den })

	num, den = 50, 100
	r.Sample(1)
	if got := r.rows[0][0]; got != 0.5 {
		t.Errorf("first window ratio = %v, want 0.5", got)
	}
	num, den = 80, 200 // window delta: 30/100
	r.Sample(2)
	if got := r.rows[1][0]; got != 0.3 {
		t.Errorf("second window ratio = %v, want 0.3", got)
	}
	r.Sample(3) // denominator did not move
	if got := r.rows[2][0]; got != 0 {
		t.Errorf("stalled window ratio = %v, want 0", got)
	}
	num, den = 10, 40 // reset upstream
	r.Sample(4)
	if got := r.rows[3][0]; got != 0.25 {
		t.Errorf("post-reset ratio = %v, want 0.25", got)
	}
}

func TestDuplicateSeriesPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate series name did not panic")
		}
	}()
	var reg Registry
	reg.Counter("x", func() uint64 { return 0 })
	reg.Gauge("x", func() float64 { return 0 })
}

func TestNamesFollowRegistrationOrder(t *testing.T) {
	var reg Registry
	reg.Gauge("b", func() float64 { return 0 })
	reg.Counter("a", func() uint64 { return 0 })
	reg.Ratio("c", func() uint64 { return 0 }, func() uint64 { return 1 })
	got := strings.Join(reg.Names(), ",")
	if got != "b,a,c" {
		t.Errorf("Names() = %q, want \"b,a,c\"", got)
	}
}

func TestOnTickSamplesOnStride(t *testing.T) {
	r := NewRecorder(10)
	r.Gauge("g", func() float64 { return 1 })
	for c := uint64(1); c <= 35; c++ {
		r.OnTick(c)
	}
	if r.Samples() != 3 {
		t.Errorf("Samples() = %d after 35 ticks at stride 10, want 3", r.Samples())
	}
	if r.cycles[0] != 10 || r.cycles[2] != 30 {
		t.Errorf("sampled cycles = %v, want [10 20 30]", r.cycles)
	}
}

func TestValue(t *testing.T) {
	v := 2.0
	r := NewRecorder(1)
	r.Gauge("g", func() float64 { return v })
	if _, ok := r.Value("g"); ok {
		t.Error("Value() reported ok before any sample")
	}
	r.Sample(1)
	v = 7
	r.Sample(2)
	if got, ok := r.Value("g"); !ok || got != 7 {
		t.Errorf("Value(g) = %v, %v; want 7, true", got, ok)
	}
	if _, ok := r.Value("missing"); ok {
		t.Error("Value() reported ok for unknown series")
	}
}

func TestWriteCSV(t *testing.T) {
	var c uint64
	r := NewRecorder(1)
	r.Counter("hits", func() uint64 { return c })
	r.Gauge("depth", func() float64 { return 0.125 })

	c = 3
	r.Sample(100)
	c = 10
	r.Sample(200)

	var b bytes.Buffer
	if err := r.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	want := "cycle,hits,depth\n100,3,0.125\n200,7,0.125\n"
	if b.String() != want {
		t.Errorf("WriteCSV:\n%q\nwant:\n%q", b.String(), want)
	}
}

func TestWriteTraceJSON(t *testing.T) {
	r := NewRecorder(1)
	r.Trace().Complete(TIDFrames, "gpu", "frame 0", 100, 400)
	r.Trace().Complete(TIDFRPU, "frpu", "learning", 0, 500)

	var b bytes.Buffer
	if err := r.WriteTrace(&b, "M7"); err != nil {
		t.Fatal(err)
	}
	var f struct {
		TraceEvents []map[string]any `json:"traceEvents"`
		Unit        string           `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(b.Bytes(), &f); err != nil {
		t.Fatalf("trace output is not valid JSON: %v", err)
	}
	if f.Unit != "ms" {
		t.Errorf("displayTimeUnit = %q, want \"ms\"", f.Unit)
	}
	var spans, meta int
	for _, e := range f.TraceEvents {
		switch e["ph"] {
		case "X":
			spans++
			if e["name"] == "frame 0" {
				if e["ts"].(float64) != 100 || e["dur"].(float64) != 300 {
					t.Errorf("frame span ts/dur = %v/%v, want 100/300", e["ts"], e["dur"])
				}
			}
		case "M":
			meta++
		}
	}
	// 1 process_name + 2 thread_name (frames, frpu) metadata records.
	if spans != 2 || meta != 3 {
		t.Errorf("trace has %d spans, %d metadata events; want 2, 3", spans, meta)
	}
}

func TestCollectionDeterministicAcrossInsertionOrder(t *testing.T) {
	// Same runs, registered in opposite orders (as racing workers
	// would): emitted output must match byte for byte.
	build := func(keys []string) (string, string) {
		vals := map[string]uint64{"a/1": 1, "b/2": 2, "c/3": 3}
		coll := NewCollection(1)
		for _, k := range keys {
			rec := coll.Recorder(k)
			n := vals[k]
			rec.Counter("n", func() uint64 { return n })
			rec.Sample(1)
			rec.Trace().Complete(TIDFrames, "gpu", "frame", 0, n*10)
		}
		var m, tr bytes.Buffer
		if err := coll.WriteMetrics(&m); err != nil {
			t.Fatal(err)
		}
		if err := coll.WriteTrace(&tr); err != nil {
			t.Fatal(err)
		}
		return m.String(), tr.String()
	}
	m1, t1 := build([]string{"a/1", "b/2", "c/3"})
	m2, t2 := build([]string{"c/3", "b/2", "a/1"})
	if m1 != m2 {
		t.Errorf("metrics differ across insertion order:\n%q\nvs\n%q", m1, m2)
	}
	if t1 != t2 {
		t.Errorf("traces differ across insertion order:\n%q\nvs\n%q", t1, t2)
	}
	if !strings.HasPrefix(m1, "# run a/1\n") {
		t.Errorf("metrics do not start with sorted first key: %q", m1)
	}
}

func TestNilRecorderIsDisabled(t *testing.T) {
	var r *Recorder
	r.OnTick(1)
	r.Sample(2)
	if r.Samples() != 0 || r.Stride() != 0 {
		t.Error("nil recorder reported samples or a stride")
	}
	if _, ok := r.Value("x"); ok {
		t.Error("nil recorder returned a value")
	}
	var b bytes.Buffer
	if err := r.WriteCSV(&b); err != nil || b.Len() != 0 {
		t.Error("nil recorder wrote CSV output")
	}
	if err := r.WriteTrace(&b, "x"); err != nil || b.Len() != 0 {
		t.Error("nil recorder wrote trace output")
	}
	r.Trace().Complete(TIDFrames, "", "span", 0, 1)
	if r.Trace().Len() != 0 {
		t.Error("nil trace recorded an event")
	}

	var c *Collection
	if c.Recorder("k") != nil {
		t.Error("nil collection handed out a live recorder")
	}
	if c.Len() != 0 || c.Keys() != nil {
		t.Error("nil collection reported contents")
	}
	if err := c.WriteMetrics(&b); err != nil || b.Len() != 0 {
		t.Error("nil collection wrote metrics")
	}
}

func TestNilOnTickDoesNotAllocate(t *testing.T) {
	var r *Recorder
	allocs := testing.AllocsPerRun(1000, func() {
		r.OnTick(12345)
	})
	if allocs != 0 {
		t.Errorf("nil OnTick allocates %v per call, want 0", allocs)
	}
}

func TestEnabledOffStrideTickDoesNotAllocate(t *testing.T) {
	r := NewRecorder(1 << 20)
	r.Gauge("g", func() float64 { return 1 })
	allocs := testing.AllocsPerRun(1000, func() {
		r.OnTick(3) // never lands on the stride
	})
	if allocs != 0 {
		t.Errorf("off-stride OnTick allocates %v per call, want 0", allocs)
	}
}

// TestSnapshotReadsRawTotals: Snapshot reports cumulative counter
// totals and all-time ratios without disturbing the Recorder's
// windowed sampling — the /metricsz contract.
func TestSnapshotReadsRawTotals(t *testing.T) {
	var hits, accesses uint64
	depth := 3.0
	var g Registry
	g.Counter("hits", func() uint64 { return hits })
	g.Gauge("depth", func() float64 { return depth })
	g.Ratio("hit_rate", func() uint64 { return hits }, func() uint64 { return accesses })

	snap := g.Snapshot()
	want := map[string]float64{"hits": 0, "depth": 3, "hit_rate": 0} // den 0 -> 0
	if len(snap) != len(want) {
		t.Fatalf("snapshot has %d samples, want %d", len(snap), len(want))
	}
	for _, s := range snap {
		if s.Value != want[s.Name] {
			t.Errorf("%s = %v, want %v", s.Name, s.Value, want[s.Name])
		}
	}

	hits, accesses, depth = 8, 16, 1.5
	var buf bytes.Buffer
	if err := g.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	wantText := "hits 8\ndepth 1.5\nhit_rate 0.5\n" // registration order
	if got != wantText {
		t.Fatalf("WriteSnapshot = %q, want %q", got, wantText)
	}
}
