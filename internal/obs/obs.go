// Package obs is the simulator's observability layer: a typed
// counter/gauge registry, a cycle-sampled time-series recorder, and a
// Chrome trace_event exporter (trace.go), shared by every component of
// the simulated CMP.
//
// The design constraint is zero overhead when disabled: components
// never push samples. Instead they register probes — closures reading
// their existing stat fields — into a Registry at wiring time, and the
// Recorder pulls values only at sample boundaries. The one hook on the
// simulation hot path, Recorder.OnTick, is nil-safe and allocation
// free: a disabled run carries a nil *Recorder and pays a single
// pointer compare per cycle (BenchmarkTickObsDisabled pins this).
//
// All output is byte-deterministic for a fixed seed: probes are
// sampled in registration order, values are formatted with
// strconv.FormatFloat's shortest round-trip form, and the Collection
// type (collection.go) emits concurrent runs sorted by key, so
// parallel and serial executions of the same run set produce identical
// files.
package obs

import (
	"fmt"
	"io"
	"strconv"
)

// DefaultStride is the sampling interval, in CPU cycles, used when a
// Recorder is built with stride 0.
const DefaultStride = 4096

type seriesKind uint8

const (
	kindCounter seriesKind = iota
	kindGauge
	kindRatio
)

// series is one registered probe plus its last-sample snapshot.
type series struct {
	name string
	kind seriesKind

	counter  func() uint64  // kindCounter
	gauge    func() float64 // kindGauge
	num, den func() uint64  // kindRatio

	last, lastNum, lastDen uint64
}

// Registry is an ordered set of named probes. Registration order is
// the column order of every emitted sample, so wiring code must
// register deterministically (the simulator registers components in
// their System field order).
type Registry struct {
	series []*series
}

// Counter registers a cumulative, non-decreasing count; samples emit
// the per-window delta. A probe value smaller than the previous sample
// (a stats reset, e.g. at the measurement-window start) restarts the
// baseline at zero rather than underflowing.
func (g *Registry) Counter(name string, fn func() uint64) {
	g.add(&series{name: name, kind: kindCounter, counter: fn})
}

// Gauge registers an instantaneous value; samples emit it as-is.
func (g *Registry) Gauge(name string, fn func() float64) {
	g.add(&series{name: name, kind: kindGauge, gauge: fn})
}

// Ratio registers a pair of cumulative counts; samples emit
// delta(num)/delta(den) over the window (0 when den did not move).
// Per-window IPC and cache hit rates are Ratios.
func (g *Registry) Ratio(name string, num, den func() uint64) {
	g.add(&series{name: name, kind: kindRatio, num: num, den: den})
}

func (g *Registry) add(s *series) {
	for _, have := range g.series {
		if have.name == s.name {
			panic(fmt.Sprintf("obs: duplicate series %q", s.name))
		}
	}
	g.series = append(g.series, s)
}

// Names returns the registered series names in column order.
func (g *Registry) Names() []string {
	out := make([]string, len(g.series))
	for i, s := range g.series {
		out[i] = s.name
	}
	return out
}

// Sample is one instantaneous probe reading, as returned by Snapshot.
type Sample struct {
	Name  string
	Value float64
}

// Snapshot reads every registered probe's current value without
// touching the recorders' windowed sampling state: counters and ratio
// numerators report their raw cumulative totals (a ratio emits
// num/den over all time, 0 when den is zero), gauges their
// instantaneous value. Serving endpoints (hetsimd's /metricsz) call it
// on demand; interleaving snapshots with Recorder sampling changes
// neither.
func (g *Registry) Snapshot() []Sample {
	out := make([]Sample, len(g.series))
	for i, s := range g.series {
		out[i].Name = s.name
		switch s.kind {
		case kindCounter:
			out[i].Value = float64(s.counter())
		case kindGauge:
			out[i].Value = s.gauge()
		case kindRatio:
			n, d := s.num(), s.den()
			if d != 0 {
				out[i].Value = float64(n) / float64(d)
			}
		}
	}
	return out
}

// WriteSnapshot emits the current snapshot as "name value" lines in
// registration order, the text format behind /metricsz. Values use
// strconv's shortest round-trip float form.
func (g *Registry) WriteSnapshot(w io.Writer) error {
	var buf []byte
	for _, s := range g.Snapshot() {
		buf = append(buf, s.Name...)
		buf = append(buf, ' ')
		buf = strconv.AppendFloat(buf, s.Value, 'g', -1, 64)
		buf = append(buf, '\n')
	}
	_, err := w.Write(buf)
	return err
}

// Recorder samples a Registry every stride cycles and accumulates the
// rows, plus a span Trace (trace.go). The zero ("disabled") state is a
// nil *Recorder: every method with a hot-path caller is nil-safe.
type Recorder struct {
	Registry

	stride uint64
	trace  *Trace

	cycles []uint64
	rows   [][]float64
}

// NewRecorder builds an enabled recorder sampling every stride cycles
// (DefaultStride when 0).
func NewRecorder(stride uint64) *Recorder {
	if stride == 0 {
		stride = DefaultStride
	}
	return &Recorder{stride: stride, trace: &Trace{}}
}

// Stride returns the sampling interval in cycles (0 when disabled).
func (r *Recorder) Stride() uint64 {
	if r == nil {
		return 0
	}
	return r.stride
}

// Trace returns the recorder's span trace (nil when disabled).
func (r *Recorder) Trace() *Trace {
	if r == nil {
		return nil
	}
	return r.trace
}

// OnTick is the per-cycle hook: it samples when cycle lands on the
// stride. It is nil-safe and free of allocation on the disabled path.
func (r *Recorder) OnTick(cycle uint64) {
	if r == nil || cycle%r.stride != 0 {
		return
	}
	r.sample(cycle)
}

// Sample takes one unconditional sample at the given cycle (the
// harness uses it for a final partial window).
func (r *Recorder) Sample(cycle uint64) {
	if r == nil {
		return
	}
	r.sample(cycle)
}

func (r *Recorder) sample(cycle uint64) {
	row := make([]float64, len(r.series))
	for i, s := range r.series {
		switch s.kind {
		case kindCounter:
			v := s.counter()
			if v < s.last {
				s.last = 0 // stats reset upstream
			}
			row[i] = float64(v - s.last)
			s.last = v
		case kindGauge:
			row[i] = s.gauge()
		case kindRatio:
			n, d := s.num(), s.den()
			if n < s.lastNum || d < s.lastDen {
				s.lastNum, s.lastDen = 0, 0
			}
			dn, dd := n-s.lastNum, d-s.lastDen
			s.lastNum, s.lastDen = n, d
			if dd != 0 {
				row[i] = float64(dn) / float64(dd)
			}
		}
	}
	r.cycles = append(r.cycles, cycle)
	r.rows = append(r.rows, row)
}

// Samples returns how many rows have been recorded.
func (r *Recorder) Samples() int {
	if r == nil {
		return 0
	}
	return len(r.rows)
}

// Value returns the most recent sample of the named series and whether
// the series exists and has been sampled.
func (r *Recorder) Value(name string) (float64, bool) {
	if r == nil || len(r.rows) == 0 {
		return 0, false
	}
	for i, s := range r.series {
		if s.name == name {
			return r.rows[len(r.rows)-1][i], true
		}
	}
	return 0, false
}

// WriteCSV emits the sampled time series: a header line ("cycle" plus
// the series names in registration order) and one row per sample.
// Values use strconv's shortest round-trip float form, so output is
// byte-deterministic for identical runs.
func (r *Recorder) WriteCSV(w io.Writer) error {
	if r == nil {
		return nil
	}
	var buf []byte
	buf = append(buf, "cycle"...)
	for _, s := range r.series {
		buf = append(buf, ',')
		buf = append(buf, s.name...)
	}
	buf = append(buf, '\n')
	for i, row := range r.rows {
		buf = strconv.AppendUint(buf, r.cycles[i], 10)
		for _, v := range row {
			buf = append(buf, ',')
			buf = strconv.AppendFloat(buf, v, 'g', -1, 64)
		}
		buf = append(buf, '\n')
	}
	_, err := w.Write(buf)
	return err
}
