package obs

import (
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
)

// Collection hands out one isolated Recorder per run key, so
// concurrent simulations (the exp.Runner worker pool, the sweep grid)
// never share mutable observability state. Output is emitted with the
// keys sorted, which makes the merged metrics and trace files
// byte-identical regardless of worker count or completion order.
type Collection struct {
	stride uint64

	mu   sync.Mutex
	recs map[string]*Recorder
}

// NewCollection builds a collection whose recorders sample every
// stride cycles (DefaultStride when 0).
func NewCollection(stride uint64) *Collection {
	if stride == 0 {
		stride = DefaultStride
	}
	return &Collection{stride: stride, recs: make(map[string]*Recorder)}
}

// Recorder returns the recorder registered under key, creating it on
// first use. A nil collection returns a nil (disabled) recorder, so
// callers can thread an optional *Collection straight through.
func (c *Collection) Recorder(key string) *Recorder {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if r, ok := c.recs[key]; ok {
		return r
	}
	r := NewRecorder(c.stride)
	c.recs[key] = r
	return r
}

// Len returns the number of registered runs.
func (c *Collection) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.recs)
}

// Keys returns the registered run keys, sorted.
func (c *Collection) Keys() []string {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	keys := make([]string, 0, len(c.recs))
	for k := range c.recs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// WriteMetrics emits every run's sampled time series, sorted by run
// key, each section introduced by a "# run <key>" line.
func (c *Collection) WriteMetrics(w io.Writer) error {
	if c == nil {
		return nil
	}
	for _, key := range c.Keys() {
		if _, err := fmt.Fprintf(w, "# run %s\n", key); err != nil {
			return err
		}
		if err := c.Recorder(key).WriteCSV(w); err != nil {
			return err
		}
	}
	return nil
}

// WriteTrace merges every run's span trace into one Chrome trace file,
// one process per run, processes ordered by run key.
func (c *Collection) WriteTrace(w io.Writer) error {
	if c == nil {
		return nil
	}
	keys := c.Keys()
	procs := make([]traceProc, 0, len(keys))
	for _, key := range keys {
		procs = append(procs, traceProc{name: key, events: c.Recorder(key).trace.events})
	}
	return writeTraceJSON(w, procs)
}

// SaveMetrics writes the merged metrics stream to path.
func (c *Collection) SaveMetrics(path string) error {
	return c.saveTo(path, c.WriteMetrics)
}

// SaveTrace writes the merged Chrome trace to path.
func (c *Collection) SaveTrace(path string) error {
	return c.saveTo(path, c.WriteTrace)
}

func (c *Collection) saveTo(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
