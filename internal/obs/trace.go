package obs

import (
	"encoding/json"
	"io"
	"sort"
)

// Track ids inside one traced run (Chrome trace_event "tid"). Each
// kind of span gets its own named track so Perfetto lays them out as
// parallel swimlanes.
const (
	TIDFrames   = iota // completed frames
	TIDRTPs            // render-target-plane spans within a frame
	TIDFRPU            // FRPU learning/prediction phases
	TIDThrottle        // ATU throttle episodes (WG > 0)
	numTIDs
)

var tidNames = [numTIDs]string{"frames", "rtps", "frpu", "throttle"}

// Event is one Chrome trace_event entry. Timestamps are GPU cycles
// reported as microseconds: the absolute unit is arbitrary for a
// simulator, but relative span lengths are exact and deterministic.
type Event struct {
	Name string  `json:"name"`
	Cat  string  `json:"cat,omitempty"`
	Ph   string  `json:"ph"`
	TS   float64 `json:"ts"`
	Dur  float64 `json:"dur,omitempty"`
	PID  int     `json:"pid"`
	TID  int     `json:"tid"`
	Args any     `json:"args,omitempty"`
}

// Trace accumulates span events for one run. It is written either
// standalone (Recorder.WriteTrace) or merged across runs by a
// Collection, one process per run.
type Trace struct {
	events []Event
}

// Complete appends an "X" (complete) span on the given track covering
// [start, end] in GPU cycles.
func (t *Trace) Complete(tid int, cat, name string, start, end uint64) {
	if t == nil {
		return
	}
	t.events = append(t.events, Event{
		Name: name, Cat: cat, Ph: "X",
		TS: float64(start), Dur: float64(end - start), TID: tid,
	})
}

// Len returns the number of recorded events.
func (t *Trace) Len() int {
	if t == nil {
		return 0
	}
	return len(t.events)
}

// Events returns the recorded events (shared slice; callers must not
// mutate).
func (t *Trace) Events() []Event {
	if t == nil {
		return nil
	}
	return t.events
}

// traceProc is one process (one run) in a merged trace file.
type traceProc struct {
	name   string
	events []Event
}

// traceFile is the on-disk Chrome trace format.
type traceFile struct {
	TraceEvents     []Event `json:"traceEvents"`
	DisplayTimeUnit string  `json:"displayTimeUnit"`
}

// writeTraceJSON emits one JSON trace with a process per run: metadata
// names each process after its run key and each track after its span
// kind, then the spans follow in recording order. The output loads
// directly in chrome://tracing and Perfetto.
func writeTraceJSON(w io.Writer, procs []traceProc) error {
	var all []Event
	for pid, p := range procs {
		all = append(all, Event{
			Name: "process_name", Ph: "M", PID: pid,
			Args: map[string]string{"name": p.name},
		})
		used := map[int]bool{}
		for _, e := range p.events {
			used[e.TID] = true
		}
		tids := make([]int, 0, len(used))
		for tid := range used {
			tids = append(tids, tid)
		}
		sort.Ints(tids)
		for _, tid := range tids {
			name := "track"
			if tid >= 0 && tid < numTIDs {
				name = tidNames[tid]
			}
			all = append(all, Event{
				Name: "thread_name", Ph: "M", PID: pid, TID: tid,
				Args: map[string]string{"name": name},
			})
		}
		for _, e := range p.events {
			e.PID = pid
			all = append(all, e)
		}
	}
	data, err := json.Marshal(traceFile{TraceEvents: all, DisplayTimeUnit: "ms"})
	if err != nil {
		return err
	}
	_, err = w.Write(data)
	return err
}

// WriteTrace emits the recorder's span trace as a standalone Chrome
// trace file with a single process named label.
func (r *Recorder) WriteTrace(w io.Writer, label string) error {
	if r == nil {
		return nil
	}
	return writeTraceJSON(w, []traceProc{{name: label, events: r.trace.events}})
}
