package core

import (
	"testing"

	"repro/internal/gpu"
)

// rtp builds a learning/prediction RTP observation.
func rtp(idx int, cycles, updates, accesses uint64) gpu.RTPInfo {
	return gpu.RTPInfo{
		Index:       idx,
		Cycles:      cycles,
		Updates:     updates,
		Tiles:       4,
		LLCAccesses: accesses,
	}
}

// learnFrame drives the FRPU through one learning frame with the given
// per-RTP cycle counts (updates=10, accesses=20 per RTP).
func learnFrame(f *FRPU, cycles ...uint64) {
	for i, c := range cycles {
		f.ObserveRTP(rtp(i, c, 10, 20))
	}
	var sum uint64
	for _, c := range cycles {
		sum += c
	}
	f.ObserveFrame(gpu.FrameInfo{Index: 0, Cycles: sum, RTPs: len(cycles)})
}

// TestFRPUEq3HandComputed pins Eq. 3, F = (λ·C_inter + (1−λ)·C_avg) ·
// N_rtp, against a hand-computed fixture: learned frame [100,200,300]
// gives C_avg=200, N_rtp=3; one observed 150-cycle RTP gives λ=1/3,
// C_inter=150, so F = (50 + 400/3)·3 = 550.
func TestFRPUEq3HandComputed(t *testing.T) {
	f := NewFRPU()
	learnFrame(f, 100, 200, 300)
	if f.Phase() != Prediction {
		t.Fatal("FRPU did not enter prediction after a learned frame")
	}
	if a, ok := f.AccessesPerFrame(); !ok || a != 60 {
		t.Fatalf("AccessesPerFrame = %v, %v; want 60, true", a, ok)
	}

	f.ObserveRTP(rtp(0, 150, 10, 20))
	got, ok := f.PredictedFrameCycles()
	if !ok {
		t.Fatal("no prediction in prediction phase")
	}
	const want = 550.0
	if diff := got - want; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("Eq. 3 prediction = %v, want %v", got, want)
	}

	// Second RTP at 250 cycles: λ=2/3, C_inter=200, F = (400/3 +
	// 200/3)·3 = 600.
	f.ObserveRTP(rtp(1, 250, 10, 20))
	got, _ = f.PredictedFrameCycles()
	if diff := got - 600; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("Eq. 3 prediction after 2 RTPs = %v, want 600", got)
	}
}

// TestFRPUEq3LambdaClamp: observing more RTPs than the learned N_rtp
// clamps λ at 1, so F degenerates to C_inter · N_rtp.
func TestFRPUEq3LambdaClamp(t *testing.T) {
	f := NewFRPU()
	learnFrame(f, 100, 100)
	for i := 0; i < 4; i++ { // 4 observed > 2 learned
		f.ObserveRTP(rtp(i%TableEntries, 300, 10, 20))
	}
	got, ok := f.PredictedFrameCycles()
	if !ok {
		t.Fatal("no prediction")
	}
	if got != 600 { // C_inter=300 · N_rtp=2
		t.Errorf("clamped prediction = %v, want 600", got)
	}
}

// TestFRPUNoPredictionWhileLearning: Eq. 3 is unavailable until one
// full frame has been learned.
func TestFRPUNoPredictionWhileLearning(t *testing.T) {
	f := NewFRPU()
	if _, ok := f.PredictedFrameCycles(); ok {
		t.Error("fresh FRPU produced a prediction")
	}
	f.ObserveRTP(rtp(0, 100, 10, 20))
	if _, ok := f.PredictedFrameCycles(); ok {
		t.Error("mid-learning FRPU produced a prediction")
	}
	if _, ok := f.AccessesPerFrame(); ok {
		t.Error("mid-learning FRPU reported accesses per frame")
	}
	// A zero-RTP frame must not switch phases (no profile learned).
	f2 := NewFRPU()
	f2.ObserveFrame(gpu.FrameInfo{Index: 0, Cycles: 0, RTPs: 0})
	if f2.Phase() != Learning {
		t.Error("FRPU entered prediction off an empty frame")
	}
}

// TestFRPUDivergenceFallback pins the Fig. 4 point-B transition: a
// prediction-phase RTP whose work diverges from the learned profile by
// more than Threshold discards the table and re-enters learning, and
// the diverging RTP seeds the fresh pass.
func TestFRPUDivergenceFallback(t *testing.T) {
	f := NewFRPU() // Threshold 0.5
	learnFrame(f, 100, 200, 300)

	// Boundary: exactly threshold divergence (updates 10 -> 15,
	// |d|/learned = 0.5) must NOT relearn — the check is strict.
	f.ObserveRTP(rtp(0, 150, 15, 20))
	if f.Phase() != Prediction || f.Relearns != 0 {
		t.Fatalf("relearned at exactly-threshold divergence (phase %v, relearns %d)",
			f.Phase(), f.Relearns)
	}

	// Past threshold (updates 10 -> 16, 0.6 > 0.5): relearn.
	f.ObserveRTP(rtp(1, 150, 16, 20))
	if f.Phase() != Learning {
		t.Fatal("FRPU stayed in prediction past the divergence threshold")
	}
	if f.Relearns != 1 {
		t.Errorf("Relearns = %d, want 1", f.Relearns)
	}
	tab := f.Table()
	if !tab[0].Valid || tab[0].Updates != 16 {
		t.Errorf("diverging RTP did not seed the fresh learning pass: %+v", tab[0])
	}
	if tab[1].Valid {
		t.Error("stale learned entries survived the relearn")
	}

	// Divergence on LLC accesses alone also triggers the fallback.
	f2 := NewFRPU()
	learnFrame(f2, 100, 200, 300)
	f2.ObserveRTP(rtp(0, 150, 10, 31)) // accesses 20 -> 31: 0.55 > 0.5
	if f2.Phase() != Learning || f2.Relearns != 1 {
		t.Error("access-count divergence did not trigger a relearn")
	}

	// Cycles are deliberately NOT checked for divergence (throttling
	// legitimately stretches them; see FRPU.Threshold).
	f3 := NewFRPU()
	learnFrame(f3, 100, 200, 300)
	f3.ObserveRTP(rtp(0, 5000, 10, 20))
	if f3.Phase() != Prediction {
		t.Error("cycle-only divergence triggered a relearn")
	}
}

// TestFRPUProfileRefresh: each completed prediction-phase frame
// refreshes the learned averages so the profile tracks slow drift.
func TestFRPUProfileRefresh(t *testing.T) {
	f := NewFRPU()
	learnFrame(f, 100, 100)

	// A frame of 200-cycle RTPs (same work profile) completes.
	f.ObserveRTP(rtp(0, 200, 10, 20))
	f.ObserveRTP(rtp(1, 200, 10, 20))
	f.ObserveFrame(gpu.FrameInfo{Index: 1, Cycles: 400, RTPs: 2})

	// The next frame's first RTP predicts against the refreshed
	// C_avg=200: λ=1/2, F = (0.5·200 + 0.5·200)·2 = 400.
	f.ObserveRTP(rtp(0, 200, 10, 20))
	got, _ := f.PredictedFrameCycles()
	if got != 400 {
		t.Errorf("prediction after profile refresh = %v, want 400", got)
	}
	if len(f.Errors) != 1 {
		t.Errorf("Errors has %d entries after one predicted frame, want 1", len(f.Errors))
	}
}
