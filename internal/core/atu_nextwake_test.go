package core

import "testing"

// TestNextAllowMatchesAllow is the gate's lower-bound contract:
// NextAllow must return the exact first cycle at which Allow says
// yes, and must itself be pure (no counters move on a probe).
func TestNextAllowMatchesAllow(t *testing.T) {
	a := NewATU()

	// Gate disengaged: always now.
	if got := a.NextAllow(7); got != 7 {
		t.Fatalf("open-gate NextAllow = %d, want 7", got)
	}

	// Engage a 50-cycle window with a budget of 1 and spend it.
	a.WG = 50
	if !a.Allow(100) {
		t.Fatal("first access of a fresh window denied")
	}
	a.OnIssue(100)

	// Budget exhausted: every probe up to the window edge must report
	// the expiry cycle and agree with Allow, without moving anything
	// but the denial counter Allow itself owns.
	for c := uint64(101); c < 150; c++ {
		denied := a.DeniedAcc
		if got := a.NextAllow(c); got != 150 {
			t.Fatalf("NextAllow(%d) = %d, want window expiry 150", c, got)
		}
		if a.DeniedAcc != denied {
			t.Fatalf("NextAllow(%d) moved the denial counter", c)
		}
		if a.Allow(c) {
			t.Fatalf("Allow(%d) passed inside an exhausted window", c)
		}
	}
	if got := a.NextAllow(150); got != 150 {
		t.Fatalf("NextAllow at expiry = %d, want 150", got)
	}
	if !a.Allow(150) {
		t.Fatal("Allow denied at the reported wake")
	}

	// SkipDenied replays exactly the counter movement of n denied
	// Allow calls.
	d := a.DeniedAcc
	a.SkipDenied(9)
	if a.DeniedAcc != d+9 {
		t.Fatalf("SkipDenied moved DeniedAcc by %d, want 9", a.DeniedAcc-d)
	}
}
