package core

// ATU is the access throttling unit (paper §III-B). It owns the GTT
// (GPU-to-LLC) port gate: within a window of WG GPU cycles at most NG
// accesses may pass; once NG is exhausted the ports stay disabled
// until the window expires. WG == 0 disables throttling entirely.
//
// The (NG, WG) pair is set by Update, which implements the flow of
// paper Fig. 6:
//
//	if CP > CT          -> NG=1, WG=0   (GPU below target: no throttle)
//	else NG=1; if WG < (CT-CP)/A -> WG += WindowStep
//
// where CP is the predicted cycles per frame, CT the cycles per frame
// at the target frame rate, and A the LLC accesses per frame from the
// FRPU's learning phase. (CT-CP)/A spreads the frame's slack cycles
// evenly across its LLC accesses; the +2-per-evaluation growth makes
// the clamp-down gradual, and the CP > CT reset makes over-throttling
// self-correcting, so the frame rate hovers at the target.
type ATU struct {
	// WindowStep is the WG growth increment per evaluation (the paper
	// uses 2; the ablation bench sweeps it).
	WindowStep uint64

	// Feedback selects the window-update law. The paper's Fig. 6
	// closed form stops growing WG at (CT-CP)/A, which assumes each
	// GTT access serially occupies the port for a full window; in a
	// pipeline that overlaps accesses (ours, at scale), that bound
	// can sit below the point where the gate actually binds. The
	// feedback law keeps the same fixed point (CP ≈ CT) but reaches
	// it by pure integral control with a small deadband and
	// multiplicative back-off. The ablation bench compares both.
	Feedback bool

	// NG and WG are the current window parameters, exported for
	// inspection.
	NG uint64
	WG uint64

	windowStart uint64
	used        uint64

	// Stats.
	Updates    uint64
	Resets     uint64 // CP > CT events that disabled throttling
	Throttled  uint64 // evaluations that left WG > 0
	DeniedAcc  uint64 // Allow() == false occurrences
	AllowedAcc uint64
}

// NewATU returns an ATU with the paper's parameters (NG=1, step 2),
// initially unthrottled.
func NewATU() *ATU {
	return &ATU{WindowStep: 2, NG: 1, WG: 0}
}

// Active reports whether throttling is currently engaged.
func (a *ATU) Active() bool { return a.WG > 0 }

// Update runs one evaluation of the window-update law. cp and ct are
// in GPU cycles per frame; accessesPerFrame is A. Calling it with
// invalid inputs (no prediction available) disables throttling.
func (a *ATU) Update(cp, ct, accessesPerFrame float64, valid bool) {
	a.Updates++
	a.NG = 1
	if !valid || accessesPerFrame <= 0 {
		a.WG = 0
		return
	}
	if a.Feedback {
		a.updateFeedback(cp, ct)
		return
	}
	if cp > ct {
		// Predicted slower than target: the GPU needs everything it
		// can get (Fig. 6 left branch).
		if a.WG != 0 {
			a.Resets++
		}
		a.WG = 0
		return
	}
	want := (ct - cp) / accessesPerFrame
	if float64(a.WG) < want {
		a.WG += a.WindowStep
	}
	if a.WG > 0 {
		a.Throttled++
	}
}

// updateFeedback implements the integral window law: grow WG by
// WindowStep while the predicted frame is more than 2% faster than
// the target, halve it when more than 2% slower. The fixed point is
// the same as Fig. 6's (frame time hovering at the target); see the
// Feedback field comment.
func (a *ATU) updateFeedback(cp, ct float64) {
	switch {
	case cp >= ct:
		// At or past the target: back off promptly so the frame rate
		// hovers at the QoS threshold rather than below it.
		if a.WG != 0 {
			a.Resets++
		}
		a.WG /= 2
	case cp < ct*0.95:
		a.WG += a.WindowStep
	}
	if a.WG > 0 {
		a.Throttled++
	}
}

// Allow implements gpu.ThrottleGate: may one LLC access pass now?
func (a *ATU) Allow(gpuCycle uint64) bool {
	if a.WG == 0 {
		a.AllowedAcc++
		return true
	}
	if gpuCycle >= a.windowStart+a.WG {
		// Window expired; a fresh one opens at this cycle.
		a.windowStart = gpuCycle
		a.used = 0
	}
	if a.used < a.NG {
		a.AllowedAcc++
		return true
	}
	a.DeniedAcc++
	return false
}

// NextAllow implements gpu.WakeGate: the earliest GPU cycle >=
// gpuCycle at which Allow would return true. With the gate open
// (WG==0, a fresh window pending, or budget left) that is gpuCycle
// itself; with the budget exhausted the ports stay disabled until the
// window expires at windowStart+WG. Pure: no counters move.
func (a *ATU) NextAllow(gpuCycle uint64) uint64 {
	if a.WG == 0 || gpuCycle >= a.windowStart+a.WG || a.used < a.NG {
		return gpuCycle
	}
	return a.windowStart + a.WG
}

// SkipDenied implements gpu.WakeGate: bulk-apply n denied Allow
// calls. A denied call (closed gate, window not yet expired) touches
// nothing but the denial counter, so that is all a skip replays.
func (a *ATU) SkipDenied(n uint64) {
	a.DeniedAcc += n
}

// OnIssue implements gpu.ThrottleGate: one access left the GTT port.
func (a *ATU) OnIssue(gpuCycle uint64) {
	if a.WG == 0 {
		return
	}
	if gpuCycle >= a.windowStart+a.WG {
		a.windowStart = gpuCycle
		a.used = 0
	}
	a.used++
}
