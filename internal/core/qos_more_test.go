package core

import (
	"testing"
	"testing/quick"

	"repro/internal/dram"
	"repro/internal/gpu"
)

// TestFeedbackLawConvergesInClosedLoop simulates the closed loop the
// controller lives in: the "GPU" renders frames whose duration grows
// with WG (the gate binds), and the controller must settle near the
// target.
func TestFeedbackLawConvergesInClosedLoop(t *testing.T) {
	c := NewController(ModeThrottleCPUPrio, 40, 1e9, 1000)
	// CT = 1e9/(40*1000) = 25000 cycles/frame.
	const nRTP = 8
	baseCycles := uint64(1500) // unthrottled RTP time -> 12000/frame (~83 FPS)
	frame := func() uint64 {
		// Each unit of WG adds ~40 cycles per RTP (the gate binds).
		per := baseCycles + 40*c.ATU.WG
		for i := 0; i < nRTP; i++ {
			c.RTPComplete(gpu.RTPInfo{Frame: 0, Index: i, Updates: 100, Cycles: per, Tiles: 8, LLCAccesses: 50})
		}
		c.FrameComplete(gpu.FrameInfo{Index: 0, Cycles: per * nRTP, LLCAccesses: 400, RTPs: nRTP})
		return per * nRTP
	}
	var last uint64
	for f := 0; f < 300; f++ {
		last = frame()
	}
	fps := 1e9 / (float64(last) * 1000)
	if fps > 50 || fps < 30 {
		t.Fatalf("closed loop settled at %.1f FPS, want near 40", fps)
	}
	if !c.Throttling() {
		t.Fatalf("controller not throttling an above-target GPU")
	}
}

// TestControllerDisablesAfterSceneChange: when the workload slows
// below target (e.g. scene change), throttling must release.
func TestControllerDisablesAfterSceneChange(t *testing.T) {
	c := NewController(ModeThrottleCPUPrio, 40, 1e9, 1000)
	// Fast phase: 12500 cycles/frame (80 FPS) -> throttles.
	for f := 0; f < 20; f++ {
		for i := 0; i < 5; i++ {
			c.RTPComplete(gpu.RTPInfo{Frame: f, Index: i, Updates: 10, Cycles: 2500, Tiles: 4, LLCAccesses: 20})
		}
		c.FrameComplete(gpu.FrameInfo{Index: f, Cycles: 12500, LLCAccesses: 100, RTPs: 5})
	}
	if !c.Throttling() {
		t.Fatalf("fast phase not throttled")
	}
	// Scene change: 10x the work -> 125000 cycles/frame (8 FPS).
	for f := 20; f < 40; f++ {
		for i := 0; i < 5; i++ {
			c.RTPComplete(gpu.RTPInfo{Frame: f, Index: i, Updates: 100, Cycles: 25000, Tiles: 4, LLCAccesses: 200})
		}
		c.FrameComplete(gpu.FrameInfo{Index: f, Cycles: 125000, LLCAccesses: 1000, RTPs: 5})
	}
	if c.Throttling() {
		t.Fatalf("throttle still active on a below-target scene")
	}
	if c.FRPU.Relearns == 0 {
		t.Fatalf("10x work change did not trigger a relearn")
	}
	if c.Boost() != dram.BoostNone {
		t.Fatalf("CPU priority still boosted")
	}
}

// TestDynPrioNeedsPrediction: without a learned profile there is no
// frame-time budget, so no boost.
func TestDynPrioNeedsPrediction(t *testing.T) {
	d := NewDynPrio(NewFRPU(), func() uint64 { return 1 << 30 })
	if d.Boost() != dram.BoostNone {
		t.Fatalf("DynPrio boosted without a prediction")
	}
}

// TestDynPrioNilElapsed guards the unwired case.
func TestDynPrioNilElapsed(t *testing.T) {
	frpu := NewFRPU()
	feedFrame(frpu, 0, 4, 100, 10, 5)
	d := NewDynPrio(frpu, nil)
	if d.Boost() != dram.BoostNone {
		t.Fatalf("nil FrameElapsed must not boost")
	}
}

// Property: the feedback law's WG is always finite and returns to 0
// within a bounded number of over-target evaluations.
func TestQuickFeedbackBackoff(t *testing.T) {
	f := func(grow uint8) bool {
		a := NewATU()
		a.Feedback = true
		for i := 0; i < int(grow%100)+1; i++ {
			a.Update(100, 1000, 10, true) // under target: grow
		}
		// Over target: WG halves each evaluation -> zero in <= 64 steps.
		for i := 0; i < 64; i++ {
			a.Update(2000, 1000, 10, true)
			if a.WG == 0 {
				return true
			}
		}
		return false
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestModeStrings pins the display names used in reports.
func TestModeStrings(t *testing.T) {
	if ModeBaseline.String() != "baseline" ||
		ModeThrottle.String() != "throttled" ||
		ModeThrottleCPUPrio.String() != "throttled+cpuprio" {
		t.Fatalf("mode strings changed")
	}
	if Learning.String() != "learning" || Prediction.String() != "prediction" {
		t.Fatalf("phase strings changed")
	}
}
