package core

import "testing"

// TestATUFig6WindowGrowth pins the paper's Fig. 6 window-update law
// (Feedback off): with CT=1000, CP=500, A=10 the closed-form bound is
// (CT-CP)/A = 50 GPU cycles, approached in WindowStep=2 increments and
// never exceeded.
func TestATUFig6WindowGrowth(t *testing.T) {
	a := NewATU() // Feedback false by default; NewController opts in
	const (
		cp = 500.0
		ct = 1000.0
		A  = 10.0
	)
	want := (ct - cp) / A // 50

	var prev uint64
	for i := 0; i < 40; i++ {
		a.Update(cp, ct, A, true)
		if a.NG != 1 {
			t.Fatalf("update %d: NG = %d, want 1 (Fig. 6 fixes NG)", i, a.NG)
		}
		grew := a.WG - prev
		if float64(prev) < want {
			if grew != a.WindowStep {
				t.Fatalf("update %d: WG grew by %d below the bound, want step %d", i, grew, a.WindowStep)
			}
		} else if grew != 0 {
			t.Fatalf("update %d: WG grew past the (CT-CP)/A bound: %d -> %d", i, prev, a.WG)
		}
		prev = a.WG
	}
	if float64(a.WG) < want || float64(a.WG) >= want+float64(a.WindowStep) {
		t.Errorf("steady-state WG = %d, want first step value >= %.0f", a.WG, want)
	}
}

// TestATUFig6Reset pins the left branch of Fig. 6: a predicted frame
// slower than the target disables throttling entirely (NG=1, WG=0).
func TestATUFig6Reset(t *testing.T) {
	a := NewATU()
	for i := 0; i < 5; i++ {
		a.Update(500, 1000, 10, true)
	}
	if !a.Active() {
		t.Fatal("ATU not throttling after 5 below-target updates")
	}
	a.Update(1200, 1000, 10, true) // CP > CT
	if a.WG != 0 || a.NG != 1 {
		t.Errorf("after CP > CT: (NG, WG) = (%d, %d), want (1, 0)", a.NG, a.WG)
	}
	if a.Resets != 1 {
		t.Errorf("Resets = %d, want 1", a.Resets)
	}
	// Growth restarts from zero afterwards.
	a.Update(500, 1000, 10, true)
	if a.WG != a.WindowStep {
		t.Errorf("post-reset WG = %d, want one step (%d)", a.WG, a.WindowStep)
	}
}

// TestATUInvalidPredictionDisables: without a valid FRPU prediction
// (learning phase, or A=0) the gate must be wide open.
func TestATUInvalidPredictionDisables(t *testing.T) {
	a := NewATU()
	for i := 0; i < 5; i++ {
		a.Update(500, 1000, 10, true)
	}
	a.Update(500, 1000, 10, false)
	if a.Active() {
		t.Error("ATU still throttling with an invalid prediction")
	}
	for i := 0; i < 5; i++ {
		a.Update(500, 1000, 10, true)
	}
	a.Update(500, 1000, 0, true) // A == 0
	if a.Active() {
		t.Error("ATU still throttling with zero accesses per frame")
	}
}

// TestATUGateWindow drives the Allow/OnIssue port gate: with NG=1 and
// WG=8, exactly one access passes per 8-GPU-cycle window.
func TestATUGateWindow(t *testing.T) {
	a := NewATU()
	a.NG, a.WG = 1, 8

	if !a.Allow(0) {
		t.Fatal("first access of window denied")
	}
	a.OnIssue(0)
	for c := uint64(1); c < 8; c++ {
		if a.Allow(c) {
			t.Fatalf("cycle %d: second access allowed inside the window", c)
		}
	}
	if !a.Allow(8) {
		t.Fatal("access denied after window expiry")
	}
	a.OnIssue(8)
	if a.DeniedAcc != 7 || a.AllowedAcc != 2 {
		t.Errorf("denied/allowed = %d/%d, want 7/2", a.DeniedAcc, a.AllowedAcc)
	}

	// WG=0 disables the gate entirely.
	a.WG = 0
	for c := uint64(0); c < 4; c++ {
		if !a.Allow(c) {
			t.Fatal("unthrottled gate denied an access")
		}
	}
}

// TestATUFeedbackLaw pins the integral variant the controller enables:
// growth below 95% of target, multiplicative back-off at/after target.
func TestATUFeedbackLaw(t *testing.T) {
	a := NewATU()
	a.Feedback = true

	for i := 0; i < 4; i++ {
		a.Update(900, 1000, 10, true) // 90% of target: grow
	}
	if a.WG != 4*a.WindowStep {
		t.Fatalf("WG = %d after 4 grow updates, want %d", a.WG, 4*a.WindowStep)
	}
	a.Update(970, 1000, 10, true) // deadband: 95%..100% holds
	if a.WG != 4*a.WindowStep {
		t.Errorf("WG = %d inside the deadband, want unchanged %d", a.WG, 4*a.WindowStep)
	}
	a.Update(1000, 1000, 10, true) // at target: halve
	if a.WG != 2*a.WindowStep {
		t.Errorf("WG = %d after back-off, want %d", a.WG, 2*a.WindowStep)
	}
}
