package core
