package core

import (
	"testing"
	"testing/quick"

	"repro/internal/gpu"
)

// feedFrame pushes one frame of nRTP identical RTPs into f.
func feedFrame(f *FRPU, frame, nRTP int, cycles, updates, accesses uint64) {
	for i := 0; i < nRTP; i++ {
		f.ObserveRTP(gpu.RTPInfo{
			Frame: frame, Index: i,
			Updates: updates, Cycles: cycles, Tiles: 16, LLCAccesses: accesses,
		})
	}
	f.ObserveFrame(gpu.FrameInfo{
		Index: frame, Cycles: cycles * uint64(nRTP),
		LLCAccesses: accesses * uint64(nRTP), RTPs: nRTP,
	})
}

func TestLearningToPredictionTransition(t *testing.T) {
	f := NewFRPU()
	if f.Phase() != Learning {
		t.Fatalf("FRPU must start in learning")
	}
	feedFrame(f, 0, 8, 100, 50, 20)
	if f.Phase() != Prediction {
		t.Fatalf("no transition to prediction after one frame")
	}
	if f.FramesLearned != 1 {
		t.Fatalf("FramesLearned = %d", f.FramesLearned)
	}
}

func TestExactPredictionOnConstantWork(t *testing.T) {
	f := NewFRPU()
	feedFrame(f, 0, 8, 100, 50, 20)
	// Mid-frame prediction with identical per-RTP cycles must be
	// exactly nRTP*cycles (Eq. 3 with C_inter == C_avg).
	for i := 0; i < 4; i++ {
		f.ObserveRTP(gpu.RTPInfo{Frame: 1, Index: i, Updates: 50, Cycles: 100, Tiles: 16, LLCAccesses: 20})
	}
	p, ok := f.PredictedFrameCycles()
	if !ok {
		t.Fatalf("no prediction in prediction phase")
	}
	if p != 800 {
		t.Fatalf("predicted %v cycles, want 800", p)
	}
}

func TestPredictionBlendsCurrentSpeed(t *testing.T) {
	f := NewFRPU()
	feedFrame(f, 0, 10, 100, 50, 20)
	// Current frame runs 2x slower: after 5 of 10 RTPs, lambda=0.5,
	// C_inter=200, C_avg=100 -> C_rtp=150 -> F=1500.
	for i := 0; i < 5; i++ {
		f.ObserveRTP(gpu.RTPInfo{Frame: 1, Index: i, Updates: 50, Cycles: 200, Tiles: 16, LLCAccesses: 20})
	}
	p, _ := f.PredictedFrameCycles()
	if p != 1500 {
		t.Fatalf("blended prediction = %v, want 1500", p)
	}
}

func TestDivergenceTriggersRelearn(t *testing.T) {
	f := NewFRPU()
	feedFrame(f, 0, 8, 100, 50, 20)
	// An RTP with 10x the learned work must discard the profile.
	f.ObserveRTP(gpu.RTPInfo{Frame: 1, Index: 0, Updates: 500, Cycles: 100, Tiles: 16, LLCAccesses: 200})
	if f.Phase() != Learning {
		t.Fatalf("no relearn after divergence; phase=%v", f.Phase())
	}
	if f.Relearns != 1 {
		t.Fatalf("Relearns = %d", f.Relearns)
	}
	// The diverging RTP itself must seed the fresh learning pass.
	tab := f.Table()
	if !tab[0].Valid || tab[0].Updates != 500 {
		t.Fatalf("diverging RTP not recorded: %+v", tab[0])
	}
}

func TestCycleChangesDoNotRelearn(t *testing.T) {
	// Throttling slows RTPs without changing their work; the FRPU
	// must NOT treat that as divergence.
	f := NewFRPU()
	feedFrame(f, 0, 8, 100, 50, 20)
	for i := 0; i < 8; i++ {
		f.ObserveRTP(gpu.RTPInfo{Frame: 1, Index: i, Updates: 50, Cycles: 400, Tiles: 16, LLCAccesses: 20})
	}
	if f.Phase() != Prediction {
		t.Fatalf("cycle-only change caused a relearn")
	}
}

func TestTableOverflowAccumulates(t *testing.T) {
	f := NewFRPU()
	n := TableEntries + 10
	for i := 0; i < n; i++ {
		f.ObserveRTP(gpu.RTPInfo{Frame: 0, Index: i, Updates: 1, Cycles: 10, Tiles: 4, LLCAccesses: 2})
	}
	tab := f.Table()
	if tab[TableEntries-1].Updates != 11 {
		t.Fatalf("last entry should accumulate 11 updates, has %d", tab[TableEntries-1].Updates)
	}
	f.ObserveFrame(gpu.FrameInfo{Index: 0, Cycles: uint64(10 * n), RTPs: n})
	if f.Phase() != Prediction {
		t.Fatalf("overflowed frame did not finish learning")
	}
}

func TestErrorAccountingAccurateOnSteadyState(t *testing.T) {
	f := NewFRPU()
	for frame := 0; frame < 10; frame++ {
		feedFrame(f, frame, 8, 100, 50, 20)
	}
	if got := f.MeanAbsErrorPct(); got > 0.001 {
		t.Fatalf("steady-state mean abs error = %v%%, want ~0", got)
	}
}

func TestAccessesPerFrame(t *testing.T) {
	f := NewFRPU()
	feedFrame(f, 0, 8, 100, 50, 20)
	a, ok := f.AccessesPerFrame()
	if !ok || a != 160 {
		t.Fatalf("A = %v (ok=%v), want 160", a, ok)
	}
}

func TestStorageBitsAboutAKilobyte(t *testing.T) {
	bytes := StorageBits() / 8
	if bytes < 1024 || bytes > 1200 {
		t.Fatalf("table storage = %d bytes; paper claims just over 1 KB", bytes)
	}
}

// Property: on constant per-RTP work, every mid-frame prediction in
// steady state equals the true frame time exactly, for any frame
// shape.
func TestQuickExactOnConstantWork(t *testing.T) {
	f := func(nRTP8 uint8, cyc16 uint16, acc8 uint8) bool {
		nRTP := 1 + int(nRTP8%32)
		cycles := uint64(cyc16%5000) + 1
		acc := uint64(acc8) + 1
		fr := NewFRPU()
		feedFrame(fr, 0, nRTP, cycles, 10, acc)
		want := float64(cycles) * float64(nRTP)
		for i := 0; i < nRTP-1; i++ {
			fr.ObserveRTP(gpu.RTPInfo{Frame: 1, Index: i, Updates: 10, Cycles: cycles, Tiles: 4, LLCAccesses: acc})
			p, ok := fr.PredictedFrameCycles()
			if !ok {
				return false
			}
			if d := p - want; d > 1e-6*want || d < -1e-6*want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
