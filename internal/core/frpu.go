// Package core implements the paper's primary contribution: the
// dynamic frame-rate prediction unit (FRPU, §III-A), the GPU access
// throttling unit (ATU, §III-B), and the QoS controller that ties
// them to the DRAM scheduler's CPU-priority boost (§III-C). The
// total architectural state is the 64-entry RTP information table
// plus a handful of registers — "just over a kilobyte" (§VII).
package core

import "repro/internal/gpu"

// TableEntries is the RTP information table size (paper §III-A1).
const TableEntries = 64

// RTPEntry is one row of the RTP information table. The paper stores
// four 4-byte fields per entry plus a valid bit: the number of
// updates to the RTP, the cycles to finish it, the number of RTTs,
// and the shared-LLC accesses the GPU made for the whole RTP.
type RTPEntry struct {
	Valid    bool
	Updates  uint32
	Cycles   uint32
	Tiles    uint32
	Accesses uint32
}

// Phase is the FRPU state (paper Fig. 4).
type Phase uint8

// Phases.
const (
	// Learning: monitoring one complete frame to fill the table.
	Learning Phase = iota
	// Prediction: extrapolating the frame time with Eq. 3 and
	// cross-verifying observations against the learned profile.
	Prediction
)

func (p Phase) String() string {
	if p == Learning {
		return "learning"
	}
	return "prediction"
}

// FRPU is the frame-rate prediction unit. It consumes RTP and frame
// completion events from the GPU pipeline and produces a projected
// cycles-per-frame figure without profile information or rendering-
// pipeline assumptions.
type FRPU struct {
	// Threshold is the relative divergence between a predicted-phase
	// observation and the learned profile that discards the learned
	// data (back to learning, paper Fig. 4 point B). Divergence is
	// checked on the work fields (updates and LLC accesses) rather
	// than cycles: cycles legitimately change when the ATU throttles
	// the GPU, and re-learning on every throttle adjustment would
	// defeat the feedback loop.
	Threshold float64

	table    [TableEntries]RTPEntry
	phase    Phase
	learnIdx int

	// Learned frame profile.
	nRTP   int
	cAvg   float64 // mean cycles per RTP over the learned frame
	aFrame float64 // LLC accesses per frame

	// Current-frame observation.
	curRTPs     int
	curCycles   uint64
	curAccesses uint64

	// Per-frame prediction bookkeeping (for accuracy accounting).
	predSum   float64
	predCount int

	// Stats.
	Relearns      int
	FramesLearned int
	// Errors collects per-frame signed relative errors of the mean
	// in-frame prediction vs the actual frame time (Fig. 8).
	Errors []float64
}

// NewFRPU returns an FRPU with the default divergence threshold.
func NewFRPU() *FRPU {
	return &FRPU{Threshold: 0.5}
}

// Phase returns the current phase.
func (f *FRPU) Phase() Phase { return f.phase }

// Table returns a copy of the RTP information table (inspection).
func (f *FRPU) Table() [TableEntries]RTPEntry { return f.table }

// AccessesPerFrame returns the learned LLC accesses per frame (the A
// input of the throttling algorithm) and whether it is valid.
func (f *FRPU) AccessesPerFrame() (float64, bool) {
	return f.aFrame, f.phase == Prediction && f.aFrame > 0
}

// ObserveRTP records one completed RTP.
func (f *FRPU) ObserveRTP(info gpu.RTPInfo) {
	switch f.phase {
	case Learning:
		idx := f.learnIdx
		if idx >= TableEntries {
			// Overflow: accumulate into the last entry (§III-A1).
			e := &f.table[TableEntries-1]
			e.Updates += uint32(info.Updates)
			e.Cycles += uint32(info.Cycles)
			e.Tiles += uint32(info.Tiles)
			e.Accesses += uint32(info.LLCAccesses)
		} else {
			f.table[idx] = RTPEntry{
				Valid:    true,
				Updates:  uint32(info.Updates),
				Cycles:   uint32(info.Cycles),
				Tiles:    uint32(info.Tiles),
				Accesses: uint32(info.LLCAccesses),
			}
			f.learnIdx++
		}
	case Prediction:
		// Cross-verify against the learned entry for this RTP index.
		idx := info.Index
		if idx >= TableEntries {
			idx = TableEntries - 1
		}
		e := f.table[idx]
		if e.Valid && (diverges(float64(info.Updates), float64(e.Updates), f.Threshold) ||
			diverges(float64(info.LLCAccesses), float64(e.Accesses), f.Threshold)) {
			f.relearn()
			// The diverging RTP seeds the fresh learning pass.
			f.ObserveRTP(info)
			return
		}
	}
	f.curRTPs++
	f.curCycles += info.Cycles
	f.curAccesses += info.LLCAccesses

	if f.phase == Prediction {
		if p, ok := f.PredictedFrameCycles(); ok {
			f.predSum += p
			f.predCount++
		}
	}
}

// diverges reports |obs-learned|/learned > threshold.
func diverges(obs, learned, threshold float64) bool {
	if learned == 0 {
		return obs != 0
	}
	d := obs - learned
	if d < 0 {
		d = -d
	}
	return d/learned > threshold
}

// relearn discards the learned profile (Fig. 4, prediction->learning
// transition).
func (f *FRPU) relearn() {
	f.table = [TableEntries]RTPEntry{}
	f.learnIdx = 0
	f.phase = Learning
	f.nRTP = 0
	f.cAvg = 0
	f.aFrame = 0
	f.curRTPs = 0
	f.curCycles = 0
	f.curAccesses = 0
	f.predSum = 0
	f.predCount = 0
	f.Relearns++
}

// ObserveFrame records a frame boundary. In the learning phase it
// finalizes the profile and switches to prediction (Fig. 4 point A);
// in the prediction phase it records prediction accuracy and resets
// the current-frame observation.
func (f *FRPU) ObserveFrame(info gpu.FrameInfo) {
	switch f.phase {
	case Learning:
		f.nRTP = f.curRTPs
		if f.nRTP > 0 {
			f.cAvg = float64(f.curCycles) / float64(f.nRTP)
		}
		f.aFrame = float64(f.curAccesses)
		if f.nRTP > 0 {
			f.phase = Prediction
			f.FramesLearned++
		}
	case Prediction:
		if f.predCount > 0 && info.Cycles > 0 {
			mean := f.predSum / float64(f.predCount)
			f.Errors = append(f.Errors, (mean-float64(info.Cycles))/float64(info.Cycles))
		}
		// The completed frame refreshes the learned averages so the
		// profile tracks slow drift (work jitter) without a full
		// relearn.
		if f.curRTPs > 0 {
			f.nRTP = f.curRTPs
			f.cAvg = float64(f.curCycles) / float64(f.curRTPs)
			f.aFrame = float64(f.curAccesses)
		}
	}
	f.curRTPs = 0
	f.curCycles = 0
	f.curAccesses = 0
	f.predSum = 0
	f.predCount = 0
}

// PredictedFrameCycles implements Eq. 3:
//
//	F = (λ·C_inter + (1−λ)·C_avg) · N_rtp
//
// where λ is the fraction of the frame rendered so far, C_inter the
// mean cycles per RTP observed in the current frame, and C_avg the
// learned mean. It returns ok=false outside the prediction phase.
func (f *FRPU) PredictedFrameCycles() (float64, bool) {
	if f.phase != Prediction || f.nRTP == 0 {
		return 0, false
	}
	lambda := float64(f.curRTPs) / float64(f.nRTP)
	if lambda > 1 {
		lambda = 1
	}
	cInter := f.cAvg
	if f.curRTPs > 0 {
		cInter = float64(f.curCycles) / float64(f.curRTPs)
	}
	cRTP := lambda*cInter + (1-lambda)*f.cAvg
	return cRTP * float64(f.nRTP), true
}

// MeanAbsErrorPct returns the mean of |per-frame error| in percent.
func (f *FRPU) MeanAbsErrorPct() float64 {
	if len(f.Errors) == 0 {
		return 0
	}
	var s float64
	for _, e := range f.Errors {
		if e < 0 {
			e = -e
		}
		s += e
	}
	return 100 * s / float64(len(f.Errors))
}

// MeanErrorPct returns the mean signed error in percent (positive =
// over-estimation, as in Fig. 8).
func (f *FRPU) MeanErrorPct() float64 {
	if len(f.Errors) == 0 {
		return 0
	}
	var s float64
	for _, e := range f.Errors {
		s += e
	}
	return 100 * s / float64(len(f.Errors))
}

// StorageBits returns the architectural state the FRPU needs, in
// bits: 64 entries x (4 fields x 32 bits + 1 valid bit). The paper
// claims "just over a kilobyte" for the whole proposal.
func StorageBits() int {
	return TableEntries * (4*32 + 1)
}
