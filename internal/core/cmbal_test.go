package core

import (
	"testing"
	"testing/quick"
)

func runEpochs(c *CMBAL, stalledFrac float64, epochs int) {
	cycle := uint64(0)
	for e := 0; e < epochs; e++ {
		stallEvery := 0
		if stalledFrac > 0 {
			stallEvery = int(1 / stalledFrac)
		}
		for i := uint64(0); i < c.EpochCycles; i++ {
			cycle++
			stalled := stallEvery > 0 && int(i)%stallEvery == 0
			c.Observe(cycle, stalled)
		}
	}
}

func TestCMBALScalesDownUnderCongestion(t *testing.T) {
	c := NewCMBAL()
	runEpochs(c, 0.8, 10)
	if c.Level >= 1.0 {
		t.Fatalf("no down-scaling under 80%% stalls: level=%v", c.Level)
	}
	if c.Level < c.MinLevel {
		t.Fatalf("level %v fell below floor %v", c.Level, c.MinLevel)
	}
	if c.Downs == 0 {
		t.Fatalf("no down epochs recorded")
	}
}

func TestCMBALRecoversWhenIdle(t *testing.T) {
	c := NewCMBAL()
	runEpochs(c, 0.9, 20) // drive to the floor
	floor := c.Level
	runEpochs(c, 0.0, 20) // no stalls: scale back up
	if c.Level <= floor {
		t.Fatalf("no recovery: %v -> %v", floor, c.Level)
	}
	if c.Level > 1.0 {
		t.Fatalf("level exceeded 1.0: %v", c.Level)
	}
}

func TestCMBALStableInDeadband(t *testing.T) {
	c := NewCMBAL()
	runEpochs(c, 0.35, 10) // between StallLo and StallHi
	if c.Level != 1.0 {
		t.Fatalf("deadband epochs moved the level: %v", c.Level)
	}
}

func TestCMBALTextureIssueScale(t *testing.T) {
	c := NewCMBAL()
	if c.TextureIssueScale() != 1.0 {
		t.Fatalf("fresh controller not at full concurrency")
	}
	runEpochs(c, 0.9, 30)
	if got := c.TextureIssueScale(); got != c.Level {
		t.Fatalf("TextureIssueScale %v != Level %v", got, c.Level)
	}
}

// Property: the level always stays within [MinLevel, 1] under any
// stall pattern.
func TestQuickCMBALBounds(t *testing.T) {
	f := func(pattern []bool) bool {
		c := NewCMBAL()
		c.EpochCycles = 16
		cycle := uint64(0)
		for i := 0; i < 50; i++ {
			for _, st := range pattern {
				cycle++
				c.Observe(cycle, st)
				if c.Level < c.MinLevel-1e-9 || c.Level > 1.0+1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
