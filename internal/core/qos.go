package core

import (
	"repro/internal/dram"
	"repro/internal/gpu"
	"repro/internal/obs"
)

// Mode selects which pieces of the proposal are active.
type Mode uint8

// Modes.
const (
	// ModeBaseline disables the proposal entirely (FR-FCFS, no gate).
	ModeBaseline Mode = iota
	// ModeThrottle enables the FRPU+ATU GPU access throttling only
	// (the "Throttled" configuration of Fig. 9).
	ModeThrottle
	// ModeThrottleCPUPrio additionally boosts CPU priority in the
	// DRAM scheduler while the GPU is throttled ("Throttled+CPU
	// priority", the full proposal).
	ModeThrottleCPUPrio
)

func (m Mode) String() string {
	switch m {
	case ModeBaseline:
		return "baseline"
	case ModeThrottle:
		return "throttled"
	case ModeThrottleCPUPrio:
		return "throttled+cpuprio"
	}
	return "mode?"
}

// Controller is the QoS controller tying the FRPU's frame-time
// prediction to the ATU's GTT gate and the DRAM scheduler's priority
// boost. It implements gpu.Observer (re-evaluating on every RTP
// retirement, which is off the critical path of GPU accesses, §III-D)
// and gpu.ThrottleGate (delegating to the ATU).
type Controller struct {
	FRPU *FRPU
	ATU  *ATU

	// Mode selects throttling / throttling+CPU-priority / off.
	Mode Mode

	// TargetFPS is the QoS threshold (40 FPS in the paper, leaving a
	// 10 FPS cushion over the 30 FPS visual-satisfaction floor).
	TargetFPS float64

	// GPUFreqHz and Scale convert between FPS and GPU cycles per
	// frame: CT = GPUFreqHz / (TargetFPS * Scale).
	GPUFreqHz float64
	Scale     int
}

// NewController builds the full proposal's controller.
func NewController(mode Mode, targetFPS float64, gpuFreqHz float64, scale int) *Controller {
	if scale < 1 {
		scale = 1
	}
	atu := NewATU()
	atu.Feedback = true // see ATU.Feedback; the ablation bench compares laws
	return &Controller{
		FRPU:      NewFRPU(),
		ATU:       atu,
		Mode:      mode,
		TargetFPS: targetFPS,
		GPUFreqHz: gpuFreqHz,
		Scale:     scale,
	}
}

// TargetCycles returns CT, the GPU cycles per frame at the target
// frame rate under the current scale factor.
func (c *Controller) TargetCycles() float64 {
	return c.GPUFreqHz / (c.TargetFPS * float64(c.Scale))
}

// RTPComplete implements gpu.Observer.
func (c *Controller) RTPComplete(info gpu.RTPInfo) {
	c.FRPU.ObserveRTP(info)
	c.reevaluate()
}

// FrameComplete implements gpu.Observer.
func (c *Controller) FrameComplete(info gpu.FrameInfo) {
	c.FRPU.ObserveFrame(info)
	c.reevaluate()
}

// reevaluate runs the Fig. 6 flow with fresh FRPU outputs.
func (c *Controller) reevaluate() {
	if c.Mode == ModeBaseline {
		c.ATU.WG = 0
		return
	}
	cp, okP := c.FRPU.PredictedFrameCycles()
	a, okA := c.FRPU.AccessesPerFrame()
	c.ATU.Update(cp, c.TargetCycles(), a, okP && okA)
}

// Throttling reports whether the ATU gate is currently engaged.
func (c *Controller) Throttling() bool {
	return c.Mode != ModeBaseline && c.ATU.Active()
}

// Allow implements gpu.ThrottleGate.
func (c *Controller) Allow(gpuCycle uint64) bool {
	if c.Mode == ModeBaseline {
		return true
	}
	return c.ATU.Allow(gpuCycle)
}

// OnIssue implements gpu.ThrottleGate.
func (c *Controller) OnIssue(gpuCycle uint64) {
	if c.Mode != ModeBaseline {
		c.ATU.OnIssue(gpuCycle)
	}
}

// NextAllow implements gpu.WakeGate, delegating to the ATU (an
// always-open gate in baseline mode).
func (c *Controller) NextAllow(gpuCycle uint64) uint64 {
	if c.Mode == ModeBaseline {
		return gpuCycle
	}
	return c.ATU.NextAllow(gpuCycle)
}

// SkipDenied implements gpu.WakeGate.
func (c *Controller) SkipDenied(n uint64) {
	if c.Mode != ModeBaseline {
		c.ATU.SkipDenied(n)
	}
}

// Boost implements the DRAM scheduler priority provider: CPU requests
// outrank GPU requests exactly while the GPU is being throttled and
// the mode enables it (§III-C).
func (c *Controller) Boost() dram.BoostState {
	if c.Mode == ModeThrottleCPUPrio && c.Throttling() {
		return dram.BoostCPU
	}
	return dram.BoostNone
}

// RegisterObs registers the controller's FRPU phase, ATU window
// state, and DRAM priority boost with the observability registry —
// the time-series behaviors behind the paper's Fig. 6 controller
// dynamics.
func (c *Controller) RegisterObs(reg *obs.Registry) {
	c.FRPU.RegisterObs(reg)
	c.ATU.RegisterObs(reg)
	reg.Gauge("dram.boost", func() float64 { return float64(c.Boost()) })
}

// RegisterObs registers the FRPU's phase and accuracy counters.
func (f *FRPU) RegisterObs(reg *obs.Registry) {
	reg.Gauge("frpu.phase", func() float64 { return float64(f.phase) })
	reg.Counter("frpu.relearns", func() uint64 { return uint64(f.Relearns) })
	reg.Gauge("frpu.predicted_cycles", func() float64 {
		p, _ := f.PredictedFrameCycles()
		return p
	})
}

// RegisterObs registers the ATU's window parameters and gate
// counters.
func (a *ATU) RegisterObs(reg *obs.Registry) {
	reg.Gauge("atu.wg", func() float64 { return float64(a.WG) })
	reg.Gauge("atu.ng", func() float64 { return float64(a.NG) })
	reg.Counter("atu.denied", func() uint64 { return a.DeniedAcc })
	reg.Counter("atu.resets", func() uint64 { return a.Resets })
}

// DynPrio is the dynamic priority DRAM scheduler provider of Jeong et
// al. (DAC 2012) as the paper evaluates it (§IV): CPU accesses have
// higher priority by default; the GPU is raised to equal priority
// when its progress lags the target frame time, and to express
// (higher-than-CPU) priority during the last 10% of the frame-time
// budget. It reuses the paper's frame rate estimation technique (our
// FRPU) to compute the time left in a frame, exactly as §VI does.
type DynPrio struct {
	FRPU *FRPU

	// FrameElapsed returns GPU cycles since the current frame began;
	// the system builder wires it to the GPU.
	FrameElapsed func() uint64

	// TargetCycles is the frame-time budget (GPU cycles per frame at
	// the target frame rate); the system builder sets it.
	TargetCycles float64

	// LastFraction is the tail fraction with GPU express priority
	// (0.10 in the paper).
	LastFraction float64
}

// NewDynPrio builds a DynPrio provider over an FRPU.
func NewDynPrio(frpu *FRPU, frameElapsed func() uint64) *DynPrio {
	return &DynPrio{FRPU: frpu, FrameElapsed: frameElapsed, LastFraction: 0.10}
}

// RTPComplete implements gpu.Observer.
func (d *DynPrio) RTPComplete(info gpu.RTPInfo) { d.FRPU.ObserveRTP(info) }

// FrameComplete implements gpu.Observer.
func (d *DynPrio) FrameComplete(info gpu.FrameInfo) { d.FRPU.ObserveFrame(info) }

// RegisterObs registers the provider's FRPU state and the current
// three-level priority decision with the observability registry.
func (d *DynPrio) RegisterObs(reg *obs.Registry) {
	d.FRPU.RegisterObs(reg)
	reg.Gauge("dram.boost", func() float64 { return float64(d.Boost()) })
}

// Boost implements the three-level DynPrio policy.
func (d *DynPrio) Boost() dram.BoostState {
	cp, ok := d.FRPU.PredictedFrameCycles()
	if !ok || d.FrameElapsed == nil {
		return dram.BoostNone
	}
	if float64(d.FrameElapsed()) >= (1-d.LastFraction)*cp {
		// Deadline pressure: GPU express lane.
		return dram.BoostGPU
	}
	if d.TargetCycles > 0 && cp > d.TargetCycles {
		// GPU lagging its target frame time: equal priority.
		return dram.BoostNone
	}
	// GPU comfortably on schedule: CPU first (DynPrio's default).
	return dram.BoostCPU
}
