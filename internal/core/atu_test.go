package core

import (
	"testing"
	"testing/quick"

	"repro/internal/dram"
	"repro/internal/gpu"
)

func TestATUDisabledWhenSlow(t *testing.T) {
	a := NewATU()
	a.WG = 10
	a.Update(2000, 1000, 50, true) // CP > CT
	if a.WG != 0 || a.NG != 1 {
		t.Fatalf("ATU not reset when GPU below target: NG=%d WG=%d", a.NG, a.WG)
	}
	if a.Resets != 1 {
		t.Fatalf("Resets = %d", a.Resets)
	}
}

func TestATUGrowsTowardSlack(t *testing.T) {
	a := NewATU()
	// CT-CP = 1000 slack over 100 accesses -> want WG >= 10.
	for i := 0; i < 20; i++ {
		a.Update(1000, 2000, 100, true)
	}
	if a.WG < 10 {
		t.Fatalf("WG = %d after 20 evals, want >= 10", a.WG)
	}
	// Growth stops once WG >= slack/A.
	if a.WG > 10+a.WindowStep {
		t.Fatalf("WG = %d overshot the slack bound", a.WG)
	}
}

func TestATUStepIsTwoPerEvaluation(t *testing.T) {
	a := NewATU()
	a.Update(1000, 10000, 10, true)
	if a.WG != 2 {
		t.Fatalf("first evaluation WG = %d, want 2", a.WG)
	}
	a.Update(1000, 10000, 10, true)
	if a.WG != 4 {
		t.Fatalf("second evaluation WG = %d, want 4", a.WG)
	}
}

func TestATUInvalidInputsDisable(t *testing.T) {
	a := NewATU()
	a.WG = 8
	a.Update(0, 0, 0, false)
	if a.WG != 0 {
		t.Fatalf("invalid inputs left WG = %d", a.WG)
	}
}

func TestGateOneAccessPerWindow(t *testing.T) {
	a := NewATU()
	a.NG, a.WG = 1, 10
	if !a.Allow(0) {
		t.Fatalf("fresh window denied")
	}
	a.OnIssue(0)
	for c := uint64(1); c < 10; c++ {
		if a.Allow(c) {
			t.Fatalf("second access allowed at cycle %d inside WG=10 window", c)
		}
	}
	if !a.Allow(10) {
		t.Fatalf("new window at cycle 10 denied")
	}
}

func TestGateUnthrottledAlwaysAllows(t *testing.T) {
	a := NewATU()
	for c := uint64(0); c < 100; c++ {
		if !a.Allow(c) {
			t.Fatalf("WG=0 denied at %d", c)
		}
		a.OnIssue(c)
	}
}

// Property: with NG=1 and any WG>0, the admitted access rate over a
// long run never exceeds one per WG cycles (plus the initial one).
func TestQuickGateRateBound(t *testing.T) {
	f := func(wg8 uint8) bool {
		wg := uint64(wg8%31) + 2
		a := NewATU()
		a.NG, a.WG = 1, wg
		issued := 0
		const cycles = 2000
		for c := uint64(0); c < cycles; c++ {
			if a.Allow(c) {
				a.OnIssue(c)
				issued++
			}
		}
		maxAllowed := int(cycles/wg) + 1
		return issued <= maxAllowed && issued >= int(cycles/(wg+1))-1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: Update never lets WG exceed slack/A by more than one step
// and never produces WG > 0 when CP >= CT.
func TestQuickUpdateInvariants(t *testing.T) {
	f := func(cp16, ct16 uint16, a8 uint8, rounds uint8) bool {
		cp, ct := float64(cp16)+1, float64(ct16)+1
		acc := float64(a8) + 1
		a := NewATU()
		for i := 0; i < int(rounds%50)+1; i++ {
			a.Update(cp, ct, acc, true)
			if cp > ct && a.WG != 0 {
				return false
			}
			if cp <= ct {
				want := (ct - cp) / acc
				if float64(a.WG) > want+float64(a.WindowStep) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestControllerThrottlesFastGPU(t *testing.T) {
	// Target 40 FPS at 1 GHz, scale 1000 -> CT = 25000 GPU cycles.
	c := NewController(ModeThrottleCPUPrio, 40, 1e9, 1000)
	// Learn a frame that renders in 10000 cycles (100 FPS-equivalent).
	feedFrame(c.FRPU, 0, 10, 1000, 50, 100)
	c.reevaluate()
	for i := 0; i < 50; i++ {
		c.RTPComplete(gpu.RTPInfo{Frame: 1, Index: i % 10, Updates: 50, Cycles: 1000, Tiles: 8, LLCAccesses: 100})
	}
	if !c.Throttling() {
		t.Fatalf("controller did not throttle a 100FPS-equivalent GPU against a 40FPS target")
	}
	if c.Boost() != dram.BoostCPU {
		t.Fatalf("CPU priority not boosted while throttling")
	}
}

func TestControllerLeavesSlowGPUAlone(t *testing.T) {
	// CT = 25000; frame takes 50000 -> below target, never throttle.
	c := NewController(ModeThrottleCPUPrio, 40, 1e9, 1000)
	feedFrame(c.FRPU, 0, 10, 5000, 50, 100)
	for i := 0; i < 20; i++ {
		c.RTPComplete(gpu.RTPInfo{Frame: 1, Index: i % 10, Updates: 50, Cycles: 5000, Tiles: 8, LLCAccesses: 100})
	}
	if c.Throttling() {
		t.Fatalf("controller throttled a below-target GPU")
	}
	if c.Boost() != dram.BoostNone {
		t.Fatalf("CPU priority boosted without throttling")
	}
}

func TestControllerModeThrottleNoBoost(t *testing.T) {
	c := NewController(ModeThrottle, 40, 1e9, 1000)
	feedFrame(c.FRPU, 0, 10, 1000, 50, 100)
	for i := 0; i < 50; i++ {
		c.RTPComplete(gpu.RTPInfo{Frame: 1, Index: i % 10, Updates: 50, Cycles: 1000, Tiles: 8, LLCAccesses: 100})
	}
	if !c.Throttling() {
		t.Fatalf("throttle mode inactive")
	}
	if c.Boost() != dram.BoostNone {
		t.Fatalf("ModeThrottle must not boost DRAM priority")
	}
}

func TestControllerBaselinePassthrough(t *testing.T) {
	c := NewController(ModeBaseline, 40, 1e9, 1000)
	feedFrame(c.FRPU, 0, 10, 100, 50, 100)
	for cyc := uint64(0); cyc < 100; cyc++ {
		if !c.Allow(cyc) {
			t.Fatalf("baseline gate denied")
		}
	}
}

func TestDynPrioThreeLevels(t *testing.T) {
	frpu := NewFRPU()
	feedFrame(frpu, 0, 10, 1000, 50, 100) // frame = 10000 cycles
	elapsed := uint64(0)
	d := NewDynPrio(frpu, func() uint64 { return elapsed })

	// GPU comfortably ahead of its target (budget 20000 > CP 10000):
	// CPU priority by default.
	d.TargetCycles = 20000
	elapsed = 5000
	if d.Boost() != dram.BoostCPU {
		t.Fatalf("DynPrio default must be CPU priority when GPU is on schedule")
	}
	// Last decile: GPU express lane regardless.
	elapsed = 9500
	if d.Boost() != dram.BoostGPU {
		t.Fatalf("DynPrio did not boost GPU in last decile")
	}
	// GPU lagging its target (budget 5000 < CP 10000): equal priority.
	d.TargetCycles = 5000
	elapsed = 5000
	if d.Boost() != dram.BoostNone {
		t.Fatalf("DynPrio must fall back to equal priority when the GPU lags")
	}
}

func TestTargetCyclesMath(t *testing.T) {
	c := NewController(ModeThrottle, 40, 1e9, 100)
	// 1 GHz at 40 FPS and scale 100: 1e9/(40*100) = 250000 cycles.
	if got := c.TargetCycles(); got != 250000 {
		t.Fatalf("target cycles = %v", got)
	}
}

func TestControllerScaleFloor(t *testing.T) {
	c := NewController(ModeThrottle, 40, 1e9, 0) // scale clamps to 1
	if c.Scale != 1 {
		t.Fatalf("scale not clamped: %d", c.Scale)
	}
}

func TestATUActiveFlag(t *testing.T) {
	a := NewATU()
	if a.Active() {
		t.Fatalf("fresh ATU active")
	}
	a.WG = 4
	if !a.Active() {
		t.Fatalf("WG>0 not active")
	}
}
