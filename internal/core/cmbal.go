package core

// CMBAL approximates the balanced concurrency management proposal
// (Kayiran et al., MICRO 2014) that the paper analyzes in §IV: the
// GPU scales the number of ready shader threads up or down based on
// the average memory-system stall it observes. Fewer active threads
// lower the *texture* access rate (texture sampling is issued by
// shader instructions), but leave the fixed-function ROP traffic —
// depth test, color write — untouched.
//
// The paper's finding, which this model reproduces, is that shader-
// core-centric throttling cannot regulate the frame rate of 3D
// rendering workloads: texture accesses are only ~25% of the GPU's
// LLC traffic, different titles are differently sensitive to texture
// rate, and only a fraction of texture accesses are affected at run
// time. The mechanism is implemented here as a texture-issue
// probability the GPU pipeline consults, driven by a stall-based
// up/down controller.
type CMBAL struct {
	// Level is the current concurrency level in [MinLevel, 1.0]: the
	// fraction of shader threads kept ready. The GPU maps it to the
	// probability that a texture access may issue this cycle.
	Level float64

	// MinLevel bounds how far concurrency can drop (0.25 keeps a
	// quarter of the threads ready).
	MinLevel float64

	// Step is the multiplicative adjustment per epoch.
	Step float64

	// StallHi and StallLo are the stall-fraction thresholds: above
	// StallHi the epoch scales concurrency down (memory congested),
	// below StallLo it scales back up (cores idle).
	StallHi float64
	StallLo float64

	// EpochCycles is the evaluation period in GPU cycles.
	EpochCycles uint64

	epochStart  uint64
	stallCycles uint64
	busyCycles  uint64

	// Stats.
	Epochs  uint64
	Downs   uint64
	Ups     uint64
	MinSeen float64
}

// NewCMBAL returns a controller with the evaluation defaults.
func NewCMBAL() *CMBAL {
	return &CMBAL{
		Level:       1.0,
		MinLevel:    0.25,
		Step:        0.125,
		StallHi:     0.5,
		StallLo:     0.2,
		EpochCycles: 4096,
		MinSeen:     1.0,
	}
}

// Observe records one GPU cycle's stall state (stalled = the pipeline
// could not issue due to memory back-pressure).
func (c *CMBAL) Observe(gpuCycle uint64, stalled bool) {
	if stalled {
		c.stallCycles++
	} else {
		c.busyCycles++
	}
	if gpuCycle-c.epochStart >= c.EpochCycles {
		c.endEpoch(gpuCycle)
	}
}

func (c *CMBAL) endEpoch(gpuCycle uint64) {
	total := c.stallCycles + c.busyCycles
	if total > 0 {
		frac := float64(c.stallCycles) / float64(total)
		switch {
		case frac > c.StallHi && c.Level > c.MinLevel:
			c.Level -= c.Step
			if c.Level < c.MinLevel {
				c.Level = c.MinLevel
			}
			c.Downs++
		case frac < c.StallLo && c.Level < 1.0:
			c.Level += c.Step
			if c.Level > 1.0 {
				c.Level = 1.0
			}
			c.Ups++
		}
		if c.Level < c.MinSeen {
			c.MinSeen = c.Level
		}
	}
	c.Epochs++
	c.epochStart = gpuCycle
	c.stallCycles = 0
	c.busyCycles = 0
}

// TextureIssueScale returns the fraction of texture-issue slots the
// current concurrency level sustains. Implements gpu.ShaderThrottle.
func (c *CMBAL) TextureIssueScale() float64 { return c.Level }
