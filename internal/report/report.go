// Package report renders experiment reports (internal/exp.Report) in
// the formats the cmd/experiments tool offers: plain text, CSV, JSON,
// and ASCII bar charts that echo the paper's figures in a terminal.
package report

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/exp"
)

// Format selects an output renderer.
type Format string

// Supported formats.
const (
	FormatText  Format = "text"
	FormatCSV   Format = "csv"
	FormatJSON  Format = "json"
	FormatChart Format = "chart"
)

// ParseFormat validates a format string.
func ParseFormat(s string) (Format, error) {
	switch Format(s) {
	case FormatText, FormatCSV, FormatJSON, FormatChart:
		return Format(s), nil
	}
	return "", fmt.Errorf("report: unknown format %q (text, csv, json, chart)", s)
}

// Write renders rep to w in the given format.
func Write(w io.Writer, rep exp.Report, f Format) error {
	switch f {
	case FormatText:
		_, err := io.WriteString(w, rep.String())
		return err
	case FormatCSV:
		return writeCSV(w, rep)
	case FormatJSON:
		return writeJSON(w, rep)
	case FormatChart:
		return writeChart(w, rep)
	}
	return fmt.Errorf("report: unknown format %q", f)
}

// writeCSV emits a header row (label + union of cell names in first-
// appearance order) and one row per result.
func writeCSV(w io.Writer, rep exp.Report) error {
	cols := columnOrder(rep)
	cw := csv.NewWriter(w)
	if err := cw.Write(append([]string{"label"}, cols...)); err != nil {
		return err
	}
	for _, r := range rep.Rows {
		rec := []string{r.Label}
		for _, c := range cols {
			rec = append(rec, fmt.Sprintf("%g", r.Get(c)))
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// jsonReport is the JSON wire shape.
type jsonReport struct {
	ID      string           `json:"id"`
	Title   string           `json:"title"`
	Summary string           `json:"summary,omitempty"`
	Rows    []map[string]any `json:"rows"`
}

func writeJSON(w io.Writer, rep exp.Report) error {
	out := jsonReport{ID: rep.ID, Title: rep.Title, Summary: rep.Summary}
	for _, r := range rep.Rows {
		row := map[string]any{"label": r.Label}
		for _, c := range r.Cells {
			row[c.Name] = c.Value
		}
		out.Rows = append(out.Rows, row)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// writeChart draws one horizontal ASCII bar group per row: every cell
// becomes a bar scaled to the report-wide maximum of its column, so
// figures like Fig. 9's grouped bars read directly in a terminal.
func writeChart(w io.Writer, rep exp.Report) error {
	const width = 42
	cols := columnOrder(rep)
	maxv := map[string]float64{}
	for _, r := range rep.Rows {
		for _, c := range cols {
			if v := r.Get(c); v > maxv[c] {
				maxv[c] = v
			}
		}
	}
	if _, err := fmt.Fprintf(w, "== %s: %s ==\n", rep.ID, rep.Title); err != nil {
		return err
	}
	nameW := 6
	for _, c := range cols {
		if len(c) > nameW {
			nameW = len(c)
		}
	}
	for _, r := range rep.Rows {
		if _, err := fmt.Fprintf(w, "%s\n", r.Label); err != nil {
			return err
		}
		for _, c := range cols {
			v := r.Get(c)
			n := 0
			if maxv[c] > 0 {
				n = int(v / maxv[c] * width)
			}
			if n > width {
				n = width
			}
			if _, err := fmt.Fprintf(w, "  %-*s %8.3f |%s\n",
				nameW, c, v, strings.Repeat("#", n)); err != nil {
				return err
			}
		}
	}
	if rep.Summary != "" {
		if _, err := fmt.Fprintf(w, "-- %s\n", rep.Summary); err != nil {
			return err
		}
	}
	return nil
}

// columnOrder returns cell names in first-appearance order across
// rows (stable, deterministic).
func columnOrder(rep exp.Report) []string {
	seen := map[string]int{}
	var cols []string
	for _, r := range rep.Rows {
		for _, c := range r.Cells {
			if _, ok := seen[c.Name]; !ok {
				seen[c.Name] = len(cols)
				cols = append(cols, c.Name)
			}
		}
	}
	sort.SliceStable(cols, func(i, j int) bool { return seen[cols[i]] < seen[cols[j]] })
	return cols
}
