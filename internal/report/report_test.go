package report

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/exp"
)

func sample() exp.Report {
	return exp.Report{
		ID:    "fig9",
		Title: "throttling",
		Rows: []exp.Row{
			{Label: "M7", Cells: []exp.Cell{{Name: "fpsBase", Value: 55.5}, {Name: "cpuPri", Value: 1.5}}},
			{Label: "M13", Cells: []exp.Cell{{Name: "fpsBase", Value: 80}, {Name: "cpuPri", Value: 2}}},
		},
		Summary: "done",
	}
}

func TestParseFormat(t *testing.T) {
	for _, s := range []string{"text", "csv", "json", "chart"} {
		if _, err := ParseFormat(s); err != nil {
			t.Fatalf("%s: %v", s, err)
		}
	}
	if _, err := ParseFormat("xml"); err == nil {
		t.Fatalf("xml accepted")
	}
}

func TestTextFormat(t *testing.T) {
	var b bytes.Buffer
	if err := Write(&b, sample(), FormatText); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "fpsBase=55.500") {
		t.Fatalf("text output: %q", b.String())
	}
}

func TestCSVFormat(t *testing.T) {
	var b bytes.Buffer
	if err := Write(&b, sample(), FormatCSV); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(&b).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("want 3 CSV records, got %d", len(recs))
	}
	if recs[0][0] != "label" || recs[0][1] != "fpsBase" || recs[0][2] != "cpuPri" {
		t.Fatalf("header: %v", recs[0])
	}
	if recs[1][0] != "M7" || recs[1][1] != "55.5" {
		t.Fatalf("row: %v", recs[1])
	}
}

func TestJSONFormat(t *testing.T) {
	var b bytes.Buffer
	if err := Write(&b, sample(), FormatJSON); err != nil {
		t.Fatal(err)
	}
	var out struct {
		ID   string           `json:"id"`
		Rows []map[string]any `json:"rows"`
	}
	if err := json.Unmarshal(b.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if out.ID != "fig9" || len(out.Rows) != 2 {
		t.Fatalf("json: %+v", out)
	}
	if out.Rows[1]["fpsBase"].(float64) != 80 {
		t.Fatalf("json cell: %v", out.Rows[1])
	}
}

func TestChartFormat(t *testing.T) {
	var b bytes.Buffer
	if err := Write(&b, sample(), FormatChart); err != nil {
		t.Fatal(err)
	}
	s := b.String()
	if !strings.Contains(s, "#") {
		t.Fatalf("no bars drawn: %q", s)
	}
	// The larger value draws the longer bar.
	lines := strings.Split(s, "\n")
	var m7, m13 int
	for i, ln := range lines {
		if strings.HasPrefix(ln, "M7") {
			m7 = strings.Count(lines[i+1], "#")
		}
		if strings.HasPrefix(ln, "M13") {
			m13 = strings.Count(lines[i+1], "#")
		}
	}
	if m13 <= m7 {
		t.Fatalf("bar lengths not proportional: M7=%d M13=%d", m7, m13)
	}
}

func TestChartEmptyReport(t *testing.T) {
	var b bytes.Buffer
	if err := Write(&b, exp.Report{ID: "x", Title: "t"}, FormatChart); err != nil {
		t.Fatal(err)
	}
}

func TestColumnOrderFirstAppearance(t *testing.T) {
	rep := exp.Report{Rows: []exp.Row{
		{Label: "a", Cells: []exp.Cell{{Name: "z", Value: 1}}},
		{Label: "b", Cells: []exp.Cell{{Name: "a", Value: 2}, {Name: "z", Value: 3}}},
	}}
	cols := columnOrder(rep)
	if len(cols) != 2 || cols[0] != "z" || cols[1] != "a" {
		t.Fatalf("cols: %v", cols)
	}
}
