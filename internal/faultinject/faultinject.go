// Package faultinject provides deterministic, seed-driven fault
// injectors for the simulator's chaos suite (DESIGN.md §8). Each
// injector implements sim.FaultInjector and perturbs a running system
// in one of three ways:
//
//   - queue-full back-pressure bursts: the LLC intake refuses ring
//     arrivals for a stretch of cycles (requests wait, nothing lost);
//   - DRAM bank stalls: the memory controllers skip whole cycles;
//   - dropped fills: read responses vanish on the way back (lost ring
//     slots), which breaks read conservation by design and livelocks
//     the requester — the scenario the progress watchdog exists for.
//
// Everything is a pure function of the spec, the seed, and the cycle
// sequence, so a faulted run is exactly as reproducible as a healthy
// one: same spec + same workload → byte-identical sim.Result.
//
// CorruptConfig covers the fourth fault class — malformed
// configuration — by mutating one field per seed; every corruption it
// produces must be caught by (sim.Config).Validate before a
// simulation starts.
package faultinject

import (
	"repro/internal/rng"
	"repro/internal/sim"
)

// Spec parameterizes an Injector. Zero-valued fields disable the
// corresponding fault, so Spec{} injects nothing.
type Spec struct {
	// Seed phase-shifts the periodic bursts so different seeds hit
	// different alignments of the same workload.
	Seed uint64

	// LLC intake back-pressure: every LLCHoldPeriod cycles the intake
	// refuses arrivals for LLCHoldLen cycles (0 period = off).
	LLCHoldPeriod, LLCHoldLen uint64

	// DRAM bank stalls: every DRAMStallPeriod cycles the controllers
	// skip DRAMStallLen cycles (0 period = off).
	DRAMStallPeriod, DRAMStallLen uint64

	// Dropped fills: every DropEveryNthFill-th read fill delivery is
	// lost (0 = off), up to MaxDrops total (0 = unlimited).
	DropEveryNthFill uint64
	MaxDrops         int
}

// Injector is a deterministic sim.FaultInjector built from a Spec.
type Injector struct {
	spec      Spec
	llcPhase  uint64
	dramPhase uint64
	fills     uint64
	drops     int

	// Burst/hold tallies, exported for test assertions.
	HeldLLC  uint64 // cycles the LLC intake was held
	HeldDRAM uint64 // cycles the DRAM controllers were held
}

var _ sim.WakeFaultInjector = (*Injector)(nil)

// New builds an injector; the burst phase offsets derive from
// Spec.Seed so runs with different seeds stress different cycle
// alignments, deterministically.
func New(spec Spec) *Injector {
	r := rng.New(spec.Seed)
	inj := &Injector{spec: spec}
	if spec.LLCHoldPeriod > 0 {
		inj.llcPhase = r.Uint64n(spec.LLCHoldPeriod)
	}
	if spec.DRAMStallPeriod > 0 {
		inj.dramPhase = r.Uint64n(spec.DRAMStallPeriod)
	}
	return inj
}

// Drops returns how many fills have been dropped so far.
func (inj *Injector) Drops() int { return inj.drops }

// HoldLLCIntake implements sim.FaultInjector.
func (inj *Injector) HoldLLCIntake(cycle uint64) bool {
	if inj.spec.LLCHoldPeriod == 0 {
		return false
	}
	if (cycle+inj.llcPhase)%inj.spec.LLCHoldPeriod < inj.spec.LLCHoldLen {
		inj.HeldLLC++
		return true
	}
	return false
}

// HoldDRAM implements sim.FaultInjector.
func (inj *Injector) HoldDRAM(cycle uint64) bool {
	if inj.spec.DRAMStallPeriod == 0 {
		return false
	}
	if (cycle+inj.dramPhase)%inj.spec.DRAMStallPeriod < inj.spec.DRAMStallLen {
		inj.HeldDRAM++
		return true
	}
	return false
}

// DropFill implements sim.FaultInjector. The decision counts fill
// deliveries, not cycles, so it is deterministic regardless of how
// many fills share a cycle.
func (inj *Injector) DropFill(uint64) bool {
	n := inj.spec.DropEveryNthFill
	if n == 0 {
		return false
	}
	if inj.spec.MaxDrops > 0 && inj.drops >= inj.spec.MaxDrops {
		return false
	}
	inj.fills++
	if inj.fills%n == 0 {
		inj.drops++
		return true
	}
	return false
}

// NextFault implements sim.WakeFaultInjector: the earliest cycle >
// now at which HoldLLCIntake or HoldDRAM may return true. Both bursts
// are pure functions of the cycle ((cycle+phase)%period < len), and
// calls that return false move no state, so the engine may elide them
// wholesale up to this bound. DropFill is consulted only when a fill
// is actually delivered — never during a quiescent stretch — so it
// does not constrain the bound.
func (inj *Injector) NextFault(now uint64) uint64 {
	next := ^uint64(0)
	burst := func(period, length, phase uint64) {
		if period == 0 || length == 0 {
			return
		}
		c := now + 1
		at := c
		if r := (c + phase) % period; r >= length {
			at = c + (period - r)
		}
		if at < next {
			next = at
		}
	}
	burst(inj.spec.LLCHoldPeriod, inj.spec.LLCHoldLen, inj.llcPhase)
	burst(inj.spec.DRAMStallPeriod, inj.spec.DRAMStallLen, inj.dramPhase)
	return next
}

// CorruptConfig returns cfg with one field deterministically broken
// by seed — the config-fuzz half of the chaos suite. Each corruption
// models a real operator mistake (zero scale, too many cores, a
// mistyped frequency) and must be rejected by cfg.Validate.
func CorruptConfig(cfg sim.Config, seed uint64) sim.Config {
	switch seed % 8 {
	case 0:
		cfg.Scale = 0
	case 1:
		cfg.NumCPUs = -1
	case 2:
		cfg.NumCPUs = 1 << 10
	case 3:
		cfg.CPUFreqHz = 0
	case 4:
		cfg.GPUFreqHz = -1e9
	case 5:
		cfg.GPUDivider = 0
	case 6:
		cfg.MeasureInstr = 0
	case 7:
		cfg.MaxCycles = 0
	}
	return cfg
}
