package faultinject

import (
	"fmt"
	"testing"

	"repro/internal/sim"
	"repro/internal/workloads"
)

// chaosCfg is a small mix configuration for the fault suite: big
// enough to exercise every queue, small enough to run under -race.
func chaosCfg() sim.Config {
	cfg := sim.DefaultConfig(256)
	cfg.WarmupInstr = 30_000
	cfg.WarmupFrames = 2
	cfg.MeasureInstr = 80_000
	cfg.MinFrames = 2
	cfg.MaxCycles = 20_000_000
	return cfg
}

// burstSpec injects back-pressure and DRAM stalls but loses nothing:
// faults that slow the system down must never break its invariants.
func burstSpec(seed uint64) Spec {
	return Spec{
		Seed:            seed,
		LLCHoldPeriod:   1_000,
		LLCHoldLen:      120,
		DRAMStallPeriod: 2_500,
		DRAMStallLen:    300,
	}
}

// TestInjectorDeterminism: two injectors built from the same spec
// make identical decisions for the same cycle/fill sequence.
func TestInjectorDeterminism(t *testing.T) {
	spec := burstSpec(7)
	spec.DropEveryNthFill = 3
	a, b := New(spec), New(spec)
	for cycle := uint64(1); cycle <= 200_000; cycle++ {
		if a.HoldLLCIntake(cycle) != b.HoldLLCIntake(cycle) {
			t.Fatalf("cycle %d: HoldLLCIntake diverged", cycle)
		}
		if a.HoldDRAM(cycle) != b.HoldDRAM(cycle) {
			t.Fatalf("cycle %d: HoldDRAM diverged", cycle)
		}
		if cycle%7 == 0 && a.DropFill(cycle) != b.DropFill(cycle) {
			t.Fatalf("cycle %d: DropFill diverged", cycle)
		}
	}
	if a.HeldLLC == 0 || a.HeldDRAM == 0 || a.Drops() == 0 {
		t.Fatalf("spec injected nothing: HeldLLC=%d HeldDRAM=%d Drops=%d",
			a.HeldLLC, a.HeldDRAM, a.Drops())
	}
	// Different seeds must shift the burst phase.
	c := New(burstSpec(99))
	same := true
	for cycle := uint64(1); cycle <= 10_000; cycle++ {
		if New(burstSpec(7)).llcPhase != c.llcPhase {
			same = false
			break
		}
	}
	if same {
		t.Error("seeds 7 and 99 produced identical burst phases")
	}
}

// TestConservationUnderBackPressure: with hold faults active (nothing
// lost), PR 2's read-conservation invariant must hold at every sampled
// cycle and traffic must still flow end to end.
func TestConservationUnderBackPressure(t *testing.T) {
	m := workloads.EvalMixes()[6] // M7
	cfg := chaosCfg()
	inj := New(burstSpec(13))
	cfg.Faults = inj
	game, apps := sim.MixWorkload(cfg, m)
	s := sim.NewSystem(cfg, game, apps)
	for i := 0; i < 300_000; i++ {
		s.Tick()
		if s.Cycle()%4096 != 0 {
			continue
		}
		if a := s.AuditReads(); !a.Conserved() {
			t.Fatalf("cycle %d: reads not conserved under back-pressure: injected %d != delivered %d + in-flight %d",
				s.Cycle(), a.Injected, a.Delivered, a.InFlight)
		}
	}
	if inj.HeldLLC == 0 || inj.HeldDRAM == 0 {
		t.Fatalf("faults never fired: HeldLLC=%d HeldDRAM=%d", inj.HeldLLC, inj.HeldDRAM)
	}
	if a := s.AuditReads(); a.Injected == 0 || a.Delivered == 0 {
		t.Fatalf("no read traffic flowed under faults: %+v", a)
	}
}

// TestMonotoneCountersUnderFaults: hold faults must not make any
// sampled counter move backwards.
func TestMonotoneCountersUnderFaults(t *testing.T) {
	cfg := chaosCfg()
	cfg.Policy = sim.PolicyThrottleCPUPrio
	cfg.Faults = New(burstSpec(29))
	game, apps := sim.MixWorkload(cfg, workloads.EvalMixes()[6])
	s := sim.NewSystem(cfg, game, apps)

	var lastCycle, lastGPU uint64
	lastRetired := make([]uint64, len(s.Cores))
	for i := 0; i < 300_000; i++ {
		s.Tick()
		if s.Cycle() <= lastCycle {
			t.Fatalf("system cycle did not advance: %d -> %d", lastCycle, s.Cycle())
		}
		lastCycle = s.Cycle()
		if s.Cycle()%4096 != 0 {
			continue
		}
		if g := s.GPU.Cycle(); g < lastGPU {
			t.Fatalf("GPU cycle went backwards: %d -> %d", lastGPU, g)
		} else {
			lastGPU = g
		}
		for ci, c := range s.Cores {
			if r := c.Retired(); r < lastRetired[ci] {
				t.Fatalf("core %d retired went backwards: %d -> %d", ci, lastRetired[ci], r)
			} else {
				lastRetired[ci] = r
			}
		}
	}
}

// TestFaultedRunDeterministic: a faulted run is as reproducible as a
// healthy one — two runs with fresh injectors from the same spec give
// byte-identical results.
func TestFaultedRunDeterministic(t *testing.T) {
	m := workloads.EvalMixes()[6]
	run := func() sim.Result {
		cfg := chaosCfg()
		cfg.Faults = New(burstSpec(41)) // fresh injector: they are stateful
		return sim.RunMix(cfg, m)
	}
	r1, r2 := run(), run()
	if fmt.Sprintf("%+v", r1) != fmt.Sprintf("%+v", r2) {
		t.Errorf("faulted run not deterministic:\n%+v\nvs\n%+v", r1, r2)
	}
	if r1.MeasuredCycles == 0 {
		t.Error("faulted run measured nothing")
	}
}

// TestWatchdogFiresUnderDroppedFills: losing every fill livelocks the
// whole mix (cores and GPU), and the progress watchdog must end the
// run deterministically instead of spinning to MaxCycles.
func TestWatchdogFiresUnderDroppedFills(t *testing.T) {
	m := workloads.EvalMixes()[6]
	run := func() sim.Result {
		cfg := chaosCfg()
		cfg.Faults = New(Spec{Seed: 3, DropEveryNthFill: 1})
		cfg.StallWindow = 50_000
		cfg.StallWindows = 2
		return sim.RunMix(cfg, m)
	}
	r := run()
	if !r.Stalled {
		t.Fatalf("dropped-fill livelock did not trip the watchdog: %+v", r)
	}
	if r.HitCap {
		t.Error("stalled run should bail before MaxCycles")
	}
	if r2 := run(); fmt.Sprintf("%+v", r) != fmt.Sprintf("%+v", r2) {
		t.Errorf("stalled verdict not deterministic:\n%+v\nvs\n%+v", r, r2)
	}
}

// TestDropFillBounded: MaxDrops caps the injected losses.
func TestDropFillBounded(t *testing.T) {
	inj := New(Spec{DropEveryNthFill: 1, MaxDrops: 5})
	dropped := 0
	for i := uint64(0); i < 100; i++ {
		if inj.DropFill(i) {
			dropped++
		}
	}
	if dropped != 5 || inj.Drops() != 5 {
		t.Errorf("dropped %d fills (Drops()=%d), want exactly 5", dropped, inj.Drops())
	}
}

// TestCorruptConfigRejected: every corruption CorruptConfig can
// produce must be caught by Validate before a simulation starts.
func TestCorruptConfigRejected(t *testing.T) {
	base := sim.DefaultConfig(64)
	if err := base.Validate(); err != nil {
		t.Fatalf("base config invalid: %v", err)
	}
	for seed := uint64(0); seed < 16; seed++ {
		bad := CorruptConfig(base, seed)
		if err := bad.Validate(); err == nil {
			t.Errorf("seed %d: corrupted config passed Validate: %+v", seed, bad)
		}
	}
}
