package ring

import (
	"reflect"
	"testing"
)

func TestNextWakeQuiescedAndBusy(t *testing.T) {
	r := New(8)
	if got := r.NextWake(41); got != ^uint64(0) {
		t.Fatalf("quiesced ring NextWake = %d, want never", got)
	}
	r.Send(Msg{From: 0, To: 3})
	if got := r.NextWake(41); got != 42 {
		t.Fatalf("busy ring NextWake = %d, want now+1", got)
	}
	drainAll(r, 100)
	if got := r.NextWake(99); got != ^uint64(0) {
		t.Fatalf("re-quiesced ring NextWake = %d, want never", got)
	}
}

// arrival is one delivered message with the tick it arrived on.
type arrival struct {
	tick    int
	node    NodeID
	payload any
}

func collect(r *Ring, ticks int) []arrival {
	var got []arrival
	for c := 0; c < ticks; c++ {
		r.Tick()
		for n := 0; n < r.Nodes(); n++ {
			for _, m := range r.Receive(NodeID(n)) {
				got = append(got, arrival{c, NodeID(n), m.Payload})
			}
		}
	}
	return got
}

// TestSkipMatchesIdleTicks: advancing a quiesced ring with Skip(n)
// must be indistinguishable from n empty Ticks — in particular the
// slot rotation must line up, so identical traffic injected afterward
// is delivered on identical ticks at identical nodes.
func TestSkipMatchesIdleTicks(t *testing.T) {
	for _, n := range []uint64{1, 7, 8, 13, 64, 1001} {
		a, b := New(8), New(8)
		for i := uint64(0); i < n; i++ {
			a.Tick()
		}
		b.Skip(n)
		for i := 0; i < 20; i++ {
			m := Msg{From: NodeID(i % 8), To: NodeID((i * 3) % 8), Payload: i}
			a.Send(m)
			b.Send(m)
		}
		ga, gb := collect(a, 200), collect(b, 200)
		if !reflect.DeepEqual(ga, gb) {
			t.Fatalf("skip %d: deliveries diverged:\nticked:  %v\nskipped: %v", n, ga, gb)
		}
		if !a.Quiesced() || !b.Quiesced() {
			t.Fatalf("skip %d: rings did not drain", n)
		}
	}
}
