package ring

import (
	"testing"
	"testing/quick"
)

func drainAll(r *Ring, maxCycles int) []Msg {
	var got []Msg
	for c := 0; c < maxCycles; c++ {
		r.Tick()
		for n := 0; n < r.Nodes(); n++ {
			got = append(got, r.Receive(NodeID(n))...)
		}
		if r.Quiesced() {
			break
		}
	}
	return got
}

func TestSingleDelivery(t *testing.T) {
	r := New(8)
	r.Send(Msg{From: 0, To: 3, Payload: "x"})
	got := drainAll(r, 100)
	if len(got) != 1 || got[0].Payload != "x" || got[0].To != 3 {
		t.Fatalf("got %+v", got)
	}
}

func TestShortestPathLatency(t *testing.T) {
	// 0 -> 3 on an 8-node ring is 3 hops clockwise; delivery should
	// take exactly 1 (inject) + 3 ticks... injection happens at the
	// end of a Tick, movement at the start, so arrival is on tick 4.
	r := New(8)
	r.Send(Msg{From: 0, To: 3})
	cycles := 0
	for ; cycles < 100; cycles++ {
		r.Tick()
		if len(r.Receive(3)) > 0 {
			break
		}
	}
	if cycles+1 != 4 {
		t.Fatalf("delivery took %d ticks, want 4", cycles+1)
	}
	// 0 -> 6 is 2 hops counter-clockwise.
	r2 := New(8)
	r2.Send(Msg{From: 0, To: 6})
	cycles = 0
	for ; cycles < 100; cycles++ {
		r2.Tick()
		if len(r2.Receive(6)) > 0 {
			break
		}
	}
	if cycles+1 != 3 {
		t.Fatalf("ccw delivery took %d ticks, want 3", cycles+1)
	}
}

func TestLocalTurnaround(t *testing.T) {
	r := New(4)
	r.Send(Msg{From: 2, To: 2, Payload: 7})
	got := r.Receive(2)
	if len(got) != 1 || got[0].Payload != 7 {
		t.Fatalf("local message not delivered immediately: %v", got)
	}
}

func TestContentionAllDelivered(t *testing.T) {
	r := New(8)
	const n = 50
	for i := 0; i < n; i++ {
		r.Send(Msg{From: NodeID(i % 8), To: NodeID((i + 3) % 8), Payload: i})
	}
	got := drainAll(r, 1000)
	if len(got) != n {
		t.Fatalf("delivered %d of %d", len(got), n)
	}
	seen := map[int]bool{}
	for _, m := range got {
		seen[m.Payload.(int)] = true
	}
	if len(seen) != n {
		t.Fatalf("duplicate or lost payloads: %d unique", len(seen))
	}
}

// The delivery path must be allocation-free in steady state: Receive
// recycles each node's previous buffer instead of abandoning it, so
// the per-cycle Send/Tick/Receive pattern of System.Tick settles onto
// two backing arrays per node.
func TestReceiveSteadyStateNoAllocs(t *testing.T) {
	r := New(4)
	cycle := func() {
		for i := 0; i < 4; i++ {
			r.Send(Msg{From: NodeID(i), To: NodeID((i + 1) % 4)})
		}
		r.Tick()
		for i := 0; i < 4; i++ {
			r.Receive(NodeID(i))
		}
	}
	for i := 0; i < 16; i++ { // warm both buffers of every node
		cycle()
	}
	if avg := testing.AllocsPerRun(100, cycle); avg != 0 {
		t.Fatalf("steady-state Send/Tick/Receive allocates %.1f allocs/cycle, want 0", avg)
	}
}

// A slice returned by Receive stays valid until the next Receive on
// the same node — the documented double-buffer contract.
func TestReceiveBufferValidUntilNextReceive(t *testing.T) {
	r := New(4)
	r.Send(Msg{From: 0, To: 1, Payload: "a"})
	got := drainAll(r, 50)
	if len(got) != 1 || got[0].Payload != "a" {
		t.Fatalf("setup: %v", got)
	}
	r.Send(Msg{From: 0, To: 1, Payload: "b"})
	var first []Msg
	for c := 0; c < 50 && len(first) == 0; c++ {
		r.Tick()
		first = r.Receive(1)
	}
	if len(first) != 1 || first[0].Payload != "b" {
		t.Fatalf("second delivery: %v", first)
	}
	// No further Receive(1) has happened: the slice must be intact
	// even after more traffic to other nodes.
	r.Send(Msg{From: 2, To: 3, Payload: "c"})
	for c := 0; c < 50; c++ {
		r.Tick()
		r.Receive(3)
	}
	if first[0].Payload != "b" {
		t.Fatalf("buffer clobbered before next Receive: %v", first)
	}
}

func TestBadEndpointsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("no panic on bad endpoint")
		}
	}()
	New(4).Send(Msg{From: 0, To: 9})
}

// Property: every message injected on a ring of size n (2..12) is
// delivered exactly once, to the right node, within a bounded number
// of cycles.
func TestQuickAllMessagesDelivered(t *testing.T) {
	f := func(pairs []uint16, sz uint8) bool {
		n := 2 + int(sz%11)
		r := New(n)
		type key struct {
			from, to NodeID
			seq      int
		}
		want := map[key]bool{}
		for i, p := range pairs {
			from := NodeID(int(p) % n)
			to := NodeID(int(p>>4) % n)
			k := key{from, to, i}
			r.Send(Msg{From: from, To: to, Payload: k})
			want[k] = true
		}
		budget := 10 * (len(pairs) + n + 1)
		for c := 0; c < budget; c++ {
			r.Tick()
			for node := 0; node < n; node++ {
				for _, m := range r.Receive(NodeID(node)) {
					k := m.Payload.(key)
					if !want[k] || m.To != NodeID(node) {
						return false // duplicate or misdelivered
					}
					delete(want, k)
				}
			}
			if len(want) == 0 {
				break
			}
		}
		return len(want) == 0 && r.Quiesced()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
