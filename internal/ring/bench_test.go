package ring

import "testing"

// BenchmarkTickReceive measures the steady-state cost of one ring
// cycle on a 6-node ring (the 4-CPU + GPU + LLC evaluation shape)
// with every node sending one message per cycle and draining its
// deliveries — the exact pattern System.Tick drives every CPU cycle.
// The delivered-queue recycling keeps this at 0 allocs/op.
func BenchmarkTickReceive(b *testing.B) {
	const n = 6
	r := New(n)
	// Warm the per-node buffers so steady state is measured.
	for c := 0; c < 4*n; c++ {
		for i := 0; i < n; i++ {
			r.Send(Msg{From: NodeID(i), To: NodeID((i + 1) % n)})
		}
		r.Tick()
		for i := 0; i < n; i++ {
			r.Receive(NodeID(i))
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for k := 0; k < b.N; k++ {
		for i := 0; i < n; i++ {
			r.Send(Msg{From: NodeID(i), To: NodeID((i + 1) % n)})
		}
		r.Tick()
		for i := 0; i < n; i++ {
			r.Receive(NodeID(i))
		}
	}
}
