package ring

// Mailbox is a staging buffer for ring sends made off the conductor
// goroutine. The parallel tick engine gives each domain (core, GPU)
// its own Mailbox: during a parallel phase the domain's Issue hook
// posts here instead of calling Ring.Send, and at the phase barrier
// the conductor replays every mailbox into the ring in a fixed domain
// order. Because the ring keeps one injection queue per source node
// and a domain only ever posts from its own node, the replay order
// across domains cannot change ring behavior — but fixing it anyway
// makes the merge audit-trivially deterministic.
//
// A Mailbox is owned by exactly one goroutine at a time; the engine's
// barrier provides the happens-before edge between the posting worker
// and the flushing conductor.
type Mailbox struct {
	q []Msg
}

// Post stages one message for the next flush.
func (mb *Mailbox) Post(m Msg) { mb.q = append(mb.q, m) }

// Len returns the number of staged messages.
func (mb *Mailbox) Len() int { return len(mb.q) }

// Reserve pre-sizes the buffer so steady-state staging does not
// allocate.
func (mb *Mailbox) Reserve(n int) {
	if cap(mb.q) < n {
		q := make([]Msg, len(mb.q), n)
		copy(q, mb.q)
		mb.q = q
	}
}

// FlushTo replays the staged sends into the ring in post order and
// clears the buffer, dropping payload references for the GC.
func (mb *Mailbox) FlushTo(r *Ring) {
	for i := range mb.q {
		r.Send(mb.q[i])
		mb.q[i] = Msg{}
	}
	mb.q = mb.q[:0]
}
