// Package ring models the bidirectional ring interconnect of the
// heterogeneous CMP (Table I: bi-directional ring, single-cycle hop).
//
// The ring is slotted: each direction has one slot per node, and all
// slots advance one hop per cycle. A node injects a message into a
// passing empty slot of the direction with the shorter path to the
// destination (falling back to the other direction when its slot is
// free and the preferred one is not, to avoid pathological blocking).
// Messages are removed when the slot passes their destination.
//
// Agents (CPU L2s, the GPU memory interface, the LLC, the two memory
// controllers) attach to nodes and exchange ring.Msg values; delivery
// happens through a per-node output queue drained by the owner.
package ring

import (
	"fmt"

	"repro/internal/obs"
)

// NodeID identifies a ring stop.
type NodeID int

// Msg is one transfer on the ring. Payload is owned by the endpoints;
// the ring only moves it.
type Msg struct {
	From, To NodeID
	Payload  any
	// injected records the cycle of injection, for latency stats.
	injected uint64
}

type slot struct {
	valid bool
	msg   Msg
}

// inQueue is a FIFO injection queue that pops by advancing a head
// index instead of re-slicing, so the backing array is reused (and
// fully reclaimed on drain) rather than shifted and pinned.
type inQueue struct {
	q    []Msg
	head int
}

func (iq *inQueue) push(m Msg) { iq.q = append(iq.q, m) }

func (iq *inQueue) pending() int { return len(iq.q) - iq.head }

func (iq *inQueue) front() Msg { return iq.q[iq.head] }

func (iq *inQueue) pop() {
	iq.q[iq.head] = Msg{} // drop payload reference for GC
	iq.head++
	if iq.head == len(iq.q) {
		iq.q = iq.q[:0]
		iq.head = 0
	}
}

// Ring is a bidirectional slotted ring. Slot movement is virtual:
// instead of copying the slot arrays every cycle, a rotation offset
// maps node positions onto the fixed arrays (slot j sits at node
// (j+t) mod n clockwise after t ticks), keeping Tick O(occupied).
type Ring struct {
	n     int
	shift int    // ticks elapsed mod n
	cw    []slot // clockwise-moving slots (virtual rotation +1/tick)
	ccw   []slot // counter-clockwise-moving slots (-1/tick)

	inq   []inQueue // per-node injection queues (unbounded; sources self-limit via MSHRs)
	outq  [][]Msg   // per-node delivery queues
	spare [][]Msg   // recycled delivery buffers (double-buffer per node)

	// Occupancy counters keep Tick and Quiesced O(live traffic):
	// occ counts valid slots, inqTotal queued injections, outTotal
	// delivered-but-undrained messages.
	occ      int
	inqTotal int
	outTotal int

	cycle uint64

	// Stats.
	Injected   uint64
	Delivered  uint64
	TotalHops  uint64
	TotalWait  uint64 // cycles messages spent in injection queues
	MaxInQueue int
}

// New creates a ring with n nodes. n must be at least 2.
func New(n int) *Ring {
	if n < 2 {
		panic(fmt.Sprintf("ring: need >=2 nodes, got %d", n))
	}
	r := &Ring{
		n:     n,
		cw:    make([]slot, n),
		ccw:   make([]slot, n),
		inq:   make([]inQueue, n),
		outq:  make([][]Msg, n),
		spare: make([][]Msg, n),
	}
	return r
}

// Nodes returns the node count.
func (r *Ring) Nodes() int { return r.n }

// Send enqueues a message for injection at msg.From.
func (r *Ring) Send(msg Msg) {
	if int(msg.From) < 0 || int(msg.From) >= r.n || int(msg.To) < 0 || int(msg.To) >= r.n {
		panic(fmt.Sprintf("ring: bad endpoints %d->%d on %d-node ring", msg.From, msg.To, r.n))
	}
	if msg.From == msg.To {
		// Local turnaround: deliver next Tick without consuming a slot.
		r.outq[msg.To] = append(r.outq[msg.To], msg)
		r.outTotal++
		r.Delivered++
		return
	}
	msg.injected = r.cycle
	iq := &r.inq[msg.From]
	iq.push(msg)
	r.inqTotal++
	if iq.pending() > r.MaxInQueue {
		r.MaxInQueue = iq.pending()
	}
}

// Receive drains and returns all messages delivered to node. The
// returned slice is only valid until the next Receive on the same
// node: the ring keeps two delivery buffers per node and alternates
// between them, so steady-state delivery does not allocate.
func (r *Ring) Receive(node NodeID) []Msg {
	q := r.outq[node]
	if len(q) == 0 {
		return nil
	}
	r.outq[node] = r.spare[node][:0]
	r.spare[node] = q
	r.outTotal -= len(q)
	return q
}

// dist returns hops from a to b in the clockwise direction.
func (r *Ring) cwDist(a, b NodeID) int {
	d := int(b) - int(a)
	if d < 0 {
		d += r.n
	}
	return d
}

// cwSlot returns the clockwise slot currently at node i.
func (r *Ring) cwSlot(i int) *slot {
	j := i - r.shift
	j %= r.n
	if j < 0 {
		j += r.n
	}
	return &r.cw[j]
}

// ccwSlot returns the counter-clockwise slot currently at node i.
func (r *Ring) ccwSlot(i int) *slot {
	j := (i + r.shift) % r.n
	return &r.ccw[j]
}

// Tick advances all slots one hop (virtually), delivers arrivals,
// then injects queued messages into freed slots.
func (r *Ring) Tick() {
	r.cycle++
	r.shift++
	if r.shift >= r.n {
		r.shift = 0
	}

	// Deliver: walk the slot arrays directly (cw slot j sits at node
	// (j+shift) mod n, ccw slot j at (j-shift) mod n), skipping empty
	// slots without per-node modular lookups. Every clockwise delivery
	// precedes the counter-clockwise ones, which matches the naive
	// per-node loop's cw-then-ccw order: a node sees at most one slot
	// per direction per cycle, and deliveries to different nodes land
	// in disjoint output queues.
	if r.occ > 0 {
		for j := range r.cw {
			s := &r.cw[j]
			if !s.valid {
				continue
			}
			node := j + r.shift
			if node >= r.n {
				node -= r.n
			}
			if s.msg.To == NodeID(node) {
				r.deliver(s.msg)
				s.valid = false
				r.occ--
			}
		}
		for j := range r.ccw {
			s := &r.ccw[j]
			if !s.valid {
				continue
			}
			node := j - r.shift
			if node < 0 {
				node += r.n
			}
			if s.msg.To == NodeID(node) {
				r.deliver(s.msg)
				s.valid = false
				r.occ--
			}
		}
	}

	// Inject. Preferred direction is the shorter path; if that slot
	// is occupied but the other direction's slot is free, take it.
	for i := 0; r.inqTotal > 0 && i < r.n; i++ {
		for iq := &r.inq[i]; iq.pending() > 0; {
			msg := iq.front()
			d := r.cwDist(NodeID(i), msg.To)
			preferCW := d <= r.n-d
			cs, cc := r.cwSlot(i), r.ccwSlot(i)
			var s *slot
			switch {
			case preferCW && !cs.valid:
				s = cs
			case !preferCW && !cc.valid:
				s = cc
			case !cs.valid:
				s = cs
			case !cc.valid:
				s = cc
			}
			if s == nil {
				break // both slots busy this cycle; retry next Tick
			}
			s.valid = true
			s.msg = msg
			iq.pop()
			r.occ++
			r.inqTotal--
			r.Injected++
			r.TotalWait += r.cycle - msg.injected
		}
	}
}

func (r *Ring) deliver(m Msg) {
	r.outq[m.To] = append(r.outq[m.To], m)
	r.outTotal++
	r.Delivered++
	hops := r.cwDist(m.From, m.To)
	if back := r.n - hops; back < hops {
		hops = back
	}
	r.TotalHops += uint64(hops)
}

// CountPending returns the number of messages matching pred that are
// anywhere inside the ring: awaiting injection, riding a slot, or
// delivered but not yet drained by Receive. The observability audit
// uses it for request-conservation checks.
func (r *Ring) CountPending(pred func(Msg) bool) int {
	n := 0
	for i := 0; i < r.n; i++ {
		iq := &r.inq[i]
		for _, m := range iq.q[iq.head:] {
			if pred(m) {
				n++
			}
		}
		for _, m := range r.outq[i] {
			if pred(m) {
				n++
			}
		}
		if s := &r.cw[i]; s.valid && pred(s.msg) {
			n++
		}
		if s := &r.ccw[i]; s.valid && pred(s.msg) {
			n++
		}
	}
	return n
}

// RegisterObs registers the ring's traffic counters and in-flight
// occupancy with the observability registry.
func (r *Ring) RegisterObs(reg *obs.Registry) {
	reg.Counter("ring.injected", func() uint64 { return r.Injected })
	reg.Counter("ring.delivered", func() uint64 { return r.Delivered })
	reg.Counter("ring.hops", func() uint64 { return r.TotalHops })
	reg.Gauge("ring.inflight", func() float64 {
		return float64(r.CountPending(func(Msg) bool { return true }))
	})
}

// NextWake implements the engine's next-wake contract (DESIGN.md §9):
// the earliest future cycle at which the ring can change state.
// now+1 means busy; a quiesced ring has no self-induced events at all
// (slot rotation over empty slots is unobservable), so it never wakes
// on its own.
func (r *Ring) NextWake(now uint64) uint64 {
	if r.Quiesced() {
		return ^uint64(0)
	}
	return now + 1
}

// Skip advances a quiesced ring n cycles at once: rotating empty
// slots only moves the clock and the virtual rotation offset. Callers
// must ensure Quiesced() held for the whole range (the sim engine
// does, via NextWake).
func (r *Ring) Skip(n uint64) {
	r.cycle += n
	r.shift = int((uint64(r.shift) + n) % uint64(r.n))
}

// Quiesced reports whether no message is in flight or queued.
func (r *Ring) Quiesced() bool {
	return r.occ == 0 && r.inqTotal == 0 && r.outTotal == 0
}
