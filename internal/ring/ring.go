// Package ring models the bidirectional ring interconnect of the
// heterogeneous CMP (Table I: bi-directional ring, single-cycle hop).
//
// The ring is slotted: each direction has one slot per node, and all
// slots advance one hop per cycle. A node injects a message into a
// passing empty slot of the direction with the shorter path to the
// destination (falling back to the other direction when its slot is
// free and the preferred one is not, to avoid pathological blocking).
// Messages are removed when the slot passes their destination.
//
// Agents (CPU L2s, the GPU memory interface, the LLC, the two memory
// controllers) attach to nodes and exchange ring.Msg values; delivery
// happens through a per-node output queue drained by the owner.
package ring

import "fmt"

// NodeID identifies a ring stop.
type NodeID int

// Msg is one transfer on the ring. Payload is owned by the endpoints;
// the ring only moves it.
type Msg struct {
	From, To NodeID
	Payload  any
	// injected records the cycle of injection, for latency stats.
	injected uint64
}

type slot struct {
	valid bool
	msg   Msg
}

// Ring is a bidirectional slotted ring. Slot movement is virtual:
// instead of copying the slot arrays every cycle, a rotation offset
// maps node positions onto the fixed arrays (slot j sits at node
// (j+t) mod n clockwise after t ticks), keeping Tick O(occupied).
type Ring struct {
	n     int
	shift int    // ticks elapsed mod n
	cw    []slot // clockwise-moving slots (virtual rotation +1/tick)
	ccw   []slot // counter-clockwise-moving slots (-1/tick)

	inq  [][]Msg // per-node injection queues (unbounded; sources self-limit via MSHRs)
	outq [][]Msg // per-node delivery queues

	cycle uint64

	// Stats.
	Injected   uint64
	Delivered  uint64
	TotalHops  uint64
	TotalWait  uint64 // cycles messages spent in injection queues
	MaxInQueue int
}

// New creates a ring with n nodes. n must be at least 2.
func New(n int) *Ring {
	if n < 2 {
		panic(fmt.Sprintf("ring: need >=2 nodes, got %d", n))
	}
	r := &Ring{
		n:    n,
		cw:   make([]slot, n),
		ccw:  make([]slot, n),
		inq:  make([][]Msg, n),
		outq: make([][]Msg, n),
	}
	return r
}

// Nodes returns the node count.
func (r *Ring) Nodes() int { return r.n }

// Send enqueues a message for injection at msg.From.
func (r *Ring) Send(msg Msg) {
	if int(msg.From) < 0 || int(msg.From) >= r.n || int(msg.To) < 0 || int(msg.To) >= r.n {
		panic(fmt.Sprintf("ring: bad endpoints %d->%d on %d-node ring", msg.From, msg.To, r.n))
	}
	if msg.From == msg.To {
		// Local turnaround: deliver next Tick without consuming a slot.
		r.outq[msg.To] = append(r.outq[msg.To], msg)
		r.Delivered++
		return
	}
	msg.injected = r.cycle
	r.inq[msg.From] = append(r.inq[msg.From], msg)
	if len(r.inq[msg.From]) > r.MaxInQueue {
		r.MaxInQueue = len(r.inq[msg.From])
	}
}

// Receive drains and returns all messages delivered to node.
func (r *Ring) Receive(node NodeID) []Msg {
	q := r.outq[node]
	r.outq[node] = nil
	return q
}

// dist returns hops from a to b in the clockwise direction.
func (r *Ring) cwDist(a, b NodeID) int {
	d := int(b) - int(a)
	if d < 0 {
		d += r.n
	}
	return d
}

// cwSlot returns the clockwise slot currently at node i.
func (r *Ring) cwSlot(i int) *slot {
	j := i - r.shift
	j %= r.n
	if j < 0 {
		j += r.n
	}
	return &r.cw[j]
}

// ccwSlot returns the counter-clockwise slot currently at node i.
func (r *Ring) ccwSlot(i int) *slot {
	j := (i + r.shift) % r.n
	return &r.ccw[j]
}

// Tick advances all slots one hop (virtually), delivers arrivals,
// then injects queued messages into freed slots.
func (r *Ring) Tick() {
	r.cycle++
	r.shift++
	if r.shift >= r.n {
		r.shift = 0
	}

	// Deliver.
	for i := 0; i < r.n; i++ {
		if s := r.cwSlot(i); s.valid && s.msg.To == NodeID(i) {
			r.deliver(s.msg)
			s.valid = false
		}
		if s := r.ccwSlot(i); s.valid && s.msg.To == NodeID(i) {
			r.deliver(s.msg)
			s.valid = false
		}
	}

	// Inject. Preferred direction is the shorter path; if that slot
	// is occupied but the other direction's slot is free, take it.
	for i := 0; i < r.n; i++ {
		for len(r.inq[i]) > 0 {
			msg := r.inq[i][0]
			d := r.cwDist(NodeID(i), msg.To)
			preferCW := d <= r.n-d
			cs, cc := r.cwSlot(i), r.ccwSlot(i)
			var s *slot
			switch {
			case preferCW && !cs.valid:
				s = cs
			case !preferCW && !cc.valid:
				s = cc
			case !cs.valid:
				s = cs
			case !cc.valid:
				s = cc
			}
			if s == nil {
				break // both slots busy this cycle; retry next Tick
			}
			s.valid = true
			s.msg = msg
			r.inq[i] = r.inq[i][1:]
			r.Injected++
			r.TotalWait += r.cycle - msg.injected
		}
	}
}

func (r *Ring) deliver(m Msg) {
	r.outq[m.To] = append(r.outq[m.To], m)
	r.Delivered++
	hops := r.cwDist(m.From, m.To)
	if back := r.n - hops; back < hops {
		hops = back
	}
	r.TotalHops += uint64(hops)
}

// Quiesced reports whether no message is in flight or queued.
func (r *Ring) Quiesced() bool {
	for i := 0; i < r.n; i++ {
		if r.cw[i].valid || r.ccw[i].valid || len(r.inq[i]) > 0 || len(r.outq[i]) > 0 {
			return false
		}
	}
	return true
}
