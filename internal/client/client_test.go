package client

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/exp"
	"repro/internal/server"
)

// fastClient returns a client with waits compressed for tests.
func fastClient(url string) *Client {
	c := New(url)
	c.MaxAttempts = 6
	c.BaseBackoff = time.Millisecond
	c.MaxBackoff = 5 * time.Millisecond
	c.PollWait = 10 * time.Millisecond
	return c
}

// TestSubmitRetriesShedThenAccepts: 429s are retried until the server
// admits the task; the retry count is visible to the script.
func TestSubmitRetriesShedThenAccepts(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := calls.Add(1)
		w.Header().Set("Content-Type", "application/json")
		if n < 3 {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
			json.NewEncoder(w).Encode(server.StatusResponse{Error: "queue full", RetryAfterMS: 1})
			return
		}
		w.WriteHeader(http.StatusAccepted)
		json.NewEncoder(w).Encode(server.StatusResponse{Key: "cpu/462", Status: server.StatusQueued})
	}))
	defer ts.Close()

	sr, err := fastClient(ts.URL).Submit(context.Background(), exp.CPUTaskSpec(462), 0)
	if err != nil {
		t.Fatal(err)
	}
	if sr.Status != server.StatusQueued || calls.Load() != 3 {
		t.Fatalf("status %q after %d calls, want queued after 3", sr.Status, calls.Load())
	}
}

// TestSubmitValidationIsPermanent: a 400 is not retried.
func TestSubmitValidationIsPermanent(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusBadRequest)
		json.NewEncoder(w).Encode(server.StatusResponse{Error: "exp: unknown task kind"})
	}))
	defer ts.Close()

	_, err := fastClient(ts.URL).Submit(context.Background(), exp.TaskSpec{Kind: "bogus"}, 0)
	var pe *PermanentError
	if !asPermanent(err, &pe) || pe.Code != http.StatusBadRequest {
		t.Fatalf("err = %v, want PermanentError(400)", err)
	}
	if calls.Load() != 1 {
		t.Fatalf("400 was retried %d times", calls.Load())
	}
}

// asPermanent is errors.As without importing errors twice in tests.
func asPermanent(err error, target **PermanentError) bool {
	pe, ok := err.(*PermanentError)
	if ok {
		*target = pe
	}
	return ok
}

// TestRunResubmitsAfterRestart: a 404 from a post-restart server makes
// Run resubmit, and the second submission's eventual result is
// returned — the convergence path the chaos test exercises end to end.
func TestRunResubmitsAfterRestart(t *testing.T) {
	var submits, statuses atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		switch {
		case r.Method == http.MethodPost:
			submits.Add(1)
			w.WriteHeader(http.StatusAccepted)
			json.NewEncoder(w).Encode(server.StatusResponse{Key: "cpu/462", Status: server.StatusQueued})
		case r.URL.Path == "/v1/results/cpu/462":
			json.NewEncoder(w).Encode(server.ResultResponse{Key: "cpu/462", TaskResult: exp.TaskResult{IPC: 1.5}})
		default: // status
			n := statuses.Add(1)
			if n == 1 {
				// "Restarted" server: no memory of the run.
				w.WriteHeader(http.StatusNotFound)
				json.NewEncoder(w).Encode(server.StatusResponse{Key: "cpu/462", Error: "unknown run"})
				return
			}
			json.NewEncoder(w).Encode(server.StatusResponse{Key: "cpu/462", Status: server.StatusDone})
		}
	}))
	defer ts.Close()

	res, err := fastClient(ts.URL).Run(context.Background(), exp.CPUTaskSpec(462), 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.IPC != 1.5 {
		t.Fatalf("IPC = %v, want 1.5", res.IPC)
	}
	if submits.Load() != 2 {
		t.Fatalf("submitted %d times, want 2 (initial + post-404 resubmit)", submits.Load())
	}
}
