package client

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/exp"
	"repro/internal/server"
)

// fastClient returns a client with waits compressed for tests.
func fastClient(url string) *Client {
	c := New(url)
	c.MaxAttempts = 6
	c.BaseBackoff = time.Millisecond
	c.MaxBackoff = 5 * time.Millisecond
	c.PollWait = 10 * time.Millisecond
	return c
}

// TestSubmitRetriesShedThenAccepts: 429s are retried until the server
// admits the task; the retry count is visible to the script.
func TestSubmitRetriesShedThenAccepts(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := calls.Add(1)
		w.Header().Set("Content-Type", "application/json")
		if n < 3 {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
			json.NewEncoder(w).Encode(server.StatusResponse{Error: "queue full", RetryAfterMS: 1})
			return
		}
		w.WriteHeader(http.StatusAccepted)
		json.NewEncoder(w).Encode(server.StatusResponse{Key: "cpu/462", Status: server.StatusQueued})
	}))
	defer ts.Close()

	sr, err := fastClient(ts.URL).Submit(context.Background(), exp.CPUTaskSpec(462), 0)
	if err != nil {
		t.Fatal(err)
	}
	if sr.Status != server.StatusQueued || calls.Load() != 3 {
		t.Fatalf("status %q after %d calls, want queued after 3", sr.Status, calls.Load())
	}
}

// TestSubmitValidationIsPermanent: a 400 is not retried.
func TestSubmitValidationIsPermanent(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusBadRequest)
		json.NewEncoder(w).Encode(server.StatusResponse{Error: "exp: unknown task kind"})
	}))
	defer ts.Close()

	_, err := fastClient(ts.URL).Submit(context.Background(), exp.TaskSpec{Kind: "bogus"}, 0)
	var pe *PermanentError
	if !asPermanent(err, &pe) || pe.Code != http.StatusBadRequest {
		t.Fatalf("err = %v, want PermanentError(400)", err)
	}
	if calls.Load() != 1 {
		t.Fatalf("400 was retried %d times", calls.Load())
	}
}

// asPermanent is errors.As without importing errors twice in tests.
func asPermanent(err error, target **PermanentError) bool {
	pe, ok := err.(*PermanentError)
	if ok {
		*target = pe
	}
	return ok
}

// TestRunResubmitsAfterRestart: a 404 from a post-restart server makes
// Run resubmit, and the second submission's eventual result is
// returned — the convergence path the chaos test exercises end to end.
func TestRunResubmitsAfterRestart(t *testing.T) {
	var submits, statuses atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		switch {
		case r.Method == http.MethodPost:
			submits.Add(1)
			w.WriteHeader(http.StatusAccepted)
			json.NewEncoder(w).Encode(server.StatusResponse{Key: "cpu/462", Status: server.StatusQueued})
		case r.URL.Path == "/v1/results/cpu/462":
			json.NewEncoder(w).Encode(server.ResultResponse{Key: "cpu/462", TaskResult: exp.TaskResult{IPC: 1.5}})
		default: // status
			n := statuses.Add(1)
			if n == 1 {
				// "Restarted" server: no memory of the run.
				w.WriteHeader(http.StatusNotFound)
				json.NewEncoder(w).Encode(server.StatusResponse{Key: "cpu/462", Error: "unknown run"})
				return
			}
			json.NewEncoder(w).Encode(server.StatusResponse{Key: "cpu/462", Status: server.StatusDone})
		}
	}))
	defer ts.Close()

	res, err := fastClient(ts.URL).Run(context.Background(), exp.CPUTaskSpec(462), 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.IPC != 1.5 {
		t.Fatalf("IPC = %v, want 1.5", res.IPC)
	}
	if submits.Load() != 2 {
		t.Fatalf("submitted %d times, want 2 (initial + post-404 resubmit)", submits.Load())
	}
}

// TestBackoffJitterBounds: the computed delay always lands in
// [d/2, d] of the un-jittered exponential (capped at MaxBackoff), and
// a server Retry-After hint larger than the exponential raises the
// floor to hint/2 — the half-to-full jitter contract that keeps a
// retrying fleet from re-arriving in lockstep.
func TestBackoffJitterBounds(t *testing.T) {
	c := New("http://unused")
	c.BaseBackoff = 100 * time.Millisecond
	c.MaxBackoff = 2 * time.Second
	for attempt := 0; attempt < 12; attempt++ {
		want := c.BaseBackoff << attempt
		if want > c.MaxBackoff || want <= 0 {
			want = c.MaxBackoff
		}
		for i := 0; i < 200; i++ {
			got := c.Backoff(attempt, 0)
			if got < want/2 || got > want {
				t.Fatalf("attempt %d: backoff %v outside [%v, %v]", attempt, got, want/2, want)
			}
		}
	}
	// A Retry-After hint beyond the exponential dominates it.
	hint := 1500 * time.Millisecond
	for i := 0; i < 200; i++ {
		got := c.Backoff(0, hint)
		if got < hint/2 || got > hint {
			t.Fatalf("hinted backoff %v outside [%v, %v]", got, hint/2, hint)
		}
	}
	// A hint below the exponential does not shrink it.
	for i := 0; i < 200; i++ {
		if got := c.Backoff(4, time.Millisecond); got < (c.BaseBackoff<<4)/2 {
			t.Fatalf("small hint shrank backoff to %v", got)
		}
	}
}

// TestRetryAfterHonored: the serverward Retry-After hint (body form,
// as the admission layer sends it) stretches the sleep between
// retries beyond the exponential schedule — observed via wall clock
// across a 429 with a hint much larger than BaseBackoff.
func TestRetryAfterHonored(t *testing.T) {
	const hintMS = 150
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := calls.Add(1)
		w.Header().Set("Content-Type", "application/json")
		if n == 1 {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
			json.NewEncoder(w).Encode(server.StatusResponse{Error: "queue full", RetryAfterMS: hintMS})
			return
		}
		w.WriteHeader(http.StatusAccepted)
		json.NewEncoder(w).Encode(server.StatusResponse{Key: "cpu/462", Status: server.StatusQueued})
	}))
	defer ts.Close()

	c := fastClient(ts.URL) // BaseBackoff 1ms: any real wait comes from the hint
	start := time.Now()
	if _, err := c.Submit(context.Background(), exp.CPUTaskSpec(462), 0); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < hintMS/2*time.Millisecond {
		t.Fatalf("retried after %v, want >= %v (half the Retry-After hint)", elapsed, hintMS/2*time.Millisecond)
	}
	if calls.Load() != 2 {
		t.Fatalf("server saw %d calls, want 2", calls.Load())
	}
}

// TestDeadlineExceededPropagates: a context that expires mid-retry
// surfaces as the context's own error from Submit and Run — not as a
// gave-up-after-N wrapper — so callers can tell budget exhaustion from
// server failure.
func TestDeadlineExceededPropagates(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusTooManyRequests)
		json.NewEncoder(w).Encode(server.StatusResponse{Error: "queue full", RetryAfterMS: 50})
	}))
	defer ts.Close()

	c := fastClient(ts.URL)
	c.MaxAttempts = 1000
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if _, err := c.Submit(ctx, exp.CPUTaskSpec(462), 0); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Submit error = %v, want context.DeadlineExceeded", err)
	}
	ctx2, cancel2 := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel2()
	if _, err := c.Run(ctx2, exp.CPUTaskSpec(462), 0); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Run error = %v, want context.DeadlineExceeded", err)
	}
}

// TestRunResubmitsOn404AfterRestartOnlyOnce: the post-restart 404 path
// resubmits exactly once per 404 (no storm), and a server that then
// answers done serves the result without a third submission.
func TestRunResubmitsOn404AfterRestartOnlyOnce(t *testing.T) {
	var submits atomic.Int64
	var notFounds atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		switch {
		case r.Method == http.MethodPost:
			submits.Add(1)
			w.WriteHeader(http.StatusAccepted)
			json.NewEncoder(w).Encode(server.StatusResponse{Key: "cpu/462", Status: server.StatusQueued})
		case r.URL.Path == "/v1/results/cpu/462":
			json.NewEncoder(w).Encode(server.ResultResponse{Key: "cpu/462", TaskResult: exp.TaskResult{IPC: 2.25}})
		default:
			// First two status polls 404 ("restarted twice"), then done.
			if notFounds.Load() < 2 {
				notFounds.Add(1)
				w.WriteHeader(http.StatusNotFound)
				json.NewEncoder(w).Encode(server.StatusResponse{Key: "cpu/462", Error: "unknown run"})
				return
			}
			json.NewEncoder(w).Encode(server.StatusResponse{Key: "cpu/462", Status: server.StatusDone})
		}
	}))
	defer ts.Close()

	res, err := fastClient(ts.URL).Run(context.Background(), exp.CPUTaskSpec(462), 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.IPC != 2.25 {
		t.Fatalf("IPC = %v, want 2.25", res.IPC)
	}
	if got := submits.Load(); got != 3 { // initial + one per 404
		t.Fatalf("submitted %d times, want 3", got)
	}
}
