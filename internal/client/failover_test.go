package client

import (
	"context"
	"encoding/json"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/exp"
	"repro/internal/server"
)

// deadAddr returns a URL nothing listens on: the port is grabbed and
// released, so dialing it is an immediate connection refusal.
func deadAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return "http://" + addr
}

func acceptSubmit(calls *atomic.Int64) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusAccepted)
		json.NewEncoder(w).Encode(server.StatusResponse{Key: "cpu/462", Status: server.StatusQueued})
	})
}

// TestSubmitFailsOverOnConnectionRefused: the first address of the list
// is down; the ordinary retry loop lands the submit on the second.
func TestSubmitFailsOverOnConnectionRefused(t *testing.T) {
	var calls atomic.Int64
	live := httptest.NewServer(acceptSubmit(&calls))
	defer live.Close()

	c := fastClient(deadAddr(t) + "," + live.URL)
	sr, err := c.Submit(context.Background(), exp.CPUTaskSpec(462), 0)
	if err != nil {
		t.Fatal(err)
	}
	if sr.Status != server.StatusQueued || calls.Load() == 0 {
		t.Fatalf("status %q, live calls %d", sr.Status, calls.Load())
	}
}

// TestSubmitFailsOverOnStandbyBounce: an unpromoted standby answers 503
// with X-Fleet-Standby; the client rotates and the retry lands on the
// primary.
func TestSubmitFailsOverOnStandbyBounce(t *testing.T) {
	var standbyCalls, primaryCalls atomic.Int64
	standby := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		standbyCalls.Add(1)
		w.Header().Set("X-Fleet-Standby", "1")
		w.Header().Set("Retry-After", "1")
		w.WriteHeader(http.StatusServiceUnavailable)
		json.NewEncoder(w).Encode(server.StatusResponse{Error: "standby: not promoted", RetryAfterMS: 1})
	}))
	defer standby.Close()
	primary := httptest.NewServer(acceptSubmit(&primaryCalls))
	defer primary.Close()

	// The standby is listed FIRST: the client must not get stuck on it.
	c := fastClient(standby.URL + "," + primary.URL)
	sr, err := c.Submit(context.Background(), exp.CPUTaskSpec(462), 0)
	if err != nil {
		t.Fatal(err)
	}
	if sr.Status != server.StatusQueued {
		t.Fatalf("status %q", sr.Status)
	}
	if standbyCalls.Load() != 1 || primaryCalls.Load() != 1 {
		t.Fatalf("standby=%d primary=%d calls, want exactly one bounce then success",
			standbyCalls.Load(), primaryCalls.Load())
	}
}

// TestStaleTermResponseIsRejectedAndRotates: once the client has seen
// term N, a response stamped with an older term is untrusted — the call
// errors, the client rotates, and the next request goes elsewhere.
func TestStaleTermResponseIsRejectedAndRotates(t *testing.T) {
	serve := func(term string) *httptest.Server {
		return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("X-Fleet-Term", term)
			w.Header().Set("Content-Type", "application/json")
			json.NewEncoder(w).Encode(server.Health{Engine: "term-" + term})
		}))
	}
	old := serve("1") // deposed primary, term 1
	defer old.Close()
	neu := serve("2") // promoted standby, term 2
	defer neu.Close()

	c := fastClient(old.URL + "," + neu.URL)
	var h server.Health
	// First contact with the old primary: term 1 adopted, trusted.
	if _, err := c.DoJSON(context.Background(), "GET", "/healthz", nil, &h); err != nil {
		t.Fatal(err)
	}
	if c.Term() != 1 {
		t.Fatalf("term after first contact = %d, want 1", c.Term())
	}
	// Learn the newer term from the promoted coordinator.
	c.Rotate()
	if _, err := c.DoJSON(context.Background(), "GET", "/healthz", nil, &h); err != nil {
		t.Fatal(err)
	}
	if c.Term() != 2 {
		t.Fatalf("term = %d, want 2", c.Term())
	}
	// Back on the deposed primary: its term-1 answer must be refused.
	c.Rotate()
	_, err := c.DoJSON(context.Background(), "GET", "/healthz", nil, &h)
	if err == nil || !strings.Contains(err.Error(), "stale coordinator term") {
		t.Fatalf("err = %v, want stale-term rejection", err)
	}
	// The rejection rotated us off the stale node: the next call is
	// served by term 2 again without manual intervention.
	if _, err := c.DoJSON(context.Background(), "GET", "/healthz", nil, &h); err != nil {
		t.Fatal(err)
	}
	if h.Engine != "term-2" {
		t.Fatalf("served by %q after stale rejection, want term-2", h.Engine)
	}
}

// TestReadyRotatesThroughDeadAddresses: wait-ready on a replicated
// endpoint succeeds as long as one address serves.
func TestReadyRotatesThroughDeadAddresses(t *testing.T) {
	live := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(server.Health{Engine: "event"})
	}))
	defer live.Close()

	c := fastClient(deadAddr(t) + "," + live.URL)
	if err := c.Ready(context.Background()); err != nil {
		t.Fatalf("Ready through failover: %v", err)
	}
}

// TestSingleAddressNeverRotates: rotation is a no-op with one address —
// the pre-HA contract is unchanged.
func TestSingleAddressNeverRotates(t *testing.T) {
	c := fastClient("http://127.0.0.1:1")
	before := c.baseURL()
	c.Rotate()
	if got := c.baseURL(); got != before {
		t.Fatalf("single-address client rotated %s -> %s", before, got)
	}
}
