// Package client is the Go client for the hetsimd service: submit a
// task, ride out overload and restarts, and come back with the result.
//
// The retry loop leans on the service's idempotency contract: a task's
// Key is its identity, so resubmitting after a dropped connection, a
// shed (429), or even a server crash-and-restart never runs the
// simulation twice — the server joins the submission to the live run or
// serves the journal-replayed memo. That makes the client's policy
// simple: retry everything retryable with exponential backoff and
// jitter, honor the server's Retry-After hints, and treat only 4xx
// validation errors as permanent.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/exp"
	"repro/internal/server"
)

// Term-fencing headers, mirrored from internal/fleet (which imports
// this package, so the constants live in both): every HA coordinator
// response carries its epoch, and an unpromoted standby marks itself.
const (
	headerTerm    = "X-Fleet-Term"
	headerStandby = "X-Fleet-Standby"
)

// Client talks to a hetsimd instance or a fleet coordinator — or, for
// an HA fleet, to a replicated set of coordinator addresses. The zero
// value is not usable; call New.
type Client struct {
	// BaseURL is the first (preferred) server root, e.g.
	// "http://127.0.0.1:8080". Kept for display and single-address
	// compatibility; the live address rotates internally on failover.
	BaseURL string

	// HTTP is the transport; New installs http.DefaultClient.
	HTTP *http.Client

	// MaxAttempts bounds each operation's retry loop (default 10).
	MaxAttempts int

	// BaseBackoff and MaxBackoff shape the exponential backoff between
	// retries (defaults 100ms and 5s). The actual sleep is jittered to
	// half-to-full of the computed delay so a fleet of retrying clients
	// doesn't re-arrive in lockstep.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration

	// PollWait is the long-poll duration used while waiting on a run
	// (default 2s).
	PollWait time.Duration

	// Logf, when non-nil, receives retry/backoff diagnostics.
	Logf func(format string, args ...any)

	mu      sync.Mutex
	addrs   []string // all known server roots; addrs[active] takes requests
	active  int
	maxTerm uint64 // highest coordinator epoch seen in response headers
}

// New returns a client for the server at baseURL. A comma-separated
// list ("http://a:8080,http://b:8080") names one replicated HA
// endpoint: requests go to the active address, and the client rotates
// to the next on connection failure, on a response from an unpromoted
// standby, or on a response from a coordinator with a stale term — so
// a campaign rides through a primary failover with no config change.
// The existing retry loops (Submit, Run, Ready) supply the backoff
// between rotations.
func New(baseURL string) *Client {
	var addrs []string
	for _, a := range strings.Split(baseURL, ",") {
		a = strings.TrimRight(strings.TrimSpace(a), "/")
		if a != "" {
			addrs = append(addrs, a)
		}
	}
	first := ""
	if len(addrs) > 0 {
		first = addrs[0]
	}
	return &Client{
		BaseURL:     first,
		addrs:       addrs,
		HTTP:        http.DefaultClient,
		MaxAttempts: 10,
		BaseBackoff: 100 * time.Millisecond,
		MaxBackoff:  5 * time.Second,
		PollWait:    2 * time.Second,
	}
}

// baseURL returns the active server root. A hand-constructed client
// (no addrs list) falls back to BaseURL.
func (c *Client) baseURL() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.addrs) == 0 {
		return c.BaseURL
	}
	return c.addrs[c.active]
}

// rotateFrom advances to the next address if from is still the active
// one (a stale loser of a concurrent rotation must not double-advance).
func (c *Client) rotateFrom(from string) {
	c.mu.Lock()
	if len(c.addrs) < 2 || c.addrs[c.active] != from {
		c.mu.Unlock()
		return
	}
	c.active = (c.active + 1) % len(c.addrs)
	next := c.addrs[c.active]
	c.mu.Unlock()
	c.logf("client: failing over %s -> %s", from, next)
}

// Rotate forces the next request onto the next address in the list —
// the fleet agent calls it when a completion bounces off a deposed
// coordinator (StaleTerm) that the header check could not catch.
func (c *Client) Rotate() {
	c.rotateFrom(c.baseURL())
}

// Term reports the highest coordinator epoch this client has observed
// in response headers (0 against plain hetsimd, which has no terms).
func (c *Client) Term() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.maxTerm
}

// observeTermHeader folds a response's fleet headers into the rotation
// policy. Returns an error when the response must not be trusted (it
// came from a coordinator with a stale term).
func (c *Client) observeTermHeader(base string, resp *http.Response) error {
	if resp.Header.Get(headerStandby) != "" {
		// An unpromoted standby cannot serve; move on. The body (a 503)
		// still flows to the caller's retry loop for backoff.
		c.rotateFrom(base)
	}
	th := resp.Header.Get(headerTerm)
	if th == "" {
		return nil // plain hetsimd: no fencing in play
	}
	t, err := strconv.ParseUint(th, 10, 64)
	if err != nil {
		return nil
	}
	c.mu.Lock()
	stale := t < c.maxTerm
	if t > c.maxTerm {
		c.maxTerm = t
	}
	known := c.maxTerm
	c.mu.Unlock()
	if stale {
		c.rotateFrom(base)
		return fmt.Errorf("stale coordinator term %d (newest known %d) from %s", t, known, base)
	}
	return nil
}

func (c *Client) logf(format string, args ...any) {
	if c.Logf != nil {
		c.Logf(format, args...)
	}
}

// PermanentError is a server response that retrying cannot fix: a
// validation failure (400) or a run that completed with an error.
type PermanentError struct {
	Code int
	Msg  string
}

func (e *PermanentError) Error() string {
	return fmt.Sprintf("hetsimd: %s (HTTP %d)", e.Msg, e.Code)
}

// Backoff computes the jittered delay before attempt n (0-based),
// respecting the server's Retry-After hint when one was given. It is
// exported as the fleet worker agent's retry policy: every
// coordinator-facing loop (register, lease, complete) backs off with
// the same half-to-full-jitter shape a retrying submit uses.
func (c *Client) Backoff(attempt int, hint time.Duration) time.Duration {
	d := c.BaseBackoff << attempt
	if d > c.MaxBackoff || d <= 0 {
		d = c.MaxBackoff
	}
	if hint > d {
		d = hint
	}
	// Half-to-full jitter: spread retries without ever undercutting
	// half the computed wait.
	return d/2 + time.Duration(rand.Int63n(int64(d/2)+1))
}

// sleep waits d or until ctx ends.
func sleep(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// DoJSON performs one HTTP exchange against the active server and
// decodes the body into out. The response status code is returned even
// on decode failure. It is the transport primitive the retrying verbs
// are built on, exported so the fleet agent can speak the
// coordinator's lease endpoints with the same client.
//
// Failover happens here: a transport error, a standby marker, or a
// stale coordinator term rotates the active address before the error
// surfaces, so the caller's ordinary retry (with its ordinary backoff)
// lands on the next replica.
func (c *Client) DoJSON(ctx context.Context, method, path string, body, out any) (int, error) {
	var rd io.Reader
	if body != nil {
		raw, err := json.Marshal(body)
		if err != nil {
			return 0, err
		}
		rd = bytes.NewReader(raw)
	}
	base := c.baseURL()
	req, err := http.NewRequestWithContext(ctx, method, base+path, rd)
	if err != nil {
		return 0, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.HTTP.Do(req)
	if err != nil {
		// Connection refused, reset, timeout: the node is gone or
		// unreachable. Rotate so the caller's retry tries the next one.
		c.rotateFrom(base)
		return 0, err
	}
	defer resp.Body.Close()
	if err := c.observeTermHeader(base, resp); err != nil {
		// A deposed coordinator's answer must not be believed — not
		// even a 200. Drain and drop the body; the caller retries
		// against the rotated address.
		io.Copy(io.Discard, resp.Body)
		return resp.StatusCode, err
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return resp.StatusCode, fmt.Errorf("decoding %s %s response: %w", method, path, err)
		}
	}
	return resp.StatusCode, nil
}

// Submit submits spec (with an optional per-run timeout) and retries
// through overload, breaker rejections, and transport failures until
// the task is accepted, already running, or already done. 400s are
// permanent.
func (c *Client) Submit(ctx context.Context, spec exp.TaskSpec, timeout time.Duration) (server.StatusResponse, error) {
	req := server.SubmitRequest{TaskSpec: spec, TimeoutMS: timeout.Milliseconds()}
	var lastErr error
	for attempt := 0; attempt < c.MaxAttempts; attempt++ {
		var sr server.StatusResponse
		code, err := c.DoJSON(ctx, http.MethodPost, "/v1/runs", req, &sr)
		switch {
		case err != nil && ctx.Err() != nil:
			return server.StatusResponse{}, ctx.Err()
		case err != nil:
			lastErr = err // connection refused / reset: server restarting
		case code == http.StatusOK || code == http.StatusAccepted:
			return sr, nil
		case code == http.StatusBadRequest:
			return sr, &PermanentError{Code: code, Msg: sr.Error}
		default: // 429 shed, 503 breaker/draining
			lastErr = fmt.Errorf("hetsimd: %s (HTTP %d)", sr.Error, code)
		}
		// Honor the server's Retry-After hint (body form) when it gave one.
		hint := time.Duration(sr.RetryAfterMS) * time.Millisecond
		d := c.Backoff(attempt, hint)
		c.logf("submit %s: attempt %d failed (%v), retrying in %v", spec.Key(), attempt+1, lastErr, d)
		if err := sleep(ctx, d); err != nil {
			return server.StatusResponse{}, err
		}
	}
	return server.StatusResponse{}, fmt.Errorf("submit %s: gave up after %d attempts: %w", spec.Key(), c.MaxAttempts, lastErr)
}

// Status fetches a run's state, long-polling up to wait when the run
// is still queued or running. A 404 is reported via ok=false without
// error: after a crash-restart the server may not know the key yet,
// and the caller (Run) resubmits.
func (c *Client) Status(ctx context.Context, key string, wait time.Duration) (server.StatusResponse, bool, error) {
	path := "/v1/runs/" + key
	if wait > 0 {
		path += "?wait=" + wait.String()
	}
	var sr server.StatusResponse
	code, err := c.DoJSON(ctx, http.MethodGet, path, nil, &sr)
	if err != nil {
		return server.StatusResponse{}, false, err
	}
	if code == http.StatusNotFound {
		return sr, false, nil
	}
	if code != http.StatusOK {
		return sr, false, fmt.Errorf("status %s: HTTP %d: %s", key, code, sr.Error)
	}
	return sr, true, nil
}

// Result fetches a completed run's payload.
func (c *Client) Result(ctx context.Context, key string) (server.ResultResponse, error) {
	var rr server.ResultResponse
	code, err := c.DoJSON(ctx, http.MethodGet, "/v1/results/"+key, nil, &rr)
	if err != nil {
		return server.ResultResponse{}, err
	}
	if code != http.StatusOK {
		return server.ResultResponse{}, fmt.Errorf("result %s: HTTP %d", key, code)
	}
	return rr, nil
}

// Run drives spec to completion: submit (with retries), poll until the
// run resolves, fetch the result. It survives a server crash mid-run —
// a restarted server that no longer knows the key gets the task
// resubmitted, and the journal-replayed memo (or a genuine re-run of
// never-finished work) converges to the same result. A run that
// resolves failed is a PermanentError carrying the server's reason.
func (c *Client) Run(ctx context.Context, spec exp.TaskSpec, timeout time.Duration) (exp.TaskResult, error) {
	key := spec.Key()
	if _, err := c.Submit(ctx, spec, timeout); err != nil {
		return exp.TaskResult{}, err
	}
	transportFails := 0
	for {
		sr, known, err := c.Status(ctx, key, c.PollWait)
		switch {
		case err != nil && ctx.Err() != nil:
			return exp.TaskResult{}, ctx.Err()
		case err != nil:
			// Server gone (restarting?): back off, then fall through to
			// resubmission, which is idempotent.
			transportFails++
			if transportFails > c.MaxAttempts {
				return exp.TaskResult{}, fmt.Errorf("run %s: server unreachable: %w", key, err)
			}
			if err := sleep(ctx, c.Backoff(transportFails-1, 0)); err != nil {
				return exp.TaskResult{}, err
			}
			fallthrough
		case err == nil && !known:
			// Restarted server with no memory of the run: resubmit.
			c.logf("run %s: unknown to server, resubmitting", key)
			if _, err := c.Submit(ctx, spec, timeout); err != nil {
				return exp.TaskResult{}, err
			}
		case sr.Status == server.StatusFailed:
			return exp.TaskResult{}, &PermanentError{Code: http.StatusInternalServerError, Msg: sr.Error}
		case sr.Status == server.StatusDone:
			rr, err := c.Result(ctx, key)
			if err != nil {
				return exp.TaskResult{}, err
			}
			return rr.TaskResult, nil
		default:
			transportFails = 0 // queued/running: healthy, keep polling
		}
	}
}

// Ready polls /readyz until a server accepts work or ctx expires.
// Against a replicated endpoint the poll rotates off dead nodes and
// unpromoted standbys (DoJSON's failover), so "ready" means "some
// promotable address serves traffic".
func (c *Client) Ready(ctx context.Context) error {
	for {
		// Status-only: /readyz may answer 200 with an empty body, so
		// no decode — but still through DoJSON for its failover.
		code, err := c.DoJSON(ctx, http.MethodGet, "/readyz", nil, nil)
		if err == nil && code == http.StatusOK {
			return nil
		}
		if err := sleep(ctx, 50*time.Millisecond); err != nil {
			return fmt.Errorf("hetsimd never became ready: %w", err)
		}
	}
}

// Health fetches /healthz: the node's version, uptime, engine default,
// and queue depth. It does not retry — health is a point-in-time probe.
func (c *Client) Health(ctx context.Context) (server.Health, error) {
	var h server.Health
	code, err := c.DoJSON(ctx, http.MethodGet, "/healthz", nil, &h)
	if err != nil {
		return server.Health{}, err
	}
	if code != http.StatusOK {
		return h, fmt.Errorf("healthz: HTTP %d", code)
	}
	return h, nil
}

// Metrics fetches /metricsz into a name→value map.
func (c *Client) Metrics(ctx context.Context) (map[string]float64, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.baseURL()+"/metricsz", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.HTTP.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	m := make(map[string]float64)
	for _, line := range strings.Split(strings.TrimSpace(string(raw)), "\n") {
		var name string
		var v float64
		if _, err := fmt.Sscanf(line, "%s %g", &name, &v); err == nil {
			m[name] = v
		}
	}
	return m, nil
}
