// Package rng provides a tiny, fast, deterministic pseudo-random
// number generator (xorshift64*) used by the synthetic workload
// generators and the probabilistic SMS batch scheduler. Determinism
// across runs matters: every experiment in the repository must be
// exactly reproducible, so all randomness flows from fixed seeds.
package rng

// RNG is an xorshift64* generator. The zero value is not usable; use
// New.
type RNG struct {
	state uint64
}

// New returns a generator seeded with seed (0 is mapped to a fixed
// non-zero constant, since xorshift has an all-zero fixed point).
func New(seed uint64) *RNG {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &RNG{state: seed}
}

// Uint64 returns the next 64-bit value.
func (r *RNG) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545F4914F6CDD1D
}

// Intn returns a value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with n <= 0")
	}
	return int(r.Uint64() % uint64(n))
}

// Uint64n returns a value in [0, n). It panics if n == 0.
func (r *RNG) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n with n == 0")
	}
	return r.Uint64() % n
}

// Float64 returns a value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool {
	return r.Float64() < p
}
