package rng

import (
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("divergence at %d", i)
		}
	}
}

func TestZeroSeedUsable(t *testing.T) {
	r := New(0)
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatalf("zero seed produced a stuck generator")
	}
}

func TestIntnRange(t *testing.T) {
	r := New(7)
	for i := 0; i < 10000; i++ {
		v := r.Intn(17)
		if v < 0 || v >= 17 {
			t.Fatalf("Intn out of range: %d", v)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("no panic")
		}
	}()
	New(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestBoolProbability(t *testing.T) {
	r := New(11)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	frac := float64(hits) / n
	if frac < 0.28 || frac > 0.32 {
		t.Fatalf("Bool(0.3) frequency %.3f", frac)
	}
}

func TestRoughUniformity(t *testing.T) {
	r := New(99)
	var buckets [16]int
	const n = 160000
	for i := 0; i < n; i++ {
		buckets[r.Intn(16)]++
	}
	for i, b := range buckets {
		if b < n/16*8/10 || b > n/16*12/10 {
			t.Fatalf("bucket %d count %d far from uniform", i, b)
		}
	}
}

// Property: different seeds produce different streams (first 8 draws).
func TestQuickSeedSeparation(t *testing.T) {
	f := func(s1, s2 uint64) bool {
		if s1 == s2 {
			return true
		}
		a, b := New(s1), New(s2)
		same := 0
		for i := 0; i < 8; i++ {
			if a.Uint64() == b.Uint64() {
				same++
			}
		}
		return same < 8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
