// Package policy implements the LLC-side baseline management schemes
// the paper compares against:
//
//   - ForcedBypass: every GPU read-miss fill bypasses the LLC — the
//     motivation study of Fig. 3, which shows that indiscriminate
//     bypass trades a small LLC-capacity gain for a DRAM-bandwidth
//     loss (mean CPU speedup ~0.98x).
//   - HeLM (Mekkat et al., PACT 2013): GPU read misses originating
//     from shader cores bypass the LLC while the GPU's measured
//     latency tolerance is above a threshold, opportunistically
//     shifting LLC capacity to the CPU. The paper finds HeLM's gains
//     are limited by the extra DRAM traffic of the bypassed fills.
package policy

import (
	"repro/internal/mem"
)

// ForcedBypass bypasses all GPU read-miss fills (paper Fig. 3).
type ForcedBypass struct{}

// ShouldBypass implements llc.BypassPolicy.
func (ForcedBypass) ShouldBypass(r *mem.Request) bool {
	return r.Src == mem.SourceGPU && !r.Write
}

// HeLM approximates the heterogeneous LLC management policy. The
// original samples per-warp latency tolerance via thread-level
// parallelism; this model uses the GPU memory interface's MSHR
// headroom as the tolerance signal: when the GPU holds few
// outstanding misses relative to capacity, its shader threads have
// latency to spare and shader-originated fills (texture, vertex,
// shader data) bypass the LLC.
type HeLM struct {
	// Tolerance returns the current latency-tolerance metric in
	// [0,1]; 1 = fully tolerant (no outstanding-miss pressure). The
	// system builder wires it to 1 - MSHR occupancy.
	Tolerance func() float64

	// Threshold above which shader fills bypass (default 0.5).
	Threshold float64

	// Stats.
	Consults uint64
	Bypasses uint64
}

// NewHeLM returns a HeLM policy with the default threshold. The
// threshold is calibrated to the GPU memory interface's MSHR pool:
// during rendering the pool runs nearly full, so even modest headroom
// indicates threads with latency to spare.
func NewHeLM(tolerance func() float64) *HeLM {
	return &HeLM{Tolerance: tolerance, Threshold: 0.25}
}

// ShouldBypass implements llc.BypassPolicy: only shader-originated
// read classes are candidates (the ROP's depth/color traffic does not
// pass through the shader cores).
func (h *HeLM) ShouldBypass(r *mem.Request) bool {
	if r.Src != mem.SourceGPU || r.Write {
		return false
	}
	switch r.Class {
	case mem.ClassTexture, mem.ClassVertex, mem.ClassShader:
	default:
		return false
	}
	h.Consults++
	if h.Tolerance == nil {
		return false
	}
	if h.Tolerance() >= h.Threshold {
		h.Bypasses++
		return true
	}
	return false
}
