package policy

import (
	"testing"

	"repro/internal/mem"
)

func req(src mem.Source, class mem.Class, write bool) *mem.Request {
	return &mem.Request{Src: src, Class: class, Write: write}
}

func TestForcedBypassGPUReadsOnly(t *testing.T) {
	var p ForcedBypass
	if !p.ShouldBypass(req(mem.SourceGPU, mem.ClassTexture, false)) {
		t.Fatalf("GPU read not bypassed")
	}
	if !p.ShouldBypass(req(mem.SourceGPU, mem.ClassDepth, false)) {
		t.Fatalf("GPU depth read not bypassed")
	}
	if p.ShouldBypass(req(mem.SourceGPU, mem.ClassColor, true)) {
		t.Fatalf("GPU write bypassed")
	}
	if p.ShouldBypass(req(mem.SourceCPU0, mem.ClassCPUData, false)) {
		t.Fatalf("CPU read bypassed")
	}
}

func TestHeLMTolerantBypassesShaderClasses(t *testing.T) {
	h := NewHeLM(func() float64 { return 0.9 })
	if !h.ShouldBypass(req(mem.SourceGPU, mem.ClassTexture, false)) {
		t.Fatalf("tolerant texture read not bypassed")
	}
	if !h.ShouldBypass(req(mem.SourceGPU, mem.ClassVertex, false)) {
		t.Fatalf("tolerant vertex read not bypassed")
	}
	// ROP traffic never bypasses: it does not come from shader cores.
	if h.ShouldBypass(req(mem.SourceGPU, mem.ClassDepth, false)) {
		t.Fatalf("depth read bypassed")
	}
	if h.ShouldBypass(req(mem.SourceGPU, mem.ClassColor, true)) {
		t.Fatalf("color write bypassed")
	}
	if h.Bypasses != 2 || h.Consults != 2 {
		t.Fatalf("stats: %d/%d", h.Bypasses, h.Consults)
	}
}

func TestHeLMIntolerantKeepsFills(t *testing.T) {
	h := NewHeLM(func() float64 { return 0.1 })
	if h.ShouldBypass(req(mem.SourceGPU, mem.ClassTexture, false)) {
		t.Fatalf("intolerant GPU bypassed")
	}
	if h.Bypasses != 0 {
		t.Fatalf("bypass count = %d", h.Bypasses)
	}
}

func TestHeLMNilToleranceSafe(t *testing.T) {
	h := &HeLM{Threshold: 0.5}
	if h.ShouldBypass(req(mem.SourceGPU, mem.ClassTexture, false)) {
		t.Fatalf("nil tolerance should not bypass")
	}
}

func TestHeLMThresholdBoundary(t *testing.T) {
	h := NewHeLM(func() float64 { return 0.5 })
	if !h.ShouldBypass(req(mem.SourceGPU, mem.ClassTexture, false)) {
		t.Fatalf("tolerance == threshold should bypass")
	}
}
