package workloads

import "testing"

// FuzzMixValidate drives Mix.Validate with arbitrary IDs, games, and
// spec lists. Properties: Validate never panics, and a mix it accepts
// is actually buildable — every Must* lookup the system constructors
// perform on it succeeds (Validate's whole purpose is to front-run
// those panics with a clear error).
func FuzzMixValidate(f *testing.F) {
	f.Add("M7", "DOOM3", 429, 462, 450, 470, 4)
	f.Add("W3", "COD2", 481, 0, 0, 0, 1)
	f.Add("", "", 0, 0, 0, 0, 0)
	f.Add("M99", "PONG", -1, 999, 403, 403, 3)
	f.Fuzz(func(t *testing.T, id, game string, a, b, c, d, n int) {
		ids := []int{a, b, c, d}
		if n < 0 {
			n = 0
		}
		if n > len(ids) {
			n = len(ids)
		}
		m := Mix{ID: id, Game: game, SpecIDs: ids[:n]}
		if err := m.Validate(); err != nil {
			return
		}
		// Accepted: the Must paths the simulator takes may not panic.
		MustGame(m.Game)
		for _, sid := range m.SpecIDs {
			MustSpec(sid)
		}
		if len(m.SpecIDs) == 0 {
			t.Fatalf("Validate accepted a mix with no CPU applications: %+v", m)
		}
	})
}
