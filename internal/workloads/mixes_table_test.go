package workloads

import "testing"

// TestAllMixesValidateAndRoundTrip is the Table III drift guard: every
// catalog mix (evaluation M1–M14 and motivation W1–W14) validates
// against the game and SPEC catalogs, carries a unique ID, and round-
// trips through MixByID to an identical value. A typo introduced into
// any catalog table fails here, not inside a MustGame deep in a run.
func TestAllMixesValidateAndRoundTrip(t *testing.T) {
	all := append(EvalMixes(), MotivationMixes()...)
	if len(all) != 28 {
		t.Fatalf("catalog has %d mixes, want 28 (M1-M14 + W1-W14)", len(all))
	}
	seen := map[string]bool{}
	for _, m := range all {
		if err := m.Validate(); err != nil {
			t.Errorf("mix %s does not validate: %v", m.ID, err)
		}
		if seen[m.ID] {
			t.Errorf("duplicate mix ID %s", m.ID)
		}
		seen[m.ID] = true

		got, err := MixByID(m.ID)
		if err != nil {
			t.Errorf("MixByID(%s): %v", m.ID, err)
			continue
		}
		if got.ID != m.ID || got.Game != m.Game || len(got.SpecIDs) != len(m.SpecIDs) {
			t.Errorf("MixByID(%s) round-tripped to %+v, want %+v", m.ID, got, m)
			continue
		}
		for i := range m.SpecIDs {
			if got.SpecIDs[i] != m.SpecIDs[i] {
				t.Errorf("MixByID(%s).SpecIDs[%d] = %d, want %d", m.ID, i, got.SpecIDs[i], m.SpecIDs[i])
			}
		}
	}
	// The high/low FPS split partitions the evaluation mixes exactly.
	hi, lo := HighFPSMixes(), LowFPSMixes()
	if len(hi) != 6 || len(lo) != 8 {
		t.Fatalf("FPS split is %d high + %d low, want 6 + 8", len(hi), len(lo))
	}
	split := map[string]bool{}
	for _, m := range append(hi, lo...) {
		if split[m.ID] {
			t.Errorf("mix %s appears in both FPS classes", m.ID)
		}
		split[m.ID] = true
		if m.ID[0] != 'M' {
			t.Errorf("FPS-classified mix %s is not an evaluation mix", m.ID)
		}
	}
	if len(split) != 14 {
		t.Fatalf("FPS split covers %d mixes, want all 14 evaluation mixes", len(split))
	}
}
