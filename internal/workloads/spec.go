// Package workloads instantiates the paper's workloads: the fourteen
// DirectX/OpenGL game regions of Table II as gpu.AppModel parameter
// sets, the SPEC CPU 2006 applications used by the mixes as synthetic
// trace.Params, and the heterogeneous mixes M1–M14 / W1–W14 of
// Table III.
//
// SPEC binaries and game API traces are proprietary; the parameters
// below encode each application's published first-order memory
// character (working-set size, access rate, streaming vs pointer-
// chasing, write share) — see DESIGN.md §1 for why this preserves the
// behaviour the proposal interacts with.
package workloads

import (
	"fmt"
	"sort"

	"repro/internal/trace"
)

// SpecApp describes one SPEC CPU 2006 application model.
type SpecApp struct {
	ID     int    // SPEC numeric id, e.g. 429
	Name   string // canonical suite name, e.g. "mcf"
	Params trace.Params
}

// specCatalog lists every SPEC application appearing in Table III.
// Parameters are full-scale; the harness scales working sets together
// with cache capacities.
//
// The model: ~30% of instructions reference memory (MemPerKilo 300);
// HotFrac of references hit a cache-resident hot set, and the
// remaining stream/random references produce each application's
// characteristic LLC/DRAM pressure — MemPerKilo x (Stream + Random)
// approximates the L2-miss (LLC-access) rate per kilo-instruction:
// ~40 for mcf, ~25-30 for the bandwidth hogs (libquantum, lbm,
// soplex, omnetpp), ~13-20 for the milder codes. Streaming apps are
// row-buffer friendly; pointer chasers (mcf, omnetpp) are not.
var specCatalog = map[int]SpecApp{
	401: {401, "bzip2", trace.Params{
		Name: "401.bzip2", MemPerKilo: 300, WriteFrac: 0.32,
		StreamFrac: 0.010, HotFrac: 0.978, HotBytes: 224 << 10, WSBytes: 4 << 20, Seed: 401}},
	403: {403, "gcc", trace.Params{
		Name: "403.gcc", MemPerKilo: 300, WriteFrac: 0.30,
		StreamFrac: 0.008, HotFrac: 0.977, HotBytes: 192 << 10, WSBytes: 2 << 20, Seed: 403}},
	410: {410, "bwaves", trace.Params{
		Name: "410.bwaves", MemPerKilo: 300, WriteFrac: 0.25,
		StreamFrac: 0.030, HotFrac: 0.962, HotBytes: 128 << 10, WSBytes: 48 << 20, Seed: 410}},
	429: {429, "mcf", trace.Params{
		Name: "429.mcf", MemPerKilo: 300, WriteFrac: 0.22,
		StreamFrac: 0.005, HotFrac: 0.932, HotBytes: 256 << 10, WSBytes: 64 << 20, Seed: 429}},
	433: {433, "milc", trace.Params{
		Name: "433.milc", MemPerKilo: 300, WriteFrac: 0.30,
		StreamFrac: 0.025, HotFrac: 0.965, HotBytes: 128 << 10, WSBytes: 24 << 20, Seed: 433}},
	434: {434, "zeusmp", trace.Params{
		Name: "434.zeusmp", MemPerKilo: 300, WriteFrac: 0.33,
		StreamFrac: 0.015, HotFrac: 0.977, HotBytes: 192 << 10, WSBytes: 6 << 20, Seed: 434}},
	437: {437, "leslie3d", trace.Params{
		Name: "437.leslie3d", MemPerKilo: 300, WriteFrac: 0.28,
		StreamFrac: 0.028, HotFrac: 0.962, HotBytes: 160 << 10, WSBytes: 16 << 20, Seed: 437}},
	450: {450, "soplex", trace.Params{
		Name: "450.soplex", MemPerKilo: 300, WriteFrac: 0.20,
		StreamFrac: 0.015, HotFrac: 0.957, HotBytes: 192 << 10, WSBytes: 16 << 20, Seed: 450}},
	462: {462, "libquantum", trace.Params{
		Name: "462.libquantum", MemPerKilo: 300, WriteFrac: 0.25,
		StreamFrac: 0.043, HotFrac: 0.955, HotBytes: 64 << 10, WSBytes: 48 << 20, Seed: 462}},
	470: {470, "lbm", trace.Params{
		Name: "470.lbm", MemPerKilo: 300, WriteFrac: 0.45,
		StreamFrac: 0.038, HotFrac: 0.957, HotBytes: 96 << 10, WSBytes: 64 << 20, Seed: 470}},
	471: {471, "omnetpp", trace.Params{
		Name: "471.omnetpp", MemPerKilo: 300, WriteFrac: 0.30,
		StreamFrac: 0.008, HotFrac: 0.947, HotBytes: 256 << 10, WSBytes: 32 << 20, Seed: 471}},
	481: {481, "wrf", trace.Params{
		Name: "481.wrf", MemPerKilo: 300, WriteFrac: 0.28,
		StreamFrac: 0.018, HotFrac: 0.975, HotBytes: 192 << 10, WSBytes: 6 << 20, Seed: 481}},
	482: {482, "sphinx3", trace.Params{
		Name: "482.sphinx3", MemPerKilo: 300, WriteFrac: 0.15,
		StreamFrac: 0.015, HotFrac: 0.967, HotBytes: 224 << 10, WSBytes: 4 << 20, Seed: 482}},
}

// Spec returns the catalog entry for a SPEC id.
func Spec(id int) (SpecApp, error) {
	a, ok := specCatalog[id]
	if !ok {
		return SpecApp{}, fmt.Errorf("workloads: unknown SPEC id %d", id)
	}
	return a, nil
}

// MustSpec is Spec for static ids from the mix tables.
func MustSpec(id int) SpecApp {
	a, err := Spec(id)
	if err != nil {
		panic(err)
	}
	return a
}

// SpecIDs returns all catalog ids in ascending order.
func SpecIDs() []int {
	ids := make([]int, 0, len(specCatalog))
	for id := range specCatalog {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}
