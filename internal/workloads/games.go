package workloads

import (
	"fmt"

	"repro/internal/gpu"
)

// Resolution constants of Table II.
var resolutions = map[string][2]int{
	"R1": {1280, 1024},
	"R2": {1920, 1200},
	"R3": {1600, 1200},
}

// Game describes one Table II 3D rendering workload and the model
// parameters that reproduce its character.
type Game struct {
	Name   string
	API    string // "DX" or "OGL"
	Frames int    // length of the simulated frame sequence
	Res    string // "R1".."R3"
	// TableFPS is the paper's reported baseline standalone frame rate
	// (Table II, last column) — the calibration target.
	TableFPS float64

	// Model shape parameters (full-scale).
	RTPs         int     // overdraw batches per frame
	TexPerTile   int     // texture line reads per tile per RTP
	DepthPerTile int     // depth lines per tile per RTP
	ColorPerTile int     // color lines per tile per RTP
	TexMB        int     // texture footprint in MiB
	TexHotFrac   float64 // fraction of texture reads in the hot set
	ComputeFrac  float64 // shader compute as a fraction of the frame budget
	Jitter       float64 // per-frame work jitter
}

// gameCatalog is Table II. Frame counts come from the paper's frame
// ranges (e.g. DOOM3 300–314 = 15 frames). A 32x32-pixel tile holds
// 64 color and 64 depth lines; per-tile texture reads track each
// title's texturing intensity.
var gameCatalog = []Game{
	{"3DMark06GT1", "DX", 2, "R1", 6.0, 6, 280, 64, 64, 384, 0.65, 0.78, 0.02},
	{"3DMark06GT2", "DX", 2, "R1", 13.8, 6, 240, 64, 64, 320, 0.65, 0.78, 0.02},
	{"3DMark06HDR1", "DX", 2, "R1", 16.0, 5, 240, 64, 64, 320, 0.65, 0.78, 0.02},
	{"3DMark06HDR2", "DX", 2, "R1", 20.8, 5, 240, 64, 64, 256, 0.65, 0.78, 0.02},
	{"COD2", "DX", 2, "R2", 18.1, 4, 240, 64, 64, 256, 0.70, 0.78, 0.02},
	{"Crysis", "DX", 2, "R2", 6.6, 6, 320, 64, 64, 448, 0.60, 0.78, 0.02},
	{"DOOM3", "OGL", 15, "R3", 81.0, 4, 200, 64, 64, 192, 0.75, 0.78, 0.02},
	{"HL2", "DX", 9, "R3", 75.9, 4, 180, 64, 64, 192, 0.75, 0.78, 0.02},
	{"L4D", "DX", 5, "R1", 32.5, 4, 220, 64, 64, 224, 0.70, 0.95, 0.02},
	{"NFS", "DX", 8, "R1", 62.3, 4, 200, 64, 64, 192, 0.75, 0.78, 0.02},
	{"Quake4", "OGL", 10, "R3", 80.8, 4, 200, 64, 64, 192, 0.75, 0.78, 0.02},
	{"COR", "OGL", 15, "R1", 111.0, 3, 180, 64, 64, 160, 0.80, 0.78, 0.02},
	{"UT2004", "OGL", 18, "R3", 130.7, 3, 160, 64, 64, 128, 0.80, 0.78, 0.02},
	{"UT3", "DX", 2, "R1", 26.8, 5, 240, 64, 64, 288, 0.65, 0.78, 0.02},
}

// Games returns the Table II catalog in paper order (W1..W14).
func Games() []Game {
	out := make([]Game, len(gameCatalog))
	copy(out, gameCatalog)
	return out
}

// GameByName looks a title up by name.
func GameByName(name string) (Game, error) {
	for _, g := range gameCatalog {
		if g.Name == name {
			return g, nil
		}
	}
	return Game{}, fmt.Errorf("workloads: unknown game %q", name)
}

// MustGame is GameByName for static names from the mix tables.
func MustGame(name string) Game {
	g, err := GameByName(name)
	if err != nil {
		panic(err)
	}
	return g
}

// Resolution returns the game's render-target width and height in
// pixels.
func (g Game) Resolution() (w, h int) {
	r := resolutions[g.Res]
	return r[0], r[1]
}

// Tiles returns the full-scale RTT count of the game's render target.
func (g Game) Tiles() int {
	w, h := g.Resolution()
	return (w * h) / (gpu.TileSide * gpu.TileSide)
}

// Model derives the gpu.AppModel for the game at a given scale
// factor and GPU frequency. The shader compute budget is derived from
// the Table II frame rate so that the standalone GPU is (mostly)
// compute-bound at its published FPS, with the memory system sized to
// run just under the compute budget; heterogeneous contention then
// pushes memory past compute, which is the paper's §II observation.
func (g Game) Model(scale int, gpuFreqHz float64) *gpu.AppModel {
	if scale < 1 {
		scale = 1
	}
	tiles := g.Tiles() / scale
	if tiles < 4 {
		tiles = 4
	}
	frameBudget := gpuFreqHz / (g.TableFPS * float64(scale)) // GPU cycles/frame
	shaderPerRTP := uint64(g.ComputeFrac * frameBudget / float64(g.RTPs))

	texFoot := uint64(g.TexMB) << 20 / uint64(scale)
	if texFoot < 64 {
		texFoot = 64
	}
	hot := texFoot / 16
	if hot < 64 {
		hot = 64
	}

	return &gpu.AppModel{
		Name:               g.Name,
		API:                g.API,
		Frames:             g.Frames,
		Tiles:              tiles,
		RTPs:               g.RTPs,
		TexPerTile:         g.TexPerTile,
		DepthPerTile:       g.DepthPerTile,
		ColorPerTile:       g.ColorPerTile,
		VertexPerRTP:       tiles / 2,
		TexFootprint:       texFoot,
		TexHotBytes:        hot,
		TexHotFrac:         g.TexHotFrac,
		ShaderCyclesPerRTP: shaderPerRTP,
		WorkJitter:         g.Jitter,
		Seed:               nameSeed(g.Name),
	}
}

// nameSeed derives a stable per-title seed (FNV-1a).
func nameSeed(name string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	return h
}
