package workloads

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/trace"
)

func TestGameCatalogMatchesTableII(t *testing.T) {
	games := Games()
	if len(games) != 14 {
		t.Fatalf("Table II has 14 titles, catalog has %d", len(games))
	}
	// Spot-check paper rows.
	checks := []struct {
		name   string
		api    string
		frames int
		res    string
		fps    float64
	}{
		{"DOOM3", "OGL", 15, "R3", 81.0},
		{"UT2004", "OGL", 18, "R3", 130.7},
		{"Crysis", "DX", 2, "R2", 6.6},
		{"L4D", "DX", 5, "R1", 32.5},
		{"COR", "OGL", 15, "R1", 111.0},
	}
	for _, c := range checks {
		g := MustGame(c.name)
		if g.API != c.api || g.Frames != c.frames || g.Res != c.res || g.TableFPS != c.fps {
			t.Fatalf("%s: got %+v, want %+v", c.name, g, c)
		}
	}
}

func TestSixHighFPSTitles(t *testing.T) {
	// Paper §VI: exactly six applications exceed the 40 FPS target
	// (DOOM3, HL2, NFS, Quake4, COR, UT2004).
	high := HighFPSMixes()
	if len(high) != 6 {
		t.Fatalf("%d high-FPS mixes, want 6", len(high))
	}
	want := map[string]bool{"DOOM3": true, "HL2": true, "NFS": true,
		"Quake4": true, "COR": true, "UT2004": true}
	for _, m := range high {
		if !want[m.Game] {
			t.Fatalf("unexpected high-FPS title %s", m.Game)
		}
	}
	if len(LowFPSMixes()) != 8 {
		t.Fatalf("%d low-FPS mixes, want 8", len(LowFPSMixes()))
	}
}

func TestEvalMixesMatchTableIII(t *testing.T) {
	mixes := EvalMixes()
	if len(mixes) != 14 {
		t.Fatalf("Table III has 14 mixes")
	}
	m7, err := MixByID("M7")
	if err != nil || m7.Game != "DOOM3" {
		t.Fatalf("M7 = %+v (%v)", m7, err)
	}
	want := []int{410, 433, 462, 471}
	for i, id := range m7.SpecIDs {
		if id != want[i] {
			t.Fatalf("M7 SPEC ids = %v", m7.SpecIDs)
		}
	}
	for _, m := range mixes {
		if len(m.SpecIDs) != 4 {
			t.Fatalf("%s has %d CPU apps", m.ID, len(m.SpecIDs))
		}
		for _, id := range m.SpecIDs {
			if _, err := Spec(id); err != nil {
				t.Fatalf("%s references %v", m.ID, err)
			}
		}
		if _, err := GameByName(m.Game); err != nil {
			t.Fatal(err)
		}
	}
}

func TestMotivationMixesSingleCPU(t *testing.T) {
	for _, m := range MotivationMixes() {
		if len(m.SpecIDs) != 1 {
			t.Fatalf("%s has %d CPU apps, want 1", m.ID, len(m.SpecIDs))
		}
	}
	w10, _ := MixByID("W10")
	if w10.Game != "NFS" || w10.SpecIDs[0] != 437 {
		t.Fatalf("W10 = %+v", w10)
	}
}

func TestUnknownLookupsError(t *testing.T) {
	if _, err := Spec(999); err == nil {
		t.Fatal("Spec(999) succeeded")
	}
	if _, err := GameByName("Minesweeper"); err == nil {
		t.Fatal("GameByName(Minesweeper) succeeded")
	}
	if _, err := MixByID("M99"); err == nil {
		t.Fatal("MixByID(M99) succeeded")
	}
}

func TestModelDerivation(t *testing.T) {
	g := MustGame("DOOM3")
	m := g.Model(64, 1e9)
	if m.Tiles < 4 || m.RTPs != 4 {
		t.Fatalf("model shape: %+v", m)
	}
	// Compute budget: ComputeFrac x frame budget.
	frameBudget := 1e9 / (81.0 * 64)
	wantShader := uint64(g.ComputeFrac * frameBudget / 4)
	if m.ShaderCyclesPerRTP != wantShader {
		t.Fatalf("shader cycles = %d, want %d", m.ShaderCyclesPerRTP, wantShader)
	}
	// Seeds must differ between titles.
	if MustGame("HL2").Model(64, 1e9).Seed == m.Seed {
		t.Fatalf("seed collision between titles")
	}
}

func TestModelScaleOneIsFullSize(t *testing.T) {
	g := MustGame("UT2004")
	m := g.Model(1, 1e9)
	if m.Tiles != g.Tiles() {
		t.Fatalf("scale-1 tiles = %d, want %d", m.Tiles, g.Tiles())
	}
	if m.TexFootprint != uint64(g.TexMB)<<20 {
		t.Fatalf("scale-1 texture footprint = %d", m.TexFootprint)
	}
}

func TestSpecCatalogCoversMixes(t *testing.T) {
	ids := SpecIDs()
	if len(ids) != 13 {
		t.Fatalf("catalog has %d SPEC apps, want 13", len(ids))
	}
	a := MustSpec(429)
	if a.Name != "mcf" || a.Params.WSBytes != 64<<20 {
		t.Fatalf("429 = %+v", a)
	}
}

func TestSpecParamsScaleWithFloor(t *testing.T) {
	p := MustSpec(470).Params.Scale(64)
	if p.WSBytes != (64<<20)/64 {
		t.Fatalf("scaled WS = %d", p.WSBytes)
	}
	var _ trace.Params = p
	_ = mem.LineSize
}
