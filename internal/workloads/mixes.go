package workloads

import "fmt"

// Mix is one heterogeneous workload: a GPU title plus CPU
// applications (four for the evaluation mixes M1–M14, one for the
// motivation workloads W1–W14).
type Mix struct {
	ID      string // "M7" or "W7"
	Game    string
	SpecIDs []int
}

// Validate checks that every workload key in the mix resolves against
// the catalogs, so a hand-built or mistyped mix is rejected with a
// clear error before any simulation starts (MustGame/MustSpec would
// otherwise panic from deep inside system construction).
func (m Mix) Validate() error {
	if _, err := GameByName(m.Game); err != nil {
		return fmt.Errorf("mix %s: %w", m.ID, err)
	}
	if len(m.SpecIDs) == 0 {
		return fmt.Errorf("mix %s: no CPU applications", m.ID)
	}
	for _, id := range m.SpecIDs {
		if _, err := Spec(id); err != nil {
			return fmt.Errorf("mix %s: %w", m.ID, err)
		}
	}
	return nil
}

// EvalMixes returns Table III's M1–M14 (4 CPU apps + 1 GPU app each).
func EvalMixes() []Mix {
	return []Mix{
		{"M1", "3DMark06GT1", []int{403, 450, 481, 482}},
		{"M2", "3DMark06GT2", []int{403, 429, 434, 462}},
		{"M3", "3DMark06HDR1", []int{401, 437, 450, 470}},
		{"M4", "3DMark06HDR2", []int{401, 462, 470, 471}},
		{"M5", "COD2", []int{401, 437, 450, 470}},
		{"M6", "Crysis", []int{429, 433, 434, 482}},
		{"M7", "DOOM3", []int{410, 433, 462, 471}},
		{"M8", "HL2", []int{410, 429, 433, 434}},
		{"M9", "L4D", []int{410, 433, 462, 471}},
		{"M10", "NFS", []int{410, 429, 433, 471}},
		{"M11", "Quake4", []int{401, 437, 450, 481}},
		{"M12", "COR", []int{403, 437, 450, 481}},
		{"M13", "UT2004", []int{401, 437, 462, 470}},
		{"M14", "UT3", []int{403, 437, 450, 481}},
	}
}

// MotivationMixes returns Table III's W1–W14 (1 CPU app + 1 GPU app),
// used by the §II motivation experiments (Figs. 1–3).
func MotivationMixes() []Mix {
	return []Mix{
		{"W1", "3DMark06GT1", []int{481}},
		{"W2", "3DMark06GT2", []int{471}},
		{"W3", "3DMark06HDR1", []int{470}},
		{"W4", "3DMark06HDR2", []int{482}},
		{"W5", "COD2", []int{470}},
		{"W6", "Crysis", []int{429}},
		{"W7", "DOOM3", []int{462}},
		{"W8", "HL2", []int{403}},
		{"W9", "L4D", []int{462}},
		{"W10", "NFS", []int{437}},
		{"W11", "Quake4", []int{410}},
		{"W12", "COR", []int{434}},
		{"W13", "UT2004", []int{450}},
		{"W14", "UT3", []int{434}},
	}
}

// MixByID resolves "M1".."M14" or "W1".."W14".
func MixByID(id string) (Mix, error) {
	for _, m := range EvalMixes() {
		if m.ID == id {
			return m, nil
		}
	}
	for _, m := range MotivationMixes() {
		if m.ID == id {
			return m, nil
		}
	}
	return Mix{}, fmt.Errorf("workloads: unknown mix %q", id)
}

// HighFPSMixes returns the evaluation mixes whose GPU titles exceed
// the 40 FPS target in Table II — the six mixes the proposal
// throttles (Figs. 9–12).
func HighFPSMixes() []Mix {
	var out []Mix
	for _, m := range EvalMixes() {
		if MustGame(m.Game).TableFPS > 40 {
			out = append(out, m)
		}
	}
	return out
}

// LowFPSMixes returns the evaluation mixes whose GPU titles never
// reach 40 FPS (the proposal stays disabled; Figs. 13–14).
func LowFPSMixes() []Mix {
	var out []Mix
	for _, m := range EvalMixes() {
		if MustGame(m.Game).TableFPS <= 40 {
			out = append(out, m)
		}
	}
	return out
}
