package exp

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// Archive is a set of experiment reports persisted as JSON, used to
// compare two reproduction runs (e.g. before/after a model change, or
// two scale factors) and surface regressions in reproduction quality.
type Archive struct {
	// Scale records the scale factor the reports were produced at.
	Scale int `json:"scale"`
	// Reports keyed by experiment id.
	Reports map[string]Report `json:"reports"`
}

// NewArchive builds an empty archive for a scale factor.
func NewArchive(scale int) *Archive {
	return &Archive{Scale: scale, Reports: make(map[string]Report)}
}

// Add stores a report (last write wins).
func (a *Archive) Add(rep Report) {
	a.Reports[rep.ID] = rep
}

// Save writes the archive to path.
func (a *Archive) Save(path string) error {
	data, err := json.MarshalIndent(a, "", "  ")
	if err != nil {
		return fmt.Errorf("exp: marshal archive: %w", err)
	}
	return os.WriteFile(path, data, 0o644)
}

// LoadArchive reads an archive from path.
func LoadArchive(path string) (*Archive, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var a Archive
	if err := json.Unmarshal(data, &a); err != nil {
		return nil, fmt.Errorf("exp: parse archive %s: %w", path, err)
	}
	if a.Reports == nil {
		a.Reports = make(map[string]Report)
	}
	return &a, nil
}

// Delta is one metric's change between two archives.
type Delta struct {
	Experiment string
	Row        string
	Cell       string
	Old, New   float64
	// Rel is (New-Old)/|Old| (0 when Old is 0).
	Rel float64
}

// Diff compares two archives cell by cell and returns the deltas with
// |relative change| >= threshold, sorted by magnitude (largest
// first). Cells present in only one archive are skipped — Diff is
// about drift, not coverage.
func Diff(old, new *Archive, threshold float64) []Delta {
	var out []Delta
	for id, o := range old.Reports {
		n, ok := new.Reports[id]
		if !ok {
			continue
		}
		newRows := map[string]Row{}
		for _, r := range n.Rows {
			newRows[r.Label] = r
		}
		for _, or := range o.Rows {
			nr, ok := newRows[or.Label]
			if !ok {
				continue
			}
			for _, c := range or.Cells {
				nv := nr.Get(c.Name)
				if nv == 0 && c.Value == 0 {
					continue
				}
				rel := 0.0
				if c.Value != 0 {
					rel = (nv - c.Value) / abs(c.Value)
				}
				if abs(rel) >= threshold {
					out = append(out, Delta{
						Experiment: id, Row: or.Label, Cell: c.Name,
						Old: c.Value, New: nv, Rel: rel,
					})
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return abs(out[i].Rel) > abs(out[j].Rel) })
	return out
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
