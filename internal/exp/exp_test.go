package exp

import (
	"strings"
	"testing"

	"repro/internal/sim"
	"repro/internal/workloads"
)

// tinyCfg keeps experiment tests quick: very small windows at a high
// scale factor.
func tinyCfg() sim.Config {
	cfg := sim.DefaultConfig(192)
	cfg.WarmupInstr = 40_000
	cfg.WarmupFrames = 2
	cfg.MeasureInstr = 120_000
	cfg.MinFrames = 2
	cfg.MaxCycles = 30_000_000
	return cfg
}

func TestRowRendering(t *testing.T) {
	r := Row{Label: "M7", Cells: []Cell{{"fps", 41.5}, {"cpu", 1.18}}}
	s := r.String()
	if !strings.Contains(s, "M7") || !strings.Contains(s, "fps=41.500") {
		t.Fatalf("render: %q", s)
	}
	if r.Get("cpu") != 1.18 || r.Get("absent") != 0 {
		t.Fatalf("Get wrong")
	}
}

func TestReportRendering(t *testing.T) {
	rep := Report{ID: "figX", Title: "test", Rows: []Row{{Label: "a"}}, Summary: "sum"}
	s := rep.String()
	for _, want := range []string{"figX", "test", "a", "sum"} {
		if !strings.Contains(s, want) {
			t.Fatalf("missing %q in %q", want, s)
		}
	}
}

func TestByIDUnknown(t *testing.T) {
	x := NewRunner(tinyCfg())
	if _, err := x.ByID("fig99"); err == nil {
		t.Fatalf("no error for unknown experiment")
	}
}

func TestAllIDsDispatchable(t *testing.T) {
	// Only checks the static tables here (figures run simulations and
	// are covered by TestTable... and the benches).
	ids := AllIDs()
	if len(ids) != 13 {
		t.Fatalf("want 13 experiments, got %d", len(ids))
	}
	seen := map[string]bool{}
	for _, id := range ids {
		if seen[id] {
			t.Fatalf("duplicate id %s", id)
		}
		seen[id] = true
	}
}

func TestTable1And3Static(t *testing.T) {
	x := NewRunner(tinyCfg())
	t1, err := x.Table1()
	if err != nil {
		t.Fatal(err)
	}
	if len(t1.Rows) < 10 {
		t.Fatalf("Table1 rows: %d", len(t1.Rows))
	}
	t3, err := x.Table3()
	if err != nil {
		t.Fatal(err)
	}
	if len(t3.Rows) != 14 {
		t.Fatalf("Table3 rows: %d", len(t3.Rows))
	}
}

func TestMemoizationReusesRuns(t *testing.T) {
	x := NewRunner(tinyCfg())
	m := mixByIDOrDie(t, "M13")
	a, err := x.mix(m, sim.PolicyBaseline)
	if err != nil {
		t.Fatal(err)
	}
	b, err := x.mix(m, sim.PolicyBaseline)
	if err != nil {
		t.Fatal(err)
	}
	if a.MeasuredCycles != b.MeasuredCycles || a.GPUFPS != b.GPUFPS {
		t.Fatalf("memoized run differs")
	}
	if len(x.mixRuns) != 1 {
		t.Fatalf("cache has %d entries, want 1", len(x.mixRuns))
	}
}

func TestFig9ShapeSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	x := NewRunner(tinyCfg())
	rep, err := x.Fig9()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 6 {
		t.Fatalf("Fig9 must cover the 6 high-FPS mixes, got %d", len(rep.Rows))
	}
	for _, r := range rep.Rows {
		if r.Get("fpsBase") <= 0 {
			t.Fatalf("row %s has no baseline FPS", r.Label)
		}
	}
	if !strings.Contains(rep.Summary, "paper") {
		t.Fatalf("summary must cite the paper target: %q", rep.Summary)
	}
}

func TestAblationUnknownMix(t *testing.T) {
	x := NewRunner(tinyCfg())
	if _, err := x.AblationWindowStep("M99", []uint64{2}); err == nil {
		t.Fatalf("no error for unknown mix")
	}
	if _, err := x.AblationTargetFPS("nope", []float64{40}); err == nil {
		t.Fatalf("no error for unknown mix")
	}
}

func mixByIDOrDie(t *testing.T, id string) workloads.Mix {
	t.Helper()
	mm, err := workloads.MixByID(id)
	if err != nil {
		t.Fatal(err)
	}
	return mm
}
