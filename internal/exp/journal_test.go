package exp

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/sim"
)

func tmpJournal(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "runs.jsonl")
}

// TestJournalRoundTrip: records appended to a journal come back
// verbatim (and uncorrupted) on reopen.
func TestJournalRoundTrip(t *testing.T) {
	path := tmpJournal(t)
	j, recs, stats, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 || stats.Skipped() != 0 {
		t.Fatalf("fresh journal: %d records, %d skipped", len(recs), stats.Skipped())
	}
	want := []Record{
		{Kind: "mix", Key: "M7/0", Result: &sim.Result{MixID: "M7", MeasuredCycles: 123, IPC: []float64{1.5, 0.5}}},
		{Kind: "gpu", Key: "DOOM3", Result: &sim.Result{GPUFPS: 41.25}},
		{Kind: "cpu", Key: "462", IPC: 1.875},
	}
	for _, rec := range want {
		if err := j.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, got, stats, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if stats.Skipped() != 0 {
		t.Fatalf("skipped %d lines on clean reopen", stats.Skipped())
	}
	if stats.Records != len(got) {
		t.Fatalf("stats.Records = %d, want %d", stats.Records, len(got))
	}
	if len(got) != len(want) {
		t.Fatalf("reopened %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Kind != want[i].Kind || got[i].Key != want[i].Key {
			t.Fatalf("record %d = %s/%s, want %s/%s", i, got[i].Kind, got[i].Key, want[i].Kind, want[i].Key)
		}
		if got[i].Hash == "" {
			t.Fatalf("record %d has no integrity hash", i)
		}
	}
	if got[0].Result.MeasuredCycles != 123 || got[0].Result.IPC[1] != 0.5 {
		t.Fatalf("mix payload mangled: %+v", got[0].Result)
	}
	if got[2].IPC != 1.875 {
		t.Fatalf("cpu payload mangled: %v", got[2].IPC)
	}
}

// TestJournalTornTailTruncated: a partial trailing line — the
// signature of a crash mid-write — is counted as skipped, truncated
// away on open, and the journal keeps accepting appends on a clean
// line boundary.
func TestJournalTornTailTruncated(t *testing.T) {
	path := tmpJournal(t)
	j, _, _, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(Record{Kind: "cpu", Key: "401", IPC: 2}); err != nil {
		t.Fatal(err)
	}
	j.Close()

	// Simulate the torn write.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"kind":"cpu","key":"403","ip`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	j2, recs, stats, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || stats.TornTail != 1 || stats.CorruptLines != 0 {
		t.Fatalf("after torn tail: %d records, stats %+v; want 1 record, 1 torn tail", len(recs), stats)
	}
	if got := j2.Stats(); got != stats {
		t.Fatalf("Journal.Stats() = %+v, want %+v", got, stats)
	}
	if err := j2.Append(Record{Kind: "cpu", Key: "403", IPC: 3}); err != nil {
		t.Fatal(err)
	}
	j2.Close()

	j3, recs, stats, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j3.Close()
	if len(recs) != 2 || stats.Skipped() != 0 {
		t.Fatalf("after repair+append: %d records, %d skipped; want 2, 0", len(recs), stats.Skipped())
	}
	if recs[1].Key != "403" || recs[1].IPC != 3 {
		t.Fatalf("post-repair append mangled: %+v", recs[1])
	}
}

// TestJournalCorruptLineSkipped: a corrupt line in the middle of the
// file (bad JSON, or valid JSON whose integrity hash no longer
// matches) is skipped without losing the records around it.
func TestJournalCorruptLineSkipped(t *testing.T) {
	path := tmpJournal(t)
	j, _, _, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := j.Append(Record{Kind: "cpu", Key: fmt.Sprint(400 + i), IPC: float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(string(data), "\n")
	if len(lines) < 3 {
		t.Fatalf("journal has %d lines", len(lines))
	}

	// Case 1: middle line is not JSON at all.
	mangled := lines[0] + "!!not json!!\n" + lines[2]
	if err := os.WriteFile(path, []byte(mangled), 0o644); err != nil {
		t.Fatal(err)
	}
	_, recs, stats, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || stats.CorruptLines != 1 || stats.TornTail != 0 {
		t.Fatalf("bad JSON line: %d records, stats %+v; want 2 records, 1 corrupt line", len(recs), stats)
	}
	if recs[0].Key != "400" || recs[1].Key != "402" {
		t.Fatalf("wrong survivors: %s, %s", recs[0].Key, recs[1].Key)
	}

	// Case 2: middle line is valid JSON but its payload was tampered
	// with after hashing.
	tampered := strings.Replace(lines[1], `"ipc":1`, `"ipc":9`, 1)
	if tampered == lines[1] {
		t.Fatalf("tamper target not found in %q", lines[1])
	}
	if err := os.WriteFile(path, []byte(lines[0]+tampered+lines[2]), 0o644); err != nil {
		t.Fatal(err)
	}
	_, recs, stats, err = OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || stats.CorruptLines != 1 {
		t.Fatalf("hash-tampered line: %d records, stats %+v; want 2 records, 1 corrupt line", len(recs), stats)
	}
	for _, rec := range recs {
		if rec.Key == "401" {
			t.Fatal("tampered record resurrected")
		}
	}
}

// TestJournalCompact: compaction keeps only the latest record per
// (kind, key), drops the duplicates a long-lived fleet journal
// accumulates across resumes, and replays to byte-identical state —
// and a second compaction is a byte-level no-op.
func TestJournalCompact(t *testing.T) {
	path := tmpJournal(t)
	j, _, _, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	spec := CPUTaskSpec(462)
	history := []Record{
		{Kind: KindQueued, Key: "cpu/462", Spec: &spec},
		{Kind: KindLeased, Key: "cpu/462", Worker: "w1"},
		{Kind: "cpu", Key: "462", IPC: 1.5},
		{Kind: KindQueued, Key: "cpu/462", Spec: &spec}, // resubmitted across a resume
		{Kind: KindLeased, Key: "cpu/462", Worker: "w2"},
		{Kind: "cpu", Key: "462", IPC: 1.5}, // deterministic re-append
		{Kind: "gpu", Key: "DOOM3", Result: &sim.Result{GPUFPS: 41.25}},
		{Kind: KindStolen, Key: "cpu/462", Worker: "w3"},
	}
	for _, rec := range history {
		if err := j.Append(rec); err != nil {
			t.Fatal(err)
		}
	}

	// State a replayer would adopt from the uncompacted journal.
	before := NewRunner(sim.DefaultConfig(96))
	jb, recsBefore, _, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	jb.Close()
	adoptedBefore, _ := before.ReplayJournal(recsBefore)

	kept, dropped, err := j.Compact()
	if err != nil {
		t.Fatal(err)
	}
	// 8 records over 5 distinct (kind,key) pairs.
	if kept != 5 || dropped != 3 {
		t.Fatalf("Compact kept %d dropped %d, want 5/3", kept, dropped)
	}

	// Appends keep working on the compacted file.
	if err := j.Append(Record{Kind: "cpu", Key: "429", IPC: 2}); err != nil {
		t.Fatal(err)
	}
	j.Close()

	j2, recs, stats, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Skipped() != 0 {
		t.Fatalf("compacted journal has %d skipped lines", stats.Skipped())
	}
	if len(recs) != 6 {
		t.Fatalf("compacted journal holds %d records, want 6", len(recs))
	}
	after := NewRunner(sim.DefaultConfig(96))
	adoptedAfter, _ := after.ReplayJournal(recs)
	if adoptedAfter != adoptedBefore+1 { // +1: the post-compact cpu/429 append
		t.Fatalf("replay adopted %d records after compaction, want %d", adoptedAfter, adoptedBefore+1)
	}
	for _, key := range []string{"cpu/462", "gpu/DOOM3", "cpu/429"} {
		rb, eb, okb := before.Lookup(key)
		ra, ea, oka := after.Lookup(key)
		if key == "cpu/429" {
			if !oka || ea != nil {
				t.Fatalf("post-compact append %s not replayed", key)
			}
			continue
		}
		if !okb || !oka || eb != nil || ea != nil {
			t.Fatalf("lookup %s: before ok=%v err=%v, after ok=%v err=%v", key, okb, eb, oka, ea)
		}
		wb, _ := json.Marshal(rb)
		wa, _ := json.Marshal(ra)
		if !bytes.Equal(wb, wa) {
			t.Fatalf("%s replays differently after compaction:\nbefore %s\nafter  %s", key, wb, wa)
		}
	}

	// Compacting an already-compact journal must not change a byte.
	raw1, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if kept, dropped, err := j2.Compact(); err != nil || dropped != 0 || kept != 6 {
		t.Fatalf("second Compact = (%d, %d, %v), want (6, 0, nil)", kept, dropped, err)
	}
	j2.Close()
	raw2, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw1, raw2) {
		t.Fatal("idempotent compaction changed the journal bytes")
	}
}

// TestReplayJournalSeedsMemo: a journaled sweep replayed into a fresh
// runner starts zero new simulations and reproduces the original
// results bit-for-bit — the heart of -resume.
func TestReplayJournalSeedsMemo(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	path := tmpJournal(t)
	j, _, _, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	x := NewRunner(detCfg())
	x.Workers = 2
	x.Journal = j
	m := mixByIDOrDie(t, "W3")
	r1, err := x.mix(m, sim.PolicyBaseline)
	if err != nil {
		t.Fatal(err)
	}
	g1, err := x.gpuStandalone(m.Game)
	if err != nil {
		t.Fatal(err)
	}
	c1, err := x.cpuStandalone(m.SpecIDs[0])
	if err != nil {
		t.Fatal(err)
	}
	j.Close()

	_, recs, stats, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Skipped() != 0 || len(recs) != 3 {
		t.Fatalf("journal: %d records, %d skipped; want 3, 0", len(recs), stats.Skipped())
	}

	y := NewRunner(detCfg())
	if n, ignored := y.ReplayJournal(recs); n != 3 || ignored != 0 {
		t.Fatalf("replayed %d records (%d ignored), want 3 (0)", n, ignored)
	}
	// Replaying the same journal again must be a no-op, with every
	// duplicate accounted for in the ignored count.
	if n, ignored := y.ReplayJournal(recs); n != 0 || ignored != 3 {
		t.Fatalf("second replay adopted %d records (%d ignored), want 0 (3)", n, ignored)
	}
	r2, err := y.mix(m, sim.PolicyBaseline)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := y.gpuStandalone(m.Game)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := y.cpuStandalone(m.SpecIDs[0])
	if err != nil {
		t.Fatal(err)
	}
	if got := y.Started(); got != 0 {
		t.Fatalf("resumed runner started %d simulations, want 0", got)
	}
	if fmt.Sprintf("%+v", r1) != fmt.Sprintf("%+v", r2) {
		t.Fatal("replayed mix result differs from the original run")
	}
	if fmt.Sprintf("%+v", g1) != fmt.Sprintf("%+v", g2) {
		t.Fatal("replayed gpu result differs from the original run")
	}
	if c1 != c2 {
		t.Fatalf("replayed cpu IPC %v != original %v", c2, c1)
	}
}
