package exp

import (
	"context"
	"errors"
	"testing"

	"repro/internal/sim"
)

// TestTaskKeyRoundTrip: Key and ParseKey are inverses for every task
// kind — the property the service's idempotency and the journal's
// resume path both stand on.
func TestTaskKeyRoundTrip(t *testing.T) {
	specs := []TaskSpec{
		MixTaskSpec("M7", sim.PolicyCMBAL),
		MixTaskSpec("W3", sim.PolicyBaseline),
		GPUTaskSpec("DOOM3"),
		CPUTaskSpec(462),
	}
	for _, spec := range specs {
		got, err := ParseKey(spec.Key())
		if err != nil {
			t.Fatalf("ParseKey(%q): %v", spec.Key(), err)
		}
		if got != spec {
			t.Errorf("ParseKey(%q) = %+v, want %+v", spec.Key(), got, spec)
		}
	}
	for _, bad := range []string{"", "mix", "mix/M7", "cpu/notanumber", "weird/x"} {
		if _, err := ParseKey(bad); err == nil {
			t.Errorf("ParseKey(%q) accepted a malformed key", bad)
		}
	}
}

// TestTaskValidate: admission-time validation resolves against the
// real catalogs and the policy range.
func TestTaskValidate(t *testing.T) {
	valid := []TaskSpec{
		MixTaskSpec("M1", sim.PolicyBaseline),
		GPUTaskSpec("Crysis"),
		CPUTaskSpec(429),
	}
	for _, spec := range valid {
		if err := spec.Validate(); err != nil {
			t.Errorf("Validate(%+v): %v", spec, err)
		}
	}
	invalid := []TaskSpec{
		{Kind: "mix", MixID: "M99"},
		{Kind: "mix", MixID: "M1", Policy: sim.PolicyCMBAL + 1},
		{Kind: "gpu", Game: "NoSuchGame"},
		{Kind: "cpu", SpecID: 999},
		{Kind: "quantum"},
	}
	for _, spec := range invalid {
		if err := spec.Validate(); err == nil {
			t.Errorf("Validate(%+v) accepted an invalid spec", spec)
		}
	}
}

// TestTaskFamily: all policies of a mix share one breaker family,
// standalone runs are their own.
func TestTaskFamily(t *testing.T) {
	a := MixTaskSpec("M7", sim.PolicyBaseline).Family()
	b := MixTaskSpec("M7", sim.PolicyCMBAL).Family()
	if a != b || a != "mix/M7" {
		t.Fatalf("mix families %q vs %q, want both mix/M7", a, b)
	}
	if f := CPUTaskSpec(462).Family(); f != "cpu/462" {
		t.Fatalf("cpu family %q", f)
	}
}

// TestDoLookupForget exercises the service-facing runner surface with
// a real (tiny) simulation: Do memoizes, Lookup serves the memo
// without blocking, Forget refuses to drop a success.
func TestDoLookupForget(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	x := NewRunner(detCfg())
	spec := CPUTaskSpec(462)
	key := spec.Key()

	if _, _, ok := x.Lookup(key); ok {
		t.Fatal("Lookup hit before any run")
	}
	res, err := x.Do(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.IPC <= 0 {
		t.Fatalf("Do IPC = %v, want > 0", res.IPC)
	}
	got, lerr, ok := x.Lookup(key)
	if !ok || lerr != nil || got.IPC != res.IPC {
		t.Fatalf("Lookup = (%+v, %v, %v), want the memoized result", got, lerr, ok)
	}
	if x.Forget(key) {
		t.Fatal("Forget dropped a successful run")
	}
	if _, _, ok := x.Lookup(key); !ok {
		t.Fatal("success evicted by Forget")
	}
}

// TestDoCancelledThenForget: a Do whose context is already cancelled
// fails (the per-request deadline path), the failure is memoized, and
// Forget clears it so a deliberate retry re-runs and succeeds — the
// exact sequence hetsimd uses after a breaker's half-open probe.
func TestDoCancelledThenForget(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	x := NewRunner(detCfg())
	spec := CPUTaskSpec(429)
	key := spec.Key()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := x.Do(ctx, spec); !errors.Is(err, context.Canceled) {
		t.Fatalf("Do with cancelled ctx: err = %v, want context.Canceled", err)
	}
	if _, lerr, ok := x.Lookup(key); !ok || lerr == nil {
		t.Fatalf("failure not memoized: (%v, %v)", lerr, ok)
	}
	if !x.Forget(key) {
		t.Fatal("Forget refused to drop a memoized failure")
	}
	if _, _, ok := x.Lookup(key); ok {
		t.Fatal("Lookup still hits after Forget")
	}
	res, err := x.Do(context.Background(), spec)
	if err != nil || res.IPC <= 0 {
		t.Fatalf("retry after Forget: (%+v, %v)", res, err)
	}
}
