package exp

import "fmt"

// RunError quarantines one failed simulation: the key identifies the
// memoized run ("M7/2", a game name, a SPEC id), Phase says which
// accessor dispatched it, and Stack is non-empty when the failure was
// a recovered panic. A RunError poisons only its own flight — every
// waiter for the same key gets the same error while sibling runs in
// the sweep complete normally.
type RunError struct {
	Key   string // memo key within the phase
	Phase string // "mix", "gpu", "cpu", or "dispatch"
	Err   error
	Stack string // goroutine stack at the recovered panic, else ""
}

// Error implements error.
func (e *RunError) Error() string {
	return fmt.Sprintf("exp: run %s/%s: %v", e.Phase, e.Key, e.Err)
}

// Unwrap exposes the cause to errors.Is/As.
func (e *RunError) Unwrap() error { return e.Err }

// record registers a RunError on the runner's error log and returns
// it, so accessors can `return x.record(...)` in one expression.
func (x *Runner) record(e *RunError) *RunError {
	x.mu.Lock()
	x.errs = append(x.errs, e)
	x.mu.Unlock()
	return e
}

// Errors returns every RunError recorded so far (validation failures,
// recovered panics, interrupted runs), in completion order. Sweeps
// that tolerate partial failure render their report from whatever
// succeeded and then consult this list.
func (x *Runner) Errors() []*RunError {
	x.mu.Lock()
	defer x.mu.Unlock()
	return append([]*RunError(nil), x.errs...)
}
