package exp

import (
	"os"
	"testing"
)

// TestReadJournalAtWindowedRead: ReadJournalAt pages a journal by byte
// offset, honors max, and the returned next offsets re-read the rest
// exactly — the contract the fleet replication stream is built on.
func TestReadJournalAtWindowedRead(t *testing.T) {
	path := tmpJournal(t)
	j, _, _, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	want := []Record{
		{Kind: "cpu", Key: "401", IPC: 1},
		{Kind: "cpu", Key: "403", IPC: 2},
		{Kind: "cpu", Key: "410", IPC: 3},
		{Kind: "term", Term: 7},
		{Kind: "cpu", Key: "429", IPC: 4},
	}
	for _, rec := range want {
		if err := j.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()

	var got []Record
	var from int64
	for {
		recs, next, err := ReadJournalAt(path, from, 2)
		if err != nil {
			t.Fatal(err)
		}
		if len(recs) == 0 {
			break
		}
		if len(recs) > 2 {
			t.Fatalf("max=2 returned %d records", len(recs))
		}
		for _, rec := range recs {
			if !VerifyRecord(rec) {
				t.Fatalf("record failed verification: %+v", rec)
			}
		}
		got = append(got, recs...)
		if next <= from {
			t.Fatalf("offset did not advance: %d -> %d", from, next)
		}
		from = next
	}
	if len(got) != len(want) {
		t.Fatalf("paged read got %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Kind != want[i].Kind || got[i].Key != want[i].Key || got[i].Term != want[i].Term {
			t.Fatalf("record %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	fi, _ := os.Stat(path)
	if from != fi.Size() {
		t.Fatalf("final offset %d, want file size %d", from, fi.Size())
	}
}

// TestReadJournalAtStopsAtTornTail: a reader racing a live appender can
// see a half-written final line. ReadJournalAt must serve everything
// before it and return an offset AT the torn record — never past it —
// so the next poll re-reads the line whole once the writer finishes.
func TestReadJournalAtStopsAtTornTail(t *testing.T) {
	path := tmpJournal(t)
	j, _, _, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(Record{Kind: "cpu", Key: "401", IPC: 1}); err != nil {
		t.Fatal(err)
	}
	j.Close()
	fi, _ := os.Stat(path)
	tornAt := fi.Size()

	// Simulate the mid-write race: a record without its newline yet.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"kind":"cpu","key":"403","ip`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	recs, next, err := ReadJournalAt(path, 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Key != "401" {
		t.Fatalf("torn-tail read = %d records (%+v), want just the whole one", len(recs), recs)
	}
	if next != tornAt {
		t.Fatalf("next = %d, want %d (start of the torn record)", next, tornAt)
	}

	// The writer finishes the line (simulated via a fresh journal append
	// after repair): re-reading from the same offset now yields it.
	j2, _, _, err := OpenJournal(path) // truncates the torn tail
	if err != nil {
		t.Fatal(err)
	}
	if err := j2.Append(Record{Kind: "cpu", Key: "403", IPC: 2}); err != nil {
		t.Fatal(err)
	}
	j2.Close()
	recs, _, err = ReadJournalAt(path, next, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Key != "403" {
		t.Fatalf("resumed read = %+v, want the finished record", recs)
	}
}

// TestAppendBatchHashesEveryRecord: AppendBatch (the standby's mirror
// write) stamps the same per-record integrity hash Append does, in one
// fsync, and the result reopens clean.
func TestAppendBatchHashesEveryRecord(t *testing.T) {
	path := tmpJournal(t)
	j, _, _, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	batch := []Record{
		{Kind: "cpu", Key: "401", IPC: 1},
		{Kind: "term", Term: 3},
		{Kind: "cpu", Key: "403", IPC: 2},
	}
	if err := j.AppendBatch(batch); err != nil {
		t.Fatal(err)
	}
	if err := j.AppendBatch(nil); err != nil {
		t.Fatalf("empty batch: %v", err)
	}
	j.Close()

	_, recs, stats, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 || stats.Skipped() != 0 {
		t.Fatalf("reopened %d records, %d skipped; want 3, 0", len(recs), stats.Skipped())
	}
	for i, rec := range recs {
		if rec.Hash == "" || !VerifyRecord(rec) {
			t.Fatalf("batch record %d not integrity-hashed: %+v", i, rec)
		}
	}
	if recs[1].Term != 3 {
		t.Fatalf("term record mangled: %+v", recs[1])
	}
}
