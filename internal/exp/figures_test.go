package exp

import (
	"testing"

	"repro/internal/sim"
)

func TestPerFrame(t *testing.T) {
	if perFrame(100, 4) != 25 {
		t.Fatalf("perFrame wrong")
	}
	if perFrame(100, 0) != 0 {
		t.Fatalf("zero frames should give 0")
	}
}

func TestPerCycleRate(t *testing.T) {
	r := sim.Result{
		MeasuredCycles: 1000,
		IPC:            []float64{1, 1},
		CPULLCMisses:   200,
	}
	// 2 IPC x 1000 cycles = 2000 instructions; 200/2000 = 0.1.
	if got := perCycleRate(r); got != 0.1 {
		t.Fatalf("perCycleRate = %v", got)
	}
	if perCycleRate(sim.Result{}) != 0 {
		t.Fatalf("empty result should give 0")
	}
}

func TestWeightedSpeedupHelper(t *testing.T) {
	base := sim.Result{IPC: []float64{1, 2}}
	r := sim.Result{IPC: []float64{2, 2}}
	// (2/1 + 2/2)/2 = 1.5
	got, err := weightedSpeedup(r, base)
	if err != nil {
		t.Fatal(err)
	}
	if got != 1.5 {
		t.Fatalf("ws = %v", got)
	}
	// A per-core IPC mismatch used to yield a silent 0 datapoint; it
	// must now be a reported error.
	if _, err := weightedSpeedup(sim.Result{}, base); err == nil {
		t.Fatal("mismatched IPC lengths must error, not return 0")
	}
	if _, err := weightedSpeedup(sim.Result{IPC: []float64{1}}, base); err == nil {
		t.Fatal("1-core run vs 2-core baseline must error")
	}
}

func TestBwGBpsHelper(t *testing.T) {
	r := sim.Result{GPUReadBytes: 4e9, GPUWriteBytes: 2e9, MeasuredCycles: 4e9}
	read, write := bwGBps(r, 4e9)
	if read != 4 || write != 2 {
		t.Fatalf("bw = %v/%v", read, write)
	}
}

func TestComparisonPoliciesLineup(t *testing.T) {
	// Figs. 12-14 must compare exactly the paper's lineup, baseline
	// first.
	want := []sim.Policy{
		sim.PolicyBaseline, sim.PolicySMS09, sim.PolicySMS0,
		sim.PolicyDynPrio, sim.PolicyHeLM, sim.PolicyThrottleCPUPrio,
	}
	if len(comparisonPolicies) != len(want) {
		t.Fatalf("lineup size %d", len(comparisonPolicies))
	}
	for i := range want {
		if comparisonPolicies[i] != want[i] {
			t.Fatalf("lineup[%d] = %v, want %v", i, comparisonPolicies[i], want[i])
		}
	}
}
