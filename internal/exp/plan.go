package exp

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/workloads"
)

// A task is one simulation an experiment needs: a heterogeneous mix
// under a policy, a standalone game, or a standalone CPU application.
// Plans enumerate tasks so Prefetch can dispatch an experiment's
// whole run set to the worker pool before any row is assembled —
// without plans, the figure code's sequential row loops would leave
// the pool idle.
type task struct {
	mix    workloads.Mix // valid when kind == taskMix
	policy sim.Policy
	game   string // valid when kind == taskGPUAlone
	specID int    // valid when kind == taskCPUAlone
	kind   taskKind
}

type taskKind uint8

const (
	taskMix taskKind = iota
	taskGPUAlone
	taskCPUAlone
)

// run executes (or joins) the task through the memoizing accessors.
// Prefetch is fire-and-forget: failures stay memoized on the flight
// (and in Errors()), and the figure assembling the rows re-surfaces
// them with full context.
func (x *Runner) run(t task) {
	switch t.kind {
	case taskMix:
		_, _ = x.mix(t.mix, t.policy)
	case taskGPUAlone:
		_, _ = x.gpuStandalone(t.game)
	case taskCPUAlone:
		_, _ = x.cpuStandalone(t.specID)
	}
}

// mixTasks expands mixes × policies, optionally with each mix's
// standalone runs alongside.
func mixTasks(mixes []workloads.Mix, policies ...sim.Policy) []task {
	var out []task
	for _, m := range mixes {
		for _, p := range policies {
			out = append(out, task{kind: taskMix, mix: m, policy: p})
		}
	}
	return out
}

// plan returns every simulation experiment id depends on. It must
// stay in sync with the figure implementations; the plan consistency
// test asserts that assembling an experiment after prefetching its
// plan starts no additional runs.
func plan(id string) ([]task, error) {
	throttlePolicies := []sim.Policy{
		sim.PolicyBaseline, sim.PolicyThrottle, sim.PolicyThrottleCPUPrio,
	}
	switch id {
	case "table1", "table3":
		return nil, nil
	case "table2":
		var out []task
		for _, g := range workloads.Games() {
			out = append(out, task{kind: taskGPUAlone, game: g.Name})
		}
		return out, nil
	case "fig1":
		out := mixTasks(workloads.MotivationMixes(), sim.PolicyBaseline)
		for _, m := range workloads.MotivationMixes() {
			out = append(out,
				task{kind: taskCPUAlone, specID: m.SpecIDs[0]},
				task{kind: taskGPUAlone, game: m.Game})
		}
		return out, nil
	case "fig2":
		out := mixTasks(workloads.MotivationMixes(), sim.PolicyBaseline)
		for _, m := range workloads.MotivationMixes() {
			out = append(out, task{kind: taskGPUAlone, game: m.Game})
		}
		return out, nil
	case "fig3":
		return mixTasks(workloads.MotivationMixes(),
			sim.PolicyBaseline, sim.PolicyForcedBypass), nil
	case "fig8":
		return mixTasks(workloads.EvalMixes(), sim.PolicyDynPrio), nil
	case "fig9", "fig10", "fig11":
		return mixTasks(workloads.HighFPSMixes(), throttlePolicies...), nil
	case "fig12":
		return mixTasks(workloads.HighFPSMixes(), comparisonPolicies...), nil
	case "fig13", "fig14":
		return mixTasks(workloads.LowFPSMixes(), comparisonPolicies...), nil
	}
	return nil, fmt.Errorf("exp: unknown experiment %q (fig1-3, fig8-14, table1-3)", id)
}

// Prefetch dispatches every simulation the given experiments depend
// on to the worker pool and returns without waiting. Duplicate runs
// across experiments (e.g. the shared baselines of figs. 9–12) are
// coalesced by the singleflight cache. Use Wait to block for
// completion, or simply assemble the experiments — their accessors
// join the in-flight runs.
func (x *Runner) Prefetch(ids ...string) error {
	var tasks []task
	for _, id := range ids {
		ts, err := plan(id)
		if err != nil {
			return err
		}
		tasks = append(tasks, ts...)
	}
	for _, t := range tasks {
		x.wg.Add(1)
		go func(t task) {
			defer x.wg.Done()
			x.run(t)
		}(t)
	}
	return nil
}

// RunAll regenerates the given experiments (all of AllIDs when none
// are named) with every underlying simulation dispatched to the
// worker pool up front, and returns the reports in request order.
// Output is byte-identical to running the experiments serially: the
// pool only changes when simulations execute, never what any of them
// computes.
func (x *Runner) RunAll(ids ...string) ([]Report, error) {
	if len(ids) == 0 {
		ids = AllIDs()
	}
	if err := x.Prefetch(ids...); err != nil {
		return nil, err
	}
	reports := make([]Report, 0, len(ids))
	for _, id := range ids {
		rep, err := x.ByID(id)
		if err != nil {
			return nil, err
		}
		reports = append(reports, rep)
	}
	return reports, nil
}
