package exp

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime/debug"

	"repro/internal/twin"
)

// Serving tiers a TaskSpec may request (DESIGN.md §14). The default
// (empty or TierFull) runs the cycle-accurate simulator. TierTwin
// answers from the calibrated analytic model in microseconds and
// fails when the query leaves the calibrated hull. TierAuto asks the
// twin first and escalates to full simulation when the model is
// absent, the query is outside the hull, or the prediction's
// confidence falls below the runner's threshold.
const (
	TierFull = "full"
	TierTwin = "twin"
	TierAuto = "auto"
)

// DefaultTwinThreshold is the auto-tier confidence floor when
// Runner.TwinThreshold is left at 0: predictions whose calibration
// residuals imply more than a few percent of relative error escalate.
const DefaultTwinThreshold = 0.7

// KindTwin journals a twin-tier answer. Twin records live in their own
// kind so an analytic prediction can never be replayed into a
// cycle-accurate memo map — the golden hashes only ever see simulator
// output. Auto-tier escalations journal through the normal kind for
// their run (the full result IS simulator output) and are not
// duplicated under KindTwin: after a resume the prediction is
// recomputed in microseconds and the escalation hits the replayed
// full-sim memo.
const KindTwin = "twin"

// ErrNoTwin reports a twin-tier task on a runner with no model loaded.
var ErrNoTwin = errors.New("exp: no twin model loaded (start with -twin-coeffs)")

// twinDo serves a twin- or auto-tier task. Flights are memoized under
// the base key in their own map, so twin answers and full-sim results
// never share storage; the flight completion protocol matches lead()
// but takes no worker-pool slot — a prediction costs microseconds, and
// an escalated run takes its slot inside the normal accessor it calls.
func (x *Runner) twinDo(ctx context.Context, t TaskSpec) (TaskResult, error) {
	base := t
	base.Tier = ""
	key := base.Key()
	f, leader := forKey(x, x.twinRuns, key)
	if !leader {
		<-f.done
		return f.val, f.err
	}
	defer close(f.done)
	func() {
		defer func() {
			if r := recover(); r != nil {
				f.err = x.record(&RunError{
					Key: "twin/" + key, Phase: "twin",
					Err:   fmt.Errorf("panic: %v", r),
					Stack: string(debug.Stack()),
				})
			}
		}()
		f.val, f.err = x.twinLead(ctx, t.Tier, base, key)
	}()
	return f.val, f.err
}

// twinLead computes one twin- or auto-tier answer as its flight's
// leader.
func (x *Runner) twinLead(ctx context.Context, tier string, base TaskSpec, key string) (TaskResult, error) {
	pred, perr := x.predict(base)

	if tier == TierTwin {
		if perr != nil {
			return TaskResult{}, perr
		}
		x.bumpTwin(&x.twinHits)
		x.journalAppend(Record{Kind: KindTwin, Key: key, Twin: pred})
		return TaskResult{Tier: TierTwin, Prediction: pred}, nil
	}

	// TierAuto: serve the prediction when it clears the confidence
	// floor, escalate to cycle-accurate simulation otherwise.
	if perr == nil && pred.Confidence >= x.twinThreshold() {
		x.bumpTwin(&x.twinHits)
		x.journalAppend(Record{Kind: KindTwin, Key: key, Twin: pred})
		return TaskResult{Tier: TierTwin, Prediction: pred}, nil
	}
	x.bumpTwin(&x.twinEscalations)
	res, err := x.fullDo(ctx, base)
	if err != nil {
		return TaskResult{}, err
	}
	res.Tier = TierFull
	if perr == nil {
		// Both answers exist: attach the prediction and its measured
		// error so every escalation doubles as a free accuracy probe.
		res.Prediction = pred
		res.TwinFrameErrPct, res.TwinIPCErrPct = predictionError(pred, res)
	}
	return res, nil
}

// predict answers base from the loaded twin model, or reports why it
// cannot (no model, outside the calibrated hull, config mismatch).
func (x *Runner) predict(base TaskSpec) (*twin.Prediction, error) {
	m := x.Twin
	if m == nil {
		return nil, ErrNoTwin
	}
	var (
		p   twin.Prediction
		err error
	)
	switch base.Kind {
	case KindMix:
		p, err = m.PredictMix(x.Cfg, base.MixID, base.Policy)
	case KindGPU:
		p, err = m.PredictGPU(x.Cfg, base.Game)
	case KindCPU:
		p, err = m.PredictCPU(x.Cfg, base.SpecID)
	default:
		err = fmt.Errorf("%w: kind %s has no analytic model", twin.ErrUncalibrated, base.Kind)
	}
	if err != nil {
		return nil, err
	}
	return &p, nil
}

// predictionError measures a prediction against the simulated truth it
// escalated to: relative frame-rate error and the geometric-mean
// per-core IPC error, both in percent.
func predictionError(pred *twin.Prediction, res TaskResult) (framePct, ipcPct float64) {
	var fps float64
	var ipc []float64
	if res.Result != nil {
		fps = res.Result.GPUFPS
		ipc = res.Result.IPC
	} else if res.IPC > 0 {
		ipc = []float64{res.IPC}
	}
	if pred.FPS > 0 && fps > 0 {
		framePct = 100 * math.Abs(pred.FPS/fps-1)
	}
	n, sum := 0, 0.0
	for i, v := range ipc {
		if i < len(pred.IPC) && v > 0 && pred.IPC[i] > 0 {
			sum += math.Abs(math.Log(pred.IPC[i] / v))
			n++
		}
	}
	if n > 0 {
		ipcPct = 100 * (math.Exp(sum/float64(n)) - 1)
	}
	return framePct, ipcPct
}

// twinThreshold resolves the auto-tier confidence floor: 0 means the
// default; a negative threshold accepts every in-hull prediction.
func (x *Runner) twinThreshold() float64 {
	if x.TwinThreshold == 0 {
		return DefaultTwinThreshold
	}
	return x.TwinThreshold
}

// bumpTwin increments one of the twin counters under the runner lock.
func (x *Runner) bumpTwin(p *uint64) {
	x.mu.Lock()
	*p++
	x.mu.Unlock()
}

// TwinHits returns how many tasks the twin tier answered analytically.
func (x *Runner) TwinHits() uint64 {
	x.mu.Lock()
	defer x.mu.Unlock()
	return x.twinHits
}

// TwinEscalations returns how many auto-tier tasks escalated to full
// simulation.
func (x *Runner) TwinEscalations() uint64 {
	x.mu.Lock()
	defer x.mu.Unlock()
	return x.twinEscalations
}

// TwinModel returns the loaded twin model, if any. The simulation
// engine never consults it — it only serves twin- and auto-tier tasks.
func (x *Runner) TwinModel() *twin.Model { return x.Twin }
