package exp

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/workloads"
)

// panicInjector blows up the first time the simulator consults it,
// standing in for any bug deep inside a run.
type panicInjector struct{}

func (panicInjector) HoldLLCIntake(cycle uint64) bool { panic("injected fault: boom") }
func (panicInjector) HoldDRAM(cycle uint64) bool      { return false }
func (panicInjector) DropFill(cycle uint64) bool      { return false }

// TestPanicQuarantinedToKey: a run that panics becomes a RunError with
// the goroutine stack attached, every waiter on the same key sees the
// same error without re-running it, and the runner stays usable.
func TestPanicQuarantinedToKey(t *testing.T) {
	cfg := detCfg()
	cfg.Faults = panicInjector{}
	x := NewRunner(cfg)
	x.Workers = 2
	m := mixByIDOrDie(t, "W3")

	_, err := x.mix(m, sim.PolicyBaseline)
	if err == nil {
		t.Fatal("panicking run returned no error")
	}
	var re *RunError
	if !errors.As(err, &re) {
		t.Fatalf("error is %T, want *RunError", err)
	}
	if re.Phase != "mix" || re.Key != m.ID+"/0" {
		t.Fatalf("RunError = %s/%s, want mix/%s/0", re.Phase, re.Key, m.ID)
	}
	if !strings.Contains(re.Err.Error(), "injected fault: boom") {
		t.Fatalf("cause lost: %v", re.Err)
	}
	if re.Stack == "" || !strings.Contains(re.Stack, "goroutine") {
		t.Fatal("recovered panic carries no stack trace")
	}

	// A second caller joins the poisoned flight: same error, no rerun.
	_, err2 := x.mix(m, sim.PolicyBaseline)
	if err2 != err {
		t.Fatalf("waiter got %v, want the memoized %v", err2, err)
	}
	if got := x.Started(); got != 1 {
		t.Fatalf("started %d runs, want 1 (no retry storm)", got)
	}
	if errs := x.Errors(); len(errs) != 1 || errs[0] != re {
		t.Fatalf("Errors() = %v, want the one RunError", errs)
	}
}

// TestBadInputQuarantinedWhileSiblingsComplete: an invalid mix fails
// validation before any simulation starts, and a healthy sibling on
// the same runner is unaffected.
func TestBadInputQuarantinedWhileSiblingsComplete(t *testing.T) {
	x := NewRunner(detCfg())
	x.Workers = 2
	bad := workloads.Mix{ID: "Mbad", Game: "NoSuchGame", SpecIDs: []int{401}}
	if _, err := x.mix(bad, sim.PolicyBaseline); err == nil {
		t.Fatal("invalid mix ran without error")
	}
	good := mixByIDOrDie(t, "W3")
	r, err := x.mix(good, sim.PolicyBaseline)
	if err != nil {
		t.Fatalf("healthy sibling failed after quarantined key: %v", err)
	}
	if r.MeasuredCycles == 0 {
		t.Fatal("healthy sibling produced an empty result")
	}
	if errs := x.Errors(); len(errs) != 1 || errs[0].Key != "Mbad/0" {
		t.Fatalf("Errors() = %v, want exactly the quarantined Mbad/0", errs)
	}
}

// TestCancelledContextFailsDispatchFast: with the runner's context
// already cancelled, new runs fail at dispatch without simulating.
func TestCancelledContextFailsDispatchFast(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	x := NewRunner(detCfg())
	x.Ctx = ctx
	m := mixByIDOrDie(t, "W3")

	start := time.Now()
	_, err := x.mix(m, sim.PolicyBaseline)
	if err == nil {
		t.Fatal("cancelled runner still ran")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error = %v, want context.Canceled in its chain", err)
	}
	var re *RunError
	if !errors.As(err, &re) || re.Phase != "dispatch" {
		t.Fatalf("error = %v, want a dispatch-phase RunError", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("cancelled dispatch took %v", elapsed)
	}
	if got := x.Started(); got != 0 {
		t.Fatalf("cancelled runner started %d simulations", got)
	}
}

// TestRunTimeoutInterrupts: a per-run wall-clock timeout ends the
// simulation at its next interrupt poll and surfaces as an error, not
// as a half-measured result (which would be wall-clock-dependent and
// must never be journaled or memoized as data).
func TestRunTimeoutInterrupts(t *testing.T) {
	x := NewRunner(detCfg())
	x.RunTimeout = time.Nanosecond
	m := mixByIDOrDie(t, "W3")
	_, err := x.mix(m, sim.PolicyBaseline)
	if err == nil {
		t.Fatal("timed-out run returned no error")
	}
	if !strings.Contains(err.Error(), "timeout") {
		t.Fatalf("error = %v, want a timeout cause", err)
	}
}
