package exp

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workloads"
)

// Fig1 reproduces the motivation experiment: each W-mix (one CPU app
// + one GPU app) in heterogeneous mode, with CPU and GPU performance
// normalized to their standalone runs. The paper reports ~22% mean
// loss on both sides.
func (x *Runner) Fig1() (Report, error) {
	rep := Report{ID: "fig1", Title: "CPU and GPU performance, heterogeneous / standalone (W1-W14)"}
	var cpuR, gpuR []float64
	for _, m := range workloads.MotivationMixes() {
		het, err := x.mix(m, sim.PolicyBaseline)
		if err != nil {
			return Report{}, err
		}
		aloneIPC, err := x.cpuStandalone(m.SpecIDs[0])
		if err != nil {
			return Report{}, err
		}
		aloneGPU, err := x.gpuStandalone(m.Game)
		if err != nil {
			return Report{}, err
		}
		cr, gr := 0.0, 0.0
		if aloneIPC > 0 && len(het.IPC) > 0 {
			cr = het.IPC[0] / aloneIPC
		}
		if aloneGPU.GPUFPS > 0 {
			gr = het.GPUFPS / aloneGPU.GPUFPS
		}
		cpuR = append(cpuR, cr)
		gpuR = append(gpuR, gr)
		rep.Rows = append(rep.Rows, Row{Label: m.ID, Cells: []Cell{
			{"cpu", cr}, {"gpu", gr},
		}})
	}
	rep.Summary = fmt.Sprintf("GMEAN cpu=%.3f gpu=%.3f (paper: ~0.78 both)",
		stats.GMean(cpuR), stats.GMean(gpuR))
	return rep, nil
}

// Fig2 reproduces the frame-rate comparison: per GPU application,
// standalone vs heterogeneous FPS, against the 30 FPS satisfaction
// line and 40 FPS target.
func (x *Runner) Fig2() (Report, error) {
	rep := Report{ID: "fig2", Title: "GPU frame rate, standalone vs heterogeneous (30 FPS line)"}
	above := 0
	for _, m := range workloads.MotivationMixes() {
		alone, err := x.gpuStandalone(m.Game)
		if err != nil {
			return Report{}, err
		}
		het, err := x.mix(m, sim.PolicyBaseline)
		if err != nil {
			return Report{}, err
		}
		game, err := workloads.GameByName(m.Game)
		if err != nil {
			return Report{}, err
		}
		if het.GPUFPS > 40 {
			above++
		}
		rep.Rows = append(rep.Rows, Row{Label: m.Game, Cells: []Cell{
			{"standalone", alone.GPUFPS}, {"hetero", het.GPUFPS},
			{"tableFPS", game.TableFPS},
		}})
	}
	rep.Summary = fmt.Sprintf("%d of 14 titles above the 40 FPS target in heterogeneous mode (paper: 6)", above)
	return rep, nil
}

// Fig3 reproduces the forced-bypass study: CPU speedup over the
// heterogeneous baseline when ALL GPU read-miss fills bypass the LLC.
// The paper reports a ~2% mean CPU loss with wide spread (+10%/-14%).
func (x *Runner) Fig3() (Report, error) {
	rep := Report{ID: "fig3", Title: "CPU speedup when all GPU read misses bypass the LLC (W1-W14)"}
	var sp []float64
	for _, m := range workloads.MotivationMixes() {
		base, err := x.mix(m, sim.PolicyBaseline)
		if err != nil {
			return Report{}, err
		}
		byp, err := x.mix(m, sim.PolicyForcedBypass)
		if err != nil {
			return Report{}, err
		}
		s, err := weightedSpeedup(byp, base)
		if err != nil {
			return Report{}, err
		}
		sp = append(sp, s)
		rep.Rows = append(rep.Rows, Row{Label: m.ID, Cells: []Cell{{"speedup", s}}})
	}
	rep.Summary = fmt.Sprintf("GMEAN speedup=%.3f (paper: ~0.98)", stats.GMean(sp))
	return rep, nil
}

// Fig8 reproduces the frame-rate estimation accuracy study: percent
// error of the FRPU's in-frame prediction per GPU application. The
// paper reports |error| <= 6% with mean below 1%.
func (x *Runner) Fig8() (Report, error) {
	rep := Report{ID: "fig8", Title: "Percent error in dynamic frame rate estimation"}
	var absErrs []float64
	for _, m := range workloads.EvalMixes() {
		// DynPrio exercises the FRPU without the throttle's feedback
		// perturbing frame times, isolating estimator accuracy.
		r, err := x.mix(m, sim.PolicyDynPrio)
		if err != nil {
			return Report{}, err
		}
		rep.Rows = append(rep.Rows, Row{Label: m.Game, Cells: []Cell{
			{"errPct", r.FRPUMeanErrPct}, {"absErrPct", r.FRPUMeanAbsErrPct},
		}})
		absErrs = append(absErrs, r.FRPUMeanAbsErrPct)
	}
	rep.Summary = fmt.Sprintf("mean |error| = %.2f%% (paper: <1%%, max 6%%)", stats.Mean(absErrs))
	return rep, nil
}

// throttleTriple fetches the baseline/Throttled/ThrotCPUprio runs of
// one mix — the shared shape of Figs. 9–11.
func (x *Runner) throttleTriple(m workloads.Mix) (base, thr, pri sim.Result, err error) {
	if base, err = x.mix(m, sim.PolicyBaseline); err != nil {
		return
	}
	if thr, err = x.mix(m, sim.PolicyThrottle); err != nil {
		return
	}
	pri, err = x.mix(m, sim.PolicyThrottleCPUPrio)
	return
}

// Fig9 reproduces the core throttling evaluation on the six mixes
// whose GPU exceeds the 40 FPS target: FPS under baseline, Throttled,
// and Throttled+CPUprio (left panel), and the normalized weighted CPU
// speedups (right panel; paper: +11% and +18%).
func (x *Runner) Fig9() (Report, error) {
	rep := Report{ID: "fig9", Title: "Access throttling: GPU FPS and CPU weighted speedup (high-FPS mixes)"}
	var thrS, priS []float64
	for _, m := range workloads.HighFPSMixes() {
		base, thr, pri, err := x.throttleTriple(m)
		if err != nil {
			return Report{}, err
		}
		st, err := weightedSpeedup(thr, base)
		if err != nil {
			return Report{}, err
		}
		sp, err := weightedSpeedup(pri, base)
		if err != nil {
			return Report{}, err
		}
		thrS = append(thrS, st)
		priS = append(priS, sp)
		rep.Rows = append(rep.Rows, Row{Label: m.ID + "/" + m.Game, Cells: []Cell{
			{"fpsBase", base.GPUFPS}, {"fpsThr", thr.GPUFPS}, {"fpsPri", pri.GPUFPS},
			{"cpuThr", st}, {"cpuPri", sp},
		}})
	}
	rep.Summary = fmt.Sprintf("GMEAN cpu speedup: throttled=%.3f throttled+prio=%.3f (paper: 1.11 / 1.18)",
		stats.GMean(thrS), stats.GMean(priS))
	return rep, nil
}

// Fig10 reproduces the LLC miss analysis: GPU (left) and CPU (right)
// LLC miss counts under the two throttling configurations, normalized
// to baseline. The paper reports GPU +39%/+42% and CPU -4%/-4.5%.
func (x *Runner) Fig10() (Report, error) {
	rep := Report{ID: "fig10", Title: "Normalized LLC miss counts under throttling (high-FPS mixes)"}
	var gT, gP, cT, cP []float64
	for _, m := range workloads.HighFPSMixes() {
		base, thr, pri, err := x.throttleTriple(m)
		if err != nil {
			return Report{}, err
		}
		// Misses are normalized per frame / per instruction so that
		// window-length differences between runs cancel.
		gpuT := perFrame(thr.GPULLCMisses, thr.GPUFrames) / perFrame(base.GPULLCMisses, base.GPUFrames)
		gpuP := perFrame(pri.GPULLCMisses, pri.GPUFrames) / perFrame(base.GPULLCMisses, base.GPUFrames)
		cpuT := perCycleRate(thr) / perCycleRate(base)
		cpuP := perCycleRate(pri) / perCycleRate(base)
		gT, gP, cT, cP = append(gT, gpuT), append(gP, gpuP), append(cT, cpuT), append(cP, cpuP)
		rep.Rows = append(rep.Rows, Row{Label: m.ID + "/" + m.Game, Cells: []Cell{
			{"gpuThr", gpuT}, {"gpuPri", gpuP}, {"cpuThr", cpuT}, {"cpuPri", cpuP},
		}})
	}
	rep.Summary = fmt.Sprintf("mean: GPU thr=%.2fx pri=%.2fx, CPU thr=%.2fx pri=%.2fx (paper: 1.39/1.42, 0.96/0.955)",
		stats.Mean(gT), stats.Mean(gP), stats.Mean(cT), stats.Mean(cP))
	return rep, nil
}

// perFrame normalizes a count by completed frames.
func perFrame(n uint64, frames int) float64 {
	if frames == 0 {
		return 0
	}
	return float64(n) / float64(frames)
}

// perCycleRate is CPU LLC misses per retired-instruction-equivalent:
// misses divided by the aggregate measured IPC-weighted window, which
// the instruction-matched windows make comparable across runs.
func perCycleRate(r sim.Result) float64 {
	if r.MeasuredCycles == 0 {
		return 0
	}
	// Instruction windows are equal across runs of a mix, so misses
	// per measured instruction reduce to misses per (IPC*cycles).
	totalIPC := 0.0
	for _, v := range r.IPC {
		totalIPC += v
	}
	instr := totalIPC * float64(r.MeasuredCycles)
	if instr <= 0 {
		return 0
	}
	return float64(r.CPULLCMisses) / instr
}

// Fig11 reproduces the GPU DRAM bandwidth study: read and write GB/s
// under throttling, normalized to baseline. The paper reports demand
// dropping 35%/37%.
func (x *Runner) Fig11() (Report, error) {
	rep := Report{ID: "fig11", Title: "Normalized GPU DRAM bandwidth under throttling (high-FPS mixes)"}
	var tot []float64
	for _, m := range workloads.HighFPSMixes() {
		base, thr, pri, err := x.throttleTriple(m)
		if err != nil {
			return Report{}, err
		}
		br, bw := bwGBps(base, x.Cfg.CPUFreqHz)
		tr, tw := bwGBps(thr, x.Cfg.CPUFreqHz)
		pr, pw := bwGBps(pri, x.Cfg.CPUFreqHz)
		thrTot := (tr + tw) / (br + bw)
		priTot := (pr + pw) / (br + bw)
		tot = append(tot, thrTot, priTot)
		rep.Rows = append(rep.Rows, Row{Label: m.ID + "/" + m.Game, Cells: []Cell{
			{"readThr", tr / br}, {"writeThr", tw / bw},
			{"totalThr", thrTot}, {"totalPri", priTot},
		}})
	}
	rep.Summary = fmt.Sprintf("mean normalized GPU bandwidth=%.2fx (paper: 0.65 throttled / 0.63 +prio)", stats.Mean(tot))
	return rep, nil
}

// comparisonPolicies is the Figs. 12-14 lineup.
var comparisonPolicies = []sim.Policy{
	sim.PolicyBaseline, sim.PolicySMS09, sim.PolicySMS0,
	sim.PolicyDynPrio, sim.PolicyHeLM, sim.PolicyThrottleCPUPrio,
}

// Fig12 reproduces the related-work comparison on the high-FPS mixes:
// absolute FPS (top panel) and normalized weighted CPU speedup
// (bottom panel) for SMS-0.9, SMS-0, DynPrio, HeLM and the proposal.
// Paper means: +4%, +4%, +10%, +3%, +18%.
func (x *Runner) Fig12() (Report, error) {
	rep := Report{ID: "fig12", Title: "Policy comparison, high-FPS mixes: FPS and CPU weighted speedup"}
	sums := map[sim.Policy][]float64{}
	for _, m := range workloads.HighFPSMixes() {
		base, err := x.mix(m, sim.PolicyBaseline)
		if err != nil {
			return Report{}, err
		}
		cells := []Cell{}
		for _, p := range comparisonPolicies {
			r, err := x.mix(m, p)
			if err != nil {
				return Report{}, err
			}
			cells = append(cells, Cell{"fps" + p.String(), r.GPUFPS})
		}
		for _, p := range comparisonPolicies[1:] {
			r, err := x.mix(m, p)
			if err != nil {
				return Report{}, err
			}
			s, err := weightedSpeedup(r, base)
			if err != nil {
				return Report{}, err
			}
			sums[p] = append(sums[p], s)
			cells = append(cells, Cell{"cpu" + p.String(), s})
		}
		rep.Rows = append(rep.Rows, Row{Label: m.ID + "/" + m.Game, Cells: cells})
	}
	rep.Summary = fmt.Sprintf(
		"GMEAN cpu speedup: SMS-0.9=%.3f SMS-0=%.3f DynPrio=%.3f HeLM=%.3f ThrotCPUprio=%.3f (paper: 1.04/1.04/1.10/1.03/1.18)",
		stats.GMean(sums[sim.PolicySMS09]), stats.GMean(sums[sim.PolicySMS0]),
		stats.GMean(sums[sim.PolicyDynPrio]), stats.GMean(sums[sim.PolicyHeLM]),
		stats.GMean(sums[sim.PolicyThrottleCPUPrio]))
	return rep, nil
}

// Fig13 reproduces the low-FPS mix comparison: normalized FPS (top)
// and CPU weighted speedup (bottom). The proposal must stay disabled
// (FPS and CPU at baseline); SMS trades big GPU losses for CPU gains;
// HeLM loses ~7% FPS; DynPrio tracks baseline.
func (x *Runner) Fig13() (Report, error) {
	rep := Report{ID: "fig13", Title: "Policy comparison, low-FPS mixes: normalized FPS and CPU speedup"}
	fpsSums := map[sim.Policy][]float64{}
	cpuSums := map[sim.Policy][]float64{}
	for _, m := range workloads.LowFPSMixes() {
		base, err := x.mix(m, sim.PolicyBaseline)
		if err != nil {
			return Report{}, err
		}
		cells := []Cell{}
		for _, p := range comparisonPolicies[1:] {
			r, err := x.mix(m, p)
			if err != nil {
				return Report{}, err
			}
			nf := 0.0
			if base.GPUFPS > 0 {
				nf = r.GPUFPS / base.GPUFPS
			}
			s, err := weightedSpeedup(r, base)
			if err != nil {
				return Report{}, err
			}
			fpsSums[p] = append(fpsSums[p], nf)
			cpuSums[p] = append(cpuSums[p], s)
			cells = append(cells, Cell{"fps" + p.String(), nf}, Cell{"cpu" + p.String(), s})
		}
		rep.Rows = append(rep.Rows, Row{Label: m.ID + "/" + m.Game, Cells: cells})
	}
	rep.Summary = fmt.Sprintf(
		"GMEAN fps: SMS-0.9=%.3f SMS-0=%.3f DynPrio=%.3f HeLM=%.3f Throt=%.3f | cpu: %.3f/%.3f/%.3f/%.3f/%.3f (paper fps: <1,<1,1.00,0.93,1.00; cpu: 1.07/1.06/1.00/1.04/1.00)",
		stats.GMean(fpsSums[sim.PolicySMS09]), stats.GMean(fpsSums[sim.PolicySMS0]),
		stats.GMean(fpsSums[sim.PolicyDynPrio]), stats.GMean(fpsSums[sim.PolicyHeLM]),
		stats.GMean(fpsSums[sim.PolicyThrottleCPUPrio]),
		stats.GMean(cpuSums[sim.PolicySMS09]), stats.GMean(cpuSums[sim.PolicySMS0]),
		stats.GMean(cpuSums[sim.PolicyDynPrio]), stats.GMean(cpuSums[sim.PolicyHeLM]),
		stats.GMean(cpuSums[sim.PolicyThrottleCPUPrio]))
	return rep, nil
}

// Fig14 reproduces the equal-weight combined CPU+GPU metric on the
// low-FPS mixes. The paper: the proposal and DynPrio deliver baseline
// performance; SMS variants lose; HeLM ends ~1% below baseline.
func (x *Runner) Fig14() (Report, error) {
	rep := Report{ID: "fig14", Title: "Combined CPU+GPU performance, low-FPS mixes (equal weight)"}
	sums := map[sim.Policy][]float64{}
	for _, m := range workloads.LowFPSMixes() {
		base, err := x.mix(m, sim.PolicyBaseline)
		if err != nil {
			return Report{}, err
		}
		cells := []Cell{}
		for _, p := range comparisonPolicies[1:] {
			r, err := x.mix(m, p)
			if err != nil {
				return Report{}, err
			}
			gpuSp := 0.0
			if base.GPUFPS > 0 {
				gpuSp = r.GPUFPS / base.GPUFPS
			}
			ws, err := weightedSpeedup(r, base)
			if err != nil {
				return Report{}, err
			}
			c := stats.Combined(ws, gpuSp)
			sums[p] = append(sums[p], c)
			cells = append(cells, Cell{p.String(), c})
		}
		rep.Rows = append(rep.Rows, Row{Label: m.ID, Cells: cells})
	}
	rep.Summary = fmt.Sprintf(
		"GMEAN combined: SMS-0.9=%.3f SMS-0=%.3f DynPrio=%.3f HeLM=%.3f ThrotCPUprio=%.3f (paper: <1,<1,1.00,0.99,1.00)",
		stats.GMean(sums[sim.PolicySMS09]), stats.GMean(sums[sim.PolicySMS0]),
		stats.GMean(sums[sim.PolicyDynPrio]), stats.GMean(sums[sim.PolicyHeLM]),
		stats.GMean(sums[sim.PolicyThrottleCPUPrio]))
	return rep, nil
}

// Table1 renders the simulated configuration (Table I) as implemented
// (paper-scale values; the runner's Scale divides capacities).
func (x *Runner) Table1() (Report, error) {
	rep := Report{ID: "table1", Title: "Simulation environment (Table I), scale-1 values"}
	add := func(label string, kv ...Cell) {
		rep.Rows = append(rep.Rows, Row{Label: label, Cells: kv})
	}
	add("CPU-core", Cell{"GHz", 4}, Cell{"width", 4}, Cell{"ROB", 192}, Cell{"MSHRs", 16})
	add("L1D", Cell{"KB", 32}, Cell{"ways", 8})
	add("L2", Cell{"KB", 256}, Cell{"ways", 8})
	add("GPU", Cell{"GHz", 1}, Cell{"shaders", 64})
	add("texL1", Cell{"KB", 64}, Cell{"ways", 16})
	add("texL2", Cell{"KB", 384}, Cell{"ways", 48})
	add("depthL2", Cell{"KB", 32}, Cell{"ways", 32})
	add("colorL2", Cell{"KB", 32}, Cell{"ways", 32})
	add("vertex", Cell{"KB", 16}, Cell{"ways", 16})
	add("LLC", Cell{"MB", 16}, Cell{"ways", 16}, Cell{"lookupCyc", 10})
	add("DRAM", Cell{"channels", 2}, Cell{"banks", 8}, Cell{"tCL", 14}, Cell{"tRCD", 14}, Cell{"tRP", 14})
	rep.Summary = fmt.Sprintf("running at scale=%d (capacities and per-frame work divided accordingly)", x.Cfg.Scale)
	return rep, nil
}

// Table2 reports the game catalog with measured standalone FPS next
// to the paper's Table II baseline FPS.
func (x *Runner) Table2() (Report, error) {
	rep := Report{ID: "table2", Title: "Graphics frame details (Table II): measured vs paper FPS"}
	for _, g := range workloads.Games() {
		alone, err := x.gpuStandalone(g.Name)
		if err != nil {
			return Report{}, err
		}
		rep.Rows = append(rep.Rows, Row{Label: g.Name, Cells: []Cell{
			{"frames", float64(g.Frames)},
			{"standaloneFPS", alone.GPUFPS},
			{"tableFPS", g.TableFPS},
		}})
	}
	rep.Summary = "tableFPS is the paper's heterogeneous-baseline FPS; see fig2 for the heterogeneous comparison"
	return rep, nil
}

// Table3 lists the heterogeneous mixes.
func (x *Runner) Table3() (Report, error) {
	rep := Report{ID: "table3", Title: "Heterogeneous workload mixes (Table III)"}
	for _, m := range workloads.EvalMixes() {
		cells := []Cell{}
		for _, id := range m.SpecIDs {
			app, err := workloads.Spec(id)
			if err != nil {
				return Report{}, err
			}
			cells = append(cells, Cell{app.Name, float64(id)})
		}
		rep.Rows = append(rep.Rows, Row{Label: m.ID + "/" + m.Game, Cells: cells})
	}
	rep.Summary = fmt.Sprintf("%d evaluation mixes, %d motivation mixes",
		len(workloads.EvalMixes()), len(workloads.MotivationMixes()))
	return rep, nil
}

// ByID dispatches an experiment by identifier ("fig1".."fig14",
// "table1".."table3").
func (x *Runner) ByID(id string) (Report, error) {
	switch id {
	case "fig1":
		return x.Fig1()
	case "fig2":
		return x.Fig2()
	case "fig3":
		return x.Fig3()
	case "fig8":
		return x.Fig8()
	case "fig9":
		return x.Fig9()
	case "fig10":
		return x.Fig10()
	case "fig11":
		return x.Fig11()
	case "fig12":
		return x.Fig12()
	case "fig13":
		return x.Fig13()
	case "fig14":
		return x.Fig14()
	case "table1":
		return x.Table1()
	case "table2":
		return x.Table2()
	case "table3":
		return x.Table3()
	}
	return Report{}, fmt.Errorf("exp: unknown experiment %q (fig1-3, fig8-14, table1-3)", id)
}

// AllIDs lists every reproducible experiment in paper order.
func AllIDs() []string {
	return []string{
		"table1", "table2", "table3",
		"fig1", "fig2", "fig3",
		"fig8", "fig9", "fig10", "fig11", "fig12", "fig13", "fig14",
	}
}

// Throttle ablations beyond the paper (see DESIGN.md §4).

// AblationWindowStep sweeps the ATU's WG growth step on one mix.
func (x *Runner) AblationWindowStep(mixID string, steps []uint64) (Report, error) {
	m, err := workloads.MixByID(mixID)
	if err != nil {
		return Report{}, err
	}
	rep := Report{ID: "ablation-step", Title: "ATU window growth step sweep on " + mixID}
	base, err := x.mix(m, sim.PolicyBaseline)
	if err != nil {
		return Report{}, err
	}
	for _, st := range steps {
		cfg := x.Cfg
		cfg.Policy = sim.PolicyThrottleCPUPrio
		cfg.NumCPUs = len(m.SpecIDs)
		game, apps := sim.MixWorkload(cfg, m)
		s := sim.NewSystem(cfg, game, apps)
		s.Ctrl.ATU.WindowStep = st
		r := sim.Run(s)
		sp, err := weightedSpeedup(r, base)
		if err != nil {
			return Report{}, err
		}
		rep.Rows = append(rep.Rows, Row{Label: fmt.Sprintf("step=%d", st), Cells: []Cell{
			{"fps", r.GPUFPS}, {"cpu", sp},
		}})
	}
	return rep, nil
}

// AblationTargetFPS sweeps the QoS target on one mix.
func (x *Runner) AblationTargetFPS(mixID string, targets []float64) (Report, error) {
	m, err := workloads.MixByID(mixID)
	if err != nil {
		return Report{}, err
	}
	rep := Report{ID: "ablation-target", Title: "QoS target sweep on " + mixID}
	base, err := x.mix(m, sim.PolicyBaseline)
	if err != nil {
		return Report{}, err
	}
	for _, tf := range targets {
		cfg := x.Cfg
		cfg.Policy = sim.PolicyThrottleCPUPrio
		cfg.TargetFPS = tf
		cfg.NumCPUs = len(m.SpecIDs)
		r := sim.RunMix(cfg, m)
		sp, err := weightedSpeedup(r, base)
		if err != nil {
			return Report{}, err
		}
		rep.Rows = append(rep.Rows, Row{Label: fmt.Sprintf("target=%.0f", tf), Cells: []Cell{
			{"fps", r.GPUFPS}, {"cpu", sp},
		}})
	}
	return rep, nil
}

// AblationUpdateLaw compares the paper's Fig. 6 closed-form window
// update against the feedback law on one mix.
func (x *Runner) AblationUpdateLaw(mixID string) (Report, error) {
	m, err := workloads.MixByID(mixID)
	if err != nil {
		return Report{}, err
	}
	rep := Report{ID: "ablation-law", Title: "ATU update law: Fig.6 closed form vs feedback, " + mixID}
	base, err := x.mix(m, sim.PolicyBaseline)
	if err != nil {
		return Report{}, err
	}
	for _, feedback := range []bool{false, true} {
		cfg := x.Cfg
		cfg.Policy = sim.PolicyThrottleCPUPrio
		cfg.NumCPUs = len(m.SpecIDs)
		game, apps := sim.MixWorkload(cfg, m)
		s := sim.NewSystem(cfg, game, apps)
		s.Ctrl.ATU.Feedback = feedback
		r := sim.Run(s)
		label := "fig6-closed-form"
		if feedback {
			label = "feedback"
		}
		sp, err := weightedSpeedup(r, base)
		if err != nil {
			return Report{}, err
		}
		rep.Rows = append(rep.Rows, Row{Label: label, Cells: []Cell{
			{"fps", r.GPUFPS}, {"cpu", sp},
		}})
	}
	return rep, nil
}

// AblationCMBAL reproduces the §IV analysis: shader-core-centric
// concurrency throttling (CM-BAL) cannot regulate the GPU frame rate
// the way GTT-port throttling can, because it only modulates the
// texture access rate while the ROP's depth/color traffic flows
// unthrottled.
func (x *Runner) AblationCMBAL(mixID string) (Report, error) {
	m, err := workloads.MixByID(mixID)
	if err != nil {
		return Report{}, err
	}
	rep := Report{ID: "ablation-cmbal", Title: "Shader-core vs GTT-port throttling (paper §IV), " + mixID}
	base, err := x.mix(m, sim.PolicyBaseline)
	if err != nil {
		return Report{}, err
	}
	for _, p := range []sim.Policy{sim.PolicyCMBAL, sim.PolicyThrottleCPUPrio} {
		r, err := x.mix(m, p)
		if err != nil {
			return Report{}, err
		}
		sp, err := weightedSpeedup(r, base)
		if err != nil {
			return Report{}, err
		}
		rep.Rows = append(rep.Rows, Row{Label: p.String(), Cells: []Cell{
			{"fps", r.GPUFPS},
			{"fpsVsBase", r.GPUFPS / base.GPUFPS},
			{"cpu", sp},
		}})
	}
	rep.Summary = "the paper finds CM-BAL unable to pull the frame rate to the QoS target; the GTT gate does"
	return rep, nil
}

// AblationPrefetch compares the mix with and without the cores' L2
// stride prefetchers under baseline and the full proposal — a beyond-
// paper study of how CPU-side prefetching shifts the throttling
// trade-off (prefetches recover latency tolerance but consume the
// DRAM bandwidth the throttle frees).
func (x *Runner) AblationPrefetch(mixID string) (Report, error) {
	m, err := workloads.MixByID(mixID)
	if err != nil {
		return Report{}, err
	}
	rep := Report{ID: "ablation-prefetch", Title: "L2 stride prefetching on/off, " + mixID}
	for _, pf := range []bool{false, true} {
		for _, p := range []sim.Policy{sim.PolicyBaseline, sim.PolicyThrottleCPUPrio} {
			cfg := x.Cfg
			cfg.Policy = p
			cfg.CPUPrefetch = pf
			cfg.NumCPUs = len(m.SpecIDs)
			r := sim.RunMix(cfg, m)
			label := p.String()
			if pf {
				label += "+pf"
			}
			rep.Rows = append(rep.Rows, Row{Label: label, Cells: []Cell{
				{"fps", r.GPUFPS}, {"meanIPC", r.MeanIPC()},
			}})
		}
	}
	return rep, nil
}

// AblationLLCPolicy compares the paper's SRRIP LLC against
// set-dueling DRRIP under baseline and the proposal — a beyond-paper
// study of whether thrash-resistant insertion changes how much LLC
// the GPU's streaming fills can steal from the CPUs.
func (x *Runner) AblationLLCPolicy(mixID string) (Report, error) {
	m, err := workloads.MixByID(mixID)
	if err != nil {
		return Report{}, err
	}
	rep := Report{ID: "ablation-llc", Title: "LLC replacement: SRRIP vs DRRIP, " + mixID}
	for _, drrip := range []bool{false, true} {
		for _, p := range []sim.Policy{sim.PolicyBaseline, sim.PolicyThrottleCPUPrio} {
			cfg := x.Cfg
			cfg.Policy = p
			cfg.LLCDRRIP = drrip
			cfg.NumCPUs = len(m.SpecIDs)
			r := sim.RunMix(cfg, m)
			label := p.String()
			if drrip {
				label += "+drrip"
			}
			rep.Rows = append(rep.Rows, Row{Label: label, Cells: []Cell{
				{"fps", r.GPUFPS}, {"meanIPC", r.MeanIPC()},
				{"cpuLLCMissPerMI", perCycleRate(r) * 1e6},
			}})
		}
	}
	return rep, nil
}
