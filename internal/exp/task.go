package exp

import (
	"context"
	"fmt"
	"strconv"
	"strings"
	"time"

	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/twin"
	"repro/internal/workloads"
)

// Task kinds, matching the journal Record kinds and the memo maps.
const (
	KindMix      = "mix"
	KindGPU      = "gpu"
	KindCPU      = "cpu"
	KindScenario = "scn"
)

// Engine choices a TaskSpec may request. The default (empty or
// EngineAuto) lets the runner pick: parallel when the run's thread
// budget and domain count allow it, sequential otherwise.
const (
	EngineAuto     = "auto"
	EngineParallel = "parallel"
	EngineSeq      = "seq"
)

// TaskSpec is the exported description of one simulation: a
// heterogeneous mix under a policy, a standalone game, or a standalone
// CPU application. It is the unit of work the hetsimd service accepts
// over the wire, so it is JSON-serializable and self-validating, and
// its Key doubles as the idempotency token: two submissions with the
// same Key are the same run and share one singleflight execution.
type TaskSpec struct {
	Kind   string     `json:"kind"`             // "mix", "gpu", "cpu", or "scn"
	MixID  string     `json:"mix,omitempty"`    // kind "mix"
	Policy sim.Policy `json:"policy,omitempty"` // kinds "mix" and "scn"
	Game   string     `json:"game,omitempty"`   // kind "gpu"
	SpecID int        `json:"spec,omitempty"`   // kind "cpu"

	// Scenario is the declarative time-varying workload for kind
	// "scn" (DESIGN.md §12). Specs travel self-contained — a tracev2
	// capture must be inlined (scenario.Spec.Inline) before
	// submission, since the server has no access to the client's
	// filesystem — and the spec's content digest participates in Key,
	// so two submissions are idempotent exactly when their scenarios
	// are identical.
	Scenario *scenario.Spec `json:"scenario,omitempty"`

	// Engine selects the tick engine for this run: "" or "auto"
	// (runner decides), "parallel" (force the intra-run parallel
	// engine), or "seq" (force the sequential reference loop). The two
	// engines are observationally identical, so Engine is deliberately
	// NOT part of Key(): submissions differing only in Engine are the
	// same run and share one execution — the first leader's choice
	// applies.
	Engine string `json:"engine,omitempty"`

	// Tier selects the serving tier (DESIGN.md §14): "" or "full"
	// (cycle-accurate simulation), "twin" (analytic model, fails
	// outside the calibrated hull), or "auto" (twin when confident,
	// escalate to full otherwise). Twin and auto tiers share the
	// "twin/"-prefixed key space, distinct from full-sim keys, so an
	// analytic answer can never poison a simulation memo or golden
	// hash. Scenario tasks are time-varying and have no analytic model,
	// so they only run full.
	Tier string `json:"tier,omitempty"`
}

// Validate resolves the spec against the workload catalogs so a bad
// submission fails at admission, not deep inside a worker.
func (t TaskSpec) Validate() error {
	switch t.Engine {
	case "", EngineAuto, EngineParallel, EngineSeq:
	default:
		return fmt.Errorf("exp: unknown engine %q (want auto, parallel, seq)", t.Engine)
	}
	switch t.Tier {
	case "", TierFull:
	case TierTwin, TierAuto:
		if t.Kind == KindScenario {
			return fmt.Errorf("exp: scenario tasks have no analytic tier (want full)")
		}
	default:
		return fmt.Errorf("exp: unknown tier %q (want full, twin, auto)", t.Tier)
	}
	switch t.Kind {
	case KindMix:
		if _, err := workloads.MixByID(t.MixID); err != nil {
			return err
		}
		if t.Policy < sim.PolicyBaseline || t.Policy > sim.PolicyCMBAL {
			return fmt.Errorf("exp: policy %d out of range", int(t.Policy))
		}
		return nil
	case KindGPU:
		_, err := workloads.GameByName(t.Game)
		return err
	case KindCPU:
		_, err := workloads.Spec(t.SpecID)
		return err
	case KindScenario:
		if t.Policy < sim.PolicyBaseline || t.Policy > sim.PolicyCMBAL {
			return fmt.Errorf("exp: policy %d out of range", int(t.Policy))
		}
		if t.Scenario == nil {
			return fmt.Errorf("exp: scenario task without a scenario spec")
		}
		if t.Scenario.TracePath != "" {
			return fmt.Errorf("exp: scenario task references trace file %q; inline it before submission", t.Scenario.TracePath)
		}
		return t.Scenario.Validate()
	}
	return fmt.Errorf("exp: unknown task kind %q (want mix, gpu, cpu, scn)", t.Kind)
}

// Key returns the run's memo key with its kind prefix: "mix/M7/2",
// "gpu/Doom3", "cpu/462". It matches the Runner.Observe key space.
// Twin- and auto-tier tasks get a "twin/" prefix ("twin/mix/M7/2"):
// the two tiers share one flight (an escalated full answer is exact,
// so serving it to a twin requester is sound) but never collide with
// a full-tier key.
func (t TaskSpec) Key() string {
	key := t.Kind + "/?"
	switch t.Kind {
	case KindMix:
		key = fmt.Sprintf("mix/%s/%d", t.MixID, t.Policy)
	case KindGPU:
		key = KindGPU + "/" + t.Game
	case KindCPU:
		key = fmt.Sprintf("cpu/%d", t.SpecID)
	case KindScenario:
		if t.Scenario == nil {
			key = KindScenario + "/?"
		} else {
			key = fmt.Sprintf("scn/%s/%d", t.Scenario.Digest(), t.Policy)
		}
	}
	if t.Tier == TierTwin || t.Tier == TierAuto {
		return KindTwin + "/" + key
	}
	return key
}

// Family is the circuit-breaker grouping: every policy of one mix is
// one family (a panicking controller poisons the mix, not the
// policy); scenarios group the same way by spec digest; standalone
// runs are their own family.
func (t TaskSpec) Family() string {
	switch t.Kind {
	case KindMix:
		return KindMix + "/" + t.MixID
	case KindScenario:
		if t.Scenario != nil {
			return KindScenario + "/" + t.Scenario.Digest()
		}
	}
	return t.Key()
}

// TaskResult is the payload of one completed task: Result for mix and
// gpu runs, IPC for cpu standalone runs, Prediction for twin-tier
// answers. Tier records provenance — "" for plain full-tier runs (and
// every pre-twin journal record), TierTwin for analytic answers,
// TierFull for auto-tier tasks that escalated to simulation. An
// escalated result carries both the simulated truth and the
// prediction it overruled, with the prediction's measured error, so
// every escalation doubles as a free accuracy probe.
type TaskResult struct {
	Result *sim.Result `json:"result,omitempty"`
	IPC    float64     `json:"ipc,omitempty"`

	Tier            string           `json:"tier,omitempty"`
	Prediction      *twin.Prediction `json:"prediction,omitempty"`
	TwinFrameErrPct float64          `json:"twin_frame_err_pct,omitempty"`
	TwinIPCErrPct   float64          `json:"twin_ipc_err_pct,omitempty"`
}

// Do executes (or joins) the task through the runner's memoizing
// accessors and blocks until it completes. When this call turns out to
// be the run's singleflight leader, ctx's deadline and cancellation
// are armed into the simulation's Interrupt hook alongside the
// runner-wide Ctx and RunTimeout — a per-request deadline ends the
// simulation at its next interrupt poll. A joined (non-leader) call
// shares the in-flight run and its leader's deadline.
func (x *Runner) Do(ctx context.Context, t TaskSpec) (TaskResult, error) {
	if err := t.Validate(); err != nil {
		return TaskResult{}, err
	}
	switch t.Tier {
	case TierTwin, TierAuto:
		return x.twinDo(ctx, t)
	}
	return x.fullDo(ctx, t)
}

// fullDo is the cycle-accurate execution path of Do. t must carry no
// twin tier (auto-tier escalation strips it first), so t.Key() is the
// base key arm() will consult for the per-run context and engine.
func (x *Runner) fullDo(ctx context.Context, t TaskSpec) (TaskResult, error) {
	if ctx != nil {
		x.setTaskCtx(t.Key(), ctx)
		defer x.clearTaskCtx(t.Key())
	}
	if t.Engine != "" && t.Engine != EngineAuto {
		x.setTaskEngine(t.Key(), t.Engine)
		defer x.clearTaskEngine(t.Key())
	}
	switch t.Kind {
	case KindMix:
		m, err := workloads.MixByID(t.MixID)
		if err != nil {
			return TaskResult{}, err
		}
		r, err := x.mix(m, t.Policy)
		if err != nil {
			return TaskResult{}, err
		}
		return TaskResult{Result: &r}, nil
	case KindGPU:
		r, err := x.gpuStandalone(t.Game)
		if err != nil {
			return TaskResult{}, err
		}
		return TaskResult{Result: &r}, nil
	case KindScenario:
		r, err := x.scenarioRun(t.Scenario, t.Policy)
		if err != nil {
			return TaskResult{}, err
		}
		return TaskResult{Result: &r}, nil
	default: // KindCPU, by Validate
		ipc, err := x.cpuStandalone(t.SpecID)
		if err != nil {
			return TaskResult{}, err
		}
		return TaskResult{IPC: ipc}, nil
	}
}

// setTaskCtx registers a per-run context consulted by arm when the
// run's leader starts; clearTaskCtx removes it once Do returns. The
// service guarantees one Do per key at a time, so last-writer-wins
// semantics never race in practice.
func (x *Runner) setTaskCtx(key string, ctx context.Context) {
	x.mu.Lock()
	defer x.mu.Unlock()
	if x.taskCtxs == nil {
		x.taskCtxs = make(map[string]context.Context)
	}
	x.taskCtxs[key] = ctx
}

func (x *Runner) clearTaskCtx(key string) {
	x.mu.Lock()
	defer x.mu.Unlock()
	delete(x.taskCtxs, key)
}

// taskCtx returns the context registered for key, if any.
func (x *Runner) taskCtx(key string) context.Context {
	x.mu.Lock()
	defer x.mu.Unlock()
	return x.taskCtxs[key]
}

// setTaskEngine registers a per-run engine override consulted by arm
// when the run's leader starts; clearTaskEngine removes it once Do
// returns. Same last-writer-wins contract as setTaskCtx.
func (x *Runner) setTaskEngine(key, engine string) {
	x.mu.Lock()
	defer x.mu.Unlock()
	if x.taskEngines == nil {
		x.taskEngines = make(map[string]string)
	}
	x.taskEngines[key] = engine
}

func (x *Runner) clearTaskEngine(key string) {
	x.mu.Lock()
	defer x.mu.Unlock()
	delete(x.taskEngines, key)
}

// taskEngine returns the engine override registered for key ("" when
// none).
func (x *Runner) taskEngine(key string) string {
	x.mu.Lock()
	defer x.mu.Unlock()
	return x.taskEngines[key]
}

// splitKey separates a full task key into its kind and memo key.
func splitKey(key string) (kind, memo string) {
	i := strings.IndexByte(key, '/')
	if i < 0 {
		return key, ""
	}
	return key[:i], key[i+1:]
}

// Lookup returns the memoized outcome of the run under key ("mix/M7/2",
// "gpu/Doom3", "cpu/462") when that run has already completed —
// whether executed, joined, or seeded from a journal. ok is false for
// unknown and still-in-flight keys, so Lookup never blocks.
func (x *Runner) Lookup(key string) (TaskResult, error, bool) {
	kind, memo := splitKey(key)
	switch kind {
	case KindTwin:
		f, ok := doneFlight(x, x.twinRuns, memo)
		if !ok {
			return TaskResult{}, nil, false
		}
		return f.val, f.err, true
	case KindMix:
		f, ok := doneFlight(x, x.mixRuns, memo)
		if !ok {
			return TaskResult{}, nil, false
		}
		if f.err != nil {
			return TaskResult{}, f.err, true
		}
		r := f.val
		return TaskResult{Result: &r}, nil, true
	case KindGPU:
		f, ok := doneFlight(x, x.gpuAlone, memo)
		if !ok {
			return TaskResult{}, nil, false
		}
		if f.err != nil {
			return TaskResult{}, f.err, true
		}
		r := f.val
		return TaskResult{Result: &r}, nil, true
	case KindCPU:
		f, ok := doneFlight(x, x.cpuAlone, memo)
		if !ok {
			return TaskResult{}, nil, false
		}
		if f.err != nil {
			return TaskResult{}, f.err, true
		}
		return TaskResult{IPC: f.val}, nil, true
	case KindScenario:
		f, ok := doneFlight(x, x.scnRuns, memo)
		if !ok {
			return TaskResult{}, nil, false
		}
		if f.err != nil {
			return TaskResult{}, f.err, true
		}
		r := f.val
		return TaskResult{Result: &r}, nil, true
	}
	return TaskResult{}, nil, false
}

// doneFlight fetches the completed flight under key, if one exists.
func doneFlight[T any](x *Runner, m map[string]*flight[T], key string) (*flight[T], bool) {
	x.mu.Lock()
	f, ok := m[key]
	x.mu.Unlock()
	if !ok {
		return nil, false
	}
	select {
	case <-f.done:
		return f, true
	default:
		return nil, false
	}
}

// Forget drops the memoized run under key if — and only if — it
// completed with an error, so a deliberate retry (a circuit breaker's
// half-open probe, a client resubmitting after a transient timeout)
// re-executes it instead of replaying the quarantined failure forever.
// Successful results and in-flight runs are never forgotten: they are
// what keeps resubmission idempotent. Reports whether a flight was
// removed.
func (x *Runner) Forget(key string) bool {
	kind, memo := splitKey(key)
	switch kind {
	case KindTwin:
		return forgetFailed(x, x.twinRuns, memo)
	case KindMix:
		return forgetFailed(x, x.mixRuns, memo)
	case KindGPU:
		return forgetFailed(x, x.gpuAlone, memo)
	case KindCPU:
		return forgetFailed(x, x.cpuAlone, memo)
	case KindScenario:
		return forgetFailed(x, x.scnRuns, memo)
	}
	return false
}

// forgetFailed removes m[key] when its run is done and failed.
func forgetFailed[T any](x *Runner, m map[string]*flight[T], key string) bool {
	x.mu.Lock()
	defer x.mu.Unlock()
	f, ok := m[key]
	if !ok {
		return false
	}
	select {
	case <-f.done:
	default:
		return false // still in flight; its waiters must all see one outcome
	}
	if f.err == nil {
		return false
	}
	delete(m, key)
	return true
}

// MixTaskSpec, GPUTaskSpec, and CPUTaskSpec are convenience
// constructors for the three task kinds.
func MixTaskSpec(mixID string, p sim.Policy) TaskSpec {
	return TaskSpec{Kind: KindMix, MixID: mixID, Policy: p}
}

func GPUTaskSpec(game string) TaskSpec { return TaskSpec{Kind: KindGPU, Game: game} }

func CPUTaskSpec(specID int) TaskSpec { return TaskSpec{Kind: KindCPU, SpecID: specID} }

// ScenarioTaskSpec builds a task running sp under policy p. The spec
// should be inlined (scenario.Spec.Inline) when it references a trace
// file and the task is bound for a server.
func ScenarioTaskSpec(sp *scenario.Spec, p sim.Policy) TaskSpec {
	return TaskSpec{Kind: KindScenario, Policy: p, Scenario: sp}
}

// ParseKey reconstructs a TaskSpec from its Key form, the inverse of
// TaskSpec.Key; hetsimctl and the resume path use it to go from a
// journaled key back to a runnable spec.
func ParseKey(key string) (TaskSpec, error) {
	kind, memo := splitKey(key)
	switch kind {
	case KindTwin:
		// A twin key could have been submitted at either analytic tier;
		// auto is the safe reconstruction — it preserves the escalation
		// contract instead of forcing a possibly low-confidence answer.
		spec, err := ParseKey(memo)
		if err != nil {
			return TaskSpec{}, err
		}
		spec.Tier = TierAuto
		return spec, nil
	case KindMix:
		i := strings.LastIndexByte(memo, '/')
		if i < 0 {
			return TaskSpec{}, fmt.Errorf("exp: malformed mix key %q", key)
		}
		pol, err := strconv.Atoi(memo[i+1:])
		if err != nil {
			return TaskSpec{}, fmt.Errorf("exp: malformed mix key %q: %v", key, err)
		}
		return MixTaskSpec(memo[:i], sim.Policy(pol)), nil
	case KindGPU:
		return GPUTaskSpec(memo), nil
	case KindCPU:
		id, err := strconv.Atoi(memo)
		if err != nil {
			return TaskSpec{}, fmt.Errorf("exp: malformed cpu key %q: %v", key, err)
		}
		return CPUTaskSpec(id), nil
	case KindScenario:
		// A digest cannot be expanded back into a spec: scenario tasks
		// are submitted from spec files (hetsimctl -scenario), and the
		// resume path re-enqueues them from the journaled Spec payload.
		return TaskSpec{}, fmt.Errorf("exp: scenario key %q is not reconstructible; submit the spec file instead", key)
	}
	return TaskSpec{}, fmt.Errorf("exp: malformed task key %q", key)
}

// mergeDeadline folds the runner-wide RunTimeout and the per-task
// context deadline into the earliest applicable wall-clock bound.
func (x *Runner) mergeDeadline(tctx context.Context) time.Time {
	var deadline time.Time
	if x.RunTimeout > 0 {
		deadline = time.Now().Add(x.RunTimeout)
	}
	if tctx != nil {
		if d, ok := tctx.Deadline(); ok && (deadline.IsZero() || d.Before(deadline)) {
			deadline = d
		}
	}
	return deadline
}
