package exp

import (
	"bytes"
	"testing"

	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/workloads"
)

func obsTestCfg() sim.Config {
	cfg := sim.DefaultConfig(256)
	cfg.WarmupInstr = 30_000
	cfg.WarmupFrames = 2
	cfg.MeasureInstr = 80_000
	cfg.MinFrames = 2
	cfg.MaxCycles = 20_000_000
	return cfg
}

// runObserved dispatches the same small run set (two policies on one
// mix plus a standalone game) at the given worker count and returns
// the merged observability streams.
func runObserved(t *testing.T, workers int) ([]byte, []byte, []sim.Result) {
	t.Helper()
	x := NewRunner(obsTestCfg())
	x.Workers = workers
	coll := obs.NewCollection(0)
	x.Observe = coll.Recorder

	m := workloads.EvalMixes()[6] // M7
	done := make(chan sim.Result, 3)
	send := func(r sim.Result, err error) {
		if err != nil {
			t.Error(err)
		}
		done <- r
	}
	go func() { send(x.mix(m, sim.PolicyBaseline)) }()
	go func() { send(x.mix(m, sim.PolicyThrottleCPUPrio)) }()
	go func() { send(x.gpuStandalone(m.Game)) }()
	results := make([]sim.Result, 3)
	for i := range results {
		results[i] = <-done
	}

	var metrics, trace bytes.Buffer
	if err := coll.WriteMetrics(&metrics); err != nil {
		t.Fatal(err)
	}
	if err := coll.WriteTrace(&trace); err != nil {
		t.Fatal(err)
	}
	return metrics.Bytes(), trace.Bytes(), results
}

// TestObserveDeterministicAcrossWorkers pins the ISSUE's headline
// determinism claim: the merged metrics and trace files are
// byte-identical whether the runner executes serially or with a
// worker pool racing the three simulations.
func TestObserveDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("skipped in -short mode")
	}
	m1, t1, _ := runObserved(t, 1)
	m4, t4, _ := runObserved(t, 4)
	if len(m1) == 0 || len(t1) == 0 {
		t.Fatal("observed run set produced empty streams")
	}
	if !bytes.Equal(m1, m4) {
		t.Error("metrics stream differs between -workers 1 and 4")
	}
	if !bytes.Equal(t1, t4) {
		t.Error("trace stream differs between -workers 1 and 4")
	}
}

// TestObserveKeysAndIsolation: the runner hands each simulation its
// own keyed recorder, and cached (singleflight-deduplicated) rerequests
// do not re-observe.
func TestObserveKeysAndIsolation(t *testing.T) {
	if testing.Short() {
		t.Skip("skipped in -short mode")
	}
	x := NewRunner(obsTestCfg())
	x.Workers = 2
	coll := obs.NewCollection(0)
	x.Observe = coll.Recorder

	m := workloads.EvalMixes()[6]
	a, err := x.mix(m, sim.PolicyBaseline)
	if err != nil {
		t.Fatal(err)
	}
	b, err := x.mix(m, sim.PolicyBaseline) // memoized: same flight
	if err != nil {
		t.Fatal(err)
	}
	if a.MeasuredCycles != b.MeasuredCycles {
		t.Fatal("memoized run returned a different result")
	}

	keys := coll.Keys()
	if len(keys) != 1 {
		t.Fatalf("collection keys = %v, want exactly one (memoized rerun must not add)", keys)
	}
	wantKey := "mix/" + m.ID + "/0"
	if keys[0] != wantKey {
		t.Errorf("recorder key = %q, want %q", keys[0], wantKey)
	}
	if coll.Recorder(wantKey).Samples() == 0 {
		t.Error("observed run recorded no samples")
	}
}

// TestNilObserveIsOff: a runner without the hook runs fully unobserved
// (the default path must stay allocation-identical to PR 1).
func TestNilObserveIsOff(t *testing.T) {
	x := NewRunner(obsTestCfg())
	if rec := x.observe("mix/any"); rec != nil {
		t.Fatal("observe() returned a live recorder without a hook installed")
	}
}
