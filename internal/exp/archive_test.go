package exp

import (
	"path/filepath"
	"testing"
)

func archSample(fps float64) Report {
	return Report{
		ID:    "fig9",
		Title: "t",
		Rows: []Row{
			{Label: "M7", Cells: []Cell{{Name: "fps", Value: fps}, {Name: "cpu", Value: 1.2}}},
		},
	}
}

func TestArchiveSaveLoadRoundTrip(t *testing.T) {
	a := NewArchive(96)
	a.Add(archSample(41))
	path := filepath.Join(t.TempDir(), "arch.json")
	if err := a.Save(path); err != nil {
		t.Fatal(err)
	}
	b, err := LoadArchive(path)
	if err != nil {
		t.Fatal(err)
	}
	if b.Scale != 96 {
		t.Fatalf("scale = %d", b.Scale)
	}
	rep, ok := b.Reports["fig9"]
	if !ok || rep.Rows[0].Get("fps") != 41 {
		t.Fatalf("round trip lost data: %+v", b.Reports)
	}
}

func TestLoadArchiveMissingFile(t *testing.T) {
	if _, err := LoadArchive(filepath.Join(t.TempDir(), "nope.json")); err == nil {
		t.Fatalf("no error for missing file")
	}
}

func TestDiffFindsDrift(t *testing.T) {
	old := NewArchive(96)
	old.Add(archSample(40))
	new_ := NewArchive(96)
	new_.Add(archSample(50)) // +25% fps, cpu unchanged
	ds := Diff(old, new_, 0.10)
	if len(ds) != 1 {
		t.Fatalf("deltas: %+v", ds)
	}
	d := ds[0]
	if d.Cell != "fps" || d.Old != 40 || d.New != 50 {
		t.Fatalf("delta: %+v", d)
	}
	if d.Rel < 0.24 || d.Rel > 0.26 {
		t.Fatalf("rel: %v", d.Rel)
	}
}

func TestDiffRespectsThreshold(t *testing.T) {
	old := NewArchive(96)
	old.Add(archSample(40))
	new_ := NewArchive(96)
	new_.Add(archSample(41)) // +2.5%
	if ds := Diff(old, new_, 0.10); len(ds) != 0 {
		t.Fatalf("small drift reported: %+v", ds)
	}
	if ds := Diff(old, new_, 0.01); len(ds) != 1 {
		t.Fatalf("real drift missed")
	}
}

func TestDiffSkipsMissing(t *testing.T) {
	old := NewArchive(96)
	old.Add(archSample(40))
	old.Add(Report{ID: "fig3", Rows: []Row{{Label: "W1", Cells: []Cell{{Name: "speedup", Value: 1}}}}})
	new_ := NewArchive(96)
	new_.Add(archSample(40))
	if ds := Diff(old, new_, 0.01); len(ds) != 0 {
		t.Fatalf("missing experiment produced deltas: %+v", ds)
	}
}

func TestDiffSortsByMagnitude(t *testing.T) {
	old := NewArchive(1)
	old.Add(Report{ID: "x", Rows: []Row{
		{Label: "a", Cells: []Cell{{Name: "m", Value: 10}}},
		{Label: "b", Cells: []Cell{{Name: "m", Value: 10}}},
	}})
	new_ := NewArchive(1)
	new_.Add(Report{ID: "x", Rows: []Row{
		{Label: "a", Cells: []Cell{{Name: "m", Value: 11}}},
		{Label: "b", Cells: []Cell{{Name: "m", Value: 20}}},
	}})
	ds := Diff(old, new_, 0.01)
	if len(ds) != 2 || ds[0].Row != "b" {
		t.Fatalf("order: %+v", ds)
	}
}
