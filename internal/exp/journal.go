package exp

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"

	"repro/internal/sim"
)

// Record is one journaled simulation result: one line of the JSONL
// run journal (DESIGN.md §8). Kind selects the memo map ("mix",
// "gpu", "cpu"; CLIs may journal their own kinds, e.g. cmd/sweep's
// "cell"), Key is the memo key within it, and exactly one of Result
// or IPC carries the payload. Hash is a sha256 over the record's JSON
// with Hash itself cleared, so a torn or bit-rotted line is detected
// and skipped on replay instead of resurrecting a corrupt result.
type Record struct {
	Kind   string      `json:"kind"`
	Key    string      `json:"key"`
	IPC    float64     `json:"ipc,omitempty"`    // payload for kind "cpu"
	Result *sim.Result `json:"result,omitempty"` // payload for the other kinds
	Hash   string      `json:"hash"`
}

// hashRecord computes the integrity hash: sha256 over the canonical
// JSON encoding with the Hash field empty. encoding/json marshals
// struct fields in declaration order and floats in their shortest
// round-trippable form, so the encoding — and therefore the hash — is
// deterministic.
func hashRecord(rec Record) (string, error) {
	rec.Hash = ""
	data, err := json.Marshal(rec)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:]), nil
}

// Journal is a crash-safe, append-only JSONL file of completed runs.
// Every Append is fsynced before it returns, so a record either made
// it to disk whole or is detected as torn on the next open — a killed
// sweep loses at most the run that was in flight.
type Journal struct {
	mu  sync.Mutex
	f   *os.File
	err error // first append/sync failure; sticky
}

// OpenJournal opens (creating if absent) the journal at path, returns
// the valid records already present and how many lines were skipped
// as corrupt, and leaves the journal open for appends. A torn trailing
// line (the signature of a crash mid-write) is truncated away so new
// appends start on a clean line boundary; corrupt lines elsewhere are
// skipped but preserved.
func OpenJournal(path string) (*Journal, []Record, int, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, nil, 0, fmt.Errorf("journal: open %s: %w", path, err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		f.Close()
		return nil, nil, 0, fmt.Errorf("journal: read %s: %w", path, err)
	}
	recs, skipped, validLen := decodeJournal(data)
	if validLen < int64(len(data)) {
		if err := f.Truncate(validLen); err != nil {
			f.Close()
			return nil, nil, 0, fmt.Errorf("journal: repair %s: %w", path, err)
		}
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, nil, 0, fmt.Errorf("journal: seek %s: %w", path, err)
	}
	return &Journal{f: f}, recs, skipped, nil
}

// decodeJournal parses the journal bytes line by line. validLen is
// the length of the leading portion that ends on a newline — anything
// past it is a torn trailing write and counts as one skipped line.
func decodeJournal(data []byte) (recs []Record, skipped int, validLen int64) {
	for len(data) > 0 {
		nl := bytes.IndexByte(data, '\n')
		if nl < 0 {
			skipped++ // torn trailing line, no terminator
			return recs, skipped, validLen
		}
		line := data[:nl]
		data = data[nl+1:]
		validLen += int64(nl + 1)
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var rec Record
		if err := json.Unmarshal(line, &rec); err != nil {
			skipped++
			continue
		}
		want, err := hashRecord(rec)
		if err != nil || rec.Hash != want {
			skipped++
			continue
		}
		recs = append(recs, rec)
	}
	return recs, skipped, validLen
}

// Append hashes rec, writes it as one JSONL line, and fsyncs. Safe
// for concurrent use by pool workers. After the first failure the
// journal stops accepting appends and Err reports the cause — runs
// continue, they just stop being resumable.
func (j *Journal) Append(rec Record) error {
	h, err := hashRecord(rec)
	if err != nil {
		return fmt.Errorf("journal: encode %s/%s: %w", rec.Kind, rec.Key, err)
	}
	rec.Hash = h
	data, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("journal: encode %s/%s: %w", rec.Kind, rec.Key, err)
	}
	data = append(data, '\n')

	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return j.err
	}
	if j.f == nil {
		return fmt.Errorf("journal: append after Close")
	}
	if _, err := j.f.Write(data); err != nil {
		j.err = fmt.Errorf("journal: write: %w", err)
		return j.err
	}
	if err := j.f.Sync(); err != nil {
		j.err = fmt.Errorf("journal: fsync: %w", err)
		return j.err
	}
	return nil
}

// Err returns the first append failure, if any.
func (j *Journal) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// Close flushes and closes the journal file.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Close()
	j.f = nil
	return err
}

// journalAppend records a completed run in the runner's journal; a
// nil journal makes it a no-op, and append failures are recorded but
// never fail the run itself (the sweep degrades to non-resumable).
func (x *Runner) journalAppend(rec Record) {
	if x.Journal == nil {
		return
	}
	if err := x.Journal.Append(rec); err != nil {
		x.record(&RunError{Key: rec.Key, Phase: "journal", Err: err})
	}
}

// ReplayJournal seeds the runner's memo maps from journaled records
// so only missing runs execute after a resume; it returns how many
// records were adopted. Unknown kinds and duplicate keys are ignored,
// which also makes replaying a journal from a different sweep merely
// useless, not harmful.
func (x *Runner) ReplayJournal(recs []Record) int {
	n := 0
	for _, rec := range recs {
		switch rec.Kind {
		case "mix":
			if rec.Result != nil && seedFlight(x, x.mixRuns, rec.Key, *rec.Result) {
				n++
			}
		case "gpu":
			if rec.Result != nil && seedFlight(x, x.gpuAlone, rec.Key, *rec.Result) {
				n++
			}
		case "cpu":
			if seedFlight(x, x.cpuAlone, rec.Key, rec.IPC) {
				n++
			}
		}
	}
	return n
}

// seedFlight installs an already-completed flight under key, unless
// one exists. Seeded flights look exactly like finished runs to the
// accessors: done is closed, val is set, no worker slot was consumed.
func seedFlight[T any](x *Runner, m map[string]*flight[T], key string, v T) bool {
	x.mu.Lock()
	defer x.mu.Unlock()
	if _, ok := m[key]; ok {
		return false
	}
	done := make(chan struct{})
	close(done)
	m[key] = &flight[T]{done: done, val: v}
	return true
}
