package exp

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/twin"
)

// Record is one journaled simulation result: one line of the JSONL
// run journal (DESIGN.md §8). Kind selects the memo map ("mix",
// "gpu", "cpu"; CLIs may journal their own kinds, e.g. cmd/sweep's
// "cell"), Key is the memo key within it, and exactly one of Result
// or IPC carries the payload. Hash is a sha256 over the record's JSON
// with Hash itself cleared, so a torn or bit-rotted line is detected
// and skipped on replay instead of resurrecting a corrupt result.
type Record struct {
	Kind   string           `json:"kind"`
	Key    string           `json:"key"`
	IPC    float64          `json:"ipc,omitempty"`    // payload for kind "cpu"
	Result *sim.Result      `json:"result,omitempty"` // payload for the other kinds
	Twin   *twin.Prediction `json:"twin,omitempty"`   // payload for kind "twin" (analytic answers)
	Spec   *TaskSpec        `json:"task,omitempty"`   // payload for kind "queued" (hetsimd drain)
	Worker string           `json:"worker,omitempty"` // fleet kinds: the lease-holding node
	ErrMsg string           `json:"err,omitempty"`    // kind "quarantined": final failure + stack
	Term   uint64           `json:"term,omitempty"`   // kind "term": coordinator incarnation epoch
	Hash   string           `json:"hash"`
}

// KindQueued journals a task that was admitted but never executed —
// what hetsimd writes for its queue during a graceful drain, so a
// restart with -resume re-enqueues exactly the work that was pending.
const KindQueued = "queued"

// Fleet-level record kinds (DESIGN.md §13). The coordinator journals a
// task's lease lifecycle alongside its completion so a restarted fleet
// reconstructs exactly which keys were pending, who held them, and
// which finished — the crash-consistency contract PR 5 established for
// one daemon, extended across nodes.
const (
	// KindLeased records a lease grant: Key is the full task key,
	// Worker the node it was granted to. A leased record with no later
	// completion means the task was in flight when the coordinator
	// died; resume re-arms the lease so a surviving holder can still
	// complete it before it expires and is re-enqueued.
	KindLeased = "leased"

	// KindStolen records a grant of a previously-leased task to a
	// different worker — the work-stealing path after a lease expiry or
	// a worker deregistration.
	KindStolen = "stolen"

	// KindQuarantined records a task poisoned by repeated RunError on
	// distinct workers: ErrMsg carries the final failure (panic stack
	// included), and resume keeps the key failed instead of re-running
	// a task that kills every node it lands on.
	KindQuarantined = "quarantined"

	// KindTerm records a coordinator incarnation taking office: Term is
	// the monotonically increasing epoch, Worker the coordinator's
	// identity. The highest term in a journal fences stale coordinators
	// after an HA failover (DESIGN.md §15) — a standby promotes by
	// journaling maxTerm+1, and participants reject protocol responses
	// carrying any older term. Key is empty; Compact keeps only the
	// newest term record, which is the only one replay needs.
	KindTerm = "term"
)

// hashRecord computes the integrity hash: sha256 over the canonical
// JSON encoding with the Hash field empty. encoding/json marshals
// struct fields in declaration order and floats in their shortest
// round-trippable form, so the encoding — and therefore the hash — is
// deterministic.
func hashRecord(rec Record) (string, error) {
	rec.Hash = ""
	data, err := json.Marshal(rec)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:]), nil
}

// VerifyRecord reports whether rec's integrity hash matches its
// content. Replication consumers (the HA standby) call this on every
// record received over the wire before absorbing it, so a torn or
// tampered replication batch is skipped-and-counted rather than
// installed into the follower's state.
func VerifyRecord(rec Record) bool {
	want, err := hashRecord(rec)
	return err == nil && rec.Hash == want
}

// JournalStats accounts for everything OpenJournal found besides the
// valid records: nothing is dropped silently. CorruptLines counts
// newline-terminated lines that failed to parse or whose integrity
// hash did not match (bit rot, tampering); TornTail is 1 when an
// unterminated trailing write — the signature of a crash mid-append —
// was truncated away so the file ends on a clean line boundary.
type JournalStats struct {
	Records      int `json:"records"`
	CorruptLines int `json:"corrupt_lines"`
	TornTail     int `json:"torn_tail"`
}

// Skipped is the total number of lines that did not come back as
// records: corrupt lines plus the repaired torn tail.
func (s JournalStats) Skipped() int { return s.CorruptLines + s.TornTail }

// Journal is a crash-safe, append-only JSONL file of completed runs.
// Every Append is fsynced before it returns, so a record either made
// it to disk whole or is detected as torn on the next open — a killed
// sweep loses at most the run that was in flight.
type Journal struct {
	mu      sync.Mutex
	f       *os.File
	path    string
	err     error // first append/sync failure; sticky
	stats   JournalStats
	appends uint64 // records appended through this handle
	aerrs   uint64 // appends that failed (write or fsync)
}

// OpenJournal opens (creating if absent) the journal at path, returns
// the valid records already present and the stats of what was not
// (corrupt lines, torn-tail repairs), and leaves the journal open for
// appends. A torn trailing line is truncated away so new appends start
// on a clean line boundary; corrupt lines elsewhere are skipped but
// preserved.
func OpenJournal(path string) (*Journal, []Record, JournalStats, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, nil, JournalStats{}, fmt.Errorf("journal: open %s: %w", path, err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		f.Close()
		return nil, nil, JournalStats{}, fmt.Errorf("journal: read %s: %w", path, err)
	}
	recs, stats, validLen := decodeJournal(data)
	if validLen < int64(len(data)) {
		if err := f.Truncate(validLen); err != nil {
			f.Close()
			return nil, nil, stats, fmt.Errorf("journal: repair %s: %w", path, err)
		}
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, nil, stats, fmt.Errorf("journal: seek %s: %w", path, err)
	}
	return &Journal{f: f, path: path, stats: stats}, recs, stats, nil
}

// Compact rewrites the journal to hold only the latest record per
// (kind, key) pair, in last-occurrence order. Long-lived fleet and
// daemon journals accumulate superseded lease-lifecycle records across
// resumes; the survivors replay to the identical state because every
// replayer is keyed by (kind, key) and a run's payload is
// deterministic for its key. The rewrite is crash-safe: the compacted
// records are written to a temporary file in the same directory,
// fsynced, and atomically renamed over the journal — at any kill
// instant the path holds either the old bytes or the new, never a mix.
// Appends continue on the compacted file. Returns how many records
// were kept and how many duplicates were dropped.
func (j *Journal) Compact() (kept, dropped int, err error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return 0, 0, j.err
	}
	if j.f == nil {
		return 0, 0, fmt.Errorf("journal: compact after Close")
	}
	data, err := os.ReadFile(j.path)
	if err != nil {
		return 0, 0, fmt.Errorf("journal: compact read %s: %w", j.path, err)
	}
	recs, _, _ := decodeJournal(data)

	// Latest record per (kind, key), preserving the order in which each
	// survivor last appeared — so a replay walks the same effective
	// sequence the uncompacted journal would have settled on.
	type slot struct{ idx int }
	latest := make(map[string]slot, len(recs))
	for i, rec := range recs {
		latest[rec.Kind+"\x00"+rec.Key] = slot{idx: i}
	}
	var out []byte
	for i, rec := range recs {
		if latest[rec.Kind+"\x00"+rec.Key].idx != i {
			dropped++
			continue
		}
		kept++
		line, err := json.Marshal(rec) // Hash already set and verified by decode
		if err != nil {
			return 0, 0, fmt.Errorf("journal: compact encode %s/%s: %w", rec.Kind, rec.Key, err)
		}
		out = append(out, line...)
		out = append(out, '\n')
	}

	tmp := j.path + ".compact"
	tf, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return 0, 0, fmt.Errorf("journal: compact %s: %w", tmp, err)
	}
	if _, err := tf.Write(out); err != nil {
		tf.Close()
		os.Remove(tmp)
		return 0, 0, fmt.Errorf("journal: compact write %s: %w", tmp, err)
	}
	if err := tf.Sync(); err != nil {
		tf.Close()
		os.Remove(tmp)
		return 0, 0, fmt.Errorf("journal: compact fsync %s: %w", tmp, err)
	}
	if err := tf.Close(); err != nil {
		os.Remove(tmp)
		return 0, 0, fmt.Errorf("journal: compact close %s: %w", tmp, err)
	}
	if err := os.Rename(tmp, j.path); err != nil {
		os.Remove(tmp)
		return 0, 0, fmt.Errorf("journal: compact rename: %w", err)
	}
	// Best-effort directory sync so the rename itself is durable.
	if dir, derr := os.Open(filepath.Dir(j.path)); derr == nil {
		dir.Sync()
		dir.Close()
	}
	// Swap the append handle onto the compacted file: the old
	// descriptor points at the unlinked inode.
	nf, err := os.OpenFile(j.path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		j.err = fmt.Errorf("journal: reopen after compact: %w", err)
		return kept, dropped, j.err
	}
	j.f.Close()
	j.f = nf
	return kept, dropped, nil
}

// decodeJournal parses the journal bytes line by line. validLen is
// the length of the leading portion that ends on a newline — anything
// past it is a torn trailing write.
func decodeJournal(data []byte) (recs []Record, stats JournalStats, validLen int64) {
	for len(data) > 0 {
		nl := bytes.IndexByte(data, '\n')
		if nl < 0 {
			stats.TornTail++ // torn trailing line, no terminator
			break
		}
		line := data[:nl]
		data = data[nl+1:]
		validLen += int64(nl + 1)
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var rec Record
		if err := json.Unmarshal(line, &rec); err != nil {
			stats.CorruptLines++
			continue
		}
		want, err := hashRecord(rec)
		if err != nil || rec.Hash != want {
			stats.CorruptLines++
			continue
		}
		recs = append(recs, rec)
	}
	stats.Records = len(recs)
	return recs, stats, validLen
}

// ReadJournalAt reads up to max complete, hash-valid records from the
// journal file at path, starting at byte offset from. It returns the
// records, the offset just past the last complete line consumed (the
// `from` for the next call), and the decode stats for the window. A
// torn or corrupt trailing region is not advanced past — the next call
// re-reads it, so a concurrent appender's half-written line is picked
// up whole once its fsync lands. This is the pull side of the HA
// replication stream: the primary serves it from its own journal file,
// which is safe to read concurrently with appends because records are
// newline-framed and individually hashed.
func ReadJournalAt(path string, from int64, max int) ([]Record, int64, error) {
	if max <= 0 {
		max = 512
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, from, fmt.Errorf("journal: stream open %s: %w", path, err)
	}
	defer f.Close()
	if from > 0 {
		if _, err := f.Seek(from, io.SeekStart); err != nil {
			return nil, from, fmt.Errorf("journal: stream seek %s: %w", path, err)
		}
	}
	// Read a bounded window: enough for max records of any realistic
	// size; records larger than the window are picked up by the next
	// call's larger effective offset only if a newline fits — cap reads
	// at 8 MiB to bound memory, and let callers loop.
	const window = 8 << 20
	data := make([]byte, window)
	n, err := io.ReadFull(f, data)
	if err != nil && err != io.EOF && err != io.ErrUnexpectedEOF {
		return nil, from, fmt.Errorf("journal: stream read %s: %w", path, err)
	}
	data = data[:n]
	recs, _, validLen := decodeJournal(data)
	if len(recs) > max {
		// Re-walk to find the byte length of exactly max records so the
		// returned offset matches the records handed back.
		var upto int64
		count := 0
		rest := data
		for count < max {
			nl := bytes.IndexByte(rest, '\n')
			if nl < 0 {
				break
			}
			line := rest[:nl]
			rest = rest[nl+1:]
			upto += int64(nl + 1)
			if len(bytes.TrimSpace(line)) == 0 {
				continue
			}
			var rec Record
			if json.Unmarshal(line, &rec) == nil && VerifyRecord(rec) {
				count++
			}
		}
		recs = recs[:max]
		validLen = upto
	}
	return recs, from + validLen, nil
}

// AppendBatch hashes and writes every record as its own JSONL line,
// then fsyncs once for the whole batch. This is the standby's mirror
// path: replication arrives in batches, and one fsync per batch keeps
// the follower from paying the primary's per-record durability cost
// twice. On a write error the journal is sticky-failed exactly as
// Append; the batch is not partially retried.
func (j *Journal) AppendBatch(recs []Record) error {
	if len(recs) == 0 {
		return nil
	}
	var buf bytes.Buffer
	for _, rec := range recs {
		h, err := hashRecord(rec)
		if err != nil {
			return fmt.Errorf("journal: encode %s/%s: %w", rec.Kind, rec.Key, err)
		}
		rec.Hash = h
		data, err := json.Marshal(rec)
		if err != nil {
			return fmt.Errorf("journal: encode %s/%s: %w", rec.Kind, rec.Key, err)
		}
		buf.Write(data)
		buf.WriteByte('\n')
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return j.err
	}
	if j.f == nil {
		return fmt.Errorf("journal: append after Close")
	}
	if _, err := j.f.Write(buf.Bytes()); err != nil {
		j.err = fmt.Errorf("journal: write: %w", err)
		j.aerrs++
		return j.err
	}
	if err := j.f.Sync(); err != nil {
		j.err = fmt.Errorf("journal: fsync: %w", err)
		j.aerrs++
		return j.err
	}
	j.appends += uint64(len(recs))
	return nil
}

// Path returns the journal's file path — the primary's HTTP layer
// serves the replication stream straight from this file.
func (j *Journal) Path() string { return j.path }

// Stats returns what OpenJournal found when this journal was opened.
func (j *Journal) Stats() JournalStats {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.stats
}

// RegisterObs exposes the journal's health as pull-based counters —
// corrupt lines and torn-tail repairs seen at open, appends and append
// failures since — so a service's /metricsz shows when a journal is
// degrading instead of the damage surfacing only at the next restart.
func (j *Journal) RegisterObs(g *obs.Registry) {
	g.Counter("journal_corrupt_lines", func() uint64 {
		return uint64(j.Stats().CorruptLines)
	})
	g.Counter("journal_torn_tail_repairs", func() uint64 {
		return uint64(j.Stats().TornTail)
	})
	g.Counter("journal_appends", func() uint64 {
		j.mu.Lock()
		defer j.mu.Unlock()
		return j.appends
	})
	g.Counter("journal_append_errors", func() uint64 {
		j.mu.Lock()
		defer j.mu.Unlock()
		return j.aerrs
	})
}

// Append hashes rec, writes it as one JSONL line, and fsyncs. Safe
// for concurrent use by pool workers. After the first failure the
// journal stops accepting appends and Err reports the cause — runs
// continue, they just stop being resumable.
func (j *Journal) Append(rec Record) error {
	h, err := hashRecord(rec)
	if err != nil {
		return fmt.Errorf("journal: encode %s/%s: %w", rec.Kind, rec.Key, err)
	}
	rec.Hash = h
	data, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("journal: encode %s/%s: %w", rec.Kind, rec.Key, err)
	}
	data = append(data, '\n')

	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return j.err
	}
	if j.f == nil {
		return fmt.Errorf("journal: append after Close")
	}
	if _, err := j.f.Write(data); err != nil {
		j.err = fmt.Errorf("journal: write: %w", err)
		j.aerrs++
		return j.err
	}
	if err := j.f.Sync(); err != nil {
		j.err = fmt.Errorf("journal: fsync: %w", err)
		j.aerrs++
		return j.err
	}
	j.appends++
	return nil
}

// Err returns the first append failure, if any.
func (j *Journal) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// Close flushes and closes the journal file.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Close()
	j.f = nil
	return err
}

// journalAppend records a completed run in the runner's journal; a
// nil journal makes it a no-op, and append failures are recorded but
// never fail the run itself (the sweep degrades to non-resumable).
func (x *Runner) journalAppend(rec Record) {
	if x.Journal == nil {
		return
	}
	if err := x.Journal.Append(rec); err != nil {
		x.record(&RunError{Key: rec.Key, Phase: "journal", Err: err})
	}
}

// ReplayJournal seeds the runner's memo maps from journaled records
// so only missing runs execute after a resume. It returns how many
// records were adopted and how many were not — unknown kinds (a
// CLI's own records, e.g. sweep "cell" or hetsimd "queued" lines),
// payload-less records, and duplicate keys. Ignored records are
// harmless — replaying a journal from a different sweep is merely
// useless — but the count is surfaced so nothing disappears silently.
func (x *Runner) ReplayJournal(recs []Record) (adopted, ignored int) {
	for _, rec := range recs {
		ok := false
		switch rec.Kind {
		case KindMix:
			ok = rec.Result != nil && seedFlight(x, x.mixRuns, rec.Key, *rec.Result)
		case KindGPU:
			ok = rec.Result != nil && seedFlight(x, x.gpuAlone, rec.Key, *rec.Result)
		case KindCPU:
			ok = seedFlight(x, x.cpuAlone, rec.Key, rec.IPC)
		case KindScenario:
			ok = rec.Result != nil && seedFlight(x, x.scnRuns, rec.Key, *rec.Result)
		case KindTwin:
			ok = rec.Twin != nil && seedFlight(x, x.twinRuns, rec.Key,
				TaskResult{Tier: TierTwin, Prediction: rec.Twin})
		}
		if ok {
			adopted++
		} else {
			ignored++
		}
	}
	return adopted, ignored
}

// seedFlight installs an already-completed flight under key, unless
// one exists. Seeded flights look exactly like finished runs to the
// accessors: done is closed, val is set, no worker slot was consumed.
func seedFlight[T any](x *Runner, m map[string]*flight[T], key string, v T) bool {
	x.mu.Lock()
	defer x.mu.Unlock()
	if _, ok := m[key]; ok {
		return false
	}
	done := make(chan struct{})
	close(done)
	m[key] = &flight[T]{done: done, val: v}
	return true
}
