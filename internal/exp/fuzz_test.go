package exp

import (
	"encoding/json"
	"testing"
)

// FuzzJournalLine feeds arbitrary bytes to the journal decoder — the
// code that parses files which survive crashes, truncations, and bit
// rot. Properties: decodeJournal never panics; validLen is within the
// input and ends on a newline boundary (it is fed to Truncate, so an
// error here destroys good records); every returned record carries a
// verifying integrity hash; and the stats account for every line.
func FuzzJournalLine(f *testing.F) {
	f.Add([]byte(""))
	f.Add([]byte("\n"))
	f.Add([]byte("not json\n"))
	f.Add([]byte(`{"kind":"mix","key":"M7/2","hash":"deadbeef"}` + "\n"))
	f.Add([]byte(`{"kind":"cpu","key":"429","ipc":1.5,"hash":""}` + "\n" + `{"torn`))
	// A genuine record, produced the same way Append does.
	rec := Record{Kind: KindCPU, Key: "429", IPC: 1.25}
	if h, err := hashRecord(rec); err == nil {
		rec.Hash = h
		if data, err := encodeRecord(rec); err == nil {
			f.Add(data)
			f.Add(append(data, data[:len(data)/2]...)) // valid line + torn tail
		}
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		recs, stats, validLen := decodeJournal(data)
		if validLen < 0 || validLen > int64(len(data)) {
			t.Fatalf("validLen %d outside [0, %d]", validLen, len(data))
		}
		if validLen > 0 && data[validLen-1] != '\n' {
			t.Fatalf("validLen %d does not end on a line boundary", validLen)
		}
		if stats.Records != len(recs) {
			t.Fatalf("stats.Records %d != %d returned records", stats.Records, len(recs))
		}
		for i, rec := range recs {
			want, err := hashRecord(rec)
			if err != nil || rec.Hash != want {
				t.Fatalf("record %d came back with a non-verifying hash: %+v", i, rec)
			}
		}
		// Decoding the valid prefix again must be a fixed point: same
		// records, nothing newly torn.
		again, stats2, len2 := decodeJournal(data[:validLen])
		if len2 != validLen || stats2.Records != stats.Records || len(again) != len(recs) {
			t.Fatalf("re-decode of the valid prefix diverged: %d/%d records, validLen %d/%d",
				len(again), len(recs), len2, validLen)
		}
	})
}

// encodeRecord mirrors Append's wire form for seeding the fuzz corpus.
func encodeRecord(rec Record) ([]byte, error) {
	data, err := json.Marshal(rec)
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}
