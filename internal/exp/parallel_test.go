package exp

import (
	"fmt"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/sim"
)

// detCfg is the smallest configuration that still runs every
// subsystem: determinism and concurrency tests need many full runs,
// not meaningful numbers.
func detCfg() sim.Config {
	cfg := sim.DefaultConfig(256)
	cfg.WarmupInstr = 10_000
	cfg.WarmupFrames = 1
	cfg.MeasureInstr = 30_000
	cfg.MinFrames = 1
	cfg.MaxCycles = 10_000_000
	return cfg
}

// render concatenates the reports the way cmd/experiments prints
// them, so "byte-identical" means byte-identical observable output.
func render(reps []Report) string {
	var b strings.Builder
	for _, rep := range reps {
		b.WriteString(rep.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// TestParallelDeterminism is the same-seed→same-output guarantee
// extended to the pool: the parallel Runner must produce output
// byte-identical to the serial one at every worker count, because
// scheduling may only change WHEN a simulation runs, never what it
// computes.
func TestParallelDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	ids := []string{"fig2", "fig3"}
	baseline := ""
	for _, workers := range []int{1, 2, 4, 8} {
		x := NewRunner(detCfg())
		x.Workers = workers
		reps, err := x.RunAll(ids...)
		if err != nil {
			t.Fatal(err)
		}
		x.Wait()
		out := render(reps)
		if baseline == "" {
			baseline = out
			continue
		}
		if out != baseline {
			t.Fatalf("workers=%d output differs from serial output:\n--- serial ---\n%s\n--- workers=%d ---\n%s",
				workers, baseline, workers, out)
		}
	}
}

// TestEngineDeterminism crosses campaign workers with intra-run
// parallelism: forcing every run onto the intra-run parallel engine
// (via the config, as hetsimd's TaskSpec.Engine ultimately does) must
// leave the rendered reports byte-identical to the all-sequential
// pool at every worker count — the thread budget changes wall-clock
// layout, never results.
func TestEngineDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	ids := []string{"fig2"}
	baseline := ""
	for _, c := range []struct {
		workers, intra int
	}{{1, 1}, {1, 2}, {2, 2}, {4, 3}} {
		cfg := detCfg()
		cfg.IntraThreads = c.intra
		x := NewRunner(cfg)
		x.Workers = c.workers
		reps, err := x.RunAll(ids...)
		if err != nil {
			t.Fatal(err)
		}
		x.Wait()
		out := render(reps)
		if baseline == "" {
			baseline = out
			continue
		}
		if out != baseline {
			t.Fatalf("workers=%d intra=%d output differs from sequential:\n--- sequential ---\n%s\n--- got ---\n%s",
				c.workers, c.intra, baseline, out)
		}
	}
}

// TestTaskEngineOverride checks the TaskSpec.Engine plumbing: a "seq"
// and a "parallel" submission of the same task must both succeed and
// agree on the result (the engines are observationally identical, and
// the memo key deliberately ignores the engine choice).
func TestTaskEngineOverride(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	seq := NewRunner(detCfg())
	a, err := seq.Do(nil, TaskSpec{Kind: KindMix, MixID: "W3", Policy: sim.PolicyBaseline, Engine: EngineSeq})
	if err != nil {
		t.Fatal(err)
	}
	par := NewRunner(detCfg())
	b, err := par.Do(nil, TaskSpec{Kind: KindMix, MixID: "W3", Policy: sim.PolicyBaseline, Engine: EngineParallel})
	if err != nil {
		t.Fatal(err)
	}
	if av, bv := fmt.Sprintf("%+v", *a.Result), fmt.Sprintf("%+v", *b.Result); av != bv {
		t.Errorf("engine override changed the result:\nseq: %s\npar: %s", av, bv)
	}
	if err := (TaskSpec{Kind: KindMix, MixID: "W3", Engine: "warp"}).Validate(); err == nil {
		t.Error("bogus engine name passed Validate")
	}
}

// TestPlanMatchesFigures: prefetching an experiment's plan and then
// assembling it must start zero additional simulations — otherwise
// the plan table in plan.go has drifted from the figure code and part
// of the work silently runs serially.
func TestPlanMatchesFigures(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	x := NewRunner(detCfg())
	x.Workers = 4
	for _, id := range []string{"table1", "table2", "table3", "fig1", "fig2", "fig3", "fig9"} {
		if err := x.Prefetch(id); err != nil {
			t.Fatal(err)
		}
		x.Wait()
		before := x.Started()
		if _, err := x.ByID(id); err != nil {
			t.Fatal(err)
		}
		if after := x.Started(); after != before {
			t.Errorf("%s: assembly started %d runs not covered by its plan", id, after-before)
		}
	}
}

func TestPlanUnknownID(t *testing.T) {
	x := NewRunner(detCfg())
	if err := x.Prefetch("fig99"); err == nil {
		t.Fatal("no error for unknown experiment id")
	}
	if _, err := x.RunAll("nope"); err == nil {
		t.Fatal("no error for unknown experiment id")
	}
}

// TestRunnerConcurrentUse hammers one Runner from many goroutines on
// colliding keys and checks singleflight deduplication: every caller
// must observe the one shared run. This test runs even in -short mode
// so the -race gate always exercises the memoization layer.
func TestRunnerConcurrentUse(t *testing.T) {
	x := NewRunner(detCfg())
	x.Workers = 4
	m := mixByIDOrDie(t, "W3")
	var wg sync.WaitGroup
	results := make([]sim.Result, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r, err := x.mix(m, sim.PolicyBaseline)
			if err != nil {
				t.Error(err)
			}
			results[i] = r
		}(i)
	}
	var alone [4]float64
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, err := x.cpuStandalone(m.SpecIDs[0])
			if err != nil {
				t.Error(err)
			}
			alone[i] = v
		}(i)
	}
	wg.Wait()
	for i := 1; i < 8; i++ {
		if results[i].MeasuredCycles != results[0].MeasuredCycles ||
			results[i].GPUFPS != results[0].GPUFPS {
			t.Fatalf("goroutine %d observed a different result for the same key", i)
		}
	}
	for i := 1; i < 4; i++ {
		if alone[i] != alone[0] {
			t.Fatalf("goroutine %d observed a different standalone IPC", i)
		}
	}
	if got := x.Started(); got != 2 {
		t.Fatalf("started %d runs, want 2 (12 colliding callers, 2 unique keys)", got)
	}
}

// TestConcurrentPrefetchDedup overlaps Prefetch calls with direct
// accessor calls whose keys sit inside the prefetched plan, and
// checks the total run count is exactly the plan's unique-key count.
func TestConcurrentPrefetchDedup(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	x := NewRunner(detCfg())
	x.Workers = 4
	m := mixByIDOrDie(t, "W3")
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := x.Prefetch("fig3"); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := x.mix(m, sim.PolicyBaseline); err != nil { // collides with the plan
			t.Error(err)
		}
	}()
	wg.Wait()
	x.Wait()
	// fig3 is 14 mixes x 2 policies; prefetching it twice plus the
	// direct call must still run each key exactly once.
	if got := x.Started(); got != 28 {
		t.Fatalf("started %d runs, want 28 (deduplicated)", got)
	}
}

// TestParallelSpeedup checks the wall-clock point of the pool: with
// N≥4 workers the experiment set must regenerate at least 2x faster
// than serially. Needs real hardware parallelism, so it skips on
// smaller machines (GOMAXPROCS < 4) where the workers would just
// time-slice one another.
func TestParallelSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock benchmark")
	}
	if runtime.GOMAXPROCS(0) < 4 {
		t.Skipf("needs >=4 CPUs, have GOMAXPROCS=%d", runtime.GOMAXPROCS(0))
	}
	ids := []string{"fig2", "fig3"}
	run := func(workers int) (time.Duration, string) {
		x := NewRunner(detCfg())
		x.Workers = workers
		start := time.Now()
		reps, err := x.RunAll(ids...)
		if err != nil {
			t.Fatal(err)
		}
		x.Wait()
		return time.Since(start), render(reps)
	}
	serial, serialOut := run(1)
	parallel, parallelOut := run(4)
	if parallelOut != serialOut {
		t.Fatal("parallel output differs from serial output")
	}
	if parallel > serial/2 {
		t.Errorf("4 workers: %v, serial: %v — speedup %.2fx, want >=2x",
			parallel, serial, float64(serial)/float64(parallel))
	}
}
