package exp

import (
	"context"
	"errors"
	"path/filepath"
	"strconv"
	"testing"

	"repro/internal/sim"
	"repro/internal/twin"
	"repro/internal/workloads"
)

// twinTestModel builds a synthetic analytic model over the first
// evaluation mix: fabricated anchors plus one identity (zero-weight)
// correction per requested policy, whose residual RMS controls the
// confidence the serving tier sees.
func twinTestModel(t testing.TB, cfg sim.Config, pols map[sim.Policy]float64) *twin.Model {
	t.Helper()
	m1 := workloads.EvalMixes()[0]
	anchor := &twin.MixAnchor{FPS: 45, IPC: make([]float64, len(m1.SpecIDs)), GPUBPC: 2, CPUBPC: 1}
	cpuIPC := make(map[int]float64)
	for i, id := range m1.SpecIDs {
		cpuIPC[id] = 1.2
		anchor.IPC[i] = 0.9
	}
	c := &twin.Coefficients{
		Version:      twin.CoeffVersion,
		ConfigDigest: twin.ConfigDigest(cfg),
		Scale:        cfg.Scale,
		TargetFPS:    cfg.TargetFPS,
		GPUFPS:       map[string]float64{m1.Game: 50},
		CPUIPC:       cpuIPC,
		MixBase:      map[string]*twin.MixAnchor{m1.ID: anchor},
		Policies:     make(map[string]*twin.PolicyFit),
	}
	for p, rms := range pols {
		c.Policies[strconv.Itoa(int(p))] = twin.ZeroPolicyFit(rms, 0)
	}
	m, err := twin.New(c)
	if err != nil {
		t.Fatalf("twin.New: %v", err)
	}
	return m
}

func TestTwinTierKeysAndValidation(t *testing.T) {
	spec := MixTaskSpec("M1", sim.PolicySMS09)
	if got := spec.Key(); got != "mix/M1/3" {
		t.Fatalf("full key %q", got)
	}
	for _, tier := range []string{TierTwin, TierAuto} {
		s := spec
		s.Tier = tier
		if got := s.Key(); got != "twin/mix/M1/3" {
			t.Errorf("tier %s key %q, want twin/mix/M1/3", tier, got)
		}
		if err := s.Validate(); err != nil {
			t.Errorf("tier %s must validate: %v", tier, err)
		}
	}
	full := spec
	full.Tier = TierFull
	if got := full.Key(); got != "mix/M1/3" {
		t.Errorf("explicit full tier key %q must match default", got)
	}

	parsed, err := ParseKey("twin/mix/M1/3")
	if err != nil {
		t.Fatalf("ParseKey: %v", err)
	}
	if parsed.Tier != TierAuto || parsed.MixID != "M1" || parsed.Policy != sim.PolicySMS09 {
		t.Errorf("ParseKey twin key: %+v", parsed)
	}
	if _, err := ParseKey("twin/mix/garbage"); err == nil {
		t.Error("malformed twin key must fail to parse")
	}

	bad := spec
	bad.Tier = "warp"
	if err := bad.Validate(); err == nil {
		t.Error("unknown tier must fail validation")
	}
	scn := TaskSpec{Kind: KindScenario, Tier: TierTwin}
	if err := scn.Validate(); err == nil {
		t.Error("scenario tasks must reject analytic tiers")
	}
}

func TestTwinTierServesAnalytically(t *testing.T) {
	cfg := sim.DefaultConfig(4096)
	path := filepath.Join(t.TempDir(), "runs.jsonl")
	jnl, _, _, err := OpenJournal(path)
	if err != nil {
		t.Fatalf("OpenJournal: %v", err)
	}
	defer jnl.Close()
	x := NewRunner(cfg)
	x.Workers = 1
	x.Journal = jnl
	x.Twin = twinTestModel(t, cfg, map[sim.Policy]float64{sim.PolicySMS09: 0})

	spec := MixTaskSpec("M1", sim.PolicySMS09)
	spec.Tier = TierTwin
	res, err := x.Do(context.Background(), spec)
	if err != nil {
		t.Fatalf("twin Do: %v", err)
	}
	if res.Tier != TierTwin || res.Prediction == nil {
		t.Fatalf("twin result: tier=%q prediction=%v", res.Tier, res.Prediction)
	}
	if res.Prediction.FPS != 45 {
		t.Errorf("identity correction must answer the anchor: FPS %v", res.Prediction.FPS)
	}
	if res.Result != nil {
		t.Error("twin answers must not fabricate a sim.Result")
	}
	if x.Started() != 0 {
		t.Errorf("twin tier ran %d simulations, want 0", x.Started())
	}
	if x.TwinHits() != 1 || x.TwinEscalations() != 0 {
		t.Errorf("counters: hits=%d escalations=%d, want 1, 0", x.TwinHits(), x.TwinEscalations())
	}

	// Twin memoization is keyed apart from full-sim memoization.
	if _, _, ok := x.Lookup("twin/mix/M1/3"); !ok {
		t.Error("twin key must be memoized")
	}
	if _, _, ok := x.Lookup("mix/M1/3"); ok {
		t.Error("twin answer leaked into the full-sim memo map")
	}

	// The journal got a twin-kind record; replay seeds only twinRuns.
	jnl.Close()
	jnl2, recs, _, err := OpenJournal(path)
	if err != nil {
		t.Fatalf("reopen journal: %v", err)
	}
	defer jnl2.Close()
	if len(recs) != 1 || recs[0].Kind != KindTwin || recs[0].Key != "mix/M1/3" || recs[0].Twin == nil {
		t.Fatalf("journal records: %+v", recs)
	}
	y := NewRunner(cfg)
	adopted, ignored := y.ReplayJournal(recs)
	if adopted != 1 || ignored != 0 {
		t.Fatalf("replay adopted=%d ignored=%d", adopted, ignored)
	}
	got, gerr, ok := y.Lookup("twin/mix/M1/3")
	if !ok || gerr != nil || got.Prediction == nil || got.Tier != TierTwin {
		t.Errorf("replayed twin lookup: ok=%v err=%v res=%+v", ok, gerr, got)
	}
	if _, _, ok := y.Lookup("mix/M1/3"); ok {
		t.Error("replayed twin record leaked into the full-sim memo map")
	}
}

func TestTwinTierWithoutModel(t *testing.T) {
	cfg := sim.DefaultConfig(4096)
	x := NewRunner(cfg)
	x.Workers = 1

	spec := MixTaskSpec("M1", sim.PolicySMS09)
	spec.Tier = TierTwin
	if _, err := x.Do(context.Background(), spec); !errors.Is(err, ErrNoTwin) {
		t.Fatalf("twin without model: %v, want ErrNoTwin", err)
	}
	// The failure memoizes under the twin key; Forget clears it so a
	// retry (after loading a model) re-executes.
	if _, lerr, ok := x.Lookup("twin/mix/M1/3"); !ok || lerr == nil {
		t.Fatalf("failed twin flight not memoized: ok=%v err=%v", ok, lerr)
	}
	if !x.Forget("twin/mix/M1/3") {
		t.Fatal("Forget must drop the failed twin flight")
	}
	x.Twin = twinTestModel(t, cfg, map[sim.Policy]float64{sim.PolicySMS09: 0})
	res, err := x.Do(context.Background(), spec)
	if err != nil {
		t.Fatalf("retry after loading model: %v", err)
	}
	if res.Tier != TierTwin {
		t.Errorf("retry tier %q", res.Tier)
	}
}

func TestAutoTierConfidenceRouting(t *testing.T) {
	if testing.Short() {
		t.Skip("escalation runs a real simulation")
	}
	// Scale 2048, not 4096: the escalated run must complete at least
	// one frame for the frame-error probe to have a measured FPS.
	cfg := sim.DefaultConfig(2048)
	x := NewRunner(cfg)
	x.Workers = 1
	// SMS09 fits sharply (confidence 1); SMS0's residuals put it at
	// e^-8 ≈ 0.0003, far under the default threshold.
	x.Twin = twinTestModel(t, cfg, map[sim.Policy]float64{
		sim.PolicySMS09: 0,
		sim.PolicySMS0:  1.0,
	})

	confident := MixTaskSpec("M1", sim.PolicySMS09)
	confident.Tier = TierAuto
	res, err := x.Do(context.Background(), confident)
	if err != nil {
		t.Fatalf("auto confident: %v", err)
	}
	if res.Tier != TierTwin || x.Started() != 0 {
		t.Fatalf("confident auto answer: tier=%q started=%d, want twin, 0", res.Tier, x.Started())
	}

	shaky := MixTaskSpec("M1", sim.PolicySMS0)
	shaky.Tier = TierAuto
	res, err = x.Do(context.Background(), shaky)
	if err != nil {
		t.Fatalf("auto escalation: %v", err)
	}
	if res.Tier != TierFull || res.Result == nil {
		t.Fatalf("escalated answer: tier=%q result=%v", res.Tier, res.Result)
	}
	if res.Prediction == nil {
		t.Error("escalated answer must carry the overruled prediction")
	}
	if res.TwinFrameErrPct <= 0 {
		t.Errorf("escalation must measure the prediction error, got %v", res.TwinFrameErrPct)
	}
	if x.Started() != 1 {
		t.Errorf("escalation ran %d simulations, want 1", x.Started())
	}
	if x.TwinHits() != 1 || x.TwinEscalations() != 1 {
		t.Errorf("counters: hits=%d escalations=%d, want 1, 1", x.TwinHits(), x.TwinEscalations())
	}

	// The escalated truth landed in the full-sim memo: a full-tier
	// request for the same run is a hit, not a re-simulation.
	if _, _, ok := x.Lookup("mix/M1/4"); !ok {
		t.Error("escalated run must memoize under its full-sim key")
	}
	full := MixTaskSpec("M1", sim.PolicySMS0)
	if _, err := x.Do(context.Background(), full); err != nil {
		t.Fatalf("full-tier join after escalation: %v", err)
	}
	if x.Started() != 1 {
		t.Errorf("full-tier join re-ran the simulation (started=%d)", x.Started())
	}

	// Outside the hull (no fit for HeLM at all) auto also escalates.
	offHull := MixTaskSpec("M1", sim.PolicyHeLM)
	offHull.Tier = TierAuto
	res, err = x.Do(context.Background(), offHull)
	if err != nil {
		t.Fatalf("off-hull auto: %v", err)
	}
	if res.Tier != TierFull || res.Prediction != nil {
		t.Errorf("off-hull escalation: tier=%q prediction=%v (no prediction exists)", res.Tier, res.Prediction)
	}
	if x.TwinEscalations() != 2 {
		t.Errorf("escalations=%d, want 2", x.TwinEscalations())
	}
}

// TestForgetRetryJournalResume is the Forget × -resume interplay
// contract: a key that failed, was forgotten, and succeeded on retry
// journals its success; Journal.Compact keeps that success; and a
// fresh runner replaying the compacted journal serves it without
// resurrecting the failure.
func TestForgetRetryJournalResume(t *testing.T) {
	cfg := sim.DefaultConfig(4096)
	path := filepath.Join(t.TempDir(), "runs.jsonl")
	jnl, _, _, err := OpenJournal(path)
	if err != nil {
		t.Fatalf("OpenJournal: %v", err)
	}
	x := NewRunner(cfg)
	x.Workers = 1
	x.Journal = jnl

	spec := CPUTaskSpec(workloads.SpecIDs()[0])
	key := spec.Key()

	// A drain-style queued record precedes everything, as hetsimd
	// writes during shutdown.
	if err := jnl.Append(Record{Kind: KindQueued, Key: key, Spec: &spec}); err != nil {
		t.Fatalf("append queued: %v", err)
	}

	// First attempt fails: an already-expired per-task deadline stops
	// the run at its first interrupt poll. Interrupted runs memoize
	// their failure but are never journaled.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := x.Do(ctx, spec); err == nil {
		t.Fatal("cancelled run must fail")
	}
	if _, lerr, ok := x.Lookup(key); !ok || lerr == nil {
		t.Fatalf("failure must memoize: ok=%v err=%v", ok, lerr)
	}

	// Forget quarantined failure, retry clean: the success journals.
	if !x.Forget(key) {
		t.Fatal("Forget must drop the failed flight")
	}
	res, err := x.Do(context.Background(), spec)
	if err != nil {
		t.Fatalf("retry: %v", err)
	}
	if res.IPC <= 0 {
		t.Fatalf("retry produced no IPC: %+v", res)
	}

	// Compact must keep both the queued record and the superseding
	// success (different kinds never collapse into each other).
	kept, dropped, err := jnl.Compact()
	if err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if kept != 2 || dropped != 0 {
		t.Errorf("compact kept=%d dropped=%d, want 2, 0", kept, dropped)
	}
	jnl.Close()

	// Resume: the success replays; the failure stays gone.
	jnl2, recs, _, err := OpenJournal(path)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer jnl2.Close()
	y := NewRunner(cfg)
	y.ReplayJournal(recs)
	got, gerr, ok := y.Lookup(key)
	if !ok || gerr != nil {
		t.Fatalf("resumed lookup: ok=%v err=%v", ok, gerr)
	}
	if got.IPC != res.IPC {
		t.Errorf("resumed IPC %v != original %v", got.IPC, res.IPC)
	}
}
