// Package exp regenerates every table and figure of the paper's
// motivation (§II) and evaluation (§VI) sections. Each FigN/TableN
// function runs the necessary simulations (memoizing shared runs so
// e.g. Figs. 9–12 reuse the same baselines) and returns printable
// rows plus the headline aggregate the paper quotes.
//
// Absolute numbers come from a scaled synthetic model (see DESIGN.md)
// and are not expected to match the paper's testbed; the shapes — who
// wins, roughly by how much, where the 40 FPS threshold bites — are
// the reproduction targets recorded in EXPERIMENTS.md.
package exp

import (
	"fmt"
	"strings"
	"sync"

	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workloads"
)

// Row is one printable result line.
type Row struct {
	Label string
	Cells []Cell
}

// Cell is one named value in a row.
type Cell struct {
	Name  string
	Value float64
}

// Get returns the named cell value (0 when absent).
func (r Row) Get(name string) float64 {
	for _, c := range r.Cells {
		if c.Name == name {
			return c.Value
		}
	}
	return 0
}

// String renders the row as a fixed-width line.
func (r Row) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s", r.Label)
	for _, c := range r.Cells {
		fmt.Fprintf(&b, "  %s=%.3f", c.Name, c.Value)
	}
	return b.String()
}

// Report is the output of one experiment.
type Report struct {
	ID      string // "fig1", "table2", ...
	Title   string
	Rows    []Row
	Summary string // the headline aggregate, paper-style
}

// String renders the whole report.
func (rep Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", rep.ID, rep.Title)
	for _, r := range rep.Rows {
		b.WriteString(r.String())
		b.WriteByte('\n')
	}
	if rep.Summary != "" {
		fmt.Fprintf(&b, "-- %s\n", rep.Summary)
	}
	return b.String()
}

// Runner runs experiments with memoized simulation results so that
// figures sharing runs (9–12, 13–14) do not repeat them.
type Runner struct {
	Cfg sim.Config

	mu       sync.Mutex
	mixRuns  map[string]sim.Result // key: mixID/policy
	gpuAlone map[string]sim.Result // key: game (always baseline policy)
	cpuAlone map[string]float64    // key: specID/ncpus
}

// NewRunner builds a runner over the given base configuration.
func NewRunner(cfg sim.Config) *Runner {
	return &Runner{
		Cfg:      cfg,
		mixRuns:  make(map[string]sim.Result),
		gpuAlone: make(map[string]sim.Result),
		cpuAlone: make(map[string]float64),
	}
}

// mix runs (and caches) one mix under a policy, with NumCPUs taken
// from the mix size.
func (x *Runner) mix(m workloads.Mix, p sim.Policy) sim.Result {
	key := fmt.Sprintf("%s/%d", m.ID, p)
	x.mu.Lock()
	if r, ok := x.mixRuns[key]; ok {
		x.mu.Unlock()
		return r
	}
	x.mu.Unlock()
	cfg := x.Cfg
	cfg.Policy = p
	cfg.NumCPUs = len(m.SpecIDs)
	r := sim.RunMix(cfg, m)
	x.mu.Lock()
	x.mixRuns[key] = r
	x.mu.Unlock()
	return r
}

// gpuStandalone runs (and caches) a game alone.
func (x *Runner) gpuStandalone(game string) sim.Result {
	x.mu.Lock()
	if r, ok := x.gpuAlone[game]; ok {
		x.mu.Unlock()
		return r
	}
	x.mu.Unlock()
	r := sim.RunGPUAlone(x.Cfg, game)
	x.mu.Lock()
	x.gpuAlone[game] = r
	x.mu.Unlock()
	return r
}

// cpuStandalone runs (and caches) one SPEC app alone.
func (x *Runner) cpuStandalone(specID int) float64 {
	key := fmt.Sprintf("%d", specID)
	x.mu.Lock()
	if v, ok := x.cpuAlone[key]; ok {
		x.mu.Unlock()
		return v
	}
	x.mu.Unlock()
	v := sim.RunCPUAlone(x.Cfg, specID)
	x.mu.Lock()
	x.cpuAlone[key] = v
	x.mu.Unlock()
	return v
}

// weightedSpeedup computes the mix's weighted speedup normalized to
// the baseline run of the same mix.
func weightedSpeedup(r, base sim.Result) float64 {
	if len(r.IPC) != len(base.IPC) || len(r.IPC) == 0 {
		return 0
	}
	s := 0.0
	for i := range r.IPC {
		if base.IPC[i] > 0 {
			s += r.IPC[i] / base.IPC[i]
		}
	}
	return s / float64(len(r.IPC))
}

// bwGBps converts a run's GPU DRAM traffic into GB/s.
func bwGBps(r sim.Result, cpuFreqHz float64) (read, write float64) {
	read = stats.BandwidthGBps(r.GPUReadBytes, r.MeasuredCycles, cpuFreqHz)
	write = stats.BandwidthGBps(r.GPUWriteBytes, r.MeasuredCycles, cpuFreqHz)
	return
}
