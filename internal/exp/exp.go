// Package exp regenerates every table and figure of the paper's
// motivation (§II) and evaluation (§VI) sections. Each FigN/TableN
// function runs the necessary simulations (memoizing shared runs so
// e.g. Figs. 9–12 reuse the same baselines) and returns printable
// rows plus the headline aggregate the paper quotes.
//
// Absolute numbers come from a scaled synthetic model (see DESIGN.md)
// and are not expected to match the paper's testbed; the shapes — who
// wins, roughly by how much, where the 40 FPS threshold bites — are
// the reproduction targets recorded in EXPERIMENTS.md.
package exp

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/twin"
	"repro/internal/workloads"
)

// Row is one printable result line.
type Row struct {
	Label string
	Cells []Cell
}

// Cell is one named value in a row.
type Cell struct {
	Name  string
	Value float64
}

// Get returns the named cell value (0 when absent).
func (r Row) Get(name string) float64 {
	for _, c := range r.Cells {
		if c.Name == name {
			return c.Value
		}
	}
	return 0
}

// String renders the row as a fixed-width line.
func (r Row) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s", r.Label)
	for _, c := range r.Cells {
		fmt.Fprintf(&b, "  %s=%.3f", c.Name, c.Value)
	}
	return b.String()
}

// Report is the output of one experiment.
type Report struct {
	ID      string // "fig1", "table2", ...
	Title   string
	Rows    []Row
	Summary string // the headline aggregate, paper-style
}

// String renders the whole report.
func (rep Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", rep.ID, rep.Title)
	for _, r := range rep.Rows {
		b.WriteString(r.String())
		b.WriteByte('\n')
	}
	if rep.Summary != "" {
		fmt.Fprintf(&b, "-- %s\n", rep.Summary)
	}
	return b.String()
}

// Runner runs experiments on a bounded worker pool with memoized,
// singleflight-deduplicated simulation results: figures sharing runs
// (9–12, 13–14) reuse both completed and still-in-flight simulations.
// Each simulation is an independent System, so runs execute in
// parallel without locks in the simulation core, and because every
// run is deterministic for its (config, workload) key, parallel and
// serial execution produce byte-identical reports.
type Runner struct {
	Cfg sim.Config

	// Workers bounds how many simulations execute concurrently.
	// 0 means DefaultWorkers() (HETSIM_PARALLEL or GOMAXPROCS);
	// 1 gives strictly serial execution. Set it before the first
	// run is dispatched.
	Workers int

	// Observe, when non-nil, supplies a per-run recorder for each
	// simulation the runner launches, keyed "mix/<mixID>/<policy>",
	// "gpu/<game>", or "cpu/<specID>". Each leader gets its own
	// recorder (obs.Collection.Recorder fits directly), so runs stay
	// isolated and output stays deterministic under any Workers
	// setting. Returning nil disables observability for that run.
	Observe func(key string) *obs.Recorder

	// Ctx, when non-nil, cancels the sweep: queued runs fail fast at
	// dispatch and in-flight simulations bail at their next interrupt
	// poll, so Ctrl-C drains the pool instead of abandoning it.
	Ctx context.Context

	// RunTimeout, when positive, bounds each simulation's wall-clock
	// time; a run that exceeds it is reported as a RunError for its
	// key while siblings continue. Timed-out (and cancelled) runs are
	// wall-clock dependent, so they are never journaled.
	RunTimeout time.Duration

	// Journal, when non-nil, receives a Record for every successfully
	// completed leader run; see OpenJournal/ReplayJournal for the
	// resume side.
	Journal *Journal

	// Twin, when non-nil, is the calibrated analytic model serving
	// twin- and auto-tier tasks (DESIGN.md §14). A nil Twin fails
	// twin-tier tasks and escalates every auto-tier task.
	Twin *twin.Model

	// TwinThreshold is the auto-tier confidence floor: predictions
	// below it escalate to full simulation. 0 means
	// DefaultTwinThreshold; negative accepts every in-hull prediction.
	TwinThreshold float64

	mu          sync.Mutex
	sem         chan struct{} // worker-pool tokens, sized on first use
	started     int           // simulations executed (leaders only)
	wg          sync.WaitGroup
	errs        []*RunError
	mixRuns     map[string]*flight[sim.Result] // key: mixID/policy
	gpuAlone    map[string]*flight[sim.Result] // key: game (always baseline policy)
	cpuAlone    map[string]*flight[float64]    // key: specID
	scnRuns     map[string]*flight[sim.Result] // key: scenarioDigest/policy
	twinRuns    map[string]*flight[TaskResult] // key: base task key, twin/auto tiers
	taskCtxs    map[string]context.Context     // per-run contexts set by Do
	taskEngines map[string]string              // per-run engine overrides set by Do

	twinHits        uint64 // tasks the twin answered analytically
	twinEscalations uint64 // auto-tier tasks escalated to full simulation
}

// NewRunner builds a runner over the given base configuration.
func NewRunner(cfg sim.Config) *Runner {
	return &Runner{
		Cfg:      cfg,
		mixRuns:  make(map[string]*flight[sim.Result]),
		gpuAlone: make(map[string]*flight[sim.Result]),
		cpuAlone: make(map[string]*flight[float64]),
		scnRuns:  make(map[string]*flight[sim.Result]),
		twinRuns: make(map[string]*flight[TaskResult]),
	}
}

// arm threads the runner's cancellation, its wall-clock timeout, and
// the per-request context a Do caller registered under key (the full
// "kind/memo" form) into one run's config. The simulator polls the
// hook on a cycle stride, so the closure must stay cheap; it reads a
// deadline and two context errors, no channels.
//
// arm also budgets intra-run parallelism against the campaign pool:
// when the caller left IntraThreads at 0 (auto) and HETSIM_INTRA is
// unset, each run gets GOMAXPROCS divided by the pool width, floored
// at 1 — campaign workers times intra-run threads never
// oversubscribes the machine, and a width-GOMAXPROCS campaign keeps
// today's one-run-per-core layout. An explicit HETSIM_INTRA bypasses
// the split, and a per-task engine override registered by Do wins
// over everything.
func (x *Runner) arm(cfg sim.Config, key string) sim.Config {
	// An explicit HETSIM_INTRA wins over the auto split: leaving
	// IntraThreads at 0 lets the engine read the env itself.
	if cfg.IntraThreads == 0 && sim.IntraEnv() == 0 {
		if per := runtime.GOMAXPROCS(0) / x.poolWidth(); per > 1 {
			cfg.IntraThreads = per
		} else {
			cfg.IntraThreads = 1
		}
	}
	switch x.taskEngine(key) {
	case EngineSeq:
		cfg.NoParallel = true
	case EngineParallel:
		cfg.NoParallel = false
		if cfg.IntraThreads < 2 {
			cfg.IntraThreads = 2
		}
	}
	tctx := x.taskCtx(key)
	if x.Ctx == nil && x.RunTimeout <= 0 && tctx == nil {
		return cfg
	}
	ctx := x.Ctx
	deadline := x.mergeDeadline(tctx)
	cfg.Interrupt = func() bool {
		if ctx != nil && ctx.Err() != nil {
			return true
		}
		if tctx != nil && tctx.Err() != nil {
			return true
		}
		return !deadline.IsZero() && time.Now().After(deadline)
	}
	return cfg
}

// interruptCause names what ended an interrupted run.
func (x *Runner) interruptCause(key string) error {
	if x.Ctx != nil && x.Ctx.Err() != nil {
		return x.Ctx.Err()
	}
	if tctx := x.taskCtx(key); tctx != nil && tctx.Err() != nil {
		return tctx.Err()
	}
	return fmt.Errorf("run exceeded timeout %v", x.RunTimeout)
}

// mix runs (and caches) one mix under a policy, with NumCPUs taken
// from the mix size. Concurrent callers of the same key share one
// run; a failed run shares its error the same way.
func (x *Runner) mix(m workloads.Mix, p sim.Policy) (sim.Result, error) {
	key := fmt.Sprintf("%s/%d", m.ID, p)
	f, leader := forKey(x, x.mixRuns, key)
	if !leader {
		<-f.done
		return f.val, f.err
	}
	return lead(x, f, "mix", key, func() (sim.Result, error) {
		if err := m.Validate(); err != nil {
			return sim.Result{}, err
		}
		cfg := x.Cfg
		cfg.Policy = p
		cfg.NumCPUs = len(m.SpecIDs)
		if err := cfg.Validate(); err != nil {
			return sim.Result{}, err
		}
		r := sim.RunMixObs(x.arm(cfg, "mix/"+key), m, x.observe("mix/"+key))
		if r.Interrupted {
			return sim.Result{}, x.interruptCause("mix/" + key)
		}
		x.journalAppend(Record{Kind: "mix", Key: key, Result: &r})
		return r, nil
	})
}

// scenarioRun runs (and caches) one scenario spec under a policy,
// keyed by the spec's content digest — the scenario side of the
// idempotency contract. NumCPUs comes from the spec inside
// scenario.Build; everything else (scale, termination, faults)
// follows the runner's base configuration.
func (x *Runner) scenarioRun(sp *scenario.Spec, p sim.Policy) (sim.Result, error) {
	key := fmt.Sprintf("%s/%d", sp.Digest(), p)
	f, leader := forKey(x, x.scnRuns, key)
	if !leader {
		<-f.done
		return f.val, f.err
	}
	return lead(x, f, KindScenario, key, func() (sim.Result, error) {
		if err := sp.Validate(); err != nil {
			return sim.Result{}, err
		}
		cfg := x.Cfg
		cfg.Policy = p
		r, err := scenario.RunObs(x.arm(cfg, "scn/"+key), sp, x.observe("scn/"+key))
		if err != nil {
			return sim.Result{}, err
		}
		if r.Interrupted {
			return sim.Result{}, x.interruptCause("scn/" + key)
		}
		spec := ScenarioTaskSpec(sp, p)
		x.journalAppend(Record{Kind: KindScenario, Key: key, Result: &r, Spec: &spec})
		return r, nil
	})
}

// observe resolves the per-run recorder hook (nil when unset).
func (x *Runner) observe(key string) *obs.Recorder {
	if x.Observe == nil {
		return nil
	}
	return x.Observe(key)
}

// gpuStandalone runs (and caches) a game alone.
func (x *Runner) gpuStandalone(game string) (sim.Result, error) {
	f, leader := forKey(x, x.gpuAlone, game)
	if !leader {
		<-f.done
		return f.val, f.err
	}
	return lead(x, f, "gpu", game, func() (sim.Result, error) {
		if _, err := workloads.GameByName(game); err != nil {
			return sim.Result{}, err
		}
		if err := x.Cfg.Validate(); err != nil {
			return sim.Result{}, err
		}
		r := sim.RunGPUAloneObs(x.arm(x.Cfg, "gpu/"+game), game, x.observe("gpu/"+game))
		if r.Interrupted {
			return sim.Result{}, x.interruptCause("gpu/" + game)
		}
		x.journalAppend(Record{Kind: "gpu", Key: game, Result: &r})
		return r, nil
	})
}

// cpuStandalone runs (and caches) one SPEC app alone.
func (x *Runner) cpuStandalone(specID int) (float64, error) {
	key := fmt.Sprintf("%d", specID)
	f, leader := forKey(x, x.cpuAlone, key)
	if !leader {
		<-f.done
		return f.val, f.err
	}
	return lead(x, f, "cpu", key, func() (float64, error) {
		if _, err := workloads.Spec(specID); err != nil {
			return 0, err
		}
		if err := x.Cfg.Validate(); err != nil {
			return 0, err
		}
		r := sim.RunCPUAloneResult(x.arm(x.Cfg, "cpu/"+key), specID, x.observe("cpu/"+key))
		if r.Interrupted {
			return 0, x.interruptCause("cpu/" + key)
		}
		ipc := 0.0
		if len(r.IPC) > 0 {
			ipc = r.IPC[0]
		}
		x.journalAppend(Record{Kind: "cpu", Key: key, IPC: ipc})
		return ipc, nil
	})
}

// weightedSpeedup computes the mix's weighted speedup normalized to
// the baseline run of the same mix. A per-core IPC mismatch between
// the two runs used to produce a silent 0 — a bogus datapoint that
// would quietly drag every geometric mean to zero; it is now an
// error.
func weightedSpeedup(r, base sim.Result) (float64, error) {
	if len(r.IPC) != len(base.IPC) || len(r.IPC) == 0 {
		return 0, fmt.Errorf("exp: weighted speedup of %s: %d-core run vs %d-core baseline",
			r.MixID, len(r.IPC), len(base.IPC))
	}
	s := 0.0
	for i := range r.IPC {
		if base.IPC[i] > 0 {
			s += r.IPC[i] / base.IPC[i]
		}
	}
	return s / float64(len(r.IPC)), nil
}

// bwGBps converts a run's GPU DRAM traffic into GB/s.
func bwGBps(r sim.Result, cpuFreqHz float64) (read, write float64) {
	read = stats.BandwidthGBps(r.GPUReadBytes, r.MeasuredCycles, cpuFreqHz)
	write = stats.BandwidthGBps(r.GPUWriteBytes, r.MeasuredCycles, cpuFreqHz)
	return
}
