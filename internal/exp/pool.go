package exp

import (
	"os"
	"runtime"
	"strconv"
)

// DefaultWorkers returns the width of a Runner's worker pool when
// Runner.Workers is left at 0: the HETSIM_PARALLEL environment
// variable when it holds a positive integer, else
// runtime.GOMAXPROCS(0). Every simulation is an independent,
// self-contained System, so the pool scales across cores without any
// locking inside the simulation core.
func DefaultWorkers() int {
	if s := os.Getenv("HETSIM_PARALLEL"); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v >= 1 {
			return v
		}
	}
	return runtime.GOMAXPROCS(0)
}

// flight is one memoized simulation in singleflight style: the first
// requester (the leader) runs it and closes done; concurrent
// requesters for the same key wait on done and share the in-flight
// run instead of starting a duplicate.
type flight[T any] struct {
	done chan struct{}
	val  T
}

// forKey returns the flight registered under key in m, creating and
// registering a new one when absent. leader reports whether the
// caller must execute the run and close done. Callers must hold no
// locks; the Runner mutex is taken here only for the map access.
func forKey[T any](x *Runner, m map[string]*flight[T], key string) (f *flight[T], leader bool) {
	x.mu.Lock()
	defer x.mu.Unlock()
	if f, ok := m[key]; ok {
		return f, false
	}
	f = &flight[T]{done: make(chan struct{})}
	m[key] = f
	return f, true
}

// semaphore returns the pool's token channel, sizing it on first use
// from Workers (0 = DefaultWorkers()).
func (x *Runner) semaphore() chan struct{} {
	x.mu.Lock()
	defer x.mu.Unlock()
	if x.sem == nil {
		n := x.Workers
		if n <= 0 {
			n = DefaultWorkers()
		}
		if n < 1 {
			n = 1
		}
		x.sem = make(chan struct{}, n)
	}
	return x.sem
}

// lead executes fn as the leader of a flight: it occupies one worker
// slot for the duration of the simulation and counts the run. Waiting
// flights hold no slot, so a figure assembling rows can block on
// results without starving the pool.
func lead[T any](x *Runner, f *flight[T], fn func() T) T {
	sem := x.semaphore()
	sem <- struct{}{}
	defer func() { <-sem }()
	defer close(f.done)
	x.mu.Lock()
	x.started++
	x.mu.Unlock()
	f.val = fn()
	return f.val
}

// Started returns how many simulations this Runner has executed
// (deduplicated runs count once). It is the observable the plan
// consistency test uses: after Prefetch of an experiment, assembling
// it must start no further runs.
func (x *Runner) Started() int {
	x.mu.Lock()
	defer x.mu.Unlock()
	return x.started
}

// Wait blocks until every run dispatched by Prefetch has completed.
func (x *Runner) Wait() { x.wg.Wait() }
