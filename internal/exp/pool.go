package exp

import (
	"fmt"
	"os"
	"runtime"
	"runtime/debug"
	"strconv"
)

// DefaultWorkers returns the width of a Runner's worker pool when
// Runner.Workers is left at 0: the HETSIM_PARALLEL environment
// variable when it holds a positive integer, else
// runtime.GOMAXPROCS(0). Every simulation is an independent,
// self-contained System, so the pool scales across cores without any
// locking inside the simulation core.
func DefaultWorkers() int {
	if s := os.Getenv("HETSIM_PARALLEL"); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v >= 1 {
			return v
		}
	}
	return runtime.GOMAXPROCS(0)
}

// flight is one memoized simulation in singleflight style: the first
// requester (the leader) runs it and closes done; concurrent
// requesters for the same key wait on done and share the in-flight
// run instead of starting a duplicate. A failed run memoizes its
// error the same way — the key is quarantined, every requester gets
// the same *RunError, and no retry storms hit the pool.
type flight[T any] struct {
	done chan struct{}
	val  T
	err  error
}

// forKey returns the flight registered under key in m, creating and
// registering a new one when absent. leader reports whether the
// caller must execute the run and close done. Callers must hold no
// locks; the Runner mutex is taken here only for the map access.
func forKey[T any](x *Runner, m map[string]*flight[T], key string) (f *flight[T], leader bool) {
	x.mu.Lock()
	defer x.mu.Unlock()
	if f, ok := m[key]; ok {
		return f, false
	}
	f = &flight[T]{done: make(chan struct{})}
	m[key] = f
	return f, true
}

// semaphore returns the pool's token channel, sizing it on first use
// from Workers (0 = DefaultWorkers()).
func (x *Runner) semaphore() chan struct{} {
	x.mu.Lock()
	defer x.mu.Unlock()
	if x.sem == nil {
		n := x.Workers
		if n <= 0 {
			n = DefaultWorkers()
		}
		if n < 1 {
			n = 1
		}
		x.sem = make(chan struct{}, n)
	}
	return x.sem
}

// poolWidth returns the pool's concurrency without allocating the
// semaphore: Workers, else DefaultWorkers(), floored at 1. arm uses it
// to split GOMAXPROCS between campaign workers and intra-run threads.
func (x *Runner) poolWidth() int {
	x.mu.Lock()
	n := x.Workers
	x.mu.Unlock()
	if n <= 0 {
		n = DefaultWorkers()
	}
	if n < 1 {
		n = 1
	}
	return n
}

// lead executes fn as the leader of a flight: it occupies one worker
// slot for the duration of the simulation and counts the run. Waiting
// flights hold no slot, so a figure assembling rows can block on
// results without starving the pool.
//
// lead is also the runner's isolation boundary (phase/key identify
// the run in errors): a panic inside fn — a corrupt workload table, a
// bug in one policy's controller — is recovered into a *RunError with
// the goroutine stack attached, failing only this flight while
// sibling runs proceed. A runner whose Ctx is already cancelled
// refuses to start new work, which is how Ctrl-C drains the pool:
// in-flight simulations notice via their Interrupt hook, queued ones
// fail fast here without consuming a slot's worth of simulation.
func lead[T any](x *Runner, f *flight[T], phase, key string, fn func() (T, error)) (T, error) {
	defer close(f.done)
	if x.Ctx != nil && x.Ctx.Err() != nil {
		f.err = x.record(&RunError{Key: key, Phase: "dispatch", Err: x.Ctx.Err()})
		return f.val, f.err
	}
	sem := x.semaphore()
	sem <- struct{}{}
	defer func() { <-sem }()
	x.mu.Lock()
	x.started++
	x.mu.Unlock()
	func() {
		defer func() {
			if r := recover(); r != nil {
				f.err = x.record(&RunError{
					Key: key, Phase: phase,
					Err:   fmt.Errorf("panic: %v", r),
					Stack: string(debug.Stack()),
				})
			}
		}()
		var err error
		f.val, err = fn()
		if err != nil {
			f.err = x.record(&RunError{Key: key, Phase: phase, Err: err})
		}
	}()
	return f.val, f.err
}

// Started returns how many simulations this Runner has executed
// (deduplicated runs count once). It is the observable the plan
// consistency test uses: after Prefetch of an experiment, assembling
// it must start no further runs.
func (x *Runner) Started() int {
	x.mu.Lock()
	defer x.mu.Unlock()
	return x.started
}

// Wait blocks until every run dispatched by Prefetch has completed.
func (x *Runner) Wait() { x.wg.Wait() }
