package cache

import (
	"testing"

	"repro/internal/mem"
)

func drripCache(sets int) *Cache {
	// ways=4, line=64: SizeBytes = sets*4*64.
	return New(Config{Name: "d", SizeBytes: sets * 4 * 64, Ways: 4, Policy: DRRIP})
}

func TestClassifySets(t *testing.T) {
	if classifySet(0) != srripLeader || classifySet(32) != srripLeader {
		t.Fatalf("set 0/32 must be SRRIP leaders")
	}
	if classifySet(16) != brripLeader || classifySet(48) != brripLeader {
		t.Fatalf("set 16/48 must be BRRIP leaders")
	}
	if classifySet(1) != followerSet || classifySet(17) != followerSet {
		t.Fatalf("sets 1/17 must be followers")
	}
}

func TestDRRIPTrainsOnLeaderMisses(t *testing.T) {
	c := drripCache(64)
	start := c.PSEL()
	// Miss repeatedly in SRRIP leader set 0: PSEL climbs (evidence
	// for BRRIP).
	for i := uint64(0); i < 50; i++ {
		addr := (i*uint64(c.NumSets()) + 0) * mem.LineSize
		if !c.Access(addr, false) {
			c.Fill(addr, false, mem.SourceCPU0, mem.ClassCPUData)
		}
	}
	if c.PSEL() <= start {
		t.Fatalf("PSEL did not climb on SRRIP-leader misses: %d -> %d", start, c.PSEL())
	}
	// Misses in the BRRIP leader set 16 pull it back down.
	up := c.PSEL()
	for i := uint64(0); i < 100; i++ {
		addr := (i*uint64(c.NumSets()) + 16) * mem.LineSize
		if !c.Access(addr, false) {
			c.Fill(addr, false, mem.SourceCPU0, mem.ClassCPUData)
		}
	}
	if c.PSEL() >= up {
		t.Fatalf("PSEL did not fall on BRRIP-leader misses: %d -> %d", up, c.PSEL())
	}
}

func TestBRRIPInsertionMostlyDistant(t *testing.T) {
	c := drripCache(64)
	// Force follower sets to BRRIP.
	c.drrip.psel = pselMax
	// Fill a follower set (set 1) with 4 lines, then stream: with
	// distant insertion (RRPV=max), streaming lines evict each other
	// rather than established lines that have been touched.
	base := uint64(1) * mem.LineSize
	stride := uint64(c.NumSets()) * mem.LineSize
	for i := uint64(0); i < 4; i++ {
		a := base + i*stride
		c.Fill(a, false, mem.SourceCPU0, mem.ClassCPUData)
		c.Access(a, false) // promote to RRPV 0
	}
	survived := 0
	for i := uint64(10); i < 40; i++ {
		c.Fill(base+i*stride, false, mem.SourceGPU, mem.ClassTexture)
	}
	for i := uint64(0); i < 4; i++ {
		if c.Probe(base+i*stride) != nil {
			survived++
		}
	}
	// Under pure SRRIP insertion (RRPV=2) a 30-line stream through a
	// 4-way set would wipe the residents; BRRIP keeps most of them.
	if survived < 2 {
		t.Fatalf("BRRIP insertion not thrash-resistant: %d/4 survived", survived)
	}
}

func TestDRRIPHitPromotionStillWorks(t *testing.T) {
	c := drripCache(64)
	a := uint64(5*64) + uint64(c.NumSets())*64
	c.Fill(a, false, mem.SourceCPU0, mem.ClassCPUData)
	if !c.Access(a, false) {
		t.Fatalf("fill+access missed")
	}
}

func TestPSELBounds(t *testing.T) {
	c := drripCache(64)
	for i := 0; i < 3000; i++ {
		c.drripTrain(0) // SRRIP leader: increments
	}
	if c.PSEL() > pselMax {
		t.Fatalf("PSEL exceeded max: %d", c.PSEL())
	}
	for i := 0; i < 5000; i++ {
		c.drripTrain(16) // BRRIP leader: decrements
	}
	if c.PSEL() < 0 {
		t.Fatalf("PSEL went negative: %d", c.PSEL())
	}
}
