package cache

// MSHR models a bank of miss status holding registers: a bounded set
// of outstanding line addresses, each with the number of coalesced
// waiters. Components use it both to bound their memory-level
// parallelism and to merge secondary misses to an in-flight line.
//
// The bank is a dense slice rather than a map: capacities are small
// (16 per core, 64 at the GPU, 128 at the LLC) and every core access
// probes it, so a linear scan over a few cache lines beats map hashing
// on the simulator's hot path. Lookup order never matters — entries
// are only ever probed by line address — so Release swap-removes.
type MSHR struct {
	entries []mshrEntry
	cap     int

	// Stats.
	Allocations uint64
	Coalesced   uint64
	FullStalls  uint64
}

type mshrEntry struct {
	line    uint64
	waiters int
}

// NewMSHR builds an MSHR bank with the given capacity.
func NewMSHR(capacity int) *MSHR {
	if capacity <= 0 {
		capacity = 1
	}
	return &MSHR{entries: make([]mshrEntry, 0, capacity), cap: capacity}
}

// Cap returns the capacity.
func (m *MSHR) Cap() int { return m.cap }

// Len returns the number of distinct outstanding lines.
func (m *MSHR) Len() int { return len(m.entries) }

// Full reports whether no new line can be tracked.
func (m *MSHR) Full() bool { return len(m.entries) >= m.cap }

func (m *MSHR) find(lineAddr uint64) int {
	for i := range m.entries {
		if m.entries[i].line == lineAddr {
			return i
		}
	}
	return -1
}

// Pending reports whether lineAddr already has an outstanding miss.
func (m *MSHR) Pending(lineAddr uint64) bool {
	return m.find(lineAddr) >= 0
}

// Allocate registers a miss for lineAddr. It returns:
//
//	primary=true  — a new entry was created; the caller must send a
//	                request down the hierarchy;
//	primary=false, ok=true — coalesced onto an in-flight miss;
//	ok=false      — the MSHR bank is full and the access must retry.
func (m *MSHR) Allocate(lineAddr uint64) (primary, ok bool) {
	if i := m.find(lineAddr); i >= 0 {
		m.entries[i].waiters++
		m.Coalesced++
		return false, true
	}
	if m.Full() {
		m.FullStalls++
		return false, false
	}
	m.entries = append(m.entries, mshrEntry{line: lineAddr, waiters: 1})
	m.Allocations++
	return true, true
}

// Release retires the entry for lineAddr and returns how many waiters
// (primary + coalesced) it satisfied. Releasing an absent line
// returns 0; that happens only when a component resets mid-run.
func (m *MSHR) Release(lineAddr uint64) int {
	i := m.find(lineAddr)
	if i < 0 {
		return 0
	}
	n := m.entries[i].waiters
	last := len(m.entries) - 1
	m.entries[i] = m.entries[last]
	m.entries = m.entries[:last]
	return n
}

// Reset drops all entries (between runs).
func (m *MSHR) Reset() {
	m.entries = m.entries[:0]
}
