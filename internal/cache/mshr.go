package cache

// MSHR models a bank of miss status holding registers: a bounded map
// from outstanding line addresses to the number of coalesced waiters.
// Components use it both to bound their memory-level parallelism and
// to merge secondary misses to an in-flight line.
type MSHR struct {
	entries map[uint64]int
	cap     int

	// Stats.
	Allocations uint64
	Coalesced   uint64
	FullStalls  uint64
}

// NewMSHR builds an MSHR bank with the given capacity.
func NewMSHR(capacity int) *MSHR {
	if capacity <= 0 {
		capacity = 1
	}
	return &MSHR{entries: make(map[uint64]int, capacity), cap: capacity}
}

// Cap returns the capacity.
func (m *MSHR) Cap() int { return m.cap }

// Len returns the number of distinct outstanding lines.
func (m *MSHR) Len() int { return len(m.entries) }

// Full reports whether no new line can be tracked.
func (m *MSHR) Full() bool { return len(m.entries) >= m.cap }

// Pending reports whether lineAddr already has an outstanding miss.
func (m *MSHR) Pending(lineAddr uint64) bool {
	_, ok := m.entries[lineAddr]
	return ok
}

// Allocate registers a miss for lineAddr. It returns:
//
//	primary=true  — a new entry was created; the caller must send a
//	                request down the hierarchy;
//	primary=false, ok=true — coalesced onto an in-flight miss;
//	ok=false      — the MSHR bank is full and the access must retry.
func (m *MSHR) Allocate(lineAddr uint64) (primary, ok bool) {
	if n, exists := m.entries[lineAddr]; exists {
		m.entries[lineAddr] = n + 1
		m.Coalesced++
		return false, true
	}
	if m.Full() {
		m.FullStalls++
		return false, false
	}
	m.entries[lineAddr] = 1
	m.Allocations++
	return true, true
}

// Release retires the entry for lineAddr and returns how many waiters
// (primary + coalesced) it satisfied. Releasing an absent line
// returns 0; that happens only when a component resets mid-run.
func (m *MSHR) Release(lineAddr uint64) int {
	n := m.entries[lineAddr]
	delete(m.entries, lineAddr)
	return n
}

// Reset drops all entries (between runs).
func (m *MSHR) Reset() {
	for k := range m.entries {
		delete(m.entries, k)
	}
}
