// Package cache implements the generic set-associative cache model
// used for every tag array in the system: CPU L1/L2, the GPU texture,
// depth, color and vertex caches, and the shared LLC.
//
// The model is a functional tag array: it answers hit/miss, performs
// fills with victim selection under a pluggable replacement policy
// (LRU or two-bit SRRIP), and tracks dirtiness and per-line owner
// metadata. Latency and bandwidth are modeled by the components that
// own a Cache, not here.
package cache

import (
	"fmt"

	"repro/internal/mem"
)

// Line is one cache line's metadata.
type Line struct {
	Tag   uint64
	Valid bool
	Dirty bool

	// Owner tracks which source installed the line. The LLC uses it
	// to apply hybrid inclusion (inclusive for CPU lines,
	// non-inclusive for GPU lines) and to account occupancy.
	Owner mem.Source
	// Class of the data in the line, for stats and policy decisions.
	Class mem.Class

	// Replacement state: LRU stamp or SRRIP re-reference prediction
	// value, depending on the policy.
	stamp uint64
	rrpv  uint8
}

// Policy selects a replacement algorithm.
type Policy uint8

// Replacement policies.
const (
	// LRU is true least-recently-used replacement (Table I: private
	// CPU caches).
	LRU Policy = iota
	// SRRIP is two-bit static re-reference interval prediction
	// (Jaleel et al., ISCA 2010), the paper's LLC policy.
	SRRIP
	// DRRIP adds set dueling between SRRIP and bimodal insertion
	// (same paper); see drrip.go. Beyond-paper ablation only.
	DRRIP
)

const srripMax = 3 // two-bit RRPV: 0..3, insert at srripMax-1

// Config describes a cache geometry.
type Config struct {
	Name      string
	SizeBytes int
	Ways      int
	LineSize  int // defaults to mem.LineSize
	Policy    Policy
}

// Cache is a set-associative tag array.
type Cache struct {
	cfg      Config
	sets     [][]Line
	numSets  int
	ways     int
	lineSz   uint64
	setShift uint
	setMask  uint64
	policy   Policy
	drrip    drripState
	clock    uint64 // monotonic access counter for LRU stamps

	// Stats.
	Accesses  uint64
	Misses    uint64
	Evictions uint64
	WriteHits uint64
}

// New builds a cache from the config. It panics on a geometry that is
// not a power-of-two number of sets, which would always be a
// configuration bug.
func New(cfg Config) *Cache {
	if cfg.LineSize == 0 {
		cfg.LineSize = mem.LineSize
	}
	if cfg.Ways <= 0 || cfg.SizeBytes <= 0 {
		panic(fmt.Sprintf("cache %q: bad geometry %+v", cfg.Name, cfg))
	}
	lines := cfg.SizeBytes / cfg.LineSize
	numSets := lines / cfg.Ways
	if numSets == 0 {
		// Degenerate small scaled configs collapse to fully
		// associative with however many lines fit.
		numSets = 1
		cfg.Ways = lines
		if cfg.Ways == 0 {
			cfg.Ways = 1
		}
	}
	if numSets&(numSets-1) != 0 {
		// Round down to a power of two; scaled configs can produce
		// non-power-of-two set counts.
		p := 1
		for p*2 <= numSets {
			p *= 2
		}
		numSets = p
	}
	c := &Cache{
		cfg:     cfg,
		numSets: numSets,
		ways:    cfg.Ways,
		lineSz:  uint64(cfg.LineSize),
		policy:  cfg.Policy,
	}
	shift := uint(0)
	for sz := uint64(cfg.LineSize); sz > 1; sz >>= 1 {
		shift++
	}
	c.setShift = shift
	c.setMask = uint64(numSets - 1)
	c.sets = make([][]Line, numSets)
	backing := make([]Line, numSets*cfg.Ways)
	for i := range c.sets {
		c.sets[i] = backing[i*cfg.Ways : (i+1)*cfg.Ways]
	}
	return c
}

// Config returns the cache's configuration.
func (c *Cache) Config() Config { return c.cfg }

// NumSets returns the number of sets after geometry normalization.
func (c *Cache) NumSets() int { return c.numSets }

// Ways returns the associativity.
func (c *Cache) Ways() int { return c.ways }

func (c *Cache) index(addr uint64) (set uint64, tag uint64) {
	line := addr >> c.setShift
	return line & c.setMask, line >> 0 // tag = full line address; simple and unambiguous
}

// Probe reports whether addr is present, without touching replacement
// state. It returns the line for inspection (nil on miss).
func (c *Cache) Probe(addr uint64) *Line {
	set, tag := c.index(addr)
	s := c.sets[set]
	for i := range s {
		if s[i].Valid && s[i].Tag == tag {
			return &s[i]
		}
	}
	return nil
}

// Access performs a demand access. On a hit it updates replacement
// state (and dirtiness for writes) and returns true. On a miss it
// returns false and changes nothing; callers follow up with Fill when
// the data arrives.
func (c *Cache) Access(addr uint64, write bool) bool {
	c.Accesses++
	set, tag := c.index(addr)
	s := c.sets[set]
	for i := range s {
		if s[i].Valid && s[i].Tag == tag {
			c.touch(&s[i])
			if write {
				s[i].Dirty = true
				c.WriteHits++
			}
			return true
		}
	}
	c.Misses++
	if c.policy == DRRIP {
		c.drripTrain(set)
	}
	return false
}

// touch updates replacement state on a hit.
func (c *Cache) touch(l *Line) {
	c.clock++
	switch c.policy {
	case LRU:
		l.stamp = c.clock
	case SRRIP, DRRIP:
		l.rrpv = 0 // near-immediate re-reference on hit
	}
}

// Fill installs addr, evicting a victim if the set is full. It
// returns the evicted line (by value) and whether an eviction of a
// valid line happened. The returned line carries Dirty/Owner/Class so
// the caller can generate write-backs and back-invalidations.
func (c *Cache) Fill(addr uint64, write bool, owner mem.Source, class mem.Class) (victim Line, evicted bool) {
	set, tag := c.index(addr)
	s := c.sets[set]
	// Already present (races between outstanding fills): just update.
	for i := range s {
		if s[i].Valid && s[i].Tag == tag {
			c.touch(&s[i])
			if write {
				s[i].Dirty = true
			}
			return Line{}, false
		}
	}
	way := c.victim(s)
	if s[way].Valid {
		victim, evicted = s[way], true
		c.Evictions++
	}
	c.clock++
	s[way] = Line{
		Tag:   tag,
		Valid: true,
		Dirty: write,
		Owner: owner,
		Class: class,
		stamp: c.clock,
	}
	switch c.policy {
	case SRRIP:
		s[way].rrpv = srripMax - 1 // long re-reference interval insertion
	case DRRIP:
		s[way].rrpv = c.drripInsertRRPV(set)
	}
	return victim, evicted
}

// victim picks a way to replace in the set; it prefers invalid ways.
func (c *Cache) victim(s []Line) int {
	for i := range s {
		if !s[i].Valid {
			return i
		}
	}
	switch c.policy {
	case LRU:
		best, stamp := 0, s[0].stamp
		for i := 1; i < len(s); i++ {
			if s[i].stamp < stamp {
				best, stamp = i, s[i].stamp
			}
		}
		return best
	case SRRIP, DRRIP:
		for {
			for i := range s {
				if s[i].rrpv >= srripMax {
					return i
				}
			}
			for i := range s {
				if s[i].rrpv < srripMax {
					s[i].rrpv++
				}
			}
		}
	}
	return 0
}

// Invalidate removes addr if present and returns the removed line.
func (c *Cache) Invalidate(addr uint64) (Line, bool) {
	set, tag := c.index(addr)
	s := c.sets[set]
	for i := range s {
		if s[i].Valid && s[i].Tag == tag {
			l := s[i]
			s[i] = Line{}
			return l, true
		}
	}
	return Line{}, false
}

// InvalidateOwner removes every line installed by the given owner and
// returns how many lines were dropped. Used when resetting between
// runs and by tests.
func (c *Cache) InvalidateOwner(owner mem.Source) int {
	n := 0
	for _, s := range c.sets {
		for i := range s {
			if s[i].Valid && s[i].Owner == owner {
				s[i] = Line{}
				n++
			}
		}
	}
	return n
}

// OccupancyByOwner counts valid lines per owner source. The slice is
// indexed by mem.Source.
func (c *Cache) OccupancyByOwner() [mem.NumSources]int {
	var occ [mem.NumSources]int
	for _, s := range c.sets {
		for i := range s {
			if s[i].Valid && s[i].Owner < mem.NumSources {
				occ[s[i].Owner]++
			}
		}
	}
	return occ
}

// ValidLines counts all valid lines.
func (c *Cache) ValidLines() int {
	n := 0
	for _, s := range c.sets {
		for i := range s {
			if s[i].Valid {
				n++
			}
		}
	}
	return n
}

// MissRate returns Misses/Accesses, or 0 with no accesses.
func (c *Cache) MissRate() float64 {
	if c.Accesses == 0 {
		return 0
	}
	return float64(c.Misses) / float64(c.Accesses)
}

// ResetStats zeroes the counters without touching contents.
func (c *Cache) ResetStats() {
	c.Accesses, c.Misses, c.Evictions, c.WriteHits = 0, 0, 0, 0
}
