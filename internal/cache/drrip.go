package cache

// DRRIP support: dynamic re-reference interval prediction with set
// dueling (Jaleel et al., ISCA 2010 — the same paper the LLC's SRRIP
// baseline comes from). A few leader sets always insert with the
// static SRRIP policy (RRPV = max-1), another few with the bimodal
// BRRIP policy (RRPV = max, except every 32nd insertion), and a
// saturating policy-selector counter trained by leader-set misses
// decides which policy the follower sets use.
//
// The paper's LLC is plain SRRIP; DRRIP exists here for the
// beyond-paper LLC-policy ablation (thrash-resistant insertion
// changes how much LLC capacity the GPU's streaming fills can steal).

// duelPeriod spaces leader sets: set i is an SRRIP leader when
// i%duelPeriod == 0 and a BRRIP leader when i%duelPeriod ==
// duelPeriod/2.
const duelPeriod = 32

// pselMax bounds the 10-bit policy selector.
const pselMax = 1023

// brripLongEvery makes one in N BRRIP insertions use the long
// (SRRIP-style) re-reference prediction.
const brripLongEvery = 32

// drripState carries the set-dueling machinery of one DRRIP cache.
type drripState struct {
	psel     int // >= pselMax/2: BRRIP wins; below: SRRIP wins
	brripCnt uint64
}

// leaderKind classifies a set for dueling.
type leaderKind uint8

const (
	followerSet leaderKind = iota
	srripLeader
	brripLeader
)

func classifySet(set uint64) leaderKind {
	switch set % duelPeriod {
	case 0:
		return srripLeader
	case duelPeriod / 2:
		return brripLeader
	}
	return followerSet
}

// drripInsertRRPV returns the insertion RRPV for a fill into the
// given set under DRRIP.
func (c *Cache) drripInsertRRPV(set uint64) uint8 {
	kind := classifySet(set)
	useBRRIP := false
	switch kind {
	case srripLeader:
		useBRRIP = false
	case brripLeader:
		useBRRIP = true
	default:
		useBRRIP = c.drrip.psel >= pselMax/2
	}
	if !useBRRIP {
		return srripMax - 1
	}
	c.drrip.brripCnt++
	if c.drrip.brripCnt%brripLongEvery == 0 {
		return srripMax - 1
	}
	return srripMax
}

// drripTrain updates the policy selector on a miss in a leader set:
// a miss in an SRRIP leader is evidence for BRRIP and vice versa.
func (c *Cache) drripTrain(set uint64) {
	switch classifySet(set) {
	case srripLeader:
		if c.drrip.psel < pselMax {
			c.drrip.psel++
		}
	case brripLeader:
		if c.drrip.psel > 0 {
			c.drrip.psel--
		}
	}
}

// PSEL exposes the selector for tests and stats.
func (c *Cache) PSEL() int { return c.drrip.psel }
