package cache

import (
	"testing"
	"testing/quick"

	"repro/internal/mem"
)

func lineAddr(i uint64) uint64 { return i * mem.LineSize }

func TestMissThenFillHits(t *testing.T) {
	c := New(Config{Name: "t", SizeBytes: 4096, Ways: 4, Policy: LRU})
	a := lineAddr(7)
	if c.Access(a, false) {
		t.Fatalf("cold access hit")
	}
	c.Fill(a, false, mem.SourceCPU0, mem.ClassCPUData)
	if !c.Access(a, false) {
		t.Fatalf("access after fill missed")
	}
}

func TestSameSetDifferentTagsMiss(t *testing.T) {
	c := New(Config{Name: "t", SizeBytes: 4096, Ways: 4, Policy: LRU})
	sets := uint64(c.NumSets())
	a := lineAddr(3)
	b := lineAddr(3 + sets) // same set, different tag
	c.Fill(a, false, mem.SourceCPU0, mem.ClassCPUData)
	if c.Access(b, false) {
		t.Fatalf("different tag hit")
	}
}

func TestLRUEvictsLeastRecent(t *testing.T) {
	c := New(Config{Name: "t", SizeBytes: 2 * mem.LineSize, Ways: 2, Policy: LRU})
	if c.NumSets() != 1 {
		t.Fatalf("want 1 set, got %d", c.NumSets())
	}
	a, b, d := lineAddr(1), lineAddr(2), lineAddr(3)
	c.Fill(a, false, mem.SourceCPU0, mem.ClassCPUData)
	c.Fill(b, false, mem.SourceCPU0, mem.ClassCPUData)
	c.Access(a, false) // a is now MRU, b is LRU
	v, ev := c.Fill(d, false, mem.SourceCPU0, mem.ClassCPUData)
	if !ev {
		t.Fatalf("expected eviction")
	}
	if v.Tag != b>>mem.LineShift {
		t.Fatalf("evicted tag %#x, want %#x (b)", v.Tag, b>>mem.LineShift)
	}
	if !c.Access(a, false) {
		t.Fatalf("a should have survived")
	}
}

func TestSRRIPHitPromotion(t *testing.T) {
	c := New(Config{Name: "t", SizeBytes: 4 * mem.LineSize, Ways: 4, Policy: SRRIP})
	// Fill the set, touch one line, then stream three more fills: the
	// touched line must survive all three because its RRPV is 0 while
	// untouched lines sit at srripMax-1.
	for i := uint64(0); i < 4; i++ {
		c.Fill(lineAddr(i), false, mem.SourceCPU0, mem.ClassCPUData)
	}
	hot := lineAddr(2)
	c.Access(hot, false)
	for i := uint64(10); i < 13; i++ {
		c.Fill(lineAddr(i), false, mem.SourceCPU0, mem.ClassCPUData)
	}
	if !c.Access(hot, false) {
		t.Fatalf("hot line evicted before cold lines under SRRIP")
	}
}

func TestDirtyTracking(t *testing.T) {
	c := New(Config{Name: "t", SizeBytes: mem.LineSize, Ways: 1, Policy: LRU})
	a, b := lineAddr(1), lineAddr(2)
	c.Fill(a, true, mem.SourceCPU1, mem.ClassCPUData)
	v, ev := c.Fill(b, false, mem.SourceGPU, mem.ClassTexture)
	if !ev || !v.Dirty {
		t.Fatalf("expected dirty eviction, got ev=%v dirty=%v", ev, v.Dirty)
	}
	if v.Owner != mem.SourceCPU1 {
		t.Fatalf("owner = %v, want CPU1", v.Owner)
	}
}

func TestInvalidate(t *testing.T) {
	c := New(Config{Name: "t", SizeBytes: 4096, Ways: 4, Policy: SRRIP})
	a := lineAddr(9)
	c.Fill(a, false, mem.SourceGPU, mem.ClassColor)
	if _, ok := c.Invalidate(a); !ok {
		t.Fatalf("invalidate missed present line")
	}
	if c.Access(a, false) {
		t.Fatalf("hit after invalidate")
	}
	if _, ok := c.Invalidate(a); ok {
		t.Fatalf("invalidate hit absent line")
	}
}

func TestOccupancyByOwner(t *testing.T) {
	c := New(Config{Name: "t", SizeBytes: 1 << 14, Ways: 4, Policy: SRRIP})
	for i := uint64(0); i < 10; i++ {
		c.Fill(lineAddr(i), false, mem.SourceCPU0, mem.ClassCPUData)
	}
	for i := uint64(100); i < 105; i++ {
		c.Fill(lineAddr(i), false, mem.SourceGPU, mem.ClassTexture)
	}
	occ := c.OccupancyByOwner()
	if occ[mem.SourceCPU0] != 10 || occ[mem.SourceGPU] != 5 {
		t.Fatalf("occ = %v", occ)
	}
	if got := c.InvalidateOwner(mem.SourceGPU); got != 5 {
		t.Fatalf("InvalidateOwner removed %d, want 5", got)
	}
}

func TestGeometryNormalization(t *testing.T) {
	// A cache smaller than ways*lineSize collapses to one set.
	c := New(Config{Name: "t", SizeBytes: 2 * mem.LineSize, Ways: 8, Policy: LRU})
	if c.NumSets() != 1 || c.Ways() != 2 {
		t.Fatalf("got %d sets x %d ways", c.NumSets(), c.Ways())
	}
}

// Property: the number of valid lines never exceeds capacity, and an
// access immediately after its fill always hits, regardless of the
// interleaving of fills and accesses.
func TestQuickCapacityAndFillHit(t *testing.T) {
	f := func(ops []uint16, srrip bool) bool {
		pol := LRU
		if srrip {
			pol = SRRIP
		}
		c := New(Config{Name: "q", SizeBytes: 8 * 1024, Ways: 8, Policy: pol})
		capLines := c.NumSets() * c.Ways()
		for _, op := range ops {
			a := lineAddr(uint64(op % 1024))
			if !c.Access(a, op&1 == 1) {
				c.Fill(a, op&1 == 1, mem.SourceCPU0, mem.ClassCPUData)
				if c.Probe(a) == nil {
					return false // fill must install
				}
			}
			if c.ValidLines() > capLines {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: SRRIP victim selection terminates and evicts exactly one
// line per fill into a full set.
func TestQuickSRRIPOneEvictionPerFill(t *testing.T) {
	f := func(seq []uint8) bool {
		c := New(Config{Name: "q", SizeBytes: 4 * mem.LineSize, Ways: 4, Policy: SRRIP})
		fills := 0
		for _, s := range seq {
			a := lineAddr(uint64(s))
			if c.Probe(a) == nil {
				before := c.ValidLines()
				_, ev := c.Fill(a, false, mem.SourceGPU, mem.ClassTexture)
				after := c.ValidLines()
				fills++
				if before == 4 && (!ev || after != 4) {
					return false
				}
				if before < 4 && (ev || after != before+1) {
					return false
				}
			} else {
				c.Access(a, false)
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestMSHRCoalesceAndRelease(t *testing.T) {
	m := NewMSHR(2)
	p, ok := m.Allocate(0x100)
	if !p || !ok {
		t.Fatalf("first allocate: primary=%v ok=%v", p, ok)
	}
	p, ok = m.Allocate(0x100)
	if p || !ok {
		t.Fatalf("coalesce: primary=%v ok=%v", p, ok)
	}
	m.Allocate(0x200)
	if _, ok := m.Allocate(0x300); ok {
		t.Fatalf("allocate beyond capacity succeeded")
	}
	if n := m.Release(0x100); n != 2 {
		t.Fatalf("release waiters = %d, want 2", n)
	}
	if m.Pending(0x100) {
		t.Fatalf("still pending after release")
	}
	if _, ok := m.Allocate(0x300); !ok {
		t.Fatalf("allocate after release failed")
	}
}

// Property: Len never exceeds Cap and Release returns exactly the
// number of Allocate calls (primary + coalesced) for that line.
func TestQuickMSHRAccounting(t *testing.T) {
	f := func(lines []uint8) bool {
		m := NewMSHR(4)
		want := map[uint64]int{}
		for _, l := range lines {
			a := uint64(l % 8)
			if _, ok := m.Allocate(a); ok {
				want[a]++
			}
			if m.Len() > m.Cap() {
				return false
			}
		}
		for a, n := range want {
			if m.Release(a) != n {
				return false
			}
		}
		return m.Len() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
