package dram

import (
	"repro/internal/mem"
	"repro/internal/rng"
)

// Scheduler selects which queued request a channel issues next.
// Implementations keep per-channel state; New calls the factory once
// per channel.
type Scheduler interface {
	// OnEnqueue observes a request entering the channel's queue.
	OnEnqueue(req *request)
	// Pick returns the index into q of the request to issue now, or
	// -1 to idle this cycle. q is the active queue (reads, or writes
	// during drain) in arrival order.
	Pick(ch *channel, q []*request, now uint64) int
	// OnIssue observes the chosen request leaving the queue.
	OnIssue(req *request)
}

// starvationAge is the age (in DRAM cycles) past which a request is
// unconditionally prioritized, bounding worst-case wait under every
// policy that uses pickFRFCFS. Without it, the GPU's long sequential
// (row-hit) bursts would starve the CPUs' random traffic under
// first-ready scheduling far beyond what real controllers allow.
const starvationAge = 24

// pickFRFCFS implements first-ready, first-come-first-served
// selection over q, considering only requests accepted by filter
// (nil = all): row-buffer hits first, oldest within a class, with an
// anti-starvation override for very old requests.
func pickFRFCFS(ch *channel, q []*request, now uint64, filter func(*request) bool) int {
	// Bank-readiness bitmask, computed once: if no bank can take a
	// command this cycle nothing in q is issuable, and otherwise each
	// candidate costs a shift instead of a banks[] load.
	var ready uint64
	for b := range ch.banks {
		if ch.banks[b].readyAt <= now {
			ready |= 1 << uint(b)
		}
	}
	if ready == 0 {
		return -1
	}
	// q is in arrival order (seq strictly increasing, arrive
	// nondecreasing), which collapses the textbook three-running-minima
	// formulation into an early-exit scan:
	//   - aged requests form a prefix of q, so the first issuable aged
	//     request IS the oldest one — the anti-starvation pick, which
	//     wins outright;
	//   - once a non-aged request is seen no later one can be aged, so
	//     the first issuable row hit from then on is the first-ready
	//     pick (no later candidate has a smaller seq);
	//   - the first issuable request overall is the FCFS fallback.
	bestAny := -1
	for i, req := range q {
		if ready>>uint(req.bank)&1 == 0 {
			continue
		}
		if filter != nil && !filter(req) {
			continue
		}
		if now-req.arrive > starvationAge {
			return i
		}
		if ch.rowHit(req) {
			return i
		}
		if bestAny == -1 {
			bestAny = i
		}
	}
	return bestAny
}

// FRFCFS is the baseline first-ready FCFS scheduler.
type FRFCFS struct{}

// NewFRFCFS returns a per-channel FR-FCFS scheduler.
func NewFRFCFS() Scheduler { return &FRFCFS{} }

// OnEnqueue implements Scheduler.
func (*FRFCFS) OnEnqueue(*request) {}

// Pick implements Scheduler.
func (*FRFCFS) Pick(ch *channel, q []*request, now uint64) int {
	return pickFRFCFS(ch, q, now, nil)
}

// OnIssue implements Scheduler.
func (*FRFCFS) OnIssue(*request) {}

// BoostState is the dynamic priority signal a priority-aware
// scheduler consults every cycle.
type BoostState uint8

// Boost states.
const (
	// BoostNone: behave exactly like FR-FCFS.
	BoostNone BoostState = iota
	// BoostCPU: CPU requests outrank GPU requests (the proposal's
	// DRAM-side step while the GPU is being throttled).
	BoostCPU
	// BoostGPU: GPU requests outrank CPU requests (DynPrio's last-
	// decile express lane).
	BoostGPU
)

// PrioScheduler is FR-FCFS with a dynamic class priority supplied by
// a provider callback. Both the proposal's CPU-priority mode and
// DynPrio are instances with different providers.
type PrioScheduler struct {
	Provider func() BoostState
}

// NewPrio returns a priority scheduler with the given provider.
func NewPrio(provider func() BoostState) Scheduler {
	return &PrioScheduler{Provider: provider}
}

// OnEnqueue implements Scheduler.
func (*PrioScheduler) OnEnqueue(*request) {}

// Pick implements Scheduler.
func (p *PrioScheduler) Pick(ch *channel, q []*request, now uint64) int {
	state := BoostNone
	if p.Provider != nil {
		state = p.Provider()
	}
	switch state {
	case BoostCPU:
		// Milder than an absolute CPU lane: row hits (any source)
		// still go first to preserve bus efficiency, but among
		// row-conflict candidates CPU requests outrank GPU requests.
		if i := pickFRFCFS(ch, q, now, func(r *request) bool { return ch.rowHit(r) }); i != -1 {
			return i
		}
		if i := pickFRFCFS(ch, q, now, func(r *request) bool { return r.r.Src.IsCPU() }); i != -1 {
			return i
		}
	case BoostGPU:
		if i := pickFRFCFS(ch, q, now, func(r *request) bool { return !r.r.Src.IsCPU() }); i != -1 {
			return i
		}
	}
	return pickFRFCFS(ch, q, now, nil)
}

// OnIssue implements Scheduler.
func (*PrioScheduler) OnIssue(*request) {}

// batch is an SMS source batch: a run of same-source requests with
// contiguous row locality. Requests become schedulable only when
// their batch is closed — the batch-formation delay the paper blames
// for SMS's GPU frame-rate losses.
type batch struct {
	src      mem.Source
	remain   int
	closed   bool
	openedAt uint64
	lastBank int
	lastRow  uint64
}

// SMS is the staged memory scheduler (Ausavarungnirun et al., ISCA
// 2012) at the fidelity the paper evaluates: per-source batch
// formation bounded by row locality and a size cap, then a batch
// scheduler that picks the shortest ready batch with probability P
// (favoring latency-sensitive CPU jobs) and round-robin across
// sources otherwise.
type SMS struct {
	// P is the shortest-batch-first probability (0.9 and 0 in the
	// paper's two variants).
	P float64

	rnd      *rng.RNG
	forming  map[mem.Source]*batch
	ready    []*batch
	active   *batch
	rrNext   int
	batchCap int
	timeout  uint64
}

// NewSMS returns a per-channel SMS scheduler factory product with the
// given shortest-batch-first probability.
func NewSMS(p float64, seed uint64) Scheduler {
	return &SMS{
		P:        p,
		rnd:      rng.New(seed),
		forming:  make(map[mem.Source]*batch),
		batchCap: 16,
		timeout:  32, // DRAM cycles before a forming batch force-closes
	}
}

// OnEnqueue implements Scheduler: grow or open the source's forming
// batch. Write-backs are not batched; they drain FR-FCFS.
func (s *SMS) OnEnqueue(req *request) {
	if req.r.Write {
		return
	}
	b := s.forming[req.r.Src]
	if b != nil && (b.remain >= s.batchCap || b.lastBank != req.bank || b.lastRow != req.row) {
		s.close(req.r.Src)
		b = nil
	}
	if b == nil {
		b = &batch{src: req.r.Src, openedAt: req.arrive, lastBank: req.bank, lastRow: req.row}
		s.forming[req.r.Src] = b
	}
	b.remain++
	b.lastBank, b.lastRow = req.bank, req.row
	req.batch = b
}

func (s *SMS) close(src mem.Source) {
	b := s.forming[src]
	if b == nil {
		return
	}
	b.closed = true
	s.ready = append(s.ready, b)
	delete(s.forming, src)
}

// Pick implements Scheduler.
func (s *SMS) Pick(ch *channel, q []*request, now uint64) int {
	// Writes are drained FR-FCFS; only reads go through batching.
	// The channel passes whichever queue is active; write-backs were
	// never batched (req.batch == nil), so detect via the first
	// element.
	if len(q) > 0 && q[0].batch == nil {
		return pickFRFCFS(ch, q, now, nil)
	}
	// Force-close forming batches that have aged out. Sources are
	// scanned in fixed order: map-order iteration would make the ready
	// queue's batch order (and so the whole run) nondeterministic when
	// several batches age out in one call.
	for src := mem.Source(0); src <= mem.SourceGPU; src++ {
		if b := s.forming[src]; b != nil && now-b.openedAt > s.timeout {
			s.close(src)
		}
	}
	if s.active == nil || s.active.remain == 0 {
		s.active = s.nextBatch()
	}
	if s.active == nil {
		return -1
	}
	a := s.active
	if i := pickFRFCFS(ch, q, now, func(r *request) bool { return r.batch == a }); i != -1 {
		return i
	}
	// Work-conserving fallback: the active batch is bank-blocked this
	// cycle; serve any other closed batch rather than idling the
	// channel (real SMS batches are per-bank, so banks never idle on
	// another bank's batch).
	return pickFRFCFS(ch, q, now, func(r *request) bool { return r.batch != nil && r.batch.closed })
}

// nextBatch removes and returns the next ready batch per the batch
// scheduler policy.
func (s *SMS) nextBatch() *batch {
	// Compact exhausted batches.
	live := s.ready[:0]
	for _, b := range s.ready {
		if b.remain > 0 {
			live = append(live, b)
		}
	}
	s.ready = live
	if len(s.ready) == 0 {
		return nil
	}
	var idx int
	if s.rnd.Bool(s.P) {
		// Shortest batch first.
		idx = 0
		for i, b := range s.ready {
			if b.remain < s.ready[idx].remain {
				idx = i
			} else if b.remain == s.ready[idx].remain && b.openedAt < s.ready[idx].openedAt {
				idx = i
			}
		}
	} else {
		// Round-robin over sources: take the first ready batch whose
		// source is at or after the RR pointer.
		idx = 0
		best := int(mem.NumSources) + 1
		for i, b := range s.ready {
			d := (int(b.src) - s.rrNext + int(mem.NumSources)) % int(mem.NumSources)
			if d < best {
				best, idx = d, i
			}
		}
		s.rrNext = (int(s.ready[idx].src) + 1) % int(mem.NumSources)
	}
	b := s.ready[idx]
	s.ready = append(s.ready[:idx], s.ready[idx+1:]...)
	return b
}

// OnIssue implements Scheduler.
func (s *SMS) OnIssue(req *request) {
	if req.batch != nil {
		req.batch.remain--
	}
}
