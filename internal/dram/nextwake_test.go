package dram

import (
	"testing"

	"repro/internal/mem"
)

// TestNextWakeRefreshBound: an idle memory's only self-induced event
// is the periodic refresh; NextWake must report exactly its cycle,
// with no refresh firing earlier.
func TestNextWakeRefreshBound(t *testing.T) {
	cfg := testConfig() // ClockDivider 1: CPU and DRAM clocks coincide
	m := New(cfg, NewFRFCFS)
	w := m.NextWake(0)
	if w != cfg.TREFI {
		t.Fatalf("idle NextWake = %d, want first refresh at %d", w, cfg.TREFI)
	}
	for i := uint64(0); i < w-1; i++ {
		m.Tick()
		if m.Refreshes != 0 {
			t.Fatalf("refresh fired at tick %d, before reported wake %d", i+1, w)
		}
	}
	m.Tick()
	m.Tick()
	if m.Refreshes == 0 {
		t.Fatalf("no refresh at reported wake %d", w)
	}
}

func TestNextWakeQueuedIsBusy(t *testing.T) {
	m := New(testConfig(), NewFRFCFS)
	if !m.Enqueue(newReq(0, false, mem.SourceCPU0)) {
		t.Fatal("enqueue failed")
	}
	if got := m.NextWake(0); got != 1 {
		t.Fatalf("queued request NextWake = %d, want now+1 (busy)", got)
	}
}

// TestSkipMatchesIdleTicks exercises the divider-crossing arithmetic:
// Skip(n) over an idle stretch (below the first refresh, as the
// engine's wake bound guarantees) must leave the memory serving later
// traffic on exactly the same schedule as n naive Ticks.
func TestSkipMatchesIdleTicks(t *testing.T) {
	cfg := DefaultConfig() // keeps the real CPU:DRAM clock divider
	for _, n := range []uint64{1, cfg.ClockDivider - 1, cfg.ClockDivider, 777} {
		if n == 0 {
			continue
		}
		a, b := New(cfg, NewFRFCFS), New(cfg, NewFRFCFS)
		for i := uint64(0); i < n; i++ {
			a.Tick()
		}
		b.Skip(n)
		if a.DRAMCycles != b.DRAMCycles {
			t.Fatalf("skip %d: DRAMCycles %d naive vs %d skipped", n, a.DRAMCycles, b.DRAMCycles)
		}

		serve := func(m *Memory) int {
			var done bool
			m.OnComplete = func(*mem.Request) { done = true }
			if !m.Enqueue(newReq(0, false, mem.SourceCPU0)) {
				t.Fatal("enqueue failed")
			}
			return run(m, 10_000, func() bool { return done })
		}
		ta, tb := serve(a), serve(b)
		if ta >= 10_000 || ta != tb {
			t.Fatalf("skip %d: read completed after %d ticks naive vs %d skipped", n, ta, tb)
		}
	}
}
