package dram

import (
	"testing"

	"repro/internal/mem"
)

// TestProviderSwitchMidstream: a PrioScheduler must honor the
// provider's current state at every pick, not a cached one.
func TestProviderSwitchMidstream(t *testing.T) {
	cfg := testConfig()
	state := BoostNone
	m := New(cfg, func() Scheduler { return NewPrio(func() BoostState { return state }) })
	var order []mem.Source
	m.OnComplete = func(r *mem.Request) { order = append(order, r.Src) }

	// Two same-bank different-row requests: GPU first (older).
	m.Enqueue(&mem.Request{Addr: 0, Src: mem.SourceGPU})
	m.Enqueue(&mem.Request{Addr: cfg.RowBytes * uint64(cfg.Channels) * uint64(cfg.Banks),
		Src: mem.SourceCPU0})
	state = BoostCPU
	run(m, 2000, func() bool { return len(order) == 2 })
	if order[0] != mem.SourceCPU0 {
		t.Fatalf("provider state ignored: %v", order)
	}
}

// TestStarvationBound: under an endless stream of GPU row hits, a CPU
// row-conflict request must be served while the GPU stream is still
// flowing (the anti-starvation override makes it FCFS-bounded by the
// backlog present at its arrival), never deferred until the stream
// ends.
func TestStarvationBound(t *testing.T) {
	cfg := testConfig()
	m := New(cfg, NewFRFCFS)
	var cpuDone uint64
	gpuDone := 0
	m.OnComplete = func(r *mem.Request) {
		if r.Src == mem.SourceCPU0 {
			if cpuDone == 0 {
				cpuDone = m.dramCycle
			}
		} else {
			gpuDone++
		}
	}
	// Open a GPU row and enqueue a long row-hit run.
	const backlog = 40
	for i := uint64(0); i < backlog; i++ {
		m.Enqueue(&mem.Request{Addr: i * 2 * mem.LineSize, Src: mem.SourceGPU})
	}
	// CPU conflict request to the same bank, different row.
	conflict := cfg.RowBytes * uint64(cfg.Channels) * uint64(cfg.Banks)
	m.Enqueue(&mem.Request{Addr: conflict, Src: mem.SourceCPU0})
	arrival := m.dramCycle
	// Keep the GPU stream alive so row hits never run out.
	next := uint64(backlog)
	gpuServedWhenCPUDone := -1
	for i := 0; i < 60000 && cpuDone == 0; i++ {
		m.Tick()
		if i%8 == 0 {
			m.Enqueue(&mem.Request{Addr: next * 2 * mem.LineSize, Src: mem.SourceGPU})
			next++
		}
		if cpuDone != 0 {
			gpuServedWhenCPUDone = gpuDone
		}
	}
	if cpuDone == 0 {
		t.Fatalf("CPU request starved indefinitely")
	}
	// Bounded by draining the backlog that was ahead of it — not by
	// the (endless) stream: the GPU must still have unserved requests.
	if int(next)-gpuServedWhenCPUDone <= 0 {
		t.Fatalf("CPU served only after the GPU stream drained")
	}
	wait := cpuDone - arrival
	// Generous drain bound: backlog x worst-case single-bank service.
	if wait > backlog*50 {
		t.Fatalf("CPU waited %d DRAM cycles for a %d-deep backlog", wait, backlog)
	}
}

// TestSMSRoundRobinFairness: with P=0 (pure round-robin) and two
// sources offering equal load, service alternates between sources at
// batch granularity rather than letting one source monopolize.
func TestSMSRoundRobinFairness(t *testing.T) {
	cfg := testConfig()
	m := New(cfg, func() Scheduler { return NewSMS(0, 3) })
	var order []mem.Source
	m.OnComplete = func(r *mem.Request) { order = append(order, r.Src) }
	// Interleave enqueues: each request is its own batch (rows all
	// distinct).
	for i := uint64(0); i < 8; i++ {
		m.Enqueue(&mem.Request{Addr: i * 64 * 1531, Src: mem.SourceCPU0})
		m.Enqueue(&mem.Request{Addr: (1 << 30) + i*64*2017, Src: mem.SourceGPU})
	}
	run(m, 60000, func() bool { return len(order) == 16 })
	if len(order) != 16 {
		t.Fatalf("served %d of 16", len(order))
	}
	// No source may hold more than 12 of the first 14 slots.
	cpu := 0
	for _, s := range order[:14] {
		if s == mem.SourceCPU0 {
			cpu++
		}
	}
	if cpu < 2 || cpu > 12 {
		t.Fatalf("round-robin skew: %d/14 CPU first", cpu)
	}
}

// TestBandwidthAccountingPerSource checks the Fig. 11 counters.
func TestBandwidthAccountingPerSource(t *testing.T) {
	cfg := testConfig()
	m := New(cfg, NewFRFCFS)
	done := 0
	m.OnComplete = func(*mem.Request) { done++ }
	m.Enqueue(&mem.Request{Addr: 0, Src: mem.SourceGPU})
	m.Enqueue(&mem.Request{Addr: 64, Write: true, Src: mem.SourceGPU})
	m.Enqueue(&mem.Request{Addr: 128, Src: mem.SourceCPU3})
	run(m, 3000, func() bool { return done == 3 })
	gr, gw := m.GPUBytes()
	if gr != 64 || gw != 64 {
		t.Fatalf("GPU bytes: r=%d w=%d", gr, gw)
	}
	cr, cw := m.TotalBytes(mem.SourceCPU3)
	if cr != 64 || cw != 0 {
		t.Fatalf("CPU3 bytes: r=%d w=%d", cr, cw)
	}
	if m.BusUtilization() <= 0 {
		t.Fatalf("bus utilization not tracked")
	}
}
