// Package dram models the main memory of the heterogeneous CMP: two
// on-die single-channel DDR3-2133 memory controllers with open-page
// row-buffer management (Table I of the paper), plus the four DRAM
// access schedulers the paper evaluates:
//
//   - FR-FCFS (baseline),
//   - FR-FCFS with boosted CPU priority (the proposal's third step),
//   - SMS, the staged memory scheduler, with a configurable
//     shortest-batch-first probability (SMS-0.9 and SMS-0), and
//   - DynPrio, the deadline-aware dynamic priority scheduler.
//
// Timing is kept in DRAM command-clock cycles internally; the public
// interface is in CPU cycles, converted by the configured clock
// divider. The model is request-granular: issuing a request charges
// the bank the appropriate precharge/activate/CAS latencies for its
// row-buffer state and reserves the shared data bus for the burst.
// tRAS/tWR and command-bus contention are folded into the bank busy
// window (documented simplification; the resulting service times and
// row-hit/row-miss ratios are what the schedulers react to).
package dram

import (
	"repro/internal/mem"
	"repro/internal/obs"
)

// Config describes the memory subsystem.
type Config struct {
	Channels     int    // number of single-channel controllers (2)
	Banks        int    // banks per rank (8), one rank per channel
	RowBytes     uint64 // row-buffer size per bank (1 KB/device x8 devices = 8 KB)
	TRCD         uint64 // activate-to-CAS, DRAM cycles (14)
	TRP          uint64 // precharge, DRAM cycles (14)
	TCL          uint64 // CAS latency, DRAM cycles (14)
	TCWL         uint64 // CAS write latency, DRAM cycles (10)
	BurstCycles  uint64 // BL8 on a DDR bus = 4 command-clock cycles
	ClockDivider uint64 // CPU cycles per DRAM command-clock cycle (~4 for 4 GHz / 1066 MHz)
	QueueCap     int    // per-channel read and write queue capacity
	WriteHi      int    // write drain starts at this write-queue depth
	WriteLo      int    // ... and stops at this depth

	// Refresh: every TREFI DRAM cycles the channel performs an
	// all-bank refresh that occupies every bank for TRFC cycles and
	// closes open rows. TREFI == 0 disables refresh.
	TREFI uint64
	TRFC  uint64
}

// DefaultConfig returns the paper's Table I memory system.
func DefaultConfig() Config {
	return Config{
		Channels:     2,
		Banks:        8,
		RowBytes:     8 * 1024,
		TRCD:         14,
		TRP:          14,
		TCL:          14,
		TCWL:         10,
		BurstCycles:  4,
		ClockDivider: 4,
		// The scheduler window: generous so that every outstanding
		// request is visible to FR-FCFS/SMS/priority reordering
		// rather than FIFO-parked upstream (per-bank queues of real
		// controllers add up to a few hundred entries). Write drains
		// are short bursts so reads never see long blackouts.
		QueueCap: 256,
		WriteHi:  48,
		WriteLo:  24,
		// DDR3 refresh: tREFI 7.8us and tRFC ~160ns at 1066 MHz.
		TREFI: 8320,
		TRFC:  171,
	}
}

// request wraps a mem.Request with decoded DRAM coordinates.
type request struct {
	r      *mem.Request
	bank   int
	row    uint64
	arrive uint64 // DRAM cycle of enqueue
	seq    uint64 // global arrival order, for oldest-first ties

	// SMS bookkeeping: the batch this request belongs to (nil when a
	// non-SMS scheduler is active).
	batch *batch
}

// bank tracks one DRAM bank's row-buffer state.
type bank struct {
	open    bool
	row     uint64
	readyAt uint64 // earliest DRAM cycle the next column command may issue
}

// Memory is the full memory subsystem: all channels plus shared
// address decoding.
type Memory struct {
	cfg       Config
	channels  []*channel
	dramCycle uint64
	cpuCycle  uint64
	seq       uint64
	free      []*request // recycled wrappers: dead after OnIssue

	// OnComplete is invoked (in CPU-cycle order) when a request's
	// data transfer finishes. The LLC uses it to fill and forward
	// responses. Writes also complete, for bandwidth accounting.
	OnComplete func(*mem.Request)

	// Stats, indexed by source.
	ReadBytes  [mem.NumSources]uint64
	WriteBytes [mem.NumSources]uint64
	RowHits    uint64
	RowMisses  uint64
	Refreshes  uint64
	// BusBusy accumulates data-bus burst cycles across channels; with
	// DRAMCycles it yields bus utilization.
	BusBusy    uint64
	DRAMCycles uint64
	// QueueWait accumulates enqueue-to-issue DRAM-cycle waits.
	QueueWait   uint64
	IssuedCount uint64
}

// channel is one single-channel controller.
type channel struct {
	mem    *Memory
	cfg    Config
	banks  []bank
	readQ  []*request
	writeQ []*request
	// busFreeAt is the DRAM cycle the shared data bus becomes free.
	busFreeAt uint64
	// draining indicates write-drain mode.
	draining bool
	// nextRefresh is the DRAM cycle of the next all-bank refresh.
	nextRefresh uint64
	sched       Scheduler

	// pending completions ordered by finish cycle (small slice scan).
	completions []completion
}

type completion struct {
	r  *mem.Request
	at uint64 // DRAM cycle
}

// New builds the memory subsystem with the given scheduler factory;
// the factory is called once per channel so schedulers can keep
// per-channel state.
func New(cfg Config, newSched func() Scheduler) *Memory {
	m := &Memory{cfg: cfg}
	for i := 0; i < cfg.Channels; i++ {
		ch := &channel{
			mem:         m,
			cfg:         cfg,
			banks:       make([]bank, cfg.Banks),
			nextRefresh: cfg.TREFI,
			sched:       newSched(),
		}
		m.channels = append(m.channels, ch)
	}
	return m
}

// Decode maps a line address to (channel, bank, row). Consecutive
// lines interleave across channels; within a channel, consecutive
// rows interleave across banks so that streams engage all banks.
func (m *Memory) Decode(lineAddr uint64) (chIdx, bankIdx int, row uint64) {
	line := lineAddr >> mem.LineShift
	chIdx = int(line % uint64(m.cfg.Channels))
	inCh := line / uint64(m.cfg.Channels)
	rowLines := m.cfg.RowBytes / mem.LineSize
	rowGlobal := inCh / rowLines
	bankIdx = int(rowGlobal % uint64(m.cfg.Banks))
	row = rowGlobal / uint64(m.cfg.Banks)
	return
}

// CanAccept reports whether the channel owning addr has queue space
// for the request.
func (m *Memory) CanAccept(r *mem.Request) bool {
	chIdx, _, _ := m.Decode(r.LineAddr())
	ch := m.channels[chIdx]
	if r.Write {
		return len(ch.writeQ) < m.cfg.QueueCap
	}
	return len(ch.readQ) < m.cfg.QueueCap
}

// Enqueue admits a request. It returns false if the target queue is
// full; the caller must retry later.
func (m *Memory) Enqueue(r *mem.Request) bool {
	chIdx, bankIdx, row := m.Decode(r.LineAddr())
	ch := m.channels[chIdx]
	q := &ch.readQ
	if r.Write {
		q = &ch.writeQ
	}
	if len(*q) >= m.cfg.QueueCap {
		return false
	}
	m.seq++
	req := m.getReq()
	req.r, req.bank, req.row = r, bankIdx, row
	req.arrive, req.seq = m.dramCycle, m.seq
	*q = append(*q, req)
	ch.sched.OnEnqueue(req)
	return true
}

// getReq returns a zeroed request wrapper from the free list. Wrappers
// die at OnIssue (no scheduler keeps per-request references past it),
// so recycling them removes one allocation per memory transaction.
func (m *Memory) getReq() *request {
	if n := len(m.free); n > 0 {
		req := m.free[n-1]
		m.free[n-1] = nil
		m.free = m.free[:n-1]
		*req = request{}
		return req
	}
	return &request{}
}

// QueueDepth returns total queued requests (reads+writes), for tests.
func (m *Memory) QueueDepth() int {
	n := 0
	for _, ch := range m.channels {
		n += len(ch.readQ) + len(ch.writeQ)
	}
	return n
}

// Tick advances the memory system by one CPU cycle. DRAM command
// clocks fire every ClockDivider CPU cycles.
func (m *Memory) Tick() {
	m.cpuCycle++
	if m.cpuCycle%m.cfg.ClockDivider != 0 {
		return
	}
	m.dramCycle++
	m.DRAMCycles++
	for _, ch := range m.channels {
		ch.tick(m.dramCycle)
	}
}

// NextWake implements the engine's next-wake contract (DESIGN.md §9):
// the earliest future system cycle at which the memory system can
// change state, expressed relative to now (the caller's CPU cycle).
// now+1 means busy. Internal events live on the DRAM command clock;
// an event at DRAM cycle E fires at the Tick that raises cpuCycle to
// E*ClockDivider, which is E*ClockDivider-cpuCycle Ticks away. The
// arithmetic is kept on m.cpuCycle rather than now because the two
// drift apart under injected HoldDRAM faults (held Ticks never reach
// the controller); the engine only skips ranges it has proven
// fault-free, so inside a skip one system cycle is one Tick.
func (m *Memory) NextWake(now uint64) uint64 {
	div := m.cfg.ClockDivider
	next := ^uint64(0)
	for _, ch := range m.channels {
		if len(ch.readQ) > 0 || len(ch.writeQ) > 0 {
			// Queued work issues at the next command tick.
			return now + ((m.cpuCycle/div+1)*div - m.cpuCycle)
		}
		for i := range ch.completions {
			if ch.completions[i].at < next {
				next = ch.completions[i].at
			}
		}
		if m.cfg.TREFI > 0 && ch.nextRefresh < next {
			next = ch.nextRefresh
		}
	}
	if next == ^uint64(0) {
		return next
	}
	if next*div <= m.cpuCycle {
		return now + 1
	}
	return now + (next*div - m.cpuCycle)
}

// Skip advances an idle memory system n Ticks at once. Each elided
// Tick crossed at most the command-clock divider: the DRAM cycle and
// cycle counters advance by the number of command ticks in the range,
// and each of those ticks would have dropped write-drain mode (the
// hysteresis check runs before the empty-queue early return), so the
// flag is cleared exactly as naive ticking would have.
func (m *Memory) Skip(n uint64) {
	div := m.cfg.ClockDivider
	crossed := (m.cpuCycle+n)/div - m.cpuCycle/div
	m.cpuCycle += n
	if crossed == 0 {
		return
	}
	m.dramCycle += crossed
	m.DRAMCycles += crossed
	for _, ch := range m.channels {
		if len(ch.writeQ) == 0 {
			ch.draining = false
		}
	}
}

func (ch *channel) tick(now uint64) {
	// All-bank refresh: occupy every bank for tRFC and close rows.
	if ch.cfg.TREFI > 0 && now >= ch.nextRefresh {
		ch.refresh(now)
	}

	// Retire completions due now.
	for i := 0; i < len(ch.completions); {
		c := ch.completions[i]
		if c.at <= now {
			ch.finish(c.r)
			ch.completions[i] = ch.completions[len(ch.completions)-1]
			ch.completions = ch.completions[:len(ch.completions)-1]
		} else {
			i++
		}
	}

	// Write-drain hysteresis.
	if len(ch.writeQ) >= ch.cfg.WriteHi {
		ch.draining = true
	}
	if len(ch.writeQ) <= ch.cfg.WriteLo {
		ch.draining = false
	}

	var q []*request
	writes := false
	switch {
	case ch.draining && len(ch.writeQ) > 0:
		q, writes = ch.writeQ, true
	case len(ch.readQ) > 0:
		q = ch.readQ
	case len(ch.writeQ) > 0:
		q, writes = ch.writeQ, true
	default:
		return
	}

	idx := ch.sched.Pick(ch, q, now)
	if (idx < 0 || idx >= len(q) || !ch.issuable(q[idx], now)) && !writes && len(ch.writeQ) > 0 {
		// No read can issue this cycle (bank conflicts); slip a write
		// in opportunistically instead of idling the command slot.
		q, writes = ch.writeQ, true
		idx = ch.sched.Pick(ch, q, now)
	}
	if idx < 0 || idx >= len(q) {
		return
	}
	req := q[idx]
	if !ch.issuable(req, now) {
		return
	}
	ch.issue(req, now, writes)
	// Remove from queue preserving order (queues are small).
	if writes {
		ch.writeQ = append(ch.writeQ[:idx], ch.writeQ[idx+1:]...)
	} else {
		ch.readQ = append(ch.readQ[:idx], ch.readQ[idx+1:]...)
	}
	ch.sched.OnIssue(req)
	ch.mem.free = append(ch.mem.free, req)
}

// refresh performs one all-bank refresh.
func (ch *channel) refresh(now uint64) {
	until := now + ch.cfg.TRFC
	for i := range ch.banks {
		b := &ch.banks[i]
		b.open = false
		if b.readyAt < until {
			b.readyAt = until
		}
	}
	ch.nextRefresh = now + ch.cfg.TREFI
	ch.mem.Refreshes++
}

// issuable reports whether the request's bank can take a command now.
func (ch *channel) issuable(req *request, now uint64) bool {
	return ch.banks[req.bank].readyAt <= now
}

// rowHit reports whether the request would hit the open row.
func (ch *channel) rowHit(req *request) bool {
	b := &ch.banks[req.bank]
	return b.open && b.row == req.row
}

// issue charges timing for the request and schedules its completion.
func (ch *channel) issue(req *request, now uint64, write bool) {
	b := &ch.banks[req.bank]
	var cas uint64 = ch.cfg.TCL
	if write {
		cas = ch.cfg.TCWL
	}
	var dataStart uint64
	switch {
	case b.open && b.row == req.row:
		dataStart = now + cas
		ch.mem.RowHits++
	case b.open:
		dataStart = now + ch.cfg.TRP + ch.cfg.TRCD + cas
		ch.mem.RowMisses++
	default:
		dataStart = now + ch.cfg.TRCD + cas
		ch.mem.RowMisses++
	}
	if dataStart < ch.busFreeAt {
		dataStart = ch.busFreeAt
	}
	done := dataStart + ch.cfg.BurstCycles
	ch.busFreeAt = done
	b.open, b.row = true, req.row
	b.readyAt = done
	ch.completions = append(ch.completions, completion{r: req.r, at: done})
	ch.mem.BusBusy += ch.cfg.BurstCycles
	ch.mem.QueueWait += now - req.arrive
	ch.mem.IssuedCount++
}

// finish accounts and reports a completed request.
func (ch *channel) finish(r *mem.Request) {
	m := ch.mem
	if r.Src < mem.NumSources {
		if r.Write {
			m.WriteBytes[r.Src] += mem.LineSize
		} else {
			m.ReadBytes[r.Src] += mem.LineSize
		}
	}
	r.ServedBy = mem.ServedDRAM
	r.Complete(m.cpuCycle)
	if m.OnComplete != nil {
		m.OnComplete(r)
	}
}

// RegisterObs registers the memory system's row-hit rate, traffic,
// queue occupancy, and bus utilization with the observability
// registry.
func (m *Memory) RegisterObs(reg *obs.Registry) {
	reg.Ratio("dram.rowhit_rate",
		func() uint64 { return m.RowHits },
		func() uint64 { return m.RowHits + m.RowMisses })
	reg.Counter("dram.cpu_bytes", func() uint64 {
		var n uint64
		for s := mem.Source(0); s < mem.SourceGPU; s++ {
			n += m.ReadBytes[s] + m.WriteBytes[s]
		}
		return n
	})
	reg.Counter("dram.gpu_bytes", func() uint64 {
		return m.ReadBytes[mem.SourceGPU] + m.WriteBytes[mem.SourceGPU]
	})
	reg.Ratio("dram.bus_util",
		func() uint64 { return m.BusBusy },
		func() uint64 { return m.DRAMCycles * uint64(m.cfg.Channels) })
	reg.Gauge("dram.qdepth", func() float64 { return float64(m.QueueDepth()) })
	reg.Counter("dram.refreshes", func() uint64 { return m.Refreshes })
}

// TotalBytes returns cumulative (read, write) DRAM traffic for src.
func (m *Memory) TotalBytes(src mem.Source) (read, write uint64) {
	return m.ReadBytes[src], m.WriteBytes[src]
}

// GPUBytes returns cumulative (read, write) traffic for the GPU.
func (m *Memory) GPUBytes() (read, write uint64) {
	return m.TotalBytes(mem.SourceGPU)
}

// RowHitRate returns the fraction of issued requests that hit an open
// row.
func (m *Memory) RowHitRate() float64 {
	t := m.RowHits + m.RowMisses
	if t == 0 {
		return 0
	}
	return float64(m.RowHits) / float64(t)
}

// BusUtilization returns the fraction of data-bus cycles carrying
// bursts, across channels.
func (m *Memory) BusUtilization() float64 {
	if m.DRAMCycles == 0 {
		return 0
	}
	return float64(m.BusBusy) / float64(m.DRAMCycles*uint64(m.cfg.Channels))
}

// AvgQueueWait returns mean DRAM-cycle wait from enqueue to issue.
func (m *Memory) AvgQueueWait() float64 {
	if m.IssuedCount == 0 {
		return 0
	}
	return float64(m.QueueWait) / float64(m.IssuedCount)
}

// ResetStats zeroes traffic counters (after warm-up).
func (m *Memory) ResetStats() {
	m.ReadBytes = [mem.NumSources]uint64{}
	m.WriteBytes = [mem.NumSources]uint64{}
	m.RowHits, m.RowMisses = 0, 0
	m.BusBusy, m.DRAMCycles = 0, 0
	m.QueueWait, m.IssuedCount = 0, 0
}
