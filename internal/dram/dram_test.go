package dram

import (
	"testing"
	"testing/quick"

	"repro/internal/mem"
)

func testConfig() Config {
	c := DefaultConfig()
	c.ClockDivider = 1 // run at DRAM clock in unit tests for easy math
	return c
}

func newReq(addr uint64, write bool, src mem.Source) *mem.Request {
	return &mem.Request{Addr: addr, Write: write, Src: src, Class: mem.ClassCPUData}
}

// run advances m until pred or the cycle budget is exhausted,
// returning the number of Ticks executed.
func run(m *Memory, budget int, pred func() bool) int {
	for i := 0; i < budget; i++ {
		m.Tick()
		if pred() {
			return i + 1
		}
	}
	return budget
}

func TestDecodeChannelsInterleaveByLine(t *testing.T) {
	m := New(testConfig(), NewFRFCFS)
	c0, _, _ := m.Decode(0)
	c1, _, _ := m.Decode(mem.LineSize)
	if c0 == c1 {
		t.Fatalf("adjacent lines map to same channel %d", c0)
	}
}

func TestDecodeRowLocality(t *testing.T) {
	m := New(testConfig(), NewFRFCFS)
	// Lines within one row (same channel stride) share (bank,row).
	_, b0, r0 := m.Decode(0)
	_, b1, r1 := m.Decode(2 * mem.LineSize) // same channel as 0
	if b0 != b1 || r0 != r1 {
		t.Fatalf("nearby lines split rows: (%d,%d) vs (%d,%d)", b0, r0, b1, r1)
	}
}

func TestReadCompletesWithClosedRowLatency(t *testing.T) {
	cfg := testConfig()
	m := New(cfg, NewFRFCFS)
	var done *mem.Request
	m.OnComplete = func(r *mem.Request) { done = r }
	r := newReq(0, false, mem.SourceCPU0)
	if !m.Enqueue(r) {
		t.Fatalf("enqueue failed")
	}
	// Issue happens on the first tick; data at tRCD+tCL+burst after.
	want := int(cfg.TRCD + cfg.TCL + cfg.BurstCycles)
	got := run(m, 1000, func() bool { return done != nil })
	if got != want+1 { // +1: issue tick itself
		t.Fatalf("closed-row read took %d cycles, want %d", got, want+1)
	}
	if !r.Done || r.ServedBy != mem.ServedDRAM {
		t.Fatalf("request not completed properly: %+v", r)
	}
}

func TestRowHitFasterThanRowConflict(t *testing.T) {
	cfg := testConfig()
	// Same bank, same row -> hit; same bank, different row -> conflict.
	m1 := New(cfg, NewFRFCFS)
	m1.OnComplete = func(*mem.Request) {}
	m1.Enqueue(newReq(0, false, mem.SourceCPU0))
	run(m1, 1000, func() bool { return m1.QueueDepth() == 0 && len(m1.channels[0].completions) == 0 })
	hitStart := m1.dramCycle
	var hitDone bool
	m1.OnComplete = func(*mem.Request) { hitDone = true }
	m1.Enqueue(newReq(2*mem.LineSize, false, mem.SourceCPU0)) // same row as 0
	hitLat := run(m1, 1000, func() bool { return hitDone })
	_ = hitStart

	m2 := New(cfg, NewFRFCFS)
	m2.OnComplete = func(*mem.Request) {}
	m2.Enqueue(newReq(0, false, mem.SourceCPU0))
	run(m2, 1000, func() bool { return m2.QueueDepth() == 0 && len(m2.channels[0].completions) == 0 })
	// Conflict: same channel & bank, different row. Bank stride within
	// a channel is RowBytes*Channels; full cycle through all banks is
	// RowBytes*Channels*Banks.
	conflictAddr := cfg.RowBytes * uint64(cfg.Channels) * uint64(cfg.Banks)
	_, b0, r0 := m2.Decode(0)
	_, b1, r1 := m2.Decode(conflictAddr)
	if b0 != b1 || r0 == r1 {
		t.Fatalf("bad conflict address: bank %d vs %d, row %d vs %d", b0, b1, r0, r1)
	}
	var confDone bool
	m2.OnComplete = func(*mem.Request) { confDone = true }
	m2.Enqueue(newReq(conflictAddr, false, mem.SourceCPU0))
	confLat := run(m2, 1000, func() bool { return confDone })

	if hitLat >= confLat {
		t.Fatalf("row hit (%d) not faster than conflict (%d)", hitLat, confLat)
	}
	if confLat-hitLat != int(cfg.TRP+cfg.TRCD) {
		t.Fatalf("conflict penalty = %d, want tRP+tRCD=%d", confLat-hitLat, cfg.TRP+cfg.TRCD)
	}
}

func TestFRFCFSPrefersRowHit(t *testing.T) {
	cfg := testConfig()
	m := New(cfg, NewFRFCFS)
	var order []uint64
	m.OnComplete = func(r *mem.Request) { order = append(order, r.Addr) }
	// Open row 0 of bank 0 (channel 0).
	m.Enqueue(newReq(0, false, mem.SourceCPU0))
	run(m, 1000, func() bool { return len(order) == 1 })
	// Now: an older row-conflict request and a younger row-hit request.
	conflict := cfg.RowBytes * uint64(cfg.Channels) * uint64(cfg.Banks)
	m.Enqueue(newReq(conflict, false, mem.SourceCPU0))
	m.Enqueue(newReq(2*mem.LineSize, false, mem.SourceCPU0)) // row hit
	run(m, 4000, func() bool { return len(order) == 3 })
	if order[1] != 2*mem.LineSize {
		t.Fatalf("FR-FCFS served %#x before the row hit", order[1])
	}
}

func TestCPUPrioBeatsGPU(t *testing.T) {
	cfg := testConfig()
	boost := BoostCPU
	m := New(cfg, func() Scheduler { return NewPrio(func() BoostState { return boost }) })
	var order []mem.Source
	m.OnComplete = func(r *mem.Request) { order = append(order, r.Src) }
	// Same bank/row so both are equally ready; GPU arrives first.
	m.Enqueue(&mem.Request{Addr: 0, Src: mem.SourceGPU, Class: mem.ClassTexture})
	m.Enqueue(&mem.Request{Addr: 2 * mem.LineSize, Src: mem.SourceCPU0, Class: mem.ClassCPUData})
	run(m, 2000, func() bool { return len(order) == 2 })
	if order[0] != mem.SourceCPU0 {
		t.Fatalf("CPU priority did not reorder: %v", order)
	}
	// With BoostNone the older GPU request wins.
	boost = BoostNone
	order = nil
	m2 := New(cfg, func() Scheduler { return NewPrio(func() BoostState { return boost }) })
	m2.OnComplete = func(r *mem.Request) { order = append(order, r.Src) }
	m2.Enqueue(&mem.Request{Addr: 0, Src: mem.SourceGPU, Class: mem.ClassTexture})
	m2.Enqueue(&mem.Request{Addr: 2 * mem.LineSize, Src: mem.SourceCPU0, Class: mem.ClassCPUData})
	run(m2, 2000, func() bool { return len(order) == 2 })
	if order[0] != mem.SourceGPU {
		t.Fatalf("BoostNone should be FCFS: %v", order)
	}
}

func TestGPUBoostBeatsCPU(t *testing.T) {
	cfg := testConfig()
	m := New(cfg, func() Scheduler { return NewPrio(func() BoostState { return BoostGPU }) })
	var order []mem.Source
	m.OnComplete = func(r *mem.Request) { order = append(order, r.Src) }
	m.Enqueue(&mem.Request{Addr: 0, Src: mem.SourceCPU0, Class: mem.ClassCPUData})
	m.Enqueue(&mem.Request{Addr: 2 * mem.LineSize, Src: mem.SourceGPU, Class: mem.ClassTexture})
	run(m, 2000, func() bool { return len(order) == 2 })
	if order[0] != mem.SourceGPU {
		t.Fatalf("GPU boost did not reorder: %v", order)
	}
}

func TestWriteDrainHysteresis(t *testing.T) {
	cfg := testConfig()
	cfg.WriteHi, cfg.WriteLo = 4, 1
	m := New(cfg, NewFRFCFS)
	reads, writes := 0, 0
	m.OnComplete = func(r *mem.Request) {
		if r.Write {
			writes++
		} else {
			reads++
		}
	}
	for i := uint64(0); i < 6; i++ {
		m.Enqueue(newReq(i*mem.LineSize*uint64(cfg.Channels), true, mem.SourceCPU0))
	}
	m.Enqueue(newReq(1024*mem.LineSize, false, mem.SourceCPU0))
	run(m, 5000, func() bool { return reads == 1 && writes == 6 })
	if reads != 1 || writes != 6 {
		t.Fatalf("reads=%d writes=%d", reads, writes)
	}
	rb, wb := m.TotalBytes(mem.SourceCPU0)
	if rb != mem.LineSize || wb != 6*mem.LineSize {
		t.Fatalf("bytes read=%d write=%d", rb, wb)
	}
}

func TestEnqueueRejectsWhenFull(t *testing.T) {
	cfg := testConfig()
	cfg.QueueCap = 2
	m := New(cfg, NewFRFCFS)
	m.OnComplete = func(*mem.Request) {}
	a := uint64(0)
	ok1 := m.Enqueue(newReq(a, false, mem.SourceCPU0))
	ok2 := m.Enqueue(newReq(a+2*mem.LineSize, false, mem.SourceCPU0))
	if !ok1 || !ok2 {
		t.Fatalf("first two enqueues failed")
	}
	if m.CanAccept(newReq(a+4*mem.LineSize, false, mem.SourceCPU0)) {
		t.Fatalf("CanAccept true on full queue")
	}
	if m.Enqueue(newReq(a+4*mem.LineSize, false, mem.SourceCPU0)) {
		t.Fatalf("enqueue succeeded on full queue")
	}
}

func TestSMSBatchingEventuallyServesEverything(t *testing.T) {
	cfg := testConfig()
	m := New(cfg, func() Scheduler { return NewSMS(0.9, 42) })
	done := 0
	m.OnComplete = func(*mem.Request) { done++ }
	n := 0
	for i := uint64(0); i < 20; i++ {
		src := mem.SourceCPU0
		if i%2 == 1 {
			src = mem.SourceGPU
		}
		if m.Enqueue(&mem.Request{Addr: i * 64 * 97, Src: src}) {
			n++
		}
	}
	run(m, 50000, func() bool { return done == n })
	if done != n {
		t.Fatalf("SMS served %d of %d", done, n)
	}
}

func TestSMSShortestBatchFavorsCPU(t *testing.T) {
	// One long GPU batch vs a single CPU request: with P=1-ish (0.999)
	// the CPU's size-1 batch must be scheduled before the GPU batch
	// finishes. All requests hit distinct rows so batches close at
	// every enqueue except GPU same-row runs.
	cfg := testConfig()
	m := New(cfg, func() Scheduler { return NewSMS(0.999, 7) })
	var order []mem.Source
	m.OnComplete = func(r *mem.Request) { order = append(order, r.Src) }
	// 12 GPU requests in one row (single batch of 12).
	for i := uint64(0); i < 12; i++ {
		m.Enqueue(&mem.Request{Addr: i * 2 * mem.LineSize, Src: mem.SourceGPU})
	}
	// One CPU request, different row.
	m.Enqueue(&mem.Request{Addr: 1 << 20, Src: mem.SourceCPU0})
	run(m, 100000, func() bool { return len(order) == 13 })
	cpuPos := -1
	for i, s := range order {
		if s == mem.SourceCPU0 {
			cpuPos = i
		}
	}
	if cpuPos == -1 {
		t.Fatalf("CPU request never served")
	}
	if cpuPos > 3 {
		t.Fatalf("shortest-batch-first served CPU at position %d", cpuPos)
	}
}

// Property: every accepted request eventually completes under every
// scheduler (no starvation, no lost requests), and total DRAM bytes
// equal 64 x completed requests.
func TestQuickAllSchedulersComplete(t *testing.T) {
	schedFactories := []func() Scheduler{
		NewFRFCFS,
		func() Scheduler { return NewPrio(func() BoostState { return BoostCPU }) },
		func() Scheduler { return NewPrio(func() BoostState { return BoostGPU }) },
		func() Scheduler { return NewSMS(0.9, 1) },
		func() Scheduler { return NewSMS(0, 2) },
	}
	f := func(addrs []uint32, pick uint8) bool {
		factory := schedFactories[int(pick)%len(schedFactories)]
		cfg := testConfig()
		m := New(cfg, factory)
		done := 0
		m.OnComplete = func(*mem.Request) { done++ }
		accepted := 0
		for i, a := range addrs {
			r := &mem.Request{
				Addr:  uint64(a) &^ (mem.LineSize - 1),
				Write: i%5 == 0,
				Src:   mem.Source(i % int(mem.NumSources)),
			}
			if m.Enqueue(r) {
				accepted++
			}
		}
		budget := 2000 + 600*accepted
		for i := 0; i < budget && done < accepted; i++ {
			m.Tick()
		}
		if done != accepted {
			return false
		}
		var total uint64
		for s := mem.Source(0); s < mem.NumSources; s++ {
			r, w := m.TotalBytes(s)
			total += r + w
		}
		return total == uint64(accepted)*mem.LineSize
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: the data bus never overlaps bursts — successive
// completions on one channel are at least BurstCycles apart.
func TestQuickNoBusOverlap(t *testing.T) {
	f := func(addrs []uint16) bool {
		cfg := testConfig()
		cfg.Channels = 1
		m := New(cfg, NewFRFCFS)
		var times []uint64
		m.OnComplete = func(r *mem.Request) { times = append(times, r.DoneCycle) }
		accepted := 0
		for _, a := range addrs {
			if m.Enqueue(newReq(uint64(a)*mem.LineSize, false, mem.SourceCPU0)) {
				accepted++
			}
		}
		for i := 0; i < 2000+600*accepted && len(times) < accepted; i++ {
			m.Tick()
		}
		if len(times) != accepted {
			return false
		}
		for i := 1; i < len(times); i++ {
			if times[i] < times[i-1] {
				// completions may be recorded out of order only if
				// two distinct banks' bursts interleave, which the
				// shared bus forbids
				return false
			}
			if times[i]-times[i-1] < cfg.BurstCycles {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestRefreshClosesRowsAndStallsBank(t *testing.T) {
	cfg := testConfig()
	cfg.TREFI = 100
	cfg.TRFC = 50
	m := New(cfg, NewFRFCFS)
	done := 0
	m.OnComplete = func(*mem.Request) { done++ }
	// Open a row well before the refresh.
	m.Enqueue(newReq(0, false, mem.SourceCPU0))
	run(m, 60, func() bool { return done == 1 })
	if done != 1 {
		t.Fatalf("first request not served")
	}
	// Advance past the refresh point, then issue a same-row request:
	// the row must have been closed (row miss) and the bank stalled.
	for m.dramCycle < cfg.TREFI+1 {
		m.Tick()
	}
	start := m.dramCycle
	m.Enqueue(newReq(2*mem.LineSize, false, mem.SourceCPU0))
	run(m, 1000, func() bool { return done == 2 })
	lat := m.dramCycle - start
	// Closed-row latency (tRCD+tCL+burst = 32) at minimum; if the
	// request landed inside tRFC it waits longer. A row hit (tCL+burst
	// = 18) would prove the refresh did not close the row.
	if lat < cfg.TRCD+cfg.TCL+cfg.BurstCycles {
		t.Fatalf("post-refresh access latency %d looks like a row hit", lat)
	}
	if m.Refreshes == 0 {
		t.Fatalf("no refreshes recorded")
	}
}

func TestRefreshDisabledWhenTREFIZero(t *testing.T) {
	cfg := testConfig()
	cfg.TREFI = 0
	m := New(cfg, NewFRFCFS)
	m.OnComplete = func(*mem.Request) {}
	for i := 0; i < 100000; i++ {
		m.Tick()
	}
	if m.Refreshes != 0 {
		t.Fatalf("refreshes happened with TREFI=0: %d", m.Refreshes)
	}
}
