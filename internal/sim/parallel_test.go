package sim

import (
	"reflect"
	"testing"

	"repro/internal/workloads"
)

// parCfg is the differential suite's run size: smaller than goldenCfg
// so the full 9-policy parallel-vs-sequential matrix stays fast under
// -race, but big enough that every subsystem (warm-up, frames, fills,
// write drains, back-invalidations, fast-forward) gets exercised.
func parCfg(p Policy) Config {
	cfg := DefaultConfig(256)
	cfg.Policy = p
	cfg.WarmupInstr = 8_000
	cfg.WarmupFrames = 1
	cfg.MeasureInstr = 20_000
	cfg.MinFrames = 1
	cfg.MaxCycles = 20_000_000
	// Force the goroutine engine regardless of the host's GOMAXPROCS:
	// the differential property is about the engine, not the machine.
	cfg.IntraThreads = 2
	return cfg
}

// TestParallelEquivalence is the tentpole's differential proof: for
// every policy the paper evaluates, the intra-run parallel engine and
// the sequential reference loop must produce byte-identical Results
// and identical observability streams (samples and trace) on the same
// seed. Run under -race this also proves the epoch barrier's
// happens-before edges are real, not accidental.
func TestParallelEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("differential runs skipped in -short mode")
	}
	mix := workloads.EvalMixes()[6] // M7, as the golden suite uses
	for _, p := range goldenPolicies {
		p := p
		t.Run(p.String(), func(t *testing.T) {
			t.Parallel()
			par := parCfg(p)
			seq := par
			seq.NoParallel = true

			pr, pd := ffDigest(t, par, mix)
			sr, sd := ffDigest(t, seq, mix)
			if !reflect.DeepEqual(pr, sr) {
				t.Errorf("Result diverged:\npar: %+v\nseq: %+v", pr, sr)
			}
			if pd != sd {
				t.Errorf("obs stream diverged: par %s != seq %s", pd, sd)
			}
		})
	}
}

// TestParallelEquivalenceUnderFaults proves the differential property
// holds with fault injection active: hold bursts and dropped fills
// must land on the exact same cycles in both engines, including the
// per-fill DropFill poll order that feeds the injector's counter.
func TestParallelEquivalenceUnderFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("differential runs skipped in -short mode")
	}
	mix := workloads.EvalMixes()[6]
	build := func(noPar bool, inj FaultInjector) Result {
		cfg := parCfg(PolicyThrottleCPUPrio)
		cfg.NoParallel = noPar
		cfg.Faults = inj
		return RunMix(cfg, mix)
	}
	spec := ffHoldInjector{
		llcPeriod: 50_000, llcLen: 700,
		dramPeriod: 80_000, dramLen: 900,
		dropNth: 997,
	}

	pi, si, bi := spec, spec, spec
	par := build(false, &pi)
	seq := build(true, &si)
	blind := build(false, blindInjector{&bi})
	if !reflect.DeepEqual(par, seq) {
		t.Errorf("faulted run diverged:\npar: %+v\nseq: %+v", par, seq)
	}
	if !reflect.DeepEqual(blind, seq) {
		t.Errorf("blind-injector run diverged:\nblind: %+v\nseq:   %+v", blind, seq)
	}
}

// TestParallelEpochLenInvariance is the property probe: results must
// be invariant under the epoch length, because skip-debt
// materialization replays exactly the stall cycles the elided ticks
// would have burned. The values cover degenerate (1 = engage every
// cycle), prime, default, and absurdly large epochs.
func TestParallelEpochLenInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("property runs skipped in -short mode")
	}
	mix := workloads.EvalMixes()[6]
	base := parCfg(PolicyThrottle)
	base.NoParallel = true
	_, want := ffDigest(t, base, mix)

	for _, e := range []int{1, 2, 3, 5, 17, 64, 1000} {
		cfg := parCfg(PolicyThrottle)
		cfg.EpochLen = e
		if _, got := ffDigest(t, cfg, mix); got != want {
			t.Errorf("EpochLen=%d digest %s != sequential %s", e, got, want)
		}
	}
}

// TestParallelWorkerCountInvariance: the digest must not depend on how
// many workers the domains are spread over — worker assignment is
// topology, not semantics.
func TestParallelWorkerCountInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("property runs skipped in -short mode")
	}
	mix := workloads.EvalMixes()[6]
	var want string
	for i, threads := range []int{2, 3, 5, 8} {
		cfg := parCfg(PolicyDynPrio)
		cfg.IntraThreads = threads
		_, got := ffDigest(t, cfg, mix)
		if i == 0 {
			want = got
			continue
		}
		if got != want {
			t.Errorf("IntraThreads=%d digest %s != %s", threads, got, want)
		}
	}
}

// TestParallelFallsBackToSequential: single-domain systems (CPU-alone,
// GPU-alone) and IntraThreads=1 must select the sequential engine —
// there is nothing to overlap.
func TestParallelFallsBackToSequential(t *testing.T) {
	cfg := parCfg(PolicyBaseline)

	// CPU-alone: one core, no GPU — a single domain.
	_, apps := MixWorkload(cfg, workloads.EvalMixes()[6])
	s := NewSystem(cfg, nil, apps[:1])
	if _, ok := newEngine(s).(seqEngine); !ok {
		t.Errorf("single-core system selected the parallel engine")
	}

	// Full mix but IntraThreads=1: explicitly sequential.
	one := cfg
	one.IntraThreads = 1
	game, apps := MixWorkload(one, workloads.EvalMixes()[6])
	s = NewSystem(one, game, apps)
	if _, ok := newEngine(s).(seqEngine); !ok {
		t.Errorf("IntraThreads=1 selected the parallel engine")
	}

	// Full mix with threads: parallel.
	game, apps = MixWorkload(cfg, workloads.EvalMixes()[6])
	s = NewSystem(cfg, game, apps)
	eng := newEngine(s)
	pe, ok := eng.(*parEngine)
	if !ok {
		t.Fatalf("mix with IntraThreads=2 selected the sequential engine")
	}
	pe.finish()
}

// TestIntraEnvResolution pins the thread-budget resolution order:
// explicit IntraThreads beats HETSIM_INTRA, HETSIM_INTRA beats the
// GOMAXPROCS default, and garbage in the env reads as unset — the
// contract exp.Runner.arm relies on to let an operator's env override
// bypass its campaign-pool split.
func TestIntraEnvResolution(t *testing.T) {
	t.Setenv("HETSIM_INTRA", "3")
	if got := IntraEnv(); got != 3 {
		t.Errorf("IntraEnv() = %d, want 3", got)
	}
	var cfg Config
	if got := effectiveThreads(cfg); got != 3 {
		t.Errorf("effectiveThreads(auto) = %d, want 3 from HETSIM_INTRA", got)
	}
	cfg.IntraThreads = 5
	if got := effectiveThreads(cfg); got != 5 {
		t.Errorf("effectiveThreads(explicit 5) = %d, want 5", got)
	}
	t.Setenv("HETSIM_INTRA", "banana")
	if got := IntraEnv(); got != 0 {
		t.Errorf("IntraEnv() with garbage = %d, want 0", got)
	}
}
