package sim

import (
	"os"
	"runtime"
	"strconv"
	"sync/atomic"

	"repro/internal/obs"
)

// engine is the stepping strategy Run drives: one observable CPU cycle
// per tick, plus the fast-forward contract (nextWake/skipTo) and an
// end-of-run finish. Both implementations — the sequential reference
// loop and the intra-run parallel engine (DESIGN.md §11) — are
// observationally identical; the differential suite in
// parallel_test.go proves it policy by policy.
type engine interface {
	// tick advances the system exactly one CPU cycle.
	tick()
	// nextWake returns System.NextWake with every domain's deferred
	// state materialized, so a following skipTo is sound.
	nextWake() uint64
	// skipTo bulk-advances through a proven-dead range (SkipTo).
	skipTo(target uint64)
	// finish materializes all deferred state and releases any worker
	// goroutines. Idempotent; Run both defers it (panic safety) and
	// calls it before assembling results.
	finish()
}

// DefaultEpochLen caps how many cycles of skip debt the parallel
// engine lets a provably-dead domain accumulate between barrier
// engagements. The floor for useful debt is the minimum cross-domain
// latency (a ring round trip to the LLC, ~2·hops ≈ 6–8 cycles: sooner
// than that, no cross-domain input can arrive anyway); 64 additionally
// amortizes the barrier over the common DRAM-round-trip quiescence
// (~50–100 CPU cycles) while keeping worst-case materialization work
// trivial. Results are invariant under this value — see
// TestParallelEpochLenInvariance.
const DefaultEpochLen = 64

// Engine selection counters, exported through EngineStats and the obs
// registry (hetsimd /metricsz). Updated atomically: runs at start,
// tick/skip totals when an engine finishes.
var (
	engParallelRuns   atomic.Uint64
	engSequentialRuns atomic.Uint64
	engParallelTicks  atomic.Uint64
	engDomainSkips    atomic.Uint64
)

// EngineStats reports cumulative engine-selection and epoch counters
// for this process: runs started on the parallel vs sequential engine,
// parallel barrier cycles executed, and per-domain engagements elided
// by skip debt.
func EngineStats() (parallelRuns, sequentialRuns, parallelTicks, domainSkips uint64) {
	return engParallelRuns.Load(), engSequentialRuns.Load(),
		engParallelTicks.Load(), engDomainSkips.Load()
}

// RegisterEngineObs registers the process-wide engine counters with an
// observability registry (hetsimd exposes them on /metricsz).
func RegisterEngineObs(reg *obs.Registry) {
	reg.Counter("engine.parallel_runs", engParallelRuns.Load)
	reg.Counter("engine.sequential_runs", engSequentialRuns.Load)
	reg.Counter("engine.parallel_ticks", engParallelTicks.Load)
	reg.Counter("engine.domain_skips", engDomainSkips.Load)
}

// IntraEnv returns the HETSIM_INTRA override when it holds a positive
// integer, else 0. Exported so schedulers layered above the simulator
// (the exp campaign pool) can let an explicit operator override win
// over their own thread budgeting.
func IntraEnv() int {
	if v := os.Getenv("HETSIM_INTRA"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			return n
		}
	}
	return 0
}

// effectiveThreads resolves Config.IntraThreads: explicit values win,
// 0 falls back to HETSIM_INTRA, then GOMAXPROCS.
func effectiveThreads(cfg Config) int {
	if cfg.IntraThreads != 0 {
		return cfg.IntraThreads
	}
	if n := IntraEnv(); n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// newEngine picks the stepping strategy for one run: the parallel
// engine when it is allowed (NoParallel unset), funded (>= 2 effective
// threads), and useful (>= 2 steppable domains — CPU-alone and
// GPU-alone runs have nothing to overlap and stay sequential).
func newEngine(s *System) engine {
	domains := len(s.Cores)
	if s.GPU != nil {
		domains++
	}
	if s.Cfg.NoParallel || domains < 2 || effectiveThreads(s.Cfg) < 2 {
		engSequentialRuns.Add(1)
		return seqEngine{s}
	}
	engParallelRuns.Add(1)
	return newParEngine(s)
}

// seqEngine is the reference loop: System's own methods, unchanged.
type seqEngine struct{ s *System }

func (e seqEngine) tick()                { e.s.Tick() }
func (e seqEngine) nextWake() uint64     { return e.s.NextWake() }
func (e seqEngine) skipTo(target uint64) { e.s.SkipTo(target) }
func (e seqEngine) finish()              {}
