package sim

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"repro/internal/obs"
	"repro/internal/stats"
	"repro/internal/workloads"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata/golden.json from this run")

// goldenPolicies is every policy the paper evaluates; each gets its
// own golden hash.
var goldenPolicies = []Policy{
	PolicyBaseline, PolicyThrottle, PolicyThrottleCPUPrio,
	PolicySMS09, PolicySMS0, PolicyDynPrio,
	PolicyHeLM, PolicyForcedBypass, PolicyCMBAL,
}

// goldenCfg is deliberately tiny: the hashes pin exact behavior, not
// paper-scale numbers, so the whole suite stays a few seconds.
func goldenCfg(p Policy) Config {
	cfg := DefaultConfig(256)
	cfg.Policy = p
	cfg.WarmupInstr = 30_000
	cfg.WarmupFrames = 2
	cfg.MeasureInstr = 80_000
	cfg.MinFrames = 2
	cfg.MaxCycles = 20_000_000
	return cfg
}

// legacyResultView mirrors Result's field list as of PR 2 (when the
// golden hashes were recorded), so the digest below keeps hashing the
// exact same "%+v" bytes. The hashes pin simulation behavior, not the
// Result struct's shape: robustness fields added since (WarmupCapped,
// Stalled, StallCycle, Interrupted) are diagnostics that are all zero
// on a healthy golden run and deliberately stay outside the digest.
// When adding a field to Result, do NOT add it here unless you intend
// to re-record testdata/golden.json.
type legacyResultView struct {
	MixID          string
	Policy         Policy
	MeasuredCycles uint64
	IPC            []float64
	GPUFPS         float64
	GPUFrames      int
	GPUFrameCycles []uint64
	CPULLCMisses   uint64
	GPULLCMisses   uint64
	CPULLCAccesses uint64
	GPULLCAccesses uint64
	CPUReadBytes, CPUWriteBytes uint64
	GPUReadBytes, GPUWriteBytes uint64
	FrameStats        stats.FrameStats
	FRPUMeanErrPct    float64
	FRPUMeanAbsErrPct float64
	FRPURelearns      int
	HitCap            bool
}

// legacyView projects r onto the PR 2 field set and asserts the
// robustness diagnostics are quiescent — a golden run that stalls,
// caps its warm-up, or gets interrupted is a behavior change even
// though those fields are not hashed.
func legacyView(t *testing.T, r Result) legacyResultView {
	t.Helper()
	if r.WarmupCapped || r.Stalled || r.Interrupted || r.StallCycle != 0 {
		t.Fatalf("golden run tripped a robustness diagnostic: WarmupCapped=%v Stalled=%v StallCycle=%d Interrupted=%v",
			r.WarmupCapped, r.Stalled, r.StallCycle, r.Interrupted)
	}
	return legacyResultView{
		MixID:          r.MixID,
		Policy:         r.Policy,
		MeasuredCycles: r.MeasuredCycles,
		IPC:            r.IPC,
		GPUFPS:         r.GPUFPS,
		GPUFrames:      r.GPUFrames,
		GPUFrameCycles: r.GPUFrameCycles,
		CPULLCMisses:   r.CPULLCMisses,
		GPULLCMisses:   r.GPULLCMisses,
		CPULLCAccesses: r.CPULLCAccesses,
		GPULLCAccesses: r.GPULLCAccesses,
		CPUReadBytes:   r.CPUReadBytes,
		CPUWriteBytes:  r.CPUWriteBytes,
		GPUReadBytes:   r.GPUReadBytes,
		GPUWriteBytes:  r.GPUWriteBytes,
		FrameStats:        r.FrameStats,
		FRPUMeanErrPct:    r.FRPUMeanErrPct,
		FRPUMeanAbsErrPct: r.FRPUMeanAbsErrPct,
		FRPURelearns:      r.FRPURelearns,
		HitCap:            r.HitCap,
	}
}

// goldenDigest runs one policy with observability attached and hashes
// everything a regression could perturb: the full Result, the sampled
// metrics CSV, and the trace JSON.
func goldenDigest(t *testing.T, p Policy) string {
	t.Helper()
	rec := obs.NewRecorder(0)
	r := RunMixObs(goldenCfg(p), workloads.EvalMixes()[6], rec) // M7

	h := sha256.New()
	fmt.Fprintf(h, "%+v\n", legacyView(t, r))
	if err := rec.WriteCSV(h); err != nil {
		t.Fatal(err)
	}
	if err := rec.WriteTrace(h, p.String()); err != nil {
		t.Fatal(err)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// TestGoldenRuns hashes a full run (Result + metrics stream + trace)
// for every policy against checked-in golden hashes. Any change to
// simulation timing, stat accounting, or observability encoding shows
// up here; refresh intentionally with:
//
//	go test ./internal/sim -run TestGoldenRuns -update
func TestGoldenRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("golden runs skipped in -short mode")
	}
	path := filepath.Join("testdata", "golden.json")

	got := make(map[string]string, len(goldenPolicies))
	for _, p := range goldenPolicies {
		got[p.String()] = goldenDigest(t, p)
	}

	if *updateGolden {
		keys := make([]string, 0, len(got))
		for k := range got {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		ordered := make(map[string]string, len(got))
		for _, k := range keys {
			ordered[k] = got[k]
		}
		data, err := json.MarshalIndent(ordered, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden hashes rewritten: %s", path)
		return
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("no golden file (%v); run with -update to create it", err)
	}
	var want map[string]string
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	for _, p := range goldenPolicies {
		name := p.String()
		if want[name] == "" {
			t.Errorf("%s: no golden hash recorded; run with -update", name)
			continue
		}
		if got[name] != want[name] {
			t.Errorf("%s: run digest %s… != golden %s… (intentional change? re-run with -update)",
				name, got[name][:12], want[name][:12])
		}
	}
}

// TestGoldenRepeatByteIdentity reruns one observed policy twice in the
// same process and compares the raw output streams byte for byte —
// the determinism claim the golden hashes rest on.
func TestGoldenRepeatByteIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("skipped in -short mode")
	}
	run := func() (string, []byte, []byte) {
		rec := obs.NewRecorder(0)
		r := RunMixObs(goldenCfg(PolicyThrottleCPUPrio), workloads.EvalMixes()[6], rec)
		var csv, tr bytes.Buffer
		if err := rec.WriteCSV(&csv); err != nil {
			t.Fatal(err)
		}
		if err := rec.WriteTrace(&tr, "repeat"); err != nil {
			t.Fatal(err)
		}
		return fmt.Sprintf("%+v", r), csv.Bytes(), tr.Bytes()
	}
	r1, c1, t1 := run()
	r2, c2, t2 := run()
	if r1 != r2 {
		t.Error("Result differs across identical runs")
	}
	if !bytes.Equal(c1, c2) {
		t.Error("metrics CSV differs across identical runs")
	}
	if !bytes.Equal(t1, t2) {
		t.Error("trace JSON differs across identical runs")
	}
	if len(c1) == 0 || len(t1) == 0 {
		t.Error("observed run produced empty output streams")
	}
}

// TestObsDoesNotPerturbResults: attaching a recorder must leave the
// simulation byte-identical to an unobserved run — observability is
// strictly read-only.
func TestObsDoesNotPerturbResults(t *testing.T) {
	if testing.Short() {
		t.Skip("skipped in -short mode")
	}
	m := workloads.EvalMixes()[6]
	for _, p := range []Policy{PolicyBaseline, PolicyThrottleCPUPrio, PolicyDynPrio} {
		plain := RunMix(goldenCfg(p), m)
		observed := RunMixObs(goldenCfg(p), m, obs.NewRecorder(0))
		if fmt.Sprintf("%+v", plain) != fmt.Sprintf("%+v", observed) {
			t.Errorf("%s: observability changed the simulation:\n%+v\nvs\n%+v", p, plain, observed)
		}
	}
}
