package sim

import (
	"fmt"
	"testing"

	"repro/internal/trace"
	"repro/internal/workloads"
)

// dropAllFills is the harshest possible fault: every read fill is
// lost, so the first core miss stalls the pipeline forever. Only the
// progress watchdog can end such a run before MaxCycles.
type dropAllFills struct{}

func (dropAllFills) HoldLLCIntake(uint64) bool { return false }
func (dropAllFills) HoldDRAM(uint64) bool      { return false }
func (dropAllFills) DropFill(uint64) bool      { return true }

// stalledCfg is a small CPU-only system with a tight watchdog.
func stalledCfg() Config {
	cfg := fastCfg()
	cfg.NumCPUs = 1
	cfg.MinFrames = 0
	cfg.Faults = dropAllFills{}
	cfg.StallWindow = 50_000
	cfg.StallWindows = 2
	return cfg
}

func runCPUOnly(t *testing.T, cfg Config, specID int) Result {
	t.Helper()
	app, err := workloads.Spec(specID)
	if err != nil {
		t.Fatal(err)
	}
	return Run(NewSystem(cfg, nil, []trace.Params{app.Params}))
}

// TestWatchdogFiresOnLivelock: with every fill dropped the run makes
// no forward progress, and the watchdog must end it deterministically
// long before MaxCycles.
func TestWatchdogFiresOnLivelock(t *testing.T) {
	cfg := stalledCfg()
	r := runCPUOnly(t, cfg, 429)
	if !r.Stalled {
		t.Fatalf("run with all fills dropped did not stall: %+v", r)
	}
	if r.StallCycle == 0 || r.StallCycle >= cfg.MaxCycles {
		t.Errorf("StallCycle = %d, want in (0, MaxCycles)", r.StallCycle)
	}
	if !r.WarmupCapped {
		t.Error("a run stalled during warm-up should also report WarmupCapped")
	}
	if r.HitCap {
		t.Error("stalled run should bail before the MaxCycles cap")
	}

	// The stall verdict is part of the deterministic result.
	r2 := runCPUOnly(t, cfg, 429)
	if fmt.Sprintf("%+v", r) != fmt.Sprintf("%+v", r2) {
		t.Errorf("stalled result not deterministic:\n%+v\nvs\n%+v", r, r2)
	}
}

// TestWatchdogDisabled: StallWindows < 0 turns the watchdog off, so
// the same livelocked run must instead grind to the MaxCycles cap.
func TestWatchdogDisabled(t *testing.T) {
	cfg := stalledCfg()
	cfg.StallWindows = -1
	cfg.MaxCycles = 400_000 // keep the capped run cheap
	r := runCPUOnly(t, cfg, 429)
	if r.Stalled {
		t.Errorf("watchdog disabled but run reported Stalled: %+v", r)
	}
	if !r.HitCap {
		t.Errorf("livelocked run without watchdog should hit MaxCycles: %+v", r)
	}
}

// TestWatchdogQuietOnHealthyRun: a normal run must never trip the
// watchdog, even with an aggressive window.
func TestWatchdogQuietOnHealthyRun(t *testing.T) {
	cfg := fastCfg()
	cfg.NumCPUs = 1
	cfg.MinFrames = 0
	cfg.StallWindow = 50_000
	cfg.StallWindows = 2
	r := runCPUOnly(t, cfg, 429)
	if r.Stalled || r.Interrupted {
		t.Errorf("healthy run tripped the watchdog: %+v", r)
	}
}

// TestInterruptEndsRun: a config interrupt hook ends the run at the
// next poll with Interrupted set.
func TestInterruptEndsRun(t *testing.T) {
	cfg := fastCfg()
	cfg.NumCPUs = 1
	cfg.MinFrames = 0
	cfg.Interrupt = func() bool { return true }
	r := runCPUOnly(t, cfg, 429)
	if !r.Interrupted {
		t.Fatalf("always-true Interrupt did not end the run: %+v", r)
	}
	// First poll happens one interrupt stride in.
	if r.Stalled || r.HitCap {
		t.Errorf("interrupted run should not also report Stalled/HitCap: %+v", r)
	}
}

// TestWarmupCappedRecorded: warm-up that exits on its cycle cap (not
// on warmDone) must be reported instead of silently measuring a cold
// system.
func TestWarmupCappedRecorded(t *testing.T) {
	cfg := fastCfg()
	cfg.NumCPUs = 1
	cfg.MinFrames = 0
	cfg.WarmupInstr = 1 << 62 // unreachable: warm-up must cap
	cfg.MaxCycles = 400_000
	r := runCPUOnly(t, cfg, 429)
	if !r.WarmupCapped {
		t.Errorf("unreachable WarmupInstr did not set WarmupCapped: %+v", r)
	}

	// And a run whose warm-up completes normally must not set it.
	healthy := fastCfg()
	healthy.NumCPUs = 1
	healthy.MinFrames = 0
	if r := runCPUOnly(t, healthy, 429); r.WarmupCapped {
		t.Errorf("healthy warm-up reported WarmupCapped: %+v", r)
	}
}

// TestConfigValidate exercises every rejection path plus the happy
// path the CLIs rely on.
func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig(64).Validate(); err != nil {
		t.Fatalf("DefaultConfig invalid: %v", err)
	}
	bad := []func(*Config){
		func(c *Config) { c.Scale = 0 },
		func(c *Config) { c.NumCPUs = -1 },
		func(c *Config) { c.NumCPUs = 99 },
		func(c *Config) { c.CPUFreqHz = 0 },
		func(c *Config) { c.GPUFreqHz = -1 },
		func(c *Config) { c.GPUDivider = 0 },
		func(c *Config) { c.TargetFPS = -40 },
		func(c *Config) { c.MeasureInstr = 0 },
		func(c *Config) { c.MaxCycles = 0 },
		func(c *Config) { c.MinFrames = -1 },
		func(c *Config) { c.WarmupFrames = -1 },
	}
	for i, mutate := range bad {
		cfg := DefaultConfig(64)
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad config #%d passed Validate: %+v", i, cfg)
		}
	}
}
