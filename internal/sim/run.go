package sim

import (
	"repro/internal/mem"
	"repro/internal/obs"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// Result captures one run's measured-window metrics.
type Result struct {
	MixID  string
	Policy Policy

	// MeasuredCycles is the measurement window length in CPU cycles.
	MeasuredCycles uint64

	// IPC per core over each core's representative instruction
	// window.
	IPC []float64

	// GPU metrics (zero when no GPU workload).
	GPUFPS         float64
	GPUFrames      int
	GPUFrameCycles []uint64

	// LLC metrics over the window.
	CPULLCMisses   uint64
	GPULLCMisses   uint64
	CPULLCAccesses uint64
	GPULLCAccesses uint64

	// DRAM traffic over the window, bytes.
	CPUReadBytes, CPUWriteBytes uint64
	GPUReadBytes, GPUWriteBytes uint64

	// FrameStats summarizes the frame-time distribution (tail
	// latency, jank, frames missing the QoS budget).
	FrameStats stats.FrameStats

	// FRPU accuracy (throttling and DynPrio policies only).
	FRPUMeanErrPct    float64
	FRPUMeanAbsErrPct float64
	FRPURelearns      int

	// HitCap is set when the run ended on MaxCycles rather than on
	// its completion conditions.
	HitCap bool

	// WarmupCapped is set when warm-up ended on its cycle cap
	// (MaxCycles/4) before every core reached WarmupInstr and the GPU
	// completed its warm-up frames: measurement then starts from a
	// colder state than configured. This previously went unreported.
	WarmupCapped bool

	// Stalled is set when the progress watchdog observed StallWindows
	// consecutive windows with zero forward progress (no core retired,
	// no GPU fill arrived, no frame completed) and abandoned the run;
	// StallCycle is the cycle it fired. A stalled result is still
	// deterministic for its (config, workload) key.
	Stalled    bool
	StallCycle uint64

	// Interrupted is set when Config.Interrupt ended the run early
	// (context cancellation or a wall-clock timeout). Interrupted
	// results are partial and wall-clock dependent — the experiment
	// Runner reports them as errors and never journals them.
	Interrupted bool
}

// GPUBandwidthBytes returns total GPU DRAM traffic.
func (r Result) GPUBandwidthBytes() uint64 { return r.GPUReadBytes + r.GPUWriteBytes }

// MeanIPC returns the arithmetic mean of per-core IPCs.
func (r Result) MeanIPC() float64 { return stats.Mean(r.IPC) }

// Progress-watchdog and interrupt-polling defaults (DESIGN.md §8).
const (
	// DefaultStallWindow / DefaultStallWindows: a run that makes zero
	// forward progress for 4 consecutive 2M-cycle windows (~8.4M CPU
	// cycles) is declared stalled. Any legitimate run — even a
	// multi-million-cycle GPU frame — retires instructions or receives
	// fills far more often than that; only a genuinely livelocked
	// memory system goes this quiet.
	DefaultStallWindow  uint64 = 2 << 20
	DefaultStallWindows        = 4

	// interruptStride is how many cycles pass between Interrupt
	// polls: a power of two so the hot loop pays one mask-and-test.
	interruptStride = 1 << 14
)

// progress is the watchdog's forward-progress count: total retired
// instructions plus GPU fills received plus frames completed. A slow
// run keeps at least one of these moving every window; a livelocked
// system (e.g. a lost fill the core will wait on forever) moves none.
func progress(s *System) uint64 {
	var p uint64
	for _, c := range s.Cores {
		p += c.Retired()
	}
	if s.GPU != nil {
		p += uint64(s.GPU.FramesDone) + s.GPU.FillsReceived
	}
	return p
}

// watchdog detects stalled runs: `need` consecutive windows of
// `window` cycles each with no forward progress.
type watchdog struct {
	window uint64
	need   int
	next   uint64 // cycle of the next window boundary
	last   uint64 // progress count at the last boundary
	idle   int    // consecutive windows without progress
}

func newWatchdog(cfg Config, s *System) watchdog {
	w := watchdog{window: cfg.StallWindow, need: cfg.StallWindows}
	if w.window == 0 {
		w.window = DefaultStallWindow
	}
	if w.need == 0 {
		w.need = DefaultStallWindows
	}
	w.next = s.cycle + w.window
	w.last = progress(s)
	return w
}

// stalled reports whether the run has made no progress for `need`
// consecutive windows. Called every cycle; cheap (one compare) except
// at window boundaries.
func (w *watchdog) stalled(s *System) bool {
	if w.need < 0 || s.cycle < w.next {
		return false
	}
	w.next = s.cycle + w.window
	if p := progress(s); p != w.last {
		w.last = p
		w.idle = 0
		return false
	}
	w.idle++
	return w.idle >= w.need
}

// Run executes the system through warm-up and measurement and
// returns the results. It is deterministic for a given config and
// workload.
func Run(s *System) Result {
	cfg := s.Cfg
	res := Result{Policy: cfg.Policy}

	// bail folds the two early-exit conditions — watchdog stall and
	// external interrupt — into one per-cycle check shared by both
	// phases. Interrupt is polled on a stride because it may read a
	// channel or the clock; the watchdog is a single compare.
	w := newWatchdog(cfg, s)
	bail := func() bool {
		if w.stalled(s) {
			res.Stalled = true
			res.StallCycle = s.cycle
			return true
		}
		if cfg.Interrupt != nil && s.cycle&(interruptStride-1) == 0 && cfg.Interrupt() {
			res.Interrupted = true
			return true
		}
		return false
	}

	// Stepping engine: the sequential reference loop, or the intra-run
	// parallel engine when the config and machine allow it (DESIGN.md
	// §11). The deferred finish keeps worker goroutines from leaking
	// when a run panics; the explicit finish below settles state before
	// results are read.
	eng := newEngine(s)
	defer eng.finish()

	// Quiescence-driven fast-forward (DESIGN.md §9): before a tick,
	// if every component reports itself dead until some future cycle,
	// bulk-advance the clock to just before the earliest wake and
	// land a normal Tick exactly on it. The jump is additionally
	// bounded so every cycle the reference loop would observe —
	// phase-cap checks, watchdog window boundaries, interrupt-poll
	// and recorder-stride multiples — is still hit by a real Tick at
	// the identical cycle, which is what keeps the golden hashes and
	// obs streams byte-for-byte unchanged. A failed probe (some
	// component busy) backs off exponentially so the probe itself
	// stays off the hot path of active phases: capped at 255 cycles
	// between probes, high enough that a run which never quiesces —
	// a compute-bound core, a saturated mix — pays a vanishing probe
	// tax, low enough that a newly-quiet system is caught within a
	// fraction of a typical DRAM round trip.
	ff := !cfg.NoFastForward
	var ffWait, ffBackoff uint64
	step := func(phaseEnd uint64) {
		if ff {
			switch {
			case ffWait > 0:
				ffWait--
			default:
				t := ffTarget(eng, s, &w, phaseEnd)
				if t > s.cycle {
					eng.skipTo(t)
					ffBackoff = 0
				} else {
					if ffBackoff < 255 {
						ffBackoff = 2*ffBackoff + 1
					}
					ffWait = ffBackoff
				}
			}
		}
		eng.tick()
	}

	// Phase 1: warm-up. Every core must retire WarmupInstr and the
	// GPU (if present) must complete one frame, so that the caches,
	// the row buffers, and the FRPU's learning phase have state.
	warmCap := cfg.MaxCycles / 4
	for s.cycle < warmCap && !warmDone(s) {
		step(warmCap)
		if bail() {
			break
		}
	}
	res.WarmupCapped = !warmDone(s)

	// Snapshot measurement baselines.
	s.LLC.ResetStats()
	s.Mem.ResetStats()
	startCycle := s.cycle
	coreBase := make([]uint64, len(s.Cores))
	for i, c := range s.Cores {
		coreBase[i] = c.Retired()
	}
	frameBase := 0
	if s.GPU != nil {
		frameBase = len(s.GPU.FrameCycles)
	}
	finish := make([]uint64, len(s.Cores))

	// Phase 2: measure until every core has its representative
	// instructions and the GPU has MinFrames. A run already stalled or
	// interrupted during warm-up skips measurement entirely.
	for !res.Stalled && !res.Interrupted && s.cycle-startCycle < cfg.MaxCycles {
		step(startCycle + cfg.MaxCycles)
		done := true
		for i, c := range s.Cores {
			if c.Retired()-coreBase[i] >= cfg.MeasureInstr {
				if finish[i] == 0 {
					finish[i] = s.cycle
				}
			} else {
				done = false
			}
		}
		if s.GPU != nil && len(s.GPU.FrameCycles)-frameBase < cfg.MinFrames {
			done = false
		}
		if done {
			break
		}
		if bail() {
			break
		}
	}
	res.MeasuredCycles = s.cycle - startCycle
	if s.cycle-startCycle >= cfg.MaxCycles {
		res.HitCap = true
	}

	// Settle the engine before reading results: materializes any
	// deferred domain state and joins worker goroutines.
	eng.finish()

	// Per-core IPC over each core's own window (early finishers keep
	// running, as in the paper's methodology).
	for i, c := range s.Cores {
		end := finish[i]
		retired := cfg.MeasureInstr
		if end == 0 {
			end = s.cycle
			retired = c.Retired() - coreBase[i]
		}
		den := float64(end - startCycle)
		if den <= 0 {
			den = 1
		}
		res.IPC = append(res.IPC, float64(retired)/den)
	}

	// GPU metrics over frames completed inside the window.
	if s.GPU != nil {
		fc := s.GPU.FrameCycles[frameBase:]
		res.GPUFrames = len(fc)
		res.GPUFrameCycles = append(res.GPUFrameCycles, fc...)
		var sum uint64
		for _, c := range fc {
			sum += c
		}
		if len(fc) > 0 {
			res.GPUFPS = stats.FPS(float64(sum)/float64(len(fc)), cfg.GPUFreqHz, cfg.Scale)
		}
		targetCycles := 0.0
		if cfg.TargetFPS > 0 {
			targetCycles = cfg.GPUFreqHz / (cfg.TargetFPS * float64(cfg.Scale))
		}
		res.FrameStats = stats.AnalyzeFrames(fc, targetCycles)
	}

	// LLC and DRAM counters (reset at window start).
	res.GPULLCMisses = s.LLC.GPUMisses()
	res.CPULLCMisses = s.LLC.CPUMisses()
	res.GPULLCAccesses = s.LLC.AccessesBySrc[mem.SourceGPU]
	for i := 0; i < len(s.Cores); i++ {
		res.CPULLCAccesses += s.LLC.AccessesBySrc[mem.Source(i)]
	}
	res.GPUReadBytes, res.GPUWriteBytes = s.Mem.GPUBytes()
	for i := 0; i < len(s.Cores); i++ {
		rb, wb := s.Mem.TotalBytes(mem.Source(i))
		res.CPUReadBytes += rb
		res.CPUWriteBytes += wb
	}

	// FRPU accuracy.
	switch {
	case s.Ctrl != nil:
		res.FRPUMeanErrPct = s.Ctrl.FRPU.MeanErrorPct()
		res.FRPUMeanAbsErrPct = s.Ctrl.FRPU.MeanAbsErrorPct()
		res.FRPURelearns = s.Ctrl.FRPU.Relearns
	case s.Dyn != nil:
		res.FRPUMeanErrPct = s.Dyn.FRPU.MeanErrorPct()
		res.FRPUMeanAbsErrPct = s.Dyn.FRPU.MeanAbsErrorPct()
		res.FRPURelearns = s.Dyn.FRPU.Relearns
	}

	// Flush observability: capture the trailing partial window and
	// close any open trace spans. Both are nil-safe no-ops when
	// observability is off.
	s.rec.Sample(s.cycle)
	s.FinishObs()

	return res
}

// ffTarget returns the last provably-dead cycle the engine may skip
// to (the wake lands on the next real Tick), or s.cycle when it must
// tick normally. phaseEnd is the exclusive cycle bound of the running
// phase's loop condition; the other clamps keep watchdog boundaries,
// interrupt polls, and recorder samples on their exact naive-loop
// cycles.
func ffTarget(eng engine, s *System, w *watchdog, phaseEnd uint64) uint64 {
	wake := eng.nextWake()
	if wake <= s.cycle+1 {
		return s.cycle
	}
	t := wake - 1
	clamp := func(c uint64) {
		if c < t {
			t = c
		}
	}
	clamp(phaseEnd - 1)
	if w.need >= 0 {
		clamp(w.next - 1)
	}
	if s.Cfg.Interrupt != nil {
		clamp(s.cycle&^uint64(interruptStride-1) + interruptStride - 1)
	}
	if s.rec != nil {
		if stride := s.rec.Stride(); stride > 0 {
			clamp(s.cycle - s.cycle%stride + stride - 1)
		}
	}
	return t
}

func warmDone(s *System) bool {
	for _, c := range s.Cores {
		if c.Retired() < s.Cfg.WarmupInstr {
			return false
		}
	}
	want := s.Cfg.WarmupFrames
	if want < 1 {
		want = 1
	}
	if s.GPU != nil && s.GPU.FramesDone < want {
		return false
	}
	return true
}

// RunMix builds and runs one heterogeneous mix under cfg.
func RunMix(cfg Config, m workloads.Mix) Result {
	return RunMixObs(cfg, m, nil)
}

// RunMixObs is RunMix with an optional recorder attached; a nil
// recorder makes it identical to RunMix.
func RunMixObs(cfg Config, m workloads.Mix, rec *obs.Recorder) Result {
	game, apps := MixWorkload(cfg, m)
	s := NewSystem(cfg, game, apps)
	s.AttachObs(rec)
	r := Run(s)
	r.MixID = m.ID
	return r
}

// RunCPUAlone measures one CPU application running alone on the CMP
// (core 0, GPU idle) and returns its standalone IPC.
func RunCPUAlone(cfg Config, specID int) float64 {
	return RunCPUAloneObs(cfg, specID, nil)
}

// RunCPUAloneObs is RunCPUAlone with an optional recorder attached.
func RunCPUAloneObs(cfg Config, specID int, rec *obs.Recorder) float64 {
	r := RunCPUAloneResult(cfg, specID, rec)
	if len(r.IPC) == 0 {
		return 0
	}
	return r.IPC[0]
}

// RunCPUAloneResult is RunCPUAloneObs returning the full Result, so
// callers can distinguish a real IPC from a run that stalled or was
// interrupted (core 0's standalone IPC is IPC[0]).
func RunCPUAloneResult(cfg Config, specID int, rec *obs.Recorder) Result {
	app := workloads.MustSpec(specID)
	alone := cfg
	alone.Policy = PolicyBaseline
	alone.MinFrames = 0
	s := NewSystem(alone, nil, []trace.Params{app.Params})
	s.AttachObs(rec)
	return Run(s)
}

// RunGPUAlone measures a game running alone on the CMP (no CPU
// applications) and returns the result (standalone FPS etc.).
func RunGPUAlone(cfg Config, gameName string) Result {
	return RunGPUAloneObs(cfg, gameName, nil)
}

// RunGPUAloneObs is RunGPUAlone with an optional recorder attached.
func RunGPUAloneObs(cfg Config, gameName string, rec *obs.Recorder) Result {
	game := workloads.MustGame(gameName).Model(cfg.Scale, cfg.GPUFreqHz)
	alone := cfg
	alone.Policy = PolicyBaseline
	s := NewSystem(alone, game, nil)
	s.AttachObs(rec)
	r := Run(s)
	r.MixID = gameName
	return r
}
