package sim

import (
	"testing"

	"repro/internal/workloads"
)

// invariantTicks bounds the manual tick loops so the suite stays fast
// under -race.
const invariantTicks = 400_000

// auditEvery is how often (in CPU cycles) the conservation snapshot is
// taken inside the tick loops.
const auditEvery = 4096

// TestReadConservation drives full systems tick by tick and asserts
// the read-request conservation invariant at every sampled cycle:
// every read ever injected toward the memory system is either
// delivered back to its requester or accounted in exactly one
// in-flight location (ring, spill buffer, LLC, or DRAM via the LLC's
// waiting list).
func TestReadConservation(t *testing.T) {
	m := workloads.EvalMixes()[6] // M7
	for _, p := range []Policy{PolicyBaseline, PolicyThrottleCPUPrio, PolicyHeLM, PolicySMS09} {
		p := p
		t.Run(p.String(), func(t *testing.T) {
			cfg := fastCfg()
			cfg.Policy = p
			game, apps := MixWorkload(cfg, m)
			s := NewSystem(cfg, game, apps)
			for i := 0; i < invariantTicks; i++ {
				s.Tick()
				if s.Cycle()%auditEvery != 0 {
					continue
				}
				a := s.AuditReads()
				if !a.Conserved() {
					t.Fatalf("cycle %d: reads not conserved: injected %d != delivered %d + in-flight %d",
						s.Cycle(), a.Injected, a.Delivered, a.InFlight)
				}
			}
			// The run must have actually exercised the memory system.
			final := s.AuditReads()
			if final.Injected == 0 || final.Delivered == 0 {
				t.Fatalf("no read traffic flowed: %+v", final)
			}
		})
	}
}

// TestReadConservationCPUOnly covers the no-GPU wiring (standalone CPU
// runs drop the GPU node entirely).
func TestReadConservationCPUOnly(t *testing.T) {
	cfg := fastCfg()
	cfg.MinFrames = 0
	_, apps := MixWorkload(cfg, workloads.EvalMixes()[6])
	s := NewSystem(cfg, nil, apps)
	for i := 0; i < invariantTicks; i++ {
		s.Tick()
		if s.Cycle()%auditEvery == 0 {
			if a := s.AuditReads(); !a.Conserved() {
				t.Fatalf("cycle %d: %+v not conserved", s.Cycle(), a)
			}
		}
	}
}

// TestMonotoneCounters asserts that the cycle and cumulative-work
// counters the observability layer samples never move backwards
// during a run (ResetStats is a run-phase boundary, not a tick-level
// event, and is exercised separately by the Recorder tests).
func TestMonotoneCounters(t *testing.T) {
	cfg := fastCfg()
	cfg.Policy = PolicyThrottleCPUPrio
	game, apps := MixWorkload(cfg, workloads.EvalMixes()[6])
	s := NewSystem(cfg, game, apps)

	var lastCycle, lastGPU uint64
	lastRetired := make([]uint64, len(s.Cores))
	for i := 0; i < invariantTicks; i++ {
		s.Tick()
		if s.Cycle() <= lastCycle {
			t.Fatalf("system cycle did not advance: %d -> %d", lastCycle, s.Cycle())
		}
		lastCycle = s.Cycle()
		if s.Cycle()%auditEvery != 0 {
			continue
		}
		if g := s.GPU.Cycle(); g < lastGPU {
			t.Fatalf("GPU cycle went backwards: %d -> %d", lastGPU, g)
		} else {
			lastGPU = g
		}
		for ci, c := range s.Cores {
			if r := c.Retired(); r < lastRetired[ci] {
				t.Fatalf("core %d retired went backwards: %d -> %d", ci, lastRetired[ci], r)
			} else {
				lastRetired[ci] = r
			}
		}
	}
	if lastGPU == 0 {
		t.Fatal("GPU never ticked")
	}
}

// TestAuditReadsIsReadOnly: taking the snapshot must not perturb the
// simulation (the invariant and golden suites interleave audits with
// measured runs).
func TestAuditReadsIsReadOnly(t *testing.T) {
	cfg := fastCfg()
	m := workloads.EvalMixes()[6]
	game, apps := MixWorkload(cfg, m)

	plain := NewSystem(cfg, game, apps)
	audited := NewSystem(cfg, game, apps)
	for i := 0; i < invariantTicks/4; i++ {
		plain.Tick()
		audited.Tick()
		if i%1000 == 0 {
			audited.AuditReads()
			audited.AuditReads() // twice: must be idempotent too
		}
	}
	a, b := plain.AuditReads(), audited.AuditReads()
	if a != b {
		t.Fatalf("audit perturbed the run: %+v vs %+v", a, b)
	}
	if plain.Cycle() != audited.Cycle() || plain.GPU.Cycle() != audited.GPU.Cycle() {
		t.Fatal("audited system diverged from plain system")
	}
}
