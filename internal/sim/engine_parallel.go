package sim

import (
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/cpu"
	"repro/internal/mem"
	"repro/internal/ring"
)

// This file implements the intra-run parallel tick engine (DESIGN.md
// §11). The System is partitioned into independently steppable
// domains — each CPU core and the GPU — whose Tick methods touch only
// their own state plus their issue path. Every cycle splits into two
// phases separated by a barrier:
//
//   - phase M (merge; conductor goroutine only): ring movement, fault
//     polls, LLC intake and fills, LLC.Tick, Mem.Tick — everything in
//     System.Tick up to the component ticks, in the identical order.
//     Workers are barrier-idle, so phase M may mutate domain state
//     directly (OnFill, Invalidate, skip-debt materialization).
//   - phase C (compute; workers): the engaged domains' Core.Tick and
//     GPU.Tick run concurrently. Cross-domain traffic they produce is
//     not sent to the ring directly: each domain's Issue closure is
//     redirected into a private staging ring.Mailbox.
//
// After the barrier the conductor flushes the mailboxes in fixed order
// (GPU first, then cores ascending — the order the sequential loop
// ticks them). Order across domains is in fact immaterial: the ring
// keeps one injection queue per source node, so messages from
// different domains never interleave within a queue; the fixed order
// is belt and braces that keeps the merge trivially deterministic.
//
// Skip debt is the epoch mechanism. A domain whose cached NextWake
// proves it dead at this cycle is not engaged; the conductor instead
// increments its debt, up to Config.EpochLen. Debt is materialized
// (Core.Skip/GPU.Skip — the same bulk-advance fast-forward uses,
// proven by the PR 4 differential suite) before anything can observe
// the domain: an arriving fill, a back-invalidation, a recorder
// sample cycle, an engagement, or a fast-forward probe. Because
// materialization replays exactly the stall cycles the elided ticks
// would have burned, results are invariant under EpochLen
// (TestParallelEpochLenInvariance randomizes it).
//
// GPU skip debt is counted in GPU cycles at divider boundaries, and is
// disabled entirely under policies whose phase-M closures read GPU
// state mid-cycle (DynPrio's FrameElapsed from the DRAM scheduler,
// HeLM's latency-tolerance probe from LLC lookup): a stale g.cycle
// there would diverge. Under those policies the GPU engages on every
// divider boundary. The throttling controller's ATU is debt-safe: a
// denied Allow against a closed, unexpired gate only increments the
// denial counter, which GPU.Skip replays via SkipDenied.

// parDomain is one independently steppable unit: a core or the GPU.
type parDomain struct {
	core *cpu.Core // nil for the GPU domain
	mb   ring.Mailbox

	// engage is written by the conductor before the phase-C signal and
	// read by the owning worker after it (ordered by the cmd atomic).
	engage bool

	// wake caches the domain's NextWake from its last engagement
	// (absolute CPU cycle for cores, GPU cycle for the GPU; 0 = busy).
	wake uint64
	// debt counts elided Ticks not yet materialized (CPU cycles for
	// cores, GPU cycles for the GPU).
	debt uint64
}

// parWorker is one phase-C goroutine and its domain share. cmd/ack are
// monotone counters: the conductor bumps cmd to release a cycle of
// work and spins on ack; sync/atomic gives the release/acquire
// ordering the race detector recognizes, so everything the conductor
// wrote before cmd.Add is visible to the worker and vice versa.
type parWorker struct {
	cmd, ack atomic.Uint64
	domains  []*parDomain
	panicVal any
}

type parEngine struct {
	s        *System
	cores    []*parDomain // index-aligned with s.Cores
	gpu      *parDomain   // nil when no GPU
	workers  []*parWorker // workers[0] runs inline on the conductor
	epochLen uint64
	stride   uint64 // recorder sampling stride (0 = no recorder)
	gpuDebt  bool   // GPU skip debt allowed under this policy
	spin     int    // barrier spin iterations before Gosched
	curCycle uint64 // s.cycle of the phase C in flight (workers read)

	stop atomic.Bool
	wg   sync.WaitGroup
	done bool

	// Restored on finish.
	savedIssues  []func(*mem.Request) bool
	savedGPU     func(*mem.Request) bool
	savedBackInv func(mem.Source, uint64)

	// Local tallies, flushed to the package counters on finish.
	ticks, skips uint64
}

func newParEngine(s *System) *parEngine {
	e := &parEngine{
		s:        s,
		epochLen: uint64(s.Cfg.EpochLen),
		stride:   s.rec.Stride(),
		gpuDebt:  s.Dyn == nil && s.HeLM == nil,
	}
	if e.epochLen == 0 {
		e.epochLen = DefaultEpochLen
	}
	if runtime.GOMAXPROCS(0) > 1 {
		e.spin = 200
	}

	// Build domains and redirect their issue paths into mailboxes.
	for i, c := range s.Cores {
		d := &parDomain{core: c}
		d.mb.Reserve(8)
		node := ring.NodeID(i)
		e.savedIssues = append(e.savedIssues, c.Issue)
		c.Issue = func(r *mem.Request) bool {
			d.mb.Post(ring.Msg{From: node, To: s.llcNode, Payload: r})
			return true
		}
		e.cores = append(e.cores, d)
	}
	if s.GPU != nil {
		d := &parDomain{}
		d.mb.Reserve(8)
		e.savedGPU = s.GPU.Issue
		s.GPU.Issue = func(r *mem.Request) bool {
			d.mb.Post(ring.Msg{From: s.gpuNode, To: s.llcNode, Payload: r})
			return true
		}
		e.gpu = d
	}

	// Back-invalidations reach a core from LLC.Tick (phase M): settle
	// the core's debt first so the write-back it may push carries the
	// right birth cycle, and force engagement — its state changed.
	e.savedBackInv = s.LLC.BackInvalidate
	s.LLC.BackInvalidate = func(src mem.Source, line uint64) {
		if int(src) < len(e.cores) {
			d := e.cores[src]
			e.materialize(d)
			d.wake = 0
		}
		e.savedBackInv(src, line)
	}

	// Round-robin domains over min(threads, domains) workers. Worker 0
	// has no goroutine: the conductor runs its share inline while the
	// others work, so two-thread runs cost one handoff, not two.
	all := make([]*parDomain, 0, len(e.cores)+1)
	if e.gpu != nil {
		all = append(all, e.gpu)
	}
	for _, d := range e.cores {
		all = append(all, d)
	}
	nw := effectiveThreads(s.Cfg)
	if nw > len(all) {
		nw = len(all)
	}
	e.workers = make([]*parWorker, nw)
	for i := range e.workers {
		e.workers[i] = &parWorker{}
	}
	for i, d := range all {
		w := e.workers[i%nw]
		w.domains = append(w.domains, d)
	}
	for _, w := range e.workers[1:] {
		e.wg.Add(1)
		go e.workerLoop(w)
	}
	return e
}

// materialize settles a domain's skip debt via the component's Skip.
func (e *parEngine) materialize(d *parDomain) {
	if d.debt == 0 {
		return
	}
	if d.core != nil {
		d.core.Skip(d.debt)
	} else {
		e.s.GPU.Skip(d.debt)
	}
	d.debt = 0
}

// runDomain executes one domain's Tick for the cycle in flight.
func (e *parEngine) runDomain(d *parDomain) {
	if d.core != nil {
		d.core.Tick()
	} else {
		e.s.GPU.Tick(e.curCycle)
	}
}

// workerLoop is the phase-C body of one goroutine worker.
func (e *parEngine) workerLoop(w *parWorker) {
	defer e.wg.Done()
	var last uint64
	for {
		for i := 0; w.cmd.Load() == last; i++ {
			if i >= e.spin {
				runtime.Gosched()
			}
		}
		last++
		if e.stop.Load() {
			return
		}
		func() {
			defer func() {
				if p := recover(); p != nil {
					w.panicVal = p
				}
			}()
			for _, d := range w.domains {
				if d.engage {
					e.runDomain(d)
				}
			}
		}()
		w.ack.Store(last)
	}
}

// tick advances the system one CPU cycle: phase M mirrors System.Tick
// through Mem.Tick (any edit there must be replicated here — the
// differential suite catches divergence), then phase C runs the
// engaged domains concurrently, then the conductor merges.
func (e *parEngine) tick() {
	s := e.s
	s.cycle++
	e.ticks++
	// Scenario transitions mirror System.Tick's hook. Settling every
	// domain first makes Apply observe — and mutate — the exact state
	// the sequential loop would have at this cycle; boundaries are
	// rare, so the extra materialization is noise.
	if s.scenario != nil && s.cycle >= s.scNext {
		e.settleAll()
		s.scenario.Apply(s, s.cycle)
		s.scNext = s.scenario.NextChange(s.cycle)
		// A mutated domain's cached wake bound may no longer be a
		// proof of deadness; engaging everything for this one cycle is
		// always equivalent to the sequential loop.
		for _, d := range e.cores {
			d.wake = 0
		}
		if e.gpu != nil {
			e.gpu.wake = 0
		}
	}
	s.Ring.Tick()

	holdLLC := s.faults != nil && s.faults.HoldLLCIntake(s.cycle)
	holdDRAM := s.faults != nil && s.faults.HoldDRAM(s.cycle)

	for _, m := range s.Ring.Receive(s.llcNode) {
		s.spill.Push(m.Payload.(*mem.Request))
	}
	for !holdLLC && s.spill.Len() > 0 && s.LLC.Enqueue(s.spill.Front()) {
		s.spill.Pop()
	}
	for i := range s.Cores {
		for _, m := range s.Ring.Receive(ring.NodeID(i)) {
			r := m.Payload.(*mem.Request)
			if !r.Write {
				if s.faults != nil && s.faults.DropFill(s.cycle) {
					continue
				}
				d := e.cores[i]
				e.materialize(d)
				d.wake = 0 // fill may unblock the core: engage it
				s.Cores[i].OnFill(r)
			}
		}
	}
	if s.GPU != nil {
		for _, m := range s.Ring.Receive(s.gpuNode) {
			r := m.Payload.(*mem.Request)
			if !r.Write {
				if s.faults != nil && s.faults.DropFill(s.cycle) {
					continue
				}
				e.materialize(e.gpu)
				e.gpu.wake = 0
				s.GPU.OnFill(r)
			}
		}
	}

	s.LLC.Tick()
	if !holdDRAM {
		s.Mem.Tick()
	}

	// Phase C: decide engagement. A recorder sample lands on this cycle
	// forces every domain to a consistent state first (the sample reads
	// all counters); cores additionally engage so their Tick burns this
	// cycle's stall itself, exactly as the sequential loop would.
	force := e.stride > 0 && s.cycle%e.stride == 0
	for _, d := range e.cores {
		if !force && d.wake > s.cycle && d.debt < e.epochLen {
			d.debt++
			d.engage = false
			e.skips++
		} else {
			e.materialize(d)
			d.engage = true
		}
	}
	div := s.Cfg.GPUDivider
	onDiv := s.GPU != nil && s.cycle%div == 0
	if e.gpu != nil {
		nowG := s.cycle / div
		switch {
		case !onDiv:
			// The GPU does not run between divider boundaries; only
			// settle its debt if this cycle's sample will read it.
			e.gpu.engage = false
			if force {
				e.materialize(e.gpu)
			}
		case !force && e.gpuDebt && e.gpu.wake > nowG && e.gpu.debt < e.epochLen:
			e.gpu.debt++
			e.gpu.engage = false
			e.skips++
		default:
			e.materialize(e.gpu)
			e.gpu.engage = true
		}
	}

	// Release the goroutine workers that have work this cycle, run the
	// conductor's own share, then wait for the acks.
	e.curCycle = s.cycle
	released := 0
	for _, w := range e.workers[1:] {
		for _, d := range w.domains {
			if d.engage {
				w.cmd.Add(1)
				released++
				break
			}
		}
	}
	for _, d := range e.workers[0].domains {
		if d.engage {
			e.runDomain(d)
		}
	}
	if released > 0 {
		for _, w := range e.workers[1:] {
			want := w.cmd.Load()
			for i := 0; w.ack.Load() != want; i++ {
				if i >= e.spin {
					runtime.Gosched()
				}
			}
			if p := w.panicVal; p != nil {
				panic(p) // preserve exp's per-run panic isolation
			}
		}
	}

	// Merge: refresh wake caches, flush staged traffic in fixed order,
	// then the recorder hook — after all domain ticks, as in the
	// sequential loop.
	for i, d := range e.cores {
		if d.engage {
			d.wake = s.Cores[i].NextWake(s.cycle)
		}
	}
	if e.gpu != nil && e.gpu.engage {
		e.gpu.wake = s.GPU.NextWake(s.cycle / div)
	}
	if e.gpu != nil {
		e.gpu.mb.FlushTo(s.Ring)
	}
	for _, d := range e.cores {
		d.mb.FlushTo(s.Ring)
	}
	s.rec.OnTick(s.cycle)
}

// settleAll materializes every domain's debt, making the System's
// state identical to the sequential loop's at this cycle.
func (e *parEngine) settleAll() {
	for _, d := range e.cores {
		e.materialize(d)
	}
	if e.gpu != nil {
		e.materialize(e.gpu)
	}
}

func (e *parEngine) nextWake() uint64 {
	e.settleAll()
	return e.s.NextWake()
}

func (e *parEngine) skipTo(target uint64) {
	e.settleAll()
	e.s.SkipTo(target)
}

// finish settles all debt, restores the issue and back-invalidation
// wiring, and joins the workers. Idempotent.
func (e *parEngine) finish() {
	if e.done {
		return
	}
	e.done = true
	e.settleAll()
	for i, c := range e.s.Cores {
		c.Issue = e.savedIssues[i]
	}
	if e.s.GPU != nil {
		e.s.GPU.Issue = e.savedGPU
	}
	e.s.LLC.BackInvalidate = e.savedBackInv
	e.stop.Store(true)
	for _, w := range e.workers[1:] {
		w.cmd.Add(1)
	}
	e.wg.Wait()
	engParallelTicks.Add(e.ticks)
	engDomainSkips.Add(e.skips)
}
