package sim

import (
	"testing"

	"repro/internal/workloads"
)

// fastCfg returns a configuration small enough for unit tests.
func fastCfg() Config {
	cfg := DefaultConfig(128)
	cfg.WarmupInstr = 100_000
	cfg.WarmupFrames = 3
	cfg.MeasureInstr = 250_000
	cfg.MinFrames = 2
	cfg.MaxCycles = 40_000_000
	return cfg
}

func TestBaselineMixRunCompletes(t *testing.T) {
	r := RunMix(fastCfg(), workloads.EvalMixes()[6]) // M7
	if r.HitCap {
		t.Fatalf("baseline run hit the cycle cap")
	}
	if len(r.IPC) != 4 {
		t.Fatalf("want 4 IPCs, got %v", r.IPC)
	}
	for i, ipc := range r.IPC {
		if ipc <= 0 {
			t.Fatalf("core%d IPC = %v", i, ipc)
		}
	}
	if r.GPUFPS <= 0 || r.GPUFrames < 2 {
		t.Fatalf("GPU made no progress: fps=%v frames=%d", r.GPUFPS, r.GPUFrames)
	}
	if r.GPULLCAccesses == 0 || r.CPULLCAccesses == 0 {
		t.Fatalf("no LLC traffic: %+v", r)
	}
	if r.GPUReadBytes == 0 {
		t.Fatalf("no GPU DRAM traffic")
	}
}

func TestDeterministicResults(t *testing.T) {
	m := workloads.EvalMixes()[6]
	a := RunMix(fastCfg(), m)
	b := RunMix(fastCfg(), m)
	if a.GPUFPS != b.GPUFPS || a.MeasuredCycles != b.MeasuredCycles {
		t.Fatalf("non-deterministic: %v/%v vs %v/%v", a.GPUFPS, a.MeasuredCycles, b.GPUFPS, b.MeasuredCycles)
	}
	for i := range a.IPC {
		if a.IPC[i] != b.IPC[i] {
			t.Fatalf("IPC[%d] differs", i)
		}
	}
}

func TestStandaloneGPUFasterThanHetero(t *testing.T) {
	cfg := fastCfg()
	m := workloads.EvalMixes()[6] // DOOM3
	alone := RunGPUAlone(cfg, m.Game)
	het := RunMix(cfg, m)
	if het.GPUFPS > alone.GPUFPS*1.05 {
		t.Fatalf("hetero GPU (%.1f) faster than standalone (%.1f)", het.GPUFPS, alone.GPUFPS)
	}
}

func TestThrottleShiftsPerformanceToCPU(t *testing.T) {
	cfg := fastCfg()
	cfg.WarmupFrames = 6
	m := workloads.EvalMixes()[12] // M13/UT2004, far above target
	base := RunMix(cfg, m)
	cfg.Policy = PolicyThrottleCPUPrio
	pri := RunMix(cfg, m)
	if base.GPUFPS < 40 {
		t.Skipf("baseline FPS %.1f below target at this scale; throttle not exercised", base.GPUFPS)
	}
	if pri.GPUFPS >= base.GPUFPS {
		t.Fatalf("throttled GPU not slower: %.1f vs %.1f", pri.GPUFPS, base.GPUFPS)
	}
	ws := 0.0
	for i := range pri.IPC {
		ws += pri.IPC[i] / base.IPC[i]
	}
	ws /= float64(len(pri.IPC))
	if ws <= 1.0 {
		t.Fatalf("throttling did not improve CPU mix: ws=%.3f", ws)
	}
	// The GPU must not collapse far below the QoS target.
	if pri.GPUFPS < cfg.TargetFPS*0.6 {
		t.Fatalf("throttled GPU fell to %.1f FPS (target %.0f)", pri.GPUFPS, cfg.TargetFPS)
	}
}

func TestLowFPSMixNotThrottled(t *testing.T) {
	cfg := fastCfg()
	m := workloads.EvalMixes()[5] // M6/Crysis, ~7 FPS
	base := RunMix(cfg, m)
	cfg.Policy = PolicyThrottleCPUPrio
	thr := RunMix(cfg, m)
	if base.GPUFPS > 40 {
		t.Skipf("Crysis unexpectedly above target (%.1f)", base.GPUFPS)
	}
	lo, hi := base.GPUFPS*0.93, base.GPUFPS*1.07
	if thr.GPUFPS < lo || thr.GPUFPS > hi {
		t.Fatalf("below-target GPU was perturbed: base %.2f vs throttled %.2f", base.GPUFPS, thr.GPUFPS)
	}
}

func TestAllPoliciesComplete(t *testing.T) {
	m := workloads.EvalMixes()[6]
	for _, p := range []Policy{
		PolicyBaseline, PolicyThrottle, PolicyThrottleCPUPrio,
		PolicySMS09, PolicySMS0, PolicyDynPrio, PolicyHeLM, PolicyForcedBypass,
	} {
		cfg := fastCfg()
		cfg.Policy = p
		r := RunMix(cfg, m)
		if r.HitCap {
			t.Errorf("%v: hit cycle cap", p)
		}
		if r.GPUFrames == 0 {
			t.Errorf("%v: no frames", p)
		}
	}
}

func TestForcedBypassLeavesNoGPUFills(t *testing.T) {
	cfg := fastCfg()
	cfg.Policy = PolicyForcedBypass
	m := workloads.EvalMixes()[6]
	game, apps := MixWorkload(cfg, m)
	s := NewSystem(cfg, game, apps)
	Run(s)
	if s.LLC.Bypassed == 0 {
		t.Fatalf("forced bypass never bypassed")
	}
	// GPU may still hold write-allocated (color/depth flush) lines,
	// but read fills should be gone; occupancy must be well below the
	// baseline's ~60-80%.
	if occ := s.LLC.GPUOccupancy(); occ > 0.9 {
		t.Fatalf("GPU occupies %.0f%% of LLC despite read bypass", occ*100)
	}
}

func TestHeLMBypassesOnlyShaderClasses(t *testing.T) {
	cfg := fastCfg()
	cfg.Policy = PolicyHeLM
	m := workloads.EvalMixes()[6]
	game, apps := MixWorkload(cfg, m)
	s := NewSystem(cfg, game, apps)
	Run(s)
	if s.HeLM == nil {
		t.Fatalf("HeLM policy not installed")
	}
	if s.HeLM.Consults == 0 {
		t.Fatalf("HeLM never consulted")
	}
}

func TestFRPUAccuracyUnderThrottle(t *testing.T) {
	cfg := fastCfg()
	cfg.Policy = PolicyThrottle
	cfg.WarmupFrames = 5
	m := workloads.EvalMixes()[6]
	r := RunMix(cfg, m)
	if r.FRPUMeanAbsErrPct > 15 {
		t.Fatalf("FRPU |error| = %.1f%%, want near paper's <6%%", r.FRPUMeanAbsErrPct)
	}
}

func TestCPUAloneBeatsHetero(t *testing.T) {
	cfg := fastCfg()
	cfg.NumCPUs = 1
	m := workloads.MotivationMixes()[6] // W7
	alone := RunCPUAlone(cfg, m.SpecIDs[0])
	het := RunMix(cfg, m)
	if len(het.IPC) != 1 {
		t.Fatalf("want 1 core, got %d", len(het.IPC))
	}
	if het.IPC[0] > alone*1.05 {
		t.Fatalf("hetero CPU (%.3f) faster than standalone (%.3f)", het.IPC[0], alone)
	}
}

func TestGPUAloneNoCPUNoCrash(t *testing.T) {
	cfg := fastCfg()
	cfg.NumCPUs = 0
	r := RunGPUAlone(cfg, "UT2004")
	if r.GPUFrames < 2 || len(r.IPC) != 0 {
		t.Fatalf("bad standalone GPU run: %+v", r)
	}
}

func TestCMBALPolicyRunsAndFailsToRegulate(t *testing.T) {
	// The paper's §IV analysis: shader-core throttling cannot pull
	// the frame rate down to the QoS target the way the GTT gate can.
	cfg := fastCfg()
	m := workloads.EvalMixes()[12] // UT2004, far above target
	base := RunMix(cfg, m)
	if base.GPUFPS < 40 {
		t.Skipf("baseline below target at this scale (%.1f)", base.GPUFPS)
	}
	cfg.Policy = PolicyCMBAL
	game, apps := MixWorkload(cfg, m)
	s := NewSystem(cfg, game, apps)
	r := Run(s)
	if s.CMBAL == nil {
		t.Fatalf("CM-BAL not installed")
	}
	if r.GPUFrames == 0 {
		t.Fatalf("CM-BAL run made no progress")
	}
	cfgT := cfg
	cfgT.Policy = PolicyThrottleCPUPrio
	thr := RunMix(cfgT, m)
	// The GTT gate must get (much) closer to the 40 FPS target than
	// shader-core throttling does.
	if !(thr.GPUFPS < r.GPUFPS) {
		t.Fatalf("GTT throttling (%.1f FPS) did not undercut CM-BAL (%.1f FPS)",
			thr.GPUFPS, r.GPUFPS)
	}
}
