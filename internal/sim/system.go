// Package sim wires the substrates into the simulated heterogeneous
// CMP of Table I — four (configurable) CPU cores, one GPU, a shared
// LLC on a bidirectional ring, and two DDR3-2133 memory controllers —
// and runs heterogeneous and standalone experiments under each of the
// paper's memory-system management policies.
package sim

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/cache"
	qos "repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/dram"
	"repro/internal/gpu"
	"repro/internal/llc"
	"repro/internal/mem"
	"repro/internal/obs"
	"repro/internal/policy"
	"repro/internal/ring"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// Policy selects the memory-system management scheme for a run.
type Policy int

// Policies evaluated in the paper.
const (
	// PolicyBaseline: FR-FCFS DRAM scheduling, no gate, no bypass.
	PolicyBaseline Policy = iota
	// PolicyThrottle: the proposal's FRPU+ATU GPU access throttling.
	PolicyThrottle
	// PolicyThrottleCPUPrio: throttling plus boosted CPU priority in
	// the DRAM scheduler while throttled (the full proposal,
	// "ThrotCPUprio" in Figs. 12–14).
	PolicyThrottleCPUPrio
	// PolicySMS09: staged memory scheduler, shortest-batch-first
	// probability 0.9.
	PolicySMS09
	// PolicySMS0: staged memory scheduler, pure round-robin.
	PolicySMS0
	// PolicyDynPrio: dynamic priority scheduling (GPU express lane in
	// the last decile of the frame-time budget).
	PolicyDynPrio
	// PolicyHeLM: selective LLC bypass of latency-tolerant GPU shader
	// fills.
	PolicyHeLM
	// PolicyForcedBypass: all GPU read-miss fills bypass the LLC
	// (the Fig. 3 motivation study).
	PolicyForcedBypass
	// PolicyCMBAL: shader-core-centric concurrency throttling (§IV),
	// reproduced to show why it cannot regulate the frame rate.
	PolicyCMBAL
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case PolicyBaseline:
		return "Baseline"
	case PolicyThrottle:
		return "Throttled"
	case PolicyThrottleCPUPrio:
		return "ThrotCPUprio"
	case PolicySMS09:
		return "SMS-0.9"
	case PolicySMS0:
		return "SMS-0"
	case PolicyDynPrio:
		return "DynPrio"
	case PolicyHeLM:
		return "HeLM"
	case PolicyForcedBypass:
		return "ForcedBypass"
	case PolicyCMBAL:
		return "CM-BAL"
	}
	return fmt.Sprintf("Policy(%d)", int(p))
}

// policyNames maps the CLI spellings to policies: the short flag forms
// the tools accept plus each policy's canonical String form, all
// matched case-insensitively by ParsePolicy.
var policyNames = map[string]Policy{
	"baseline":      PolicyBaseline,
	"throttle":      PolicyThrottle,
	"throttled":     PolicyThrottle,
	"throttle+prio": PolicyThrottleCPUPrio,
	"throtcpuprio":  PolicyThrottleCPUPrio,
	"sms09":         PolicySMS09,
	"sms-0.9":       PolicySMS09,
	"sms0":          PolicySMS0,
	"sms-0":         PolicySMS0,
	"dynprio":       PolicyDynPrio,
	"helm":          PolicyHeLM,
	"bypass":        PolicyForcedBypass,
	"forcedbypass":  PolicyForcedBypass,
	"cmbal":         PolicyCMBAL,
	"cm-bal":        PolicyCMBAL,
}

// ParsePolicy resolves a policy name as the command-line tools spell
// it ("baseline", "throttle", "throttle+prio", "sms09", "sms0",
// "dynprio", "helm", "bypass", "cmbal") or as Policy.String renders
// it, case-insensitively.
func ParsePolicy(name string) (Policy, error) {
	if p, ok := policyNames[strings.ToLower(strings.TrimSpace(name))]; ok {
		return p, nil
	}
	return 0, fmt.Errorf("sim: unknown policy %q (baseline, throttle, throttle+prio, sms09, sms0, dynprio, helm, bypass, cmbal)", name)
}

// FaultInjector perturbs a running System deterministically; see
// internal/faultinject for the seed-driven implementations used by the
// chaos suite. Every hook is polled from inside Tick, so
// implementations must be cheap and must depend only on their own
// state and the cycle number — same injector state plus same cycle
// sequence must produce the same faults, or run determinism is lost.
type FaultInjector interface {
	// HoldLLCIntake reports whether the LLC refuses ring arrivals this
	// cycle (a queue-full back-pressure burst); held requests wait in
	// the spill queue, nothing is lost.
	HoldLLCIntake(cycle uint64) bool
	// HoldDRAM reports whether the memory controllers skip this cycle
	// (a bank-stall burst).
	HoldDRAM(cycle uint64) bool
	// DropFill reports whether this read-fill delivery is dropped on
	// the response path (a lost ring slot). Dropping loses a request
	// forever and breaks read conservation by design: it is how the
	// chaos tests livelock a core to prove the progress watchdog
	// fires.
	DropFill(cycle uint64) bool
}

// WakeFaultInjector is optionally implemented by a FaultInjector that
// can predict itself (DESIGN.md §9): NextFault returns the earliest
// cycle > now at which HoldLLCIntake or HoldDRAM may return true
// (^uint64(0) = never), so the fast-forward engine can elide the
// provably-false polls in between. Implementations must guarantee
// that a hold call returning false moves no observable state, and the
// bound must be conservative: reporting a fault earlier than it fires
// only costs a wasted tick, reporting it later breaks determinism.
// An injector without this interface disables fast-forwarding for the
// whole run (the safe fallback for the chaos suite's ad-hoc
// injectors).
type WakeFaultInjector interface {
	FaultInjector
	NextFault(now uint64) uint64
}

// Scenario mutates a running System at declared cycle boundaries —
// phase schedules that retarget the GPU's frame workload or swap a
// core's instruction stream mid-run (internal/scenario implements it;
// the interface lives here, like FaultInjector, so sim need not import
// the package that drives it). The contract mirrors
// WakeFaultInjector: Apply must mutate only through the published
// levers (SetCoreWorkload, Core.SetSource, GPU.SetWorkScale), all of
// which are safe with outstanding skip debt, and NextChange must be
// exact — the engines land a real Tick on every boundary it reports,
// and never tick Apply between boundaries. Same schedule plus same
// cycle sequence must produce the same mutations, or run determinism
// (and the scenario property suite) is lost.
type Scenario interface {
	// Apply performs every transition due at or before cycle. It runs
	// at the top of the boundary cycle's Tick, before any component
	// steps.
	Apply(s *System, cycle uint64)
	// NextChange returns the earliest cycle > now at which Apply must
	// run again (^uint64(0) = no further transitions).
	NextChange(now uint64) uint64
}

// Config parameterizes a simulated system.
type Config struct {
	Scale      int     // capacity/work divisor (1 = paper-size)
	NumCPUs    int     // CPU cores (4 for evaluation, 1 for motivation)
	CPUFreqHz  float64 // 4 GHz
	GPUFreqHz  float64 // 1 GHz
	GPUDivider uint64  // CPU cycles per GPU cycle
	TargetFPS  float64 // QoS threshold (40 FPS)
	Policy     Policy
	// CPUPrefetch enables the cores' L2 stride streamers (off in the
	// paper configurations; exercised by the prefetch ablation).
	CPUPrefetch bool
	// LLCDRRIP switches the shared LLC from the paper's SRRIP to
	// set-dueling DRRIP (beyond-paper LLC-policy ablation).
	LLCDRRIP bool

	// Termination.
	WarmupInstr  uint64 // per-core warm-up instructions (caches warm)
	WarmupFrames int    // GPU frames before measurement (controller settles)
	MeasureInstr uint64 // per-core representative instructions
	MinFrames    int    // GPU frames required inside the window
	MaxCycles    uint64 // hard cap

	// Robustness (DESIGN.md §8).

	// StallWindow is the width in CPU cycles of one progress-watchdog
	// window (0 = DefaultStallWindow). StallWindows is how many
	// consecutive windows without any forward progress — no core
	// retirement, no GPU fill, no completed frame — mark the run as
	// stalled (0 = DefaultStallWindows; negative disables the
	// watchdog).
	StallWindow  uint64
	StallWindows int
	// Interrupt, when non-nil, is polled every few thousand cycles;
	// once it returns true the run ends at the next poll with
	// Result.Interrupted set. The experiment Runner threads context
	// cancellation and its per-run wall-clock timeout through this
	// hook.
	Interrupt func() bool
	// Faults, when non-nil, injects deterministic perturbations into
	// Tick (back-pressure, DRAM stalls, dropped fills). Nil costs
	// nothing and changes nothing.
	Faults FaultInjector

	// Scenario, when non-nil, applies time-varying workload
	// transitions at declared cycle boundaries (DESIGN.md §12). Nil —
	// every static mix run — costs one comparison per Tick and changes
	// nothing, which is why the golden hashes are the scenario
	// engine's degenerate case.
	Scenario Scenario

	// NoFastForward disables the quiescence-driven fast-forward in
	// Run (DESIGN.md §9), forcing the naive tick-every-cycle
	// reference loop. Fast-forward is observably identical to naive
	// ticking — this switch exists so the differential suite can
	// prove exactly that, and as an escape hatch while debugging the
	// engine itself.
	NoFastForward bool

	// Intra-run parallel tick engine (DESIGN.md §11).

	// NoParallel forces the sequential reference loop regardless of
	// IntraThreads — the `-seq` flag on every CLI. Like NoFastForward
	// it exists because the parallel engine is observationally
	// identical and the differential suite proves it.
	NoParallel bool
	// IntraThreads is the worker budget for one run: 0 resolves at Run
	// time (HETSIM_INTRA env var, else GOMAXPROCS), 1 keeps the run
	// sequential, >= 2 engages the parallel engine when the system has
	// at least two steppable domains. The experiment Runner divides
	// GOMAXPROCS by its campaign worker count so intra-run threads and
	// campaign workers never oversubscribe the machine.
	IntraThreads int
	// EpochLen caps, in cycles, how much skip debt the parallel engine
	// lets a quiescent domain accumulate between engagements (0 =
	// DefaultEpochLen). Results are invariant under EpochLen — the
	// differential suite's property probe randomizes it to prove that —
	// so it only trades barrier overhead against wake-bound staleness.
	EpochLen int
}

// Validate reports whether the configuration describes a runnable
// system. CLIs and the experiment Runner call it before any
// simulation starts, so bad input fails with a clear error and a
// non-zero exit instead of a stack trace from deep inside NewSystem.
func (cfg Config) Validate() error {
	switch {
	case cfg.Scale < 1:
		return fmt.Errorf("sim: Scale %d out of range (want >= 1)", cfg.Scale)
	case cfg.NumCPUs < 0 || cfg.NumCPUs > int(mem.SourceGPU):
		return fmt.Errorf("sim: NumCPUs %d out of range [0, %d]", cfg.NumCPUs, int(mem.SourceGPU))
	// The float checks are written as !(ok) so NaN — which fails every
	// comparison — is rejected rather than slipping through.
	case !(cfg.CPUFreqHz > 0) || math.IsInf(cfg.CPUFreqHz, 0):
		return fmt.Errorf("sim: CPUFreqHz %g must be positive and finite", cfg.CPUFreqHz)
	case !(cfg.GPUFreqHz > 0) || math.IsInf(cfg.GPUFreqHz, 0):
		return fmt.Errorf("sim: GPUFreqHz %g must be positive and finite", cfg.GPUFreqHz)
	case cfg.GPUDivider < 1:
		return fmt.Errorf("sim: GPUDivider %d out of range (want >= 1)", cfg.GPUDivider)
	case !(cfg.TargetFPS >= 0) || math.IsInf(cfg.TargetFPS, 0):
		return fmt.Errorf("sim: TargetFPS %g must be non-negative and finite", cfg.TargetFPS)
	case cfg.MeasureInstr < 1:
		return fmt.Errorf("sim: MeasureInstr must be positive")
	case cfg.MaxCycles < 1:
		return fmt.Errorf("sim: MaxCycles must be positive")
	case cfg.MinFrames < 0:
		return fmt.Errorf("sim: MinFrames %d must be non-negative", cfg.MinFrames)
	case cfg.WarmupFrames < 0:
		return fmt.Errorf("sim: WarmupFrames %d must be non-negative", cfg.WarmupFrames)
	case cfg.IntraThreads < 0:
		return fmt.Errorf("sim: IntraThreads %d must be non-negative", cfg.IntraThreads)
	case cfg.EpochLen < 0:
		return fmt.Errorf("sim: EpochLen %d must be non-negative", cfg.EpochLen)
	}
	return nil
}

// DefaultConfig returns the evaluation configuration at the given
// scale factor, termination sized for bench runs.
func DefaultConfig(scale int) Config {
	if scale < 1 {
		scale = 1
	}
	return Config{
		Scale:        scale,
		NumCPUs:      4,
		CPUFreqHz:    4e9,
		GPUFreqHz:    1e9,
		GPUDivider:   4,
		TargetFPS:    40,
		WarmupInstr:  uint64(200_000_000 / scale / 2),
		WarmupFrames: 6,
		MeasureInstr: uint64(450_000_000 / scale / 2),
		MinFrames:    4,
		MaxCycles:    uint64(3_000_000_000 / scale),
	}
}

// System is one fully wired simulated CMP instance.
type System struct {
	Cfg Config

	Cores []*cpu.Core
	GPU   *gpu.GPU
	LLC   *llc.LLC
	Mem   *dram.Memory
	Ring  *ring.Ring

	// Ctrl is non-nil for the throttling policies.
	Ctrl *qos.Controller
	// Dyn is non-nil for DynPrio.
	Dyn *qos.DynPrio
	// HeLM is non-nil for the HeLM policy.
	HeLM *policy.HeLM
	// CMBAL is non-nil for the CM-BAL policy.
	CMBAL *qos.CMBAL

	cycle   uint64
	llcNode ring.NodeID
	gpuNode ring.NodeID
	// spill buffers ring arrivals the LLC could not accept this
	// cycle; the queue recycles its backing array (mem.ReqQueue).
	spill    mem.ReqQueue
	maxNodes int

	// rec/tee are nil unless AttachObs enabled observability.
	rec *obs.Recorder
	tee *obsTee

	// faults is Cfg.Faults, cached so Tick's nil check stays cheap.
	faults FaultInjector

	// scenario is Cfg.Scenario, cached like faults; scNext is the next
	// cycle at which it must run (never when exhausted or absent).
	scenario Scenario
	scNext   uint64
}

// NewSystem builds a system running game (nil = no GPU workload) and
// the given CPU applications (may be empty).
func NewSystem(cfg Config, game *gpu.AppModel, cpuApps []trace.Params) *System {
	if err := cfg.Validate(); err != nil {
		// Programmatic misuse still panics; CLIs and the Runner call
		// Validate first so users see an error, not this stack trace.
		panic(err.Error())
	}
	s := &System{Cfg: cfg, faults: cfg.Faults, scenario: cfg.Scenario, scNext: never}
	if s.scenario != nil {
		s.scNext = s.scenario.NextChange(0)
	}

	nodes := cfg.NumCPUs + 2 // cores + GPU + LLC
	if nodes < 3 {
		nodes = 3
	}
	s.Ring = ring.New(nodes)
	s.gpuNode = ring.NodeID(cfg.NumCPUs)
	s.llcNode = ring.NodeID(cfg.NumCPUs + 1)

	lcfg := llc.DefaultConfig(cfg.Scale)
	if cfg.LLCDRRIP {
		lcfg.Cache.Policy = cache.DRRIP
	}
	s.LLC = llc.New(lcfg)

	// DRAM with the policy's scheduler.
	dcfg := dram.DefaultConfig()
	var schedFactory func() dram.Scheduler
	switch cfg.Policy {
	case PolicySMS09:
		seed := uint64(0)
		schedFactory = func() dram.Scheduler { seed++; return dram.NewSMS(0.9, 0x51ED+seed) }
	case PolicySMS0:
		seed := uint64(0)
		schedFactory = func() dram.Scheduler { seed++; return dram.NewSMS(0.0, 0x52ED+seed) }
	case PolicyThrottle, PolicyThrottleCPUPrio:
		mode := qos.ModeThrottle
		if cfg.Policy == PolicyThrottleCPUPrio {
			mode = qos.ModeThrottleCPUPrio
		}
		s.Ctrl = qos.NewController(mode, cfg.TargetFPS, cfg.GPUFreqHz, cfg.Scale)
		schedFactory = func() dram.Scheduler { return dram.NewPrio(s.Ctrl.Boost) }
	case PolicyDynPrio:
		s.Dyn = qos.NewDynPrio(qos.NewFRPU(), nil)
		s.Dyn.TargetCycles = cfg.GPUFreqHz / (cfg.TargetFPS * float64(cfg.Scale))
		schedFactory = func() dram.Scheduler { return dram.NewPrio(s.Dyn.Boost) }
	default:
		schedFactory = dram.NewFRFCFS
	}
	s.Mem = dram.New(dcfg, schedFactory)

	// CPU cores.
	for i, p := range cpuApps {
		if i >= cfg.NumCPUs {
			break
		}
		gen := trace.NewGenerator(p.Scale(cfg.Scale), mem.CPURegion(i))
		ccfg := cpu.DefaultConfig(i, cfg.Scale)
		ccfg.Prefetch = cfg.CPUPrefetch
		c := cpu.New(ccfg, gen)
		node := ring.NodeID(i)
		c.Issue = func(r *mem.Request) bool {
			s.Ring.Send(ring.Msg{From: node, To: s.llcNode, Payload: r})
			return true
		}
		s.Cores = append(s.Cores, c)
	}

	// GPU.
	if game != nil {
		s.GPU = gpu.New(gpu.DefaultConfig(cfg.Scale), game)
		s.GPU.Issue = func(r *mem.Request) bool {
			s.Ring.Send(ring.Msg{From: s.gpuNode, To: s.llcNode, Payload: r})
			return true
		}
		switch cfg.Policy {
		case PolicyThrottle, PolicyThrottleCPUPrio:
			s.GPU.Gate = s.Ctrl
			s.GPU.Observer = s.Ctrl
		case PolicyDynPrio:
			s.Dyn.FrameElapsed = func() uint64 { return s.GPU.Cycle() - s.GPU.FrameStartCycle() }
			s.GPU.Observer = s.Dyn
		case PolicyHeLM:
			// Latency-tolerance signal: a windowed EMA of the GPU
			// pipeline's issue-stall fraction (HeLM samples thread-level
			// parallelism; a pipeline that rarely stalls on memory has
			// latency to spare).
			var lastCyc, lastStall uint64
			ema := 0.7
			s.HeLM = policy.NewHeLM(func() float64 {
				c, st := s.GPU.Cycle(), s.GPU.StallIssue
				if c > lastCyc+256 {
					frac := float64(st-lastStall) / float64(c-lastCyc)
					if frac > 1 {
						frac = 1
					}
					ema = 0.5*ema + 0.5*(1-frac)
					lastCyc, lastStall = c, st
				}
				return ema
			})
			s.LLC.Bypass = s.HeLM
		case PolicyForcedBypass:
			s.LLC.Bypass = policy.ForcedBypass{}
		case PolicyCMBAL:
			s.CMBAL = qos.NewCMBAL()
			s.GPU.Shader = s.CMBAL
		}
	}

	// LLC wiring. The two memory controllers hang off the LLC stop
	// (the extra ring hops are folded into DRAM service; DESIGN.md).
	s.LLC.ToDRAM = s.Mem.Enqueue
	s.Mem.OnComplete = s.LLC.OnDRAMComplete
	s.LLC.Respond = func(r *mem.Request) {
		to := ring.NodeID(int(r.Src))
		if r.Src == mem.SourceGPU {
			to = s.gpuNode
		}
		s.Ring.Send(ring.Msg{From: s.llcNode, To: to, Payload: r})
	}
	s.LLC.BackInvalidate = func(src mem.Source, line uint64) {
		if int(src) < len(s.Cores) {
			s.Cores[src].Invalidate(line)
		}
	}
	// Absorbed writes flow back to the issuer's request free list, so
	// every component's allocation reaches steady state (a core that
	// only ever lost write-backs to the LLC would allocate forever).
	s.LLC.Recycle = func(r *mem.Request) {
		switch {
		case r.Src.IsCPU() && int(r.Src) < len(s.Cores):
			s.Cores[r.Src].Recycle(r)
		case r.Src == mem.SourceGPU && s.GPU != nil:
			s.GPU.Recycle(r)
		}
	}

	return s
}

// Cycle returns the current CPU cycle.
func (s *System) Cycle() uint64 { return s.cycle }

// Tick advances the whole system one CPU cycle.
func (s *System) Tick() {
	s.cycle++
	// Scenario phase transitions fire before any component steps, so a
	// swapped trace source or retargeted GPU scale is what this cycle
	// simulates. The parallel engine mirrors this hook at the top of
	// its barrier (engine_parallel.go).
	if s.scenario != nil && s.cycle >= s.scNext {
		s.scenario.Apply(s, s.cycle)
		s.scNext = s.scenario.NextChange(s.cycle)
	}
	s.Ring.Tick()

	// Fault-injection hooks (nil-guarded: the common no-faults path
	// costs one comparison per Tick).
	holdLLC := s.faults != nil && s.faults.HoldLLCIntake(s.cycle)
	holdDRAM := s.faults != nil && s.faults.HoldDRAM(s.cycle)

	// Deliver ring arrivals.
	for _, m := range s.Ring.Receive(s.llcNode) {
		s.spill.Push(m.Payload.(*mem.Request))
	}
	for !holdLLC && s.spill.Len() > 0 && s.LLC.Enqueue(s.spill.Front()) {
		s.spill.Pop()
	}
	for i := range s.Cores {
		for _, m := range s.Ring.Receive(ring.NodeID(i)) {
			r := m.Payload.(*mem.Request)
			if !r.Write {
				if s.faults != nil && s.faults.DropFill(s.cycle) {
					continue
				}
				s.Cores[i].OnFill(r)
			}
		}
	}
	if s.GPU != nil {
		for _, m := range s.Ring.Receive(s.gpuNode) {
			r := m.Payload.(*mem.Request)
			if !r.Write {
				if s.faults != nil && s.faults.DropFill(s.cycle) {
					continue
				}
				s.GPU.OnFill(r)
			}
		}
	}

	s.LLC.Tick()
	if !holdDRAM {
		s.Mem.Tick()
	}
	if s.GPU != nil && s.cycle%s.Cfg.GPUDivider == 0 {
		s.GPU.Tick(s.cycle)
	}
	for _, c := range s.Cores {
		c.Tick()
	}
	s.rec.OnTick(s.cycle)
}

// never is the next-wake sentinel for "no self-induced event at all".
const never = ^uint64(0)

// NextWake computes the earliest future cycle at which any part of
// the system can change observable state: the minimum of every
// component's next-wake report (DESIGN.md §9). s.cycle+1 means some
// component is busy and the engine must tick normally. The GPU's
// report is converted from its own clock domain — a busy GPU still
// lets the system sleep until the next divider boundary, since
// nothing runs it in between.
func (s *System) NextWake() uint64 {
	now := s.cycle
	if s.spill.Len() > 0 || !s.Ring.Quiesced() {
		return now + 1
	}
	wake := s.wakeFloor(now)
	if s.faults != nil {
		wf, ok := s.faults.(WakeFaultInjector)
		if !ok {
			return now + 1
		}
		// A fault firing before the first component event caps the
		// sleep: the engine must land a real Tick on the fault cycle
		// so the hold hooks run (and tally) exactly as naive ticking.
		if f := wf.NextFault(now); f < wake {
			wake = f
		}
	}
	// A scenario boundary caps the sleep the same way a predicted
	// fault does: the engine must land a real Tick on the boundary
	// cycle so Apply runs there, exactly as under naive ticking.
	if s.scenario != nil && s.scNext < wake {
		wake = s.scNext
		if wake <= now {
			wake = now + 1
		}
	}
	return wake
}

// wakeFloor is NextWake without the fault bound.
func (s *System) wakeFloor(now uint64) uint64 {
	wake := s.LLC.NextWake(now)
	if wake == now+1 {
		return wake
	}
	if v := s.Mem.NextWake(now); v == now+1 {
		return v
	} else if v < wake {
		wake = v
	}
	for _, c := range s.Cores {
		if v := c.NextWake(now); v == now+1 {
			return v
		} else if v < wake {
			wake = v
		}
	}
	if s.GPU != nil {
		div := s.Cfg.GPUDivider
		nowG := now / div
		switch vg := s.GPU.NextWake(nowG); {
		case vg == never:
		case vg <= nowG+1:
			// Busy in the GPU domain: it next runs at the following
			// divider boundary.
			if v := (nowG + 1) * div; v < wake {
				wake = v
			}
		default:
			if v := vg * div; v < wake {
				wake = v
			}
		}
	}
	if wake <= now {
		return now + 1
	}
	return wake
}

// SkipTo bulk-advances the system clock to target without ticking.
// Callers (sim.Run's fast-forward) must have proven via NextWake that
// every cycle in (s.cycle, target] is dead; each component's Skip
// then replicates exactly what its elided ticks would have done.
func (s *System) SkipTo(target uint64) {
	if target <= s.cycle {
		return
	}
	n := target - s.cycle
	if s.GPU != nil {
		div := s.Cfg.GPUDivider
		if ng := target/div - s.cycle/div; ng > 0 {
			s.GPU.Skip(ng)
		}
	}
	s.Ring.Skip(n)
	s.LLC.Skip(n)
	s.Mem.Skip(n)
	for _, c := range s.Cores {
		c.Skip(n)
	}
	s.cycle = target
}

// SetCoreWorkload swaps core i's instruction stream for a fresh
// generator over p, scaled and region-based exactly as NewSystem
// builds the initial one. It is the scenario engine's CPU lever: the
// swap takes effect at the core's next instruction fetch, touches no
// in-flight state (the current op and outstanding misses drain
// normally), and is deterministic under fast-forward and the parallel
// engine because Core.Skip never reads the stream.
func (s *System) SetCoreWorkload(i int, p trace.Params) {
	if i < 0 || i >= len(s.Cores) {
		return
	}
	s.Cores[i].SetSource(trace.NewGenerator(p.Scale(s.Cfg.Scale), mem.CPURegion(i)))
}

// MixWorkload resolves a workloads.Mix into model inputs.
func MixWorkload(cfg Config, m workloads.Mix) (*gpu.AppModel, []trace.Params) {
	game := workloads.MustGame(m.Game).Model(cfg.Scale, cfg.GPUFreqHz)
	var apps []trace.Params
	for _, id := range m.SpecIDs {
		apps = append(apps, workloads.MustSpec(id).Params)
	}
	return game, apps
}
