package sim

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"reflect"
	"testing"

	"repro/internal/obs"
	"repro/internal/workloads"
)

// ffDigest runs cfg over mix with observability attached and hashes
// the full Result plus the sampled metrics CSV and trace JSON — the
// same surface the golden suite pins, so "identical digest" means the
// fast-forwarded run is observably indistinguishable from the naive
// reference, tick for tick and sample for sample.
func ffDigest(t *testing.T, cfg Config, m workloads.Mix) (Result, string) {
	t.Helper()
	rec := obs.NewRecorder(0)
	r := RunMixObs(cfg, m, rec)
	h := sha256.New()
	fmt.Fprintf(h, "%+v\n", r)
	if err := rec.WriteCSV(h); err != nil {
		t.Fatal(err)
	}
	if err := rec.WriteTrace(h, cfg.Policy.String()); err != nil {
		t.Fatal(err)
	}
	return r, hex.EncodeToString(h.Sum(nil))
}

// TestFastForwardEquivalence is the tentpole's differential proof:
// for every policy the paper evaluates, a skip-ahead run and the
// retained NoFastForward reference loop must produce byte-identical
// Results and identical observability streams on the same seed.
func TestFastForwardEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("differential runs skipped in -short mode")
	}
	mix := workloads.EvalMixes()[6] // M7, as the golden suite uses
	for _, p := range goldenPolicies {
		p := p
		t.Run(p.String(), func(t *testing.T) {
			t.Parallel()
			fast := goldenCfg(p)
			ref := fast
			ref.NoFastForward = true

			fr, fd := ffDigest(t, fast, mix)
			rr, rd := ffDigest(t, ref, mix)
			if !reflect.DeepEqual(fr, rr) {
				t.Errorf("Result diverged:\nfast: %+v\nref:  %+v", fr, rr)
			}
			if fd != rd {
				t.Errorf("obs stream diverged: fast %s != ref %s", fd, rd)
			}
		})
	}
}

// TestFastForwardEquivalenceAlone covers the standalone entry points,
// where fast-forward matters most: a single memory-bound core (the
// whole system quiesces on every DRAM round trip) and a GPU with no
// CPUs at all (dead cycles between divider ticks, compute countdowns,
// throttle windows).
func TestFastForwardEquivalenceAlone(t *testing.T) {
	if testing.Short() {
		t.Skip("differential runs skipped in -short mode")
	}
	cfg := goldenCfg(PolicyBaseline)
	ref := cfg
	ref.NoFastForward = true

	t.Run("cpu", func(t *testing.T) {
		id := workloads.SpecIDs()[0]
		a := RunCPUAloneResult(cfg, id, nil)
		b := RunCPUAloneResult(ref, id, nil)
		if !reflect.DeepEqual(a, b) {
			t.Errorf("CPU-alone diverged:\nfast: %+v\nref:  %+v", a, b)
		}
	})
	t.Run("gpu", func(t *testing.T) {
		a := RunGPUAlone(cfg, workloads.Games()[0].Name)
		b := RunGPUAlone(ref, workloads.Games()[0].Name)
		if !reflect.DeepEqual(a, b) {
			t.Errorf("GPU-alone diverged:\nfast: %+v\nref:  %+v", a, b)
		}
	})
}

// ffHoldInjector is a predictable injector local to this test: holds
// fire in periodic bursts, like faultinject.Injector but without the
// import cycle (faultinject imports sim). It implements
// WakeFaultInjector, so fast-forward stays active around the bursts.
type ffHoldInjector struct {
	llcPeriod, llcLen   uint64
	dramPeriod, dramLen uint64
	dropNth             uint64
	fills               uint64
}

func (f *ffHoldInjector) HoldLLCIntake(cycle uint64) bool {
	return f.llcPeriod > 0 && cycle%f.llcPeriod < f.llcLen
}

func (f *ffHoldInjector) HoldDRAM(cycle uint64) bool {
	return f.dramPeriod > 0 && cycle%f.dramPeriod < f.dramLen
}

func (f *ffHoldInjector) DropFill(uint64) bool {
	if f.dropNth == 0 {
		return false
	}
	f.fills++
	return f.fills%f.dropNth == 0
}

func (f *ffHoldInjector) NextFault(now uint64) uint64 {
	next := ^uint64(0)
	for _, b := range [][2]uint64{{f.llcPeriod, f.llcLen}, {f.dramPeriod, f.dramLen}} {
		if b[0] == 0 || b[1] == 0 {
			continue
		}
		c := now + 1
		at := c
		if r := c % b[0]; r >= b[1] {
			at = c + (b[0] - r)
		}
		if at < next {
			next = at
		}
	}
	return next
}

// blindInjector wraps an injector behind the bare FaultInjector
// interface, hiding NextFault: a fault source the engine cannot
// predict must disable fast-forward entirely (never-skip fallback)
// rather than risk skipping past a burst.
type blindInjector struct{ FaultInjector }

// TestFastForwardEquivalenceUnderFaults proves the differential
// property holds with fault injection active, both for a predictable
// injector (skips bounded by NextFault) and for a blind one (no skips
// at all) — and that the two agree with the naive reference.
func TestFastForwardEquivalenceUnderFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("differential runs skipped in -short mode")
	}
	mix := workloads.EvalMixes()[6]
	build := func(noFF bool, inj FaultInjector) Result {
		cfg := goldenCfg(PolicyThrottleCPUPrio)
		cfg.NoFastForward = noFF
		cfg.Faults = inj
		return RunMix(cfg, mix)
	}
	spec := ffHoldInjector{
		llcPeriod: 50_000, llcLen: 700,
		dramPeriod: 80_000, dramLen: 900,
	}

	si, ri, bi := spec, spec, spec
	fast := build(false, &si)
	ref := build(true, &ri)
	blind := build(false, blindInjector{&bi})
	if !reflect.DeepEqual(fast, ref) {
		t.Errorf("faulted run diverged:\nfast: %+v\nref:  %+v", fast, ref)
	}
	if !reflect.DeepEqual(blind, ref) {
		t.Errorf("blind-injector run diverged:\nblind: %+v\nref:   %+v", blind, ref)
	}
}

// attach builds the system for cfg+mix without running it (used by
// the dead-range probe below to drive Tick by hand).
func attach(cfg Config, m workloads.Mix) *System {
	game, apps := MixWorkload(cfg, m)
	return NewSystem(cfg, game, apps)
}

// TestFastForwardDeadRangeIsDead is the engine-level lower-bound
// property: whenever NextWake predicts a dead range, naive-ticking a
// cloned system through that range must change no observable counter
// before the predicted wake. Run on a real mix so the probe hits real
// quiescent states (ROB stalls, DRAM countdowns, gate windows).
func TestFastForwardDeadRangeIsDead(t *testing.T) {
	if testing.Short() {
		t.Skip("property run skipped in -short mode")
	}
	cfg := goldenCfg(PolicyThrottleCPUPrio)
	cfg.NoFastForward = true
	mix := workloads.EvalMixes()[6]
	s := attach(cfg, mix)

	// fingerprint hashes the work counters that must stay frozen
	// through a dead range. The time counters that DO legally advance
	// (StallCycles, StallIssue, DeniedAcc, DRAMCycles) are excluded
	// here and checked for exact linear movement below instead.
	fingerprint := func() string {
		var b bytes.Buffer
		fmt.Fprintf(&b, "llc:%v/%v ", s.LLC.AccessesBySrc, s.LLC.MissesBySrc)
		fmt.Fprintf(&b, "dram:%v/%v/%d ", s.Mem.ReadBytes, s.Mem.WriteBytes, s.Mem.Refreshes)
		fmt.Fprintf(&b, "ring:%d/%d ", s.Ring.Injected, s.Ring.Delivered)
		for _, c := range s.Cores {
			fmt.Fprintf(&b, "cpu:%d/%d ", c.Retired(), c.FillsReceived)
		}
		if s.GPU != nil {
			fmt.Fprintf(&b, "gpu:%d/%d/%d ", s.GPU.FramesDone, s.GPU.IssuedLLC, s.GPU.FillsReceived)
		}
		if s.Ctrl != nil {
			fmt.Fprintf(&b, "atu:%d/%d", s.Ctrl.ATU.AllowedAcc, s.Ctrl.ATU.Updates)
		}
		return b.String()
	}

	checked := 0
	for tick := 0; tick < 3_000_000 && checked < 200; tick++ {
		wake := s.NextWake()
		if wake <= s.cycle+1 || wake == never {
			s.Tick()
			continue
		}
		// Predicted dead until `wake`: work counters must not move
		// before it, and every core must burn exactly one stall cycle
		// per tick (a predicted-dead range implies all cores are
		// ROB-blocked, which is precisely what Core.Skip replicates).
		start := s.cycle
		base := fingerprint()
		var stalls uint64
		for _, c := range s.Cores {
			stalls += c.StallCycles
		}
		for s.cycle < wake-1 {
			s.Tick()
			var nowStalls uint64
			for _, c := range s.Cores {
				nowStalls += c.StallCycles
			}
			elapsed := s.cycle - start
			if nowStalls-stalls != elapsed*uint64(len(s.Cores)) {
				t.Fatalf("cycle %d (wake %d): stall delta %d != %d cores x %d cycles",
					s.cycle, wake, nowStalls-stalls, len(s.Cores), elapsed)
			}
		}
		if got := fingerprint(); got != base {
			t.Fatalf("predicted-dead range [%d,%d) moved observable state:\nbefore: %s\nafter:  %s",
				start, wake, base, got)
		}
		checked++
	}
	if checked == 0 {
		t.Skip("no dead ranges encountered in the probe window")
	}
	t.Logf("verified %d predicted-dead ranges", checked)
}
