package sim

import (
	"fmt"
	"os"
	"testing"

	"repro/internal/trace"
	"repro/internal/workloads"
)

// TestDiag prints internals for calibration work. Dev tool.
func TestDiag(t *testing.T) {
	if os.Getenv("HETSIM_CALIB") == "" {
		t.Skip("diagnostic probe; set HETSIM_CALIB=1 to run")
	}
	cfg := DefaultConfig(32)
	cfg.WarmupInstr = 300_000
	cfg.MeasureInstr = 1_000_000
	cfg.MinFrames = 3
	cfg.MaxCycles = 80_000_000
	m, _ := workloads.MixByID("M7")

	game, apps := MixWorkload(cfg, m)
	s := NewSystem(cfg, game, apps)
	Run(s)
	occ := s.LLC.Tags().OccupancyByOwner()
	fmt.Printf("hetero: rowHit=%.2f occ=%v\n", s.Mem.RowHitRate(), occ)
	for i, c := range s.Cores {
		fmt.Printf("  core%d: avgMissLat=%.0f stalls=%d retired=%d llcReq=%d l2miss%%=%.1f\n",
			i, c.AvgMissLatency(), c.StallCycles, c.Retired(), c.LLCRequests, 100*c.L2().MissRate())
	}
	fmt.Printf("  gpu: issued=%d stallIssue=%d\n", s.GPU.IssuedLLC, s.GPU.StallIssue)
	fmt.Printf("  llc: gpuOcc=%.2f backInv=%d writeFills=%d\n", s.LLC.GPUOccupancy(), s.LLC.BackInvals, s.LLC.WriteFills)
	fmt.Printf("  dram: busUtil=%.2f avgQWait=%.0f issued=%d\n", s.Mem.BusUtilization(), s.Mem.AvgQueueWait(), s.Mem.IssuedCount)

	alone := cfg
	alone.MinFrames = 0
	sa := NewSystem(alone, nil, []trace.Params{workloads.MustSpec(m.SpecIDs[0]).Params})
	Run(sa)
	fmt.Printf("alone %d: avgMissLat=%.0f rowHit=%.2f ipc=%.3f llcReq=%d\n",
		m.SpecIDs[0], sa.Cores[0].AvgMissLatency(), sa.Mem.RowHitRate(), sa.Cores[0].IPC(), sa.Cores[0].LLCRequests)
}
