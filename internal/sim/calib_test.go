package sim

import (
	"fmt"
	"os"
	"testing"

	"repro/internal/workloads"
)

// calibCfg is the shared probe configuration.
func calibCfg() Config {
	cfg := DefaultConfig(32)
	cfg.WarmupInstr = 300_000
	cfg.MeasureInstr = 1_000_000
	cfg.MinFrames = 3
	cfg.WarmupFrames = 8
	cfg.MaxCycles = 80_000_000
	return cfg
}

// TestCalibFig1 probes the motivation experiment: 1 CPU + 1 GPU vs
// standalone (paper Fig. 1: both lose ~22% on average). Dev tool.
func TestCalibFig1(t *testing.T) {
	if os.Getenv("HETSIM_CALIB") == "" {
		t.Skip("calibration probe; set HETSIM_CALIB=1 to run")
	}
	cfg := calibCfg()
	cfg.NumCPUs = 1
	for _, id := range []string{"W7", "W13", "W9", "W6"} {
		m, _ := workloads.MixByID(id)
		ga := RunGPUAlone(cfg, m.Game)
		ipcAlone := RunCPUAlone(cfg, m.SpecIDs[0])
		r := RunMix(cfg, m)
		fmt.Printf("%s %-12s+%d: cpuRatio=%.2f gpuRatio=%.2f (aloneFPS=%.1f heteroFPS=%.1f)\n",
			id, m.Game, m.SpecIDs[0], r.IPC[0]/ipcAlone, r.GPUFPS/ga.GPUFPS, ga.GPUFPS, r.GPUFPS)
	}
}

// TestCalibFig9 probes the evaluation: M-mix baseline vs throttled vs
// throttled+CPUprio (paper Fig. 9: FPS pinned near 40, CPU +11%/+18%).
func TestCalibFig9(t *testing.T) {
	if os.Getenv("HETSIM_CALIB") == "" {
		t.Skip("calibration probe; set HETSIM_CALIB=1 to run")
	}
	cfg := calibCfg()
	for _, id := range []string{"M7", "M13"} {
		m, _ := workloads.MixByID(id)
		base := RunMix(cfg, m)
		cfgT := cfg
		cfgT.Policy = PolicyThrottle
		thr := RunMix(cfgT, m)
		cfgP := cfg
		cfgP.Policy = PolicyThrottleCPUPrio
		pri := RunMix(cfgP, m)
		ws := func(r Result) float64 {
			s := 0.0
			for i := range r.IPC {
				s += r.IPC[i] / base.IPC[i]
			}
			return s / float64(len(r.IPC))
		}
		fmt.Printf("%s: FPS base=%.1f thr=%.1f pri=%.1f | CPU thr=%.2fx pri=%.2fx | gpuMiss thr=%.2fx bw thr=%.2fx\n",
			id, base.GPUFPS, thr.GPUFPS, pri.GPUFPS, ws(thr), ws(pri),
			float64(thr.GPULLCMisses)/float64(base.GPULLCMisses),
			(float64(thr.GPUBandwidthBytes())/float64(thr.MeasuredCycles))/(float64(base.GPUBandwidthBytes())/float64(base.MeasuredCycles)))
	}
}
