package sim

import (
	"fmt"

	qos "repro/internal/core"
	"repro/internal/gpu"
	"repro/internal/mem"
	"repro/internal/obs"
	"repro/internal/ring"
)

// AttachObs enables observability on a freshly built system: every
// component registers its probes with the recorder's registry (in the
// fixed order below, so column layout is deterministic), and — when a
// GPU workload is present — the GPU's observer chain is teed so frame,
// RTP, FRPU-phase, and throttle-episode spans land in the recorder's
// Chrome trace. A nil recorder leaves the system untouched: the
// per-cycle hook then costs one pointer compare and zero allocations.
// Call it after NewSystem and before the first Tick.
func (s *System) AttachObs(rec *obs.Recorder) {
	if rec == nil {
		return
	}
	s.rec = rec
	reg := &rec.Registry
	for _, c := range s.Cores {
		c.RegisterObs(reg)
	}
	if s.GPU != nil {
		s.GPU.RegisterObs(reg)
	}
	s.LLC.RegisterObs(reg)
	s.Mem.RegisterObs(reg)
	s.Ring.RegisterObs(reg)
	switch {
	case s.Ctrl != nil:
		s.Ctrl.RegisterObs(reg)
	case s.Dyn != nil:
		s.Dyn.RegisterObs(reg)
	}

	if s.GPU != nil {
		tee := &obsTee{inner: s.GPU.Observer, g: s.GPU, tr: rec.Trace()}
		switch {
		case s.Ctrl != nil:
			tee.frpu = s.Ctrl.FRPU
			tee.atu = s.Ctrl.ATU
		case s.Dyn != nil:
			tee.frpu = s.Dyn.FRPU
		}
		if tee.frpu != nil {
			tee.phase = tee.frpu.Phase()
		}
		s.GPU.Observer = tee
		s.tee = tee
	}
}

// Obs returns the attached recorder (nil when observability is off).
func (s *System) Obs() *obs.Recorder { return s.rec }

// FinishObs closes any spans still open in the trace (the trailing
// FRPU phase and an in-progress throttle episode). Run calls it at the
// end of the measurement; it is idempotent and a no-op when
// observability is off.
func (s *System) FinishObs() {
	if s.tee != nil {
		s.tee.finish()
	}
}

// obsTee interposes on the GPU observer chain: it forwards each event
// to the policy's observer first (so FRPU/ATU state advances exactly
// as without observability), then records trace spans from the
// post-update state. It never mutates simulation state, so attaching
// it cannot change any measured result.
type obsTee struct {
	inner gpu.Observer
	g     *gpu.GPU
	tr    *obs.Trace

	frpu *qos.FRPU
	atu  *qos.ATU

	phase         qos.Phase
	phaseStart    uint64
	throttling    bool
	throttleStart uint64
	done          bool
}

// RTPComplete implements gpu.Observer.
func (o *obsTee) RTPComplete(info gpu.RTPInfo) {
	if o.inner != nil {
		o.inner.RTPComplete(info)
	}
	end := o.g.Cycle()
	o.tr.Complete(obs.TIDRTPs, "gpu", fmt.Sprintf("rtp %d", info.Index), end-info.Cycles, end)
	o.transitions(end)
}

// FrameComplete implements gpu.Observer.
func (o *obsTee) FrameComplete(info gpu.FrameInfo) {
	if o.inner != nil {
		o.inner.FrameComplete(info)
	}
	end := o.g.Cycle()
	o.tr.Complete(obs.TIDFrames, "gpu", fmt.Sprintf("frame %d", info.Index), end-info.Cycles, end)
	o.transitions(end)
}

// transitions closes/opens the FRPU-phase and throttle-episode spans.
// Both states only change inside observer callbacks (the ATU window
// law runs on RTP/frame completion), so sampling here is exact.
func (o *obsTee) transitions(now uint64) {
	if o.frpu != nil {
		if p := o.frpu.Phase(); p != o.phase {
			o.tr.Complete(obs.TIDFRPU, "frpu", o.phase.String(), o.phaseStart, now)
			o.phase = p
			o.phaseStart = now
		}
	}
	if o.atu != nil {
		active := o.atu.Active()
		switch {
		case active && !o.throttling:
			o.throttleStart = now
		case !active && o.throttling:
			o.tr.Complete(obs.TIDThrottle, "atu", "throttle", o.throttleStart, now)
		}
		o.throttling = active
	}
}

// finish closes open spans at the current GPU cycle.
func (o *obsTee) finish() {
	if o.done {
		return
	}
	o.done = true
	now := o.g.Cycle()
	if o.frpu != nil && now > o.phaseStart {
		o.tr.Complete(obs.TIDFRPU, "frpu", o.phase.String(), o.phaseStart, now)
	}
	if o.throttling && now > o.throttleStart {
		o.tr.Complete(obs.TIDThrottle, "atu", "throttle", o.throttleStart, now)
	}
}

// ReadAudit is a consistent snapshot of read-request conservation:
// every read injected into the shared memory system is either
// delivered back to its requester or accounted in exactly one
// in-flight location (ring, spill buffer, or LLC). The invariant test
// suite asserts Injected == Delivered + InFlight at every sampled
// cycle.
type ReadAudit struct {
	Injected  uint64 // reads issued by cores (demand + prefetch) and the GPU
	Delivered uint64 // read fills handed back via OnFill
	InFlight  uint64 // reads inside ring/spill/LLC right now
}

// Conserved reports whether the snapshot balances.
func (a ReadAudit) Conserved() bool {
	return a.Injected == a.Delivered+a.InFlight
}

// AuditReads walks the system between Ticks and returns the read
// conservation snapshot. It is read-only and safe to call at any tick
// boundary.
func (s *System) AuditReads() ReadAudit {
	var a ReadAudit
	for _, c := range s.Cores {
		a.Injected += c.LLCRequests + c.PrefetchIssued
		a.Delivered += c.FillsReceived
	}
	if s.GPU != nil {
		a.Injected += s.GPU.ReadsIssued
		a.Delivered += s.GPU.FillsReceived
	}
	isRead := func(m ring.Msg) bool {
		r, ok := m.Payload.(*mem.Request)
		return ok && !r.Write
	}
	a.InFlight += uint64(s.Ring.CountPending(isRead))
	a.InFlight += uint64(s.LLC.PendingReads())
	s.spill.Scan(func(r *mem.Request) {
		if !r.Write {
			a.InFlight++
		}
	})
	return a
}
