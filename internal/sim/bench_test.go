package sim

import (
	"os"
	"strconv"
	"testing"

	"repro/internal/obs"
	"repro/internal/workloads"
)

// benchScale returns the scale factor for the sim benchmarks:
// HETSIM_SCALE when set (the same knob the root paper-figure benches
// honor, so `make bench-json` can pin a comparable scale), else 192.
func benchScale() int {
	if s := os.Getenv("HETSIM_SCALE"); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v >= 1 {
			return v
		}
	}
	return 192
}

// benchCfg is a small-but-real configuration: high scale keeps the
// caches tiny so a bench iteration is cheap, while every subsystem
// (ring, LLC, DRAM, GPU pipeline, FRPU/ATU) stays on its real code
// path.
func benchCfg(p Policy) Config {
	cfg := DefaultConfig(benchScale())
	cfg.Policy = p
	cfg.WarmupInstr = 40_000
	cfg.WarmupFrames = 2
	cfg.MeasureInstr = 120_000
	cfg.MinFrames = 2
	cfg.MaxCycles = 30_000_000
	return cfg
}

func benchSystem(b *testing.B, p Policy) *System {
	b.Helper()
	m, err := workloads.MixByID("M7")
	if err != nil {
		b.Fatal(err)
	}
	cfg := benchCfg(p)
	cfg.NumCPUs = len(m.SpecIDs)
	game, apps := MixWorkload(cfg, m)
	return NewSystem(cfg, game, apps)
}

// BenchmarkTick measures the per-cycle cost of the whole system —
// ring movement, spill drain, LLC, DRAM, GPU and core ticks — after
// the caches and queue buffers have warmed up. The steady-state
// ring/spill path contributes 0 allocs; the remaining floor is the
// per-miss *mem.Request churn (see DESIGN.md §6).
func BenchmarkTick(b *testing.B) {
	s := benchSystem(b, PolicyBaseline)
	for i := 0; i < 200_000; i++ {
		s.Tick()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Tick()
	}
}

// BenchmarkTickThrottled is BenchmarkTick under the full proposal, so
// the FRPU/ATU/priority machinery is on the measured path too.
func BenchmarkTickThrottled(b *testing.B) {
	s := benchSystem(b, PolicyThrottleCPUPrio)
	for i := 0; i < 200_000; i++ {
		s.Tick()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Tick()
	}
}

// BenchmarkTickObsDisabled pins the tentpole's zero-overhead claim:
// with no recorder attached (the default), the observability hook in
// Tick is one nil compare, and the steady-state tick must allocate
// exactly as much as BenchmarkTick did before the obs layer existed.
// The allocs/op line is the contract — it must stay at BenchmarkTick's
// floor.
func BenchmarkTickObsDisabled(b *testing.B) {
	s := benchSystem(b, PolicyThrottleCPUPrio)
	// AttachObs deliberately NOT called.
	for i := 0; i < 200_000; i++ {
		s.Tick()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Tick()
	}
}

// BenchmarkTickObsEnabled measures the same path with a recorder at
// the default stride, bounding the cost of enabling observability
// (one row allocation per stride, amortized).
func BenchmarkTickObsEnabled(b *testing.B) {
	s := benchSystem(b, PolicyThrottleCPUPrio)
	s.AttachObs(obs.NewRecorder(0))
	for i := 0; i < 200_000; i++ {
		s.Tick()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Tick()
	}
}

// BenchmarkTickParallel is BenchmarkTick through the intra-run
// parallel engine (two workers forced): per-cycle cost including the
// epoch barrier, skip-debt bookkeeping, and mailbox merge. The
// allocs/op line is the steady-state contract — after warm-up the
// barrier, mailboxes, and request pools must all recycle, so the
// engine adds zero allocations per cycle.
func BenchmarkTickParallel(b *testing.B) {
	s := benchSystem(b, PolicyThrottleCPUPrio)
	s.Cfg.IntraThreads = 2
	eng := newParEngine(s)
	defer eng.finish()
	for i := 0; i < 200_000; i++ {
		eng.tick()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.tick()
	}
}

// BenchmarkRunMixParallel is BenchmarkRunMix on the parallel engine
// with two intra-run workers. On a multi-core host the gap to
// BenchmarkRunMix is the tentpole's wall-clock win; on a single-core
// host it bounds the barrier overhead instead.
func BenchmarkRunMixParallel(b *testing.B) {
	m, err := workloads.MixByID("M7")
	if err != nil {
		b.Fatal(err)
	}
	cfg := benchCfg(PolicyBaseline)
	cfg.IntraThreads = 2
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		RunMix(cfg, m)
	}
}

// BenchmarkRunMix measures one complete measurement run (build,
// warm-up, measure) of mix M7 under the baseline policy.
func BenchmarkRunMix(b *testing.B) {
	m, err := workloads.MixByID("M7")
	if err != nil {
		b.Fatal(err)
	}
	cfg := benchCfg(PolicyBaseline)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		RunMix(cfg, m)
	}
}

// BenchmarkRunMixNoFF is BenchmarkRunMix with quiescence fast-forward
// disabled — the naive reference loop. The gap between the two is the
// skip-ahead engine's net win on a busy 4-core mix (DESIGN.md §9);
// the alone-run benches below show the win where quiescence is long.
func BenchmarkRunMixNoFF(b *testing.B) {
	m, err := workloads.MixByID("M7")
	if err != nil {
		b.Fatal(err)
	}
	cfg := benchCfg(PolicyBaseline)
	cfg.NoFastForward = true
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		RunMix(cfg, m)
	}
}

// BenchmarkRunGPUAlone measures the GPU-standalone run every
// experiment needs for its baselines: no cores, so the system is
// quiescent between GPU divider ticks, during shader-compute
// countdowns, and across throttle windows — the fast-forward engine's
// best case.
func BenchmarkRunGPUAlone(b *testing.B) {
	cfg := benchCfg(PolicyBaseline)
	game := workloads.Games()[0].Name
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		RunGPUAlone(cfg, game)
	}
}

// BenchmarkRunGPUAloneNoFF is the naive-loop reference for
// BenchmarkRunGPUAlone.
func BenchmarkRunGPUAloneNoFF(b *testing.B) {
	cfg := benchCfg(PolicyBaseline)
	cfg.NoFastForward = true
	game := workloads.Games()[0].Name
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		RunGPUAlone(cfg, game)
	}
}

// BenchmarkRunCPUAlone measures a single-core standalone run (the
// per-app IPC baselines): one memory-bound core quiesces the whole
// system on every DRAM round trip.
func BenchmarkRunCPUAlone(b *testing.B) {
	cfg := benchCfg(PolicyBaseline)
	id := workloads.SpecIDs()[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		RunCPUAlone(cfg, id)
	}
}

// BenchmarkRunCPUAloneNoFF is the naive-loop reference for
// BenchmarkRunCPUAlone.
func BenchmarkRunCPUAloneNoFF(b *testing.B) {
	cfg := benchCfg(PolicyBaseline)
	cfg.NoFastForward = true
	id := workloads.SpecIDs()[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		RunCPUAlone(cfg, id)
	}
}
