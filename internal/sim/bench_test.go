package sim

import (
	"testing"

	"repro/internal/obs"
	"repro/internal/workloads"
)

// benchCfg is a small-but-real configuration: high scale keeps the
// caches tiny so a bench iteration is cheap, while every subsystem
// (ring, LLC, DRAM, GPU pipeline, FRPU/ATU) stays on its real code
// path.
func benchCfg(p Policy) Config {
	cfg := DefaultConfig(192)
	cfg.Policy = p
	cfg.WarmupInstr = 40_000
	cfg.WarmupFrames = 2
	cfg.MeasureInstr = 120_000
	cfg.MinFrames = 2
	cfg.MaxCycles = 30_000_000
	return cfg
}

func benchSystem(b *testing.B, p Policy) *System {
	b.Helper()
	m, err := workloads.MixByID("M7")
	if err != nil {
		b.Fatal(err)
	}
	cfg := benchCfg(p)
	cfg.NumCPUs = len(m.SpecIDs)
	game, apps := MixWorkload(cfg, m)
	return NewSystem(cfg, game, apps)
}

// BenchmarkTick measures the per-cycle cost of the whole system —
// ring movement, spill drain, LLC, DRAM, GPU and core ticks — after
// the caches and queue buffers have warmed up. The steady-state
// ring/spill path contributes 0 allocs; the remaining floor is the
// per-miss *mem.Request churn (see DESIGN.md §6).
func BenchmarkTick(b *testing.B) {
	s := benchSystem(b, PolicyBaseline)
	for i := 0; i < 200_000; i++ {
		s.Tick()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Tick()
	}
}

// BenchmarkTickThrottled is BenchmarkTick under the full proposal, so
// the FRPU/ATU/priority machinery is on the measured path too.
func BenchmarkTickThrottled(b *testing.B) {
	s := benchSystem(b, PolicyThrottleCPUPrio)
	for i := 0; i < 200_000; i++ {
		s.Tick()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Tick()
	}
}

// BenchmarkTickObsDisabled pins the tentpole's zero-overhead claim:
// with no recorder attached (the default), the observability hook in
// Tick is one nil compare, and the steady-state tick must allocate
// exactly as much as BenchmarkTick did before the obs layer existed.
// The allocs/op line is the contract — it must stay at BenchmarkTick's
// floor.
func BenchmarkTickObsDisabled(b *testing.B) {
	s := benchSystem(b, PolicyThrottleCPUPrio)
	// AttachObs deliberately NOT called.
	for i := 0; i < 200_000; i++ {
		s.Tick()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Tick()
	}
}

// BenchmarkTickObsEnabled measures the same path with a recorder at
// the default stride, bounding the cost of enabling observability
// (one row allocation per stride, amortized).
func BenchmarkTickObsEnabled(b *testing.B) {
	s := benchSystem(b, PolicyThrottleCPUPrio)
	s.AttachObs(obs.NewRecorder(0))
	for i := 0; i < 200_000; i++ {
		s.Tick()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Tick()
	}
}

// BenchmarkRunMix measures one complete measurement run (build,
// warm-up, measure) of mix M7 under the baseline policy.
func BenchmarkRunMix(b *testing.B) {
	m, err := workloads.MixByID("M7")
	if err != nil {
		b.Fatal(err)
	}
	cfg := benchCfg(PolicyBaseline)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		RunMix(cfg, m)
	}
}
