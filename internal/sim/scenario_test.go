// Campaign suite: randomized time-varying scenarios driven through
// every engine the simulator has, asserting the cross-cutting
// properties no single unit test can see (DESIGN.md §12). This lives
// in package sim_test because it imports internal/scenario, which
// imports sim.
//
// Per generated scenario (seed-deterministic; a failure names the
// seed, which is a complete reproduction recipe via scenario.Rand):
//
//  1. conservation + monotonicity — a manual tick loop across phase
//     boundaries holds the PR-2 read-conservation invariant at every
//     audit and never moves a cycle/retired counter backwards;
//  2. fast-forward equivalence — the quiescence-skipping run is
//     digest-identical to the naive reference loop;
//  3. engine equivalence — the intra-run parallel engine is
//     digest-identical to the sequential one;
//  4. journal fidelity — the result survives the crash-safe journal
//     byte-identically and replays equal.
//
// Scenario count: HETSIM_SCENARIOS (make chaos runs 200+); base seed:
// HETSIM_SCENARIO_SEED (make soak randomizes it and the log names it).
package sim_test

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strconv"
	"testing"

	"repro/internal/exp"
	"repro/internal/obs"
	"repro/internal/scenario"
	"repro/internal/sim"
)

// campaignPolicies is every policy the paper evaluates; each scenario
// draws one by seed so a 200-scenario campaign covers all nine many
// times over.
var campaignPolicies = []sim.Policy{
	sim.PolicyBaseline,
	sim.PolicyThrottle,
	sim.PolicyThrottleCPUPrio,
	sim.PolicySMS09,
	sim.PolicySMS0,
	sim.PolicyDynPrio,
	sim.PolicyHeLM,
	sim.PolicyForcedBypass,
	sim.PolicyCMBAL,
}

// campaignCfg mirrors the scenario package's property-run size, with
// one deliberate difference: MaxCycles is a small hard cap, so every
// run costs a bounded, known number of ticks no matter what workload
// the generator drew. A capped run is still fully deterministic — the
// equivalence digests must match HitCap and all — which makes the cap
// boundary itself a tested property (the engines must stop on the
// same cycle), and is what lets a 200-scenario campaign finish under
// -race on a small machine.
func campaignCfg(p sim.Policy) sim.Config {
	cfg := sim.DefaultConfig(256)
	cfg.Policy = p
	cfg.WarmupInstr = 1_000
	cfg.WarmupFrames = 1
	cfg.MeasureInstr = 2_500
	cfg.MinFrames = 1
	cfg.MaxCycles = 150_000
	return cfg
}

// campaignSize resolves the scenario budget: the env knob wins (make
// chaos sets 200, make soak more), else a commuter-size default keeps
// plain `go test ./...` fast.
func campaignSize(t *testing.T) (n int, base uint64) {
	n, base = 24, 1
	if v := os.Getenv("HETSIM_SCENARIOS"); v != "" {
		k, err := strconv.Atoi(v)
		if err != nil || k <= 0 {
			t.Fatalf("bad HETSIM_SCENARIOS %q", v)
		}
		n = k
	}
	if v := os.Getenv("HETSIM_SCENARIO_SEED"); v != "" {
		s, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			t.Fatalf("bad HETSIM_SCENARIO_SEED %q", v)
		}
		base = s
	}
	return n, base
}

// scenarioDigest runs the spec with full observability attached and
// hashes the Result plus the sampled metrics CSV and trace JSON — the
// same surface the golden and fast-forward suites pin, so "equal
// digest" means observably indistinguishable, sample for sample.
func scenarioDigest(t *testing.T, cfg sim.Config, sp *scenario.Spec) (sim.Result, string) {
	t.Helper()
	rec := obs.NewRecorder(0)
	r, err := scenario.RunObs(cfg, sp, rec)
	if err != nil {
		t.Fatalf("seed %d: %v", sp.Seed, err)
	}
	h := sha256.New()
	fmt.Fprintf(h, "%+v\n", r)
	if err := rec.WriteCSV(h); err != nil {
		t.Fatal(err)
	}
	if err := rec.WriteTrace(h, cfg.Policy.String()); err != nil {
		t.Fatal(err)
	}
	return r, hex.EncodeToString(h.Sum(nil))
}

// campaignTicks bounds the per-scenario manual tick loop (property 1);
// phase durations start at 10k cycles, so the loop crosses real
// boundaries for most seeds.
const campaignTicks = 12_288

// campaignAudit is the conservation-snapshot stride.
const campaignAudit = 2048

// TestScenarioCampaign generates N random scenarios and proves the
// four campaign properties on each. Subtests are named by seed: a
// failure line carries everything needed to reproduce it.
func TestScenarioCampaign(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign skipped in -short mode")
	}
	n, base := campaignSize(t)
	t.Logf("campaign: %d scenarios, base seed %d", n, base)
	for i := 0; i < n; i++ {
		seed := base + uint64(i)
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			sp := scenario.Rand(seed)
			if err := sp.Validate(); err != nil {
				t.Fatalf("seed %d: generator emitted an invalid spec: %v", seed, err)
			}
			cfg := campaignCfg(campaignPolicies[seed%uint64(len(campaignPolicies))])

			checkInvariants(t, cfg, sp)

			// Property 2+3 against one naive sequential reference.
			ref := cfg
			ref.NoParallel = true
			ref.NoFastForward = true
			refRes, refDigest := scenarioDigest(t, ref, sp)
			if refRes.Interrupted || refRes.Stalled {
				t.Fatalf("seed %d: reference run aborted: %+v", seed, refRes)
			}

			ff := cfg
			ff.NoParallel = true
			if _, d := scenarioDigest(t, ff, sp); d != refDigest {
				t.Errorf("seed %d: fast-forward digest %s != naive %s", seed, d, refDigest)
			}

			par := cfg
			par.IntraThreads = 2
			if _, d := scenarioDigest(t, par, sp); d != refDigest {
				t.Errorf("seed %d: parallel digest %s != sequential %s", seed, d, refDigest)
			}

			checkJournalFidelity(t, sp, refRes)
		})
	}
}

// checkInvariants is campaign property 1: drive a fresh system tick by
// tick — phase transitions land through the same Tick hook the engines
// use — and hold conservation and monotonicity at every audit.
func checkInvariants(t *testing.T, cfg sim.Config, sp *scenario.Spec) {
	t.Helper()
	s, err := scenario.Build(cfg, sp)
	if err != nil {
		t.Fatalf("seed %d: %v", sp.Seed, err)
	}
	var lastCycle, lastGPU uint64
	lastRetired := make([]uint64, len(s.Cores))
	for i := 0; i < campaignTicks; i++ {
		s.Tick()
		if s.Cycle() <= lastCycle {
			t.Fatalf("seed %d cycle %d: clock did not advance", sp.Seed, s.Cycle())
		}
		lastCycle = s.Cycle()
		if s.Cycle()%campaignAudit != 0 {
			continue
		}
		if a := s.AuditReads(); !a.Conserved() {
			t.Fatalf("seed %d cycle %d: reads not conserved: injected %d != delivered %d + in-flight %d",
				sp.Seed, s.Cycle(), a.Injected, a.Delivered, a.InFlight)
		}
		if s.GPU != nil {
			if g := s.GPU.Cycle(); g < lastGPU {
				t.Fatalf("seed %d cycle %d: GPU cycle went backwards: %d -> %d", sp.Seed, s.Cycle(), lastGPU, g)
			} else {
				lastGPU = g
			}
		}
		for ci, c := range s.Cores {
			if r := c.Retired(); r < lastRetired[ci] {
				t.Fatalf("seed %d cycle %d: core %d retired went backwards: %d -> %d",
					sp.Seed, s.Cycle(), ci, lastRetired[ci], r)
			} else {
				lastRetired[ci] = r
			}
		}
	}
	if a := s.AuditReads(); a.Injected == 0 {
		t.Fatalf("seed %d: no read traffic flowed in %d ticks", sp.Seed, campaignTicks)
	}
}

// checkJournalFidelity is campaign property 4: the scenario's result
// written through the crash-safe journal comes back DeepEqual on
// reopen, and appending the identical record again produces a
// byte-identical line — the determinism a resumed sweep's
// byte-identical CSV stands on.
func checkJournalFidelity(t *testing.T, sp *scenario.Spec, res sim.Result) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "campaign.jsonl")
	key := fmt.Sprintf("%s/%d", sp.Digest(), res.Policy)
	rec := exp.Record{Kind: exp.KindScenario, Key: key, Result: &res}

	j, _, _, err := exp.OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(rec); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	firstLine, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	j2, recs, stats, err := exp.OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Skipped() != 0 {
		t.Fatalf("seed %d: clean journal reported damage: %+v", sp.Seed, stats)
	}
	if len(recs) != 1 || recs[0].Kind != exp.KindScenario || recs[0].Key != key {
		t.Fatalf("seed %d: journal replay returned %+v", sp.Seed, recs)
	}
	if recs[0].Result == nil || !reflect.DeepEqual(*recs[0].Result, res) {
		t.Fatalf("seed %d: journaled result diverged:\n got %+v\nwant %+v", sp.Seed, recs[0].Result, res)
	}
	if err := j2.Append(rec); err != nil {
		t.Fatal(err)
	}
	if err := j2.Close(); err != nil {
		t.Fatal(err)
	}
	both, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	second := both[len(firstLine):]
	if !bytes.Equal(second, firstLine) {
		t.Fatalf("seed %d: re-journaled line is not byte-identical:\n%s\nvs\n%s", sp.Seed, second, firstLine)
	}
}

// TestScenarioBoundaryOnEveryEngine pins the sharpest corner the
// campaign samples only probabilistically: a phase boundary placed
// mid-run must land on the exact same cycle under the naive loop, the
// fast-forward engine (NextWake is capped by the boundary), and the
// parallel engine (the conductor applies it at the epoch barrier).
func TestScenarioBoundaryOnEveryEngine(t *testing.T) {
	if testing.Short() {
		t.Skip("differential runs skipped in -short mode")
	}
	sp := &scenario.Spec{
		Version: scenario.SpecVersion,
		Game:    "DOOM3",
		Cores:   []scenario.CoreSpec{{SpecID: 429}, {SpecID: 470}},
		Phases: []scenario.Phase{
			{Name: "launch", Cycles: 30_000},
			{Name: "cutscene", Cycles: 25_000, GPUScale: 2.0},
			{Name: "gameplay", GPUScale: 0.6,
				Cores: []scenario.CoreChange{{Core: 0, SpecID: 462}, {Core: 1, SpecID: 450}}},
		},
	}
	if err := sp.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, p := range campaignPolicies {
		p := p
		t.Run(p.String(), func(t *testing.T) {
			t.Parallel()
			ref := campaignCfg(p)
			ref.NoParallel = true
			ref.NoFastForward = true
			_, want := scenarioDigest(t, ref, sp)

			ff := campaignCfg(p)
			ff.NoParallel = true
			if _, got := scenarioDigest(t, ff, sp); got != want {
				t.Errorf("fast-forward digest %s != naive %s", got, want)
			}

			par := campaignCfg(p)
			par.IntraThreads = 2
			if _, got := scenarioDigest(t, par, sp); got != want {
				t.Errorf("parallel digest %s != sequential %s", got, want)
			}
		})
	}
}

// TestScenarioCPUOnlyEngines covers the no-GPU wiring on all three
// engines (Build drops the frame gates; the GPU domain is absent from
// the parallel conductor).
func TestScenarioCPUOnlyEngines(t *testing.T) {
	if testing.Short() {
		t.Skip("differential runs skipped in -short mode")
	}
	sp := &scenario.Spec{
		Version: scenario.SpecVersion,
		Cores:   []scenario.CoreSpec{{SpecID: 429}, {SpecID: 482}},
		Phases: []scenario.Phase{
			{Name: "warm", Cycles: 20_000},
			{Name: "swap", Cores: []scenario.CoreChange{{Core: 1, SpecID: 437}}},
		},
	}
	if err := sp.Validate(); err != nil {
		t.Fatal(err)
	}
	ref := campaignCfg(sim.PolicyThrottleCPUPrio)
	ref.NoParallel = true
	ref.NoFastForward = true
	_, want := scenarioDigest(t, ref, sp)

	ff := campaignCfg(sim.PolicyThrottleCPUPrio)
	ff.NoParallel = true
	if _, got := scenarioDigest(t, ff, sp); got != want {
		t.Errorf("fast-forward digest %s != naive %s", got, want)
	}
	par := campaignCfg(sim.PolicyThrottleCPUPrio)
	par.IntraThreads = 2
	if _, got := scenarioDigest(t, par, sp); got != want {
		t.Errorf("parallel digest %s != sequential %s", got, want)
	}
}
