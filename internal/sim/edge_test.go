package sim

import (
	"testing"

	"repro/internal/trace"
	"repro/internal/workloads"
)

func TestEmptySystemTerminates(t *testing.T) {
	cfg := fastCfg()
	cfg.NumCPUs = 0
	cfg.MinFrames = 0
	s := NewSystem(cfg, nil, nil)
	r := Run(s)
	if r.HitCap {
		t.Fatalf("empty system hit the cap")
	}
	if len(r.IPC) != 0 || r.GPUFrames != 0 {
		t.Fatalf("empty system produced results: %+v", r)
	}
}

func TestFewerAppsThanCores(t *testing.T) {
	cfg := fastCfg()
	cfg.NumCPUs = 4
	cfg.MinFrames = 0
	apps := []trace.Params{workloads.MustSpec(403).Params, workloads.MustSpec(462).Params}
	s := NewSystem(cfg, nil, apps)
	r := Run(s)
	if len(r.IPC) != 2 {
		t.Fatalf("want 2 cores, got %d", len(r.IPC))
	}
}

func TestMoreAppsThanCoresTruncated(t *testing.T) {
	cfg := fastCfg()
	cfg.NumCPUs = 2
	apps := []trace.Params{
		workloads.MustSpec(403).Params, workloads.MustSpec(462).Params,
		workloads.MustSpec(429).Params,
	}
	s := NewSystem(cfg, nil, apps)
	if len(s.Cores) != 2 {
		t.Fatalf("system built %d cores for NumCPUs=2", len(s.Cores))
	}
}

func TestNumCPUsOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("no panic for NumCPUs=9")
		}
	}()
	cfg := fastCfg()
	cfg.NumCPUs = 9
	NewSystem(cfg, nil, nil)
}

func TestFrameStatsPopulated(t *testing.T) {
	cfg := fastCfg()
	cfg.MinFrames = 3
	r := RunGPUAlone(cfg, "COR")
	fs := r.FrameStats
	if fs.Frames < 3 {
		t.Fatalf("frame stats missing: %+v", fs)
	}
	if fs.P50Cycles <= 0 || fs.P99Cycles < fs.P50Cycles {
		t.Fatalf("bad percentiles: %+v", fs)
	}
	if float64(fs.MinCycles) > fs.P50Cycles || float64(fs.MaxCycles) < fs.P99Cycles {
		t.Fatalf("percentiles outside min/max: %+v", fs)
	}
}

func TestPrefetchConfigPlumbing(t *testing.T) {
	cfg := fastCfg()
	cfg.CPUPrefetch = true
	cfg.NumCPUs = 1
	cfg.MinFrames = 0
	s := NewSystem(cfg, nil, []trace.Params{workloads.MustSpec(462).Params})
	if s.Cores[0].Prefetcher() == nil {
		t.Fatalf("prefetcher not enabled through sim.Config")
	}
	Run(s)
	if s.Cores[0].Prefetcher().Issued == 0 {
		t.Fatalf("prefetcher idle on a streaming app")
	}
}

func TestScaleOneConfigBuilds(t *testing.T) {
	// The full paper-size machine must at least build and tick (we
	// don't run a full experiment at scale 1 in tests).
	cfg := DefaultConfig(1)
	game, apps := MixWorkload(cfg, workloads.EvalMixes()[0])
	s := NewSystem(cfg, game, apps)
	for i := 0; i < 2000; i++ {
		s.Tick()
	}
	if s.Cycle() != 2000 {
		t.Fatalf("cycle = %d", s.Cycle())
	}
}

func TestLLCDRRIPPlumbing(t *testing.T) {
	cfg := fastCfg()
	cfg.LLCDRRIP = true
	cfg.MinFrames = 0
	cfg.NumCPUs = 1
	s := NewSystem(cfg, nil, []trace.Params{workloads.MustSpec(429).Params})
	r := Run(s)
	if len(r.IPC) != 1 || r.IPC[0] <= 0 {
		t.Fatalf("DRRIP system made no progress")
	}
	// The selector must have been trained by leader-set misses.
	if s.LLC.Tags().PSEL() == pselDefault() {
		t.Logf("PSEL untouched (possible but unlikely); misses=%d", s.LLC.CPUMisses())
	}
}

// pselDefault mirrors cache's zero-value selector for the plumbing test.
func pselDefault() int { return 0 }
