package sim

import (
	"math"
	"testing"
)

// FuzzConfigValidate throws arbitrary field values at Config.Validate.
// Properties: Validate never panics, is idempotent, and an accepted
// configuration has finite float parameters (NaN fails every
// comparison, so a naive range check would wave it through — the
// Validate cases are written !(ok) to close exactly that hole).
func FuzzConfigValidate(f *testing.F) {
	f.Add(96, 4, 4e9, 1e9, uint64(4), 40.0, uint64(50_000), 2, uint64(200_000), 4, uint64(1_000_000_000), 0, 0)
	f.Add(1, 0, 1.0, 1.0, uint64(1), 0.0, uint64(1), 0, uint64(1), 0, uint64(1), 0, 0)
	f.Add(256, 8, math.NaN(), 1e9, uint64(4), 40.0, uint64(1), 1, uint64(1), 1, uint64(1), 2, 64)
	f.Add(-1, -1, -1.0, math.Inf(1), uint64(0), math.NaN(), uint64(0), -1, uint64(0), -1, uint64(0), -1, -1)
	f.Fuzz(func(t *testing.T, scale, ncpu int, cpuHz, gpuHz float64, div uint64, fps float64,
		warm uint64, warmF int, meas uint64, minF int, maxCycles uint64, threads, epoch int) {
		cfg := Config{
			Scale: scale, NumCPUs: ncpu,
			CPUFreqHz: cpuHz, GPUFreqHz: gpuHz, GPUDivider: div,
			TargetFPS:   fps,
			WarmupInstr: warm, WarmupFrames: warmF,
			MeasureInstr: meas, MinFrames: minF, MaxCycles: maxCycles,
			IntraThreads: threads, EpochLen: epoch,
		}
		err := cfg.Validate()
		if err2 := cfg.Validate(); (err == nil) != (err2 == nil) {
			t.Fatalf("Validate is not idempotent: %v then %v", err, err2)
		}
		if err != nil {
			return
		}
		for _, v := range []float64{cfg.CPUFreqHz, cfg.GPUFreqHz, cfg.TargetFPS} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("Validate accepted a non-finite float: %+v", cfg)
			}
		}
		if cfg.Scale < 1 || cfg.MeasureInstr < 1 || cfg.MaxCycles < 1 {
			t.Fatalf("Validate accepted an unrunnable config: %+v", cfg)
		}
	})
}
