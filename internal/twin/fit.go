package twin

import (
	"errors"
	"fmt"
	"math"
	"sync"

	"repro/internal/sim"
	"repro/internal/workloads"
)

// AllPolicies is the paper's nine-policy evaluation set — the default
// calibration frontier sweeps every one of them.
func AllPolicies() []sim.Policy {
	return []sim.Policy{
		sim.PolicyBaseline, sim.PolicyThrottle, sim.PolicyThrottleCPUPrio,
		sim.PolicySMS09, sim.PolicySMS0, sim.PolicyDynPrio,
		sim.PolicyHeLM, sim.PolicyForcedBypass, sim.PolicyCMBAL,
	}
}

// Sample is one cycle-accurate frontier measurement: a (mix, policy)
// run's frame rate, per-core IPCs, and DRAM traffic rates (the
// baseline run's rates become anchor features for the per-policy
// correction fits — the bandwidth shares under FR-FCFS are what the
// scheduler-replacing policies redistribute).
type Sample struct {
	MixID  string     `json:"mix"`
	Policy sim.Policy `json:"policy"`
	FPS    float64    `json:"fps"`
	IPC    []float64  `json:"ipc"`
	GPUBPC float64    `json:"gpu_bpc"` // GPU DRAM bytes per cycle
	CPUBPC float64    `json:"cpu_bpc"` // CPU DRAM bytes per cycle
}

// Frontier is the raw material a fit consumes: standalone anchors
// plus the mix×policy sample grid.
type Frontier struct {
	GPUFPS  map[string]float64 `json:"gpu_fps"`
	CPUIPC  map[int]float64    `json:"cpu_ipc"`
	Samples []Sample           `json:"samples"`
}

// DefaultRidge is the ridge penalty Fit applies when the caller
// passes none: strong enough to keep the small per-policy systems
// well-conditioned, weak enough not to bias the fit visibly. The
// leave-one-mix-out sweep in the differential gate is flat across
// 1e-3..3e-2; 1e-2 sits at its centre.
const DefaultRidge = 1e-2

// Fit performs the differential calibration over a frontier: every
// baseline sample becomes its mix's measured anchor, and each
// non-baseline policy gets a least-squares fit of its log deltas away
// from those anchors. Non-baseline samples of mixes with no baseline
// run in the frontier carry no delta signal and are skipped.
func Fit(cfg sim.Config, f *Frontier, ridge float64) (*Coefficients, error) {
	if f == nil || len(f.Samples) == 0 {
		return nil, errors.New("twin: empty frontier")
	}
	if ridge <= 0 {
		ridge = DefaultRidge
	}
	c := &Coefficients{
		Version:      CoeffVersion,
		ConfigDigest: ConfigDigest(cfg),
		Scale:        cfg.Scale,
		TargetFPS:    cfg.TargetFPS,
		GPUFPS:       f.GPUFPS,
		CPUIPC:       f.CPUIPC,
		MixBase:      make(map[string]*MixAnchor),
		Policies:     make(map[string]*PolicyFit),
	}

	// Pass 1: baseline samples become anchors.
	for _, s := range f.Samples {
		if s.Policy != sim.PolicyBaseline || s.FPS <= 0 {
			continue
		}
		c.MixBase[s.MixID] = &MixAnchor{
			FPS:    s.FPS,
			IPC:    append([]float64(nil), s.IPC...),
			GPUBPC: s.GPUBPC,
			CPUBPC: s.CPUBPC,
		}
	}
	if len(c.MixBase) == 0 {
		return nil, errors.New("twin: frontier has no baseline runs to anchor on")
	}

	// Pass 2, stage 1: per-policy IPC-delta regressions against the
	// anchors. The runs are kept so stage 2 can revisit them.
	type rows struct {
		runs []struct {
			t   *mixTerms
			fps float64
		}
		ix [][]float64 // ipc design matrix (one row per core per run)
		iy []float64
	}
	byPolicy := make(map[sim.Policy]*rows)
	terms := make(map[string]*mixTerms)

	for _, s := range f.Samples {
		if s.Policy == sim.PolicyBaseline || s.FPS <= 0 {
			continue
		}
		t := terms[s.MixID]
		if t == nil {
			var err error
			t, err = c.termsFor(s.MixID)
			if errors.Is(err, ErrUncalibrated) {
				continue // no anchor for this mix: no delta to learn
			}
			if err != nil {
				return nil, fmt.Errorf("twin: frontier sample %s: %w", s.MixID, err)
			}
			terms[s.MixID] = t
		}
		if len(s.IPC) != len(t.specIDs) {
			return nil, fmt.Errorf("twin: sample %s/%s has %d IPCs for %d cores",
				s.MixID, s.Policy, len(s.IPC), len(t.specIDs))
		}
		r := byPolicy[s.Policy]
		if r == nil {
			r = &rows{}
			byPolicy[s.Policy] = r
		}
		r.runs = append(r.runs, struct {
			t   *mixTerms
			fps float64
		}{t, s.FPS})
		for i := range t.specIDs {
			if t.anchor.IPC[i] <= 0 || s.IPC[i] <= 0 {
				continue
			}
			r.ix = append(r.ix, ipcFeatures(t, i))
			r.iy = append(r.iy, math.Log(t.anchor.IPC[i]/s.IPC[i]))
		}
	}
	if len(byPolicy) == 0 {
		return nil, errors.New("twin: frontier has no non-baseline runs to fit")
	}

	// Stage 2: the fitted IPC deltas yield each run's bandwidth-shift
	// term, completing the frame design matrix. Training on the
	// *predicted* stage-1 IPCs (not the measured ones) keeps the frame
	// fit free of train/serve skew.
	for p, r := range byPolicy {
		iw, err := solveRidge(r.ix, r.iy, ridge)
		if err != nil {
			return nil, fmt.Errorf("twin: ipc fit for %s: %w", p, err)
		}
		fx := make([][]float64, len(r.runs))
		fy := make([]float64, len(r.runs))
		for i, run := range r.runs {
			fx[i] = frameFeatures(run.t, bwShift(run.t, predictIPCs(iw, run.t)))
			fy[i] = math.Log(run.t.anchor.FPS / run.fps)
		}
		fw, err := solveRidge(fx, fy, ridge)
		if err != nil {
			return nil, fmt.Errorf("twin: frame fit for %s: %w", p, err)
		}
		c.Policies[policyKey(p)] = &PolicyFit{
			Frame:    fw,
			IPC:      iw,
			FrameRMS: rms(fx, fy, fw),
			IPCRMS:   rms(r.ix, r.iy, iw),
			Samples:  len(r.runs),
		}
	}

	c.Digest = c.contentDigest()
	return c, nil
}

// solveRidge solves the normal equations (XᵀX + λ·d̄·I)w = Xᵀy by
// Gaussian elimination with partial pivoting. λ is scaled by the mean
// diagonal of XᵀX so the penalty is dimensionless across feature
// scalings; the intercept column is penalized like any other (λ is
// small enough that this is invisible in the residuals).
func solveRidge(X [][]float64, y []float64, lambda float64) ([]float64, error) {
	if len(X) == 0 {
		return nil, errors.New("no samples")
	}
	k := len(X[0])
	A := make([][]float64, k)
	b := make([]float64, k)
	for i := range A {
		A[i] = make([]float64, k)
	}
	for r, row := range X {
		if len(row) != k {
			return nil, errors.New("ragged design matrix")
		}
		for i := 0; i < k; i++ {
			b[i] += row[i] * y[r]
			for j := i; j < k; j++ {
				A[i][j] += row[i] * row[j]
			}
		}
	}
	// Proportional ridge: each diagonal is inflated by λ of itself, so
	// the penalty is invariant to per-feature scaling and does not let
	// large-magnitude features (log line counts) crush the one-hot
	// block's small diagonals.
	maxDiag := 0.0
	for i := 0; i < k; i++ {
		for j := 0; j < i; j++ {
			A[i][j] = A[j][i]
		}
		if A[i][i] > maxDiag {
			maxDiag = A[i][i]
		}
	}
	for i := 0; i < k; i++ {
		A[i][i] += lambda * (A[i][i] + 1e-6*maxDiag)
	}

	// Gaussian elimination with partial pivoting on [A|b].
	for col := 0; col < k; col++ {
		piv := col
		for r := col + 1; r < k; r++ {
			if math.Abs(A[r][col]) > math.Abs(A[piv][col]) {
				piv = r
			}
		}
		if math.Abs(A[piv][col]) < 1e-12 {
			return nil, errors.New("singular normal equations")
		}
		A[col], A[piv] = A[piv], A[col]
		b[col], b[piv] = b[piv], b[col]
		for r := col + 1; r < k; r++ {
			f := A[r][col] / A[col][col]
			if f == 0 {
				continue
			}
			for cc := col; cc < k; cc++ {
				A[r][cc] -= f * A[col][cc]
			}
			b[r] -= f * b[col]
		}
	}
	w := make([]float64, k)
	for i := k - 1; i >= 0; i-- {
		s := b[i]
		for j := i + 1; j < k; j++ {
			s -= A[i][j] * w[j]
		}
		w[i] = s / A[i][i]
	}
	return w, nil
}

// rms is the fit's residual root-mean-square in log space.
func rms(X [][]float64, y []float64, w []float64) float64 {
	if len(X) == 0 {
		return 0
	}
	s := 0.0
	for i, row := range X {
		d := y[i] - dot(w, row)
		s += d * d
	}
	return math.Sqrt(s / float64(len(X)))
}

// Exec runs the three cycle-accurate entry points a frontier campaign
// needs. LocalExec executes in-process; cmd/calibrate substitutes a
// fleet-backed implementation for fan-out across hetsimd workers.
type Exec interface {
	// Mix runs one heterogeneous mix under policy p.
	Mix(cfg sim.Config, m workloads.Mix, p sim.Policy) (Sample, error)
	// GPU returns a game's standalone frame rate.
	GPU(cfg sim.Config, game string) (float64, error)
	// CPU returns a SPEC application's standalone IPC.
	CPU(cfg sim.Config, specID int) (float64, error)
}

// SampleFromResult distills one mix run into a frontier sample.
func SampleFromResult(r *sim.Result) Sample {
	s := Sample{
		MixID:  r.MixID,
		Policy: r.Policy,
		FPS:    r.GPUFPS,
		IPC:    r.IPC,
	}
	if r.MeasuredCycles > 0 {
		cyc := float64(r.MeasuredCycles)
		s.GPUBPC = float64(r.GPUReadBytes+r.GPUWriteBytes) / cyc
		s.CPUBPC = float64(r.CPUReadBytes+r.CPUWriteBytes) / cyc
	}
	return s
}

// LocalExec is the in-process Exec: it calls the simulator directly.
type LocalExec struct{}

// Mix implements Exec. Like exp.Runner, it sizes the CMP to the mix.
func (LocalExec) Mix(cfg sim.Config, m workloads.Mix, p sim.Policy) (Sample, error) {
	run := cfg
	run.Policy = p
	run.NumCPUs = len(m.SpecIDs)
	r := sim.RunMix(run, m)
	return SampleFromResult(&r), nil
}

// GPU implements Exec.
func (LocalExec) GPU(cfg sim.Config, game string) (float64, error) {
	return sim.RunGPUAlone(cfg, game).GPUFPS, nil
}

// CPU implements Exec.
func (LocalExec) CPU(cfg sim.Config, specID int) (float64, error) {
	return sim.RunCPUAlone(cfg, specID), nil
}

// RunFrontier executes the calibration campaign — every game and SPEC
// application named by mixes standalone, then every mix×policy cell —
// over at most workers concurrent runs, and assembles the Frontier
// deterministically (output order is independent of scheduling).
func RunFrontier(cfg sim.Config, mixes []workloads.Mix, policies []sim.Policy, workers int, ex Exec) (*Frontier, error) {
	if ex == nil {
		ex = LocalExec{}
	}
	if workers < 1 {
		workers = 1
	}
	games := map[string]bool{}
	specs := map[int]bool{}
	for _, m := range mixes {
		games[m.Game] = true
		for _, id := range m.SpecIDs {
			specs[id] = true
		}
	}

	f := &Frontier{
		GPUFPS:  make(map[string]float64, len(games)),
		CPUIPC:  make(map[int]float64, len(specs)),
		Samples: make([]Sample, 0, len(mixes)*len(policies)),
	}
	var (
		mu       sync.Mutex
		wg       sync.WaitGroup
		firstErr error
	)
	sem := make(chan struct{}, workers)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}
	launch := func(fn func()) {
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer func() { <-sem; wg.Done() }()
			fn()
		}()
	}

	for g := range games {
		g := g
		launch(func() {
			fps, err := ex.GPU(cfg, g)
			if err != nil {
				fail(fmt.Errorf("gpu %s: %w", g, err))
				return
			}
			mu.Lock()
			f.GPUFPS[g] = fps
			mu.Unlock()
		})
	}
	for id := range specs {
		id := id
		launch(func() {
			ipc, err := ex.CPU(cfg, id)
			if err != nil {
				fail(fmt.Errorf("cpu %d: %w", id, err))
				return
			}
			mu.Lock()
			f.CPUIPC[id] = ipc
			mu.Unlock()
		})
	}
	type cell struct {
		s   Sample
		err error
	}
	cells := make([]cell, len(mixes)*len(policies))
	for mi, m := range mixes {
		for pi, p := range policies {
			mi, pi, m, p := mi, pi, m, p
			launch(func() {
				s, err := ex.Mix(cfg, m, p)
				s.MixID, s.Policy = m.ID, p
				cells[mi*len(policies)+pi] = cell{s: s, err: err}
			})
		}
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	for _, c := range cells {
		if c.err != nil {
			return nil, fmt.Errorf("mix %s/%s: %w", c.s.MixID, c.s.Policy, c.err)
		}
		f.Samples = append(f.Samples, c.s)
	}
	return f, nil
}
