package twin

import (
	"encoding/json"
	"errors"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/sim"
	"repro/internal/workloads"
)

// testAnchors fabricates standalone anchors and per-mix baselines over
// the real workload catalog, so termsFor resolves without running the
// simulator. Values are arbitrary but physically plausible and vary
// per mix so the regressors see spread.
func testAnchors(mixes []workloads.Mix) (map[string]float64, map[int]float64, map[string]*MixAnchor) {
	gpuFPS := make(map[string]float64)
	cpuIPC := make(map[int]float64)
	base := make(map[string]*MixAnchor)
	for mi, m := range mixes {
		if _, ok := gpuFPS[m.Game]; !ok {
			gpuFPS[m.Game] = 30 + 7*float64(len(gpuFPS))
		}
		a := &MixAnchor{
			FPS:    gpuFPS[m.Game] * (0.55 + 0.03*float64(mi%5)),
			IPC:    make([]float64, len(m.SpecIDs)),
			GPUBPC: 2.0 + 0.2*float64(mi%4),
			CPUBPC: 1.0 + 0.1*float64(mi%3),
		}
		for i, id := range m.SpecIDs {
			if _, ok := cpuIPC[id]; !ok {
				cpuIPC[id] = 0.5 + 0.25*float64(len(cpuIPC)%8)
			}
			a.IPC[i] = cpuIPC[id] * (0.6 + 0.05*float64((mi+i)%5))
		}
		base[m.ID] = a
	}
	return gpuFPS, cpuIPC, base
}

// syntheticFrontier generates a frontier whose non-baseline samples
// follow the model's own generating process under known true weights,
// so Fit must recover them (up to ridge bias).
func syntheticFrontier(t testing.TB, cfg sim.Config, policies []sim.Policy) (*Frontier, map[sim.Policy]*PolicyFit) {
	t.Helper()
	mixes := workloads.EvalMixes()
	gpuFPS, cpuIPC, base := testAnchors(mixes)
	c0 := &Coefficients{GPUFPS: gpuFPS, CPUIPC: cpuIPC, MixBase: base}

	truth := make(map[sim.Policy]*PolicyFit)
	for pi, p := range policies {
		iw := make([]float64, nIPCFeatures())
		fw := make([]float64, nFrameFeatures())
		// Small, deterministic true weights; index-dependent so the
		// two policies differ.
		for i := range iw {
			iw[i] = 0.01 * float64((i+pi)%5-2)
		}
		for i := range fw {
			fw[i] = 0.008 * float64((i+2*pi)%7-3)
		}
		truth[p] = &PolicyFit{Frame: fw, IPC: iw}
	}

	f := &Frontier{GPUFPS: gpuFPS, CPUIPC: cpuIPC}
	for _, m := range mixes {
		a := base[m.ID]
		f.Samples = append(f.Samples, Sample{
			MixID: m.ID, Policy: sim.PolicyBaseline,
			FPS: a.FPS, IPC: append([]float64(nil), a.IPC...),
			GPUBPC: a.GPUBPC, CPUBPC: a.CPUBPC,
		})
		terms, err := c0.termsFor(m.ID)
		if err != nil {
			t.Fatalf("termsFor(%s): %v", m.ID, err)
		}
		for _, p := range policies {
			tw := truth[p]
			ipc := predictIPCs(tw.IPC, terms)
			fps := a.FPS / math.Exp(dot(tw.Frame, frameFeatures(terms, bwShift(terms, ipc))))
			f.Samples = append(f.Samples, Sample{
				MixID: m.ID, Policy: p, FPS: fps, IPC: ipc,
				GPUBPC: a.GPUBPC, CPUBPC: a.CPUBPC,
			})
		}
	}
	return f, truth
}

func TestFitRecoversSyntheticFrontier(t *testing.T) {
	cfg := sim.DefaultConfig(1024)
	policies := []sim.Policy{sim.PolicySMS09, sim.PolicyDynPrio}
	f, _ := syntheticFrontier(t, cfg, policies)

	c, err := Fit(cfg, f, 1e-6)
	if err != nil {
		t.Fatalf("Fit: %v", err)
	}
	m, err := New(c)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	for _, s := range f.Samples {
		if s.Policy == sim.PolicyBaseline {
			continue
		}
		p, err := m.PredictMix(cfg, s.MixID, s.Policy)
		if err != nil {
			t.Fatalf("PredictMix(%s, %s): %v", s.MixID, s.Policy, err)
		}
		if rel := math.Abs(p.FPS/s.FPS - 1); rel > 0.01 {
			t.Errorf("%s/%s: predicted FPS %.4f vs generated %.4f (%.2f%% off)",
				s.MixID, s.Policy, p.FPS, s.FPS, rel*100)
		}
		for i := range s.IPC {
			if rel := math.Abs(p.IPC[i]/s.IPC[i] - 1); rel > 0.01 {
				t.Errorf("%s/%s core %d: predicted IPC %.4f vs generated %.4f",
					s.MixID, s.Policy, i, p.IPC[i], s.IPC[i])
			}
		}
		if p.Confidence <= 0.9 {
			t.Errorf("%s/%s: near-exact fit should be high confidence, got %.3f",
				s.MixID, s.Policy, p.Confidence)
		}
		if p.WeightedSpeedup <= 0 {
			t.Errorf("%s/%s: weighted speedup %.3f", s.MixID, s.Policy, p.WeightedSpeedup)
		}
	}
	for _, pf := range c.Policies {
		if pf.FrameRMS > 1e-3 || pf.IPCRMS > 1e-3 {
			t.Errorf("synthetic fit residuals should be ~0, got frame=%g ipc=%g",
				pf.FrameRMS, pf.IPCRMS)
		}
	}
}

func TestBaselineAnswersFromAnchor(t *testing.T) {
	cfg := sim.DefaultConfig(1024)
	f, _ := syntheticFrontier(t, cfg, []sim.Policy{sim.PolicySMS09})
	m := mustModel(t, cfg, f)

	mix := workloads.EvalMixes()[2]
	anchor := m.Coefficients().MixBase[mix.ID]
	p, err := m.PredictMix(cfg, mix.ID, sim.PolicyBaseline)
	if err != nil {
		t.Fatalf("PredictMix baseline: %v", err)
	}
	if p.FPS != anchor.FPS {
		t.Errorf("baseline FPS %.6f != anchor %.6f", p.FPS, anchor.FPS)
	}
	for i := range anchor.IPC {
		if p.IPC[i] != anchor.IPC[i] {
			t.Errorf("baseline IPC[%d] %.6f != anchor %.6f", i, p.IPC[i], anchor.IPC[i])
		}
	}
	if p.Confidence != 1 || p.WeightedSpeedup != 1 {
		t.Errorf("baseline confidence=%v ws=%v, want 1, 1", p.Confidence, p.WeightedSpeedup)
	}
	if p.FrameTimeMS <= 0 || math.Abs(p.FrameTimeMS-1000/p.FPS) > 1e-9 {
		t.Errorf("frame time %.4f inconsistent with FPS %.4f", p.FrameTimeMS, p.FPS)
	}
	wantThrottle := cfg.TargetFPS > 0 && anchor.FPS > cfg.TargetFPS
	if p.ThrottleOn != wantThrottle {
		t.Errorf("ThrottleOn=%v, want %v (anchor %.1f target %.1f)",
			p.ThrottleOn, wantThrottle, anchor.FPS, cfg.TargetFPS)
	}
}

func TestStandaloneAnchors(t *testing.T) {
	cfg := sim.DefaultConfig(1024)
	f, _ := syntheticFrontier(t, cfg, []sim.Policy{sim.PolicySMS09})
	m := mustModel(t, cfg, f)

	game := workloads.EvalMixes()[0].Game
	p, err := m.PredictGPU(cfg, game)
	if err != nil {
		t.Fatalf("PredictGPU: %v", err)
	}
	if p.FPS != f.GPUFPS[game] || p.Confidence != 1 {
		t.Errorf("PredictGPU: fps=%v conf=%v, want anchor %v at confidence 1",
			p.FPS, p.Confidence, f.GPUFPS[game])
	}
	if _, err := m.PredictGPU(cfg, "NoSuchGame"); !errors.Is(err, ErrUncalibrated) {
		t.Errorf("unknown game: %v, want ErrUncalibrated", err)
	}

	id := workloads.EvalMixes()[0].SpecIDs[0]
	pc, err := m.PredictCPU(cfg, id)
	if err != nil {
		t.Fatalf("PredictCPU: %v", err)
	}
	if pc.MeanIPC != f.CPUIPC[id] || pc.Confidence != 1 {
		t.Errorf("PredictCPU: ipc=%v conf=%v, want anchor %v at confidence 1",
			pc.MeanIPC, pc.Confidence, f.CPUIPC[id])
	}
	if _, err := m.PredictCPU(cfg, 999); !errors.Is(err, ErrUncalibrated) {
		t.Errorf("unknown spec: %v, want ErrUncalibrated", err)
	}
}

func TestHullAndConfigBoundaries(t *testing.T) {
	cfg := sim.DefaultConfig(1024)
	f, _ := syntheticFrontier(t, cfg, []sim.Policy{sim.PolicySMS09})
	m := mustModel(t, cfg, f)

	other := cfg
	other.TargetFPS = 60
	if _, err := m.PredictMix(other, "M1", sim.PolicySMS09); !errors.Is(err, ErrConfigMismatch) {
		t.Errorf("config drift: %v, want ErrConfigMismatch", err)
	}
	if _, err := m.PredictGPU(other, "anything"); !errors.Is(err, ErrConfigMismatch) {
		t.Errorf("config drift gpu: %v, want ErrConfigMismatch", err)
	}
	if _, err := m.PredictCPU(other, 1); !errors.Is(err, ErrConfigMismatch) {
		t.Errorf("config drift cpu: %v, want ErrConfigMismatch", err)
	}
	if _, err := m.PredictMix(cfg, "W1", sim.PolicySMS09); !errors.Is(err, ErrUncalibrated) {
		t.Errorf("unanchored mix: %v, want ErrUncalibrated", err)
	}
	if _, err := m.PredictMix(cfg, "M1", sim.PolicyHeLM); !errors.Is(err, ErrUncalibrated) {
		t.Errorf("unfitted policy: %v, want ErrUncalibrated", err)
	}
}

func TestConfigDigestScope(t *testing.T) {
	cfg := sim.DefaultConfig(1024)
	base := ConfigDigest(cfg)

	perRun := cfg
	perRun.NumCPUs = 2
	perRun.Policy = sim.PolicyHeLM
	if ConfigDigest(perRun) != base {
		t.Error("digest must ignore per-run fields (NumCPUs, Policy)")
	}
	structural := cfg
	structural.TargetFPS = 60
	if ConfigDigest(structural) == base {
		t.Error("digest must change with structural fields (TargetFPS)")
	}
}

func TestIPCClampAtRetireWidth(t *testing.T) {
	cfg := sim.DefaultConfig(1024)
	f, _ := syntheticFrontier(t, cfg, []sim.Policy{sim.PolicySMS09})
	c, err := Fit(cfg, f, 0) // 0 falls back to DefaultRidge
	if err != nil {
		t.Fatalf("Fit: %v", err)
	}
	// A large negative intercept in the IPC delta predicts an absurd
	// speedup; the clamp must hold it at the retire width.
	pf := c.Policies[policyKey(sim.PolicySMS09)]
	for i := range pf.IPC {
		pf.IPC[i] = 0
	}
	pf.IPC[nApps()] = -50
	m, err := New(c)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	p, err := m.PredictMix(cfg, "M1", sim.PolicySMS09)
	if err != nil {
		t.Fatalf("PredictMix: %v", err)
	}
	for i, v := range p.IPC {
		if v != ipcCap {
			t.Errorf("core %d: IPC %v, want clamped to %v", i, v, ipcCap)
		}
	}
}

func TestNewValidation(t *testing.T) {
	cfg := sim.DefaultConfig(1024)
	f, _ := syntheticFrontier(t, cfg, []sim.Policy{sim.PolicySMS09})
	good, err := Fit(cfg, f, 0)
	if err != nil {
		t.Fatalf("Fit: %v", err)
	}

	if _, err := New(nil); err == nil {
		t.Error("New(nil) must fail")
	}
	bad := *good
	bad.Version = CoeffVersion + 1
	if _, err := New(&bad); err == nil {
		t.Error("version mismatch must fail")
	}
	bad = *good
	bad.MixBase = nil
	if _, err := New(&bad); err == nil {
		t.Error("missing anchors must fail")
	}
	bad = *good
	bad.Policies = map[string]*PolicyFit{"3": {Frame: []float64{1}, IPC: []float64{1}}}
	if _, err := New(&bad); err == nil {
		t.Error("wrong fit arity must fail")
	}
	bad = *good
	bad.Policies = map[string]*PolicyFit{}
	if _, err := New(&bad); err == nil {
		t.Error("missing policy fits must fail")
	}
}

func TestSaveLoadRoundtrip(t *testing.T) {
	cfg := sim.DefaultConfig(1024)
	f, _ := syntheticFrontier(t, cfg, []sim.Policy{sim.PolicySMS09})
	c, err := Fit(cfg, f, 0)
	if err != nil {
		t.Fatalf("Fit: %v", err)
	}
	path := filepath.Join(t.TempDir(), "coeffs.json")
	if err := Save(path, c); err != nil {
		t.Fatalf("Save: %v", err)
	}
	m, err := Load(path)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if m.Coefficients().Digest != c.Digest {
		t.Errorf("digest changed across roundtrip: %s vs %s", m.Coefficients().Digest, c.Digest)
	}
	p1, err := m.PredictMix(cfg, "M1", sim.PolicySMS09)
	if err != nil {
		t.Fatalf("PredictMix after Load: %v", err)
	}
	if p1.CoeffDigest != c.Digest {
		t.Errorf("prediction carries digest %q, want %q", p1.CoeffDigest, c.Digest)
	}

	// Hand-edit the payload without restamping the digest: Load must
	// refuse the file.
	tampered := *c
	tampered.TargetFPS++
	raw, err := json.Marshal(&tampered)
	if err != nil {
		t.Fatalf("marshal tampered: %v", err)
	}
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatalf("write tampered: %v", err)
	}
	if _, err := Load(path); !errors.Is(err, ErrDigest) {
		t.Errorf("tampered file: %v, want ErrDigest", err)
	}
	if _, err := Load(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing file must fail")
	}
}

func TestFitRejectsBadFrontiers(t *testing.T) {
	cfg := sim.DefaultConfig(1024)
	if _, err := Fit(cfg, nil, 0); err == nil {
		t.Error("nil frontier must fail")
	}
	if _, err := Fit(cfg, &Frontier{}, 0); err == nil {
		t.Error("empty frontier must fail")
	}

	f, _ := syntheticFrontier(t, cfg, []sim.Policy{sim.PolicySMS09})
	var noBase Frontier
	noBase.GPUFPS, noBase.CPUIPC = f.GPUFPS, f.CPUIPC
	for _, s := range f.Samples {
		if s.Policy != sim.PolicyBaseline {
			noBase.Samples = append(noBase.Samples, s)
		}
	}
	if _, err := Fit(cfg, &noBase, 0); err == nil {
		t.Error("frontier without baseline anchors must fail")
	}

	var onlyBase Frontier
	onlyBase.GPUFPS, onlyBase.CPUIPC = f.GPUFPS, f.CPUIPC
	for _, s := range f.Samples {
		if s.Policy == sim.PolicyBaseline {
			onlyBase.Samples = append(onlyBase.Samples, s)
		}
	}
	if _, err := Fit(cfg, &onlyBase, 0); err == nil {
		t.Error("frontier without policy runs must fail")
	}

	bad := *f
	bad.Samples = append([]Sample(nil), f.Samples...)
	for i, s := range bad.Samples {
		if s.Policy != sim.PolicyBaseline {
			s.IPC = s.IPC[:1]
			bad.Samples[i] = s
			break
		}
	}
	if _, err := Fit(cfg, &bad, 0); err == nil || !strings.Contains(err.Error(), "IPCs") {
		t.Errorf("IPC arity mismatch: %v, want arity error", err)
	}
}

func TestCalibrationErrAndConfidence(t *testing.T) {
	sharp := &PolicyFit{FrameRMS: 0, IPCRMS: 0}
	soft := &PolicyFit{FrameRMS: 0.08, IPCRMS: 0.09}
	if c := confidence(sharp); c != 1 {
		t.Errorf("zero-residual confidence %v, want 1", c)
	}
	if c := confidence(soft); c >= DefaultTwinThresholdForTest() {
		t.Errorf("soft fit confidence %v should fall below the default threshold", c)
	}
	m := &Model{c: &Coefficients{Policies: map[string]*PolicyFit{"3": soft, "4": sharp}}}
	want := 100 * (math.Expm1(0.08) + 0) / 2
	if got := m.CalibrationErrPct(); math.Abs(got-want) > 1e-9 {
		t.Errorf("CalibrationErrPct %v, want %v", got, want)
	}
}

// DefaultTwinThresholdForTest mirrors exp.DefaultTwinThreshold without
// an import cycle: the soft-fit confidence must sit below the serving
// tier's default escalation floor.
func DefaultTwinThresholdForTest() float64 { return 0.7 }

type fakeExec struct {
	failMix string
}

func (f fakeExec) Mix(cfg sim.Config, m workloads.Mix, p sim.Policy) (Sample, error) {
	if m.ID == f.failMix {
		return Sample{}, errors.New("boom")
	}
	ipc := make([]float64, len(m.SpecIDs))
	for i := range ipc {
		ipc[i] = 0.5 + 0.1*float64(i) + 0.01*float64(p)
	}
	return Sample{FPS: 20 + float64(p), IPC: ipc, GPUBPC: 2, CPUBPC: 1}, nil
}

func (fakeExec) GPU(cfg sim.Config, game string) (float64, error) {
	return 30 + float64(len(game)), nil
}

func (fakeExec) CPU(cfg sim.Config, specID int) (float64, error) {
	return 1 + float64(specID)/1000, nil
}

func TestRunFrontierAssemblesDeterministically(t *testing.T) {
	cfg := sim.DefaultConfig(1024)
	mixes := workloads.EvalMixes()[:4]
	pols := []sim.Policy{sim.PolicyBaseline, sim.PolicySMS09}

	a, err := RunFrontier(cfg, mixes, pols, 4, fakeExec{})
	if err != nil {
		t.Fatalf("RunFrontier: %v", err)
	}
	b, err := RunFrontier(cfg, mixes, pols, 1, fakeExec{})
	if err != nil {
		t.Fatalf("RunFrontier serial: %v", err)
	}
	if len(a.Samples) != len(mixes)*len(pols) || len(b.Samples) != len(a.Samples) {
		t.Fatalf("sample counts: %d and %d, want %d", len(a.Samples), len(b.Samples), len(mixes)*len(pols))
	}
	for i := range a.Samples {
		if a.Samples[i].MixID != b.Samples[i].MixID || a.Samples[i].Policy != b.Samples[i].Policy {
			t.Fatalf("sample %d ordering differs across worker counts", i)
		}
	}
	for _, m := range mixes {
		if a.GPUFPS[m.Game] <= 0 {
			t.Errorf("game %s missing standalone anchor", m.Game)
		}
		for _, id := range m.SpecIDs {
			if a.CPUIPC[id] <= 0 {
				t.Errorf("spec %d missing standalone anchor", id)
			}
		}
	}

	if _, err := RunFrontier(cfg, mixes, pols, 2, fakeExec{failMix: mixes[1].ID}); err == nil {
		t.Error("RunFrontier must surface a cell failure")
	}
}

func TestSampleFromResult(t *testing.T) {
	r := &sim.Result{
		MixID: "M3", Policy: sim.PolicyHeLM, GPUFPS: 41.5,
		IPC:            []float64{1, 2},
		MeasuredCycles: 1000,
		GPUReadBytes:   1500, GPUWriteBytes: 500,
		CPUReadBytes: 600, CPUWriteBytes: 200,
	}
	s := SampleFromResult(r)
	if s.MixID != "M3" || s.Policy != sim.PolicyHeLM || s.FPS != 41.5 {
		t.Errorf("header fields wrong: %+v", s)
	}
	if s.GPUBPC != 2.0 || s.CPUBPC != 0.8 {
		t.Errorf("bandwidth: gpu=%v cpu=%v, want 2.0, 0.8", s.GPUBPC, s.CPUBPC)
	}
}

func BenchmarkPredictMix(b *testing.B) {
	cfg := sim.DefaultConfig(1024)
	f, _ := syntheticFrontier(b, cfg, []sim.Policy{sim.PolicySMS09})
	c, err := Fit(cfg, f, 0)
	if err != nil {
		b.Fatalf("Fit: %v", err)
	}
	m, err := New(c)
	if err != nil {
		b.Fatalf("New: %v", err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.PredictMix(cfg, "M7", sim.PolicySMS09); err != nil {
			b.Fatal(err)
		}
	}
}

func mustModel(t *testing.T, cfg sim.Config, f *Frontier) *Model {
	t.Helper()
	c, err := Fit(cfg, f, 0)
	if err != nil {
		t.Fatalf("Fit: %v", err)
	}
	m, err := New(c)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return m
}
