package twin

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
)

// contentDigest is the sha256 over the coefficient set's canonical
// JSON with the Digest field itself cleared — the same
// self-authenticating layout the fleet's result store uses.
func (c *Coefficients) contentDigest() string {
	cp := *c
	cp.Digest = ""
	data, err := json.Marshal(&cp)
	if err != nil {
		// Coefficients is plain data; Marshal cannot fail on it.
		panic(fmt.Sprintf("twin: digest marshal: %v", err))
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// ErrDigest marks a coefficient file whose content does not match its
// embedded digest (truncated write, hand edit, version skew).
var ErrDigest = errors.New("twin: coefficient file digest mismatch")

// Save writes the coefficient file atomically (temp file + rename in
// the destination directory), stamping the content digest first.
func Save(path string, c *Coefficients) error {
	if c == nil {
		return errors.New("twin: nil coefficients")
	}
	c.Digest = c.contentDigest()
	data, err := json.MarshalIndent(c, "", "  ")
	if err != nil {
		return fmt.Errorf("twin: encode coefficients: %w", err)
	}
	data = append(data, '\n')
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".twin-coeffs-*")
	if err != nil {
		return fmt.Errorf("twin: save coefficients: %w", err)
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("twin: save coefficients: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("twin: save coefficients: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("twin: save coefficients: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("twin: save coefficients: %w", err)
	}
	return nil
}

// Load reads a coefficient file, verifies its content digest and
// schema version, and returns a serving Model.
func Load(path string) (*Model, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("twin: load coefficients: %w", err)
	}
	var c Coefficients
	if err := json.Unmarshal(data, &c); err != nil {
		return nil, fmt.Errorf("twin: decode coefficients %s: %w", path, err)
	}
	if c.Digest == "" || c.Digest != c.contentDigest() {
		return nil, fmt.Errorf("%w: %s", ErrDigest, path)
	}
	m, err := New(&c)
	if err != nil {
		return nil, fmt.Errorf("twin: %s: %w", path, err)
	}
	return m, nil
}
