// Package twin is the analytic fast path of the serving stack: a
// calibrated closed-form performance model that answers what-if
// queries — frame rate, per-core CPU IPC, weighted speedup, and the
// throttling outcome — in microseconds instead of the ~seconds a
// cycle-accurate simulation costs (DESIGN.md §14).
//
// The calibration protocol is differential: the frontier campaign
// measures every workload standalone (each game's FPS, each SPEC
// application's IPC) and every calibrated mix once under the FR-FCFS
// baseline — those measurements become *anchors* in the coefficient
// file — and then measures the training mixes under every policy.
// Each non-baseline policy gets a least-squares correction model, fit
// in log space, that predicts how that policy shifts a mix away from
// its baseline anchor. The regressors are roofline-style terms: the
// mix's memory-bandwidth demand (per-application LLC-miss pressure
// times standalone IPC, the GPU title's DRAM-visible line traffic per
// frame), its MLP/working-set character, the baseline run's measured
// DRAM bandwidth split, plus one indicator per calibrated application
// (the frontier shows per-application identity dominates contention
// response). Policy deltas are far smoother functions of these terms
// than absolute performance is, which is what puts a closed-form
// model inside a few percent of the cycle-accurate truth.
//
// Every prediction carries a confidence score derived from the fitted
// residuals; the serving tier (exp.Runner) escalates auto-tier
// queries to full simulation when confidence falls below threshold or
// the query leaves the calibrated hull (an uncalibrated mix, game,
// application, policy, or simulator configuration). A coefficient
// file is bound to one simulator configuration by digest — a model is
// never consulted for a config it was not calibrated against.
package twin

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"strconv"

	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// CoeffVersion is the coefficient-file schema version; Load rejects
// files written by an incompatible twin.
const CoeffVersion = 2

// ipcCap is the retire width of the simulated cores: no prediction
// may exceed it (the frontier shows cache-resident applications pin
// there exactly).
const ipcCap = 4.0

// Typed reasons a prediction cannot be served; the auto tier treats
// any of them as "escalate to full simulation".
var (
	// ErrConfigMismatch: the model was calibrated for a different
	// simulator configuration (digest mismatch).
	ErrConfigMismatch = errors.New("twin: config digest does not match calibration")

	// ErrUncalibrated: the query names a mix, policy, game, or
	// application outside the calibrated hull.
	ErrUncalibrated = errors.New("twin: query outside the calibrated hull")
)

// PolicyFit is one non-baseline policy's correction model:
// least-squares weights for the frame-delta and per-core IPC-delta
// regressions, both in log space (so the residual RMS reads as a
// relative error), plus the fit's residual statistics.
type PolicyFit struct {
	Frame    []float64 `json:"frame"`     // log frame-delta weights
	IPC      []float64 `json:"ipc"`       // log IPC-delta weights
	FrameRMS float64   `json:"frame_rms"` // residual RMS of the frame fit (log space)
	IPCRMS   float64   `json:"ipc_rms"`   // residual RMS of the IPC fit (log space)
	Samples  int       `json:"samples"`   // mix runs this policy was fitted on
}

// MixAnchor is one calibrated mix's measured baseline: frame rate,
// per-core IPC, and the DRAM bandwidth split under FR-FCFS. The
// anchor is both the baseline-policy answer and the reference every
// policy correction is applied to.
type MixAnchor struct {
	FPS    float64   `json:"fps"`
	IPC    []float64 `json:"ipc"`
	GPUBPC float64   `json:"gpu_bpc"` // GPU DRAM bytes per cycle
	CPUBPC float64   `json:"cpu_bpc"` // CPU DRAM bytes per cycle
}

// Coefficients is the versioned, content-digested calibration
// artifact `calibrate -fit-twin` emits and `hetsimd -twin-coeffs`
// loads. It binds to exactly one simulator configuration (by digest)
// and carries the measured anchors next to the per-policy fits.
type Coefficients struct {
	Version      int     `json:"version"`
	ConfigDigest string  `json:"config_digest"`
	Scale        int     `json:"scale"`
	TargetFPS    float64 `json:"target_fps"`

	// GPUFPS is each calibrated game's measured standalone frame
	// rate; CPUIPC each calibrated SPEC application's measured
	// standalone IPC. They answer twin-tier gpu/<game> and cpu/<id>
	// queries exactly and feed the demand terms of the regressors.
	GPUFPS map[string]float64 `json:"gpu_fps"`
	CPUIPC map[int]float64    `json:"cpu_ipc"`

	// MixBase maps each calibrated mix to its measured baseline
	// anchor — the hull: a mix absent here cannot be predicted.
	MixBase map[string]*MixAnchor `json:"mix_base"`

	// Policies maps each non-baseline policy number (decimal string
	// via JSON) to its fitted correction model.
	Policies map[string]*PolicyFit `json:"policies"`

	// Digest is the sha256 over the file's canonical JSON with Digest
	// itself cleared; Load refuses a file whose content does not match.
	Digest string `json:"digest"`
}

// Prediction is one twin answer. All quantities are model outputs;
// Confidence in (0, 1] scores how much the calibration residuals
// support them (measured anchors answer at 1).
type Prediction struct {
	FPS             float64   `json:"fps,omitempty"`
	FrameTimeMS     float64   `json:"frame_time_ms,omitempty"`
	IPC             []float64 `json:"ipc,omitempty"`
	MeanIPC         float64   `json:"mean_ipc,omitempty"`
	WeightedSpeedup float64   `json:"weighted_speedup,omitempty"`
	// ThrottleOn predicts the ATU decision: whether the baseline
	// frame rate clears the QoS target, which is when the proposal's
	// throttling engages (paper Fig. 6).
	ThrottleOn  bool    `json:"throttle_on,omitempty"`
	Confidence  float64 `json:"confidence"`
	CoeffDigest string  `json:"coeff_digest,omitempty"`
}

// Model wraps validated coefficients for serving.
type Model struct {
	c *Coefficients
}

// New validates c and wraps it for prediction.
func New(c *Coefficients) (*Model, error) {
	if c == nil {
		return nil, errors.New("twin: nil coefficients")
	}
	if c.Version != CoeffVersion {
		return nil, fmt.Errorf("twin: coefficient version %d (want %d)", c.Version, CoeffVersion)
	}
	if len(c.GPUFPS) == 0 || len(c.CPUIPC) == 0 || len(c.MixBase) == 0 {
		return nil, errors.New("twin: coefficients missing anchors")
	}
	if len(c.Policies) == 0 {
		return nil, errors.New("twin: coefficients missing policy fits")
	}
	for name, pf := range c.Policies {
		if pf == nil || len(pf.Frame) != nFrameFeatures() || len(pf.IPC) != nIPCFeatures() {
			return nil, fmt.Errorf("twin: policy %s fit has wrong arity", name)
		}
	}
	return &Model{c: c}, nil
}

// Coefficients returns the model's backing coefficient set.
func (m *Model) Coefficients() *Coefficients { return m.c }

// CalibrationErrPct is the model's mean fitted frame residual as a
// relative-percent error — the /metricsz twin_calibration_error gauge.
func (m *Model) CalibrationErrPct() float64 {
	if len(m.c.Policies) == 0 {
		return 0
	}
	sum := 0.0
	for _, pf := range m.c.Policies {
		sum += math.Expm1(pf.FrameRMS)
	}
	return 100 * sum / float64(len(m.c.Policies))
}

// ConfigDigest fingerprints the structural simulator configuration a
// calibration binds to: capacities, frequencies, termination, and the
// paper's knobs. Per-run fields (NumCPUs follows the mix; Policy is
// the query; engine selection and hooks are observationally inert)
// are deliberately excluded.
func ConfigDigest(cfg sim.Config) string {
	s := struct {
		Scale        int
		CPUFreqHz    float64
		GPUFreqHz    float64
		GPUDivider   uint64
		TargetFPS    float64
		CPUPrefetch  bool
		LLCDRRIP     bool
		WarmupInstr  uint64
		WarmupFrames int
		MeasureInstr uint64
		MinFrames    int
		MaxCycles    uint64
	}{
		cfg.Scale, cfg.CPUFreqHz, cfg.GPUFreqHz, cfg.GPUDivider,
		cfg.TargetFPS, cfg.CPUPrefetch, cfg.LLCDRRIP,
		cfg.WarmupInstr, cfg.WarmupFrames, cfg.MeasureInstr,
		cfg.MinFrames, cfg.MaxCycles,
	}
	data, _ := json.Marshal(s) // fixed struct of scalars: cannot fail
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// mixTerms bundles the catalog- and anchor-derived quantities the
// regressors draw on for one calibrated mix.
type mixTerms struct {
	game     workloads.Game
	specIDs  []int
	apps     []trace.Params
	aloneFPS float64   // game's standalone FPS anchor
	aloneIPC []float64 // per-core standalone IPC anchors
	anchor   *MixAnchor

	missSum float64 // Σ per-kilo-instruction LLC pressure
	wsMB    float64 // Σ working sets, MiB
	stream  float64 // Σ streaming fractions
	demand  float64 // Σ miss pressure × standalone IPC (unconstrained demand)
}

// appMiss approximates one application's LLC pressure per
// kilo-instruction: the references falling outside its hot set.
func appMiss(p trace.Params) float64 {
	return float64(p.MemPerKilo) * (1 - p.HotFrac)
}

// dramLines is the game's DRAM-visible line traffic per frame at full
// scale: texture misses past the hot set plus depth and color, per
// tile, times tiles, times overdraw.
func dramLines(g workloads.Game) float64 {
	return float64(g.Tiles()) * float64(g.RTPs) *
		(float64(g.TexPerTile)*(1-g.TexHotFrac) + float64(g.DepthPerTile+g.ColorPerTile))
}

// termsFor resolves a calibrated mix into its regression terms; every
// lookup failure maps to ErrUncalibrated (the hull boundary).
func (c *Coefficients) termsFor(mixID string) (*mixTerms, error) {
	anchor := c.MixBase[mixID]
	if anchor == nil {
		return nil, fmt.Errorf("%w: mix %s has no baseline anchor", ErrUncalibrated, mixID)
	}
	mix, err := workloads.MixByID(mixID)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrUncalibrated, err)
	}
	g, err := workloads.GameByName(mix.Game)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrUncalibrated, err)
	}
	aloneFPS := c.GPUFPS[mix.Game]
	if aloneFPS <= 0 {
		return nil, fmt.Errorf("%w: game %s not calibrated", ErrUncalibrated, mix.Game)
	}
	if len(anchor.IPC) != len(mix.SpecIDs) {
		return nil, fmt.Errorf("twin: anchor for %s has %d IPCs for %d cores",
			mixID, len(anchor.IPC), len(mix.SpecIDs))
	}
	t := &mixTerms{
		game:     g,
		specIDs:  mix.SpecIDs,
		apps:     make([]trace.Params, len(mix.SpecIDs)),
		aloneFPS: aloneFPS,
		aloneIPC: make([]float64, len(mix.SpecIDs)),
		anchor:   anchor,
	}
	for i, id := range mix.SpecIDs {
		app, err := workloads.Spec(id)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrUncalibrated, err)
		}
		alone := c.CPUIPC[id]
		if alone <= 0 {
			return nil, fmt.Errorf("%w: SPEC %d not calibrated", ErrUncalibrated, id)
		}
		t.apps[i] = app.Params
		t.aloneIPC[i] = alone
		t.missSum += appMiss(app.Params)
		t.wsMB += float64(app.Params.WSBytes) / (1 << 20)
		t.stream += app.Params.StreamFrac
		t.demand += appMiss(app.Params) * alone
	}
	return t, nil
}

// specSlot maps a catalog application ID to its one-hot slot.
var specSlot = func() map[int]int {
	m := make(map[int]int, len(workloads.SpecIDs()))
	for i, id := range workloads.SpecIDs() {
		m[id] = i
	}
	return m
}()

func nApps() int { return len(workloads.SpecIDs()) }

// Frame-delta regressor: shared context terms, the two-stage
// bandwidth-shift term (what the stage-1 IPC predictions say the
// policy does to CPU-side DRAM pressure), plus one presence indicator
// per calibrated application (which applications share the memory
// system determines how a scheduler change re-divides it).
const nFrameCtx = 10

func nFrameFeatures() int { return nFrameCtx + nApps() }

func frameFeatures(t *mixTerms, shift float64) []float64 {
	x := make([]float64, nFrameFeatures())
	x[0] = 1
	x[1] = math.Log(t.aloneFPS)
	x[2] = math.Log(dramLines(t.game))
	x[3] = math.Log1p(t.wsMB)
	x[4] = t.stream * 25 / 4
	x[5] = math.Log1p(t.demand)
	x[6] = math.Log1p(t.anchor.GPUBPC)
	x[7] = math.Log1p(t.anchor.CPUBPC)
	x[8] = bwShare(t.anchor)
	x[9] = shift
	for _, id := range t.specIDs {
		x[nFrameCtx+specSlot[id]] = 1
	}
	return x
}

// predictIPCs applies one policy's fitted IPC-delta weights to every
// core of a mix — the same path Fit uses when it derives the
// bandwidth-shift frame feature, so training and serving agree.
func predictIPCs(iw []float64, t *mixTerms) []float64 {
	out := make([]float64, len(t.apps))
	for i := range t.apps {
		out[i] = clampIPC(t.anchor.IPC[i] / math.Exp(dot(iw, ipcFeatures(t, i))))
	}
	return out
}

// bwShift is the stage-two roofline term: the change in CPU-side DRAM
// demand implied by the predicted per-core IPC deltas (miss pressure
// times IPC change, summed over cores). Negative when the policy
// slows the CPUs down and frees bandwidth for the GPU.
func bwShift(t *mixTerms, ipc []float64) float64 {
	s := 0.0
	for i, p := range t.apps {
		s += appMiss(p) * (ipc[i] - t.anchor.IPC[i])
	}
	return s
}

// IPC-delta regressor for one core: the application's identity (one
// indicator per calibrated application) plus shared context terms —
// co-runner pressure and the baseline bandwidth split the policy is
// about to redistribute.
const nIPCCtx = 12

func nIPCFeatures() int { return nApps() + nIPCCtx }

func ipcFeatures(t *mixTerms, core int) []float64 {
	own := t.apps[core]
	x := make([]float64, nIPCFeatures())
	x[specSlot[t.specIDs[core]]] = 1
	k := nApps()
	cont := 0.0
	if t.anchor.IPC[core] > 0 {
		cont = math.Log(t.aloneIPC[core] / t.anchor.IPC[core])
	}
	// Achieved DRAM traffic of the co-running cores under baseline
	// (miss pressure × achieved IPC ∝ misses per cycle): whether a
	// core's contention is GPU-caused or CPU-caused decides how much a
	// scheduler change that re-divides GPU/CPU service can help it.
	others := 0.0
	for j := range t.apps {
		if j != core {
			others += appMiss(t.apps[j]) * t.anchor.IPC[j]
		}
	}
	share := bwShare(t.anchor)
	x[k] = 1
	x[k+1] = math.Log(t.aloneFPS)
	x[k+2] = math.Log(dramLines(t.game))
	x[k+3] = math.Log1p(t.missSum - appMiss(own))
	x[k+4] = math.Log1p(t.wsMB - float64(own.WSBytes)/(1<<20))
	x[k+5] = math.Log1p(t.anchor.GPUBPC)
	x[k+6] = share
	x[k+7] = cont
	x[k+8] = math.Log1p(appMiss(own)) * share
	x[k+9] = math.Log1p(others)
	x[k+10] = cont * share
	x[k+11] = cont * math.Log1p(others)
	return x
}

// bwShare is the GPU's measured share of baseline DRAM bandwidth.
func bwShare(a *MixAnchor) float64 {
	tot := a.GPUBPC + a.CPUBPC
	if tot <= 0 {
		return 0
	}
	return a.GPUBPC / tot
}

// policyKey is the Policies map key for p.
func policyKey(p sim.Policy) string { return strconv.Itoa(int(p)) }

// dot is the regression inner product.
func dot(w, x []float64) float64 {
	s := 0.0
	for i := range w {
		s += w[i] * x[i]
	}
	return s
}

// clampIPC bounds a predicted IPC to the physically meaningful range.
func clampIPC(v float64) float64 {
	if v > ipcCap {
		return ipcCap
	}
	if v < 0 {
		return 0
	}
	return v
}

// ZeroPolicyFit returns an identity correction of the right arity —
// all-zero weights, so the policy predicts exactly the baseline
// anchor — carrying the given residual statistics. Tests build
// synthetic models with controlled confidence from it.
func ZeroPolicyFit(frameRMS, ipcRMS float64) *PolicyFit {
	return &PolicyFit{
		Frame:    make([]float64, nFrameFeatures()),
		IPC:      make([]float64, nIPCFeatures()),
		FrameRMS: frameRMS,
		IPCRMS:   ipcRMS,
	}
}

// confidence maps a policy fit's residuals to (0, 1]: exp of the
// combined log-space RMS, sharpened so a fit whose residuals imply
// more than a few percent of relative error falls under the default
// escalation threshold.
func confidence(pf *PolicyFit) float64 {
	c := math.Exp(-8 * (pf.FrameRMS + pf.IPCRMS))
	if c > 1 {
		c = 1
	}
	if c <= 0 {
		c = 1e-9
	}
	return c
}

// check validates the query config against the calibration.
func (m *Model) check(cfg sim.Config) error {
	if ConfigDigest(cfg) != m.c.ConfigDigest {
		return ErrConfigMismatch
	}
	return nil
}

// PredictMix predicts one heterogeneous mix under policy p: frame
// rate, per-core IPC, weighted speedup versus baseline, and the
// throttling outcome. The baseline policy answers straight from the
// mix's measured anchor (confidence 1); other policies apply their
// fitted correction to it.
func (m *Model) PredictMix(cfg sim.Config, mixID string, p sim.Policy) (Prediction, error) {
	if err := m.check(cfg); err != nil {
		return Prediction{}, err
	}
	t, err := m.c.termsFor(mixID)
	if err != nil {
		return Prediction{}, err
	}

	pred := Prediction{CoeffDigest: m.c.Digest}
	// The ATU engages when the baseline frame rate clears the QoS
	// target (paper §IV): the anchor answers that exactly.
	pred.ThrottleOn = cfg.TargetFPS > 0 && t.anchor.FPS > cfg.TargetFPS

	if p == sim.PolicyBaseline {
		pred.FPS = t.anchor.FPS
		pred.IPC = append([]float64(nil), t.anchor.IPC...)
		pred.WeightedSpeedup = 1
		pred.Confidence = 1
	} else {
		pf := m.c.Policies[policyKey(p)]
		if pf == nil {
			return Prediction{}, fmt.Errorf("%w: policy %s not calibrated", ErrUncalibrated, p)
		}
		pred.IPC = predictIPCs(pf.IPC, t)
		pred.FPS = t.anchor.FPS / math.Exp(dot(pf.Frame, frameFeatures(t, bwShift(t, pred.IPC))))
		ws := 0.0
		for i := range t.apps {
			if t.anchor.IPC[i] > 0 {
				ws += pred.IPC[i] / t.anchor.IPC[i]
			}
		}
		pred.WeightedSpeedup = ws / float64(len(t.apps))
		pred.Confidence = confidence(pf)
	}

	sum := 0.0
	for _, v := range pred.IPC {
		sum += v
	}
	if len(pred.IPC) > 0 {
		pred.MeanIPC = sum / float64(len(pred.IPC))
	}
	if pred.FPS > 0 {
		pred.FrameTimeMS = 1000 / pred.FPS
	}
	return pred, nil
}

// PredictGPU answers a standalone-game query from the calibration
// anchors (a measurement, so confidence is 1).
func (m *Model) PredictGPU(cfg sim.Config, game string) (Prediction, error) {
	if err := m.check(cfg); err != nil {
		return Prediction{}, err
	}
	fps, ok := m.c.GPUFPS[game]
	if !ok || fps <= 0 {
		return Prediction{}, fmt.Errorf("%w: game %s not calibrated", ErrUncalibrated, game)
	}
	return Prediction{
		FPS:         fps,
		FrameTimeMS: 1000 / fps,
		ThrottleOn:  cfg.TargetFPS > 0 && fps > cfg.TargetFPS,
		Confidence:  1,
		CoeffDigest: m.c.Digest,
	}, nil
}

// PredictCPU answers a standalone SPEC-application query from the
// calibration anchors (a measurement, so confidence is 1).
func (m *Model) PredictCPU(cfg sim.Config, specID int) (Prediction, error) {
	if err := m.check(cfg); err != nil {
		return Prediction{}, err
	}
	ipc, ok := m.c.CPUIPC[specID]
	if !ok || ipc <= 0 {
		return Prediction{}, fmt.Errorf("%w: SPEC %d not calibrated", ErrUncalibrated, specID)
	}
	return Prediction{
		IPC:         []float64{ipc},
		MeanIPC:     ipc,
		Confidence:  1,
		CoeffDigest: m.c.Digest,
	}, nil
}
