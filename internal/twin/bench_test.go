package twin

import (
	"math"
	"os"
	"strconv"
	"testing"

	"repro/internal/sim"
	"repro/internal/workloads"
)

// benchScale returns the scale for the serving-tier benchmark:
// HETSIM_SCALE when set, else 1024 — the calibration frontier runs
// real simulations in setup, and 1024 keeps one run near a second so
// the whole bench stays in tens of seconds.
func benchScale() int {
	if s := os.Getenv("HETSIM_SCALE"); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v >= 1 {
			return v
		}
	}
	return 1024
}

// BenchmarkServingTier measures the tentpole's headline ratio: the
// same what-if query answered by cycle-accurate simulation (sub-bench
// "full") and by the calibrated analytic twin (sub-bench "twin").
// Setup runs a small calibration frontier and fit, untimed. The twin
// sub-bench also reports the prediction's agreement with the full run
// the "full" sub-bench just produced (frame_errpct), the model's
// overall calibration error, and the confidence the serving tier would
// attach — the numbers BENCH_PR9.json records next to the latency gap.
func BenchmarkServingTier(b *testing.B) {
	cfg := sim.DefaultConfig(benchScale())
	mixes := workloads.EvalMixes()[:2]
	policies := []sim.Policy{
		sim.PolicyBaseline, sim.PolicyThrottle, sim.PolicyThrottleCPUPrio,
		sim.PolicySMS09, sim.PolicySMS0, sim.PolicyDynPrio,
		sim.PolicyHeLM, sim.PolicyForcedBypass, sim.PolicyCMBAL,
	}
	ex := LocalExec{}
	f, err := RunFrontier(cfg, mixes, policies, 1, ex)
	if err != nil {
		b.Fatal(err)
	}
	coeffs, err := Fit(cfg, f, 0)
	if err != nil {
		b.Fatal(err)
	}
	model, err := New(coeffs)
	if err != nil {
		b.Fatal(err)
	}

	mix, pol := mixes[0], sim.PolicyThrottle
	var full Sample
	b.Run("full", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s, err := ex.Mix(cfg, mix, pol)
			if err != nil {
				b.Fatal(err)
			}
			full = s
		}
	})
	b.Run("twin", func(b *testing.B) {
		var pred Prediction
		for i := 0; i < b.N; i++ {
			p, err := model.PredictMix(cfg, mix.ID, pol)
			if err != nil {
				b.Fatal(err)
			}
			pred = p
		}
		if full.FPS > 0 {
			b.ReportMetric(100*math.Abs(pred.FPS-full.FPS)/full.FPS, "frame_errpct")
		}
		b.ReportMetric(model.CalibrationErrPct(), "calib_errpct")
		b.ReportMetric(pred.Confidence, "confidence")
	})
}
