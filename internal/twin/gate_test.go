package twin

import (
	"math"
	"runtime"
	"testing"

	"repro/internal/sim"
	"repro/internal/workloads"
)

// Differential-gate envelope (DESIGN.md §14): the twin's suite-level
// geometric-mean error on held-out mixes must stay within these bounds
// for every one of the paper's nine policies.
const (
	gateFramePct = 5.0
	gateIPCPct   = 3.0
)

// TestDifferentialGate is the twin's accuracy gate: it runs the full
// cycle-accurate calibration frontier (14 evaluation mixes × 9
// policies plus standalones, ~2 minutes at scale 1024), then
// cross-validates leave-one-mix-out — for each mix, a model fitted
// WITHOUT that mix's policy runs predicts them, so every scored cell
// is held out. Per policy, the suite-level frame-time and IPC
// geometric-mean errors over the pooled held-out cells must stay
// within the envelope. Suite-level geomeans are the quantities the
// paper reports (its Fig. 9/10 aggregates); per-cell errors are
// reported for visibility but not gated — SMS-family per-cell IPC
// residuals are irreducible for a closed form (the training RMS
// itself is ~8%), which is exactly what the confidence score surfaces
// and the auto tier escalates on.
func TestDifferentialGate(t *testing.T) {
	if testing.Short() {
		t.Skip("differential gate runs the cycle-accurate frontier")
	}
	cfg := sim.DefaultConfig(1024)
	mixes := workloads.EvalMixes()
	full, err := RunFrontier(cfg, mixes, AllPolicies(), runtime.GOMAXPROCS(0), LocalExec{})
	if err != nil {
		t.Fatalf("frontier: %v", err)
	}

	type agg struct {
		fLog, iLog    []float64 // signed log(pred/measured), pooled held-out cells
		fAbs, iAbs    []float64 // per-cell magnitudes, reported not gated
		minConfidence float64
	}
	byPolicy := map[sim.Policy]*agg{}

	for _, hold := range mixes {
		train := &Frontier{GPUFPS: full.GPUFPS, CPUIPC: full.CPUIPC}
		var holdout []Sample
		for _, s := range full.Samples {
			switch {
			case s.Policy == sim.PolicyBaseline:
				// Baseline anchors are measurements, not fit targets:
				// they stay available for every mix.
				train.Samples = append(train.Samples, s)
			case s.MixID == hold.ID:
				holdout = append(holdout, s)
			default:
				train.Samples = append(train.Samples, s)
			}
		}
		c, err := Fit(cfg, train, DefaultRidge)
		if err != nil {
			t.Fatalf("fit holding out %s: %v", hold.ID, err)
		}
		m, err := New(c)
		if err != nil {
			t.Fatalf("model holding out %s: %v", hold.ID, err)
		}
		for _, s := range holdout {
			p, err := m.PredictMix(cfg, s.MixID, s.Policy)
			if err != nil {
				t.Fatalf("predict %s/%s: %v", s.MixID, s.Policy, err)
			}
			a := byPolicy[s.Policy]
			if a == nil {
				a = &agg{minConfidence: 1}
				byPolicy[s.Policy] = a
			}
			if p.Confidence < a.minConfidence {
				a.minConfidence = p.Confidence
			}
			if s.FPS > 0 && p.FPS > 0 {
				r := math.Log(p.FPS / s.FPS)
				a.fLog = append(a.fLog, r)
				a.fAbs = append(a.fAbs, math.Abs(r))
			}
			for i := range s.IPC {
				if s.IPC[i] > 0 && p.IPC[i] > 0 {
					r := math.Log(p.IPC[i] / s.IPC[i])
					a.iLog = append(a.iLog, r)
					a.iAbs = append(a.iAbs, math.Abs(r))
				}
			}
		}
	}

	for _, p := range AllPolicies() {
		if p == sim.PolicyBaseline {
			continue // answered from the anchor: exact by construction
		}
		a := byPolicy[p]
		if a == nil || len(a.fLog) == 0 {
			t.Fatalf("policy %s produced no held-out cells", p)
		}
		suiteF := 100 * math.Abs(math.Expm1(mean(a.fLog)))
		suiteI := 100 * math.Abs(math.Expm1(mean(a.iLog)))
		cellF := 100 * math.Expm1(mean(a.fAbs))
		cellI := 100 * math.Expm1(mean(a.iAbs))
		t.Logf("policy %-14s suite frame %5.2f%%  suite ipc %5.2f%%  (per-cell %5.2f%% / %5.2f%%, min confidence %.2f)",
			p, suiteF, suiteI, cellF, cellI, a.minConfidence)
		if suiteF > gateFramePct {
			t.Errorf("policy %s: held-out suite frame-time error %.2f%% exceeds %.1f%%", p, suiteF, gateFramePct)
		}
		if suiteI > gateIPCPct {
			t.Errorf("policy %s: held-out suite IPC error %.2f%% exceeds %.1f%%", p, suiteI, gateIPCPct)
		}
	}

	// Baseline cells must reproduce their anchors exactly.
	c, err := Fit(cfg, full, DefaultRidge)
	if err != nil {
		t.Fatalf("full fit: %v", err)
	}
	m, err := New(c)
	if err != nil {
		t.Fatalf("full model: %v", err)
	}
	for _, s := range full.Samples {
		if s.Policy != sim.PolicyBaseline {
			continue
		}
		p, err := m.PredictMix(cfg, s.MixID, sim.PolicyBaseline)
		if err != nil {
			t.Fatalf("baseline predict %s: %v", s.MixID, err)
		}
		if p.FPS != s.FPS {
			t.Errorf("baseline %s: predicted %.6f, measured %.6f", s.MixID, p.FPS, s.FPS)
		}
	}
}

func mean(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range v {
		s += x
	}
	return s / float64(len(v))
}
