package llc

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/mem"
)

func smallConfig() Config {
	return Config{
		Cache:   cache.Config{Name: "LLC", SizeBytes: 4 * 1024, Ways: 4, Policy: cache.SRRIP},
		Lookup:  10,
		MSHRs:   8,
		Ports:   2,
		RetryQ:  8,
		InQueue: 16,
	}
}

type harness struct {
	llc      *LLC
	dramQ    []*mem.Request
	resps    []*mem.Request
	backInvs []uint64
	reject   bool
}

func newHarness(cfg Config) *harness {
	h := &harness{llc: New(cfg)}
	h.llc.ToDRAM = func(r *mem.Request) bool {
		if h.reject {
			return false
		}
		h.dramQ = append(h.dramQ, r)
		return true
	}
	h.llc.Respond = func(r *mem.Request) { h.resps = append(h.resps, r) }
	h.llc.BackInvalidate = func(_ mem.Source, line uint64) { h.backInvs = append(h.backInvs, line) }
	return h
}

// dramServe completes all queued DRAM requests.
func (h *harness) dramServe() {
	q := h.dramQ
	h.dramQ = nil
	for _, r := range q {
		r.Complete(0)
		h.llc.OnDRAMComplete(r)
	}
}

func (h *harness) run(n int) {
	for i := 0; i < n; i++ {
		h.llc.Tick()
	}
}

func read(addr uint64, src mem.Source) *mem.Request {
	return &mem.Request{Addr: addr, Src: src, Class: mem.ClassCPUData}
}

func TestMissGoesToDRAMThenHits(t *testing.T) {
	h := newHarness(smallConfig())
	r := read(0x1000, mem.SourceCPU0)
	h.llc.Enqueue(r)
	h.run(2)
	if len(h.dramQ) != 1 {
		t.Fatalf("miss did not reach DRAM: %d", len(h.dramQ))
	}
	h.dramServe()
	if len(h.resps) != 1 || !h.resps[0].Done {
		t.Fatalf("no response after DRAM completion")
	}
	// Second access hits with lookup latency.
	r2 := read(0x1000, mem.SourceCPU0)
	h.llc.Enqueue(r2)
	h.run(1)
	if len(h.resps) != 1 {
		t.Fatalf("hit responded before lookup latency")
	}
	h.run(11)
	if len(h.resps) != 2 || h.resps[1].ServedBy != mem.ServedLLC {
		t.Fatalf("hit response missing: %d", len(h.resps))
	}
}

func TestCoalescedMissesOneDRAMRequest(t *testing.T) {
	h := newHarness(smallConfig())
	h.llc.Enqueue(read(0x2000, mem.SourceCPU0))
	h.llc.Enqueue(read(0x2000, mem.SourceCPU1))
	h.run(3)
	if len(h.dramQ) != 1 {
		t.Fatalf("coalesced misses produced %d DRAM requests", len(h.dramQ))
	}
	h.dramServe()
	if len(h.resps) != 2 {
		t.Fatalf("expected 2 responses, got %d", len(h.resps))
	}
}

func TestBypassSkipsAllocation(t *testing.T) {
	cfg := smallConfig()
	h := newHarness(cfg)
	h.llc.Bypass = bypassAll{}
	g := &mem.Request{Addr: 0x3000, Src: mem.SourceGPU, Class: mem.ClassTexture}
	h.llc.Enqueue(g)
	h.run(2)
	h.dramServe()
	if len(h.resps) != 1 {
		t.Fatalf("bypassed read not answered")
	}
	if h.llc.Tags().Probe(0x3000) != nil {
		t.Fatalf("bypassed fill allocated in LLC")
	}
	if h.llc.Bypassed != 1 {
		t.Fatalf("Bypassed counter = %d", h.llc.Bypassed)
	}
	// CPU reads are never bypassed even with the policy installed.
	c := read(0x4000, mem.SourceCPU0)
	h.llc.Enqueue(c)
	h.run(2)
	h.dramServe()
	if h.llc.Tags().Probe(0x4000) == nil {
		t.Fatalf("CPU fill was bypassed")
	}
}

type bypassAll struct{}

func (bypassAll) ShouldBypass(*mem.Request) bool { return true }

func TestCPUVictimBackInvalidated(t *testing.T) {
	cfg := smallConfig()
	cfg.Cache = cache.Config{Name: "LLC", SizeBytes: 2 * mem.LineSize, Ways: 2, Policy: cache.SRRIP}
	h := newHarness(cfg)
	fill := func(addr uint64, src mem.Source) {
		r := read(addr, src)
		r.Class = mem.ClassCPUData
		if src == mem.SourceGPU {
			r.Class = mem.ClassTexture
		}
		h.llc.Enqueue(r)
		h.run(2)
		h.dramServe()
		h.run(1)
	}
	fill(0*mem.LineSize, mem.SourceCPU0)
	fill(1*mem.LineSize, mem.SourceGPU)
	fill(2*mem.LineSize, mem.SourceGPU)
	fill(3*mem.LineSize, mem.SourceGPU)
	if len(h.backInvs) == 0 {
		t.Fatalf("CPU line evicted without back-invalidation")
	}
	if h.backInvs[0] != 0 {
		t.Fatalf("back-invalidated %#x, want 0x0", h.backInvs[0])
	}
}

func TestGPUWriteAllocatesDirty(t *testing.T) {
	h := newHarness(smallConfig())
	w := &mem.Request{Addr: 0x5000, Write: true, Src: mem.SourceGPU, Class: mem.ClassColor}
	h.llc.Enqueue(w)
	h.run(1)
	l := h.llc.Tags().Probe(0x5000)
	if l == nil || !l.Dirty || l.Owner != mem.SourceGPU {
		t.Fatalf("GPU write fill wrong: %+v", l)
	}
	if len(h.dramQ) != 0 {
		t.Fatalf("GPU color flush triggered a DRAM access")
	}
	if h.llc.WriteFills != 1 {
		t.Fatalf("WriteFills = %d", h.llc.WriteFills)
	}
}

func TestDirtyEvictionWritesBack(t *testing.T) {
	cfg := smallConfig()
	cfg.Cache = cache.Config{Name: "LLC", SizeBytes: mem.LineSize, Ways: 1, Policy: cache.SRRIP}
	h := newHarness(cfg)
	h.llc.Enqueue(&mem.Request{Addr: 0, Write: true, Src: mem.SourceGPU, Class: mem.ClassColor})
	h.run(1)
	h.llc.Enqueue(&mem.Request{Addr: 4096, Write: true, Src: mem.SourceGPU, Class: mem.ClassColor})
	h.run(2)
	found := false
	for _, r := range h.dramQ {
		if r.Write && r.Addr == 0 {
			found = true
		}
	}
	if !found {
		t.Fatalf("dirty victim not written back: %d DRAM reqs", len(h.dramQ))
	}
}

func TestRetryWhenDRAMRejects(t *testing.T) {
	h := newHarness(smallConfig())
	h.reject = true
	h.llc.Enqueue(read(0x6000, mem.SourceCPU2))
	h.run(3)
	if len(h.dramQ) != 0 {
		t.Fatalf("request reached rejecting DRAM")
	}
	h.reject = false
	h.run(2)
	if len(h.dramQ) != 1 {
		t.Fatalf("parked request not retried")
	}
}

func TestInputQueueBackPressure(t *testing.T) {
	cfg := smallConfig()
	cfg.InQueue = 2
	h := newHarness(cfg)
	if !h.llc.Enqueue(read(0, mem.SourceCPU0)) || !h.llc.Enqueue(read(64, mem.SourceCPU0)) {
		t.Fatalf("queue rejected before capacity")
	}
	if h.llc.Enqueue(read(128, mem.SourceCPU0)) {
		t.Fatalf("queue accepted past capacity")
	}
}

func TestPerSourceStats(t *testing.T) {
	h := newHarness(smallConfig())
	h.llc.Enqueue(read(0x100, mem.SourceCPU0))
	h.llc.Enqueue(&mem.Request{Addr: 0x9000, Src: mem.SourceGPU, Class: mem.ClassTexture})
	h.run(2)
	h.dramServe()
	if h.llc.AccessesBySrc[mem.SourceCPU0] != 1 || h.llc.AccessesBySrc[mem.SourceGPU] != 1 {
		t.Fatalf("access stats: %v", h.llc.AccessesBySrc)
	}
	if h.llc.CPUMisses() != 1 || h.llc.GPUMisses() != 1 {
		t.Fatalf("miss stats cpu=%d gpu=%d", h.llc.CPUMisses(), h.llc.GPUMisses())
	}
}
