package llc

import (
	"testing"

	"repro/internal/mem"
)

// TestOnDRAMCompleteUnknownLine: a completion for a line with no
// waiters (e.g. after a mid-run reset) must not panic or corrupt
// state.
func TestOnDRAMCompleteUnknownLine(t *testing.T) {
	h := newHarness(smallConfig())
	r := &mem.Request{Addr: 0xDEAD00, Src: mem.SourceCPU0}
	r.Complete(5)
	h.llc.OnDRAMComplete(r)
	if len(h.resps) != 0 {
		t.Fatalf("phantom response delivered")
	}
	// The fill still installs (harmless warm line).
	if h.llc.Tags().Probe(0xDEAD00) == nil {
		t.Fatalf("completion did not fill")
	}
}

// TestWriteCompletionIgnored: DRAM write completions need no LLC
// action.
func TestWriteCompletionIgnored(t *testing.T) {
	h := newHarness(smallConfig())
	w := &mem.Request{Addr: 0xBEEF00, Write: true, Src: mem.SourceGPU, Class: mem.ClassColor}
	w.Complete(9)
	h.llc.OnDRAMComplete(w)
	if h.llc.Tags().Probe(0xBEEF00) != nil {
		t.Fatalf("write completion allocated a line")
	}
}

// TestHiZClassFlowsThrough: the hierarchical-depth class behaves like
// any other GPU read at the LLC.
func TestHiZClassFlowsThrough(t *testing.T) {
	h := newHarness(smallConfig())
	r := &mem.Request{Addr: mem.HiZBase, Src: mem.SourceGPU, Class: mem.ClassHiZ}
	h.llc.Enqueue(r)
	h.run(2)
	if len(h.dramQ) != 1 {
		t.Fatalf("hi-Z miss did not reach DRAM")
	}
	h.dramServe()
	if len(h.resps) != 1 || h.llc.Tags().Probe(mem.HiZBase) == nil {
		t.Fatalf("hi-Z fill broken")
	}
}

// TestPrefetchRequestTreatedAsRead: CPU prefetches allocate and
// respond like demand reads at the LLC level.
func TestPrefetchRequestTreatedAsRead(t *testing.T) {
	h := newHarness(smallConfig())
	r := &mem.Request{Addr: 0x1000, Src: mem.SourceCPU0, Prefetch: true}
	h.llc.Enqueue(r)
	h.run(2)
	h.dramServe()
	if len(h.resps) != 1 || !h.resps[0].Prefetch {
		t.Fatalf("prefetch lost its flag through the LLC")
	}
	if h.llc.Tags().Probe(0x1000) == nil {
		t.Fatalf("prefetch fill skipped")
	}
}
