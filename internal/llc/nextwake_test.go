package llc

import (
	"testing"

	"repro/internal/mem"
)

func TestNextWakeStates(t *testing.T) {
	h := newHarness(smallConfig())
	l := h.llc
	if got := l.NextWake(0); got != ^uint64(0) {
		t.Fatalf("empty LLC NextWake = %d, want never", got)
	}
	if !l.Enqueue(read(0x1000, mem.SourceCPU0)) {
		t.Fatal("enqueue failed")
	}
	if got := l.NextWake(0); got != 1 {
		t.Fatalf("LLC with queued request NextWake = %d, want now+1 (busy)", got)
	}
}

// TestNextWakeHitBound: with only a scheduled hit response pending,
// NextWake must report exactly the cycle the hit comes due — ticking
// up to (but not past) it must deliver nothing, and the very next
// tick must deliver the response.
func TestNextWakeHitBound(t *testing.T) {
	h := newHarness(smallConfig())
	l := h.llc

	// Install the line: miss, fill, response.
	if !l.Enqueue(read(0x2000, mem.SourceCPU0)) {
		t.Fatal("enqueue failed")
	}
	h.run(1)
	h.dramServe()
	h.run(int(smallConfig().Lookup) + 5)
	if len(h.resps) != 1 {
		t.Fatalf("miss not serviced: %d responses", len(h.resps))
	}

	// Re-read the installed line: one tick moves it from the intake
	// to the scheduled-hit list.
	if !l.Enqueue(read(0x2000, mem.SourceCPU0)) {
		t.Fatal("enqueue failed")
	}
	h.run(1)
	w := l.NextWake(l.cycle)
	if w == ^uint64(0) || w <= l.cycle+1 {
		t.Fatalf("pending hit NextWake = %d at cycle %d, want a future wake", w, l.cycle)
	}
	for l.cycle < w-1 {
		h.run(1)
		if len(h.resps) != 1 {
			t.Fatalf("hit delivered at cycle %d, before reported wake %d", l.cycle, w)
		}
	}
	h.run(1)
	if len(h.resps) != 2 {
		t.Fatalf("hit not delivered at reported wake %d", w)
	}
}

// TestSkipMatchesIdleTicks: Skip(n) on an empty LLC must leave it
// indistinguishable from one naively ticked n times — identical
// traffic afterward completes after identical tick counts with
// identical stats.
func TestSkipMatchesIdleTicks(t *testing.T) {
	for _, n := range []uint64{1, 17, 4096} {
		a, b := newHarness(smallConfig()), newHarness(smallConfig())
		a.run(int(n))
		b.llc.Skip(n)

		serve := func(h *harness) int {
			if !h.llc.Enqueue(read(0x3000, mem.SourceCPU0)) {
				t.Fatal("enqueue failed")
			}
			for i := 0; i < 1000; i++ {
				h.llc.Tick()
				h.dramServe()
				if len(h.resps) == 1 {
					return i
				}
			}
			return -1
		}
		ta, tb := serve(a), serve(b)
		if ta < 0 || ta != tb {
			t.Fatalf("skip %d: miss served after %d ticks naive vs %d skipped", n, ta, tb)
		}
		if a.llc.AccessesBySrc != b.llc.AccessesBySrc || a.llc.MissesBySrc != b.llc.MissesBySrc {
			t.Fatalf("skip %d: stats diverged: %v/%v vs %v/%v", n,
				a.llc.AccessesBySrc, a.llc.MissesBySrc, b.llc.AccessesBySrc, b.llc.MissesBySrc)
		}
	}
}
