// Package llc implements the shared last-level cache of the
// heterogeneous CMP (Table I): 16 MB, 16-way, 64 B blocks, 10-cycle
// lookup, two-bit SRRIP insertion/replacement, inclusive for CPU
// blocks (evictions back-invalidate the owning core's private
// hierarchy) and non-inclusive for GPU blocks.
//
// The LLC is where the paper's two key dynamics play out:
//
//   - throttling the GPU access rate ages GPU blocks faster under
//     SRRIP (CPU insertions keep advancing RRPVs while GPU lines stop
//     being re-referenced), shifting capacity to the CPUs; and
//   - a bypass policy hook lets GPU read-miss fills skip allocation
//     (HeLM and the Fig. 3 forced-bypass study), trading GPU LLC
//     reuse for CPU capacity at the cost of extra DRAM traffic.
package llc

import (
	"repro/internal/cache"
	"repro/internal/mem"
	"repro/internal/obs"
)

// BypassPolicy decides whether a GPU read miss should fill the LLC.
// It is consulted once per miss, at request time.
type BypassPolicy interface {
	ShouldBypass(r *mem.Request) bool
}

// Config describes the LLC.
type Config struct {
	Cache   cache.Config
	Lookup  uint64 // tag + data access latency in CPU cycles
	MSHRs   int    // outstanding DRAM-bound misses
	Ports   int    // requests started per CPU cycle
	RetryQ  int    // parked requests awaiting DRAM queue space
	InQueue int    // request input queue capacity (ring back-pressures beyond it)
}

// DefaultConfig returns the Table I LLC scaled by scale (>=1).
func DefaultConfig(scale int) Config {
	if scale < 1 {
		scale = 1
	}
	return Config{
		Cache: cache.Config{
			Name: "LLC", SizeBytes: 16 * 1024 * 1024 / scale, Ways: 16, Policy: cache.SRRIP,
		},
		Lookup:  10,
		MSHRs:   128,
		Ports:   2,
		RetryQ:  128,
		InQueue: 64,
	}
}

// pendingResp is a hit response waiting out the lookup latency.
type pendingResp struct {
	r  *mem.Request
	at uint64
}

// LLC is the shared last-level cache.
type LLC struct {
	cfg  Config
	tags *cache.Cache
	mshr *cache.MSHR

	inQ     []*mem.Request
	hits    []pendingResp
	waiting map[uint64][]*mem.Request // line -> requests riding one DRAM miss
	wfree   [][]*mem.Request          // recycled waiter slices (capacity reuse)
	retryQ  mem.ReqQueue              // DRAM-bound requests the controller rejected
	wbQ     mem.ReqQueue              // dirty-victim write-backs toward DRAM
	pool    mem.Pool                  // free list: absorbed writes feed victim write-backs

	cycle uint64

	// ToDRAM enqueues a request at the memory controllers; false
	// means the channel queue is full and the LLC retries.
	ToDRAM func(r *mem.Request) bool
	// Respond returns a completed read toward its requester (the
	// system builder routes it over the ring).
	Respond func(r *mem.Request)
	// BackInvalidate tells a CPU core to drop a line (inclusive LLC).
	BackInvalidate func(core mem.Source, lineAddr uint64)
	// Recycle routes a write the LLC absorbed back to its issuer's
	// request free list (nil: the LLC keeps it on its own). Without
	// it, write-heavy components allocate a fresh request per
	// write-back while the LLC's free list grows unboundedly.
	Recycle func(r *mem.Request)
	// Bypass is the GPU read-fill bypass policy (nil = always fill).
	Bypass BypassPolicy

	// Stats, split by requester type.
	AccessesBySrc [mem.NumSources]uint64
	MissesBySrc   [mem.NumSources]uint64
	BackInvals    uint64
	Bypassed      uint64
	WriteFills    uint64
}

// New builds the LLC.
func New(cfg Config) *LLC {
	return &LLC{
		cfg:     cfg,
		tags:    cache.New(cfg.Cache),
		mshr:    cache.NewMSHR(cfg.MSHRs),
		waiting: make(map[uint64][]*mem.Request),
	}
}

// Tags exposes the tag array (stats, occupancy inspection).
func (l *LLC) Tags() *cache.Cache { return l.tags }

// CanAccept reports whether the input queue has room; the ring
// holds messages when it does not.
func (l *LLC) CanAccept() bool { return len(l.inQ) < l.cfg.InQueue }

// Enqueue admits a request from the interconnect.
func (l *LLC) Enqueue(r *mem.Request) bool {
	if !l.CanAccept() {
		return false
	}
	l.inQ = append(l.inQ, r)
	return true
}

// Tick advances the LLC one CPU cycle.
func (l *LLC) Tick() {
	l.cycle++

	// Deliver hit responses that are due.
	for i := 0; i < len(l.hits); {
		if l.hits[i].at <= l.cycle {
			r := l.hits[i].r
			r.ServedBy = mem.ServedLLC
			r.Complete(l.cycle)
			if l.Respond != nil {
				l.Respond(r)
			}
			l.hits[i] = l.hits[len(l.hits)-1]
			l.hits = l.hits[:len(l.hits)-1]
		} else {
			i++
		}
	}

	// Retry write-backs and parked misses toward DRAM.
	for l.wbQ.Len() > 0 && l.ToDRAM != nil && l.ToDRAM(l.wbQ.Front()) {
		l.wbQ.Pop()
	}
	for l.retryQ.Len() > 0 && l.ToDRAM != nil && l.ToDRAM(l.retryQ.Front()) {
		l.retryQ.Pop()
	}

	// Start new lookups. A request blocked on a structural hazard
	// (MSHR or retry space) must not head-of-line-block the queue —
	// the LLC's banked MSHRs admit younger requests past it.
	served := 0
	for i := 0; i < len(l.inQ) && served < l.cfg.Ports; {
		if l.lookup(l.inQ[i]) {
			l.inQ = append(l.inQ[:i], l.inQ[i+1:]...)
			served++
		} else {
			i++
		}
	}
}

// NextWake implements the engine's next-wake contract (DESIGN.md §9):
// the earliest future cycle at which the LLC can change state on its
// own. now+1 means busy. Queued input, parked DRAM-bound retries, and
// pending write-backs all make progress every cycle; an otherwise-idle
// LLC wakes only when a hit response's lookup latency expires.
// Requests riding a DRAM miss (the waiting map) are woken externally
// by OnDRAMComplete, which the memory controller's own wake bounds.
func (l *LLC) NextWake(now uint64) uint64 {
	if len(l.inQ) > 0 || l.retryQ.Len() > 0 || l.wbQ.Len() > 0 {
		return now + 1
	}
	wake := ^uint64(0)
	for i := range l.hits {
		if l.hits[i].at < wake {
			wake = l.hits[i].at
		}
	}
	if wake <= now {
		return now + 1
	}
	return wake
}

// Skip advances an idle LLC n cycles at once; with no queued work and
// no hit due inside the range, each elided tick only moved the clock.
func (l *LLC) Skip(n uint64) {
	l.cycle += n
}

// lookup performs one tag access; false means the request could not
// be handled this cycle (no counters move on that path, so retries
// are not double-counted).
func (l *LLC) lookup(r *mem.Request) bool {
	line := r.LineAddr()

	if r.Write {
		// Write-backs and GPU color/depth flushes allocate (paper
		// footnote 6: fully dirty lines are flushed to the LLC for
		// allocation without a DRAM read). The write is absorbed here —
		// no response flows back — so the request dies and is recycled.
		if r.Src < mem.NumSources {
			l.AccessesBySrc[r.Src]++
		}
		if !l.tags.Access(line, true) {
			l.fill(line, true, r.Src, r.Class)
			l.WriteFills++
		}
		if l.Recycle != nil {
			l.Recycle(r)
		} else {
			l.pool.Put(r)
		}
		return true
	}

	if l.tags.Access(line, false) {
		if r.Src < mem.NumSources {
			l.AccessesBySrc[r.Src]++
		}
		l.hits = append(l.hits, pendingResp{r: r, at: l.cycle + l.cfg.Lookup})
		return true
	}

	// Read miss.
	if l.mshr.Pending(line) {
		if _, ok := l.mshr.Allocate(line); !ok {
			return false
		}
		l.countMiss(r)
		l.waiting[line] = append(l.waiting[line], r)
		return true
	}
	if l.mshr.Full() || l.retryQ.Len() >= l.cfg.RetryQ {
		return false
	}
	if l.Bypass != nil && r.Src == mem.SourceGPU && l.Bypass.ShouldBypass(r) {
		r.Bypass = true
		l.Bypassed++
	}
	l.countMiss(r)
	l.mshr.Allocate(line)
	l.waiting[line] = append(l.takeWaiters(), r)
	if l.ToDRAM == nil || !l.ToDRAM(r) {
		l.retryQ.Push(r)
	}
	return true
}

// countMiss commits access+miss counters for an accepted read miss.
func (l *LLC) countMiss(r *mem.Request) {
	if r.Src < mem.NumSources {
		l.AccessesBySrc[r.Src]++
		l.MissesBySrc[r.Src]++
	}
}

// fill installs a line, handling dirty write-backs and inclusive
// back-invalidation of CPU victims.
func (l *LLC) fill(line uint64, dirty bool, owner mem.Source, class mem.Class) {
	v, ev := l.tags.Fill(line, dirty, owner, class)
	if !ev {
		return
	}
	vAddr := v.Tag << mem.LineShift
	if v.Owner.IsCPU() {
		// Inclusive for CPU blocks: the private hierarchy must drop
		// its copy (the core pushes its dirty data back if any).
		l.BackInvals++
		if l.BackInvalidate != nil {
			l.BackInvalidate(v.Owner, vAddr)
		}
	}
	if v.Dirty {
		r := l.pool.Get()
		r.Addr = vAddr
		r.Write = true
		r.Src = v.Owner
		r.Class = v.Class
		r.Born = l.cycle
		l.wbQ.Push(r)
	}
}

// OnDRAMComplete receives finished DRAM transactions: reads fill
// (unless bypassed) and wake their waiters; writes need no action
// beyond the controller's accounting.
func (l *LLC) OnDRAMComplete(r *mem.Request) {
	if r.Write {
		// Every DRAM-bound write is an LLC victim write-back (core and
		// GPU writes are absorbed at the LLC), so it dies here.
		l.pool.Put(r)
		return
	}
	line := r.LineAddr()
	if !r.Bypass {
		l.fill(line, false, r.Src, r.Class)
	}
	l.mshr.Release(line)
	ws := l.waiting[line]
	delete(l.waiting, line)
	for _, w := range ws {
		if !w.Done {
			w.ServedBy = mem.ServedDRAM
			w.Complete(l.cycle)
		}
		if l.Respond != nil {
			l.Respond(w)
		}
	}
	if ws != nil {
		for i := range ws {
			ws[i] = nil
		}
		l.wfree = append(l.wfree, ws[:0])
	}
}

// takeWaiters returns an empty waiter slice, reusing the capacity of a
// retired one when available.
func (l *LLC) takeWaiters() []*mem.Request {
	if n := len(l.wfree); n > 0 {
		ws := l.wfree[n-1]
		l.wfree[n-1] = nil
		l.wfree = l.wfree[:n-1]
		return ws
	}
	return nil
}

// PendingReads returns the number of read requests currently inside
// the LLC: queued at the input, waiting out a hit's lookup latency, or
// riding a DRAM miss (the waiting map holds every such request exactly
// once, including those parked in the DRAM retry queue). The
// observability audit uses it for request-conservation checks.
func (l *LLC) PendingReads() int {
	n := len(l.hits)
	for _, ws := range l.waiting {
		n += len(ws)
	}
	for _, r := range l.inQ {
		if !r.Write {
			n++
		}
	}
	return n
}

// cpuAccesses sums read+write LLC accesses from all CPU cores.
func (l *LLC) cpuAccesses() uint64 {
	var n uint64
	for s := mem.Source(0); s < mem.SourceGPU; s++ {
		n += l.AccessesBySrc[s]
	}
	return n
}

// RegisterObs registers the LLC's hit rates, occupancy, and traffic
// counters with the observability registry. Hit rates fold writes into
// accesses (writes always "hit" by allocating), matching the counters
// sim.Result reports.
func (l *LLC) RegisterObs(reg *obs.Registry) {
	reg.Ratio("llc.cpu_hitrate",
		func() uint64 { return l.cpuAccesses() - l.CPUMisses() },
		l.cpuAccesses)
	reg.Ratio("llc.gpu_hitrate",
		func() uint64 { return l.AccessesBySrc[mem.SourceGPU] - l.GPUMisses() },
		func() uint64 { return l.AccessesBySrc[mem.SourceGPU] })
	reg.Counter("llc.cpu_misses", l.CPUMisses)
	reg.Counter("llc.gpu_misses", l.GPUMisses)
	reg.Counter("llc.back_invals", func() uint64 { return l.BackInvals })
	reg.Counter("llc.bypassed", func() uint64 { return l.Bypassed })
	reg.Gauge("llc.gpu_occupancy", l.GPUOccupancy)
}

// GPUOccupancy returns the fraction of valid LLC lines owned by the
// GPU.
func (l *LLC) GPUOccupancy() float64 {
	occ := l.tags.OccupancyByOwner()
	total := 0
	for _, n := range occ {
		total += n
	}
	if total == 0 {
		return 0
	}
	return float64(occ[mem.SourceGPU]) / float64(total)
}

// CPUMisses returns total read misses from all CPU cores.
func (l *LLC) CPUMisses() uint64 {
	var n uint64
	for s := mem.Source(0); s < mem.SourceGPU; s++ {
		n += l.MissesBySrc[s]
	}
	return n
}

// GPUMisses returns read misses from the GPU.
func (l *LLC) GPUMisses() uint64 { return l.MissesBySrc[mem.SourceGPU] }

// ResetStats zeroes counters after warm-up.
func (l *LLC) ResetStats() {
	l.AccessesBySrc = [mem.NumSources]uint64{}
	l.MissesBySrc = [mem.NumSources]uint64{}
	l.BackInvals, l.Bypassed, l.WriteFills = 0, 0, 0
	l.tags.ResetStats()
}
