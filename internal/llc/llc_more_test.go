package llc

import (
	"testing"

	"repro/internal/mem"
)

// TestMSHROverflowEventuallyServesAll floods the LLC with more
// distinct-line misses than it has MSHRs; nothing may be lost.
func TestMSHROverflowEventuallyServesAll(t *testing.T) {
	cfg := smallConfig()
	cfg.MSHRs = 2
	cfg.RetryQ = 2
	h := newHarness(cfg)
	const n = 24
	sent := uint64(0)
	served := 0
	for cycle := 0; cycle < 4000 && served < n; cycle++ {
		for sent < n && h.llc.Enqueue(read(0x10000+sent*mem.LineSize, mem.SourceCPU0)) {
			sent++
		}
		h.llc.Tick()
		h.dramServe() // DRAM is instantaneous here
		served = len(h.resps)
	}
	if served != n {
		t.Fatalf("served %d of %d with tiny MSHR bank", served, n)
	}
}

// TestWriteNeverBlocksReads verifies writes (which need no response)
// do not consume MSHRs or response slots.
func TestWriteNeverBlocksReads(t *testing.T) {
	cfg := smallConfig()
	cfg.MSHRs = 1
	h := newHarness(cfg)
	for i := uint64(0); i < 10; i++ {
		h.llc.Enqueue(&mem.Request{Addr: 0x9000 + i*mem.LineSize, Write: true,
			Src: mem.SourceGPU, Class: mem.ClassColor})
	}
	h.llc.Enqueue(read(0x20000, mem.SourceCPU1))
	for cycle := 0; cycle < 100 && len(h.resps) == 0; cycle++ {
		h.llc.Tick()
		h.dramServe()
	}
	if len(h.resps) != 1 {
		t.Fatalf("read starved behind writes")
	}
}

// TestBypassedLineStillCoalesces: two GPU reads to one line with
// bypass active must both be answered by the single DRAM fetch.
func TestBypassedLineStillCoalesces(t *testing.T) {
	h := newHarness(smallConfig())
	h.llc.Bypass = bypassAll{}
	a := &mem.Request{Addr: 0x7000, Src: mem.SourceGPU, Class: mem.ClassTexture}
	b := &mem.Request{Addr: 0x7000, Src: mem.SourceGPU, Class: mem.ClassTexture}
	h.llc.Enqueue(a)
	h.llc.Enqueue(b)
	h.run(3)
	if len(h.dramQ) != 1 {
		t.Fatalf("coalescing broken under bypass: %d DRAM requests", len(h.dramQ))
	}
	h.dramServe()
	if len(h.resps) != 2 {
		t.Fatalf("waiter lost under bypass: %d responses", len(h.resps))
	}
}

// TestGPUOccupancyTracksFills sanity-checks the occupancy metric the
// HeLM analysis uses.
func TestGPUOccupancyTracksFills(t *testing.T) {
	h := newHarness(smallConfig())
	for i := uint64(0); i < 8; i++ {
		h.llc.Enqueue(&mem.Request{Addr: i * mem.LineSize, Write: true,
			Src: mem.SourceGPU, Class: mem.ClassColor})
	}
	h.run(6)
	if occ := h.llc.GPUOccupancy(); occ != 1.0 {
		t.Fatalf("GPU-only LLC occupancy = %v, want 1.0", occ)
	}
	h.llc.Enqueue(&mem.Request{Addr: 0x40000, Write: true,
		Src: mem.SourceCPU0, Class: mem.ClassCPUData})
	h.run(2)
	if occ := h.llc.GPUOccupancy(); occ >= 1.0 {
		t.Fatalf("occupancy did not drop after CPU fill: %v", occ)
	}
}

// TestResetStatsClearsCounters ensures warm-up resets don't leak.
func TestResetStatsClearsCounters(t *testing.T) {
	h := newHarness(smallConfig())
	h.llc.Enqueue(read(0x100, mem.SourceCPU0))
	h.run(2)
	h.dramServe()
	h.llc.ResetStats()
	if h.llc.AccessesBySrc[mem.SourceCPU0] != 0 || h.llc.CPUMisses() != 0 {
		t.Fatalf("stats survived reset")
	}
	// Contents survive: the line is still cached.
	if h.llc.Tags().Probe(0x100) == nil {
		t.Fatalf("reset dropped cache contents")
	}
}
