package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/exp"
	"repro/internal/obs"
)

// Config parameterizes the service's hardening, not the simulations
// themselves (those come from the Runner's sim.Config).
type Config struct {
	// QueueDepth bounds the admission queue. A submission arriving
	// with the queue full is shed with 429 + Retry-After instead of
	// growing a goroutine or buffer — overload stays O(QueueDepth).
	// Default 64.
	QueueDepth int

	// Workers is how many simulations execute concurrently. Default
	// exp.DefaultWorkers().
	Workers int

	// MaxWait caps the ?wait long-poll duration. Default 30s.
	MaxWait time.Duration

	// ShedRetryAfter is the backoff hint attached to queue-full and
	// drain rejections. Default 1s.
	ShedRetryAfter time.Duration

	// BreakerThreshold is how many consecutive panicking runs trip a
	// config family's circuit breaker (default 3); BreakerCooldown is
	// how long the family stays open before a half-open probe is
	// admitted (default 30s).
	BreakerThreshold int
	BreakerCooldown  time.Duration

	// Engine names the daemon-wide tick-engine default reported by
	// /healthz ("auto" when empty; hetsimd passes "seq" under -seq).
	Engine string

	// RunFunc is the execution seam: nil means Runner.Do. Tests
	// substitute failing/blocking executors to drive the shed, breaker
	// and drain paths without real simulations.
	RunFunc func(context.Context, exp.TaskSpec) (exp.TaskResult, error)

	// Now is the clock seam: nil means time.Now (breaker tests
	// compress the cooldown).
	Now func() time.Time
}

func (c *Config) fillDefaults() {
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.Workers <= 0 {
		c.Workers = exp.DefaultWorkers()
	}
	if c.MaxWait <= 0 {
		c.MaxWait = 30 * time.Second
	}
	if c.ShedRetryAfter <= 0 {
		c.ShedRetryAfter = time.Second
	}
	if c.BreakerThreshold <= 0 {
		c.BreakerThreshold = 3
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 30 * time.Second
	}
	if c.Engine == "" {
		c.Engine = "auto"
	}
	if c.Now == nil {
		c.Now = time.Now
	}
}

// job is one admitted task waiting for (or holding) a worker.
type job struct {
	spec   exp.TaskSpec
	key    string
	ctx    context.Context
	cancel context.CancelFunc // non-nil when a per-request timeout is armed
}

// jobState is a run's externally visible lifecycle. done is closed
// when the state reaches StatusDone or StatusFailed; a resubmission
// after failure installs a fresh jobState, so old waiters keep their
// (already closed) channel.
type jobState struct {
	status string
	err    string
	res    exp.TaskResult
	done   chan struct{}
}

// Server serves simulations from a bounded worker pool over an
// exp.Runner, whose singleflight memoization is what makes
// resubmission idempotent: the same TaskSpec always maps to the same
// key, and a completed key is never re-simulated.
type Server struct {
	cfg    Config
	runner *exp.Runner
	reg    *obs.Registry

	baseCtx    context.Context
	baseCancel context.CancelFunc

	jobs chan *job
	quit chan struct{} // closed by Drain: workers finish their run and exit
	wg   sync.WaitGroup

	draining atomic.Bool
	started  time.Time

	mu       sync.Mutex
	states   map[string]*jobState
	breakers map[string]*breaker

	inflight atomic.Int64

	submitted, accepted, deduped         atomic.Uint64
	shed, rejectedBreaker, rejectedDrain atomic.Uint64
	completed, failed, panics, trips     atomic.Uint64
}

// New builds a server over runner. Call Start before serving.
func New(runner *exp.Runner, cfg Config) *Server {
	cfg.fillDefaults()
	s := &Server{
		cfg:      cfg,
		runner:   runner,
		reg:      &obs.Registry{},
		jobs:     make(chan *job, cfg.QueueDepth),
		quit:     make(chan struct{}),
		states:   make(map[string]*jobState),
		breakers: make(map[string]*breaker),
		started:  cfg.Now(),
	}
	s.registerObs()
	return s
}

// registerObs wires every admission/breaker/queue observable into the
// registry behind /metricsz.
func (s *Server) registerObs() {
	g := s.reg
	g.Counter("submissions_total", s.submitted.Load)
	g.Counter("submissions_accepted", s.accepted.Load)
	g.Counter("submissions_deduped", s.deduped.Load)
	g.Counter("submissions_shed", s.shed.Load)
	g.Counter("submissions_rejected_breaker", s.rejectedBreaker.Load)
	g.Counter("submissions_rejected_draining", s.rejectedDrain.Load)
	g.Counter("runs_completed", s.completed.Load)
	g.Counter("runs_failed", s.failed.Load)
	g.Counter("run_panics", s.panics.Load)
	g.Counter("breaker_trips", s.trips.Load)
	g.Gauge("queue_depth", func() float64 { return float64(len(s.jobs)) })
	g.Gauge("queue_capacity", func() float64 { return float64(cap(s.jobs)) })
	g.Gauge("workers", func() float64 { return float64(s.cfg.Workers) })
	g.Gauge("runs_inflight", func() float64 { return float64(s.inflight.Load()) })
	g.Gauge("breakers_open", func() float64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		n := 0
		for _, b := range s.breakers {
			if b.state != bkClosed {
				n++
			}
		}
		return float64(n)
	})
	g.Gauge("draining", func() float64 {
		if s.draining.Load() {
			return 1
		}
		return 0
	})
	// Twin serving tier (DESIGN.md §14). The counters are live even
	// with no model loaded (twin-tier tasks then fail, auto-tier tasks
	// all escalate); the calibration gauge reports 0 without a model.
	g.Counter("twin_hits", s.runner.TwinHits)
	g.Counter("twin_escalations", s.runner.TwinEscalations)
	g.Gauge("twin_calibration_error", func() float64 {
		if m := s.runner.TwinModel(); m != nil {
			return m.CalibrationErrPct()
		}
		return 0
	})
}

// Registry exposes the server's observability registry so the daemon
// can register more probes (the journal's health) on the same
// /metricsz.
func (s *Server) Registry() *obs.Registry { return s.reg }

// Start launches the worker pool. Workers inherit parent through the
// server's base context: cancelling parent (or a drain whose grace
// expires) interrupts in-flight simulations via the runner's
// Interrupt hook.
func (s *Server) Start(parent context.Context) {
	if parent == nil {
		parent = context.Background()
	}
	s.baseCtx, s.baseCancel = context.WithCancel(parent)
	if s.runner.Ctx == nil {
		s.runner.Ctx = s.baseCtx
	}
	if s.runner.Workers == 0 {
		// Size the runner's own semaphore to the service pool so the
		// two layers of bounding agree.
		s.runner.Workers = s.cfg.Workers
	}
	for i := 0; i < s.cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
}

func (s *Server) now() time.Time { return s.cfg.Now() }

// run executes one task through the configured seam.
func (s *Server) run(ctx context.Context, spec exp.TaskSpec) (exp.TaskResult, error) {
	if s.cfg.RunFunc != nil {
		return s.cfg.RunFunc(ctx, spec)
	}
	return s.runner.Do(ctx, spec)
}

func (s *Server) worker() {
	defer s.wg.Done()
	for {
		// Biased check first so a drain stops the pool even when jobs
		// are still queued: drain means finish in-flight, not the queue.
		select {
		case <-s.quit:
			return
		default:
		}
		select {
		case <-s.quit:
			return
		case j := <-s.jobs:
			s.execute(j)
		}
	}
}

// execute runs one job and feeds the outcome to the state map and the
// family's breaker.
func (s *Server) execute(j *job) {
	s.inflight.Add(1)
	defer s.inflight.Add(-1)
	s.setStatus(j.key, StatusRunning)
	res, err := s.run(j.ctx, j.spec)
	if j.cancel != nil {
		j.cancel()
	}
	now := s.now()
	if err != nil {
		s.failed.Add(1)
		outcome := outcomeFail
		var re *exp.RunError
		if errors.As(err, &re) && re.Stack != "" {
			outcome = outcomePanic
			s.panics.Add(1)
		}
		s.breakerRecord(j.spec.Family(), outcome, now)
		// Drop the quarantined flight so a deliberate resubmission (or
		// the breaker's half-open probe) re-executes instead of
		// replaying the failure forever. Failures stay visible in the
		// state map and Runner.Errors().
		s.runner.Forget(j.key)
		s.finish(j.key, StatusFailed, err.Error(), exp.TaskResult{})
		return
	}
	s.completed.Add(1)
	s.breakerRecord(j.spec.Family(), outcomeOK, now)
	s.finish(j.key, StatusDone, "", res)
}

// setStatus transitions a live (not finished) state.
func (s *Server) setStatus(key, status string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if st, ok := s.states[key]; ok && st.status != StatusDone && st.status != StatusFailed {
		st.status = status
	}
}

// finish resolves a run and wakes every long-poll waiter.
func (s *Server) finish(key, status, errMsg string, res exp.TaskResult) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.states[key]
	if !ok {
		st = &jobState{done: make(chan struct{})}
		s.states[key] = st
	}
	st.status, st.err, st.res = status, errMsg, res
	select {
	case <-st.done:
	default:
		close(st.done)
	}
}

func (s *Server) breakerFor(family string) *breaker {
	if b, ok := s.breakers[family]; ok {
		return b
	}
	b := &breaker{threshold: s.cfg.BreakerThreshold, cooldown: s.cfg.BreakerCooldown}
	s.breakers[family] = b
	return b
}

func (s *Server) breakerRecord(family string, o runOutcome, now time.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.breakerFor(family).record(o, now) {
		s.trips.Add(1)
	}
}

// BreakerState reports a family's breaker state ("closed", "open",
// "half-open"), for tests and diagnostics.
func (s *Server) BreakerState(family string) string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.breakerFor(family).state.String()
}

// admit is the admission-control pipeline shared by the HTTP submit
// handler and the resume path: dedup against live states and the
// runner's memos, breaker gate, bounded enqueue. It returns the
// response document and HTTP status code.
func (s *Server) admit(spec exp.TaskSpec, timeout time.Duration) (StatusResponse, int) {
	s.submitted.Add(1)
	if s.draining.Load() {
		s.rejectedDrain.Add(1)
		return StatusResponse{
			Error:        "draining: not accepting new work",
			RetryAfterMS: s.cfg.ShedRetryAfter.Milliseconds(),
		}, http.StatusServiceUnavailable
	}
	if err := spec.Validate(); err != nil {
		return StatusResponse{Error: err.Error()}, http.StatusBadRequest
	}
	key := spec.Key()

	s.mu.Lock()
	if st, ok := s.states[key]; ok && st.status != StatusFailed {
		// Live or completed run: idempotent join.
		resp := StatusResponse{Key: key, Status: st.status, Error: st.err}
		s.mu.Unlock()
		s.deduped.Add(1)
		code := http.StatusAccepted
		if resp.Status == StatusDone {
			code = http.StatusOK
		}
		return resp, code
	}
	s.mu.Unlock()

	// After a restart the state map is empty but the journal replay
	// seeded the runner's memos: a resubmitted key completes instantly
	// and byte-identically.
	if res, err, ok := s.runner.Lookup(key); ok && err == nil {
		s.finish(key, StatusDone, "", res)
		s.deduped.Add(1)
		return StatusResponse{Key: key, Status: StatusDone}, http.StatusOK
	}

	// New (or retried-after-failure) work: gate on the family breaker.
	now := s.now()
	s.mu.Lock()
	ok, retryAfter := s.breakerFor(spec.Family()).allow(now)
	if !ok {
		s.mu.Unlock()
		s.rejectedBreaker.Add(1)
		return StatusResponse{
			Key:          key,
			Error:        fmt.Sprintf("circuit breaker open for %s", spec.Family()),
			RetryAfterMS: retryAfter.Milliseconds(),
		}, http.StatusServiceUnavailable
	}
	// Clear any quarantined failure so the retry actually re-runs.
	// (Forget is a no-op for unknown and successful keys.)
	s.runner.Forget(key)

	ctx := s.baseCtx
	if ctx == nil {
		ctx = context.Background()
	}
	j := &job{spec: spec, key: key, ctx: ctx}
	if timeout > 0 {
		j.ctx, j.cancel = context.WithTimeout(ctx, timeout)
	}
	select {
	case s.jobs <- j:
		s.states[key] = &jobState{status: StatusQueued, done: make(chan struct{})}
		s.mu.Unlock()
		s.accepted.Add(1)
		return StatusResponse{Key: key, Status: StatusQueued}, http.StatusAccepted
	default:
		s.mu.Unlock()
		if j.cancel != nil {
			j.cancel()
		}
		// Undo the breaker's half-open probe slot if we took it: the
		// probe never ran.
		s.mu.Lock()
		if b := s.breakerFor(spec.Family()); b.state == bkHalfOpen {
			b.probing = false
		}
		s.mu.Unlock()
		s.shed.Add(1)
		return StatusResponse{
			Key:          key,
			Error:        "queue full",
			RetryAfterMS: s.cfg.ShedRetryAfter.Milliseconds(),
		}, http.StatusTooManyRequests
	}
}

// Resubmit re-enqueues a journaled-but-never-run task at startup (the
// resume path for KindQueued drain records). Already-completed keys
// are deduped against the replayed memos.
func (s *Server) Resubmit(spec exp.TaskSpec) error {
	resp, code := s.admit(spec, 0)
	switch code {
	case http.StatusOK, http.StatusAccepted:
		return nil
	}
	return fmt.Errorf("resubmit %s: %s", resp.Key, resp.Error)
}

// state snapshots a key's current lifecycle.
func (s *Server) state(key string) (jobState, chan struct{}, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.states[key]
	if !ok {
		return jobState{}, nil, false
	}
	return *st, st.done, true
}

// Drain stops admission and the queue, waits for in-flight runs to
// finish (interrupting them if ctx expires first), then journals every
// queued-but-unstarted task as a KindQueued record so a restart with
// -resume re-enqueues exactly the pending work. It returns how many
// queued tasks were journaled. Drain is idempotent; only the first
// call does the work.
func (s *Server) Drain(ctx context.Context) (queued int, err error) {
	if !s.draining.CompareAndSwap(false, true) {
		return 0, nil
	}
	close(s.quit)
	done := make(chan struct{})
	go func() { s.wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-ctx.Done():
		// Grace expired: interrupt the in-flight simulations at their
		// next poll and wait them out — a run either completes (and
		// journals) or reports interrupted; nothing is abandoned
		// mid-journal-write.
		s.baseCancel()
		<-done
	}
	for {
		select {
		case j := <-s.jobs:
			if j.cancel != nil {
				j.cancel()
			}
			queued++
			if jnl := s.runner.Journal; jnl != nil {
				spec := j.spec
				if aerr := jnl.Append(exp.Record{Kind: exp.KindQueued, Key: j.key, Spec: &spec}); aerr != nil && err == nil {
					err = aerr
				}
			}
		default:
			return queued, err
		}
	}
}

// Draining reports whether the server has begun (or finished) a drain.
func (s *Server) Draining() bool { return s.draining.Load() }

// Health snapshots the node's identity and load for /healthz and
// /readyz: version, uptime, the daemon-wide engine default, and the
// admission-queue depth — what hetsimctl wait-ready prints and the
// fleet coordinator reads to tell a cold worker from a draining one.
func (s *Server) Health() Health {
	return Health{
		Version:    Version,
		UptimeS:    s.now().Sub(s.started).Seconds(),
		Engine:     s.cfg.Engine,
		QueueDepth: len(s.jobs),
		Draining:   s.draining.Load(),
	}
}

// Handler returns the service's HTTP API:
//
//	POST /v1/runs            submit (idempotent by task key)
//	GET  /v1/runs/{key}      status, with optional ?wait= long-poll
//	GET  /v1/results/{key}   completed run's payload
//	GET  /healthz            liveness (always 200 while serving)
//	GET  /readyz             readiness (503 once draining)
//	GET  /metricsz           admission/breaker/queue/journal counters
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/runs", s.handleSubmit)
	mux.HandleFunc("GET /v1/runs/{key...}", s.handleStatus)
	mux.HandleFunc("GET /v1/results/{key...}", s.handleResult)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Health())
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		h := s.Health()
		if h.Draining {
			w.Header().Set("Retry-After", "1")
			writeJSON(w, http.StatusServiceUnavailable, h)
			return
		}
		writeJSON(w, http.StatusOK, h)
	})
	mux.HandleFunc("GET /metricsz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_ = s.reg.WriteSnapshot(w)
	})
	return mux
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req SubmitRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, StatusResponse{Error: "bad submit body: " + err.Error()})
		return
	}
	resp, code := s.admit(req.TaskSpec, time.Duration(req.TimeoutMS)*time.Millisecond)
	if code == http.StatusTooManyRequests || code == http.StatusServiceUnavailable {
		writeRejection(w, code, resp.Key, resp.Error, time.Duration(resp.RetryAfterMS)*time.Millisecond)
		return
	}
	writeJSON(w, code, resp)
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	st, doneCh, ok := s.state(key)
	if !ok {
		// Fall back to the replayed memos so a restarted server still
		// answers for journaled runs that were never resubmitted.
		if res, err, hit := s.runner.Lookup(key); hit {
			if err != nil {
				writeJSON(w, http.StatusOK, StatusResponse{Key: key, Status: StatusFailed, Error: err.Error()})
				return
			}
			s.finish(key, StatusDone, "", res)
			writeJSON(w, http.StatusOK, StatusResponse{Key: key, Status: StatusDone})
			return
		}
		writeJSON(w, http.StatusNotFound, StatusResponse{Key: key, Error: "unknown run"})
		return
	}
	if waitStr := r.URL.Query().Get("wait"); waitStr != "" && (st.status == StatusQueued || st.status == StatusRunning) {
		wait, err := time.ParseDuration(waitStr)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, StatusResponse{Key: key, Error: "bad wait duration: " + err.Error()})
			return
		}
		if wait > s.cfg.MaxWait {
			wait = s.cfg.MaxWait
		}
		t := time.NewTimer(wait)
		defer t.Stop()
		select {
		case <-doneCh:
		case <-t.C:
		case <-r.Context().Done():
		}
		st, _, _ = s.state(key)
	}
	writeJSON(w, http.StatusOK, StatusResponse{Key: key, Status: st.status, Error: st.err})
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	st, _, ok := s.state(key)
	if !ok {
		if res, err, hit := s.runner.Lookup(key); hit && err == nil {
			writeJSON(w, http.StatusOK, ResultResponse{Key: key, TaskResult: res})
			return
		}
		writeJSON(w, http.StatusNotFound, StatusResponse{Key: key, Error: "unknown run"})
		return
	}
	switch st.status {
	case StatusDone:
		writeJSON(w, http.StatusOK, ResultResponse{Key: key, TaskResult: st.res})
	case StatusFailed:
		writeJSON(w, http.StatusInternalServerError, StatusResponse{Key: key, Status: StatusFailed, Error: st.err})
	default:
		writeJSON(w, http.StatusConflict, StatusResponse{Key: key, Status: st.status, Error: "run not complete"})
	}
}
