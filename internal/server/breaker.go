package server

import "time"

// breakerState is one node of the per-family circuit-breaker state
// machine (DESIGN.md §10):
//
//	closed --(threshold consecutive panics)--> open
//	open --(cooldown elapses; next submission becomes the probe)--> half-open
//	half-open --(probe succeeds)--> closed
//	half-open --(probe fails in any way)--> open
type breakerState int

const (
	bkClosed breakerState = iota
	bkOpen
	bkHalfOpen
)

func (s breakerState) String() string {
	switch s {
	case bkOpen:
		return "open"
	case bkHalfOpen:
		return "half-open"
	}
	return "closed"
}

// runOutcome classifies one finished run for the breaker.
type runOutcome int

const (
	// outcomeOK: the run completed; the family is healthy.
	outcomeOK runOutcome = iota
	// outcomePanic: the run died in a recovered panic (exp.RunError
	// with a stack) — the signal the breaker exists for: a corrupt
	// workload table or a broken controller will panic again on every
	// retry, and without a breaker every retry burns a full
	// simulation's worth of worker time.
	outcomePanic
	// outcomeFail: the run failed without panicking (deadline,
	// cancellation). Neutral in the closed state — a client's tight
	// deadline says nothing about the config family — but a half-open
	// probe that fails this way still re-opens: the family has not
	// proven itself.
	outcomeFail
)

// breaker is the circuit breaker for one config family. The server
// serializes access through its own mutex; breaker methods assume the
// caller holds it.
type breaker struct {
	threshold int
	cooldown  time.Duration

	state    breakerState
	fails    int // consecutive panics while closed
	openedAt time.Time
	probing  bool // half-open: the single allowed probe is in flight
}

// allow reports whether a submission for this family may proceed at
// now. When refused, retryAfter is the client's suggested wait. An
// open breaker whose cooldown has elapsed moves to half-open and
// admits exactly one submission as the probe.
func (b *breaker) allow(now time.Time) (ok bool, retryAfter time.Duration) {
	switch b.state {
	case bkClosed:
		return true, 0
	case bkOpen:
		since := now.Sub(b.openedAt)
		if since < b.cooldown {
			return false, b.cooldown - since
		}
		b.state = bkHalfOpen
		b.probing = false
		fallthrough
	default: // bkHalfOpen
		if b.probing {
			return false, b.cooldown // one probe at a time
		}
		b.probing = true
		return true, 0
	}
}

// record feeds one finished run back into the state machine.
func (b *breaker) record(o runOutcome, now time.Time) (tripped bool) {
	switch b.state {
	case bkHalfOpen:
		b.probing = false
		if o == outcomeOK {
			b.state = bkClosed
			b.fails = 0
			return false
		}
		b.state = bkOpen
		b.openedAt = now
		return true
	case bkClosed:
		switch o {
		case outcomeOK:
			b.fails = 0
		case outcomePanic:
			b.fails++
			if b.fails >= b.threshold {
				b.state = bkOpen
				b.openedAt = now
				b.fails = 0
				return true
			}
		}
	}
	// bkOpen: a straggler admitted before the trip; its outcome says
	// nothing the trip didn't.
	return false
}
