package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/exp"
	"repro/internal/sim"
)

// detCfg mirrors the exp package's smallest full-subsystem config:
// service tests that exercise a real simulation need speed, not
// meaningful numbers.
func detCfg() sim.Config {
	cfg := sim.DefaultConfig(256)
	cfg.WarmupInstr = 10_000
	cfg.WarmupFrames = 1
	cfg.MeasureInstr = 30_000
	cfg.MinFrames = 1
	cfg.MaxCycles = 10_000_000
	return cfg
}

// startServer builds, starts, and serves a Server over httptest,
// registering cleanup for both.
func startServer(t *testing.T, runner *exp.Runner, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(runner, cfg)
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	s.Start(ctx)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// submit POSTs one task and decodes the response.
func submit(t *testing.T, base string, req SubmitRequest) (StatusResponse, int, http.Header) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/runs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sr StatusResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	return sr, resp.StatusCode, resp.Header
}

// await long-polls a run until it leaves the queued/running states.
func await(t *testing.T, base, key string) StatusResponse {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/v1/runs/" + key + "?wait=2s")
		if err != nil {
			t.Fatal(err)
		}
		var sr StatusResponse
		err = json.NewDecoder(resp.Body).Decode(&sr)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if sr.Status == StatusDone || sr.Status == StatusFailed {
			return sr
		}
	}
	t.Fatalf("run %s never completed", key)
	return StatusResponse{}
}

// metrics fetches /metricsz into a name→value map.
func metrics(t *testing.T, base string) map[string]float64 {
	t.Helper()
	resp, err := http.Get(base + "/metricsz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	m := make(map[string]float64)
	for _, line := range strings.Split(strings.TrimSpace(string(raw)), "\n") {
		var name string
		var v float64
		if _, err := fmt.Sscanf(line, "%s %g", &name, &v); err == nil {
			m[name] = v
		}
	}
	return m
}

// TestServiceRealRun drives one real simulation end to end through
// the HTTP API: submit, long-poll to done, fetch the result, and
// verify resubmission is an idempotent 200 that re-serves the memo.
func TestServiceRealRun(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	runner := exp.NewRunner(detCfg())
	_, ts := startServer(t, runner, Config{Workers: 2})

	req := SubmitRequest{TaskSpec: exp.CPUTaskSpec(462)}
	sr, code, _ := submit(t, ts.URL, req)
	if code != http.StatusAccepted || sr.Status != StatusQueued {
		t.Fatalf("submit: code %d status %q", code, sr.Status)
	}
	if sr.Key != "cpu/462" {
		t.Fatalf("submit key %q", sr.Key)
	}
	fin := await(t, ts.URL, sr.Key)
	if fin.Status != StatusDone {
		t.Fatalf("run finished %q (%s)", fin.Status, fin.Error)
	}

	resp, err := http.Get(ts.URL + "/v1/results/" + sr.Key)
	if err != nil {
		t.Fatal(err)
	}
	var rr ResultResponse
	err = json.NewDecoder(resp.Body).Decode(&rr)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("result: code %d err %v", resp.StatusCode, err)
	}
	if rr.IPC <= 0 {
		t.Fatalf("result IPC = %v, want > 0", rr.IPC)
	}

	// Idempotent resubmission: same key, instant 200, no second run.
	sr2, code2, _ := submit(t, ts.URL, req)
	if code2 != http.StatusOK || sr2.Status != StatusDone {
		t.Fatalf("resubmit: code %d status %q", code2, sr2.Status)
	}
	m := metrics(t, ts.URL)
	if m["runs_completed"] != 1 {
		t.Fatalf("runs_completed = %v, want 1", m["runs_completed"])
	}
	if m["submissions_deduped"] != 1 {
		t.Fatalf("submissions_deduped = %v, want 1", m["submissions_deduped"])
	}
}

// blockingRun is a RunFunc that parks every run until released.
type blockingRun struct {
	release chan struct{}
	started chan string
}

func newBlockingRun() *blockingRun {
	return &blockingRun{release: make(chan struct{}), started: make(chan string, 64)}
}

func (b *blockingRun) run(ctx context.Context, spec exp.TaskSpec) (exp.TaskResult, error) {
	b.started <- spec.Key()
	select {
	case <-b.release:
		return exp.TaskResult{IPC: 1}, nil
	case <-ctx.Done():
		return exp.TaskResult{}, ctx.Err()
	}
}

// TestServiceShedsWhenFull: with one worker and a queue of one, the
// third concurrent submission is shed with 429 + Retry-After, and the
// shed is counted on /metricsz. Overload is bounded and observable.
func TestServiceShedsWhenFull(t *testing.T) {
	blk := newBlockingRun()
	runner := exp.NewRunner(detCfg())
	_, ts := startServer(t, runner, Config{
		Workers:        1,
		QueueDepth:     1,
		ShedRetryAfter: 1500 * time.Millisecond,
		RunFunc:        blk.run,
	})

	specs := []exp.TaskSpec{exp.CPUTaskSpec(429), exp.CPUTaskSpec(433), exp.CPUTaskSpec(450)}
	// First fills the worker...
	if sr, code, _ := submit(t, ts.URL, SubmitRequest{TaskSpec: specs[0]}); code != http.StatusAccepted {
		t.Fatalf("submit 1: code %d (%s)", code, sr.Error)
	}
	<-blk.started // ...and is running, so the next occupies the queue slot.
	if sr, code, _ := submit(t, ts.URL, SubmitRequest{TaskSpec: specs[1]}); code != http.StatusAccepted {
		t.Fatalf("submit 2: code %d (%s)", code, sr.Error)
	}
	sr, code, hdr := submit(t, ts.URL, SubmitRequest{TaskSpec: specs[2]})
	if code != http.StatusTooManyRequests {
		t.Fatalf("submit 3: code %d, want 429", code)
	}
	if got := hdr.Get("Retry-After"); got != "2" { // 1500ms rounds up
		t.Fatalf("Retry-After = %q, want \"2\"", got)
	}
	if sr.RetryAfterMS != 1500 {
		t.Fatalf("RetryAfterMS = %d, want 1500", sr.RetryAfterMS)
	}
	m := metrics(t, ts.URL)
	if m["submissions_shed"] != 1 {
		t.Fatalf("submissions_shed = %v, want 1", m["submissions_shed"])
	}
	if m["queue_depth"] != 1 || m["queue_capacity"] != 1 {
		t.Fatalf("queue %v/%v, want 1/1", m["queue_depth"], m["queue_capacity"])
	}

	close(blk.release)
	for _, spec := range specs[:2] {
		if fin := await(t, ts.URL, spec.Key()); fin.Status != StatusDone {
			t.Fatalf("%s finished %q", spec.Key(), fin.Status)
		}
	}
}

// TestServiceDeadline: a per-request timeout_ms expires the run even
// though the executor never returns on its own, and the run reports
// failed with the deadline error.
func TestServiceDeadline(t *testing.T) {
	blk := newBlockingRun() // never released: only ctx can end the run
	runner := exp.NewRunner(detCfg())
	s, ts := startServer(t, runner, Config{Workers: 1, RunFunc: blk.run})

	sr, code, _ := submit(t, ts.URL, SubmitRequest{TaskSpec: exp.CPUTaskSpec(470), TimeoutMS: 50})
	if code != http.StatusAccepted {
		t.Fatalf("submit: code %d (%s)", code, sr.Error)
	}
	fin := await(t, ts.URL, sr.Key)
	if fin.Status != StatusFailed {
		t.Fatalf("run finished %q, want failed", fin.Status)
	}
	if !strings.Contains(fin.Error, context.DeadlineExceeded.Error()) {
		t.Fatalf("failure %q does not name the deadline", fin.Error)
	}
	// A deadline failure is neutral to the breaker: the family stays
	// closed and a retry is admitted.
	if st := s.BreakerState("cpu/470"); st != "closed" {
		t.Fatalf("breaker %q after deadline failure, want closed", st)
	}
}

// panicRun fabricates the breaker's trip signal: an exp.RunError
// carrying a stack, exactly what the runner's panic quarantine
// produces for a run that died inside the simulator.
func panicRun(ctx context.Context, spec exp.TaskSpec) (exp.TaskResult, error) {
	return exp.TaskResult{}, &exp.RunError{Key: spec.Key(), Phase: "run", Err: fmt.Errorf("boom"), Stack: "fake stack"}
}

// TestServiceBreaker walks the whole state machine: threshold panics
// trip the family open (503 + Retry-After), cooldown admits exactly
// one half-open probe, a successful probe re-closes the family.
func TestServiceBreaker(t *testing.T) {
	var mu sync.Mutex
	now := time.Unix(1_000_000, 0)
	clock := func() time.Time { mu.Lock(); defer mu.Unlock(); return now }
	advance := func(d time.Duration) { mu.Lock(); now = now.Add(d); mu.Unlock() }

	failing := true
	run := func(ctx context.Context, spec exp.TaskSpec) (exp.TaskResult, error) {
		mu.Lock()
		f := failing
		mu.Unlock()
		if f {
			return panicRun(ctx, spec)
		}
		return exp.TaskResult{IPC: 1}, nil
	}

	runner := exp.NewRunner(detCfg())
	s, ts := startServer(t, runner, Config{
		Workers:          1,
		BreakerThreshold: 2,
		BreakerCooldown:  time.Minute,
		RunFunc:          run,
		Now:              clock,
	})

	// Two panics in the family "mix/M1" (different policies, same mix).
	for _, p := range []sim.Policy{sim.PolicyBaseline, sim.PolicyCMBAL} {
		sr, code, _ := submit(t, ts.URL, SubmitRequest{TaskSpec: exp.MixTaskSpec("M1", p)})
		if code != http.StatusAccepted {
			t.Fatalf("submit policy %d: code %d (%s)", p, code, sr.Error)
		}
		if fin := await(t, ts.URL, sr.Key); fin.Status != StatusFailed {
			t.Fatalf("policy %d finished %q, want failed", p, fin.Status)
		}
	}
	if st := s.BreakerState("mix/M1"); st != "open" {
		t.Fatalf("breaker %q after %d panics, want open", st, 2)
	}

	// Open: rejected with 503 + Retry-After; other families unaffected.
	sr, code, hdr := submit(t, ts.URL, SubmitRequest{TaskSpec: exp.MixTaskSpec("M1", sim.PolicyHeLM)})
	if code != http.StatusServiceUnavailable {
		t.Fatalf("open-breaker submit: code %d, want 503", code)
	}
	if hdr.Get("Retry-After") == "" || sr.RetryAfterMS <= 0 {
		t.Fatalf("open-breaker rejection lacks retry hints: hdr %q body %d", hdr.Get("Retry-After"), sr.RetryAfterMS)
	}
	if _, code, _ := submit(t, ts.URL, SubmitRequest{TaskSpec: exp.MixTaskSpec("M2", sim.PolicyBaseline)}); code != http.StatusAccepted {
		t.Fatalf("sibling family also rejected: code %d", code)
	}
	if fin := await(t, ts.URL, "mix/M2/0"); fin.Status != StatusFailed {
		t.Fatalf("M2 run finished %q, want failed (executor still panicking)", fin.Status)
	}

	// Cooldown elapses; the family heals; the next submission is the
	// single half-open probe and it succeeds.
	mu.Lock()
	failing = false
	mu.Unlock()
	advance(2 * time.Minute)
	sr, code, _ = submit(t, ts.URL, SubmitRequest{TaskSpec: exp.MixTaskSpec("M1", sim.PolicyHeLM)})
	if code != http.StatusAccepted {
		t.Fatalf("half-open probe: code %d (%s)", code, sr.Error)
	}
	if fin := await(t, ts.URL, sr.Key); fin.Status != StatusDone {
		t.Fatalf("probe finished %q, want done", fin.Status)
	}
	if st := s.BreakerState("mix/M1"); st != "closed" {
		t.Fatalf("breaker %q after successful probe, want closed", st)
	}
	m := metrics(t, ts.URL)
	if m["breaker_trips"] != 1 {
		t.Fatalf("breaker_trips = %v, want 1", m["breaker_trips"])
	}
	if m["run_panics"] != 3 {
		t.Fatalf("run_panics = %v, want 3", m["run_panics"])
	}
	if m["submissions_rejected_breaker"] != 1 {
		t.Fatalf("submissions_rejected_breaker = %v, want 1", m["submissions_rejected_breaker"])
	}
}

// TestServiceDrainJournalsQueue: a drain finishes the in-flight run,
// journals the queued-but-unstarted task as a KindQueued record, and
// the server refuses new work while /readyz reports 503. A fresh
// server resuming from the journal re-runs exactly the pending task.
func TestServiceDrainJournalsQueue(t *testing.T) {
	dir := t.TempDir()
	jpath := filepath.Join(dir, "runs.jsonl")
	j, _, _, err := exp.OpenJournal(jpath)
	if err != nil {
		t.Fatal(err)
	}
	blk := newBlockingRun()
	runner := exp.NewRunner(detCfg())
	runner.Journal = j
	s, ts := startServer(t, runner, Config{Workers: 1, QueueDepth: 4, RunFunc: blk.run})

	if _, code, _ := submit(t, ts.URL, SubmitRequest{TaskSpec: exp.CPUTaskSpec(429)}); code != http.StatusAccepted {
		t.Fatalf("submit running: code %d", code)
	}
	<-blk.started
	queuedSpec := exp.MixTaskSpec("M3", sim.PolicyCMBAL)
	if _, code, _ := submit(t, ts.URL, SubmitRequest{TaskSpec: queuedSpec}); code != http.StatusAccepted {
		t.Fatalf("submit queued: code %d", code)
	}

	// Release the in-flight run and drain with ample grace.
	close(blk.release)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	queued, err := s.Drain(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if queued != 1 {
		t.Fatalf("drain journaled %d queued tasks, want 1", queued)
	}

	// Draining: no new work, not ready.
	if _, code, _ := submit(t, ts.URL, SubmitRequest{TaskSpec: exp.CPUTaskSpec(433)}); code != http.StatusServiceUnavailable {
		t.Fatalf("post-drain submit: code %d, want 503", code)
	}
	if resp, err := http.Get(ts.URL + "/readyz"); err != nil || resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz while draining: %v %v", resp.StatusCode, err)
	} else {
		resp.Body.Close()
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// The journal's KindQueued record round-trips into a runnable spec.
	_, recs, _, err := exp.OpenJournal(jpath)
	if err != nil {
		t.Fatal(err)
	}
	var found *exp.TaskSpec
	for _, r := range recs {
		if r.Kind == exp.KindQueued {
			found = r.Spec
		}
	}
	if found == nil {
		t.Fatal("no KindQueued record journaled by drain")
	}
	if found.Key() != queuedSpec.Key() {
		t.Fatalf("journaled spec key %q, want %q", found.Key(), queuedSpec.Key())
	}

	// Resume path: a fresh server Resubmits the journaled spec.
	blk2 := newBlockingRun()
	close(blk2.release) // run immediately
	runner2 := exp.NewRunner(detCfg())
	s2, ts2 := startServer(t, runner2, Config{Workers: 1, RunFunc: blk2.run})
	if err := s2.Resubmit(*found); err != nil {
		t.Fatal(err)
	}
	if fin := await(t, ts2.URL, found.Key()); fin.Status != StatusDone {
		t.Fatalf("resumed run finished %q", fin.Status)
	}
}

// TestServiceBadRequests: malformed body, unknown workload, unknown
// key.
func TestServiceBadRequests(t *testing.T) {
	runner := exp.NewRunner(detCfg())
	_, ts := startServer(t, runner, Config{Workers: 1})

	resp, err := http.Post(ts.URL+"/v1/runs", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad body: code %d", resp.StatusCode)
	}

	if sr, code, _ := submit(t, ts.URL, SubmitRequest{TaskSpec: exp.GPUTaskSpec("NoSuchGame")}); code != http.StatusBadRequest || sr.Error == "" {
		t.Fatalf("unknown game: code %d error %q", code, sr.Error)
	}

	resp, err = http.Get(ts.URL + "/v1/runs/cpu/999999")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown key: code %d", resp.StatusCode)
	}
}

// TestServiceConcurrentSubmissions hammers the API from many clients
// with overlapping keys under -race: every accepted run completes,
// dedupe joins never produce a second execution, and the executor
// sees each key at most once.
func TestServiceConcurrentSubmissions(t *testing.T) {
	var mu sync.Mutex
	seen := make(map[string]int)
	run := func(ctx context.Context, spec exp.TaskSpec) (exp.TaskResult, error) {
		mu.Lock()
		seen[spec.Key()]++
		mu.Unlock()
		time.Sleep(time.Millisecond)
		return exp.TaskResult{IPC: 1}, nil
	}
	runner := exp.NewRunner(detCfg())
	_, ts := startServer(t, runner, Config{Workers: 4, QueueDepth: 64, RunFunc: run})

	specs := []exp.TaskSpec{
		exp.CPUTaskSpec(429), exp.CPUTaskSpec(433), exp.CPUTaskSpec(450), exp.CPUTaskSpec(462),
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		for _, spec := range specs {
			wg.Add(1)
			go func(spec exp.TaskSpec) {
				defer wg.Done()
				// Retry shed submissions like a real client would.
				for {
					_, code, _ := submit(t, ts.URL, SubmitRequest{TaskSpec: spec})
					switch code {
					case http.StatusAccepted, http.StatusOK:
						return
					case http.StatusTooManyRequests:
						time.Sleep(5 * time.Millisecond)
					default:
						t.Errorf("submit %s: code %d", spec.Key(), code)
						return
					}
				}
			}(spec)
		}
	}
	wg.Wait()
	for _, spec := range specs {
		if fin := await(t, ts.URL, spec.Key()); fin.Status != StatusDone {
			t.Fatalf("%s finished %q", spec.Key(), fin.Status)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	for key, n := range seen {
		if n != 1 {
			t.Errorf("executor ran %s %d times, want 1", key, n)
		}
	}
}

// TestHealthEndpoints: /healthz and /readyz carry the node identity
// fields (version, uptime, engine, queue depth) that let hetsimctl and
// the fleet coordinator distinguish a cold worker from a draining one.
func TestHealthEndpoints(t *testing.T) {
	blk := newBlockingRun()
	now := time.Now()
	clock := func() time.Time { return now }
	s, ts := startServer(t, exp.NewRunner(detCfg()), Config{
		Workers: 1, QueueDepth: 4, Engine: "seq", RunFunc: blk.run, Now: clock,
	})

	getHealth := func(path string) (Health, int) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var h Health
		if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
			t.Fatalf("decode %s: %v", path, err)
		}
		return h, resp.StatusCode
	}

	h, code := getHealth("/healthz")
	if code != http.StatusOK {
		t.Fatalf("healthz code %d", code)
	}
	if h.Version != Version || h.Engine != "seq" || h.Draining {
		t.Fatalf("healthz = %+v, want version %s, engine seq, not draining", h, Version)
	}
	if h.UptimeS != 0 {
		t.Fatalf("uptime %v with a frozen clock, want 0", h.UptimeS)
	}

	// Occupy the worker and queue one task: queue_depth must show it.
	if _, code, _ := submit(t, ts.URL, SubmitRequest{TaskSpec: exp.CPUTaskSpec(429)}); code != http.StatusAccepted {
		t.Fatalf("submit: code %d", code)
	}
	<-blk.started
	if _, code, _ := submit(t, ts.URL, SubmitRequest{TaskSpec: exp.CPUTaskSpec(462)}); code != http.StatusAccepted {
		t.Fatalf("submit queued: code %d", code)
	}
	if h, _ := getHealth("/readyz"); h.QueueDepth != 1 {
		t.Fatalf("readyz queue_depth = %d, want 1", h.QueueDepth)
	}

	// Advance the frozen clock and drain: uptime moves, readyz turns
	// 503 but still reports the identity fields.
	now = now.Add(3 * time.Second)
	close(blk.release)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if _, err := s.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	h, code = getHealth("/readyz")
	if code != http.StatusServiceUnavailable || !h.Draining {
		t.Fatalf("draining readyz = %d %+v, want 503 + draining", code, h)
	}
	if h.UptimeS != 3 {
		t.Fatalf("uptime %v after 3s, want 3", h.UptimeS)
	}
	if h.Version != Version || h.Engine != "seq" {
		t.Fatalf("draining readyz lost identity: %+v", h)
	}
}
