// Package server is the hetsimd simulation service: an HTTP JSON API
// over exp.Runner, hardened for long-lived multi-client operation —
// admission control with a bounded queue and load shedding, per-request
// deadlines threaded into the simulator's interrupt hook, a per-family
// circuit breaker against panicking configurations, observable state
// on /metricsz, and a crash-consistent graceful drain that journals
// whatever never got to run. See DESIGN.md §10.
package server

import (
	"encoding/json"
	"net/http"
	"strconv"
	"time"

	"repro/internal/exp"
)

// Run states reported by the API.
const (
	StatusQueued  = "queued"
	StatusRunning = "running"
	StatusDone    = "done"
	StatusFailed  = "failed"
)

// SubmitRequest is the POST /v1/runs body: the task plus an optional
// per-request deadline. The deadline clock starts at admission and
// covers queue wait; when it expires the simulation (if started) ends
// at its next interrupt poll and the run reports failed.
type SubmitRequest struct {
	exp.TaskSpec
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// StatusResponse reports one run's state. RetryAfterMS is set only on
// rejections (shed queue, open breaker, draining) as the suggested
// client backoff, mirroring the Retry-After header.
type StatusResponse struct {
	Key          string `json:"key"`
	Status       string `json:"status,omitempty"`
	Error        string `json:"error,omitempty"`
	RetryAfterMS int64  `json:"retry_after_ms,omitempty"`
}

// ResultResponse is a completed run's payload.
type ResultResponse struct {
	Key string `json:"key"`
	exp.TaskResult
}

// Version identifies this build of the service layer; /healthz and
// /readyz report it so a fleet operator can spot a node running stale
// code.
const Version = "0.9.0"

// Health is the /healthz and /readyz body: enough for a client (or the
// fleet coordinator) to distinguish a cold worker from a draining one
// — a cold node reports near-zero uptime and an empty queue, a
// draining one reports draining=true behind a 503 /readyz.
type Health struct {
	Version    string  `json:"version"`
	UptimeS    float64 `json:"uptime_s"`
	Engine     string  `json:"engine"`
	QueueDepth int     `json:"queue_depth"`
	Draining   bool    `json:"draining,omitempty"`
	Term       uint64  `json:"term,omitempty"` // fleet coordinators: current epoch (DESIGN.md §15)
}

// writeJSON emits v with the given HTTP status.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

// writeRejection emits a 429/503 with both the Retry-After header
// (whole seconds, rounded up, minimum 1) and the machine-friendly
// RetryAfterMS body field.
func writeRejection(w http.ResponseWriter, code int, key, msg string, retryAfter time.Duration) {
	secs := int64((retryAfter + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
	writeJSON(w, code, StatusResponse{
		Key:          key,
		Error:        msg,
		RetryAfterMS: retryAfter.Milliseconds(),
	})
}
