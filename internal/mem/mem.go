// Package mem defines the memory request/response types, request
// sources and classes, and the physical address map shared by every
// component of the heterogeneous CMP model: CPU cores, the GPU, the
// shared LLC, the ring interconnect, and the DRAM controllers.
//
// A Request is created by a core or by the GPU memory interface,
// travels down the hierarchy, and is marked Done (with a completion
// cycle) when its data would have returned to the requester. Requests
// are single-owner mutable objects; the simulator is single-threaded
// per system instance, so no locking is needed.
package mem

import "fmt"

// LineSize is the cache line size in bytes used throughout the model
// (Table I of the paper: 64 B blocks everywhere).
const LineSize = 64

// LineShift is log2(LineSize).
const LineShift = 6

// Source identifies the agent that issued a request.
type Source uint8

// Well-known sources. CPU cores are Source(0) .. Source(NumCPUs-1);
// the GPU is SourceGPU. Keeping CPUs at small integer values lets
// per-source stat arrays be indexed directly.
const (
	SourceCPU0 Source = iota
	SourceCPU1
	SourceCPU2
	SourceCPU3
	SourceGPU
	NumSources
)

// IsCPU reports whether the source is one of the CPU cores.
func (s Source) IsCPU() bool { return s < SourceGPU }

// String implements fmt.Stringer.
func (s Source) String() string {
	if s.IsCPU() {
		return fmt.Sprintf("CPU%d", int(s))
	}
	if s == SourceGPU {
		return "GPU"
	}
	return fmt.Sprintf("Source(%d)", int(s))
}

// Class describes what kind of data a request touches. The LLC
// management policies (HeLM, forced bypass) and the GPU cache
// hierarchy dispatch on it.
type Class uint8

// Request classes.
const (
	ClassCPUData Class = iota
	ClassTexture
	ClassDepth
	ClassColor
	ClassVertex
	ClassShader
	ClassHiZ
	NumClasses
)

// String implements fmt.Stringer.
func (c Class) String() string {
	switch c {
	case ClassCPUData:
		return "cpu"
	case ClassTexture:
		return "tex"
	case ClassDepth:
		return "depth"
	case ClassColor:
		return "color"
	case ClassVertex:
		return "vertex"
	case ClassShader:
		return "shader"
	case ClassHiZ:
		return "hiz"
	}
	return fmt.Sprintf("Class(%d)", int(c))
}

// IsGPU reports whether the class belongs to the GPU's rendering
// pipeline.
func (c Class) IsGPU() bool { return c != ClassCPUData }

// Request is a memory transaction at cache-line granularity.
type Request struct {
	ID    uint64
	Addr  uint64 // byte address; the line address is Addr &^ (LineSize-1)
	Write bool   // true for stores / write-backs / ROP color+depth flushes
	Src   Source
	Class Class

	// Born is the CPU cycle at which the request entered the shared
	// part of the memory system (the GPU memory interface or the
	// core's L2 miss path).
	Born uint64

	// Done is set, with DoneCycle, when the request's data is back at
	// the requester.
	Done      bool
	DoneCycle uint64

	// Bypass marks a fill that must not allocate in the LLC (HeLM and
	// the forced-bypass study of Fig. 3 set it on GPU read misses).
	Bypass bool

	// Prefetch marks a speculative CPU request issued by the L2
	// streamer; it never blocks the core and fills L2 only.
	Prefetch bool

	// ServedBy records where the request was satisfied, for stats.
	ServedBy ServiceLevel
}

// ServiceLevel records the level of the hierarchy that supplied data.
type ServiceLevel uint8

// Service levels.
const (
	ServedNowhere ServiceLevel = iota
	ServedLLC
	ServedDRAM
)

// LineAddr returns the cache-line-aligned address of the request.
func (r *Request) LineAddr() uint64 { return r.Addr &^ (LineSize - 1) }

// Complete marks the request done at the given cycle.
func (r *Request) Complete(cycle uint64) {
	r.Done = true
	r.DoneCycle = cycle
}

// Latency returns the observed round-trip latency in CPU cycles. It
// panics if the request is not complete, which would always be a
// simulator bug.
func (r *Request) Latency() uint64 {
	if !r.Done {
		panic("mem: Latency on incomplete request")
	}
	return r.DoneCycle - r.Born
}

// Address map. Each agent gets a private region so that CPU and GPU
// data never alias; region sizes are generous (16 GiB apart) so that
// scaled working sets always fit.
const (
	// CPUBase is the base of core 0's region; core i uses
	// CPUBase + i*CPUStride.
	CPUBase   uint64 = 0x10_0000_0000
	CPUStride uint64 = 0x4_0000_0000

	// GPU regions.
	TextureBase uint64 = 0x80_0000_0000
	VertexBase  uint64 = 0x90_0000_0000
	DepthBase   uint64 = 0xA0_0000_0000
	ColorBase   uint64 = 0xB0_0000_0000
	HiZBase     uint64 = 0xC0_0000_0000
)

// CPURegion returns the base address of the given core's data region.
func CPURegion(core int) uint64 { return CPUBase + uint64(core)*CPUStride }
