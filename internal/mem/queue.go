package mem

// ReqQueue is a FIFO of requests used on per-cycle paths (core
// write-back buffers, the GPU's LLC-bound queue, the LLC's DRAM retry
// and write-back queues, the system's ring-spill buffer). Pop
// advances a head index instead of re-slicing, so the backing array
// is recycled across cycles rather than shifted — the classic
// `q = q[1:]` pattern keeps the drained prefix reachable and pins the
// whole array for the run. Drained slots are nilled for the GC and
// the prefix is compacted away once it dominates the array.
//
// The zero value is an empty queue.
type ReqQueue struct {
	q    []*Request
	head int
}

// Len returns the number of queued requests.
func (f *ReqQueue) Len() int { return len(f.q) - f.head }

// Push appends a request.
func (f *ReqQueue) Push(r *Request) { f.q = append(f.q, r) }

// Front returns the oldest request. It panics when empty.
func (f *ReqQueue) Front() *Request { return f.q[f.head] }

// Scan calls fn for each queued request in FIFO order. The
// observability audit uses it to count in-flight requests without
// disturbing the queue.
func (f *ReqQueue) Scan(fn func(*Request)) {
	for _, r := range f.q[f.head:] {
		fn(r)
	}
}

// Pop removes and returns the oldest request. It panics when empty.
func (f *ReqQueue) Pop() *Request {
	r := f.q[f.head]
	f.q[f.head] = nil
	f.head++
	switch {
	case f.head == len(f.q):
		// Drained: reuse the array from the start.
		f.q = f.q[:0]
		f.head = 0
	case f.head > 32 && f.head*2 >= len(f.q):
		// The dead prefix dominates: compact in place so the array
		// stops growing even if the queue never fully drains.
		n := copy(f.q, f.q[f.head:])
		for i := n; i < len(f.q); i++ {
			f.q[i] = nil
		}
		f.q = f.q[:n]
		f.head = 0
	}
	return r
}
