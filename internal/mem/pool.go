package mem

// Pool is a free list of Requests. The simulator allocates hundreds of
// thousands of Requests per run (core demand misses, GPU reads, dirty
// write-backs); each one dies at a well-defined point — a fill
// delivered back to its requester, a write absorbed by the LLC, a
// write-back completing at DRAM — so recycling them through a free
// list removes the dominant allocation churn from the hot loop.
//
// A Pool is not safe for concurrent use. Ownership follows the same
// single-owner discipline as the components themselves: each core, the
// GPU, and the LLC own one pool, and the parallel tick engine's phase
// barrier guarantees that a component (and therefore its pool) is only
// ever touched by one goroutine at a time. Requests may migrate
// between pools (a core-born write-back is freed by the LLC that
// absorbed it); a free list only cares that Put receives dead objects.
//
// Get returns a zeroed Request. Put does NOT zero: the dead object
// keeps its final field values until reuse, so stale readers (tests
// inspecting a completed request) observe unchanged data rather than a
// surprise reset.
//
// The zero value is an empty, ready-to-use Pool.
type Pool struct {
	free []*Request
}

// Get returns a zeroed Request, recycling a dead one when available.
func (p *Pool) Get() *Request {
	if n := len(p.free); n > 0 {
		r := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		*r = Request{}
		return r
	}
	return &Request{}
}

// Put recycles a dead Request. The caller must guarantee no live
// reference remains anywhere in the simulated system.
func (p *Pool) Put(r *Request) {
	p.free = append(p.free, r)
}
