package mem

import (
	"testing"
	"testing/quick"
)

func TestSourceClassification(t *testing.T) {
	for s := SourceCPU0; s < SourceGPU; s++ {
		if !s.IsCPU() {
			t.Fatalf("%v should be CPU", s)
		}
	}
	if SourceGPU.IsCPU() {
		t.Fatalf("GPU classified as CPU")
	}
	if SourceCPU2.String() != "CPU2" || SourceGPU.String() != "GPU" {
		t.Fatalf("string: %s %s", SourceCPU2, SourceGPU)
	}
}

func TestClassProperties(t *testing.T) {
	if ClassCPUData.IsGPU() {
		t.Fatalf("CPU data classified as GPU")
	}
	for _, c := range []Class{ClassTexture, ClassDepth, ClassColor, ClassVertex, ClassShader} {
		if !c.IsGPU() {
			t.Fatalf("%v should be GPU", c)
		}
	}
	if ClassTexture.String() != "tex" {
		t.Fatalf("class string: %s", ClassTexture)
	}
}

func TestLineAddr(t *testing.T) {
	r := Request{Addr: 0x1234}
	if r.LineAddr() != 0x1200 {
		t.Fatalf("line addr %#x", r.LineAddr())
	}
}

func TestCompleteAndLatency(t *testing.T) {
	r := Request{Born: 100}
	r.Complete(350)
	if !r.Done || r.Latency() != 250 {
		t.Fatalf("latency: %+v", r)
	}
}

func TestLatencyPanicsIfIncomplete(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("no panic")
		}
	}()
	(&Request{}).Latency()
}

func TestCPURegionsDisjoint(t *testing.T) {
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			lo1, hi1 := CPURegion(i), CPURegion(i)+CPUStride
			lo2 := CPURegion(j)
			if lo2 >= lo1 && lo2 < hi1 {
				t.Fatalf("regions %d and %d overlap", i, j)
			}
		}
	}
	// GPU regions sit far above all CPU regions.
	if TextureBase < CPURegion(3)+CPUStride {
		t.Fatalf("texture region overlaps CPU space")
	}
}

// Property: LineAddr is idempotent and alignment-preserving.
func TestQuickLineAddr(t *testing.T) {
	f := func(addr uint64) bool {
		r := Request{Addr: addr}
		l := r.LineAddr()
		return l%LineSize == 0 && l <= addr && addr-l < LineSize
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
