package mem

import "testing"

func TestReqQueueFIFO(t *testing.T) {
	var q ReqQueue
	if q.Len() != 0 {
		t.Fatalf("zero value not empty")
	}
	rs := make([]*Request, 5)
	for i := range rs {
		rs[i] = &Request{ID: uint64(i)}
		q.Push(rs[i])
	}
	if q.Len() != 5 || q.Front() != rs[0] {
		t.Fatalf("Len=%d Front=%v", q.Len(), q.Front())
	}
	for i := range rs {
		if got := q.Pop(); got != rs[i] {
			t.Fatalf("pop %d: got %v", i, got)
		}
	}
	if q.Len() != 0 {
		t.Fatalf("not empty after draining")
	}
	// Interleaved push/pop keeps FIFO order across the drain reset.
	q.Push(rs[1])
	q.Push(rs[2])
	if q.Pop() != rs[1] || q.Pop() != rs[2] {
		t.Fatalf("FIFO order lost after reuse")
	}
}

func TestReqQueueSteadyStateNoAllocs(t *testing.T) {
	var q ReqQueue
	r := &Request{}
	for i := 0; i < 64; i++ { // establish capacity
		q.Push(r)
	}
	for q.Len() > 0 {
		q.Pop()
	}
	avg := testing.AllocsPerRun(200, func() {
		for i := 0; i < 8; i++ {
			q.Push(r)
		}
		for q.Len() > 0 {
			q.Pop()
		}
	})
	if avg != 0 {
		t.Fatalf("steady-state push/pop allocates %.1f/op, want 0", avg)
	}
}

func TestReqQueueNeverYieldsNil(t *testing.T) {
	// The simulator dereferences Front()/Pop() results without nil
	// checks, so a non-empty queue must never surface a nil request —
	// including across the head-compaction and reuse paths.
	var q ReqQueue
	rs := make([]*Request, 8)
	for i := range rs {
		rs[i] = &Request{ID: uint64(i)}
	}
	for round := 0; round < 2000; round++ {
		for _, r := range rs {
			q.Push(r)
		}
		// Drain partially so the head walks the backing array.
		for i := 0; i < len(rs)-1; i++ {
			if q.Front() == nil {
				t.Fatalf("round %d: Front() = nil with Len %d", round, q.Len())
			}
			if q.Pop() == nil {
				t.Fatalf("round %d: Pop() = nil", round)
			}
		}
	}
	for q.Len() > 0 {
		if q.Pop() == nil {
			t.Fatal("final drain returned nil")
		}
	}
}

func TestReqQueueScan(t *testing.T) {
	var q ReqQueue
	rs := make([]*Request, 6)
	for i := range rs {
		rs[i] = &Request{ID: uint64(i)}
		q.Push(rs[i])
	}
	q.Pop()
	q.Pop()
	// Scan must visit exactly the live entries, in FIFO order,
	// skipping the popped prefix.
	var seen []uint64
	q.Scan(func(r *Request) { seen = append(seen, r.ID) })
	if len(seen) != 4 {
		t.Fatalf("Scan visited %d entries, want 4", len(seen))
	}
	for i, id := range seen {
		if id != uint64(i+2) {
			t.Fatalf("Scan order: got %v", seen)
		}
	}
	var empty ReqQueue
	empty.Scan(func(*Request) { t.Fatal("Scan visited an entry of an empty queue") })
}

func TestReqQueueCompactsDeadPrefix(t *testing.T) {
	// Never fully drained: one element always remains. The compaction
	// rule must still bound the backing array (the old q[1:] pattern
	// grows it by one forever).
	var q ReqQueue
	r := &Request{}
	q.Push(r)
	for i := 0; i < 100_000; i++ {
		q.Push(r)
		q.Pop()
	}
	if c := cap(q.q); c > 1024 {
		t.Fatalf("backing array grew to %d despite compaction", c)
	}
	if q.Len() != 1 {
		t.Fatalf("Len=%d, want 1", q.Len())
	}
}
