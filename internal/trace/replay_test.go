package trace

import (
	"bytes"
	"testing"
	"testing/quick"
)

func roundTrip(t *testing.T, ops []Op) *ReplayGenerator {
	t.Helper()
	var buf bytes.Buffer
	rec, err := NewRecorder(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range ops {
		if err := rec.Record(op); err != nil {
			t.Fatal(err)
		}
	}
	if err := rec.Flush(); err != nil {
		t.Fatal(err)
	}
	g, err := NewReplay(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestRecordReplayRoundTrip(t *testing.T) {
	ops := []Op{
		{NonMem: 3, Addr: 0x1000, Write: false},
		{NonMem: 0, Addr: 0xFFFF_FFFF_0040, Write: true},
		{NonMem: 120, Addr: 64, Write: false},
	}
	g := roundTrip(t, ops)
	if g.Len() != 3 {
		t.Fatalf("len = %d", g.Len())
	}
	for i, want := range ops {
		got := g.Next()
		if got != want {
			t.Fatalf("op %d: got %+v want %+v", i, got, want)
		}
	}
}

func TestReplayLoops(t *testing.T) {
	g := roundTrip(t, []Op{{NonMem: 1, Addr: 64}, {NonMem: 2, Addr: 128}})
	for i := 0; i < 5; i++ {
		g.Next()
	}
	if g.Loops != 2 {
		t.Fatalf("loops = %d after 5 draws of a 2-op trace", g.Loops)
	}
	if g.Next().Addr != 128 {
		t.Fatalf("loop position wrong")
	}
}

func TestReplayBadMagic(t *testing.T) {
	if _, err := NewReplay(bytes.NewReader([]byte("NOTATRACE...."))); err == nil {
		t.Fatalf("bad magic accepted")
	}
}

func TestReplayEmptyTrace(t *testing.T) {
	var buf bytes.Buffer
	rec, _ := NewRecorder(&buf)
	rec.Flush()
	if _, err := NewReplay(&buf); err == nil {
		t.Fatalf("empty trace accepted")
	}
}

func TestReplayTruncatedRecord(t *testing.T) {
	var buf bytes.Buffer
	rec, _ := NewRecorder(&buf)
	rec.Record(Op{NonMem: 1, Addr: 64})
	rec.Flush()
	data := buf.Bytes()[:buf.Len()-5] // chop mid-record
	if _, err := NewReplay(bytes.NewReader(data)); err == nil {
		t.Fatalf("truncated trace accepted")
	}
}

func TestRecorderSaturatesNonMem(t *testing.T) {
	g := roundTrip(t, []Op{{NonMem: 1 << 20, Addr: 64}})
	if got := g.Next().NonMem; got != 0xFFFF {
		t.Fatalf("NonMem = %d, want saturation at 65535", got)
	}
}

// Property: any synthetic stream survives a record/replay round trip
// verbatim (up to NonMem saturation, which synthetic gaps never hit).
func TestQuickRoundTripMatchesGenerator(t *testing.T) {
	f := func(seed uint64, n8 uint8) bool {
		n := int(n8%64) + 1
		p := Params{
			MemPerKilo: 100, WriteFrac: 0.3, StreamFrac: 0.3, HotFrac: 0.3,
			HotBytes: 1 << 12, WSBytes: 1 << 16, Seed: seed,
		}
		gen := NewGenerator(p, 1<<32)
		var ops []Op
		for i := 0; i < n; i++ {
			ops = append(ops, gen.Next())
		}
		var buf bytes.Buffer
		rec, err := NewRecorder(&buf)
		if err != nil {
			return false
		}
		for _, op := range ops {
			if rec.Record(op) != nil {
				return false
			}
		}
		if rec.Flush() != nil {
			return false
		}
		rg, err := NewReplay(&buf)
		if err != nil {
			return false
		}
		for _, want := range ops {
			if rg.Next() != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
