package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// This file implements trace recording and replay. The synthetic
// generators substitute for SPEC SimPoint traces (DESIGN.md §1);
// users who do have real address traces — from a binary-instrumented
// run, another simulator, or a recorded hetsim run — can replay them
// through the same Core model instead.
//
// The format is a dense little-endian binary stream of 12-byte
// records:
//
//	[0:2)  uint16 nonMem   — plain instructions before the reference
//	[2:3)  uint8  flags    — bit 0: write
//	[3:11) uint64 addr     — byte address
//	[11:12) reserved
//
// preceded by an 8-byte magic header. A Recorder writes it; a
// ReplayGenerator implements the same Next() contract as Generator
// (looping at EOF so streams are infinite, like the synthetic ones).

// recMagic identifies trace files ("HETTRC1\n").
var recMagic = [8]byte{'H', 'E', 'T', 'T', 'R', 'C', '1', '\n'}

const recSize = 12

// Recorder serializes a stream of Ops.
type Recorder struct {
	w     *bufio.Writer
	count uint64
}

// NewRecorder writes a trace header to w and returns a recorder.
func NewRecorder(w io.Writer) (*Recorder, error) {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(recMagic[:]); err != nil {
		return nil, fmt.Errorf("trace: write header: %w", err)
	}
	return &Recorder{w: bw}, nil
}

// Record appends one operation. NonMem saturates at 65535.
func (r *Recorder) Record(op Op) error {
	var rec [recSize]byte
	nm := op.NonMem
	if nm > 0xFFFF {
		nm = 0xFFFF
	}
	if nm < 0 {
		nm = 0
	}
	binary.LittleEndian.PutUint16(rec[0:2], uint16(nm))
	if op.Write {
		rec[2] = 1
	}
	binary.LittleEndian.PutUint64(rec[3:11], op.Addr)
	if _, err := r.w.Write(rec[:]); err != nil {
		return err
	}
	r.count++
	return nil
}

// Count returns the number of records written.
func (r *Recorder) Count() uint64 { return r.count }

// Flush completes the trace.
func (r *Recorder) Flush() error { return r.w.Flush() }

// ReplayGenerator replays a recorded trace. It satisfies the same
// Next() contract as Generator; the trace loops when exhausted so the
// stream is infinite. The whole trace is held in memory (records are
// 12 bytes; a hundred-million-reference trace is ~1.2 GB — slice
// windows before recording if that is too large).
type ReplayGenerator struct {
	ops  []Op
	next int
	// Loops counts how many times the trace wrapped.
	Loops int
}

// NewReplay parses a recorded trace from rd.
func NewReplay(rd io.Reader) (*ReplayGenerator, error) {
	br := bufio.NewReader(rd)
	var hdr [8]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("trace: read header: %w", err)
	}
	if hdr != recMagic {
		return nil, fmt.Errorf("trace: bad magic %q", hdr[:])
	}
	g := &ReplayGenerator{}
	var rec [recSize]byte
	for {
		_, err := io.ReadFull(br, rec[:])
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("trace: truncated record %d: %w", len(g.ops), err)
		}
		g.ops = append(g.ops, Op{
			NonMem: int(binary.LittleEndian.Uint16(rec[0:2])),
			Write:  rec[2]&1 != 0,
			Addr:   binary.LittleEndian.Uint64(rec[3:11]),
		})
	}
	if len(g.ops) == 0 {
		return nil, fmt.Errorf("trace: empty trace")
	}
	return g, nil
}

// Len returns the number of records in the trace.
func (g *ReplayGenerator) Len() int { return len(g.ops) }

// Next returns the next operation, looping at the end of the trace.
func (g *ReplayGenerator) Next() Op {
	op := g.ops[g.next]
	g.next++
	if g.next >= len(g.ops) {
		g.next = 0
		g.Loops++
	}
	return op
}
