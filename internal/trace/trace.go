// Package trace generates synthetic per-application CPU instruction
// and memory-reference streams.
//
// The paper drives its CPU cores with SimPoint regions of SPEC CPU
// 2006 applications. Those binaries and traces are proprietary, so
// this reproduction substitutes deterministic synthetic streams whose
// first-order memory behaviour — access rate, working-set size,
// hot-set reuse, streaming (row-buffer-friendly) fraction, and write
// fraction — is parameterized per application. The throttling
// proposal never inspects CPU instruction semantics; it interacts
// with the CPU workload only through LLC capacity and DRAM bandwidth
// contention, which these parameters fully determine.
//
// A stream is a sequence of Ops: "nonMem" plain instructions followed
// by one memory reference. All randomness is drawn from a fixed
// per-application seed, so every run of every experiment is exactly
// reproducible.
package trace

import "repro/internal/rng"

// Params characterizes one synthetic CPU application.
type Params struct {
	// Name is a human-readable label (e.g. "429.mcf-like").
	Name string

	// MemPerKilo is the number of memory references per 1000
	// instructions (load+store L1 accesses).
	MemPerKilo int

	// WriteFrac is the fraction of memory references that are stores.
	WriteFrac float64

	// StreamFrac is the fraction of references that walk sequentially
	// through the working set — row-buffer friendly, cache-unfriendly
	// once the set exceeds cache capacity.
	StreamFrac float64

	// HotFrac is the fraction of references that fall in the hot set
	// (cache-resident reuse).
	HotFrac float64

	// HotBytes is the hot-set size; choose it relative to cache
	// capacities to set hit rates.
	HotBytes uint64

	// WSBytes is the total working-set size; random references are
	// uniform over it.
	WSBytes uint64

	// Seed selects the deterministic random stream.
	Seed uint64
}

// Op is one step of the stream: NonMem plain instructions, then a
// memory reference at Addr.
type Op struct {
	NonMem int
	Addr   uint64
	Write  bool
}

// Source produces an instruction/memory stream; the synthetic
// Generator and the ReplayGenerator both implement it, so a core can
// run either.
type Source interface {
	Next() Op
}

// Generator produces the deterministic stream for one application
// instance. It is not safe for concurrent use; each core owns one.
type Generator struct {
	p       Params
	base    uint64
	rnd     *rng.RNG
	stream  uint64 // streaming cursor (byte offset into WS)
	gapBase int
}

// NewGenerator returns a generator for p with addresses offset by
// base (each core gets a disjoint region via mem.CPURegion).
func NewGenerator(p Params, base uint64) *Generator {
	if p.MemPerKilo <= 0 {
		p.MemPerKilo = 1
	}
	if p.WSBytes == 0 {
		p.WSBytes = 1 << 20
	}
	if p.HotBytes == 0 || p.HotBytes > p.WSBytes {
		p.HotBytes = p.WSBytes / 4
		if p.HotBytes == 0 {
			p.HotBytes = 64
		}
	}
	return &Generator{
		p:       p,
		base:    base,
		rnd:     rng.New(p.Seed),
		gapBase: 1000 / p.MemPerKilo,
	}
}

// Params returns the generator's parameters.
func (g *Generator) Params() Params { return g.p }

// Next returns the next operation. The stream is infinite.
func (g *Generator) Next() Op {
	// Jitter the instruction gap by +/- 50% around the mean so memory
	// references don't beat against pipeline width.
	gap := g.gapBase
	if gap > 1 {
		gap = gap/2 + g.rnd.Intn(gap)
	}

	var off uint64
	r := g.rnd.Float64()
	switch {
	case r < g.p.StreamFrac:
		off = g.stream
		g.stream += 64
		if g.stream >= g.p.WSBytes {
			g.stream = 0
		}
	case r < g.p.StreamFrac+g.p.HotFrac:
		off = g.rnd.Uint64n(g.p.HotBytes) &^ 63
	default:
		off = g.rnd.Uint64n(g.p.WSBytes) &^ 63
	}

	return Op{
		NonMem: gap,
		Addr:   g.base + off,
		Write:  g.rnd.Bool(g.p.WriteFrac),
	}
}

// Scale returns a copy of p with the working and hot sets divided by
// factor (minimum one line each). The run harness scales workloads
// and cache capacities together so that capacity pressure is
// preserved; see DESIGN.md §1.
func (p Params) Scale(factor int) Params {
	if factor <= 1 {
		return p
	}
	q := p
	q.WSBytes /= uint64(factor)
	if q.WSBytes < 64 {
		q.WSBytes = 64
	}
	q.HotBytes /= uint64(factor)
	if q.HotBytes < 64 {
		q.HotBytes = 64
	}
	return q
}
