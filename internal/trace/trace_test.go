package trace

import (
	"testing"
	"testing/quick"
)

func params(seed uint64) Params {
	return Params{
		Name:       "test",
		MemPerKilo: 100,
		WriteFrac:  0.3,
		StreamFrac: 0.4,
		HotFrac:    0.4,
		HotBytes:   1 << 12,
		WSBytes:    1 << 16,
		Seed:       seed,
	}
}

func TestDeterminism(t *testing.T) {
	g1 := NewGenerator(params(7), 0x1000)
	g2 := NewGenerator(params(7), 0x1000)
	for i := 0; i < 10000; i++ {
		a, b := g1.Next(), g2.Next()
		if a != b {
			t.Fatalf("streams diverge at %d: %+v vs %+v", i, a, b)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	g1 := NewGenerator(params(1), 0)
	g2 := NewGenerator(params(2), 0)
	same := 0
	for i := 0; i < 1000; i++ {
		if g1.Next() == g2.Next() {
			same++
		}
	}
	if same > 100 {
		t.Fatalf("different seeds produced %d/1000 identical ops", same)
	}
}

func TestAddressesWithinRegion(t *testing.T) {
	p := params(3)
	base := uint64(0xABC00000)
	g := NewGenerator(p, base)
	for i := 0; i < 10000; i++ {
		op := g.Next()
		if op.Addr < base || op.Addr >= base+p.WSBytes {
			t.Fatalf("address %#x outside [%#x, %#x)", op.Addr, base, base+p.WSBytes)
		}
		if op.Addr%64 != 0 {
			t.Fatalf("address %#x not line-aligned", op.Addr)
		}
	}
}

func TestMemRateMatchesParams(t *testing.T) {
	p := params(11)
	g := NewGenerator(p, 0)
	const n = 50000
	instr := 0
	for i := 0; i < n; i++ {
		op := g.Next()
		instr += op.NonMem + 1
	}
	perKilo := float64(n) / float64(instr) * 1000
	want := float64(p.MemPerKilo)
	if perKilo < want*0.8 || perKilo > want*1.2 {
		t.Fatalf("mem ops per kilo-instruction = %.1f, want ~%.0f", perKilo, want)
	}
}

func TestWriteFraction(t *testing.T) {
	p := params(13)
	g := NewGenerator(p, 0)
	writes := 0
	const n = 50000
	for i := 0; i < n; i++ {
		if g.Next().Write {
			writes++
		}
	}
	frac := float64(writes) / n
	if frac < p.WriteFrac-0.05 || frac > p.WriteFrac+0.05 {
		t.Fatalf("write fraction %.3f, want ~%.2f", frac, p.WriteFrac)
	}
}

func TestHotSetConcentration(t *testing.T) {
	p := params(17)
	p.StreamFrac = 0
	p.HotFrac = 0.9
	g := NewGenerator(p, 0)
	inHot := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if g.Next().Addr < p.HotBytes {
			inHot++
		}
	}
	// 90% hot plus the random references that also land below
	// HotBytes by chance.
	if float64(inHot)/n < 0.85 {
		t.Fatalf("only %.2f%% of references in hot set", 100*float64(inHot)/n)
	}
}

func TestScalePreservesFloors(t *testing.T) {
	p := params(1)
	q := p.Scale(1 << 30)
	if q.WSBytes != 64 || q.HotBytes != 64 {
		t.Fatalf("scale floor violated: %+v", q)
	}
	if r := p.Scale(1); r != p {
		t.Fatalf("Scale(1) changed params")
	}
}

// Property: generators normalize degenerate params rather than
// panicking, and always stay line-aligned in-region.
func TestQuickRobustParams(t *testing.T) {
	f := func(memPerKilo int16, ws, hot uint32, seed uint64) bool {
		p := Params{
			MemPerKilo: int(memPerKilo),
			WSBytes:    uint64(ws),
			HotBytes:   uint64(hot),
			StreamFrac: 0.3,
			HotFrac:    0.3,
			Seed:       seed,
		}
		g := NewGenerator(p, 1<<40)
		for i := 0; i < 200; i++ {
			op := g.Next()
			if op.Addr < 1<<40 || op.NonMem < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
