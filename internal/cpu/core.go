// Package cpu models the latency-optimized CPU cores of the
// heterogeneous CMP. Each core is trace-driven: it consumes a
// deterministic synthetic instruction/memory stream (internal/trace)
// through a retire-width + ROB-occupancy timing model that captures
// the property the paper's mechanism interacts with — how much LLC
// and DRAM latency a core can hide before it stalls.
//
// Timing model: up to Width instructions retire per cycle. A load
// that misses the private hierarchy becomes an outstanding miss; the
// core keeps retiring younger instructions until the ROB window past
// the oldest outstanding load fills, then stalls until that load's
// data returns. Stores retire immediately (write-allocate,
// write-back), consuming MSHR slots and bandwidth but not stalling
// the window. Private caches are L1D 32 KB/8-way (2-cycle) and a
// unified L2 256 KB/8-way, LRU, per Table I; L1I is not modeled (the
// paper's SPEC regions have negligible instruction-miss traffic).
package cpu

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/mem"
	"repro/internal/obs"
	"repro/internal/trace"
)

// Config describes one core and its private hierarchy.
type Config struct {
	ID    int // core index; determines mem.Source and address region
	Width int // retire width (4)
	ROB   int // reorder window in instructions (192)
	MSHRs int // outstanding line misses allowed (16)
	L1    cache.Config
	L2    cache.Config
	L2Hit uint64 // L1-miss/L2-hit load-to-use latency in CPU cycles
	WBBuf int    // write-back buffer entries (8)

	// Prefetch enables the L2 stride streamer (off in the paper
	// configurations; see Prefetcher).
	Prefetch bool
}

// DefaultConfig returns the paper's per-core configuration, with
// cache capacities divided by scale (>=1).
func DefaultConfig(id, scale int) Config {
	if scale < 1 {
		scale = 1
	}
	return Config{
		ID:    id,
		Width: 4,
		ROB:   192,
		MSHRs: 16,
		L1: cache.Config{
			Name: "L1D", SizeBytes: 32 * 1024 / scale, Ways: 8, Policy: cache.LRU,
		},
		L2: cache.Config{
			Name: "L2", SizeBytes: 256 * 1024 / scale, Ways: 8, Policy: cache.LRU,
		},
		L2Hit: 12,
		WBBuf: 8,
	}
}

// outstanding tracks one in-flight load miss.
type outstanding struct {
	line  uint64
	instr uint64 // retire index of the load
	local bool   // L2 hit being timed locally
	at    uint64 // release cycle for local fills
	write bool
}

// Core is one CPU core instance.
type Core struct {
	cfg  Config
	src  mem.Source
	gen  trace.Source
	l1   *cache.Cache
	l2   *cache.Cache
	mshr *cache.MSHR

	// Issue sends a request toward the LLC; it returns false when the
	// downstream (ring injection / LLC queue) cannot accept this
	// cycle. The system builder wires it.
	Issue func(r *mem.Request) bool

	cycle   uint64
	retired uint64

	cur        trace.Op
	haveOp     bool
	nonMemLeft int

	out          []outstanding
	nLocal       int             // entries in out with local == true
	wbq          mem.ReqQueue    // L2 dirty evictions awaiting issue
	pendingDirty map[uint64]bool // store misses to dirty on fill
	pf           *Prefetcher
	pfMSHR       *cache.MSHR     // separate budget for speculative fills
	pendingPf    map[uint64]bool // in-flight prefetch lines
	nextID       uint64
	pool         mem.Pool // free list for requests this core issues

	// Stats (cumulative; the harness snapshots around windows).
	StallCycles    uint64
	LoadMisses     uint64
	LLCRequests    uint64 // demand read requests injected toward the ring
	TotalMissLat   uint64
	CompletedMiss  uint64
	PrefetchIssued uint64 // speculative read requests injected
	FillsReceived  uint64 // read responses delivered back (OnFill)
}

// New builds a core reading from gen (a synthetic trace.Generator or
// a trace.ReplayGenerator).
func New(cfg Config, gen trace.Source) *Core {
	if cfg.Width <= 0 {
		cfg.Width = 4
	}
	if cfg.ROB <= 0 {
		cfg.ROB = 192
	}
	if cfg.MSHRs <= 0 {
		cfg.MSHRs = 16
	}
	if cfg.WBBuf <= 0 {
		cfg.WBBuf = 8
	}
	c := &Core{
		cfg:          cfg,
		src:          mem.Source(cfg.ID),
		gen:          gen,
		l1:           cache.New(cfg.L1),
		l2:           cache.New(cfg.L2),
		mshr:         cache.NewMSHR(cfg.MSHRs),
		pendingDirty: make(map[uint64]bool),
		pendingPf:    make(map[uint64]bool),
	}
	if cfg.Prefetch {
		c.pf = NewPrefetcher()
		c.pfMSHR = cache.NewMSHR(8)
	}
	return c
}

// Source returns the core's request source ID.
func (c *Core) Source() mem.Source { return c.src }

// SetSource swaps the core's instruction stream mid-run (the scenario
// engine's phase-transition lever). The swap takes effect at the next
// fetch: the in-flight op, ROB occupancy, outstanding misses, and the
// write-back queue all drain unchanged. Safe with outstanding skip
// debt — Skip never reads the stream, so a swap followed by debt
// materialization is indistinguishable from a swap under naive
// ticking.
func (c *Core) SetSource(gen trace.Source) { c.gen = gen }

// Recycle returns a dead request this core issued to its free list.
// The LLC calls it when it absorbs one of the core's write-backs.
func (c *Core) Recycle(r *mem.Request) { c.pool.Put(r) }

// Retired returns total retired instructions.
func (c *Core) Retired() uint64 { return c.retired }

// Cycles returns total simulated cycles.
func (c *Core) Cycles() uint64 { return c.cycle }

// IPC returns retired/cycles over the core's lifetime.
func (c *Core) IPC() float64 {
	if c.cycle == 0 {
		return 0
	}
	return float64(c.retired) / float64(c.cycle)
}

// L1 exposes the L1 cache for stats and back-invalidation tests.
func (c *Core) L1() *cache.Cache { return c.l1 }

// L2 exposes the L2 cache.
func (c *Core) L2() *cache.Cache { return c.l2 }

// Invalidate handles an LLC back-invalidation (the LLC is inclusive
// for CPU lines). A dirty private copy is pushed back to the memory
// system as a write.
func (c *Core) Invalidate(lineAddr uint64) {
	c.l1.Invalidate(lineAddr)
	if l, ok := c.l2.Invalidate(lineAddr); ok && l.Dirty {
		c.pushWB(lineAddr)
	}
}

// pushWB queues a write-back toward the LLC.
func (c *Core) pushWB(lineAddr uint64) {
	if c.wbq.Len() >= c.cfg.WBBuf {
		// Drop-oldest would lose data in a real machine; here the
		// buffer is sized so this only happens under pathological
		// back-pressure, and the write's timing contribution is the
		// part that matters. Count it and coalesce.
		if old := c.wbq.Pop(); old != nil {
			c.pool.Put(old)
		}
	}
	c.nextID++
	r := c.pool.Get()
	r.ID = uint64(c.cfg.ID)<<56 | c.nextID
	r.Addr = lineAddr
	r.Write = true
	r.Src = c.src
	r.Class = mem.ClassCPUData
	r.Born = c.cycle
	c.wbq.Push(r)
}

// OnFill delivers a completed LLC/DRAM response to the core.
func (c *Core) OnFill(r *mem.Request) {
	c.FillsReceived++
	line := r.LineAddr()
	if r.Prefetch {
		delete(c.pendingPf, line)
		c.pfMSHR.Release(line)
		// A demand access may have coalesced onto the in-flight
		// prefetch; satisfy it like a demand fill. Otherwise the
		// speculative line goes to L2 only.
		demand := false
		for i := range c.out {
			if c.out[i].line == line {
				demand = true
				break
			}
		}
		if demand || c.pendingDirty[line] {
			c.fillPrivate(line, c.pendingDirty[line])
			delete(c.pendingDirty, line)
			c.clearOutstanding(line)
			c.pool.Put(r)
			return
		}
		if c.l2.Probe(line) == nil {
			if v, ev := c.l2.Fill(line, false, c.src, mem.ClassCPUData); ev {
				vAddr := v.Tag << mem.LineShift
				c.l1.Invalidate(vAddr)
				if v.Dirty {
					c.pushWB(vAddr)
				}
			}
		}
		c.pool.Put(r)
		return
	}
	dirty := len(c.pendingDirty) > 0 && c.pendingDirty[line]
	c.fillPrivate(line, dirty)
	if dirty {
		delete(c.pendingDirty, line)
	}
	c.mshr.Release(line)
	c.TotalMissLat += c.cycle - r.Born
	c.CompletedMiss++
	c.clearOutstanding(line)
	c.pool.Put(r)
}

// fillPrivate installs a line in L2 and L1, generating write-backs
// for dirty victims.
func (c *Core) fillPrivate(line uint64, write bool) {
	if v, ev := c.l2.Fill(line, write, c.src, mem.ClassCPUData); ev {
		vAddr := v.Tag << mem.LineShift
		c.l1.Invalidate(vAddr) // keep L1 subset of L2
		if v.Dirty {
			c.pushWB(vAddr)
		}
	}
	if v, ev := c.l1.Fill(line, write, c.src, mem.ClassCPUData); ev && v.Dirty {
		// L1 dirty victim folds into L2.
		c.l2.Access(v.Tag<<mem.LineShift, true)
	}
}

func (c *Core) clearOutstanding(line uint64) {
	for i := 0; i < len(c.out); {
		if c.out[i].line == line {
			if c.out[i].local {
				c.nLocal--
			}
			c.out = append(c.out[:i], c.out[i+1:]...)
		} else {
			i++
		}
	}
}

// robBlocked reports whether the oldest outstanding load has pinned
// the window. Entries are appended in program order (instr is
// nondecreasing) and removal preserves order, so the first non-write
// entry is the oldest outstanding load and alone decides.
func (c *Core) robBlocked() bool {
	for i := range c.out {
		if c.out[i].write {
			continue
		}
		return c.retired-c.out[i].instr >= uint64(c.cfg.ROB)
	}
	return false
}

// Tick advances the core one CPU cycle.
func (c *Core) Tick() {
	c.cycle++

	// Release local (L2-hit) fills that are due. A release satisfies
	// every outstanding entry for the line, including loads that were
	// coalesced onto the in-flight local fill. nLocal tracks how many
	// local entries exist so the common no-local case skips the scan.
	for c.nLocal > 0 {
		released := false
		for i := range c.out {
			if c.out[i].local && c.out[i].at <= c.cycle {
				line := c.out[i].line
				c.mshr.Release(line)
				dirty := c.out[i].write ||
					(len(c.pendingDirty) > 0 && c.pendingDirty[line])
				c.fillPrivate(line, dirty)
				if dirty {
					delete(c.pendingDirty, line)
				}
				c.clearOutstanding(line)
				released = true
				break
			}
		}
		if !released {
			break
		}
	}

	// Drain the write-back queue opportunistically.
	for c.wbq.Len() > 0 && c.Issue != nil && c.Issue(c.wbq.Front()) {
		c.wbq.Pop()
	}

	if c.robBlocked() {
		c.StallCycles++
		return
	}

	budget := c.cfg.Width
	for budget > 0 {
		if !c.haveOp {
			c.cur = c.gen.Next()
			c.nonMemLeft = c.cur.NonMem
			c.haveOp = true
		}
		if c.nonMemLeft > 0 {
			n := budget
			if n > c.nonMemLeft {
				n = c.nonMemLeft
			}
			c.nonMemLeft -= n
			c.retired += uint64(n)
			budget -= n
			continue
		}
		// The group's memory reference.
		if !c.memAccess(c.cur.Addr, c.cur.Write) {
			c.StallCycles++
			return // structural stall: retry same op next cycle
		}
		c.haveOp = false
		c.retired++
		budget--
		if c.robBlocked() {
			return
		}
	}
}

// NextWake implements the engine's next-wake contract (DESIGN.md §9):
// the earliest future cycle at which the core can change state on its
// own. now+1 means busy. A core is only quiescent while ROB-blocked
// with an empty write-back queue: every other state retires or probes
// caches each cycle (cache probes move replacement state, so retry
// loops cannot be skipped). While blocked, the only self-induced wake
// is a local (L2-hit) fill coming due; remote fills arrive via OnFill
// and are bounded by the memory-side components' own wakes.
func (c *Core) NextWake(now uint64) uint64 {
	if c.wbq.Len() > 0 || !c.robBlocked() {
		return now + 1
	}
	wake := ^uint64(0)
	for i := range c.out {
		if c.out[i].local && c.out[i].at < wake {
			wake = c.out[i].at
		}
	}
	if wake <= now {
		return now + 1
	}
	return wake
}

// Skip advances a ROB-blocked core n cycles at once. Each elided tick
// would have released no fill, drained nothing, and taken the
// robBlocked early-return — exactly one stall cycle — so the bulk
// update replicates naive ticking bit-for-bit.
func (c *Core) Skip(n uint64) {
	c.cycle += n
	c.StallCycles += n
}

// memAccess performs one memory reference; it returns false when the
// reference cannot proceed this cycle (MSHR or downstream full).
func (c *Core) memAccess(addr uint64, write bool) bool {
	line := addr &^ (mem.LineSize - 1)
	if c.l1.Access(addr, write) {
		return true
	}
	// L1 miss. A demand access to a line with an in-flight prefetch
	// rides the prefetch (it satisfies outstanding entries on fill).
	if c.pf != nil && c.pendingPf[line] {
		if write {
			c.pendingDirty[line] = true
		} else {
			c.out = append(c.out, outstanding{line: line, instr: c.retired})
		}
		return true
	}
	// Coalesce with an in-flight demand miss if any.
	if c.mshr.Pending(line) {
		_, ok := c.mshr.Allocate(line)
		if ok {
			if write {
				c.pendingDirty[line] = true
			} else {
				c.out = append(c.out, outstanding{line: line, instr: c.retired})
			}
		}
		return ok
	}
	if c.mshr.Full() {
		return false
	}
	if c.l2.Access(addr, false) {
		// L2 hit: timed local fill.
		c.mshr.Allocate(line)
		c.out = append(c.out, outstanding{
			line: line, instr: c.retired, local: true,
			at: c.cycle + c.cfg.L2Hit, write: write,
		})
		c.nLocal++
		return true
	}
	// L2 miss: train the streamer and request from the shared memory
	// system.
	if c.pf != nil {
		c.issuePrefetches(c.pf.Observe(line))
	}
	c.LoadMisses++
	c.nextID++
	r := c.pool.Get()
	r.ID = uint64(c.cfg.ID)<<56 | c.nextID
	r.Addr = line
	// Write stays false: misses fetch the line; stores dirty it on fill.
	r.Src = c.src
	r.Class = mem.ClassCPUData
	r.Born = c.cycle
	if c.Issue == nil || !c.Issue(r) {
		c.pool.Put(r)
		return false
	}
	c.mshr.Allocate(line)
	c.LLCRequests++
	if write {
		c.pendingDirty[line] = true
	} else {
		c.out = append(c.out, outstanding{line: line, instr: c.retired})
	}
	return true
}

// issuePrefetches files speculative L2 fills for the streamer's
// targets on the prefetcher's own MSHR budget.
func (c *Core) issuePrefetches(targets []uint64) {
	for _, line := range targets {
		if c.pfMSHR.Full() {
			return
		}
		if c.l2.Probe(line) != nil || c.mshr.Pending(line) || c.pendingPf[line] {
			continue
		}
		c.nextID++
		r := c.pool.Get()
		r.ID = uint64(c.cfg.ID)<<56 | c.nextID
		r.Addr = line
		r.Src = c.src
		r.Class = mem.ClassCPUData
		r.Born = c.cycle
		r.Prefetch = true
		if c.Issue == nil || !c.Issue(r) {
			c.pool.Put(r)
			return
		}
		c.pfMSHR.Allocate(line)
		c.pendingPf[line] = true
		c.PrefetchIssued++
	}
}

// RegisterObs registers the core's per-window IPC and miss counters
// with the observability registry, prefixed "cpu<id>.".
func (c *Core) RegisterObs(reg *obs.Registry) {
	p := fmt.Sprintf("cpu%d.", c.cfg.ID)
	reg.Ratio(p+"ipc",
		func() uint64 { return c.retired },
		func() uint64 { return c.cycle })
	reg.Counter(p+"llc_reqs", func() uint64 { return c.LLCRequests })
	reg.Counter(p+"stalls", func() uint64 { return c.StallCycles })
	reg.Gauge(p+"mshr_inflight", func() float64 { return float64(c.mshr.Len()) })
}

// Prefetcher exposes the streamer (nil when disabled).
func (c *Core) Prefetcher() *Prefetcher { return c.pf }

// AvgMissLatency returns the mean shared-memory round trip in CPU
// cycles.
func (c *Core) AvgMissLatency() float64 {
	if c.CompletedMiss == 0 {
		return 0
	}
	return float64(c.TotalMissLat) / float64(c.CompletedMiss)
}
