package cpu

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/trace"
)

// perfectMemory immediately satisfies every request after a fixed
// latency, recording traffic.
type perfectMemory struct {
	latency  uint64
	inflight []*mem.Request
	cycle    uint64
	core     *Core
	reads    int
	writes   int
}

func (p *perfectMemory) issue(r *mem.Request) bool {
	if r.Write {
		p.writes++
		return true
	}
	p.reads++
	r.Born = p.cycle
	p.inflight = append(p.inflight, r)
	return true
}

func (p *perfectMemory) tick() {
	p.cycle++
	for i := 0; i < len(p.inflight); {
		r := p.inflight[i]
		if p.cycle >= r.Born+p.latency {
			r.Complete(p.cycle)
			p.core.OnFill(r)
			p.inflight[i] = p.inflight[len(p.inflight)-1]
			p.inflight = p.inflight[:len(p.inflight)-1]
		} else {
			i++
		}
	}
}

func runCore(t *testing.T, p trace.Params, latency uint64, cycles int) (*Core, *perfectMemory) {
	t.Helper()
	gen := trace.NewGenerator(p, mem.CPURegion(0))
	core := New(DefaultConfig(0, 16), gen)
	pm := &perfectMemory{latency: latency, core: core}
	core.Issue = pm.issue
	for i := 0; i < cycles; i++ {
		pm.tick()
		core.Tick()
	}
	return core, pm
}

func computeBound() trace.Params {
	return trace.Params{
		Name: "compute", MemPerKilo: 5, WriteFrac: 0.2,
		StreamFrac: 0, HotFrac: 1.0, HotBytes: 1 << 10, WSBytes: 1 << 12,
		Seed: 1,
	}
}

func memBound() trace.Params {
	return trace.Params{
		Name: "membound", MemPerKilo: 120, WriteFrac: 0.25,
		StreamFrac: 0.2, HotFrac: 0.1, HotBytes: 1 << 10, WSBytes: 1 << 24,
		Seed: 2,
	}
}

func TestComputeBoundNearWidthIPC(t *testing.T) {
	core, _ := runCore(t, computeBound(), 200, 20000)
	if ipc := core.IPC(); ipc < 3.0 {
		t.Fatalf("compute-bound IPC = %.2f, want near width 4", ipc)
	}
}

func TestMemBoundIPCSensitiveToLatency(t *testing.T) {
	fast, _ := runCore(t, memBound(), 50, 40000)
	slow, _ := runCore(t, memBound(), 400, 40000)
	if fast.IPC() <= slow.IPC() {
		t.Fatalf("IPC fast=%.3f slow=%.3f: latency insensitivity", fast.IPC(), slow.IPC())
	}
	if slow.IPC() > 0.8*fast.IPC() {
		t.Fatalf("mem-bound core barely affected by 8x latency: fast=%.3f slow=%.3f",
			fast.IPC(), slow.IPC())
	}
}

func TestCacheResidentSetIssuesFewRequests(t *testing.T) {
	core, pm := runCore(t, computeBound(), 100, 30000)
	if core.Retired() == 0 {
		t.Fatalf("no instructions retired")
	}
	mpki := float64(pm.reads) / float64(core.Retired()) * 1000
	if mpki > 2 {
		t.Fatalf("cache-resident workload LLC MPKI = %.2f, want <2", mpki)
	}
}

func TestLargeWSMissesALot(t *testing.T) {
	core, pm := runCore(t, memBound(), 100, 30000)
	mpki := float64(pm.reads) / float64(core.Retired()) * 1000
	if mpki < 10 {
		t.Fatalf("streaming workload LLC MPKI = %.2f, want >=10", mpki)
	}
}

func TestBackInvalidationDropsLine(t *testing.T) {
	gen := trace.NewGenerator(computeBound(), 0)
	core := New(DefaultConfig(0, 16), gen)
	core.Issue = func(*mem.Request) bool { return true }
	line := uint64(0x1000)
	core.fillPrivate(line, false)
	if core.L2().Probe(line) == nil {
		t.Fatalf("fill did not install")
	}
	core.Invalidate(line)
	if core.L2().Probe(line) != nil || core.L1().Probe(line) != nil {
		t.Fatalf("back-invalidation left line present")
	}
}

func TestBackInvalidationOfDirtyLineWritesBack(t *testing.T) {
	gen := trace.NewGenerator(computeBound(), 0)
	core := New(DefaultConfig(0, 16), gen)
	var wb []*mem.Request
	core.Issue = func(r *mem.Request) bool {
		if r.Write {
			wb = append(wb, r)
		}
		return true
	}
	line := uint64(0x2000)
	core.fillPrivate(line, true) // dirty
	core.Invalidate(line)
	core.Tick() // drain write-back queue
	if len(wb) != 1 || wb[0].Addr != line {
		t.Fatalf("dirty back-invalidation produced %d write-backs", len(wb))
	}
}

func TestStoreMissDirtiesLineOnFill(t *testing.T) {
	// Drive the core manually: a store to a cold line must mark the
	// line dirty once the fill returns.
	gen := trace.NewGenerator(computeBound(), 0)
	core := New(DefaultConfig(0, 16), gen)
	var captured *mem.Request
	core.Issue = func(r *mem.Request) bool { captured = r; return true }
	if core.memAccess(0x4000, true) != true {
		t.Fatalf("store miss did not issue")
	}
	if captured == nil || captured.Write {
		t.Fatalf("store miss should fetch with a read, got %+v", captured)
	}
	captured.Complete(10)
	core.OnFill(captured)
	l := core.L1().Probe(0x4000)
	if l == nil || !l.Dirty {
		t.Fatalf("filled store line not dirty: %+v", l)
	}
}

func TestStallsWhenIssueRejected(t *testing.T) {
	gen := trace.NewGenerator(memBound(), mem.CPURegion(0))
	core := New(DefaultConfig(0, 16), gen)
	core.Issue = func(*mem.Request) bool { return false }
	for i := 0; i < 5000; i++ {
		core.Tick()
	}
	// With no memory service at all the core must eventually wedge on
	// its first L2 miss: bounded retirement, lots of stall cycles.
	if core.StallCycles == 0 {
		t.Fatalf("no stall cycles with dead memory system")
	}
	ipc := core.IPC()
	if ipc > 3 {
		t.Fatalf("IPC %.2f with dead memory system", ipc)
	}
}

func TestMLPBoundedByMSHRs(t *testing.T) {
	gen := trace.NewGenerator(memBound(), mem.CPURegion(0))
	cfg := DefaultConfig(0, 16)
	cfg.MSHRs = 4
	core := New(cfg, gen)
	inflight := 0
	maxInflight := 0
	core.Issue = func(r *mem.Request) bool {
		if !r.Write {
			inflight++
			if inflight > maxInflight {
				maxInflight = inflight
			}
		}
		return true
	}
	for i := 0; i < 3000; i++ {
		core.Tick()
	}
	if maxInflight > 4 {
		t.Fatalf("outstanding misses %d exceed MSHR cap 4", maxInflight)
	}
}

func TestDeterministicExecution(t *testing.T) {
	run := func() uint64 {
		core, _ := runCore(t, memBound(), 150, 20000)
		return core.Retired()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("non-deterministic: %d vs %d", a, b)
	}
}

func TestWriteBackBufferOverflowCoalesces(t *testing.T) {
	gen := trace.NewGenerator(computeBound(), 0)
	cfg := DefaultConfig(0, 16)
	cfg.WBBuf = 2
	core := New(cfg, gen)
	core.Issue = func(*mem.Request) bool { return false } // jam the drain
	for i := uint64(0); i < 5; i++ {
		core.pushWB(0x1000 + i*64)
	}
	if core.wbq.Len() > 2 {
		t.Fatalf("write-back buffer grew past its cap: %d", core.wbq.Len())
	}
}

func TestAvgMissLatencyAccounting(t *testing.T) {
	gen := trace.NewGenerator(computeBound(), 0)
	core := New(DefaultConfig(0, 16), gen)
	var captured *mem.Request
	core.Issue = func(r *mem.Request) bool { captured = r; return true }
	if !core.memAccess(0x9000, false) {
		t.Fatalf("miss did not issue")
	}
	// Simulate 120 cycles of latency.
	for i := 0; i < 120; i++ {
		core.cycle++
	}
	captured.Complete(core.cycle)
	core.OnFill(captured)
	if core.AvgMissLatency() != 120 {
		t.Fatalf("avg miss latency = %v, want 120", core.AvgMissLatency())
	}
}
