package cpu

import "repro/internal/mem"

// Prefetcher is a region-based stride prefetcher attached to the L2
// miss stream (the classic streamer that commodity cores pair with
// their private L2s). It tracks the last address and stride per 4 KiB
// region; after two stride confirmations it issues prefetches
// Distance lines ahead. Prefetched fills install into L2 only, never
// block the core, and are accounted separately.
//
// It is disabled in the paper-reproduction configurations (the paper
// models no prefetching) and exists for the beyond-paper ablation
// study: prefetching both recovers some of the CPU's lost latency
// tolerance and adds DRAM pressure, shifting the throttling trade-off.
type Prefetcher struct {
	// Distance is how many lines ahead to prefetch (default 4).
	Distance int
	// Degree is how many prefetches to issue per trigger (default 2).
	Degree int

	entries [16]pfEntry

	// Stats.
	Issued    uint64
	Trained   uint64
	Conflicts uint64
}

type pfEntry struct {
	valid      bool
	region     uint64
	lastLine   uint64
	stride     int64
	confidence int
}

// NewPrefetcher returns a streamer with default parameters.
func NewPrefetcher() *Prefetcher {
	return &Prefetcher{Distance: 4, Degree: 2}
}

const pfRegionShift = 12 // 4 KiB training regions

// Observe trains on one demand L2 access (line address) and returns
// the line addresses to prefetch (nil when not confident).
func (p *Prefetcher) Observe(lineAddr uint64) []uint64 {
	region := lineAddr >> pfRegionShift
	line := lineAddr >> mem.LineShift
	idx := int(region % uint64(len(p.entries)))
	e := &p.entries[idx]

	if !e.valid || e.region != region {
		if e.valid && e.region != region {
			p.Conflicts++
		}
		*e = pfEntry{valid: true, region: region, lastLine: line}
		return nil
	}
	stride := int64(line) - int64(e.lastLine)
	if stride == 0 {
		return nil
	}
	if stride == e.stride {
		if e.confidence < 3 {
			e.confidence++
		}
	} else {
		e.stride = stride
		e.confidence = 1
	}
	e.lastLine = line
	p.Trained++
	if e.confidence < 2 {
		return nil
	}
	var out []uint64
	for d := 1; d <= p.Degree; d++ {
		target := int64(line) + e.stride*int64(p.Distance+d-1)
		if target <= 0 {
			continue
		}
		out = append(out, uint64(target)<<mem.LineShift)
	}
	p.Issued += uint64(len(out))
	return out
}
