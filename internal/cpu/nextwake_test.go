package cpu

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/trace"
)

func TestNextWakeFreshCoreIsBusy(t *testing.T) {
	gen := trace.NewGenerator(memBound(), mem.CPURegion(0))
	c := New(DefaultConfig(0, 16), gen)
	c.Issue = func(*mem.Request) bool { return true }
	if got := c.NextWake(0); got != 1 {
		t.Fatalf("fresh core NextWake = %d, want 1 (busy)", got)
	}
}

// TestSkipMatchesBlockedTicks drives twin cores (same seed, same
// memory) into a ROB-blocked state with all fills withheld, then
// advances one with naive Ticks and the other with Skip, and finally
// releases the fills to both: every observable counter must agree at
// the barrier and stay in lockstep afterward.
func TestSkipMatchesBlockedTicks(t *testing.T) {
	// Sparse misses: few enough memory references per ROB window that
	// the window pins on the oldest load (ROB 192, MSHRs 16) instead
	// of wedging on a full MSHR, which is a busy retry state.
	sparse := trace.Params{
		Name: "sparse", MemPerKilo: 15, WriteFrac: 0,
		StreamFrac: 0, HotFrac: 0, WSBytes: 1 << 26, Seed: 7,
	}
	mk := func() (*Core, *perfectMemory) {
		gen := trace.NewGenerator(sparse, mem.CPURegion(0))
		core := New(DefaultConfig(0, 16), gen)
		pm := &perfectMemory{latency: 1 << 40, core: core}
		core.Issue = pm.issue
		return core, pm
	}
	a, pa := mk()
	b, pb := mk()

	// Lockstep until the core reports a dead range (ROB-blocked with
	// no local fill due, i.e. NextWake beyond now+1).
	dead := false
	for i := 0; i < 200_000 && !dead; i++ {
		pa.tick()
		a.Tick()
		pb.tick()
		b.Tick()
		dead = a.NextWake(a.cycle) > a.cycle+1
	}
	if !dead {
		t.Fatal("core never reached a skippable blocked state")
	}

	// Bound the jump by the reported wake, exactly as the engine does.
	n := uint64(500)
	if w := a.NextWake(a.cycle); w != ^uint64(0) && w-1-a.cycle < n {
		n = w - 1 - a.cycle
	}
	for i := uint64(0); i < n; i++ {
		a.Tick() // memories frozen: no external fills land
	}
	b.Skip(n)

	check := func(stage string) {
		t.Helper()
		if a.cycle != b.cycle || a.StallCycles != b.StallCycles ||
			a.Retired() != b.Retired() || a.FillsReceived != b.FillsReceived {
			t.Fatalf("%s: ticked cycle=%d stall=%d ret=%d fills=%d vs skipped cycle=%d stall=%d ret=%d fills=%d",
				stage, a.cycle, a.StallCycles, a.Retired(), a.FillsReceived,
				b.cycle, b.StallCycles, b.Retired(), b.FillsReceived)
		}
	}
	check("after jump")

	// Release the withheld fills to both and keep running: the
	// skipped core must stay bit-for-bit with the ticked one.
	release := func(c *Core, p *perfectMemory) {
		for _, r := range p.inflight {
			r.Complete(p.cycle)
			c.OnFill(r)
		}
		p.inflight = nil
		p.latency = 50
	}
	release(a, pa)
	release(b, pb)
	for i := 0; i < 20_000; i++ {
		pa.tick()
		a.Tick()
		pb.tick()
		b.Tick()
	}
	check("after resume")
	if a.Retired() == 0 {
		t.Fatal("cores retired nothing after fills released")
	}
}
