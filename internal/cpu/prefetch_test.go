package cpu

import (
	"testing"
	"testing/quick"

	"repro/internal/mem"
	"repro/internal/trace"
)

func TestPrefetcherDetectsUnitStride(t *testing.T) {
	p := NewPrefetcher()
	var got []uint64
	for i := uint64(0); i < 6; i++ {
		got = p.Observe(i * mem.LineSize)
	}
	if len(got) == 0 {
		t.Fatalf("no prefetches after a clean unit stride")
	}
	// Targets must be ahead of the trained address, stride 1.
	for _, a := range got {
		if a <= 5*mem.LineSize {
			t.Fatalf("prefetch target %#x not ahead", a)
		}
		if a%mem.LineSize != 0 {
			t.Fatalf("unaligned target %#x", a)
		}
	}
}

func TestPrefetcherDetectsLargeStride(t *testing.T) {
	p := NewPrefetcher()
	var got []uint64
	for i := uint64(0); i < 6; i++ {
		got = p.Observe(i * 3 * mem.LineSize)
	}
	if len(got) == 0 {
		t.Fatalf("no prefetches on stride-3 stream")
	}
	if (got[0]-15*mem.LineSize)%(3*mem.LineSize) != 0 {
		t.Fatalf("stride not honored: %#x", got[0])
	}
}

func TestPrefetcherIgnoresRandom(t *testing.T) {
	p := NewPrefetcher()
	addrs := []uint64{0, 7, 3, 9, 1, 12, 5, 2}
	issued := 0
	for _, a := range addrs {
		issued += len(p.Observe(a * mem.LineSize))
	}
	if issued > 2 {
		t.Fatalf("random stream produced %d prefetches", issued)
	}
}

func TestPrefetcherRegionConflictRetrains(t *testing.T) {
	p := NewPrefetcher()
	// Two regions mapping to the same table entry (16 entries, 4 KiB
	// regions): region 0 and region 16.
	for i := uint64(0); i < 4; i++ {
		p.Observe(i * mem.LineSize)
	}
	p.Observe(16 << pfRegionShift)
	if p.Conflicts == 0 {
		t.Fatalf("conflict not detected")
	}
}

// Property: prefetch targets are always line-aligned and finite in
// count (<= Degree per Observe).
func TestQuickPrefetcherBounds(t *testing.T) {
	f := func(lines []uint16) bool {
		p := NewPrefetcher()
		for _, l := range lines {
			out := p.Observe(uint64(l) * mem.LineSize)
			if len(out) > p.Degree {
				return false
			}
			for _, a := range out {
				if a%mem.LineSize != 0 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestCorePrefetchReducesStreamStalls(t *testing.T) {
	// A pure streaming workload with a fixed-latency memory: the
	// streamer should raise IPC by hiding the miss latency.
	params := trace.Params{
		Name: "stream", MemPerKilo: 200, WriteFrac: 0,
		StreamFrac: 1.0, HotFrac: 0, HotBytes: 64, WSBytes: 1 << 22,
		Seed: 3,
	}
	run := func(pf bool) float64 {
		gen := trace.NewGenerator(params, mem.CPURegion(0))
		cfg := DefaultConfig(0, 16)
		cfg.Prefetch = pf
		core := New(cfg, gen)
		pm := &perfectMemory{latency: 150, core: core}
		core.Issue = pm.issue
		for i := 0; i < 60000; i++ {
			pm.tick()
			core.Tick()
		}
		return core.IPC()
	}
	base, pre := run(false), run(true)
	if pre <= base*1.1 {
		t.Fatalf("prefetching did not help a pure stream: %.3f -> %.3f", base, pre)
	}
}

func TestCorePrefetchFillsL2Only(t *testing.T) {
	gen := trace.NewGenerator(computeBound(), mem.CPURegion(0))
	cfg := DefaultConfig(0, 16)
	cfg.Prefetch = true
	core := New(cfg, gen)
	core.Issue = func(*mem.Request) bool { return true }
	r := &mem.Request{Addr: 0xABCD00, Src: core.Source(), Prefetch: true}
	core.mshr.Allocate(r.LineAddr())
	core.pendingPf[r.LineAddr()] = true
	r.Complete(1)
	core.OnFill(r)
	if core.L2().Probe(0xABCD00) == nil {
		t.Fatalf("prefetch did not fill L2")
	}
	if core.L1().Probe(0xABCD00) != nil {
		t.Fatalf("prefetch polluted L1")
	}
	if core.CompletedMiss != 0 {
		t.Fatalf("prefetch counted as a demand miss")
	}
}
