package stats

import "sort"

// FrameStats summarizes a run's frame-time distribution — the metrics
// a QoS mechanism is judged by beyond the mean FPS: tail latency
// (p95/p99 frame times) and jank (frames that blow past the budget).
// The paper verifies "each frame within the sequence meets the target
// frame rate" (§VI); BelowTarget makes that check explicit.
type FrameStats struct {
	Frames int

	// Cycle statistics over per-frame durations.
	MeanCycles float64
	P50Cycles  float64
	P95Cycles  float64
	P99Cycles  float64
	MinCycles  uint64
	MaxCycles  uint64

	// BelowTarget counts frames slower than the target frame time
	// (only meaningful when a target was supplied).
	BelowTarget int

	// Jank counts frames slower than 1.5x the median — visible
	// stutter even when the mean looks fine.
	Jank int
}

// AnalyzeFrames computes FrameStats from per-frame GPU cycle counts.
// targetCycles is the frame budget at the QoS target (0 = no target).
func AnalyzeFrames(frameCycles []uint64, targetCycles float64) FrameStats {
	fs := FrameStats{Frames: len(frameCycles)}
	if len(frameCycles) == 0 {
		return fs
	}
	sorted := make([]uint64, len(frameCycles))
	copy(sorted, frameCycles)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })

	var sum uint64
	for _, c := range sorted {
		sum += c
	}
	fs.MeanCycles = float64(sum) / float64(len(sorted))
	fs.MinCycles = sorted[0]
	fs.MaxCycles = sorted[len(sorted)-1]
	fs.P50Cycles = percentile(sorted, 0.50)
	fs.P95Cycles = percentile(sorted, 0.95)
	fs.P99Cycles = percentile(sorted, 0.99)

	jankLine := 1.5 * fs.P50Cycles
	for _, c := range frameCycles {
		if float64(c) > jankLine {
			fs.Jank++
		}
		if targetCycles > 0 && float64(c) > targetCycles {
			fs.BelowTarget++
		}
	}
	return fs
}

// percentile returns the p-quantile (0..1) of an ascending slice by
// nearest-rank.
func percentile(sorted []uint64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(p*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return float64(sorted[idx])
}

// FPSAt converts a frame-cycle figure into de-scaled FPS (see FPS).
func (fs FrameStats) FPSAt(cycles float64, gpuFreqHz float64, scale int) float64 {
	return FPS(cycles, gpuFreqHz, scale)
}
