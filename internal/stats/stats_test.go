package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestWeightedSpeedup(t *testing.T) {
	got := WeightedSpeedup([]float64{1, 2}, []float64{2, 2})
	if got != 1.5 {
		t.Fatalf("got %v, want 1.5", got)
	}
}

func TestWeightedSpeedupMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("no panic on mismatched lengths")
		}
	}()
	WeightedSpeedup([]float64{1}, []float64{1, 2})
}

func TestGMean(t *testing.T) {
	got := GMean([]float64{1, 4})
	if math.Abs(got-2) > 1e-12 {
		t.Fatalf("got %v, want 2", got)
	}
	if GMean(nil) != 0 {
		t.Fatalf("empty gmean should be 0")
	}
	// Non-positive entries are skipped, not poisoning the result.
	if g := GMean([]float64{0, 2, -1, 8}); math.Abs(g-4) > 1e-12 {
		t.Fatalf("got %v, want 4", g)
	}
}

func TestMean(t *testing.T) {
	if Mean([]float64{1, 2, 3}) != 2 {
		t.Fatalf("mean wrong")
	}
	if Mean(nil) != 0 {
		t.Fatalf("empty mean should be 0")
	}
}

func TestFPSDescaling(t *testing.T) {
	// A frame of 1e6 GPU cycles at 1 GHz and scale 32 represents a
	// full-size frame of 3.2e7 cycles -> 31.25 FPS.
	got := FPS(1e6, 1e9, 32)
	if math.Abs(got-31.25) > 1e-9 {
		t.Fatalf("got %v, want 31.25", got)
	}
	if FPS(0, 1e9, 32) != 0 {
		t.Fatalf("zero cycles should give 0 FPS")
	}
}

func TestBandwidthGBps(t *testing.T) {
	// 4e9 bytes over 4e9 cycles at 4 GHz = 4 GB/s.
	got := BandwidthGBps(4e9, 4e9, 4e9)
	if math.Abs(got-4) > 1e-9 {
		t.Fatalf("got %v, want 4", got)
	}
	if BandwidthGBps(100, 0, 4e9) != 0 {
		t.Fatalf("zero cycles should give 0")
	}
}

func TestCombined(t *testing.T) {
	if got := Combined(2, 0.5); math.Abs(got-1) > 1e-12 {
		t.Fatalf("got %v, want 1", got)
	}
	if Combined(0, 1) != 0 || Combined(1, -1) != 0 {
		t.Fatalf("non-positive inputs should give 0")
	}
}

// Property: GMean lies between min and max of positive inputs.
func TestQuickGMeanBounds(t *testing.T) {
	f := func(raw []uint16) bool {
		var xs []float64
		for _, r := range raw {
			xs = append(xs, float64(r)+1)
		}
		if len(xs) == 0 {
			return true
		}
		g := GMean(xs)
		min, max := xs[0], xs[0]
		for _, x := range xs {
			if x < min {
				min = x
			}
			if x > max {
				max = x
			}
		}
		return g >= min-1e-9 && g <= max+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
