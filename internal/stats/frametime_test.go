package stats

import (
	"testing"
	"testing/quick"
)

func TestAnalyzeFramesBasics(t *testing.T) {
	fc := []uint64{100, 110, 90, 105, 95, 100, 300} // one jank frame
	fs := AnalyzeFrames(fc, 0)
	if fs.Frames != 7 {
		t.Fatalf("frames = %d", fs.Frames)
	}
	if fs.MinCycles != 90 || fs.MaxCycles != 300 {
		t.Fatalf("min/max = %d/%d", fs.MinCycles, fs.MaxCycles)
	}
	if fs.P50Cycles != 100 {
		t.Fatalf("p50 = %v", fs.P50Cycles)
	}
	if fs.Jank != 1 {
		t.Fatalf("jank = %d, want 1 (the 300-cycle frame)", fs.Jank)
	}
	if fs.P99Cycles != 300 {
		t.Fatalf("p99 = %v", fs.P99Cycles)
	}
}

func TestAnalyzeFramesTarget(t *testing.T) {
	fc := []uint64{100, 200, 150, 90}
	fs := AnalyzeFrames(fc, 120)
	if fs.BelowTarget != 2 {
		t.Fatalf("below target = %d, want 2 (200 and 150)", fs.BelowTarget)
	}
}

func TestAnalyzeFramesEmpty(t *testing.T) {
	fs := AnalyzeFrames(nil, 100)
	if fs.Frames != 0 || fs.MeanCycles != 0 || fs.Jank != 0 {
		t.Fatalf("empty stats not zero: %+v", fs)
	}
}

func TestAnalyzeFramesSingle(t *testing.T) {
	fs := AnalyzeFrames([]uint64{42}, 0)
	if fs.P50Cycles != 42 || fs.P99Cycles != 42 || fs.MeanCycles != 42 {
		t.Fatalf("%+v", fs)
	}
}

// Property: percentiles are monotone (p50 <= p95 <= p99 <= max) and
// bounded by min/max, for any frame sequence.
func TestQuickFrameStatsMonotone(t *testing.T) {
	f := func(raw []uint32) bool {
		if len(raw) == 0 {
			return true
		}
		fc := make([]uint64, len(raw))
		for i, r := range raw {
			fc[i] = uint64(r) + 1
		}
		fs := AnalyzeFrames(fc, 0)
		return fs.P50Cycles <= fs.P95Cycles &&
			fs.P95Cycles <= fs.P99Cycles &&
			fs.P99Cycles <= float64(fs.MaxCycles) &&
			float64(fs.MinCycles) <= fs.P50Cycles &&
			fs.MeanCycles >= float64(fs.MinCycles) &&
			fs.MeanCycles <= float64(fs.MaxCycles)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
