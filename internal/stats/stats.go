// Package stats provides the performance metrics the paper reports:
// weighted speedup for multi-programmed CPU mixes, frames per second
// for the GPU, geometric means across workloads, and DRAM bandwidth
// accounting.
package stats

import "math"

// WeightedSpeedup returns the weighted speedup of a multi-programmed
// mix: sum over applications of IPC_shared/IPC_alone. The paper
// reports it normalized to the baseline configuration's weighted
// speedup.
func WeightedSpeedup(ipcShared, ipcAlone []float64) float64 {
	if len(ipcShared) != len(ipcAlone) {
		panic("stats: mismatched IPC vectors")
	}
	var s float64
	for i := range ipcShared {
		if ipcAlone[i] > 0 {
			s += ipcShared[i] / ipcAlone[i]
		}
	}
	return s
}

// GMean returns the geometric mean of xs (skipping non-positive
// entries, which would otherwise poison the log).
func GMean(xs []float64) float64 {
	var sum float64
	n := 0
	for _, x := range xs {
		if x > 0 {
			sum += math.Log(x)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(sum / float64(n))
}

// Mean returns the arithmetic mean of xs (0 when empty).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// FPS converts mean GPU cycles per frame into frames per second,
// de-scaling the workload: a frame whose scaled work took C cycles
// at gpuFreqHz represents a full-size frame of C*scale cycles.
func FPS(meanFrameCycles float64, gpuFreqHz float64, scale int) float64 {
	if meanFrameCycles <= 0 {
		return 0
	}
	if scale < 1 {
		scale = 1
	}
	return gpuFreqHz / (meanFrameCycles * float64(scale))
}

// BandwidthGBps converts bytes transferred over a cycle interval at
// cpuFreqHz into GB/s.
func BandwidthGBps(bytes uint64, cycles uint64, cpuFreqHz float64) float64 {
	if cycles == 0 {
		return 0
	}
	seconds := float64(cycles) / cpuFreqHz
	return float64(bytes) / seconds / 1e9
}

// Combined returns the equal-weight CPU+GPU performance metric of
// Fig. 14: the geometric mean of the CPU speedup and the GPU speedup
// over baseline.
func Combined(cpuSpeedup, gpuSpeedup float64) float64 {
	if cpuSpeedup <= 0 || gpuSpeedup <= 0 {
		return 0
	}
	return math.Sqrt(cpuSpeedup * gpuSpeedup)
}
