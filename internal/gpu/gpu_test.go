package gpu

import (
	"testing"

	"repro/internal/mem"
)

// stubMem services GPU LLC requests after a fixed latency.
type stubMem struct {
	latency  uint64
	cycle    uint64
	inflight []*mem.Request
	gpu      *GPU
	reads    int
	writes   int
	byClass  map[mem.Class]int
}

func newStub(lat uint64) *stubMem {
	return &stubMem{latency: lat, byClass: map[mem.Class]int{}}
}

func (s *stubMem) issue(r *mem.Request) bool {
	s.byClass[r.Class]++
	if r.Write {
		s.writes++
		return true
	}
	s.reads++
	r.Born = s.cycle
	s.inflight = append(s.inflight, r)
	return true
}

func (s *stubMem) tick() {
	s.cycle++
	for i := 0; i < len(s.inflight); {
		r := s.inflight[i]
		if s.cycle >= r.Born+s.latency {
			r.Complete(s.cycle)
			s.gpu.OnFill(r)
			s.inflight[i] = s.inflight[len(s.inflight)-1]
			s.inflight = s.inflight[:len(s.inflight)-1]
		} else {
			i++
		}
	}
}

func testApp() *AppModel {
	return &AppModel{
		Name:               "testgame",
		API:                "DX",
		Frames:             4,
		Tiles:              16,
		RTPs:               3,
		TexPerTile:         4,
		DepthPerTile:       4,
		ColorPerTile:       4,
		VertexPerRTP:       8,
		TexFootprint:       1 << 16,
		TexHotBytes:        1 << 12,
		TexHotFrac:         0.7,
		ShaderCyclesPerRTP: 500,
		Seed:               99,
	}
}

// observer records pipeline events.
type recorder struct {
	rtps   []RTPInfo
	frames []FrameInfo
}

func (r *recorder) RTPComplete(i RTPInfo)     { r.rtps = append(r.rtps, i) }
func (r *recorder) FrameComplete(f FrameInfo) { r.frames = append(r.frames, f) }

func runGPU(app *AppModel, lat uint64, cycles int) (*GPU, *stubMem, *recorder) {
	g := New(DefaultConfig(64), app)
	s := newStub(lat)
	s.gpu = g
	rec := &recorder{}
	g.Issue = s.issue
	g.Observer = rec
	for i := 0; i < cycles; i++ {
		s.tick()
		g.Tick(s.cycle)
	}
	return g, s, rec
}

func TestFramesComplete(t *testing.T) {
	g, _, rec := runGPU(testApp(), 30, 60000)
	if g.FramesDone < 3 {
		t.Fatalf("only %d frames done", g.FramesDone)
	}
	if len(rec.frames) != g.FramesDone {
		t.Fatalf("observer saw %d frames, GPU %d", len(rec.frames), g.FramesDone)
	}
	if len(rec.rtps) != g.FramesDone*3+len(rec.rtps)%3 {
		// Every completed frame contributed exactly RTPs observations.
		if len(rec.rtps)/3 < g.FramesDone {
			t.Fatalf("rtps %d for %d frames", len(rec.rtps), g.FramesDone)
		}
	}
}

func TestRTPStatsPopulated(t *testing.T) {
	_, _, rec := runGPU(testApp(), 30, 60000)
	if len(rec.rtps) == 0 {
		t.Fatalf("no RTPs observed")
	}
	for _, r := range rec.rtps {
		if r.Cycles == 0 || r.Tiles != 16 || r.Updates == 0 {
			t.Fatalf("bad RTP info: %+v", r)
		}
	}
	// At least some RTPs must reach the LLC.
	llc := uint64(0)
	for _, r := range rec.rtps {
		llc += r.LLCAccesses
	}
	if llc == 0 {
		t.Fatalf("no LLC accesses recorded")
	}
}

func TestSlowerMemorySlowsFrames(t *testing.T) {
	fastApp, slowApp := testApp(), testApp()
	fast, _, _ := runGPU(fastApp, 20, 80000)
	slow, _, _ := runGPU(slowApp, 400, 80000)
	if fast.FramesDone <= slow.FramesDone {
		t.Fatalf("frames fast=%d slow=%d", fast.FramesDone, slow.FramesDone)
	}
}

func TestClosedGateStallsGPU(t *testing.T) {
	app := testApp()
	g := New(DefaultConfig(64), app)
	s := newStub(20)
	s.gpu = g
	g.Issue = s.issue
	g.Gate = deniedGate{}
	for i := 0; i < 20000; i++ {
		s.tick()
		g.Tick(s.cycle)
	}
	if g.FramesDone != 0 {
		t.Fatalf("frames completed with a fully closed gate: %d", g.FramesDone)
	}
	if g.IssuedLLC != 0 {
		t.Fatalf("LLC accesses slipped past a closed gate: %d", g.IssuedLLC)
	}
}

type deniedGate struct{}

func (deniedGate) Allow(uint64) bool { return false }
func (deniedGate) OnIssue(uint64)    {}

// rateGate admits one access every n GPU cycles, like the ATU window.
type rateGate struct {
	n    uint64
	next uint64
}

func (r *rateGate) Allow(c uint64) bool { return c >= r.next }
func (r *rateGate) OnIssue(c uint64)    { r.next = c + r.n }

func TestRateGateSlowsButDoesNotStop(t *testing.T) {
	app := testApp()
	g := New(DefaultConfig(64), app)
	s := newStub(20)
	s.gpu = g
	g.Issue = s.issue
	g.Gate = &rateGate{n: 8}
	for i := 0; i < 120000; i++ {
		s.tick()
		g.Tick(s.cycle)
	}
	if g.FramesDone == 0 {
		t.Fatalf("no frames with a rate gate")
	}
	base, _, _ := runGPU(testApp(), 20, 120000)
	if g.FramesDone >= base.FramesDone {
		t.Fatalf("gated GPU (%d frames) not slower than baseline (%d)",
			g.FramesDone, base.FramesDone)
	}
}

func TestColorTrafficProducesWritebacks(t *testing.T) {
	app := testApp()
	app.ColorPerTile = 16
	app.Tiles = 64 // overflow the scaled color cache
	_, s, _ := runGPU(app, 20, 120000)
	if s.writes == 0 {
		t.Fatalf("no GPU write-backs reached the LLC")
	}
	if s.byClass[mem.ClassColor] == 0 {
		t.Fatalf("no color-class traffic: %v", s.byClass)
	}
}

func TestTextureHitRateRespondsToFootprint(t *testing.T) {
	small := testApp()
	small.TexFootprint = 1 << 10
	small.TexHotBytes = 1 << 9
	gs, ss, _ := runGPU(small, 20, 60000)
	big := testApp()
	big.TexFootprint = 1 << 22
	big.TexHotBytes = 1 << 21
	big.TexHotFrac = 0.1
	gb, sb, _ := runGPU(big, 20, 60000)
	smallPerFrame := float64(ss.byClass[mem.ClassTexture]) / float64(gs.FramesDone+1)
	bigPerFrame := float64(sb.byClass[mem.ClassTexture]) / float64(gb.FramesDone+1)
	if bigPerFrame <= smallPerFrame {
		t.Fatalf("texture traffic small=%.1f big=%.1f per frame", smallPerFrame, bigPerFrame)
	}
}

func TestDeterministicFrames(t *testing.T) {
	a, _, _ := runGPU(testApp(), 35, 50000)
	b, _, _ := runGPU(testApp(), 35, 50000)
	if a.FramesDone != b.FramesDone {
		t.Fatalf("non-deterministic frames: %d vs %d", a.FramesDone, b.FramesDone)
	}
	for i := range a.FrameCycles {
		if a.FrameCycles[i] != b.FrameCycles[i] {
			t.Fatalf("frame %d cycles differ", i)
		}
	}
}

func TestWorkJitterVariesFrames(t *testing.T) {
	app := testApp()
	app.WorkJitter = 0.3
	g, _, _ := runGPU(app, 20, 120000)
	if g.FramesDone < 4 {
		t.Skipf("not enough frames (%d)", g.FramesDone)
	}
	allSame := true
	for i := 1; i < len(g.FrameCycles); i++ {
		if g.FrameCycles[i] != g.FrameCycles[0] {
			allSame = false
		}
	}
	if allSame {
		t.Fatalf("30%% jitter produced identical frame times")
	}
}

func TestSceneChangeShiftsWork(t *testing.T) {
	app := testApp()
	app.SceneChangeEvery = 2
	app.SceneChangeMag = 0.5
	g, _, _ := runGPU(app, 20, 150000)
	if g.FramesDone < 5 {
		t.Skipf("not enough frames (%d)", g.FramesDone)
	}
	// Some pair of frames should differ noticeably.
	var min, max uint64 = ^uint64(0), 0
	for _, c := range g.FrameCycles {
		if c < min {
			min = c
		}
		if c > max {
			max = c
		}
	}
	if float64(max-min) < 0.1*float64(max) {
		t.Fatalf("scene changes did not vary frame work: min=%d max=%d", min, max)
	}
}

func TestOnFillUnknownLineHarmless(t *testing.T) {
	g := New(DefaultConfig(64), testApp())
	r := &mem.Request{Addr: 0x123400, Src: mem.SourceGPU, Class: mem.ClassTexture}
	r.Complete(1)
	g.OnFill(r) // no pendingRead entry: must not panic
	if g.Caches()["texL2"].Probe(0x123400) == nil {
		t.Fatalf("fallback class routing failed")
	}
}

func TestOutstandingLLCTracksMSHR(t *testing.T) {
	app := testApp()
	g := New(DefaultConfig(64), app)
	issued := []*mem.Request{}
	g.Issue = func(r *mem.Request) bool {
		if !r.Write {
			issued = append(issued, r)
		}
		return true
	}
	for i := 0; i < 200 && g.OutstandingLLC() == 0; i++ {
		g.Tick(uint64(i))
	}
	if g.OutstandingLLC() == 0 {
		t.Fatalf("no outstanding misses after 200 cycles")
	}
	// Drain the memory-interface buffer so every allocated MSHR entry
	// has a matching issued request, then complete them all.
	for i := 200; i < 1000 && len(issued) < g.OutstandingLLC(); i++ {
		g.Tick(uint64(i))
	}
	for _, r := range issued {
		r.Complete(1000)
		g.OnFill(r)
	}
	if g.OutstandingLLC() != 0 {
		t.Fatalf("outstanding misses leaked: %d", g.OutstandingLLC())
	}
}
