package gpu

import (
	"testing"
	"testing/quick"

	"repro/internal/mem"
	"repro/internal/rng"
)

func streamApp() *AppModel {
	return &AppModel{
		Name: "s", Frames: 2, Tiles: 8, RTPs: 2,
		TexPerTile: 3, DepthPerTile: 2, ColorPerTile: 2, VertexPerRTP: 4,
		TexFootprint: 1 << 14, TexHotBytes: 1 << 12, TexHotFrac: 0.5,
		ShaderCyclesPerRTP: 10, Seed: 5,
	}
}

func drainStream(s *stream) []access {
	var out []access
	for {
		a, ok := s.next()
		if !ok {
			return out
		}
		out = append(out, a)
	}
}

func TestStreamEmitsExpectedCounts(t *testing.T) {
	app := streamApp()
	s := newStream(app, rng.New(1), 0, 1.0)
	got := drainStream(s)
	want := s.total()
	if len(got) != want {
		t.Fatalf("emitted %d accesses, total() said %d", len(got), want)
	}
	counts := map[mem.Class]int{}
	for _, a := range got {
		counts[a.class]++
	}
	if counts[mem.ClassVertex] != 4 {
		t.Fatalf("vertex count %d", counts[mem.ClassVertex])
	}
	if counts[mem.ClassTexture] != 8*3 || counts[mem.ClassDepth] != 8*2 || counts[mem.ClassColor] != 8*2 {
		t.Fatalf("counts: %v", counts)
	}
}

func TestStreamAddressesInRegions(t *testing.T) {
	app := streamApp()
	s := newStream(app, rng.New(2), 1, 1.0)
	for _, a := range drainStream(s) {
		switch a.class {
		case mem.ClassTexture:
			if a.addr < mem.TextureBase || a.addr >= mem.TextureBase+app.TexFootprint {
				t.Fatalf("texture addr %#x out of region", a.addr)
			}
		case mem.ClassDepth:
			if a.addr < mem.DepthBase || !a.write {
				t.Fatalf("bad depth access %+v", a)
			}
		case mem.ClassColor:
			if a.addr < mem.ColorBase || !a.write {
				t.Fatalf("bad color access %+v", a)
			}
		case mem.ClassVertex:
			if a.addr < mem.VertexBase {
				t.Fatalf("bad vertex access %+v", a)
			}
		}
	}
}

func TestDepthColorAddressesRepeatAcrossRTPs(t *testing.T) {
	// The same render-target lines are touched by every RTP — that is
	// what creates the LLC reuse the paper's §II discusses.
	app := streamApp()
	collect := func(rtp int) map[uint64]bool {
		s := newStream(app, rng.New(3), rtp, 1.0)
		set := map[uint64]bool{}
		for _, a := range drainStream(s) {
			if a.class == mem.ClassDepth {
				set[a.addr] = true
			}
		}
		return set
	}
	a, b := collect(0), collect(1)
	if len(a) != len(b) {
		t.Fatalf("depth sets differ in size: %d vs %d", len(a), len(b))
	}
	for addr := range a {
		if !b[addr] {
			t.Fatalf("depth address %#x not reused in next RTP", addr)
		}
	}
}

func TestWorkScaleChangesCounts(t *testing.T) {
	app := streamApp()
	full := newStream(app, rng.New(4), 0, 1.0).total()
	half := newStream(app, rng.New(4), 0, 0.5).total()
	if half >= full {
		t.Fatalf("half-scale stream not smaller: %d vs %d", half, full)
	}
	// Non-zero base counts never jitter to zero.
	tiny := newStream(app, rng.New(4), 0, 0.01)
	if tiny.texPerTile < 1 || tiny.depthPerTile < 1 {
		t.Fatalf("counts collapsed to zero: %+v", tiny)
	}
}

// Property: for any app shape, the stream terminates and emits
// exactly total() accesses, all line-aligned.
func TestQuickStreamTerminates(t *testing.T) {
	f := func(tiles, rtps, tex, depth, color, vert uint8) bool {
		app := &AppModel{
			Name: "q", Frames: 1,
			Tiles:        int(tiles%16) + 1,
			RTPs:         int(rtps%4) + 1,
			TexPerTile:   int(tex % 8),
			DepthPerTile: int(depth % 8),
			ColorPerTile: int(color % 8),
			VertexPerRTP: int(vert % 8),
			TexFootprint: 1 << 12, TexHotBytes: 1 << 10, TexHotFrac: 0.5,
		}
		s := newStream(app, rng.New(9), 0, 1.0)
		got := drainStream(s)
		if len(got) != s.total() {
			return false
		}
		for _, a := range got {
			if a.addr%mem.LineSize != 0 {
				return false
			}
		}
		// A second call after exhaustion stays exhausted.
		if _, ok := s.next(); ok {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestHiZCullingReducesROPWork(t *testing.T) {
	app := streamApp()
	app.HiZCullFrac = 0.5
	first := newStream(app, rng.New(1), 0, 1.0)
	second := newStream(app, rng.New(1), 1, 1.0)
	// The first RTP is never culled; later RTPs lose half their
	// depth/color lines.
	if first.depthPerTile != app.DepthPerTile {
		t.Fatalf("first RTP culled: %d", first.depthPerTile)
	}
	if second.depthPerTile >= first.depthPerTile {
		t.Fatalf("hi-Z did not cull: %d vs %d", second.depthPerTile, first.depthPerTile)
	}
	// Hi-Z probe accesses appear, one per tile.
	hiz := 0
	for _, a := range drainStream(second) {
		if a.class == mem.ClassHiZ {
			hiz++
			if a.addr < mem.HiZBase {
				t.Fatalf("hi-Z address %#x out of region", a.addr)
			}
		}
	}
	if hiz != app.Tiles {
		t.Fatalf("hi-Z probes = %d, want %d", hiz, app.Tiles)
	}
}

func TestHiZSpeedsUpOverdrawnFrames(t *testing.T) {
	run := func(cull float64) int {
		app := testApp()
		app.RTPs = 4
		app.DepthPerTile = 24
		app.ColorPerTile = 24
		app.ShaderCyclesPerRTP = 0
		app.HiZCullFrac = cull
		g := New(DefaultConfig(64), app)
		s := newStub(40)
		s.gpu = g
		g.Issue = s.issue
		for i := 0; i < 120000; i++ {
			s.tick()
			g.Tick(s.cycle)
		}
		return g.FramesDone
	}
	off, on := run(0), run(0.6)
	if off == 0 {
		t.Fatalf("no frames without culling")
	}
	if on <= off {
		t.Fatalf("hi-Z culling did not speed up frames: %d vs %d", on, off)
	}
}

func TestHiZDisabledByDefault(t *testing.T) {
	app := streamApp() // HiZCullFrac zero
	for _, a := range drainStream(newStream(app, rng.New(2), 1, 1.0)) {
		if a.class == mem.ClassHiZ {
			t.Fatalf("hi-Z access emitted with culling disabled")
		}
	}
}
