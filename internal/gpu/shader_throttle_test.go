package gpu

import "testing"

// fixedShader throttles texture issue to a fixed fraction.
type fixedShader struct{ scale float64 }

func (f fixedShader) TextureIssueScale() float64 { return f.scale }

// TestShaderThrottleSlowsTextureHeavyApp: with most of the work in
// texture sampling, cutting shader concurrency must cost frames.
func TestShaderThrottleSlowsTextureHeavyApp(t *testing.T) {
	app := testApp()
	app.TexPerTile = 32
	app.DepthPerTile = 1
	app.ColorPerTile = 1
	app.ShaderCyclesPerRTP = 0

	run := func(scale float64) int {
		g := New(DefaultConfig(64), app)
		s := newStub(20)
		s.gpu = g
		g.Issue = s.issue
		if scale < 1 {
			g.Shader = fixedShader{scale}
		}
		for i := 0; i < 100000; i++ {
			s.tick()
			g.Tick(s.cycle)
		}
		return g.FramesDone
	}
	full, throttled := run(1.0), run(0.05)
	if full == 0 {
		t.Fatalf("no frames at full concurrency")
	}
	if throttled >= full {
		t.Fatalf("texture-heavy app unaffected by shader throttle: %d vs %d", throttled, full)
	}
}

// TestShaderThrottleBarelyTouchesROPBoundApp reproduces the paper's
// §IV argument: a workload dominated by fixed-function depth/color
// traffic does not slow down when shader concurrency drops, because
// the ROP does not run on shader cores.
func TestShaderThrottleBarelyTouchesROPBoundApp(t *testing.T) {
	app := testApp()
	app.TexPerTile = 1
	app.DepthPerTile = 24
	app.ColorPerTile = 24
	app.ShaderCyclesPerRTP = 0

	run := func(scale float64) int {
		g := New(DefaultConfig(64), app)
		s := newStub(20)
		s.gpu = g
		g.Issue = s.issue
		if scale < 1 {
			g.Shader = fixedShader{scale}
		}
		for i := 0; i < 100000; i++ {
			s.tick()
			g.Tick(s.cycle)
		}
		return g.FramesDone
	}
	full, throttled := run(1.0), run(0.1)
	if full == 0 {
		t.Fatalf("no frames at full concurrency")
	}
	// ROP-bound: the slowdown must be small relative to the texture-
	// heavy case (<25%).
	if float64(throttled) < 0.75*float64(full) {
		t.Fatalf("ROP-bound app slowed too much by shader throttle: %d vs %d", throttled, full)
	}
}
