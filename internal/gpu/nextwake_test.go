package gpu

import "testing"

// windowGate is a WakeGate test double: closed until openAt, open
// after, with the denial accounting the ATU does.
type windowGate struct {
	openAt uint64
	denied uint64
}

func (w *windowGate) Allow(c uint64) bool {
	if c >= w.openAt {
		return true
	}
	w.denied++
	return false
}

func (w *windowGate) OnIssue(uint64) {}

func (w *windowGate) NextAllow(c uint64) uint64 {
	if c >= w.openAt {
		return c
	}
	return w.openAt
}

func (w *windowGate) SkipDenied(n uint64) { w.denied += n }

func TestNextWakeFreshGPUIsBusy(t *testing.T) {
	g := New(DefaultConfig(0), testApp())
	if got := g.NextWake(0); got != 1 {
		t.Fatalf("fresh GPU NextWake = %d, want 1 (busy)", got)
	}
}

// TestNextWakeGateWindow drives twin GPUs against a closed throttle
// gate until the output queue pins the pipeline, checks NextWake
// reports the gate's opening cycle, advances one twin with naive
// Ticks and the other with Skip, then opens both gates and lets them
// run: every counter (including the gate's own denial tally) must
// agree at the barrier and the twins must finish frames in lockstep.
func TestNextWakeGateWindow(t *testing.T) {
	const opens = 1 << 30
	mk := func() (*GPU, *stubMem, *windowGate) {
		cfg := DefaultConfig(0)
		cfg.OutQ = 4
		g := New(cfg, testApp())
		s := newStub(20)
		s.gpu = g
		g.Issue = s.issue
		w := &windowGate{openAt: opens}
		g.Gate = w
		return g, s, w
	}
	a, sa, wa := mk()
	b, sb, wb := mk()

	var wake uint64
	for i := 0; i < 10_000 && wake == 0; i++ {
		sa.tick()
		a.Tick(sa.cycle)
		sb.tick()
		b.Tick(sb.cycle)
		if w := a.NextWake(a.cycle); w > a.cycle+1 {
			wake = w
		}
	}
	if wake == 0 {
		t.Fatal("GPU never reached a gate-pinned dead state")
	}
	if wake != opens {
		t.Fatalf("gate-pinned NextWake = %d, want gate opening at %d", wake, opens)
	}

	const n = 1000
	for i := 0; i < n; i++ {
		a.Tick(sa.cycle) // stub frozen: no fills land mid-range
	}
	b.Skip(n)
	if a.cycle != b.cycle || a.StallIssue != b.StallIssue ||
		a.IssuedLLC != b.IssuedLLC || wa.denied != wb.denied {
		t.Fatalf("after jump: ticked cycle=%d stall=%d issued=%d denied=%d vs skipped cycle=%d stall=%d issued=%d denied=%d",
			a.cycle, a.StallIssue, a.IssuedLLC, wa.denied,
			b.cycle, b.StallIssue, b.IssuedLLC, wb.denied)
	}

	// Open the gates and run to completion in lockstep.
	wa.openAt, wb.openAt = 0, 0
	for i := 0; i < 2_000_000 && a.FramesDone < testApp().Frames; i++ {
		sa.tick()
		a.Tick(sa.cycle)
		sb.tick()
		b.Tick(sb.cycle)
	}
	if a.FramesDone != testApp().Frames {
		t.Fatalf("ticked GPU finished %d of %d frames", a.FramesDone, testApp().Frames)
	}
	if a.FramesDone != b.FramesDone || a.IssuedLLC != b.IssuedLLC ||
		a.ReadsIssued != b.ReadsIssued || a.FillsReceived != b.FillsReceived ||
		a.StallIssue != b.StallIssue {
		t.Fatalf("after resume: ticked frames=%d issued=%d reads=%d fills=%d stall=%d vs skipped frames=%d issued=%d reads=%d fills=%d stall=%d",
			a.FramesDone, a.IssuedLLC, a.ReadsIssued, a.FillsReceived, a.StallIssue,
			b.FramesDone, b.IssuedLLC, b.ReadsIssued, b.FillsReceived, b.StallIssue)
	}
}
