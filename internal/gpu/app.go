// Package gpu models the throughput-optimized GPU of the
// heterogeneous CMP at the granularity the paper's proposal observes
// it: a 3D rendering workload is a sequence of frames, each frame a
// sequence of render-target planes (RTPs), each RTP a batch of
// updates covering all render-target tiles (RTTs) of the frame
// buffer. Per tile, the pipeline generates vertex, texture, depth and
// color traffic through the GPU's internal cache hierarchy; misses
// and dirty evictions become shared-LLC accesses through the GPU
// memory interface, where the access-throttling unit's gate sits.
//
// The paper drives this with Attila traces of DirectX/OpenGL games;
// those traces are not redistributable, so AppModel parameterizes
// each game's frame structure (resolution-derived tile count,
// overdraw, per-tile access counts, texture footprint, shader work)
// and internal/workloads instantiates the fourteen Table II titles.
package gpu

import (
	"repro/internal/mem"
	"repro/internal/rng"
)

// TileSide is the render-target tile edge in pixels (t x t RTTs).
const TileSide = 32

// AppModel describes one 3D rendering workload.
type AppModel struct {
	// Name of the game ("DOOM3", ...).
	Name string
	// API is "DX" or "OGL" (metadata only).
	API string

	// Frames is the number of frames in the rendered sequence; the
	// sequence loops if the run outlives it.
	Frames int

	// Tiles is the number of RTTs per render-target plane (already
	// divided by the scale factor).
	Tiles int

	// RTPs is the number of render-target planes per frame (the
	// number of update batches that each cover all tiles).
	RTPs int

	// Per-tile, per-RTP access counts, in cache lines.
	TexPerTile   int
	DepthPerTile int
	ColorPerTile int

	// VertexPerRTP is the vertex-buffer lines fetched at the start of
	// each RTP.
	VertexPerRTP int

	// TexFootprint is the texture working set in bytes (scaled); a
	// TexHotFrac fraction of texture reads fall in TexHotBytes.
	TexFootprint uint64
	TexHotBytes  uint64
	TexHotFrac   float64

	// ShaderCyclesPerRTP is the shader-core compute time for one RTP
	// in GPU cycles, overlapped with memory.
	ShaderCyclesPerRTP uint64

	// HiZCullFrac enables hierarchical-Z culling: for every RTP after
	// a frame's first, this fraction of the tile's depth/color work is
	// culled by the coarse depth test before rasterization, at the
	// cost of one hierarchical-depth access per tile. Zero disables
	// (the default; the hi-Z ablation exercises it).
	HiZCullFrac float64

	// WorkJitter is the relative per-frame variation of RTP work
	// (e.g. 0.02 for +/-2%); rendering workloads have nearly constant
	// work across adjacent frames, which is what makes the FRPU's
	// learning/prediction split effective.
	WorkJitter float64

	// SceneChangeEvery makes every Nth frame re-roll its work scale
	// by up to +/-SceneChangeMag, forcing the FRPU back into the
	// learning phase (paper Fig. 4, point B). Zero disables.
	SceneChangeEvery int
	SceneChangeMag   float64

	// Seed drives all of the app's randomness.
	Seed uint64
}

// access is one pipeline memory reference.
type access struct {
	class mem.Class
	addr  uint64
	write bool
}

// stream lazily generates the access sequence of one RTP.
type stream struct {
	app   *AppModel
	rnd   *rng.RNG
	scale float64 // current frame's work multiplier

	tile     int
	phase    int // 0 vertex, 1 tex, 2 depth, 3 color
	idx      int
	rtpIndex int

	// counts for this RTP after jitter.
	texPerTile, depthPerTile, colorPerTile, vertexPerRTP int

	emitted int
}

const (
	phaseVertex = iota
	phaseHiZ
	phaseTex
	phaseDepth
	phaseColor
	phaseDone
)

func jcount(base int, scale float64) int {
	n := int(float64(base)*scale + 0.5)
	if base > 0 && n < 1 {
		n = 1
	}
	return n
}

// newStream starts the access stream for RTP rtpIndex of the current
// frame, with the frame's work multiplier.
func newStream(app *AppModel, rnd *rng.RNG, rtpIndex int, scale float64) *stream {
	s := &stream{
		app:          app,
		rnd:          rnd,
		scale:        scale,
		rtpIndex:     rtpIndex,
		texPerTile:   jcount(app.TexPerTile, scale),
		depthPerTile: jcount(app.DepthPerTile, scale),
		colorPerTile: jcount(app.ColorPerTile, scale),
		vertexPerRTP: jcount(app.VertexPerRTP, scale),
	}
	if app.HiZCullFrac > 0 && rtpIndex > 0 {
		// Overdraw culled by the coarse depth test: later RTPs touch
		// fewer render-target lines (but still at least one each).
		keep := 1 - app.HiZCullFrac
		s.depthPerTile = jcount(s.depthPerTile, keep)
		s.colorPerTile = jcount(s.colorPerTile, keep)
	}
	return s
}

// total returns the total accesses this stream will emit.
func (s *stream) total() int {
	hiz := 0
	if s.app.HiZCullFrac > 0 {
		hiz = 1
	}
	return s.vertexPerRTP + s.app.Tiles*(hiz+s.texPerTile+s.depthPerTile+s.colorPerTile)
}

// next returns the next access, or ok=false at end of RTP.
func (s *stream) next() (access, bool) {
	app := s.app
	for {
		switch s.phase {
		case phaseVertex:
			if s.idx < s.vertexPerRTP {
				a := access{
					class: mem.ClassVertex,
					addr:  mem.VertexBase + uint64(s.rtpIndex*s.vertexPerRTP+s.idx)*mem.LineSize,
				}
				s.idx++
				s.emitted++
				return a, true
			}
			s.phase, s.idx = phaseHiZ, 0
		case phaseHiZ:
			if s.app.HiZCullFrac > 0 && s.idx == 0 {
				s.idx++
				s.emitted++
				return access{
					class: mem.ClassHiZ,
					addr:  mem.HiZBase + uint64(s.tile)*mem.LineSize,
				}, true
			}
			s.phase, s.idx = phaseTex, 0
		case phaseTex:
			if s.idx < s.texPerTile {
				var off uint64
				if s.rnd.Bool(app.TexHotFrac) && app.TexHotBytes >= mem.LineSize {
					off = s.rnd.Uint64n(app.TexHotBytes) &^ (mem.LineSize - 1)
				} else if app.TexFootprint >= mem.LineSize {
					off = s.rnd.Uint64n(app.TexFootprint) &^ (mem.LineSize - 1)
				}
				s.idx++
				s.emitted++
				return access{class: mem.ClassTexture, addr: mem.TextureBase + off}, true
			}
			s.phase, s.idx = phaseDepth, 0
		case phaseDepth:
			if s.idx < s.depthPerTile {
				a := access{
					class: mem.ClassDepth,
					addr:  mem.DepthBase + uint64(s.tile*s.depthPerTile+s.idx)*mem.LineSize,
					write: true, // depth test reads then updates
				}
				s.idx++
				s.emitted++
				return a, true
			}
			s.phase, s.idx = phaseColor, 0
		case phaseColor:
			if s.idx < s.colorPerTile {
				a := access{
					class: mem.ClassColor,
					addr:  mem.ColorBase + uint64(s.tile*s.colorPerTile+s.idx)*mem.LineSize,
					write: true,
				}
				s.idx++
				s.emitted++
				return a, true
			}
			// Next tile.
			s.tile++
			s.idx = 0
			if s.tile >= app.Tiles {
				s.phase = phaseDone
				return access{}, false
			}
			s.phase = phaseHiZ
		case phaseDone:
			return access{}, false
		}
	}
}
