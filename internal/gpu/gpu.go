package gpu

import (
	"repro/internal/cache"
	"repro/internal/mem"
	"repro/internal/obs"
	"repro/internal/rng"
)

// ThrottleGate is the GTT port gate the access-throttling unit
// controls: before the GPU memory interface injects an LLC access it
// asks Allow; OnIssue reports the access going out. A nil gate means
// the baseline unthrottled GPU.
type ThrottleGate interface {
	Allow(gpuCycle uint64) bool
	OnIssue(gpuCycle uint64)
}

// WakeGate is optionally implemented by a ThrottleGate that can
// predict itself (DESIGN.md §9): NextAllow returns the earliest GPU
// cycle >= gpuCycle at which Allow would return true, and SkipDenied
// bulk-applies the bookkeeping of n consecutive denied Allow calls
// (one per elided GPU tick — drainOut asks the gate exactly once per
// tick while it is closed). A gate without this interface keeps the
// GPU unskippable while output is queued.
type WakeGate interface {
	ThrottleGate
	NextAllow(gpuCycle uint64) uint64
	SkipDenied(n uint64)
}

// ShaderThrottle models shader-core-centric concurrency management
// (CM-BAL, paper §IV): the returned scale in (0,1] is the fraction of
// texture-issue slots the active thread count sustains. Only texture
// traffic is affected — the fixed-function ROP (depth/color) pipeline
// does not run on shader cores, which is exactly why the paper finds
// this class of mechanisms unable to regulate the frame rate.
type ShaderThrottle interface {
	TextureIssueScale() float64
}

// stallObserver is optionally implemented by a ShaderThrottle that
// adapts to memory-system stalls (CM-BAL's controller input).
type stallObserver interface {
	Observe(gpuCycle uint64, stalled bool)
}

// RTPInfo is the per-render-target-plane record the frame-rate
// prediction unit consumes (paper §III-A1: updates, cycles, tiles,
// LLC accesses).
type RTPInfo struct {
	Frame       int
	Index       int
	Updates     uint64
	Cycles      uint64
	Tiles       int
	LLCAccesses uint64
}

// FrameInfo summarizes a completed frame.
type FrameInfo struct {
	Index       int
	Cycles      uint64
	LLCAccesses uint64
	RTPs        int
}

// Observer receives pipeline progress events; the QoS controller
// implements it.
type Observer interface {
	RTPComplete(RTPInfo)
	FrameComplete(FrameInfo)
}

// Config describes the GPU microarchitecture (Table I), with cache
// capacities divided by the scale factor. The per-sampler 2 KB L0
// texture caches and per-ROP 2 KB L1 depth/color caches are folded
// into the shared levels (see DESIGN.md).
type Config struct {
	IssueWidth    int // pipeline accesses generated per GPU cycle
	MSHRs         int // outstanding LLC read misses (latency tolerance)
	OutQ          int // memory-interface request buffer entries
	IssuePerCycle int // LLC requests injected per GPU cycle
	TexL1         cache.Config
	TexL2         cache.Config
	DepthL2       cache.Config
	ColorL2       cache.Config
	Vertex        cache.Config
	HiZ           cache.Config
}

// DefaultConfig returns the Table I GPU scaled by scale (>=1).
func DefaultConfig(scale int) Config {
	if scale < 1 {
		scale = 1
	}
	return Config{
		IssueWidth:    8,
		MSHRs:         12,
		OutQ:          16,
		IssuePerCycle: 4,
		TexL1: cache.Config{
			Name: "texL1", SizeBytes: 64 * 1024 / scale, Ways: 16, Policy: cache.LRU,
		},
		TexL2: cache.Config{
			Name: "texL2", SizeBytes: 384 * 1024 / scale, Ways: 48, Policy: cache.LRU,
		},
		DepthL2: cache.Config{
			Name: "depthL2", SizeBytes: 32 * 1024 / scale, Ways: 32, Policy: cache.LRU,
		},
		ColorL2: cache.Config{
			Name: "colorL2", SizeBytes: 32 * 1024 / scale, Ways: 32, Policy: cache.LRU,
		},
		Vertex: cache.Config{
			Name: "vertex", SizeBytes: 16 * 1024 / scale, Ways: 16, Policy: cache.LRU,
		},
		HiZ: cache.Config{
			Name: "hiz", SizeBytes: 16 * 1024 / scale, Ways: 16, Policy: cache.LRU,
		},
	}
}

// GPU executes one AppModel's rendering on the modeled pipeline.
type GPU struct {
	cfg Config
	app *AppModel
	rnd *rng.RNG

	texL1, texL2, depthL2, colorL2, vertex, hiz *cache.Cache
	mshr                                        *cache.MSHR

	// Issue injects a request toward the LLC (ring); false = retry.
	// The system builder wires it.
	Issue func(r *mem.Request) bool
	// Gate is the ATU's GTT port gate (nil = unthrottled).
	Gate ThrottleGate
	// Shader is the optional shader-core concurrency throttle
	// (CM-BAL); nil = full concurrency.
	Shader ShaderThrottle
	// Observer receives RTP/frame completions (nil = none).
	Observer Observer
	// FrameScale, when non-nil, overrides the per-frame work
	// multiplier: it is consulted once per frame (at the frame's first
	// RTP) with the completed-frame count, and a true second return
	// value uses the returned scale verbatim (clamped to the 0.05
	// floor) in place of the scene-change/jitter model for that frame.
	// Nil — and a false return — leaves the model, including its RNG
	// draw sequence, byte-identical. The tracev2 replay layer uses it
	// to drive the GPU side of a captured trace.
	FrameScale func(frame int) (float64, bool)

	outQ mem.ReqQueue

	cycle    uint64 // GPU cycles
	cpuCycle uint64

	frame      int // index within the app's frame sequence
	rtp        int
	str        *stream
	curAcc     access
	curValid   bool
	compute    uint64
	sceneScale float64

	rtpStart    uint64
	rtpLLC      uint64
	rtpUpdates  uint64
	frameStart  uint64
	frameLLC    uint64
	texCredit   float64
	nextID      uint64
	pendingRead map[uint64]mem.Class // line -> class awaiting fill
	pool        mem.Pool             // free list for requests the GPU issues

	// Results and stats.
	FramesDone    int
	FrameCycles   []uint64
	StallIssue    uint64 // GPU cycles with the gate or queue blocking
	IssuedLLC     uint64
	WritebackWB   uint64
	ReadsIssued   uint64 // LLC read requests injected toward the ring
	FillsReceived uint64 // read responses delivered back (OnFill)
}

// New builds a GPU running app.
func New(cfg Config, app *AppModel) *GPU {
	g := &GPU{
		cfg:         cfg,
		app:         app,
		rnd:         rng.New(app.Seed),
		texL1:       cache.New(cfg.TexL1),
		texL2:       cache.New(cfg.TexL2),
		depthL2:     cache.New(cfg.DepthL2),
		colorL2:     cache.New(cfg.ColorL2),
		vertex:      cache.New(cfg.Vertex),
		hiz:         cache.New(cfg.HiZ),
		mshr:        cache.NewMSHR(cfg.MSHRs),
		sceneScale:  1.0,
		pendingRead: make(map[uint64]mem.Class),
	}
	g.startRTP()
	return g
}

// App returns the running application model.
func (g *GPU) App() *AppModel { return g.app }

// Recycle returns a dead request the GPU issued to its free list. The
// LLC calls it when it absorbs one of the GPU's write-backs.
func (g *GPU) Recycle(r *mem.Request) { g.pool.Put(r) }

// Cycle returns the current GPU cycle.
func (g *GPU) Cycle() uint64 { return g.cycle }

// FrameStartCycle returns the GPU cycle the in-flight frame began.
func (g *GPU) FrameStartCycle() uint64 { return g.frameStart }

// OutstandingLLC returns in-flight LLC read misses (for HeLM's
// latency-tolerance sampling).
func (g *GPU) OutstandingLLC() int { return g.mshr.Len() }

// SetWorkScale retargets the scene work set-point (the scenario
// engine's GPU lever). The new value takes effect at the next frame
// start and composes with the app model's per-frame jitter; a later
// scene-change event re-rolls it exactly as it re-rolls the model's
// own set-point. Safe with outstanding skip debt — Skip never reads
// the scale.
func (g *GPU) SetWorkScale(mult float64) {
	if mult < 0.05 {
		mult = 0.05
	}
	g.sceneScale = mult
}

// frameScale returns the work multiplier for the upcoming frame.
func (g *GPU) frameScale() float64 {
	if g.FrameScale != nil {
		if s, ok := g.FrameScale(g.FramesDone); ok {
			if s < 0.05 {
				s = 0.05
			}
			return s
		}
	}
	app := g.app
	if app.SceneChangeEvery > 0 && g.FramesDone > 0 && g.FramesDone%app.SceneChangeEvery == 0 {
		g.sceneScale = 1 + app.SceneChangeMag*(2*g.rnd.Float64()-1)
	}
	s := g.sceneScale
	if app.WorkJitter > 0 {
		s *= 1 + app.WorkJitter*(2*g.rnd.Float64()-1)
	}
	if s < 0.05 {
		s = 0.05
	}
	return s
}

// startRTP begins the next RTP (possibly starting a new frame).
func (g *GPU) startRTP() {
	if g.rtp == 0 {
		g.frameStart = g.cycle
		g.frameLLC = 0
	}
	scale := 1.0
	if g.str != nil {
		scale = g.str.scale
	}
	if g.rtp == 0 {
		scale = g.frameScale()
	}
	g.str = newStream(g.app, g.rnd, g.rtp, scale)
	g.compute = uint64(float64(g.app.ShaderCyclesPerRTP)*scale + 0.5)
	g.rtpStart = g.cycle
	g.rtpLLC = 0
	g.rtpUpdates = 0
	g.curValid = false
}

// finishRTP records completion and advances the pipeline.
func (g *GPU) finishRTP() {
	info := RTPInfo{
		Frame:       g.frame,
		Index:       g.rtp,
		Updates:     g.rtpUpdates,
		Cycles:      g.cycle - g.rtpStart,
		Tiles:       g.app.Tiles,
		LLCAccesses: g.rtpLLC,
	}
	if g.Observer != nil {
		g.Observer.RTPComplete(info)
	}
	g.rtp++
	if g.rtp >= g.app.RTPs {
		fi := FrameInfo{
			Index:       g.frame,
			Cycles:      g.cycle - g.frameStart,
			LLCAccesses: g.frameLLC,
			RTPs:        g.app.RTPs,
		}
		g.FramesDone++
		g.FrameCycles = append(g.FrameCycles, fi.Cycles)
		if g.Observer != nil {
			g.Observer.FrameComplete(fi)
		}
		g.frame = (g.frame + 1) % g.app.Frames
		g.rtp = 0
	}
	g.startRTP()
}

// Tick advances the GPU one GPU cycle. cpuCycle timestamps requests.
func (g *GPU) Tick(cpuCycle uint64) {
	g.cycle++
	g.cpuCycle = cpuCycle

	g.drainOut()

	if g.compute > 0 {
		g.compute--
	}

	// Shader concurrency scaling: accrue texture-issue credits at the
	// throttled rate (full rate = IssueWidth credits per cycle).
	if g.Shader != nil {
		g.texCredit += g.Shader.TextureIssueScale() * float64(g.cfg.IssueWidth)
		if max := float64(2 * g.cfg.IssueWidth); g.texCredit > max {
			g.texCredit = max
		}
	}

	// Generate pipeline accesses.
	stalled := false
	for i := 0; i < g.cfg.IssueWidth; i++ {
		if !g.curValid {
			a, ok := g.str.next()
			if !ok {
				break
			}
			g.curAcc, g.curValid = a, true
		}
		if g.Shader != nil && g.curAcc.class == mem.ClassTexture {
			if g.texCredit < 1 {
				g.StallIssue++
				stalled = true
				break
			}
		}
		if !g.tryAccess(g.curAcc) {
			g.StallIssue++
			stalled = true
			break
		}
		if g.Shader != nil && g.curAcc.class == mem.ClassTexture {
			g.texCredit--
		}
		g.curValid = false
	}
	if so, ok := g.Shader.(stallObserver); ok {
		so.Observe(g.cycle, stalled)
	}

	// RTP completion.
	if !g.curValid && g.str.phase == phaseDone &&
		g.compute == 0 && g.mshr.Len() == 0 && g.outQ.Len() == 0 {
		g.finishRTP()
	}
}

// NextWake implements the engine's next-wake contract (DESIGN.md §9)
// in the GPU clock domain: the earliest future GPU cycle at which the
// GPU can change state on its own; nowG+1 means busy. Only two states
// are provably dead:
//
//   - the stream is between accesses (drained, or parked on a retry
//     that fails on the pure output-queue-full check) while a closed
//     gate pins the output queue: nothing moves until the gate's
//     window expires (the ATU idling the GPU is exactly where the
//     paper's throttling spends whole windows);
//   - the stream is drained with an empty output queue: the RTP
//     completes when the shader-compute countdown expires, or — if
//     reads are still in flight on the MSHRs — only when a fill
//     arrives (externally bounded by the memory-side wakes).
//
// Every other state issues, probes internal caches (which moves
// replacement state), or feeds the shader throttle's per-cycle
// controller, so it must tick.
func (g *GPU) NextWake(nowG uint64) uint64 {
	if g.Shader != nil {
		return nowG + 1 // CM-BAL observes the pipeline every cycle
	}
	blockedFull := g.curValid && g.outQ.Len() >= g.cfg.OutQ
	drained := !g.curValid && g.str.phase == phaseDone
	if !blockedFull && !drained {
		return nowG + 1
	}
	if g.outQ.Len() > 0 {
		if g.Gate == nil {
			return nowG + 1 // drains into the ring next tick
		}
		wg, ok := g.Gate.(WakeGate)
		if !ok {
			return nowG + 1
		}
		wake := wg.NextAllow(nowG + 1)
		if wake <= nowG+1 {
			return nowG + 1
		}
		return wake
	}
	// Drained, nothing queued: RTP completion waits on compute and
	// outstanding fills.
	if g.mshr.Len() > 0 {
		return ^uint64(0)
	}
	if g.compute == 0 {
		return nowG + 1 // completion fires on the very next tick
	}
	return nowG + g.compute
}

// Skip advances the GPU n GPU cycles at once through one of the dead
// states above, replicating what each elided tick would have done:
// decrement the compute countdown, count one issue-stall if a retry
// is parked, and take one denied gate decision if the closed gate is
// what pins the output queue.
func (g *GPU) Skip(n uint64) {
	g.cycle += n
	if g.compute > n {
		g.compute -= n
	} else {
		g.compute = 0
	}
	if g.curValid {
		g.StallIssue += n
	}
	if g.outQ.Len() > 0 {
		if wg, ok := g.Gate.(WakeGate); ok {
			wg.SkipDenied(n)
		}
	}
}

// drainOut injects buffered LLC requests through the throttle gate.
func (g *GPU) drainOut() {
	for n := 0; n < g.cfg.IssuePerCycle && g.outQ.Len() > 0; n++ {
		if g.Gate != nil && !g.Gate.Allow(g.cycle) {
			return
		}
		r := g.outQ.Front()
		r.Born = g.cpuCycle
		if g.Issue == nil || !g.Issue(r) {
			return
		}
		g.outQ.Pop()
		if g.Gate != nil {
			g.Gate.OnIssue(g.cycle)
		}
		g.IssuedLLC++
		if !r.Write {
			g.ReadsIssued++
		}
		g.rtpLLC++
		g.frameLLC++
	}
}

// tryAccess routes one pipeline access through the internal caches.
// It returns false on a structural hazard (retry next cycle).
func (g *GPU) tryAccess(a access) bool {
	if g.outQ.Len() >= g.cfg.OutQ {
		return false
	}
	switch a.class {
	case mem.ClassTexture:
		if a.write {
			break
		}
		if g.texL1.Access(a.addr, false) {
			return true
		}
		if g.texL2.Access(a.addr, false) {
			g.fillCache(g.texL1, a.addr, false)
			return true
		}
		return g.readMiss(a)
	case mem.ClassVertex:
		if g.vertex.Access(a.addr, false) {
			return true
		}
		return g.readMiss(a)
	case mem.ClassHiZ:
		if g.hiz.Access(a.addr, false) {
			return true
		}
		return g.readMiss(a)
	case mem.ClassDepth:
		if g.depthL2.Access(a.addr, true) {
			g.rtpUpdates++
			return true
		}
		if g.readMiss(a) {
			g.rtpUpdates++
			return true
		}
		return false
	case mem.ClassColor:
		g.rtpUpdates++
		if g.colorL2.Access(a.addr, true) {
			return true
		}
		// ROPs create fully dirty color lines without fetching
		// (paper footnote 6): allocate directly.
		g.fillCache(g.colorL2, a.addr, true)
		return true
	}
	return true
}

// readMiss files an LLC read for the access's line, coalescing on the
// GPU MSHRs.
func (g *GPU) readMiss(a access) bool {
	line := a.addr &^ (mem.LineSize - 1)
	if g.mshr.Pending(line) {
		_, ok := g.mshr.Allocate(line)
		return ok
	}
	if g.mshr.Full() {
		return false
	}
	g.mshr.Allocate(line)
	g.pendingRead[line] = a.class
	g.nextID++
	r := g.pool.Get()
	r.ID = uint64(mem.SourceGPU)<<56 | g.nextID
	r.Addr = line
	r.Src = mem.SourceGPU
	r.Class = a.class
	r.Born = g.cpuCycle
	g.outQ.Push(r)
	return true
}

// fillCache installs a line into one internal cache, turning dirty
// victims into LLC write-backs.
func (g *GPU) fillCache(c *cache.Cache, addr uint64, dirty bool) {
	if v, ev := c.Fill(addr, dirty, mem.SourceGPU, classOf(c)); ev && v.Dirty {
		g.nextID++
		r := g.pool.Get()
		r.ID = uint64(mem.SourceGPU)<<56 | g.nextID
		r.Addr = v.Tag << mem.LineShift
		r.Write = true
		r.Src = mem.SourceGPU
		r.Class = v.Class
		r.Born = g.cpuCycle
		g.outQ.Push(r)
		g.WritebackWB++
	}
}

// classOf maps an internal cache to the data class it holds.
func classOf(c *cache.Cache) mem.Class {
	switch c.Config().Name {
	case "texL1", "texL2":
		return mem.ClassTexture
	case "depthL2":
		return mem.ClassDepth
	case "colorL2":
		return mem.ClassColor
	case "vertex":
		return mem.ClassVertex
	case "hiz":
		return mem.ClassHiZ
	}
	return mem.ClassShader
}

// OnFill delivers a completed LLC/DRAM read to the GPU.
func (g *GPU) OnFill(r *mem.Request) {
	g.FillsReceived++
	line := r.LineAddr()
	class, ok := g.pendingRead[line]
	if !ok {
		class = r.Class
	}
	delete(g.pendingRead, line)
	g.mshr.Release(line)
	switch class {
	case mem.ClassTexture:
		g.fillCache(g.texL2, line, false)
		g.fillCache(g.texL1, line, false)
	case mem.ClassVertex:
		g.fillCache(g.vertex, line, false)
	case mem.ClassHiZ:
		g.fillCache(g.hiz, line, false)
	case mem.ClassDepth:
		// Depth read-modify-write: the fetched line is updated.
		g.fillCache(g.depthL2, line, true)
	case mem.ClassColor:
		g.fillCache(g.colorL2, line, true)
	}
	g.pool.Put(r)
}

// Caches returns the internal caches for stats/tests, keyed by name.
func (g *GPU) Caches() map[string]*cache.Cache {
	return map[string]*cache.Cache{
		"texL1":   g.texL1,
		"texL2":   g.texL2,
		"depthL2": g.depthL2,
		"colorL2": g.colorL2,
		"vertex":  g.vertex,
		"hiz":     g.hiz,
	}
}

// RegisterObs registers the GPU pipeline's progress and traffic
// counters with the observability registry.
func (g *GPU) RegisterObs(reg *obs.Registry) {
	reg.Counter("gpu.frames", func() uint64 { return uint64(g.FramesDone) })
	reg.Counter("gpu.llc_issued", func() uint64 { return g.IssuedLLC })
	reg.Counter("gpu.stall_issue", func() uint64 { return g.StallIssue })
	reg.Gauge("gpu.mshr_inflight", func() float64 { return float64(g.mshr.Len()) })
}

// AvgFrameCycles returns the mean GPU cycles per completed frame over
// the most recent n frames (all if n<=0 or fewer completed).
func (g *GPU) AvgFrameCycles(n int) float64 {
	fc := g.FrameCycles
	if n > 0 && len(fc) > n {
		fc = fc[len(fc)-n:]
	}
	if len(fc) == 0 {
		return 0
	}
	var sum uint64
	for _, c := range fc {
		sum += c
	}
	return float64(sum) / float64(len(fc))
}
