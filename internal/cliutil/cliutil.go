// Package cliutil holds the small amount of plumbing the command-line
// tools share: the exit-code convention, pre-flight output checks, and
// signal-driven cancellation.
//
// Exit codes (DESIGN.md §8): 0 success, 1 runtime/IO failure (a
// simulation died, an output could not be written, the run was
// interrupted), 2 usage error (bad flags, unknown workload or policy,
// invalid configuration) — matching flag.ExitOnError's own convention.
package cliutil

import (
	"context"
	"fmt"
	"os"
	"os/signal"
	"sync"
	"syscall"
)

// Exit codes for the CLI tools.
const (
	ExitOK      = 0
	ExitRuntime = 1
	ExitUsage   = 2
	// ExitForced is the exit code of a second SIGINT/SIGTERM: the
	// conventional 128+SIGINT, the shell's own code for an interrupted
	// process.
	ExitForced = 130
)

// Errorf prints a formatted message to stderr with the program name
// prefixed, for consistent error reporting across the tools.
func Errorf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "%s: %s\n", prog(), fmt.Sprintf(format, args...))
}

func prog() string {
	if len(os.Args) > 0 && os.Args[0] != "" {
		return trimPath(os.Args[0])
	}
	return "hetsim"
}

func trimPath(p string) string {
	for i := len(p) - 1; i >= 0; i-- {
		if p[i] == '/' || p[i] == '\\' {
			return p[i+1:]
		}
	}
	return p
}

// EnsureWritable verifies that path can be created or overwritten by
// opening it for writing (creating it if absent) and closing it again.
// Tools call this before starting hours of simulation so an unwritable
// -metrics-out or -trace-out fails in milliseconds, not at save time.
func EnsureWritable(path string) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("output %s not writable: %w", path, err)
	}
	return f.Close()
}

// exitFunc is what a second signal invokes; tests swap it to observe
// the escalation without dying.
var exitFunc = os.Exit

// SignalContext returns a context cancelled on the first SIGINT or
// SIGTERM, so Ctrl-C drains worker pools and flushes journals instead
// of killing the process mid-write. A second signal forces immediate
// exit with code ExitForced (130) — the escape hatch when the drain
// itself is wedged (a stuck pool, an unkillable run); before this
// escalation a wedged drain could ignore Ctrl-C forever. The returned
// stop function releases the handler and restores default signal
// behavior.
func SignalContext() (context.Context, context.CancelFunc) {
	ctx, cancel := context.WithCancel(context.Background())
	ch := make(chan os.Signal, 2)
	signal.Notify(ch, syscall.SIGINT, syscall.SIGTERM)
	released := make(chan struct{})
	var once sync.Once
	stop := func() {
		once.Do(func() {
			signal.Stop(ch)
			close(released)
			cancel()
		})
	}
	go func() {
		select {
		case <-ch:
			cancel() // first signal: drain gracefully
		case <-released:
			return
		}
		select {
		case <-ch:
			exitFunc(ExitForced) // second signal: the drain is wedged
		case <-released:
		}
	}()
	return ctx, stop
}
