// Package cliutil holds the small amount of plumbing the command-line
// tools share: the exit-code convention, pre-flight output checks, and
// signal-driven cancellation.
//
// Exit codes (DESIGN.md §8): 0 success, 1 runtime/IO failure (a
// simulation died, an output could not be written, the run was
// interrupted), 2 usage error (bad flags, unknown workload or policy,
// invalid configuration) — matching flag.ExitOnError's own convention.
package cliutil

import (
	"context"
	"fmt"
	"os"
	"os/signal"
	"syscall"
)

// Exit codes for the CLI tools.
const (
	ExitOK      = 0
	ExitRuntime = 1
	ExitUsage   = 2
)

// Errorf prints a formatted message to stderr with the program name
// prefixed, for consistent error reporting across the tools.
func Errorf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "%s: %s\n", prog(), fmt.Sprintf(format, args...))
}

func prog() string {
	if len(os.Args) > 0 && os.Args[0] != "" {
		return trimPath(os.Args[0])
	}
	return "hetsim"
}

func trimPath(p string) string {
	for i := len(p) - 1; i >= 0; i-- {
		if p[i] == '/' || p[i] == '\\' {
			return p[i+1:]
		}
	}
	return p
}

// EnsureWritable verifies that path can be created or overwritten by
// opening it for writing (creating it if absent) and closing it again.
// Tools call this before starting hours of simulation so an unwritable
// -metrics-out or -trace-out fails in milliseconds, not at save time.
func EnsureWritable(path string) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("output %s not writable: %w", path, err)
	}
	return f.Close()
}

// SignalContext returns a context cancelled on SIGINT or SIGTERM, so
// Ctrl-C drains worker pools and flushes journals instead of killing
// the process mid-write. The returned stop function releases the
// signal handler; a second signal then kills the process immediately
// (the default Go behavior), which is the desired escalation.
func SignalContext() (context.Context, context.CancelFunc) {
	return signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
}
