package cliutil

import (
	"os"
	"os/signal"
	"syscall"
	"testing"
	"time"
)

// raise sends sig to this process and fails the test on error.
func raise(t *testing.T, sig syscall.Signal) {
	t.Helper()
	if err := syscall.Kill(os.Getpid(), sig); err != nil {
		t.Fatal(err)
	}
}

// TestSignalContextTwoStage: the first signal cancels the context (a
// graceful drain), the second forces exit with 130 even though the
// "drain" here never finishes.
func TestSignalContextTwoStage(t *testing.T) {
	exited := make(chan int, 1)
	exitFunc = func(code int) { exited <- code }
	defer func() { exitFunc = os.Exit }()

	ctx, stop := SignalContext()
	defer stop()

	raise(t, syscall.SIGINT)
	select {
	case <-ctx.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("first SIGINT did not cancel the context")
	}
	select {
	case code := <-exited:
		t.Fatalf("first SIGINT already forced exit %d", code)
	default:
	}

	raise(t, syscall.SIGINT)
	select {
	case code := <-exited:
		if code != ExitForced {
			t.Fatalf("second SIGINT exited %d, want %d", code, ExitForced)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("second SIGINT did not force an exit")
	}
}

// TestSignalContextStopReleases: after stop, signals neither cancel a
// fresh context nor force an exit through the released handler. (The
// test re-registers its own handler first so the raised SIGTERM cannot
// fall through to the runtime default and kill the test binary.)
func TestSignalContextStopReleases(t *testing.T) {
	exited := make(chan int, 1)
	exitFunc = func(code int) { exited <- code }
	defer func() { exitFunc = os.Exit }()

	_, stop := SignalContext()
	stop()

	guard := make(chan os.Signal, 1)
	signal.Notify(guard, syscall.SIGTERM)
	defer signal.Stop(guard)

	raise(t, syscall.SIGTERM)
	select {
	case <-guard:
	case <-time.After(5 * time.Second):
		t.Fatal("guard handler never saw the signal")
	}
	select {
	case code := <-exited:
		t.Fatalf("released handler forced exit %d", code)
	case <-time.After(50 * time.Millisecond):
	}
}
