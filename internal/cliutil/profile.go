package cliutil

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// StartProfiles turns on CPU and/or heap profiling for a tool run.
// Either path may be empty to skip that profile. The returned stop
// function flushes and closes whatever was started; call it exactly
// once (a defer in realMain), and check its error — a profile that
// fails to flush is worse than none, because it looks usable.
//
// The heap profile is written at stop time, after a GC, so it shows
// live allocations at the end of the run (the go tool pprof default
// -inuse_space view), matching `go test -memprofile`.
func StartProfiles(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("cpu profile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("cpu profile: %w", err)
		}
	}
	return func() error {
		var firstErr error
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				firstErr = fmt.Errorf("cpu profile: %w", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				if firstErr == nil {
					firstErr = fmt.Errorf("mem profile: %w", err)
				}
				return firstErr
			}
			runtime.GC() // materialize live-heap numbers before the snapshot
			if err := pprof.WriteHeapProfile(f); err != nil && firstErr == nil {
				firstErr = fmt.Errorf("mem profile: %w", err)
			}
			if err := f.Close(); err != nil && firstErr == nil {
				firstErr = fmt.Errorf("mem profile: %w", err)
			}
		}
		return firstErr
	}, nil
}
