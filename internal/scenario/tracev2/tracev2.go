// Package tracev2 defines the versioned JSONL trace-replay format the
// scenario engine uses to drive both sides of the machine from an
// externally captured CPU+GPU access trace (DESIGN.md §12).
//
// A tracev2 file is line-delimited JSON. The first line is a Header
// ({"v":2,...}); every following line is one Record, either a CPU op
// ({"t":"cpu","core":0,"nm":12,"addr":4096,"w":true} — nm plain
// instructions, then one memory reference) or a GPU frame-work sample
// ({"t":"gpu","frame":0,"scale":1.25}). CPU addresses are
// region-relative: the replay source adds the owning core's address
// region (mem.CPURegion), so captured traces stay disjoint across
// cores exactly like synthetic streams. GPU records carry only the
// per-frame work multiplier — the envelope the throttling policies
// react to — while intra-frame access patterns remain the app model's;
// see DESIGN.md for why that is the faithful replay boundary.
//
// Both replay directions loop when the simulation outlives the
// capture, so trace length bounds fidelity, not run length. The
// format is versioned by the header: readers reject any "v" they do
// not understand instead of guessing.
package tracev2

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/mem"
	"repro/internal/trace"
)

// Version is the format generation this package reads and writes.
const Version = 2

// MaxLine bounds one JSONL line; a longer line is corruption, not
// data.
const MaxLine = 1 << 20

// Header is the first line of a tracev2 file.
type Header struct {
	V     int    `json:"v"`
	Name  string `json:"name,omitempty"`
	Cores int    `json:"cores"`
	Game  string `json:"game,omitempty"`
}

// Record is one trace line after the header.
type Record struct {
	T      string  `json:"t"`                // "cpu" | "gpu"
	Core   int     `json:"core,omitempty"`   // cpu: owning core index
	NonMem int     `json:"nm,omitempty"`     // cpu: plain instructions before the reference
	Addr   uint64  `json:"addr,omitempty"`   // cpu: region-relative byte address
	Write  bool    `json:"w,omitempty"`      // cpu: the reference is a store
	Frame  int     `json:"frame,omitempty"`  // gpu: frame index (informational)
	Scale  float64 `json:"scale,omitempty"`  // gpu: work multiplier for that frame
}

// Trace is a fully parsed capture.
type Trace struct {
	Header Header
	CPU    [][]trace.Op // per-core op streams, region-relative addresses
	Frames []float64    // per-frame work multipliers, in file order
}

// Parse reads a tracev2 stream. Every line must parse, the header
// version must match, and every declared core must have at least one
// op (an empty stream cannot feed a core).
func Parse(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), MaxLine)
	line := 0
	var tr *Trace
	for sc.Scan() {
		line++
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		if tr == nil {
			var h Header
			if err := json.Unmarshal(raw, &h); err != nil {
				return nil, fmt.Errorf("tracev2: line %d: bad header: %v", line, err)
			}
			if h.V != Version {
				return nil, fmt.Errorf("tracev2: line %d: version %d (this reader understands %d)", line, h.V, Version)
			}
			if h.Cores < 0 || h.Cores > int(mem.SourceGPU) {
				return nil, fmt.Errorf("tracev2: line %d: cores %d out of range [0, %d]", line, h.Cores, int(mem.SourceGPU))
			}
			tr = &Trace{Header: h, CPU: make([][]trace.Op, h.Cores)}
			continue
		}
		var rec Record
		if err := json.Unmarshal(raw, &rec); err != nil {
			return nil, fmt.Errorf("tracev2: line %d: %v", line, err)
		}
		switch rec.T {
		case "cpu":
			if rec.Core < 0 || rec.Core >= tr.Header.Cores {
				return nil, fmt.Errorf("tracev2: line %d: core %d out of range [0, %d)", line, rec.Core, tr.Header.Cores)
			}
			if rec.NonMem < 0 {
				return nil, fmt.Errorf("tracev2: line %d: negative nm %d", line, rec.NonMem)
			}
			tr.CPU[rec.Core] = append(tr.CPU[rec.Core], trace.Op{NonMem: rec.NonMem, Addr: rec.Addr, Write: rec.Write})
		case "gpu":
			if !(rec.Scale > 0) || rec.Scale > 1e6 {
				return nil, fmt.Errorf("tracev2: line %d: scale %g out of range (0, 1e6]", line, rec.Scale)
			}
			tr.Frames = append(tr.Frames, rec.Scale)
		default:
			return nil, fmt.Errorf("tracev2: line %d: unknown record type %q", line, rec.T)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("tracev2: %v", err)
	}
	if tr == nil {
		return nil, fmt.Errorf("tracev2: empty input (missing header)")
	}
	for i, ops := range tr.CPU {
		if len(ops) == 0 {
			return nil, fmt.Errorf("tracev2: core %d declared but has no ops", i)
		}
	}
	return tr, nil
}

// Write emits tr in canonical order — header, then core 0's ops
// through core N-1's, then the frame envelope — so writing a parsed
// trace reproduces an equivalent file byte-for-byte.
func Write(w io.Writer, tr *Trace) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	h := tr.Header
	h.V = Version
	h.Cores = len(tr.CPU)
	if err := enc.Encode(h); err != nil {
		return err
	}
	for core, ops := range tr.CPU {
		for _, op := range ops {
			rec := Record{T: "cpu", Core: core, NonMem: op.NonMem, Addr: op.Addr, Write: op.Write}
			if err := enc.Encode(rec); err != nil {
				return err
			}
		}
	}
	for i, s := range tr.Frames {
		if err := enc.Encode(Record{T: "gpu", Frame: i, Scale: s}); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// CoreSource returns a looping trace.Source over core i's captured
// ops, with addresses offset into the core's address region. The
// source is deterministic and not safe for concurrent use; each core
// owns one, like a synthetic Generator.
func (tr *Trace) CoreSource(i int) trace.Source {
	return &loopSource{ops: tr.CPU[i], base: mem.CPURegion(i)}
}

// FrameScaleFunc returns the per-frame work-multiplier envelope for
// gpu.GPU.FrameScale, looping over the captured frames; nil when the
// capture has no GPU records (the model then drives itself).
func (tr *Trace) FrameScaleFunc() func(frame int) (float64, bool) {
	if len(tr.Frames) == 0 {
		return nil
	}
	frames := tr.Frames
	return func(frame int) (float64, bool) {
		if frame < 0 {
			frame = 0
		}
		return frames[frame%len(frames)], true
	}
}

// loopSource replays a captured op stream forever.
type loopSource struct {
	ops  []trace.Op
	base uint64
	pos  int
}

// Next implements trace.Source.
func (l *loopSource) Next() trace.Op {
	op := l.ops[l.pos]
	l.pos++
	if l.pos == len(l.ops) {
		l.pos = 0
	}
	op.Addr += l.base
	return op
}
