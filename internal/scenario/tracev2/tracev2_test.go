package tracev2

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"repro/internal/mem"
	"repro/internal/trace"
)

// sample builds a small two-core capture with a GPU envelope.
func sample() *Trace {
	return &Trace{
		Header: Header{V: Version, Name: "sample", Cores: 2, Game: "DOOM3"},
		CPU: [][]trace.Op{
			{{NonMem: 3, Addr: 64}, {NonMem: 0, Addr: 128, Write: true}},
			{{NonMem: 9, Addr: 4096}},
		},
		Frames: []float64{1.0, 1.5, 0.75},
	}
}

func TestRoundTrip(t *testing.T) {
	want := sample()
	var buf bytes.Buffer
	if err := Write(&buf, want); err != nil {
		t.Fatal(err)
	}
	got, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip diverged:\n got %+v\nwant %+v", got, want)
	}
}

// TestWriteCanonical: writing a parsed trace reproduces the writer's
// own output byte-for-byte, which is what makes a capture re-emittable
// without churn.
func TestWriteCanonical(t *testing.T) {
	var a bytes.Buffer
	if err := Write(&a, sample()); err != nil {
		t.Fatal(err)
	}
	tr, err := Parse(bytes.NewReader(a.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var b bytes.Buffer
	if err := Write(&b, tr); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("re-emitted capture is not byte-identical:\n%s\nvs\n%s", a.String(), b.String())
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"empty", ""},
		{"blank lines only", "\n\n\n"},
		{"bad header json", "{bad\n"},
		{"wrong version", `{"v":1,"cores":1}` + "\n" + `{"t":"cpu","core":0}` + "\n"},
		{"cores negative", `{"v":2,"cores":-1}` + "\n"},
		{"cores too many", `{"v":2,"cores":999}` + "\n"},
		{"bad record json", `{"v":2,"cores":1}` + "\n" + "{bad\n"},
		{"core out of range", `{"v":2,"cores":1}` + "\n" + `{"t":"cpu","core":1,"addr":64}` + "\n"},
		{"negative nm", `{"v":2,"cores":1}` + "\n" + `{"t":"cpu","core":0,"nm":-1}` + "\n"},
		{"zero scale", `{"v":2,"cores":0}` + "\n" + `{"t":"gpu","scale":0}` + "\n"},
		{"huge scale", `{"v":2,"cores":0}` + "\n" + `{"t":"gpu","scale":1e7}` + "\n"},
		{"nan scale", `{"v":2,"cores":0}` + "\n" + `{"t":"gpu","scale":null}` + "\n"},
		{"unknown type", `{"v":2,"cores":0}` + "\n" + `{"t":"dma"}` + "\n"},
		{"declared core without ops", `{"v":2,"cores":2}` + "\n" + `{"t":"cpu","core":0,"addr":64}` + "\n"},
		{"oversize line", `{"v":2,"cores":0}` + "\n" + `{"t":"gpu","scale":1,"pad":"` + strings.Repeat("x", MaxLine+1) + `"}` + "\n"},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Parse(strings.NewReader(tc.in)); err == nil {
				t.Fatalf("Parse accepted %q", tc.name)
			}
		})
	}
}

// TestParseSkipsBlankLines: interior blank lines are formatting, not
// corruption.
func TestParseSkipsBlankLines(t *testing.T) {
	in := "\n" + `{"v":2,"cores":1}` + "\n\n" + `{"t":"cpu","core":0,"addr":64}` + "\n\n"
	tr, err := Parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.CPU[0]) != 1 {
		t.Fatalf("got %d ops, want 1", len(tr.CPU[0]))
	}
}

// TestCoreSourceLoopsWithRegionOffset: the replay source must loop
// forever and keep every address inside the owning core's region, like
// a synthetic generator.
func TestCoreSourceLoopsWithRegionOffset(t *testing.T) {
	tr := sample()
	src := tr.CoreSource(1)
	base := mem.CPURegion(1)
	for i := 0; i < 5; i++ {
		op := src.Next()
		if op.Addr != base+4096 {
			t.Fatalf("iteration %d: addr %#x, want %#x", i, op.Addr, base+4096)
		}
		if op.NonMem != 9 {
			t.Fatalf("iteration %d: nm %d, want 9", i, op.NonMem)
		}
	}
	// Two independent sources over the same core do not share state.
	a, b := tr.CoreSource(0), tr.CoreSource(0)
	a.Next()
	if got, want := b.Next().Addr, mem.CPURegion(0)+64; got != want {
		t.Fatalf("sources share position: addr %#x, want %#x", got, want)
	}
}

func TestFrameScaleFuncLoops(t *testing.T) {
	tr := sample()
	f := tr.FrameScaleFunc()
	if f == nil {
		t.Fatal("FrameScaleFunc returned nil for a capture with frames")
	}
	for frame, want := range []float64{1.0, 1.5, 0.75, 1.0, 1.5} {
		got, ok := f(frame)
		if !ok || got != want {
			t.Fatalf("frame %d: got (%g, %v), want (%g, true)", frame, got, ok, want)
		}
	}
	if got, ok := f(-3); !ok || got != 1.0 {
		t.Fatalf("negative frame: got (%g, %v), want (1, true)", got, ok)
	}

	none := &Trace{Header: Header{V: Version}}
	if none.FrameScaleFunc() != nil {
		t.Fatal("FrameScaleFunc must be nil when the capture has no GPU records")
	}
}
